// Tests for the extension modules: checkpointing, the additional
// inductive models (YouTubeDNN, GRU4Rec), the prequential streaming
// evaluator, and the paper's future-work features (profile-aware
// neighborhoods, ranking-stage SCCF).

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "core/candidates.h"
#include "core/profile_neighborhood.h"
#include "core/rank_stage.h"
#include "online/engine.h"
#include "online/streaming_eval.h"
#include "core/user_based.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "index/brute_force_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_flat_index.h"
#include "models/fism.h"
#include "models/gru4rec.h"
#include "models/pop.h"
#include "models/youtube_dnn.h"
#include "nn/serialize.h"

namespace sccf {
namespace {

class ExtensionsTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig cfg;
    cfg.name = "ext-test";
    cfg.num_users = 140;
    cfg.num_items = 160;
    cfg.num_clusters = 10;
    cfg.min_actions = 10;
    cfg.max_actions = 36;
    cfg.sequential_strength = 0.5;
    cfg.seed = 61;
    data::SyntheticGenerator gen(cfg);
    auto ds = gen.Generate();
    SCCF_CHECK(ds.ok());
    dataset_ = new data::Dataset(std::move(ds).value());
    split_ = new data::LeaveOneOutSplit(*dataset_);
  }
  static void TearDownTestSuite() {
    delete split_;
    delete dataset_;
    split_ = nullptr;
    dataset_ = nullptr;
  }

  static data::Dataset* dataset_;
  static data::LeaveOneOutSplit* split_;
};

data::Dataset* ExtensionsTest::dataset_ = nullptr;
data::LeaveOneOutSplit* ExtensionsTest::split_ = nullptr;

double NdcgAt50(const models::Recommender& model,
                const data::LeaveOneOutSplit& split) {
  eval::EvalOptions opts;
  opts.cutoffs = {50};
  auto r = eval::Evaluate(model, split, opts);
  SCCF_CHECK(r.ok());
  return r->ndcg[0];
}

// ------------------------------------------------------- serialization

TEST(SerializeTest, RoundTripPreservesValues) {
  Rng rng(3);
  nn::Parameter a("model.a", Tensor::TruncatedNormal({4, 6}, 0.5f, rng));
  nn::Parameter b("model.b", Tensor::TruncatedNormal({1, 3}, 0.5f, rng));
  const std::string path = testing::TempDir() + "/ckpt_roundtrip.bin";
  ASSERT_TRUE(nn::SaveParameters(path, {&a, &b}).ok());

  nn::Parameter a2("model.a", Tensor::Zeros({4, 6}));
  nn::Parameter b2("model.b", Tensor::Zeros({1, 3}));
  ASSERT_TRUE(nn::LoadParameters(path, {&a2, &b2}).ok());
  EXPECT_TRUE(a2.value.AllClose(a.value, 0.0f));
  EXPECT_TRUE(b2.value.AllClose(b.value, 0.0f));
}

TEST(SerializeTest, LoadRejectsShapeMismatch) {
  Rng rng(5);
  nn::Parameter a("x", Tensor::TruncatedNormal({2, 2}, 0.5f, rng));
  const std::string path = testing::TempDir() + "/ckpt_shape.bin";
  ASSERT_TRUE(nn::SaveParameters(path, {&a}).ok());
  nn::Parameter wrong("x", Tensor::Zeros({3, 2}));
  EXPECT_EQ(nn::LoadParameters(path, {&wrong}).code(),
            StatusCode::kInvalidArgument);
}

TEST(SerializeTest, LoadRejectsUnknownName) {
  Rng rng(7);
  nn::Parameter a("x", Tensor::TruncatedNormal({2, 2}, 0.5f, rng));
  const std::string path = testing::TempDir() + "/ckpt_name.bin";
  ASSERT_TRUE(nn::SaveParameters(path, {&a}).ok());
  nn::Parameter other("y", Tensor::Zeros({2, 2}));
  EXPECT_FALSE(nn::LoadParameters(path, {&other}).ok());
}

TEST(SerializeTest, LoadRejectsGarbageFile) {
  const std::string path = testing::TempDir() + "/ckpt_garbage.bin";
  {
    std::ofstream f(path);
    f << "definitely not a checkpoint";
  }
  nn::Parameter p("x", Tensor::Zeros({1, 1}));
  EXPECT_EQ(nn::LoadParameters(path, {&p}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(nn::LoadParameters("/no/such/file", {&p}).code(),
            StatusCode::kIoError);
}

TEST_F(ExtensionsTest, FismCheckpointRestoresScores) {
  models::Fism::Options opts;
  opts.dim = 8;
  opts.epochs = 3;
  models::Fism original(opts);
  ASSERT_TRUE(original.Fit(*split_).ok());
  const std::string path = testing::TempDir() + "/fism_ckpt.bin";
  ASSERT_TRUE(nn::SaveParameters(path, original.Parameters()).ok());

  models::Fism restored(opts);
  // Initialise the parameter storage with an untrained pass, then load.
  models::Fism::Options init = opts;
  init.epochs = 0;
  restored = models::Fism(init);
  ASSERT_TRUE(restored.Fit(*split_).ok());
  ASSERT_TRUE(nn::LoadParameters(path, restored.Parameters()).ok());

  std::vector<float> s1, s2;
  original.ScoreAll(2, split_->TrainSequence(2), &s1);
  restored.ScoreAll(2, split_->TrainSequence(2), &s2);
  ASSERT_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_NEAR(s1[i], s2[i], 1e-6);
  }
}

// ------------------------------------------------------------ new models

TEST_F(ExtensionsTest, YouTubeDnnTrainsAndBeatsPop) {
  models::PopRecommender pop;
  ASSERT_TRUE(pop.Fit(*split_).ok());
  models::YouTubeDnn::Options opts;
  opts.dim = 16;
  opts.hidden = {32};
  opts.epochs = 16;
  opts.learning_rate = 0.005f;  // the tower needs a hotter LR at toy scale
  models::YouTubeDnn dnn(opts);
  ASSERT_TRUE(dnn.Fit(*split_).ok());
  EXPECT_LT(dnn.last_epoch_loss(), 0.6f);
  EXPECT_GT(NdcgAt50(dnn, *split_), NdcgAt50(pop, *split_));
}

TEST_F(ExtensionsTest, YouTubeDnnInferenceMatchesScoreAll) {
  models::YouTubeDnn::Options opts;
  opts.dim = 8;
  opts.epochs = 2;
  models::YouTubeDnn dnn(opts);
  ASSERT_TRUE(dnn.Fit(*split_).ok());
  const auto history = split_->TrainSequence(1);
  std::vector<float> mu(8);
  dnn.InferUserEmbedding(history, mu.data());
  std::vector<float> scores;
  dnn.ScoreAll(1, history, &scores);
  for (int i : {0, 9, 42}) {
    EXPECT_NEAR(scores[i],
                tensor_ops::Dot(mu.data(), dnn.ItemEmbedding(i), 8), 1e-4);
  }
}

TEST_F(ExtensionsTest, YouTubeDnnWorksAsSccfBase) {
  models::YouTubeDnn::Options opts;
  opts.dim = 16;
  opts.epochs = 6;
  models::YouTubeDnn dnn(opts);
  ASSERT_TRUE(dnn.Fit(*split_).ok());
  core::UserBasedComponent::Options uu_opts;
  uu_opts.beta = 20;
  core::UserBasedComponent uu(dnn, uu_opts);
  ASSERT_TRUE(uu.Fit(*split_).ok());
  std::vector<float> scores;
  uu.ScoreAll(0, split_->TrainSequence(0), &scores);
  size_t positive = 0;
  for (float s : scores) positive += s > 0.0f;
  EXPECT_GT(positive, 0u);
}

TEST_F(ExtensionsTest, Gru4RecTrainsAndBeatsPop) {
  models::PopRecommender pop;
  ASSERT_TRUE(pop.Fit(*split_).ok());
  models::Gru4Rec::Options opts;
  opts.dim = 16;
  opts.max_len = 20;
  opts.epochs = 14;
  models::Gru4Rec gru(opts);
  ASSERT_TRUE(gru.Fit(*split_).ok());
  EXPECT_LT(gru.last_epoch_loss(), 0.65f);
  EXPECT_GT(NdcgAt50(gru, *split_), NdcgAt50(pop, *split_));
}

TEST_F(ExtensionsTest, Gru4RecIsOrderSensitive) {
  models::Gru4Rec::Options opts;
  opts.dim = 8;
  opts.max_len = 10;
  opts.epochs = 2;
  models::Gru4Rec gru(opts);
  ASSERT_TRUE(gru.Fit(*split_).ok());
  std::vector<float> a(8), b(8);
  const std::vector<int> fwd = {1, 2, 3, 4};
  const std::vector<int> rev = {4, 3, 2, 1};
  gru.InferUserEmbedding(fwd, a.data());
  gru.InferUserEmbedding(rev, b.data());
  float diff = 0.0f;
  for (size_t i = 0; i < 8; ++i) diff += std::fabs(a[i] - b[i]);
  EXPECT_GT(diff, 1e-5f);
}

TEST_F(ExtensionsTest, Gru4RecTruncatesToMaxLen) {
  models::Gru4Rec::Options opts;
  opts.dim = 8;
  opts.max_len = 4;
  opts.epochs = 1;
  models::Gru4Rec gru(opts);
  ASSERT_TRUE(gru.Fit(*split_).ok());
  std::vector<int> long_h = {9, 8, 7, 1, 2, 3, 4};
  std::vector<int> suffix = {1, 2, 3, 4};
  std::vector<float> a(8), b(8);
  gru.InferUserEmbedding(long_h, a.data());
  gru.InferUserEmbedding(suffix, b.data());
  for (size_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

// ------------------------------------------------------ streaming eval

TEST_F(ExtensionsTest, StreamingEvalRunsAndLiveIsCompetitive) {
  models::Fism::Options fopts;
  fopts.dim = 16;
  fopts.epochs = 6;
  models::Fism fism(fopts);
  ASSERT_TRUE(fism.Fit(*split_).ok());

  online::StreamingEvalOptions opts;
  opts.tail_events = 3;
  opts.cutoffs = {50};
  auto result = online::EvaluateStreamingUserBased(fism, *dataset_, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->num_predictions, 0u);
  // The live regime must not be materially worse than the frozen one; in
  // drifting regimes it wins (asserted loosely here on a small corpus).
  EXPECT_GE(result->LiveNdcgAt(50), result->FrozenNdcgAt(50) * 0.9);
  // The transductive serving mode (stale query embedding) must lose to
  // fresh-query inference — the paper's real-time argument.
  EXPECT_LT(result->StaleQueryNdcgAt(50), result->FrozenNdcgAt(50));
}

TEST_F(ExtensionsTest, StreamingEvalValidatesInputs) {
  models::Fism unfitted;
  EXPECT_EQ(
      online::EvaluateStreamingUserBased(unfitted, *dataset_, {}).status().code(),
      StatusCode::kFailedPrecondition);

  models::Fism::Options fopts;
  fopts.dim = 8;
  fopts.epochs = 1;
  models::Fism fism(fopts);
  ASSERT_TRUE(fism.Fit(*split_).ok());
  online::StreamingEvalOptions bad;
  bad.tail_events = 0;
  EXPECT_EQ(online::EvaluateStreamingUserBased(fism, *dataset_, bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------- batched-reveal equivalence pins

// Reference implementation of the pre-batching event-at-a-time streaming
// eval, kept verbatim (through public APIs only) so reveal_window == 1 of
// the windowed production loop stays pinned bit-identical to it forever.
// If the production loop drifts, this copy does not.
StatusOr<online::StreamingEvalResult> LegacyStreamingEval(
    const models::InductiveUiModel& model, const data::Dataset& dataset,
    const online::StreamingEvalOptions& options) {
  using online::Engine;
  const size_t n = dataset.num_users();
  const size_t d = model.embedding_dim();
  const size_t m = dataset.num_items();

  auto prefix_len = [&](size_t u) -> size_t {
    const size_t len = dataset.sequence(u).size();
    return len >= 2 * options.tail_events ? len - options.tail_events : len;
  };
  auto infer_tail = [&](std::span<const int> history, float* out) {
    const size_t take = options.infer_window == 0
                            ? history.size()
                            : std::min(history.size(), options.infer_window);
    model.InferUserEmbedding(history.subspan(history.size() - take, take),
                             out);
  };
  auto rank_by_votes = [&](const std::vector<index::Neighbor>& neighbors,
                           const std::vector<std::vector<int>>& vote_items,
                           std::span<const int> history, int target) {
    std::vector<float> scores(m, 0.0f);
    for (const auto& nb : neighbors) {
      for (int item : vote_items[nb.id]) scores[item] += nb.score;
    }
    for (int item : history) scores[item] = 0.0f;
    const float t = scores[target];
    size_t better = 0;
    for (float s : scores) better += s > t;
    return better + 1;
  };
  auto rank_by_votes_live =
      [&](const std::vector<index::Neighbor>& neighbors,
          const core::RealTimeService& service, std::span<const int> history,
          int target) {
        std::vector<float> scores(m, 0.0f);
        for (const auto& nb : neighbors) {
          auto votes = service.VoteItems(nb.id);
          if (!votes.ok()) continue;
          for (int item : *votes) scores[item] += nb.score;
        }
        for (int item : history) scores[item] = 0.0f;
        const float t = scores[target];
        size_t better = 0;
        for (float s : scores) better += s > t;
        return better + 1;
      };

  Engine::Options live_opts;
  live_opts.beta = options.beta;
  live_opts.infer_window = options.infer_window;
  live_opts.vote_window = options.vote_window;
  live_opts.num_shards = 1;
  live_opts.index_kind = options.index_kind;
  live_opts.compaction_threshold = options.compaction_threshold;
  Engine engine(model, live_opts);
  {
    std::vector<Engine::UserState> states(n);
    for (size_t u = 0; u < n; ++u) {
      states[u].user = static_cast<int>(u);
      const auto& seq = dataset.sequence(u);
      states[u].history.assign(seq.begin(), seq.begin() + prefix_len(u));
    }
    SCCF_RETURN_NOT_OK(engine.Bootstrap(states));
  }

  std::vector<std::vector<int>> vote_items(n);
  std::vector<float> bootstrap_emb(n * d, 0.0f);
  std::vector<int> populated;
  for (size_t u = 0; u < n; ++u) {
    const auto& seq = dataset.sequence(u);
    const size_t p = prefix_len(u);
    if (p == 0) continue;
    std::span<const int> prefix(seq.data(), p);
    infer_tail(prefix, bootstrap_emb.data() + u * d);
    populated.push_back(static_cast<int>(u));
    const size_t vt =
        options.vote_window == 0 ? p : std::min(p, options.vote_window);
    std::vector<int> votes(prefix.end() - vt, prefix.end());
    std::sort(votes.begin(), votes.end());
    votes.erase(std::unique(votes.begin(), votes.end()), votes.end());
    vote_items[u] = std::move(votes);
  }
  std::unique_ptr<index::VectorIndex> frozen;
  if (options.index_kind == core::IndexKind::kIvfFlat) {
    index::IvfFlatIndex::Options ivf_opts;
    ivf_opts.nlist =
        std::min(ivf_opts.nlist, std::max<size_t>(1, populated.size()));
    auto ivf = std::make_unique<index::IvfFlatIndex>(
        d, index::Metric::kCosine, ivf_opts);
    std::vector<float> train_set;
    train_set.reserve(populated.size() * d);
    for (int u : populated) {
      train_set.insert(train_set.end(), bootstrap_emb.begin() + u * d,
                       bootstrap_emb.begin() + (u + 1) * d);
    }
    if (populated.empty()) {
      train_set.assign(d, 0.0f);
      SCCF_RETURN_NOT_OK(ivf->Train(train_set, 1));
    } else {
      SCCF_RETURN_NOT_OK(ivf->Train(train_set, populated.size()));
    }
    frozen = std::move(ivf);
  } else if (options.index_kind == core::IndexKind::kHnsw) {
    frozen = std::make_unique<index::HnswIndex>(
        d, index::Metric::kCosine, index::HnswIndex::Options{});
  } else {
    frozen = std::make_unique<index::BruteForceIndex>(
        d, index::Metric::kCosine);
  }
  for (int u : populated) {
    SCCF_RETURN_NOT_OK(frozen->Add(u, bootstrap_emb.data() + u * d));
  }

  online::StreamingEvalResult result;
  result.cutoffs = options.cutoffs;
  result.live_hr.assign(options.cutoffs.size(), 0.0);
  result.live_ndcg.assign(options.cutoffs.size(), 0.0);
  result.frozen_hr.assign(options.cutoffs.size(), 0.0);
  result.frozen_ndcg.assign(options.cutoffs.size(), 0.0);
  result.stale_query_hr.assign(options.cutoffs.size(), 0.0);
  result.stale_query_ndcg.assign(options.cutoffs.size(), 0.0);

  struct TailEvent {
    int64_t ts;
    size_t user;
    size_t pos;
  };
  std::vector<TailEvent> events;
  for (size_t u = 0; u < n; ++u) {
    const auto& seq = dataset.sequence(u);
    if (seq.size() < 2 * options.tail_events) continue;
    for (size_t t = prefix_len(u); t < seq.size(); ++t) {
      events.push_back({dataset.timestamps(u)[t], u, t});
    }
  }
  std::stable_sort(
      events.begin(), events.end(),
      [](const TailEvent& a, const TailEvent& b) { return a.ts < b.ts; });

  std::vector<float> emb(d);
  for (const TailEvent& e : events) {
    const auto& seq = dataset.sequence(e.user);
    const int target = seq[e.pos];
    const std::span<const int> history(seq.data(), e.pos);

    auto live_resp =
        engine.Neighbors({static_cast<int>(e.user), std::nullopt});
    SCCF_RETURN_NOT_OK(live_resp.status());
    infer_tail(history, emb.data());
    auto frozen_nbrs =
        frozen->Search(emb.data(), options.beta, static_cast<int>(e.user));
    SCCF_RETURN_NOT_OK(frozen_nbrs.status());
    auto stale_nbrs =
        frozen->Search(bootstrap_emb.data() + e.user * d, options.beta,
                       static_cast<int>(e.user));
    SCCF_RETURN_NOT_OK(stale_nbrs.status());

    const size_t live_rank = rank_by_votes_live(
        live_resp->neighbors, engine.service(), history, target);
    const size_t frozen_rank =
        rank_by_votes(*frozen_nbrs, vote_items, history, target);
    const size_t stale_rank =
        rank_by_votes(*stale_nbrs, vote_items, history, target);
    for (size_t c = 0; c < options.cutoffs.size(); ++c) {
      const size_t k = options.cutoffs[c];
      result.live_hr[c] += live_rank <= k ? 1.0 : 0.0;
      result.frozen_hr[c] += frozen_rank <= k ? 1.0 : 0.0;
      result.stale_query_hr[c] += stale_rank <= k ? 1.0 : 0.0;
      result.live_ndcg[c] +=
          live_rank <= k ? 1.0 / std::log2(live_rank + 1.0) : 0.0;
      result.frozen_ndcg[c] +=
          frozen_rank <= k ? 1.0 / std::log2(frozen_rank + 1.0) : 0.0;
      result.stale_query_ndcg[c] +=
          stale_rank <= k ? 1.0 / std::log2(stale_rank + 1.0) : 0.0;
    }
    ++result.num_predictions;

    Engine::IngestRequest reveal;
    reveal.events.push_back({static_cast<int>(e.user), target, e.ts});
    reveal.identify = false;
    SCCF_RETURN_NOT_OK(engine.Ingest(reveal).status());
  }

  if (result.num_predictions > 0) {
    for (size_t c = 0; c < options.cutoffs.size(); ++c) {
      result.live_hr[c] /= result.num_predictions;
      result.live_ndcg[c] /= result.num_predictions;
      result.frozen_hr[c] /= result.num_predictions;
      result.frozen_ndcg[c] /= result.num_predictions;
      result.stale_query_hr[c] /= result.num_predictions;
      result.stale_query_ndcg[c] /= result.num_predictions;
    }
  }
  return result;
}

void ExpectSameMetrics(const online::StreamingEvalResult& a,
                       const online::StreamingEvalResult& b) {
  EXPECT_EQ(a.num_predictions, b.num_predictions);
  EXPECT_EQ(a.cutoffs, b.cutoffs);
  EXPECT_EQ(a.live_hr, b.live_hr);
  EXPECT_EQ(a.live_ndcg, b.live_ndcg);
  EXPECT_EQ(a.frozen_hr, b.frozen_hr);
  EXPECT_EQ(a.frozen_ndcg, b.frozen_ndcg);
  EXPECT_EQ(a.stale_query_hr, b.stale_query_hr);
  EXPECT_EQ(a.stale_query_ndcg, b.stale_query_ndcg);
}

TEST_F(ExtensionsTest, RevealWindowOneMatchesLegacyBitIdentically) {
  models::Fism::Options fopts;
  fopts.dim = 16;
  fopts.epochs = 4;
  models::Fism fism(fopts);
  ASSERT_TRUE(fism.Fit(*split_).ok());

  for (core::IndexKind kind :
       {core::IndexKind::kBruteForce, core::IndexKind::kIvfFlat,
        core::IndexKind::kHnsw}) {
    SCOPED_TRACE(static_cast<int>(kind));
    online::StreamingEvalOptions opts;
    opts.tail_events = 3;
    opts.cutoffs = {20, 50};
    opts.index_kind = kind;
    opts.reveal_window = 1;

    auto legacy = LegacyStreamingEval(fism, *dataset_, opts);
    ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
    auto windowed = online::EvaluateStreamingUserBased(fism, *dataset_, opts);
    ASSERT_TRUE(windowed.ok()) << windowed.status().ToString();
    ASSERT_GT(windowed->num_predictions, 0u);
    ExpectSameMetrics(*legacy, *windowed);
  }
}

// For reveal_window > 1 the batched window-Ingest must land the engine in
// the same effective state as revealing the window event-by-event at the
// same prediction cadence. With compaction_threshold above the event
// count every reveal stays staged in the UpsertBuffer, whose latest-row
// shadowing is exact for every backend — so the agreement is exact, not
// approximate, for brute force, IVF-Flat, and HNSW alike.
TEST_F(ExtensionsTest, BatchedRevealMatchesSequentialRevealAllBackends) {
  models::Fism::Options fopts;
  fopts.dim = 16;
  fopts.epochs = 4;
  models::Fism fism(fopts);
  ASSERT_TRUE(fism.Fit(*split_).ok());

  for (core::IndexKind kind :
       {core::IndexKind::kBruteForce, core::IndexKind::kIvfFlat,
        core::IndexKind::kHnsw}) {
    for (size_t window : {size_t{8}, size_t{32}}) {
      SCOPED_TRACE("backend " + std::to_string(static_cast<int>(kind)) +
                   " window " + std::to_string(window));
      online::StreamingEvalOptions opts;
      opts.tail_events = 3;
      opts.cutoffs = {20, 50};
      opts.index_kind = kind;
      opts.compaction_threshold = 1u << 20;
      opts.reveal_window = window;

      opts.batch_reveal_ingest = true;
      auto batched = online::EvaluateStreamingUserBased(fism, *dataset_, opts);
      ASSERT_TRUE(batched.ok()) << batched.status().ToString();
      opts.batch_reveal_ingest = false;
      auto sequential =
          online::EvaluateStreamingUserBased(fism, *dataset_, opts);
      ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
      ASSERT_GT(batched->num_predictions, 0u);
      ExpectSameMetrics(*batched, *sequential);
    }
  }
}

TEST_F(ExtensionsTest, StreamingEvalRejectsZeroRevealWindow) {
  models::Fism::Options fopts;
  fopts.dim = 8;
  fopts.epochs = 1;
  models::Fism fism(fopts);
  ASSERT_TRUE(fism.Fit(*split_).ok());
  online::StreamingEvalOptions bad;
  bad.reveal_window = 0;
  EXPECT_EQ(
      online::EvaluateStreamingUserBased(fism, *dataset_, bad).status().code(),
      StatusCode::kInvalidArgument);
}

// ------------------------------------------- profile-aware neighborhood

TEST(ProfileNeighborhoodTest, AgreementFormula) {
  using PN = core::ProfileAwareNeighborhood;
  EXPECT_FLOAT_EQ(PN::ProfileAgreement({1, 2, 3}, {1, 2, 3}), 1.0f);
  EXPECT_FLOAT_EQ(PN::ProfileAgreement({1, 2, 3}, {1, 0, 3}), 2.0f / 3);
  EXPECT_FLOAT_EQ(PN::ProfileAgreement({1}, {1, 2}), 0.0f);  // arity
  EXPECT_FLOAT_EQ(PN::ProfileAgreement({}, {}), 0.0f);
}

TEST(ProfileNeighborhoodTest, ProfileBreaksEmbeddingTies) {
  // Three users with identical embeddings; profiles decide the order.
  index::BruteForceIndex idx(2, index::Metric::kCosine);
  const float v[2] = {1.0f, 0.0f};
  for (int u = 0; u < 3; ++u) ASSERT_TRUE(idx.Add(u, v).ok());
  std::vector<std::vector<int>> profiles = {{1, 1}, {1, 2}, {9, 9}};
  core::ProfileAwareNeighborhood pn(&idx, profiles,
                                    {.profile_weight = 0.4f});
  auto nbrs = pn.Neighbors(v, {1, 1}, 2, /*exclude_user=*/-1);
  ASSERT_TRUE(nbrs.ok());
  ASSERT_EQ(nbrs->size(), 2u);
  EXPECT_EQ((*nbrs)[0].id, 0);  // full profile match
  EXPECT_EQ((*nbrs)[1].id, 1);  // half match beats no match
}

TEST(ProfileNeighborhoodTest, ZeroWeightMatchesBaseIndex) {
  Rng rng(11);
  index::BruteForceIndex idx(4, index::Metric::kCosine);
  std::vector<float> corpus(20 * 4);
  for (auto& x : corpus) x = rng.Normal();
  for (int u = 0; u < 20; ++u) {
    ASSERT_TRUE(idx.Add(u, corpus.data() + u * 4).ok());
  }
  std::vector<std::vector<int>> profiles(20, std::vector<int>{0});
  core::ProfileAwareNeighborhood pn(&idx, profiles,
                                    {.profile_weight = 0.0f});
  float q[4] = {1, 0, 0, 0};
  auto base = idx.Search(q, 5);
  auto blended = pn.Neighbors(q, {0}, 5, -1);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(blended.ok());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ((*base)[i].id, (*blended)[i].id);
  }
}

// --------------------------------------------------- ranking-stage SCCF

TEST_F(ExtensionsTest, RankStageRerankOrdersAndPreservesSet) {
  models::Fism::Options fopts;
  fopts.dim = 16;
  fopts.epochs = 6;
  models::Fism fism(fopts);
  ASSERT_TRUE(fism.Fit(*split_).ok());
  core::UserBasedComponent uu(fism, {});
  ASSERT_TRUE(uu.Fit(*split_).ok());

  core::SccfRankStage stage(fism, uu);
  std::vector<int> candidates = {3, 8, 15, 42, 77, 101};
  auto ranked = stage.Rerank(0, split_->TrainSequence(0), candidates);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), candidates.size());
  std::vector<int> ids;
  for (const auto& r : *ranked) ids.push_back(r.id);
  std::sort(ids.begin(), ids.end());
  std::sort(candidates.begin(), candidates.end());
  EXPECT_EQ(ids, candidates);
  for (size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_GE((*ranked)[i - 1].score, (*ranked)[i].score);
  }
}

TEST_F(ExtensionsTest, RankStageRejectsEmptyCandidates) {
  models::Fism::Options fopts;
  fopts.dim = 8;
  fopts.epochs = 1;
  models::Fism fism(fopts);
  ASSERT_TRUE(fism.Fit(*split_).ok());
  core::UserBasedComponent uu(fism, {});
  ASSERT_TRUE(uu.Fit(*split_).ok());
  core::SccfRankStage stage(fism, uu);
  EXPECT_EQ(stage.Rerank(0, split_->TrainSequence(0), {}).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------- extended metrics

TEST(ExtendedMetricsTest, MrrFormula) {
  EXPECT_DOUBLE_EQ(eval::Mrr(1, 10), 1.0);
  EXPECT_DOUBLE_EQ(eval::Mrr(4, 10), 0.25);
  EXPECT_EQ(eval::Mrr(11, 10), 0.0);
  EXPECT_EQ(eval::Mrr(0, 10), 0.0);
}

TEST(ExtendedMetricsTest, ListQualityOnKnownLists) {
  // Catalog of 4 items; popularity 10, 5, 1, 0.
  std::vector<size_t> counts = {10, 5, 1, 0};
  std::vector<std::vector<int>> lists = {{0, 1}, {0, 2}};
  auto q = eval::AnalyzeLists(lists, counts, 4);
  EXPECT_DOUBLE_EQ(q.catalog_coverage, 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(q.mean_popularity, (7.5 + 5.5) / 2.0);
  // Exposure: item0 x2, item1 x1, item2 x1 -> entropy of {1/2,1/4,1/4}.
  const double expected_entropy =
      -(0.5 * std::log(0.5) + 0.25 * std::log(0.25) * 2);
  EXPECT_NEAR(q.exposure_entropy, expected_entropy, 1e-9);
}

TEST(ExtendedMetricsTest, ListQualityEdgeCases) {
  auto empty = eval::AnalyzeLists({}, {}, 0);
  EXPECT_EQ(empty.catalog_coverage, 0.0);
  std::vector<size_t> counts = {1, 1};
  auto only_empty = eval::AnalyzeLists({{}, {}}, counts, 2);
  EXPECT_EQ(only_empty.catalog_coverage, 0.0);
}

TEST_F(ExtensionsTest, UuListsReachDeeperIntoTheTail) {
  // The paper's "local information" argument, quantified: the UU stream's
  // recommendations average lower popularity than the UI stream's.
  models::Fism::Options fopts;
  fopts.dim = 16;
  fopts.epochs = 6;
  models::Fism fism(fopts);
  ASSERT_TRUE(fism.Fit(*split_).ok());
  core::UserBasedComponent uu(fism, {});
  ASSERT_TRUE(uu.Fit(*split_).ok());

  std::vector<std::vector<int>> ui_lists, uu_lists;
  std::vector<float> scores;
  for (size_t u = 0; u < 60; ++u) {
    const auto history = split_->TrainSequence(u);
    fism.ScoreAll(u, history, &scores);
    for (int i : history) scores[i] = -1e30f;
    std::vector<int> ui;
    for (const auto& c : core::TopNFromScores(scores, 20)) {
      ui.push_back(c.id);
    }
    ui_lists.push_back(std::move(ui));
    uu.ScoreAll(u, history, &scores);
    std::vector<int> uu_ids;
    for (const auto& c : core::TopNFromScores(scores, 20, 0.0f)) {
      uu_ids.push_back(c.id);
    }
    uu_lists.push_back(std::move(uu_ids));
  }
  auto ui_q = eval::AnalyzeLists(ui_lists, dataset_->item_counts(),
                                 dataset_->num_items());
  auto uu_q = eval::AnalyzeLists(uu_lists, dataset_->item_counts(),
                                 dataset_->num_items());
  EXPECT_GT(uu_q.catalog_coverage, 0.0);
  EXPECT_GT(ui_q.catalog_coverage, 0.0);
}

}  // namespace
}  // namespace sccf
