#include <gtest/gtest.h>

#include <cmath>

#include "nn/graph.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/parameter.h"
#include "util/random.h"

namespace sccf::nn {
namespace {

// --------------------------------------------------------------- Adam

TEST(AdamTest, StepMovesAgainstGradient) {
  Parameter p("p", Tensor::FromVector({1.0f, -1.0f}));
  p.grad = Tensor::FromVector({1.0f, -1.0f});
  p.MarkDenseTouched();
  AdamOptimizer adam({.learning_rate = 0.1f});
  adam.Step({&p});
  EXPECT_LT(p.value[0], 1.0f);
  EXPECT_GT(p.value[1], -1.0f);
  // Gradients were zeroed.
  EXPECT_EQ(p.grad[0], 0.0f);
  EXPECT_FALSE(p.HasGradient());
}

TEST(AdamTest, SkipsParamsWithoutGradients) {
  Parameter p("p", Tensor::FromVector({2.0f}));
  AdamOptimizer adam({.learning_rate = 0.1f});
  adam.Step({&p});
  EXPECT_FLOAT_EQ(p.value[0], 2.0f);
}

TEST(AdamTest, SparseUpdateTouchesOnlyMarkedRows) {
  Parameter p("emb", Tensor::Full({4, 2}, 1.0f));
  p.row_sparse = true;
  p.grad.at(1, 0) = 1.0f;
  p.grad.at(1, 1) = 1.0f;
  p.MarkRowTouched(1);
  p.MarkRowTouched(1);  // duplicates must be tolerated
  AdamOptimizer adam({.learning_rate = 0.1f});
  adam.Step({&p});
  EXPECT_FLOAT_EQ(p.value.at(0, 0), 1.0f);  // untouched rows unchanged
  EXPECT_FLOAT_EQ(p.value.at(2, 0), 1.0f);
  EXPECT_LT(p.value.at(1, 0), 1.0f);
  EXPECT_TRUE(p.touched_rows.empty());
}

TEST(AdamTest, SparseAndDenseConverge) {
  // The same gradient stream applied sparsely vs densely must produce the
  // same values on the touched row.
  Rng rng(3);
  Parameter sparse("s", Tensor::Full({3, 2}, 0.5f));
  sparse.row_sparse = true;
  Parameter dense("d", Tensor::Full({1, 2}, 0.5f));
  AdamOptimizer adam_s({.learning_rate = 0.01f});
  AdamOptimizer adam_d({.learning_rate = 0.01f});
  for (int step = 0; step < 20; ++step) {
    const float g0 = rng.Normal();
    const float g1 = rng.Normal();
    sparse.grad.at(1, 0) = g0;
    sparse.grad.at(1, 1) = g1;
    sparse.MarkRowTouched(1);
    dense.grad[0] = g0;
    dense.grad[1] = g1;
    dense.MarkDenseTouched();
    adam_s.Step({&sparse});
    adam_d.Step({&dense});
  }
  EXPECT_NEAR(sparse.value.at(1, 0), dense.value[0], 1e-6);
  EXPECT_NEAR(sparse.value.at(1, 1), dense.value[1], 1e-6);
}

TEST(AdamTest, LinearDecaySchedule) {
  AdamOptimizer::Options opt;
  opt.learning_rate = 1.0f;
  opt.decay_steps = 10;
  opt.min_lr_fraction = 0.1f;
  AdamOptimizer adam(opt);
  EXPECT_FLOAT_EQ(adam.CurrentLearningRate(), 1.0f);
  Parameter p("p", Tensor::FromVector({1.0f}));
  for (int i = 0; i < 5; ++i) {
    p.grad[0] = 1.0f;
    p.MarkDenseTouched();
    adam.Step({&p});
  }
  EXPECT_FLOAT_EQ(adam.CurrentLearningRate(), 0.5f);
  for (int i = 0; i < 20; ++i) {
    p.grad[0] = 1.0f;
    p.MarkDenseTouched();
    adam.Step({&p});
  }
  EXPECT_FLOAT_EQ(adam.CurrentLearningRate(), 0.1f);  // floor
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Parameter p("p", Tensor::FromVector({10.0f}));
  AdamOptimizer::Options opt;
  opt.learning_rate = 0.1f;
  opt.weight_decay = 0.1f;
  AdamOptimizer adam(opt);
  for (int i = 0; i < 50; ++i) {
    // Zero task gradient: only the L2 term drives the update.
    p.grad[0] = 0.0f;
    p.MarkDenseTouched();
    adam.Step({&p});
  }
  EXPECT_LT(p.value[0], 10.0f);
}

// ----------------------------------------------------- toy convergence

// Logistic regression on a linearly separable toy problem must converge.
TEST(TrainingTest, LogisticRegressionSeparable) {
  Rng rng(7);
  Linear lin("lr", 2, 1, rng, 0.1f);
  AdamOptimizer adam({.learning_rate = 0.05f});
  std::vector<Parameter*> params = lin.Parameters();

  // y = 1 iff x0 + x1 > 0.
  Tensor x({64, 2});
  Tensor labels({64, 1});
  for (size_t i = 0; i < 64; ++i) {
    const float a = rng.Normal();
    const float b = rng.Normal();
    x.at(i, 0) = a;
    x.at(i, 1) = b;
    labels[i] = a + b > 0 ? 1.0f : 0.0f;
  }

  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 300; ++step) {
    Graph g(/*training=*/true, &rng);
    Var logits = lin.Apply(g, g.Input(x));
    Var loss = g.BceWithLogits(logits, labels);
    g.Backward(loss);
    adam.Step(params);
    if (step == 0) first_loss = g.value(loss).scalar();
    last_loss = g.value(loss).scalar();
  }
  EXPECT_LT(last_loss, first_loss * 0.3f);
  EXPECT_LT(last_loss, 0.3f);
}

// A 2-layer MLP must solve XOR, which a linear model cannot.
TEST(TrainingTest, MlpLearnsXor) {
  Rng rng(9);
  Mlp mlp("xor", {2, 16, 1}, rng);
  // Break the symmetry of the tiny init: XOR needs hidden units on both
  // sides of the decision surface.
  for (Parameter* p : mlp.Parameters()) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      p->value[i] += rng.Normal() * 0.5f;
    }
  }
  AdamOptimizer adam({.learning_rate = 0.05f});
  std::vector<Parameter*> params = mlp.Parameters();

  Tensor x = Tensor::FromMatrix(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
  Tensor labels = Tensor::FromMatrix(4, 1, {0, 1, 1, 0});

  for (int step = 0; step < 2000; ++step) {
    Graph g(/*training=*/true, &rng);
    Var loss = g.BceWithLogits(mlp.Apply(g, g.Input(x)), labels);
    g.Backward(loss);
    adam.Step(params);
  }
  Graph g;
  const Tensor& out = g.value(mlp.Apply(g, g.Input(x)));
  EXPECT_LT(out[0], 0.0f);  // logit < 0 => predicted 0
  EXPECT_GT(out[1], 0.0f);
  EXPECT_GT(out[2], 0.0f);
  EXPECT_LT(out[3], 0.0f);
}

// Embedding-gather training: items must move toward their co-occurring
// "context" representation (a miniature matrix-factorisation task).
TEST(TrainingTest, EmbeddingGatherLearnsAssociations) {
  Rng rng(11);
  Parameter emb("emb", Tensor::TruncatedNormal({6, 4}, 0.1f, rng));
  emb.row_sparse = true;
  AdamOptimizer adam({.learning_rate = 0.05f});

  // Pairs (0,1), (2,3), (4,5) are positives; cross pairs negatives.
  const std::vector<std::pair<int, int>> pos = {{0, 1}, {2, 3}, {4, 5}};
  const std::vector<std::pair<int, int>> neg = {{0, 3}, {2, 5}, {4, 1}};
  for (int step = 0; step < 400; ++step) {
    Graph g(/*training=*/true, &rng);
    std::vector<int> left, right;
    Tensor labels({6, 1});
    int row = 0;
    for (auto [a, b] : pos) {
      left.push_back(a);
      right.push_back(b);
      labels[row++] = 1.0f;
    }
    for (auto [a, b] : neg) {
      left.push_back(a);
      right.push_back(b);
      labels[row++] = 0.0f;
    }
    Var l = g.Gather(&emb, left);
    Var r = g.Gather(&emb, right);
    Var loss = g.BceWithLogits(g.RowsDot(l, r), labels);
    g.Backward(loss);
    adam.Step({&emb});
  }
  auto dot = [&](int a, int b) {
    return tensor_ops::Dot(emb.value.data() + a * 4, emb.value.data() + b * 4,
                           4);
  };
  EXPECT_GT(dot(0, 1), dot(0, 3));
  EXPECT_GT(dot(2, 3), dot(2, 5));
  EXPECT_GT(dot(4, 5), dot(4, 1));
}

}  // namespace
}  // namespace sccf::nn
