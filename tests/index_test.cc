#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "index/brute_force_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_flat_index.h"
#include "index/vector_index.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace sccf::index {
namespace {

std::vector<float> RandomCorpus(size_t n, size_t d, Rng& rng) {
  std::vector<float> data(n * d);
  for (auto& v : data) v = rng.Normal();
  return data;
}

// Exact reference search by linear scan.
std::vector<Neighbor> ExactSearch(const std::vector<float>& corpus, size_t n,
                                  size_t d, const float* q, size_t k,
                                  Metric metric, int exclude = -1) {
  TopKAccumulator acc(k);
  for (size_t i = 0; i < n; ++i) {
    if (static_cast<int>(i) == exclude) continue;
    float score;
    if (metric == Metric::kCosine) {
      score = tensor_ops::Cosine(q, corpus.data() + i * d, d);
    } else {
      score = tensor_ops::Dot(q, corpus.data() + i * d, d);
    }
    acc.Offer(static_cast<int>(i), score);
  }
  return acc.Take();
}

double RecallAtK(const std::vector<Neighbor>& got,
                 const std::vector<Neighbor>& truth) {
  std::set<int> truth_ids;
  for (const auto& nb : truth) truth_ids.insert(nb.id);
  size_t hits = 0;
  for (const auto& nb : got) hits += truth_ids.count(nb.id);
  return truth.empty() ? 1.0
                       : static_cast<double>(hits) / truth.size();
}

// ------------------------------------------------------ TopKAccumulator

TEST(TopKAccumulatorTest, KeepsBestK) {
  TopKAccumulator acc(3);
  for (int i = 0; i < 10; ++i) acc.Offer(i, static_cast<float>(i));
  auto out = acc.Take();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 9);
  EXPECT_EQ(out[1].id, 8);
  EXPECT_EQ(out[2].id, 7);
}

TEST(TopKAccumulatorTest, FewerThanK) {
  TopKAccumulator acc(5);
  acc.Offer(1, 0.5f);
  acc.Offer(2, 0.9f);
  auto out = acc.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 2);
}

TEST(TopKAccumulatorTest, ZeroKAcceptsNothing) {
  TopKAccumulator acc(0);
  acc.Offer(1, 1.0f);
  EXPECT_TRUE(acc.Take().empty());
}

TEST(TopKAccumulatorTest, TiesBrokenByAscendingId) {
  TopKAccumulator acc(2);
  acc.Offer(5, 1.0f);
  acc.Offer(3, 1.0f);
  acc.Offer(9, 1.0f);
  auto out = acc.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 3);
  EXPECT_EQ(out[1].id, 5);
}

TEST(TopKAccumulatorTest, WouldAcceptReflectsThreshold) {
  TopKAccumulator acc(2);
  EXPECT_TRUE(acc.WouldAccept(-100.0f));
  acc.Offer(0, 1.0f);
  acc.Offer(1, 2.0f);
  EXPECT_FALSE(acc.WouldAccept(0.5f));
  EXPECT_TRUE(acc.WouldAccept(1.5f));
}

// ------------------------------------------------------ BruteForceIndex

class BruteForceParamTest : public testing::TestWithParam<Metric> {};

TEST_P(BruteForceParamTest, MatchesExactReference) {
  const Metric metric = GetParam();
  const size_t n = 200, d = 16;
  Rng rng(5);
  auto corpus = RandomCorpus(n, d, rng);
  BruteForceIndex idx(d, metric);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(idx.Add(static_cast<int>(i), corpus.data() + i * d).ok());
  }
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> q(d);
    for (auto& v : q) v = rng.Normal();
    auto got = idx.Search(q.data(), 10);
    ASSERT_TRUE(got.ok());
    auto truth = ExactSearch(corpus, n, d, q.data(), 10, metric);
    ASSERT_EQ(got->size(), truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ((*got)[i].id, truth[i].id);
      EXPECT_NEAR((*got)[i].score, truth[i].score, 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Metrics, BruteForceParamTest,
                         testing::Values(Metric::kInnerProduct,
                                         Metric::kCosine));

TEST(BruteForceIndexTest, RejectsNegativeIdAndZeroK) {
  BruteForceIndex idx(4, Metric::kInnerProduct);
  const float v[4] = {1, 2, 3, 4};
  EXPECT_FALSE(idx.Add(-1, v).ok());
  ASSERT_TRUE(idx.Add(0, v).ok());
  EXPECT_FALSE(idx.Search(v, 0).ok());
}

TEST(BruteForceIndexTest, UpdateReplacesVector) {
  BruteForceIndex idx(2, Metric::kInnerProduct);
  const float a[2] = {1, 0};
  const float b[2] = {0, 1};
  ASSERT_TRUE(idx.Add(7, a).ok());
  ASSERT_TRUE(idx.Add(8, b).ok());
  const float qa[2] = {1, 0};
  auto r = idx.Search(qa, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].id, 7);
  // Streaming update: user 7 now points the other way.
  const float a2[2] = {-1, 0};
  ASSERT_TRUE(idx.Add(7, a2).ok());
  EXPECT_EQ(idx.size(), 2u);
  r = idx.Search(qa, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].id, 8);
}

TEST(BruteForceIndexTest, ExcludeIdFiltered) {
  BruteForceIndex idx(2, Metric::kCosine);
  const float a[2] = {1, 0};
  const float b[2] = {0.9f, 0.1f};
  ASSERT_TRUE(idx.Add(0, a).ok());
  ASSERT_TRUE(idx.Add(1, b).ok());
  auto r = idx.Search(a, 2, /*exclude_id=*/0);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].id, 1);
}

TEST(BruteForceIndexTest, CosineIgnoresMagnitude) {
  BruteForceIndex idx(2, Metric::kCosine);
  const float big[2] = {100, 0};
  const float small_aligned[2] = {0.01f, 0.0001f};
  ASSERT_TRUE(idx.Add(0, big).ok());
  ASSERT_TRUE(idx.Add(1, small_aligned).ok());
  const float q[2] = {1, 0.01f};
  auto r = idx.Search(q, 2);
  ASSERT_TRUE(r.ok());
  // Both nearly parallel to q: scores within a small gap; magnitudes
  // irrelevant.
  EXPECT_NEAR((*r)[0].score, 1.0f, 1e-3);
  EXPECT_NEAR((*r)[1].score, 1.0f, 1e-3);
}

TEST(BruteForceIndexTest, ParallelSearchMatchesSerial) {
  const size_t n = 6000, d = 8;
  Rng rng(7);
  auto corpus = RandomCorpus(n, d, rng);
  BruteForceIndex serial(d, Metric::kInnerProduct, /*parallel=*/false);
  BruteForceIndex parallel(d, Metric::kInnerProduct, /*parallel=*/true);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(serial.Add(i, corpus.data() + i * d).ok());
    ASSERT_TRUE(parallel.Add(i, corpus.data() + i * d).ok());
  }
  std::vector<float> q(d);
  for (auto& v : q) v = rng.Normal();
  auto rs = serial.Search(q.data(), 25);
  auto rp = parallel.Search(q.data(), 25);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rp.ok());
  ASSERT_EQ(rs->size(), rp->size());
  for (size_t i = 0; i < rs->size(); ++i) {
    EXPECT_EQ((*rs)[i].id, (*rp)[i].id);
  }
}

// --------------------------------------------------------- IvfFlatIndex

TEST(IvfFlatIndexTest, RequiresTraining) {
  IvfFlatIndex idx(4, Metric::kCosine, {});
  const float v[4] = {1, 0, 0, 0};
  EXPECT_EQ(idx.Add(0, v).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(idx.Search(v, 1).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(IvfFlatIndexTest, TrainRejectsBadInput) {
  IvfFlatIndex idx(4, Metric::kCosine, {.nlist = 8});
  std::vector<float> data(4 * 4, 0.0f);
  EXPECT_FALSE(idx.Train(data, 4).ok());   // fewer than nlist
  EXPECT_FALSE(idx.Train(data, 100).ok());  // size mismatch
}

TEST(IvfFlatIndexTest, HighRecallWithEnoughProbes) {
  const size_t n = 1000, d = 16;
  Rng rng(11);
  auto corpus = RandomCorpus(n, d, rng);
  IvfFlatIndex::Options opts;
  opts.nlist = 16;
  opts.nprobe = 8;
  IvfFlatIndex idx(d, Metric::kCosine, opts);
  ASSERT_TRUE(idx.Train(corpus, n).ok());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(idx.Add(static_cast<int>(i), corpus.data() + i * d).ok());
  }
  double recall = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    std::vector<float> q(d);
    for (auto& v : q) v = rng.Normal();
    auto got = idx.Search(q.data(), 10);
    ASSERT_TRUE(got.ok());
    auto truth = ExactSearch(corpus, n, d, q.data(), 10, Metric::kCosine);
    recall += RecallAtK(*got, truth);
  }
  EXPECT_GT(recall / trials, 0.8);
}

TEST(IvfFlatIndexTest, FullProbeIsExact) {
  const size_t n = 300, d = 8;
  Rng rng(13);
  auto corpus = RandomCorpus(n, d, rng);
  IvfFlatIndex::Options opts;
  opts.nlist = 10;
  opts.nprobe = 10;  // scan everything
  IvfFlatIndex idx(d, Metric::kInnerProduct, opts);
  ASSERT_TRUE(idx.Train(corpus, n).ok());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(idx.Add(static_cast<int>(i), corpus.data() + i * d).ok());
  }
  std::vector<float> q(d);
  for (auto& v : q) v = rng.Normal();
  auto got = idx.Search(q.data(), 5);
  ASSERT_TRUE(got.ok());
  auto truth =
      ExactSearch(corpus, n, d, q.data(), 5, Metric::kInnerProduct);
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ((*got)[i].id, truth[i].id);
  }
}

TEST(IvfFlatIndexTest, StreamingReassignment) {
  const size_t d = 4;
  Rng rng(15);
  // Two well-separated blobs so reassignment is unambiguous.
  std::vector<float> corpus;
  const size_t n = 64;
  for (size_t i = 0; i < n; ++i) {
    const float cx = i < n / 2 ? 10.0f : -10.0f;
    corpus.push_back(cx + rng.Normal() * 0.1f);
    for (size_t j = 1; j < d; ++j) corpus.push_back(rng.Normal() * 0.1f);
  }
  IvfFlatIndex idx(d, Metric::kInnerProduct, {.nlist = 2, .nprobe = 1});
  ASSERT_TRUE(idx.Train(corpus, n).ok());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(idx.Add(static_cast<int>(i), corpus.data() + i * d).ok());
  }
  EXPECT_EQ(idx.size(), n);
  // Move vector 0 to the other blob; with nprobe=1 it must be findable
  // from the other side, i.e., it was reassigned.
  const float moved[d] = {-10.0f, 0, 0, 0};
  ASSERT_TRUE(idx.Add(0, moved).ok());
  EXPECT_EQ(idx.size(), n);
  // Search wide enough to cover the whole target blob (whose members all
  // score within noise of the moved vector).
  const float q[d] = {-10.0f, 0, 0, 0};
  auto r = idx.Search(q, n / 2 + 4);
  ASSERT_TRUE(r.ok());
  bool found = false;
  for (const auto& nb : *r) found = found || nb.id == 0;
  EXPECT_TRUE(found);
}

// ------------------------------------------------------------ HnswIndex

TEST(HnswIndexTest, EmptyIndexReturnsNothing) {
  HnswIndex idx(4, Metric::kCosine, {});
  const float q[4] = {1, 0, 0, 0};
  auto r = idx.Search(q, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(HnswIndexTest, HighRecallOnRandomCorpus) {
  const size_t n = 1000, d = 16;
  Rng rng(17);
  auto corpus = RandomCorpus(n, d, rng);
  HnswIndex::Options opts;
  opts.m = 16;
  opts.ef_construction = 100;
  opts.ef_search = 80;
  HnswIndex idx(d, Metric::kCosine, opts);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(idx.Add(static_cast<int>(i), corpus.data() + i * d).ok());
  }
  double recall = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    std::vector<float> q(d);
    for (auto& v : q) v = rng.Normal();
    auto got = idx.Search(q.data(), 10);
    ASSERT_TRUE(got.ok());
    auto truth = ExactSearch(corpus, n, d, q.data(), 10, Metric::kCosine);
    recall += RecallAtK(*got, truth);
  }
  EXPECT_GT(recall / trials, 0.9);
}

TEST(HnswIndexTest, UpdateTombstonesOldVector) {
  HnswIndex idx(2, Metric::kInnerProduct, {});
  const float a[2] = {1, 0};
  const float b[2] = {0, 1};
  ASSERT_TRUE(idx.Add(0, a).ok());
  ASSERT_TRUE(idx.Add(1, b).ok());
  ASSERT_TRUE(idx.Add(0, b).ok());  // update id 0
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx.num_graph_nodes(), 3u);  // tombstone retained for routing
  const float q[2] = {1, 0};
  auto r = idx.Search(q, 2);
  ASSERT_TRUE(r.ok());
  // No duplicate external ids in results.
  std::set<int> ids;
  for (const auto& nb : *r) {
    EXPECT_TRUE(ids.insert(nb.id).second);
  }
}

TEST(HnswIndexTest, RecallStableUnderManyUpdates) {
  const size_t n = 300, d = 8;
  Rng rng(19);
  auto corpus = RandomCorpus(n, d, rng);
  HnswIndex idx(d, Metric::kCosine, {.m = 12, .ef_construction = 80,
                                     .ef_search = 64});
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(idx.Add(static_cast<int>(i), corpus.data() + i * d).ok());
  }
  // Update every vector once (streaming user-embedding refresh).
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      corpus[i * d + j] += rng.Normal() * 0.05f;
    }
    ASSERT_TRUE(idx.Add(static_cast<int>(i), corpus.data() + i * d).ok());
  }
  double recall = 0.0;
  const int trials = 15;
  for (int t = 0; t < trials; ++t) {
    std::vector<float> q(d);
    for (auto& v : q) v = rng.Normal();
    auto got = idx.Search(q.data(), 10);
    ASSERT_TRUE(got.ok());
    auto truth = ExactSearch(corpus, n, d, q.data(), 10, Metric::kCosine);
    recall += RecallAtK(*got, truth);
  }
  EXPECT_GT(recall / trials, 0.85);
}

TEST(HnswIndexTest, ExcludeId) {
  HnswIndex idx(2, Metric::kCosine, {});
  const float a[2] = {1, 0};
  ASSERT_TRUE(idx.Add(0, a).ok());
  ASSERT_TRUE(idx.Add(1, a).ok());
  auto r = idx.Search(a, 2, /*exclude_id=*/0);
  ASSERT_TRUE(r.ok());
  for (const auto& nb : *r) EXPECT_NE(nb.id, 0);
}

// ------------------------------------------------------- UpsertBuffer

TEST(UpsertBufferTest, PutOverwritesInPlaceAndKeepsFirstPutOrder) {
  UpsertBuffer buf(2, Metric::kInnerProduct);
  EXPECT_TRUE(buf.empty());
  const float v1[2] = {1, 0}, v2[2] = {0, 1}, v3[2] = {2, 2};
  buf.Put(7, v1);
  buf.Put(3, v2);
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_TRUE(buf.contains(7));
  EXPECT_FALSE(buf.contains(4));
  buf.Put(7, v3);  // overwrite: no new row, order unchanged
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.ids(), (std::vector<int>{7, 3}));
}

TEST(UpsertBufferTest, DrainToFlushesFinalVectorsInFirstPutOrder) {
  UpsertBuffer buf(2, Metric::kInnerProduct);
  BruteForceIndex idx(2, Metric::kInnerProduct);
  const float v1[2] = {1, 0}, v2[2] = {0, 1}, v3[2] = {3, 0};
  buf.Put(7, v1);
  buf.Put(3, v2);
  buf.Put(7, v3);  // only the final vector for id 7 reaches the index
  ASSERT_TRUE(buf.DrainTo(&idx).ok());
  EXPECT_TRUE(buf.empty());
  EXPECT_FALSE(buf.contains(7));
  EXPECT_EQ(idx.size(), 2u);
  const float q[2] = {1, 0};
  auto r = idx.Search(q, 2);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].id, 7);
  EXPECT_FLOAT_EQ((*r)[0].score, 3.0f);  // v3, not v1
}

TEST(UpsertBufferTest, OfferToMatchesIndexScoringForCosine) {
  // Staged scores must agree with what the backend would report after a
  // drain (normalised-copy semantics), including the zero-vector guard
  // and exclude_id handling.
  const size_t d = 8;
  Rng rng(99);
  UpsertBuffer buf(d, Metric::kCosine);
  BruteForceIndex direct(d, Metric::kCosine);
  std::vector<float> corpus = RandomCorpus(5, d, rng);
  std::fill(corpus.begin() + 4 * d, corpus.end(), 0.0f);  // zero row
  for (int i = 0; i < 5; ++i) {
    buf.Put(i, corpus.data() + i * d);
    ASSERT_TRUE(direct.Add(i, corpus.data() + i * d).ok());
  }
  std::vector<float> q(d);
  for (auto& v : q) v = rng.Normal();

  TopKAccumulator acc(5);
  buf.OfferTo(q.data(), /*exclude_id=*/2, &acc);
  std::vector<Neighbor> staged = acc.Take();
  auto indexed = direct.Search(q.data(), 5, /*exclude_id=*/2);
  ASSERT_TRUE(indexed.ok());
  ASSERT_EQ(staged.size(), indexed->size());
  for (size_t i = 0; i < staged.size(); ++i) {
    EXPECT_EQ(staged[i].id, (*indexed)[i].id) << "rank " << i;
    EXPECT_NEAR(staged[i].score, (*indexed)[i].score, 1e-5) << "rank " << i;
    EXPECT_NE(staged[i].id, 2);
  }
}

// ------------------------------------------------------- SQ8 storage

// Recall of sq8 search against the fp32 exact reference: quantization
// perturbs scores by ~scale/2 per element, so top-10 overlap stays high
// on a random corpus even though exact ranks can swap.
TEST(Sq8IndexTest, BruteForceSq8TracksFp32Reference) {
  const size_t n = 200, d = 32;
  Rng rng(41);
  auto corpus = RandomCorpus(n, d, rng);
  BruteForceIndex idx(d, Metric::kCosine, /*parallel=*/false,
                      quant::Storage::kSq8);
  EXPECT_EQ(idx.storage(), quant::Storage::kSq8);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(idx.Add(static_cast<int>(i), corpus.data() + i * d).ok());
  }
  double recall = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    std::vector<float> q(d);
    for (auto& v : q) v = rng.Normal();
    auto got = idx.Search(q.data(), 10);
    ASSERT_TRUE(got.ok());
    auto truth = ExactSearch(corpus, n, d, q.data(), 10, Metric::kCosine);
    recall += RecallAtK(*got, truth);
    // Scores are cosine-like: quantized but close.
    for (const auto& nb : *got) {
      const float exact =
          tensor_ops::Cosine(q.data(), corpus.data() + nb.id * d, d);
      EXPECT_NEAR(nb.score, exact, 0.05) << "id " << nb.id;
    }
  }
  EXPECT_GE(recall / trials, 0.9);
}

TEST(Sq8IndexTest, BruteForceRemoveIsATrueDelete) {
  for (quant::Storage storage :
       {quant::Storage::kFp32, quant::Storage::kSq8}) {
    const size_t n = 50, d = 8;
    Rng rng(17);
    auto corpus = RandomCorpus(n, d, rng);
    BruteForceIndex idx(d, Metric::kInnerProduct, /*parallel=*/false,
                        storage);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(idx.Add(static_cast<int>(i), corpus.data() + i * d).ok());
    }
    EXPECT_FALSE(idx.Remove(999).ok());  // NotFound
    for (int id : {0, 7, 49, 25}) {
      ASSERT_TRUE(idx.Remove(id).ok());
    }
    EXPECT_EQ(idx.size(), n - 4);
    std::vector<float> q(d);
    for (auto& v : q) v = rng.Normal();
    auto r = idx.Search(q.data(), n);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->size(), n - 4);
    for (const auto& nb : *r) {
      EXPECT_NE(nb.id, 0);
      EXPECT_NE(nb.id, 7);
      EXPECT_NE(nb.id, 49);
      EXPECT_NE(nb.id, 25);
    }
    // Removed ids can come back.
    ASSERT_TRUE(idx.Add(7, corpus.data() + 7 * d).ok());
    EXPECT_EQ(idx.size(), n - 3);
  }
}

TEST(Sq8IndexTest, IvfSq8RecallAndRemove) {
  const size_t n = 300, d = 16;
  Rng rng(23);
  auto corpus = RandomCorpus(n, d, rng);
  IvfFlatIndex::Options opts;
  opts.nlist = 8;
  opts.nprobe = 8;  // full probe: bucket choice cannot cost recall
  IvfFlatIndex idx(d, Metric::kCosine, opts, quant::Storage::kSq8);
  ASSERT_TRUE(idx.Train(corpus, n).ok());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(idx.Add(static_cast<int>(i), corpus.data() + i * d).ok());
  }
  double recall = 0.0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    std::vector<float> q(d);
    for (auto& v : q) v = rng.Normal();
    auto got = idx.Search(q.data(), 10);
    ASSERT_TRUE(got.ok());
    auto truth = ExactSearch(corpus, n, d, q.data(), 10, Metric::kCosine);
    recall += RecallAtK(*got, truth);
  }
  EXPECT_GE(recall / trials, 0.85);

  EXPECT_FALSE(idx.Remove(12345).ok());
  ASSERT_TRUE(idx.Remove(5).ok());
  ASSERT_TRUE(idx.Remove(250).ok());
  EXPECT_EQ(idx.size(), n - 2);
  std::vector<float> q(d);
  for (auto& v : q) v = rng.Normal();
  auto r = idx.Search(q.data(), n);
  ASSERT_TRUE(r.ok());
  for (const auto& nb : *r) {
    EXPECT_NE(nb.id, 5);
    EXPECT_NE(nb.id, 250);
  }
}

TEST(Sq8IndexTest, HnswSq8HighRecall) {
  const size_t n = 500, d = 24;
  Rng rng(31);
  auto corpus = RandomCorpus(n, d, rng);
  HnswIndex::Options opts;
  opts.ef_search = 128;
  HnswIndex idx(d, Metric::kCosine, opts, quant::Storage::kSq8);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(idx.Add(static_cast<int>(i), corpus.data() + i * d).ok());
  }
  double recall = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    std::vector<float> q(d);
    for (auto& v : q) v = rng.Normal();
    auto got = idx.Search(q.data(), 10);
    ASSERT_TRUE(got.ok());
    auto truth = ExactSearch(corpus, n, d, q.data(), 10, Metric::kCosine);
    recall += RecallAtK(*got, truth);
  }
  EXPECT_GE(recall / trials, 0.85);
}

// The tombstone bound: after every Add/Remove past the 64-node floor,
// dead nodes never exceed max_tombstone_ratio of the resident graph
// (a rebuild fires the moment they would). Search stays consistent
// throughout the churn.
TEST(Sq8IndexTest, HnswTombstonesBoundedUnderChurn) {
  const size_t n = 150, d = 12;
  Rng rng(37);
  auto corpus = RandomCorpus(n, d, rng);
  HnswIndex::Options opts;
  opts.max_tombstone_ratio = 0.25;
  for (quant::Storage storage :
       {quant::Storage::kFp32, quant::Storage::kSq8}) {
    HnswIndex idx(d, Metric::kCosine, opts, storage);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(idx.Add(static_cast<int>(i), corpus.data() + i * d).ok());
    }
    // Delete-heavy churn: updates (tombstone + reinsert) and removes.
    std::vector<float> row(d);
    for (int step = 0; step < 600; ++step) {
      const int id = static_cast<int>(rng.UniformFloat() * n);
      if (step % 3 == 2) {
        const Status s = idx.Remove(id);
        (void)s;  // NotFound when already removed — fine
      } else {
        for (auto& v : row) v = rng.Normal();
        ASSERT_TRUE(idx.Add(id, row.data()).ok());
      }
      const size_t tombstones = idx.num_graph_nodes() - idx.size();
      ASSERT_LE(static_cast<double>(tombstones),
                0.25 * static_cast<double>(idx.num_graph_nodes()) + 1e-9)
          << "step " << step;
      EXPECT_EQ(idx.memory_stats().tombstones, tombstones);
    }
    // The graph still answers queries over exactly the live set.
    std::vector<float> q(d);
    for (auto& v : q) v = rng.Normal();
    auto r = idx.Search(q.data(), 10);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r->size(), 0u);
  }
}

TEST(Sq8IndexTest, HnswRatioZeroDisablesRebuilds) {
  const size_t n = 100, d = 8;
  Rng rng(43);
  auto corpus = RandomCorpus(n, d, rng);
  HnswIndex::Options opts;
  opts.max_tombstone_ratio = 0.0;  // pre-quant behavior: unbounded
  HnswIndex idx(d, Metric::kCosine, opts);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(idx.Add(static_cast<int>(i), corpus.data() + i * d).ok());
  }
  std::vector<float> row(d);
  for (int step = 0; step < 200; ++step) {
    for (auto& v : row) v = rng.Normal();
    ASSERT_TRUE(idx.Add(step % static_cast<int>(n), row.data()).ok());
  }
  // Every update left a tombstone behind.
  EXPECT_EQ(idx.num_graph_nodes(), n + 200);
  EXPECT_EQ(idx.size(), n);
}

TEST(Sq8IndexTest, SerializeRoundTripIsBitExact) {
  const size_t n = 120, d = 16;
  Rng rng(53);
  auto corpus = RandomCorpus(n, d, rng);

  const auto roundtrip = [&](VectorIndex& src, VectorIndex& dst) {
    std::string blob;
    src.SerializeTo(&blob);
    ASSERT_TRUE(dst.DeserializeFrom(blob).ok());
    std::string blob2;
    dst.SerializeTo(&blob2);
    EXPECT_EQ(blob, blob2);  // codes + params verbatim, not re-quantized
    std::vector<float> q(d);
    for (auto& v : q) v = rng.Normal();
    auto a = src.Search(q.data(), 10);
    auto b = dst.Search(q.data(), 10);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].id, (*b)[i].id);
      EXPECT_EQ((*a)[i].score, (*b)[i].score);  // bit-exact
    }
  };

  {
    BruteForceIndex src(d, Metric::kCosine, false, quant::Storage::kSq8);
    BruteForceIndex dst(d, Metric::kCosine, false, quant::Storage::kSq8);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(src.Add(static_cast<int>(i), corpus.data() + i * d).ok());
    }
    roundtrip(src, dst);
  }
  {
    HnswIndex::Options opts;
    HnswIndex src(d, Metric::kCosine, opts, quant::Storage::kSq8);
    HnswIndex dst(d, Metric::kCosine, opts, quant::Storage::kSq8);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(src.Add(static_cast<int>(i), corpus.data() + i * d).ok());
    }
    roundtrip(src, dst);
  }
  {
    IvfFlatIndex::Options opts;
    opts.nlist = 4;
    IvfFlatIndex src(d, Metric::kCosine, opts, quant::Storage::kSq8);
    IvfFlatIndex dst(d, Metric::kCosine, opts, quant::Storage::kSq8);
    ASSERT_TRUE(src.Train(corpus, n).ok());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(src.Add(static_cast<int>(i), corpus.data() + i * d).ok());
    }
    roundtrip(src, dst);
  }
}

TEST(Sq8IndexTest, DeserializeRejectsStorageModeMismatch) {
  const size_t d = 8;
  BruteForceIndex sq8(d, Metric::kCosine, false, quant::Storage::kSq8);
  const float v[d] = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(sq8.Add(0, v).ok());
  std::string blob;
  sq8.SerializeTo(&blob);
  BruteForceIndex fp32(d, Metric::kCosine);
  const Status s = fp32.DeserializeFrom(blob);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("storage"), std::string::npos);
}

// The acceptance bar for the storage mode: per-row bytes reported by the
// new memory accounting drop >= 3x at the server-default dim of 32.
TEST(Sq8IndexTest, MemoryStatsReportAtLeast3xReduction) {
  const size_t n = 100, d = 32;
  Rng rng(61);
  auto corpus = RandomCorpus(n, d, rng);
  BruteForceIndex fp32(d, Metric::kCosine);
  BruteForceIndex sq8(d, Metric::kCosine, false, quant::Storage::kSq8);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(fp32.Add(static_cast<int>(i), corpus.data() + i * d).ok());
    ASSERT_TRUE(sq8.Add(static_cast<int>(i), corpus.data() + i * d).ok());
  }
  const IndexMemoryStats a = fp32.memory_stats();
  const IndexMemoryStats b = sq8.memory_stats();
  EXPECT_EQ(a.embedding_bytes, n * d * sizeof(float));
  EXPECT_EQ(a.code_bytes, 0u);
  EXPECT_EQ(b.embedding_bytes, 0u);
  EXPECT_EQ(b.code_bytes, n * (d + 2 * sizeof(float)));
  EXPECT_GE(a.embedding_bytes, 3 * b.code_bytes);
}

TEST(Sq8IndexTest, UpsertBufferSq8StagedScoresMatchDrainedIndex) {
  // The staged/compacted consistency contract in sq8 mode: OfferTo
  // scores staged rows on the same codes the backend will hold after the
  // drain, so the merged view never flickers when a compaction lands.
  const size_t d = 16;
  Rng rng(67);
  UpsertBuffer buf(d, Metric::kCosine, quant::Storage::kSq8);
  BruteForceIndex idx(d, Metric::kCosine, false, quant::Storage::kSq8);
  std::vector<float> corpus = RandomCorpus(6, d, rng);
  std::fill(corpus.begin() + 5 * d, corpus.end(), 0.0f);  // zero row
  for (int i = 0; i < 6; ++i) {
    buf.Put(i, corpus.data() + i * d);
  }
  std::vector<float> q(d);
  for (auto& v : q) v = rng.Normal();

  TopKAccumulator acc(6);
  buf.OfferTo(q.data(), /*exclude_id=*/-1, &acc);
  std::vector<Neighbor> staged = acc.Take();

  ASSERT_TRUE(buf.DrainTo(&idx).ok());
  auto drained = idx.Search(q.data(), 6);
  ASSERT_TRUE(drained.ok());
  ASSERT_EQ(staged.size(), drained->size());
  for (size_t i = 0; i < staged.size(); ++i) {
    EXPECT_EQ(staged[i].id, (*drained)[i].id) << "rank " << i;
    EXPECT_NEAR(staged[i].score, (*drained)[i].score, 1e-5) << "rank " << i;
  }
}

}  // namespace
}  // namespace sccf::index
