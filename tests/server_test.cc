// The network front end, two layers deep:
//
//  * dispatch (no sockets): command execution against a live Engine,
//    including the wire-visible pins of the Engine validation contract
//    (negative n / BETA / ids answer -INVALIDARGUMENT, never crash).
//  * reactor (loopback sockets): server replies bit-identical to the
//    same commands executed directly against a twin Engine; malformed
//    frames poison only their own connection; graceful drain completes
//    in-flight pipelines; the connection cap refuses loudly.
//
// Overload-resilience coverage (same fixture): idle-timeout reaping
// frees the slot with an explicit -TIMEOUT, the in-flight byte budget
// sheds new commands with -OVERLOADED while the congesting pipeline
// still completes, and BGSAVE — deferred through the Engine helper
// thread — produces a snapshot bit-identical to a synchronous SAVE at
// the same horizon and stays recoverable under concurrent ingest.

#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "models/fism.h"
#include "online/engine.h"
#include "persist/fs.h"
#include "server/dispatch.h"
#include "server/protocol.h"
#include "server/timer_wheel.h"
#include "testing/temp_dir.h"
#include "util/logging.h"

namespace sccf::server {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig cfg;
    cfg.name = "server-test";
    cfg.num_users = 120;
    cfg.num_items = 160;
    cfg.num_clusters = 8;
    cfg.min_actions = 10;
    cfg.max_actions = 30;
    cfg.seed = 53;
    data::SyntheticGenerator gen(cfg);
    auto ds = gen.Generate();
    SCCF_CHECK(ds.ok());
    dataset_ = new data::Dataset(std::move(ds).value());
    split_ = new data::LeaveOneOutSplit(*dataset_);

    models::Fism::Options fopts;
    fopts.dim = 16;
    fopts.epochs = 2;
    fism_ = new models::Fism(fopts);
    SCCF_CHECK(fism_->Fit(*split_).ok());
  }
  static void TearDownTestSuite() {
    delete fism_;
    delete split_;
    delete dataset_;
    fism_ = nullptr;
    split_ = nullptr;
    dataset_ = nullptr;
  }

  /// A freshly bootstrapped engine over the shared corpus. Each call
  /// returns an identical twin (same model, same bootstrap state). With
  /// `recover_dir` set the twin is persistent: it recovers whatever the
  /// directory holds and journals every ingest there.
  static std::unique_ptr<online::Engine> MakeEngine(
      const std::string& recover_dir = "") {
    online::Engine::Options opts;
    opts.beta = 10;
    opts.num_shards = 4;
    opts.recover_dir = recover_dir;
    auto engine = std::make_unique<online::Engine>(*fism_, opts);
    SCCF_CHECK(engine->BootstrapFromSplit(*split_).ok());
    return engine;
  }

  static data::Dataset* dataset_;
  static data::LeaveOneOutSplit* split_;
  static models::Fism* fism_;
};

data::Dataset* ServerTest::dataset_ = nullptr;
data::LeaveOneOutSplit* ServerTest::split_ = nullptr;
models::Fism* ServerTest::fism_ = nullptr;

std::string Dispatch(online::Engine& engine, const Command& cmd) {
  std::string out;
  Execute(engine, cmd, &out);
  return out;
}

// ------------------------------------------------------------ dispatch

TEST_F(ServerTest, DispatchPingAndQuit) {
  auto engine = MakeEngine();
  EXPECT_EQ(Dispatch(*engine, {"PING", {}}), "+PONG\r\n");
  std::string out;
  EXPECT_TRUE(Execute(*engine, {"QUIT", {}}, &out));
  EXPECT_EQ(out, "+OK\r\n");
  EXPECT_FALSE(Execute(*engine, {"PING", {}}, &out));
}

TEST_F(ServerTest, DispatchUnknownCommand) {
  auto engine = MakeEngine();
  const std::string reply = Dispatch(*engine, {"FROBNICATE", {"1"}});
  EXPECT_EQ(reply.rfind("-ERR ", 0), 0u) << reply;
}

// The satellite bugfix, pinned at the wire: a negative BETA / n / id
// must surface the Engine's InvalidArgument as an error reply. Before
// the signed-field fix a parsed "-5" wrapped into a huge size_t and
// sailed through validation.
TEST_F(ServerTest, DispatchNegativeKnobsAreInvalidArgument) {
  auto engine = MakeEngine();
  for (const Command& cmd : std::vector<Command>{
           {"RECOMMEND", {"5", "-7"}},
           {"RECOMMEND", {"5", "0"}},
           {"RECOMMEND", {"5", "10", "BETA", "-3"}},
           {"RECOMMEND", {"5", "10", "BETA", "0"}},
           {"NEIGHBORS", {"5", "BETA", "-4"}},
           {"NEIGHBORS", {"5", "BETA", "0"}},
           // Huge-but-positive knobs parse fine and must be rejected by
           // the Engine cap — before it, this n reached the top-k
           // accumulator as a near-2^62 reserve() and terminated the
           // process from the epoll thread.
           {"RECOMMEND", {"5", "4611686018427387904"}},
           {"RECOMMEND", {"5", "10", "BETA", "4611686018427387904"}},
           {"NEIGHBORS", {"5", "BETA", "4611686018427387904"}},
       }) {
    const std::string reply = Dispatch(*engine, cmd);
    EXPECT_EQ(reply.rfind("-INVALIDARGUMENT ", 0), 0u)
        << cmd.name << " replied: " << reply;
  }
  // Negative ids in INGEST reject the whole batch atomically.
  const std::string reply =
      Dispatch(*engine, {"INGEST", {"3", "7", "0", "3", "8", "-12"}});
  EXPECT_EQ(reply.rfind("-INVALIDARGUMENT ", 0), 0u) << reply;
  auto history = engine->History({3});
  ASSERT_TRUE(history.ok());
  auto twin = MakeEngine();
  auto twin_history = twin->History({3});
  ASSERT_TRUE(twin_history.ok());
  EXPECT_EQ(history->items, twin_history->items)
      << "rejected batch must not mutate state";
}

TEST_F(ServerTest, DispatchMalformedArguments) {
  auto engine = MakeEngine();
  for (const Command& cmd : std::vector<Command>{
           {"RECOMMEND", {}},
           {"RECOMMEND", {"abc", "10"}},
           {"RECOMMEND", {"5", "10", "BOGUS"}},
           {"NEIGHBORS", {}},
           {"NEIGHBORS", {"5", "WAT", "3"}},
           {"HISTORY", {}},
           {"HISTORY", {"1", "2"}},
           {"HISTORY", {"99999999999999999999"}},  // > int32: reject
           {"INGEST", {"1", "2"}},                 // not triples
           {"INGEST", {"1", "2", "x"}},
       }) {
    const std::string reply = Dispatch(*engine, cmd);
    EXPECT_EQ(reply.rfind("-ERR ", 0), 0u)
        << cmd.name << " replied: " << reply;
  }
}

TEST_F(ServerTest, DispatchHistoryRoundTrip) {
  auto engine = MakeEngine();
  ASSERT_EQ(Dispatch(*engine, {"INGEST", {"0", "5", "100", "0", "9", "101"}})
                .rfind("*3\r\n", 0),
            0u);
  auto direct = engine->History({0});
  ASSERT_TRUE(direct.ok());
  std::string expected;
  AppendArrayHeader(&expected, direct->items.size());
  for (int item : direct->items) AppendInteger(&expected, item);
  EXPECT_EQ(Dispatch(*engine, {"HISTORY", {"0"}}), expected);
}

TEST_F(ServerTest, DispatchStatsShape) {
  auto engine = MakeEngine();
  const std::string reply = Dispatch(*engine, {"STATS", {}});
  EXPECT_EQ(reply.rfind("*18\r\n", 0), 0u) << reply;
  EXPECT_NE(reply.find("num_users"), std::string::npos);
  EXPECT_NE(reply.find("pending_upserts"), std::string::npos);
  EXPECT_NE(reply.find("save_in_progress"), std::string::npos);
  EXPECT_NE(reply.find("last_save_duration_ms"), std::string::npos);
  EXPECT_NE(reply.find("embedding_bytes"), std::string::npos);
  EXPECT_NE(reply.find("code_bytes"), std::string::npos);
  EXPECT_NE(reply.find("tombstones"), std::string::npos);
}

// SHARDSTATS: one nested 14-element k/v array per shard, so operators
// can spot hot/cold shard imbalance. The per-shard byte counters must
// sum to the STATS totals (fp32 engine: all embedding bytes, no codes).
TEST_F(ServerTest, DispatchShardStatsShape) {
  auto engine = MakeEngine();
  const std::string reply = Dispatch(*engine, {"SHARDSTATS", {}});
  EXPECT_EQ(reply.rfind("*4\r\n", 0), 0u) << reply;  // num_shards = 4
  size_t nested = 0;
  for (size_t pos = reply.find("*14\r\n"); pos != std::string::npos;
       pos = reply.find("*14\r\n", pos + 1)) {
    ++nested;
  }
  EXPECT_EQ(nested, 4u) << reply;
  for (const char* key : {"shard", "users", "index_rows",
                          "embedding_bytes", "code_bytes", "tombstones",
                          "staged_rows"}) {
    EXPECT_NE(reply.find(key), std::string::npos) << key;
  }
  const auto shards = engine->ShardStats();
  ASSERT_EQ(shards.size(), 4u);
  size_t users = 0, embedding_bytes = 0;
  for (const auto& s : shards) {
    users += s.users;
    embedding_bytes += s.embedding_bytes;
    EXPECT_EQ(s.code_bytes, 0u);  // fp32 engine holds no codes
  }
  EXPECT_EQ(users, engine->num_users());
  EXPECT_GT(embedding_bytes, 0u);
  EXPECT_EQ(engine->Stats().embedding_bytes, embedding_bytes);
}

// The "never saved" sentinel: LASTSAVE must be distinguishable from a
// save that landed at epoch 0, and save-free STATS advertises the same
// via last_save_duration_ms.
TEST_F(ServerTest, DispatchLastSaveNeverSavedIsMinusOne) {
  auto engine = MakeEngine();
  EXPECT_EQ(Dispatch(*engine, {"LASTSAVE", {}}), ":-1\r\n");
  const std::string stats = Dispatch(*engine, {"STATS", {}});
  EXPECT_NE(stats.find(":-1\r\n"), std::string::npos) << stats;
  // Without --data_dir both save commands refuse identically.
  EXPECT_EQ(Dispatch(*engine, {"SAVE", {}})
                .rfind("-FAILEDPRECONDITION ", 0),
            0u);
  EXPECT_EQ(Dispatch(*engine, {"BGSAVE", {}})
                .rfind("-FAILEDPRECONDITION ", 0),
            0u);
}

// ---------------------------------------------------- loopback helpers

/// Blocking loopback client with a receive timeout (so a server bug
/// fails the test instead of hanging it).
class Client {
 public:
  /// `rcvbuf` > 0 shrinks the receive buffer before connecting — the
  /// overload tests use a tiny window so an unread pipeline backs up
  /// into the server's in-flight account instead of kernel buffers.
  explicit Client(uint16_t port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    SCCF_CHECK(fd_ >= 0);
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    if (rcvbuf > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t w =
          ::write(fd_, bytes.data() + sent, bytes.size() - sent);
      ASSERT_GT(w, 0) << "send failed: " << std::strerror(errno);
      sent += static_cast<size_t>(w);
    }
  }

  /// Reads exactly one complete reply (raw bytes). Empty on EOF/timeout.
  std::string ReadReply() {
    std::string reply;
    while (true) {
      switch (parser_.Next(&reply)) {
        case ReplyParser::Result::kReply:
          return reply;
        case ReplyParser::Result::kError:
          ADD_FAILURE() << "reply stream desynchronized";
          return "";
        case ReplyParser::Result::kNeedMore:
          break;
      }
      char buf[4096];
      const ssize_t r = ::read(fd_, buf, sizeof(buf));
      if (r <= 0) return "";  // EOF or timeout
      parser_.Feed(std::string_view(buf, static_cast<size_t>(r)));
    }
  }

  /// True when the peer has closed (read returns EOF after pending
  /// replies are drained).
  bool ReadEof() {
    char buf[4096];
    const ssize_t r = ::read(fd_, buf, sizeof(buf));
    return r == 0;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  ReplyParser parser_;
};

std::string EncodeMultibulk(const Command& cmd) {
  std::string out;
  AppendArrayHeader(&out, cmd.args.size() + 1);
  AppendBulkString(&out, cmd.name);
  for (const std::string& arg : cmd.args) AppendBulkString(&out, arg);
  return out;
}

// ----------------------------------------------------- loopback server

TEST_F(ServerTest, LoopbackBitIdenticalToDirectDispatch) {
  auto served = MakeEngine();
  auto twin = MakeEngine();
  ServerOptions opts;
  opts.port = 0;
  Server server(*served, opts);
  ASSERT_TRUE(server.Start().ok());

  // All four Engine commands plus STATS and error paths, mutations
  // included — the twin executes the identical sequence locally, and
  // every reply must match byte for byte (deterministic float
  // serialization is what makes this possible).
  const std::vector<Command> script = {
      {"PING", {}},
      {"INGEST", {"0", "5", "100", "1", "9", "100", "0", "7", "101"}},
      {"RECOMMEND", {"0", "10"}},
      {"RECOMMEND", {"1", "5", "BETA", "8"}},
      {"RECOMMEND", {"1", "5", "WITHSEEN"}},
      {"NEIGHBORS", {"0"}},
      {"NEIGHBORS", {"1", "BETA", "4"}},
      {"HISTORY", {"0"}},
      {"HISTORY", {"424242"}},  // NotFound, identically serialized
      {"RECOMMEND", {"0", "10", "BETA", "-5"}},  // InvalidArgument
      {"STATS", {}},
  };

  Client client(server.port());
  ASSERT_TRUE(client.connected());
  for (const Command& cmd : script) {
    client.Send(EncodeMultibulk(cmd));
    EXPECT_EQ(client.ReadReply(), Dispatch(*twin, cmd)) << cmd.name;
  }

  // Same script again, pipelined in one write and framed inline, to pin
  // framing-independence of the replies.
  std::string pipeline;
  std::vector<std::string> expected;
  for (const Command& cmd : script) {
    pipeline += cmd.name;
    for (const std::string& arg : cmd.args) pipeline += " " + arg;
    pipeline += "\r\n";
    expected.push_back(Dispatch(*twin, cmd));
  }
  client.Send(pipeline);
  for (size_t i = 0; i < script.size(); ++i) {
    EXPECT_EQ(client.ReadReply(), expected[i]) << script[i].name;
  }

  server.Shutdown();
  server.Wait();
  EXPECT_FALSE(server.running());
}

TEST_F(ServerTest, MalformedFramePoisonsOnlyItsConnection) {
  auto engine = MakeEngine();
  ServerOptions opts;
  opts.port = 0;
  Server server(*engine, opts);
  ASSERT_TRUE(server.Start().ok());

  Client healthy(server.port());
  Client broken(server.port());
  ASSERT_TRUE(healthy.connected());
  ASSERT_TRUE(broken.connected());

  // Recoverable error first: the connection survives `*0`.
  broken.Send("*0\r\n");
  EXPECT_EQ(broken.ReadReply().rfind("-ERR ", 0), 0u);
  broken.Send("PING\r\n");
  EXPECT_EQ(broken.ReadReply(), "+PONG\r\n");

  // Fatal garbage: an error reply, then the connection is closed —
  // and the other connection never notices.
  broken.Send("*1\r\nGARBAGE\r\n");
  EXPECT_EQ(broken.ReadReply().rfind("-ERR ", 0), 0u);
  EXPECT_TRUE(broken.ReadEof());

  healthy.Send("PING\r\n");
  EXPECT_EQ(healthy.ReadReply(), "+PONG\r\n");

  server.Shutdown();
  server.Wait();
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 2u);
  EXPECT_GE(stats.protocol_errors, 2u);
}

TEST_F(ServerTest, GracefulDrainCompletesInFlightPipeline) {
  auto engine = MakeEngine();
  ServerOptions opts;
  opts.port = 0;
  Server server(*engine, opts);
  ASSERT_TRUE(server.Start().ok());

  // A deep pipeline in one write; read one reply to guarantee the
  // server has the rest buffered, then begin the drain mid-stream.
  constexpr int kPipeline = 64;
  std::string batch;
  for (int i = 0; i < kPipeline; ++i) {
    batch += "RECOMMEND " + std::to_string(i % 50) + " 10\r\n";
  }
  Client client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send(batch);
  const std::string first = client.ReadReply();
  EXPECT_EQ(first.rfind("*", 0), 0u) << first;

  server.Shutdown();

  // Every remaining in-flight reply still arrives, then clean EOF.
  int received = 1;
  while (true) {
    const std::string reply = client.ReadReply();
    if (reply.empty()) break;
    EXPECT_EQ(reply.rfind("*", 0), 0u) << "reply " << received;
    ++received;
  }
  EXPECT_EQ(received, kPipeline);

  server.Wait();
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(engine->background_compaction_running());
}

TEST_F(ServerTest, SlowConsumerBacklogClosesOnlyItsConnection) {
  auto engine = MakeEngine();
  ServerOptions opts;
  opts.port = 0;
  opts.write_buffer_limit = 2048;
  Server server(*engine, opts);
  ASSERT_TRUE(server.Start().ok());

  Client greedy(server.port());
  Client healthy(server.port());
  ASSERT_TRUE(greedy.connected());
  ASSERT_TRUE(healthy.connected());

  // Pipeline far more reply bytes than the cap in one write, reading
  // nothing back: the whole batch lands in one read sweep, so the
  // slow-consumer cut fires *inside* the readable handler — the
  // regression here was the handler then touching the freed
  // connection. The stream must simply end (no reply desync, no
  // crash), and the other connection must never notice.
  std::string batch;
  for (int i = 0; i < 256; ++i) {
    batch += "RECOMMEND " + std::to_string(i % 50) + " 50\r\n";
  }
  greedy.Send(batch);
  while (!greedy.ReadReply().empty()) {
  }

  healthy.Send("PING\r\n");
  EXPECT_EQ(healthy.ReadReply(), "+PONG\r\n");

  server.Shutdown();
  server.Wait();
  EXPECT_FALSE(server.running());
}

TEST_F(ServerTest, ConnectionCapRefusesLoudly) {
  auto engine = MakeEngine();
  ServerOptions opts;
  opts.port = 0;
  opts.max_connections = 1;
  Server server(*engine, opts);
  ASSERT_TRUE(server.Start().ok());

  Client first(server.port());
  ASSERT_TRUE(first.connected());
  first.Send("PING\r\n");
  EXPECT_EQ(first.ReadReply(), "+PONG\r\n");  // ensures accept happened

  Client second(server.port());
  ASSERT_TRUE(second.connected());  // kernel accepts; server refuses
  const std::string refusal = second.ReadReply();
  EXPECT_EQ(refusal, "-OVERLOADED max connections reached\r\n");
  EXPECT_TRUE(second.ReadEof());

  // The surviving connection is unaffected, and a slot freed by QUIT
  // can be reused.
  first.Send("QUIT\r\n");
  EXPECT_EQ(first.ReadReply(), "+OK\r\n");
  EXPECT_TRUE(first.ReadEof());
  Client third(server.port());
  ASSERT_TRUE(third.connected());
  third.Send("PING\r\n");
  EXPECT_EQ(third.ReadReply(), "+PONG\r\n");

  server.Shutdown();
  server.Wait();
  EXPECT_GE(server.stats().connections_refused, 1u);
}

// ------------------------------------------------- overload resilience

// The lazy-cancellation contract of the reactor's deadline source,
// pinned directly: re-arming supersedes, cancellation survives fd
// recycling, and the next-deadline view prunes stale heads.
TEST_F(ServerTest, TimerWheelLazyCancellation) {
  TimerWheel wheel;
  EXPECT_EQ(wheel.NextDeadlineNs(), -1);  // nothing armed: sleep forever

  wheel.Arm(5, TimerWheel::Kind::kIdle, 100);
  wheel.Arm(7, TimerWheel::Kind::kIdle, 50);
  EXPECT_EQ(wheel.NextDeadlineNs(), 50);

  // Refresh fd 7 later than fd 5: the stale 50 entry must neither fire
  // nor show up as the next deadline.
  wheel.Arm(7, TimerWheel::Kind::kIdle, 200);
  EXPECT_EQ(wheel.NextDeadlineNs(), 100);
  auto fired = wheel.PopExpired(99);
  EXPECT_TRUE(fired.empty());
  fired = wheel.PopExpired(100);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].fd, 5);

  // Distinct kinds on one fd coexist; CancelAll kills both, and a
  // recycled fd starts clean.
  wheel.Arm(7, TimerWheel::Kind::kWriteStall, 150);
  wheel.CancelAll(7);
  EXPECT_EQ(wheel.NextDeadlineNs(), -1);
  EXPECT_TRUE(wheel.PopExpired(1000).empty());
  wheel.Arm(7, TimerWheel::Kind::kIdle, 300);
  fired = wheel.PopExpired(300);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, TimerWheel::Kind::kIdle);
}

TEST_F(ServerTest, IdleTimeoutReapsWithExplicitErrorAndFreesSlot) {
  auto engine = MakeEngine();
  ServerOptions opts;
  opts.port = 0;
  opts.max_connections = 1;  // the reap must free the only slot
  opts.idle_timeout_ms = 150;
  Server server(*engine, opts);
  ASSERT_TRUE(server.Start().ok());

  Client idler(server.port());
  ASSERT_TRUE(idler.connected());
  idler.Send("PING\r\n");
  EXPECT_EQ(idler.ReadReply(), "+PONG\r\n");

  // Say nothing past the deadline: the server must announce the reap —
  // not silently reset — and then close.
  EXPECT_EQ(idler.ReadReply(), "-TIMEOUT idle connection\r\n");
  EXPECT_TRUE(idler.ReadEof());

  // The slot is genuinely free again (max_connections = 1).
  Client next(server.port());
  ASSERT_TRUE(next.connected());
  next.Send("PING\r\n");
  EXPECT_EQ(next.ReadReply(), "+PONG\r\n");

  server.Shutdown();
  server.Wait();
  const Server::Stats stats = server.stats();
  EXPECT_GE(stats.connections_timed_out, 1u);
  EXPECT_EQ(stats.connections_refused, 0u);
}

TEST_F(ServerTest, ByteBudgetShedsNewCommandsWhilePipelineCompletes) {
  auto engine = MakeEngine();
  ServerOptions opts;
  opts.port = 0;
  opts.max_inflight_bytes = 16 * 1024;
  Server server(*engine, opts);
  ASSERT_TRUE(server.Start().ok());

  // The congesting client: waves of fat-reply commands, nothing read
  // back (and a tiny receive window). Waves keep coming until the
  // server's unflushed account is over budget AND settled — a settled
  // account means the reactor has flushed to EAGAIN, so what remains
  // genuinely cannot drain (greedy never reads; the kernel path is
  // saturated). Polling for a merely *transient* over-budget reading
  // would race the flush that absorbs it.
  Client greedy(server.port(), 4096);
  Client healthy(server.port());
  ASSERT_TRUE(greedy.connected());
  ASSERT_TRUE(healthy.connected());
  constexpr int kWave = 256;
  int sent = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "backlog never settled over the budget (sent " << sent << ")";
    std::string wave;
    for (int i = 0; i < kWave; ++i, ++sent) {
      wave += "RECOMMEND " + std::to_string(sent % 50) + " 150\r\n";
    }
    greedy.Send(wave);
    // Wait for the account to stop moving (wave executed + flushed).
    uint64_t last = server.stats().inflight_bytes;
    auto stable_since = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - stable_since <
           std::chrono::milliseconds(25)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      const uint64_t cur = server.stats().inflight_bytes;
      if (cur != last) {
        last = cur;
        stable_since = std::chrono::steady_clock::now();
      }
    }
    if (last > opts.max_inflight_bytes) break;  // stable over budget
  }

  // Over budget: a new command is refused loudly. The greedy pipeline
  // is NOT dropped — shedding refuses the cheapest unit first.
  healthy.Send("PING\r\n");
  EXPECT_EQ(healthy.ReadReply(),
            "-OVERLOADED in-flight reply bytes over budget; retry later\r\n");

  // The congesting pipeline still completes: exactly one reply per
  // command, in order, every one parseable. Commands executed before
  // the budget tripped answer normally; ones parsed after it are shed
  // with the same -OVERLOADED (they are "new commands" too — the
  // budget is per command, not per connection). No reply is lost and
  // the connection is never dropped.
  int full_replies = 0;
  int shed_replies = 0;
  for (int received = 0; received < sent; ++received) {
    const std::string reply = greedy.ReadReply();
    ASSERT_FALSE(reply.empty()) << "pipeline cut short at " << received;
    if (reply.rfind("*", 0) == 0) {
      ++full_replies;
    } else {
      EXPECT_EQ(reply.rfind("-OVERLOADED ", 0), 0u) << reply;
      ++shed_replies;
    }
  }
  EXPECT_GT(full_replies, 0);
  EXPECT_GT(shed_replies, 0);

  // Backlog drained: admission reopens.
  const auto reopen_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().inflight_bytes > opts.max_inflight_bytes) {
    ASSERT_LT(std::chrono::steady_clock::now(), reopen_deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  healthy.Send("PING\r\n");
  EXPECT_EQ(healthy.ReadReply(), "+PONG\r\n");

  server.Shutdown();
  server.Wait();
  const Server::Stats stats = server.stats();
  EXPECT_GE(stats.commands_shed, 1u);
  EXPECT_EQ(stats.connections_timed_out, 0u);
}

// ------------------------------------------------------------- BGSAVE

TEST_F(ServerTest, BgSaveSnapshotBitIdenticalToQuiescedSave) {
  sccf::testing::TempDir dir;
  auto served = MakeEngine(dir.file("via_bgsave"));
  auto twin = MakeEngine(dir.file("via_save"));

  ServerOptions opts;
  opts.port = 0;
  Server server(*served, opts);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  // Identical ingest on both sides, then quiesce and save: the server
  // path through BGSAVE (helper thread + deferred reply) and the twin's
  // synchronous SAVE must leave byte-identical snapshot files — same
  // shard states, same embedded journal seq horizon.
  const Command ingest = {
      "INGEST", {"0", "5", "100", "1", "9", "100", "0", "7", "101"}};
  client.Send(EncodeMultibulk(ingest));
  EXPECT_EQ(client.ReadReply().rfind("*3\r\n", 0), 0u);
  EXPECT_EQ(Dispatch(*twin, ingest).rfind("*3\r\n", 0), 0u);

  client.Send("BGSAVE\r\n");
  EXPECT_EQ(client.ReadReply(), "+OK\r\n");
  EXPECT_EQ(Dispatch(*twin, {"SAVE", {}}), "+OK\r\n");

  // LASTSAVE flips from the -1 sentinel to a real timestamp.
  client.Send("LASTSAVE\r\n");
  const std::string lastsave = client.ReadReply();
  EXPECT_EQ(lastsave.rfind(":", 0), 0u);
  EXPECT_NE(lastsave, ":-1\r\n");

  server.Shutdown();
  server.Wait();

  auto bg_bytes =
      persist::ReadFileToString(dir.file("via_bgsave/snapshot"));
  auto sync_bytes =
      persist::ReadFileToString(dir.file("via_save/snapshot"));
  ASSERT_TRUE(bg_bytes.ok()) << bg_bytes.status().ToString();
  ASSERT_TRUE(sync_bytes.ok()) << sync_bytes.status().ToString();
  EXPECT_EQ(*bg_bytes, *sync_bytes)
      << "BGSAVE snapshot diverged from synchronous SAVE";
}

TEST_F(ServerTest, BgSaveUnderConcurrentIngestRecoversBitIdentical) {
  sccf::testing::TempDir dir;
  const std::string data_dir = dir.file("data");
  auto served = MakeEngine(data_dir);

  ServerOptions opts;
  opts.port = 0;
  Server server(*served, opts);
  ASSERT_TRUE(server.Start().ok());

  Client ingester(server.port());
  Client saver(server.port());
  ASSERT_TRUE(ingester.connected());
  ASSERT_TRUE(saver.connected());

  // Stream ingest batches while the BGSAVE runs somewhere in the
  // middle: the snapshot lands at whatever per-shard horizon the export
  // caught, and the journal (pre-rotation tail + post-rotation records)
  // must cover the rest exactly once.
  std::string batch;
  for (int step = 0; step < 40; ++step) {
    batch += "INGEST " + std::to_string(step % 30) + " " +
             std::to_string((step * 7 + 3) % 160) + " " +
             std::to_string(step) + "\r\n";
  }
  ingester.Send(batch);
  saver.Send("BGSAVE\r\n");
  for (int step = 0; step < 40; ++step) {
    EXPECT_EQ(ingester.ReadReply().rfind("*3\r\n", 0), 0u) << step;
  }
  EXPECT_EQ(saver.ReadReply(), "+OK\r\n");
  // And a post-save tail that only the rotated journal holds.
  ingester.Send("INGEST 2 33 100 4 55 101\r\n");
  EXPECT_EQ(ingester.ReadReply().rfind("*3\r\n", 0), 0u);

  server.Shutdown();
  server.Wait();

  // A fresh engine recovered from the directory answers bit-identically
  // to the engine that lived through it.
  auto recovered = MakeEngine(data_dir);
  for (const Command& probe : std::vector<Command>{
           {"HISTORY", {"2"}},
           {"HISTORY", {"4"}},
           {"HISTORY", {"17"}},
           {"NEIGHBORS", {"2"}},
           {"NEIGHBORS", {"29"}},
           {"RECOMMEND", {"2", "10"}},
           {"RECOMMEND", {"15", "10"}},
           // Not STATS: the live engine carries last_save_duration_ms
           // from its BGSAVE, the recovered one has never saved.
       }) {
    EXPECT_EQ(Dispatch(*recovered, probe), Dispatch(*served, probe))
        << probe.name;
  }
}

}  // namespace
}  // namespace sccf::server
