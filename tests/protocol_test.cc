// Pure wire-protocol tests: serialization and the incremental parsers,
// no sockets anywhere. The reactor-level behaviors (isolation, drain)
// live in server_test.cc.

#include "server/protocol.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace sccf::server {
namespace {

using Result = RequestParser::Result;

Command MustNext(RequestParser& parser) {
  Command command;
  std::string error;
  EXPECT_EQ(parser.Next(&command, &error), Result::kCommand) << error;
  return command;
}

// ------------------------------------------------------- serialization

TEST(ReplySerialization, CoreTypes) {
  std::string out;
  AppendSimpleString(&out, "PONG");
  EXPECT_EQ(out, "+PONG\r\n");

  out.clear();
  AppendInteger(&out, -42);
  EXPECT_EQ(out, ":-42\r\n");

  out.clear();
  AppendBulkString(&out, "hello");
  EXPECT_EQ(out, "$5\r\nhello\r\n");

  out.clear();
  AppendArrayHeader(&out, 3);
  EXPECT_EQ(out, "*3\r\n");
}

TEST(ReplySerialization, ErrorsNeverEmbedNewlines) {
  std::string out;
  AppendError(&out, "ERR", "line one\r\nline two");
  // An embedded CRLF would terminate the error early and desynchronize
  // every reply after it; it must be flattened.
  EXPECT_EQ(out, "-ERR line one  line two\r\n");
}

TEST(ReplySerialization, FloatBulkIsShortestRoundTrip) {
  std::string out;
  AppendFloatBulk(&out, 0.5f);
  EXPECT_EQ(out, "$3\r\n0.5\r\n");
  out.clear();
  AppendFloatBulk(&out, 1.0f / 3.0f);
  // std::to_chars shortest form for 1/3 in float.
  EXPECT_EQ(out, "$10\r\n0.33333334\r\n");
}

// ----------------------------------------------------- inline requests

TEST(RequestParser, InlineCommand) {
  RequestParser parser;
  parser.Feed("NEIGHBORS 5 BETA 10\r\n");
  const Command cmd = MustNext(parser);
  EXPECT_EQ(cmd.name, "NEIGHBORS");
  EXPECT_EQ(cmd.args, (std::vector<std::string>{"5", "BETA", "10"}));
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(RequestParser, InlineNameIsUppercasedArgsAreNot) {
  RequestParser parser;
  parser.Feed("recommend 7 Abc\n");
  const Command cmd = MustNext(parser);
  EXPECT_EQ(cmd.name, "RECOMMEND");
  EXPECT_EQ(cmd.args, (std::vector<std::string>{"7", "Abc"}));
}

TEST(RequestParser, InlineBareNewlineAndExtraWhitespace) {
  RequestParser parser;
  parser.Feed("  PING \t \n");
  const Command cmd = MustNext(parser);
  EXPECT_EQ(cmd.name, "PING");
  EXPECT_TRUE(cmd.args.empty());
}

TEST(RequestParser, EmptyAndWhitespaceLinesAreSkipped) {
  RequestParser parser;
  parser.Feed("\r\n\n   \r\nPING\r\n");
  const Command cmd = MustNext(parser);
  EXPECT_EQ(cmd.name, "PING");
  Command next;
  std::string error;
  EXPECT_EQ(parser.Next(&next, &error), Result::kNeedMore);
}

TEST(RequestParser, WhitespaceOnlyLineFloodStaysIterative) {
  // 100k two-byte whitespace-only lines buffered in one sweep: skipping
  // them used to recurse one frame per line (a remote stack-overflow
  // vector); it must be a loop.
  RequestParser parser;
  std::string flood;
  flood.reserve(200006);
  for (int i = 0; i < 100000; ++i) flood += " \n";
  flood += "PING\r\n";
  parser.Feed(flood);
  const Command cmd = MustNext(parser);
  EXPECT_EQ(cmd.name, "PING");
  Command next;
  std::string error;
  EXPECT_EQ(parser.Next(&next, &error), Result::kNeedMore);
}

TEST(RequestParser, SplitAcrossFeeds) {
  // One frame fragmented byte-wise across many reads must come out as
  // exactly one command.
  RequestParser parser;
  const std::string frame = "HISTORY 123\r\n";
  Command cmd;
  std::string error;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    parser.Feed(std::string_view(&frame[i], 1));
    EXPECT_EQ(parser.Next(&cmd, &error), Result::kNeedMore);
  }
  parser.Feed(std::string_view(&frame[frame.size() - 1], 1));
  EXPECT_EQ(parser.Next(&cmd, &error), Result::kCommand);
  EXPECT_EQ(cmd.name, "HISTORY");
  EXPECT_EQ(cmd.args, (std::vector<std::string>{"123"}));
}

TEST(RequestParser, PipelinedCommandsInOneFeed) {
  RequestParser parser;
  parser.Feed("PING\r\nHISTORY 4\r\n*1\r\n$5\r\nSTATS\r\nPING\r\n");
  EXPECT_EQ(MustNext(parser).name, "PING");
  const Command second = MustNext(parser);
  EXPECT_EQ(second.name, "HISTORY");
  EXPECT_EQ(second.args, (std::vector<std::string>{"4"}));
  EXPECT_EQ(MustNext(parser).name, "STATS");
  EXPECT_EQ(MustNext(parser).name, "PING");
  Command cmd;
  std::string error;
  EXPECT_EQ(parser.Next(&cmd, &error), Result::kNeedMore);
}

TEST(RequestParser, OversizedInlineLineIsFatal) {
  RequestParser::Limits limits;
  limits.max_frame_bytes = 64;
  RequestParser parser(limits);
  parser.Feed("PING " + std::string(200, 'x'));  // no newline yet
  Command cmd;
  std::string error;
  EXPECT_EQ(parser.Next(&cmd, &error), Result::kFatal);
  EXPECT_TRUE(parser.fatal());
  // Fatal is sticky: further bytes are ignored, further Nexts fatal.
  parser.Feed("\r\nPING\r\n");
  EXPECT_EQ(parser.Next(&cmd, &error), Result::kFatal);
}

// -------------------------------------------------- multibulk requests

TEST(RequestParser, MultibulkCommand) {
  RequestParser parser;
  parser.Feed("*3\r\n$6\r\ningest\r\n$1\r\n5\r\n$2\r\n77\r\n");
  const Command cmd = MustNext(parser);
  EXPECT_EQ(cmd.name, "INGEST");
  EXPECT_EQ(cmd.args, (std::vector<std::string>{"5", "77"}));
}

TEST(RequestParser, MultibulkBinarySafeArgs) {
  RequestParser parser;
  // Bulk payloads may contain spaces and CR/LF bytes.
  parser.Feed("*2\r\n$4\r\nPING\r\n$5\r\na\r\nb \r\n");
  const Command cmd = MustNext(parser);
  EXPECT_EQ(cmd.args, (std::vector<std::string>{"a\r\nb "}));
}

TEST(RequestParser, MultibulkSplitAcrossFeeds) {
  RequestParser parser;
  const std::string frame = "*2\r\n$7\r\nHISTORY\r\n$3\r\n105\r\n";
  Command cmd;
  std::string error;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    parser.Feed(std::string_view(&frame[i], 1));
    EXPECT_EQ(parser.Next(&cmd, &error), Result::kNeedMore) << "byte " << i;
  }
  parser.Feed(std::string_view(&frame[frame.size() - 1], 1));
  EXPECT_EQ(parser.Next(&cmd, &error), Result::kCommand);
  EXPECT_EQ(cmd.name, "HISTORY");
  EXPECT_EQ(cmd.args, (std::vector<std::string>{"105"}));
}

TEST(RequestParser, EmptyMultibulkIsRecoverableError) {
  // `*0\r\n` frames cleanly but names no command: the stream is intact,
  // so the connection gets an error reply and keeps going.
  RequestParser parser;
  parser.Feed("*0\r\nPING\r\n");
  Command cmd;
  std::string error;
  EXPECT_EQ(parser.Next(&cmd, &error), Result::kError);
  EXPECT_FALSE(parser.fatal());
  EXPECT_EQ(parser.Next(&cmd, &error), Result::kCommand);
  EXPECT_EQ(cmd.name, "PING");
}

TEST(RequestParser, GarbageWhereBulkHeaderExpectedIsFatal) {
  RequestParser parser;
  parser.Feed("*1\r\nWHAT\r\n");  // '$' expected
  Command cmd;
  std::string error;
  EXPECT_EQ(parser.Next(&cmd, &error), Result::kFatal);
}

TEST(RequestParser, BadCountsAreFatal) {
  for (const char* frame :
       {"*x\r\n", "*-2\r\n", "*1\r\n$abc\r\n", "*1\r\n$-5\r\n"}) {
    RequestParser parser;
    parser.Feed(frame);
    Command cmd;
    std::string error;
    EXPECT_EQ(parser.Next(&cmd, &error), Result::kFatal) << frame;
  }
}

TEST(RequestParser, BulkPayloadMustBeCrlfTerminated) {
  RequestParser parser;
  parser.Feed("*1\r\n$4\r\nPINGxxTRAILING\r\n");
  Command cmd;
  std::string error;
  EXPECT_EQ(parser.Next(&cmd, &error), Result::kFatal);
}

TEST(RequestParser, TooManyArgsIsFatal) {
  RequestParser::Limits limits;
  limits.max_args = 4;
  RequestParser parser(limits);
  parser.Feed("*5\r\n");
  Command cmd;
  std::string error;
  EXPECT_EQ(parser.Next(&cmd, &error), Result::kFatal);
}

TEST(RequestParser, OversizedBulkArgumentIsFatal) {
  RequestParser::Limits limits;
  limits.max_frame_bytes = 128;
  RequestParser parser(limits);
  parser.Feed("*1\r\n$100000\r\n");
  Command cmd;
  std::string error;
  EXPECT_EQ(parser.Next(&cmd, &error), Result::kFatal);
}

TEST(RequestParser, LongPipelineBufferIsReclaimed) {
  // The consumed prefix must be compacted away, not accumulated: after
  // many frames the buffered remainder stays bounded.
  RequestParser parser;
  for (int round = 0; round < 1000; ++round) {
    parser.Feed("HISTORY 42\r\n");
    const Command cmd = MustNext(parser);
    EXPECT_EQ(cmd.name, "HISTORY");
  }
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

// --------------------------------------------------------- ReplyParser

TEST(ReplyParser, ScalarsAndErrors) {
  ReplyParser parser;
  parser.Feed("+PONG\r\n:42\r\n-ERR nope\r\n$2\r\nhi\r\n");
  std::string reply;
  ASSERT_EQ(parser.Next(&reply), ReplyParser::Result::kReply);
  EXPECT_EQ(reply, "+PONG\r\n");
  ASSERT_EQ(parser.Next(&reply), ReplyParser::Result::kReply);
  EXPECT_EQ(reply, ":42\r\n");
  ASSERT_EQ(parser.Next(&reply), ReplyParser::Result::kReply);
  EXPECT_EQ(reply, "-ERR nope\r\n");
  ASSERT_EQ(parser.Next(&reply), ReplyParser::Result::kReply);
  EXPECT_EQ(reply, "$2\r\nhi\r\n");
  EXPECT_EQ(parser.Next(&reply), ReplyParser::Result::kNeedMore);
}

TEST(ReplyParser, ArrayIsOneReply) {
  ReplyParser parser;
  const std::string array = "*4\r\n:7\r\n$3\r\n0.5\r\n:9\r\n$4\r\n0.25\r\n";
  parser.Feed(array);
  std::string reply;
  ASSERT_EQ(parser.Next(&reply), ReplyParser::Result::kReply);
  EXPECT_EQ(reply, array);
}

TEST(ReplyParser, IncompleteArrayNeedsMore) {
  ReplyParser parser;
  parser.Feed("*2\r\n:1\r\n");  // one of two elements
  std::string reply;
  EXPECT_EQ(parser.Next(&reply), ReplyParser::Result::kNeedMore);
  parser.Feed(":2\r\n");
  ASSERT_EQ(parser.Next(&reply), ReplyParser::Result::kReply);
  EXPECT_EQ(reply, "*2\r\n:1\r\n:2\r\n");
}

TEST(ReplyParser, GarbageIsError) {
  ReplyParser parser;
  parser.Feed("?what\r\n");
  EXPECT_EQ(parser.Next(nullptr), ReplyParser::Result::kError);
}

TEST(ReplyParser, AbsurdBulkLengthIsError) {
  // A near-INT64_MAX length used to wrap the end-of-payload arithmetic
  // past size_t and could throw out of substr; it must be a clean
  // kError, like any other desynchronized stream.
  ReplyParser parser;
  parser.Feed("$9223372036854775800\r\nxx\r\n");
  EXPECT_EQ(parser.Next(nullptr), ReplyParser::Result::kError);
}

TEST(ReplyParser, AbsurdArrayCountIsError) {
  ReplyParser parser;
  parser.Feed("*9223372036854775800\r\n");
  EXPECT_EQ(parser.Next(nullptr), ReplyParser::Result::kError);
}

}  // namespace
}  // namespace sccf::server
