#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <unordered_map>

#include "data/dataset.h"
#include "data/loaders.h"
#include "data/negative_sampler.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "scenario/scenario.h"
#include "util/random.h"

namespace sccf::data {
namespace {

std::vector<Interaction> ToyInteractions() {
  // user 100: items 5, 7, 9 at t = 1, 2, 3; user 200: items 7, 5 at 5, 4.
  return {
      {100, 5, 1}, {100, 7, 2}, {100, 9, 3}, {200, 7, 5}, {200, 5, 4},
  };
}

// --------------------------------------------------------------- Dataset

TEST(DatasetTest, CompactsIdsAndSortsByTime) {
  auto ds = Dataset::FromInteractions("toy", ToyInteractions());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_users(), 2u);
  EXPECT_EQ(ds->num_items(), 3u);
  EXPECT_EQ(ds->num_actions(), 5u);
  // User 0 is original 100 (first appearance).
  EXPECT_EQ(ds->original_user_ids()[0], 100);
  EXPECT_EQ(ds->sequence(0).size(), 3u);
  // User 1's events were given out of order; must be time-sorted: 5 then 7.
  const auto& seq1 = ds->sequence(1);
  ASSERT_EQ(seq1.size(), 2u);
  EXPECT_EQ(ds->original_item_ids()[seq1[0]], 5);
  EXPECT_EQ(ds->original_item_ids()[seq1[1]], 7);
  EXPECT_TRUE(std::is_sorted(ds->timestamps(1).begin(),
                             ds->timestamps(1).end()));
}

TEST(DatasetTest, EmptyIsError) {
  auto ds = Dataset::FromInteractions("empty", {});
  EXPECT_FALSE(ds.ok());
}

TEST(DatasetTest, UserHasItem) {
  auto ds = Dataset::FromInteractions("toy", ToyInteractions());
  ASSERT_TRUE(ds.ok());
  const auto& set0 = ds->user_item_set(0);
  EXPECT_EQ(set0.size(), 3u);
  EXPECT_TRUE(std::is_sorted(set0.begin(), set0.end()));
  for (int item : set0) EXPECT_TRUE(ds->UserHasItem(0, item));
  // An item only user 1 lacks.
  const int item9 = ds->sequence(0)[2];
  EXPECT_FALSE(ds->UserHasItem(1, item9));
}

TEST(DatasetTest, ItemCountsMatchActions) {
  auto ds = Dataset::FromInteractions("toy", ToyInteractions());
  ASSERT_TRUE(ds.ok());
  size_t total = 0;
  for (size_t c : ds->item_counts()) total += c;
  EXPECT_EQ(total, ds->num_actions());
}

TEST(DatasetTest, StatsMatchTableOneColumns) {
  auto ds = Dataset::FromInteractions("toy", ToyInteractions());
  ASSERT_TRUE(ds.ok());
  const DatasetStats st = ds->Stats();
  EXPECT_EQ(st.num_users, 2u);
  EXPECT_EQ(st.num_items, 3u);
  EXPECT_EQ(st.num_actions, 5u);
  EXPECT_DOUBLE_EQ(st.avg_length, 2.5);
  EXPECT_DOUBLE_EQ(st.density, 5.0 / 6.0);
}

TEST(DatasetTest, CategoriesValidated) {
  auto ds = Dataset::FromInteractions("toy", ToyInteractions());
  ASSERT_TRUE(ds.ok());
  ds->set_item_categories({0, 1, 0});
  EXPECT_EQ(ds->num_categories(), 2u);
  EXPECT_EQ(ds->item_categories().size(), 3u);
}

// ------------------------------------------------------------ KCoreFilter

std::vector<Interaction> SkewedInteractions() {
  std::vector<Interaction> out;
  int64_t t = 0;
  // Users 0..4 each interact with items 0..4 (a dense 5-core block).
  for (int u = 0; u < 5; ++u) {
    for (int i = 0; i < 5; ++i) out.push_back({u, i, ++t});
  }
  // User 9 interacts once with rare item 99.
  out.push_back({9, 99, ++t});
  return out;
}

TEST(KCoreFilterTest, PaperModeDropsRareUsersAndItems) {
  auto filtered = KCoreFilter(SkewedInteractions(), 5,
                              CoreFilterMode::kPaper);
  for (const auto& it : filtered) {
    EXPECT_NE(it.user, 9);
    EXPECT_NE(it.item, 99);
  }
  EXPECT_EQ(filtered.size(), 25u);
}

TEST(KCoreFilterTest, FixpointModeReachesStability) {
  // A chain where removing one item cascades: u5 has 5 actions but 4 are
  // on items that only u5 touches (count 1 < 5) so they vanish, leaving
  // u5 with 1 action -> u5 vanishes.
  auto interactions = SkewedInteractions();
  int64_t t = 1000;
  interactions.push_back({5, 0, ++t});
  for (int i = 50; i < 54; ++i) interactions.push_back({5, i, ++t});
  auto filtered =
      KCoreFilter(std::move(interactions), 5, CoreFilterMode::kFixpoint);
  std::unordered_map<int, size_t> user_count, item_count;
  for (const auto& it : filtered) {
    ++user_count[it.user];
    ++item_count[it.item];
  }
  for (const auto& [u, c] : user_count) EXPECT_GE(c, 5u) << "user " << u;
  for (const auto& [i, c] : item_count) EXPECT_GE(c, 5u) << "item " << i;
  EXPECT_EQ(user_count.count(5), 0u);
}

TEST(KCoreFilterTest, KOneKeepsEverything) {
  auto input = SkewedInteractions();
  const size_t n = input.size();
  EXPECT_EQ(KCoreFilter(input, 1, CoreFilterMode::kPaper).size(), n);
  EXPECT_EQ(KCoreFilter(input, 1, CoreFilterMode::kFixpoint).size(), n);
}

// -------------------------------------------------------------- Split

std::vector<Interaction> SequentialUser(int user, int first_item, int count,
                                        int64_t t0) {
  std::vector<Interaction> out;
  for (int i = 0; i < count; ++i) {
    out.push_back({user, first_item + i, t0 + i});
  }
  return out;
}

TEST(SplitTest, HoldsOutLastTwoItems) {
  auto inter = SequentialUser(0, 10, 6, 0);
  auto ds = Dataset::FromInteractions("seq", inter);
  ASSERT_TRUE(ds.ok());
  LeaveOneOutSplit split(*ds);
  ASSERT_TRUE(split.evaluable(0));
  EXPECT_EQ(split.TrainSequence(0).size(), 4u);
  EXPECT_EQ(split.TrainPlusValidSequence(0).size(), 5u);
  // Items are compacted in order of first appearance: 0..5.
  EXPECT_EQ(split.ValidItem(0), 4);
  EXPECT_EQ(split.TestItem(0), 5);
}

TEST(SplitTest, ShortUsersNotEvaluable) {
  std::vector<Interaction> inter = {{0, 1, 0}, {0, 2, 1}};
  for (auto i : SequentialUser(1, 10, 8, 10)) inter.push_back(i);
  auto ds = Dataset::FromInteractions("short", inter);
  ASSERT_TRUE(ds.ok());
  LeaveOneOutSplit split(*ds);
  EXPECT_FALSE(split.evaluable(0));
  EXPECT_TRUE(split.evaluable(1));
  EXPECT_EQ(split.NumEvaluableUsers(), 1u);
  // Non-evaluable users keep their whole sequence for training.
  EXPECT_EQ(split.TrainSequence(0).size(), 2u);
}

TEST(SplitTest, InTrainSetSemantics) {
  auto ds = Dataset::FromInteractions("seq", SequentialUser(0, 0, 5, 0));
  ASSERT_TRUE(ds.ok());
  LeaveOneOutSplit split(*ds);
  const int valid = split.ValidItem(0);
  const int test = split.TestItem(0);
  EXPECT_FALSE(split.InTrainSet(0, valid, /*include_valid=*/false));
  EXPECT_TRUE(split.InTrainSet(0, valid, /*include_valid=*/true));
  EXPECT_FALSE(split.InTrainSet(0, test, /*include_valid=*/true));
  for (int item : split.TrainSequence(0)) {
    EXPECT_TRUE(split.InTrainSet(0, item, false));
  }
}

// -------------------------------------------------------------- Loaders

TEST(LoadersTest, MovieLensDoubleColonFormat) {
  const std::string path = testing::TempDir() + "/ml_test.dat";
  {
    std::ofstream f(path);
    f << "1::10::5::100\n";
    f << "1::20::3::200\n";
    f << "2::10::4::150\n";
  }
  auto r = LoadMovieLens(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0].user, 1);
  EXPECT_EQ((*r)[0].item, 10);
  EXPECT_EQ((*r)[0].timestamp, 100);
}

TEST(LoadersTest, CsvWithHeader) {
  const std::string path = testing::TempDir() + "/ml_csv_test.csv";
  {
    std::ofstream f(path);
    f << "userId,movieId,rating,timestamp\n";
    f << "3,30,4.5,300\n";
  }
  auto r = LoadMovieLens(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].user, 3);
}

TEST(LoadersTest, AmazonStringIdsInterned) {
  const std::string path = testing::TempDir() + "/amz_test.csv";
  {
    std::ofstream f(path);
    f << "A1B2,ITEMX,5.0,100\n";
    f << "A1B2,ITEMY,1.0,200\n";
    f << "C3D4,ITEMX,3.0,150\n";
  }
  auto r = LoadAmazonRatings(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0].user, (*r)[1].user);
  EXPECT_EQ((*r)[0].item, (*r)[2].item);
  EXPECT_NE((*r)[0].item, (*r)[1].item);
}

TEST(LoadersTest, MissingFileIsIoError) {
  auto r = LoadMovieLens("/nonexistent/path/x.dat");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(LoadersTest, MalformedLineIsError) {
  const std::string path = testing::TempDir() + "/bad_test.csv";
  {
    std::ofstream f(path);
    f << "1,2,3,100\n";
    f << "only,three,fields\n";
  }
  EXPECT_FALSE(LoadMovieLens(path).ok());
}

// Real corpora plug in behind the scenario interface. On hosts without
// the files (CI included) the distinct NotFound code lets the test skip
// cleanly instead of failing on an opaque IoError; with the files
// present the same spec loads and preprocesses the real dataset.
TEST(LoadersTest, RealCorpusScenarioSkipsCleanlyWhenAbsent) {
  for (const char* generator : {"ml1m", "ml20m", "amazon"}) {
    SCOPED_TRACE(generator);
    scenario::ScenarioSpec spec;
    spec.generator = generator;
    spec.params["path"] =
        std::string("data/") + generator + "/ratings.dat";
    auto source = scenario::MakeScenario(spec);
    ASSERT_TRUE(source.ok()) << source.status().ToString();
    auto ds = (*source)->Load();
    if (!ds.ok()) {
      ASSERT_EQ(ds.status().code(), StatusCode::kNotFound)
          << ds.status().ToString();
      continue;  // corpus absent on this host — skip cleanly
    }
    EXPECT_GT(ds->num_users(), 0u);
    EXPECT_GT((*source)->report().num_events, 0u);
  }
  GTEST_SUCCEED();
}

// ------------------------------------------------------ NegativeSampler

TEST(NegativeSamplerTest, NeverSamplesTrainItems) {
  auto ds = Dataset::FromInteractions("seq", SequentialUser(0, 0, 10, 0));
  ASSERT_TRUE(ds.ok());
  LeaveOneOutSplit split(*ds);
  NegativeSampler sampler(split);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const int neg = sampler.Sample(0, rng);
    EXPECT_FALSE(split.InTrainSet(0, neg, /*include_valid=*/false));
  }
}

TEST(NegativeSamplerTest, PopularityWeightedPrefersPopular) {
  // Item 0 is extremely popular across users; item pool is large.
  std::vector<Interaction> inter;
  int64_t t = 0;
  for (int u = 0; u < 50; ++u) {
    inter.push_back({u, 500, ++t});  // popular item
    for (int i = 0; i < 5; ++i) {
      inter.push_back({u, u * 10 + i, ++t});  // long tail
    }
  }
  auto ds = Dataset::FromInteractions("pop", std::move(inter));
  ASSERT_TRUE(ds.ok());
  LeaveOneOutSplit split(*ds);
  NegativeSampler uniform(split);
  NegativeSampler weighted(split, /*popularity_smoothing=*/1.0);
  Rng rng(5);
  // Find the compact id of popular item 500.
  int popular = -1;
  for (size_t i = 0; i < ds->num_items(); ++i) {
    if (ds->original_item_ids()[i] == 500) popular = static_cast<int>(i);
  }
  ASSERT_GE(popular, 0);
  // Sample for a user whose train set excludes item 500? Every user has
  // it... then it can never be sampled; use popularity ordering on other
  // items instead: weighted sampling should hit low ids (user-specific
  // items have count 1 each) at rates close to uniform, so instead verify
  // both samplers return valid negatives.
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(
        split.InTrainSet(0, uniform.Sample(0, rng), /*include_valid=*/false));
    EXPECT_FALSE(split.InTrainSet(0, weighted.Sample(0, rng),
                                  /*include_valid=*/false));
  }
}

TEST(NegativeSamplerTest, SampleManyCount) {
  auto ds = Dataset::FromInteractions("seq", SequentialUser(0, 0, 8, 0));
  ASSERT_TRUE(ds.ok());
  LeaveOneOutSplit split(*ds);
  NegativeSampler sampler(split);
  Rng rng(7);
  EXPECT_EQ(sampler.SampleMany(0, 17, rng).size(), 17u);
}

// ----------------------------------------------------- SyntheticGenerator

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticConfig cfg;
  cfg.num_users = 50;
  cfg.num_items = 100;
  cfg.num_clusters = 10;
  SyntheticGenerator g1(cfg), g2(cfg);
  auto d1 = g1.Generate();
  auto d2 = g2.Generate();
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  ASSERT_EQ(d1->num_users(), d2->num_users());
  ASSERT_EQ(d1->num_actions(), d2->num_actions());
  for (size_t u = 0; u < d1->num_users(); ++u) {
    EXPECT_EQ(d1->sequence(u), d2->sequence(u));
  }
}

TEST(SyntheticTest, RespectsLengthBounds) {
  SyntheticConfig cfg;
  cfg.num_users = 80;
  cfg.num_items = 200;
  cfg.num_clusters = 10;
  cfg.min_actions = 5;
  cfg.max_actions = 30;
  SyntheticGenerator gen(cfg);
  auto ds = gen.Generate();
  ASSERT_TRUE(ds.ok());
  for (size_t u = 0; u < ds->num_users(); ++u) {
    EXPECT_LE(ds->sequence(u).size(), 30u);
  }
  // Retry-on-duplicate can drop a few actions but most users should be
  // near their target length.
  size_t long_enough = 0;
  for (size_t u = 0; u < ds->num_users(); ++u) {
    if (ds->sequence(u).size() >= 4) ++long_enough;
  }
  EXPECT_GT(long_enough, ds->num_users() * 9 / 10);
}

TEST(SyntheticTest, NoDuplicateItemsPerUser) {
  SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 300;
  cfg.num_clusters = 10;
  SyntheticGenerator gen(cfg);
  auto ds = gen.Generate();
  ASSERT_TRUE(ds.ok());
  for (size_t u = 0; u < ds->num_users(); ++u) {
    std::set<int> uniq(ds->sequence(u).begin(), ds->sequence(u).end());
    EXPECT_EQ(uniq.size(), ds->sequence(u).size()) << "user " << u;
  }
}

TEST(SyntheticTest, ClusterAffinityShowsInData) {
  SyntheticConfig cfg;
  cfg.num_users = 100;
  cfg.num_items = 400;
  cfg.num_clusters = 20;
  cfg.primary_affinity = 0.9;
  cfg.global_popular_prob = 0.0;
  cfg.sequential_strength = 0.0;
  cfg.num_secondary_interests = 0;
  cfg.min_actions = 15;
  cfg.max_actions = 15;
  SyntheticGenerator gen(cfg);
  auto ds = gen.Generate();
  ASSERT_TRUE(ds.ok());
  // With no secondary interests / popularity / chains, everything a user
  // clicks comes from the primary cluster.
  size_t in_primary = 0, total = 0;
  for (size_t u = 0; u < ds->num_users(); ++u) {
    const int orig_user = ds->original_user_ids()[u];
    const int primary = gen.user_primary_cluster()[orig_user];
    for (int item : ds->sequence(u)) {
      const int orig_item = ds->original_item_ids()[item];
      in_primary += gen.item_cluster()[orig_item] == primary;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(in_primary) / total, 0.99);
}

TEST(SyntheticTest, SequentialChainsPresent) {
  SyntheticConfig cfg;
  cfg.num_users = 100;
  cfg.num_items = 400;
  cfg.num_clusters = 10;
  cfg.sequential_strength = 0.8;
  cfg.global_popular_prob = 0.0;
  cfg.min_actions = 20;
  cfg.max_actions = 40;
  SyntheticGenerator gen(cfg);
  auto ds = gen.Generate();
  ASSERT_TRUE(ds.ok());
  // A large share of consecutive pairs must follow the successor chain.
  size_t chain = 0, total = 0;
  for (size_t u = 0; u < ds->num_users(); ++u) {
    const auto& seq = ds->sequence(u);
    for (size_t i = 0; i + 1 < seq.size(); ++i) {
      const int a = ds->original_item_ids()[seq[i]];
      const int b = ds->original_item_ids()[seq[i + 1]];
      chain += gen.successor()[a] == b;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(chain) / total, 0.4);
}

TEST(SyntheticTest, CategoriesAttached) {
  SyntheticConfig cfg;
  cfg.num_users = 30;
  cfg.num_items = 100;
  cfg.num_clusters = 12;
  cfg.clusters_per_category = 4;
  SyntheticGenerator gen(cfg);
  auto ds = gen.Generate();
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->item_categories().size(), ds->num_items());
  EXPECT_LE(ds->num_categories(), 3u);
  EXPECT_GE(ds->num_categories(), 1u);
}

TEST(SyntheticTest, PresetConfigsGenerate) {
  for (auto cfg : {SynMl1mConfig(0.05), SynGamesConfig(0.05)}) {
    SyntheticGenerator gen(cfg);
    auto ds = gen.Generate();
    ASSERT_TRUE(ds.ok()) << cfg.name;
    EXPECT_GT(ds->num_users(), 10u);
    EXPECT_GT(ds->num_actions(), 100u);
  }
}

}  // namespace
}  // namespace sccf::data
