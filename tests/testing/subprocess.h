#ifndef SCCF_TESTS_TESTING_SUBPROCESS_H_
#define SCCF_TESTS_TESTING_SUBPROCESS_H_

#include <signal.h>
#include <stdio.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <functional>

#include "util/logging.h"

namespace sccf::testing {

/// Runs `fn` in a forked child and returns the raw waitpid status.
///
/// This is how the crash tests die for real: the child builds an engine
/// against a TempDir, ingests, and raises SIGKILL mid-stream — no
/// destructors, no flushes, exactly the torn on-disk state a pulled
/// plug leaves (for the process-crash model; see docs/OPERATIONS.md for
/// the machine-crash/fsync distinction). The parent then recovers from
/// the same directory and compares against an uninterrupted twin.
///
/// fork() without exec is deliberate: the child inherits a copy of the
/// test's address space and runs the closure directly, so crash
/// scenarios are ordinary C++ with no argv marshalling. The flip side:
/// only the forking thread survives into the child, so the closure must
/// not rely on any other thread — in particular it must not touch the
/// global ThreadPool (Engine::Bootstrap does, via ParallelFor; the
/// ingest path does not). Crash tests therefore bootstrap their engine
/// in the parent, with background compaction off, and fork a child that
/// only ingests and dies. A child that returns from `fn` leaves via
/// _Exit(0) — no atexit handlers, no gtest teardown, no double-flushed
/// stdio.
inline int RunInChild(const std::function<void()>& fn) {
  // Flush before forking so buffered test output is not emitted twice.
  ::fflush(stdout);
  ::fflush(stderr);
  const pid_t pid = ::fork();
  SCCF_CHECK(pid >= 0) << "fork failed";
  if (pid == 0) {
    fn();
    std::_Exit(0);
  }
  int status = 0;
  const pid_t waited = ::waitpid(pid, &status, 0);
  SCCF_CHECK_EQ(waited, pid) << "waitpid failed";
  return status;
}

/// True when the child terminated by `sig` (for crash children this is
/// SIGKILL — anything else, e.g. a SIGSEGV or an ASan SIGABRT, is a
/// real bug the test should surface).
inline bool KilledBySignal(int status, int sig) {
  return WIFSIGNALED(status) && WTERMSIG(status) == sig;
}

/// True when the child ran to _Exit(0).
inline bool ExitedCleanly(int status) {
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

/// The crash children's way out: SIGKILL cannot be caught or blocked,
/// so nothing — not even ASan's death hooks — runs after this line.
[[noreturn]] inline void SelfKill() {
  ::raise(SIGKILL);
  std::_Exit(127);  // unreachable; raise(SIGKILL) does not return
}

}  // namespace sccf::testing

#endif  // SCCF_TESTS_TESTING_SUBPROCESS_H_
