#ifndef SCCF_TESTS_TESTING_TEMP_DIR_H_
#define SCCF_TESTS_TESTING_TEMP_DIR_H_

#include <ftw.h>
#include <stdlib.h>
#include <unistd.h>

#include <string>

#include "util/logging.h"

namespace sccf::testing {

/// RAII scratch directory under /tmp, recursively deleted on scope
/// exit. Crash-recovery tests point Options::recover_dir at one of
/// these; the destructor runs in the *parent* test process, so files a
/// SIGKILL'd child left behind (snapshots, torn journals) are cleaned
/// up even though the child never got to.
class TempDir {
 public:
  TempDir() {
    char templ[] = "/tmp/sccf_test_XXXXXX";
    char* made = ::mkdtemp(templ);
    SCCF_CHECK(made != nullptr) << "mkdtemp failed";
    path_ = made;
  }

  ~TempDir() {
    // FTW_DEPTH visits children before their directory; FTW_PHYS does
    // not follow symlinks out of the tree.
    ::nftw(
        path_.c_str(),
        [](const char* p, const struct stat*, int, struct FTW*) {
          return ::remove(p);
        },
        8, FTW_DEPTH | FTW_PHYS);
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

  /// `<dir>/<name>` convenience join.
  std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

}  // namespace sccf::testing

#endif  // SCCF_TESTS_TESTING_TEMP_DIR_H_
