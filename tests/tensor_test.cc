#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "tensor/tensor.h"
#include "util/random.h"

namespace sccf {
namespace {

using tensor_ops::Axpy;
using tensor_ops::Cosine;
using tensor_ops::Dot;
using tensor_ops::Gemm;
using tensor_ops::Gemv;
using tensor_ops::Norm;
using tensor_ops::SoftmaxInPlace;

TEST(TensorTest, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.scalar(), 0.0f);
}

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({3, 4});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FullAndFill) {
  Tensor t = Tensor::Full({2, 2}, 3.5f);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 3.5f);
  t.Fill(-1.0f);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], -1.0f);
}

TEST(TensorTest, FromMatrixRowMajorAccess) {
  Tensor t = Tensor::FromMatrix(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
  EXPECT_EQ(t.at(1, 2), 6.0f);
}

TEST(TensorTest, VectorRowsCols) {
  Tensor v = Tensor::FromVector({1, 2, 3});
  EXPECT_EQ(v.rank(), 1u);
  EXPECT_EQ(v.rows(), 1u);
  EXPECT_EQ(v.cols(), 3u);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromMatrix(2, 3, {1, 2, 3, 4, 5, 6});
  t.Reshape({3, 2});
  EXPECT_EQ(t.at(2, 1), 6.0f);
  EXPECT_EQ(t.rows(), 3u);
}

TEST(TensorTest, TruncatedNormalBounded) {
  Rng rng(3);
  Tensor t = Tensor::TruncatedNormal({50, 50}, 0.01f, rng);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::fabs(t[i]), 0.02f);
  }
}

TEST(TensorTest, SquaredL2Norm) {
  Tensor t = Tensor::FromVector({3, 4});
  EXPECT_DOUBLE_EQ(t.SquaredL2Norm(), 25.0);
}

TEST(TensorTest, AllClose) {
  Tensor a = Tensor::FromVector({1, 2});
  Tensor b = Tensor::FromVector({1, 2.000001f});
  Tensor c = Tensor::FromVector({1, 2.1f});
  EXPECT_TRUE(a.AllClose(b));
  EXPECT_FALSE(a.AllClose(c));
  Tensor d = Tensor::FromMatrix(1, 2, {1, 2});
  EXPECT_FALSE(a.AllClose(d));  // shape differs (rank 1 vs 2)
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor::Zeros({2, 3}).ShapeString(), "f32[2, 3]");
  EXPECT_EQ(Tensor().ShapeString(), "f32[]");
}

// -------------------------------------------------------------- raw ops

TEST(TensorOpsTest, DotBasic) {
  const float a[] = {1, 2, 3, 4, 5};
  const float b[] = {5, 4, 3, 2, 1};
  EXPECT_FLOAT_EQ(Dot(a, b, 5), 35.0f);
  EXPECT_FLOAT_EQ(Dot(a, b, 0), 0.0f);
}

TEST(TensorOpsTest, AxpyAccumulates) {
  const float x[] = {1, 2, 3};
  float y[] = {10, 10, 10};
  Axpy(2.0f, x, y, 3);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[2], 16.0f);
}

TEST(TensorOpsTest, NormAndCosine) {
  const float a[] = {3, 4};
  const float b[] = {4, 3};
  EXPECT_FLOAT_EQ(Norm(a, 2), 5.0f);
  EXPECT_NEAR(Cosine(a, b, 2), 24.0f / 25.0f, 1e-6);
  const float z[] = {0, 0};
  EXPECT_EQ(Cosine(a, z, 2), 0.0f);
}

TEST(TensorOpsTest, CosineSelfIsOne) {
  Rng rng(5);
  std::vector<float> v(16);
  for (auto& x : v) x = rng.Normal();
  EXPECT_NEAR(Cosine(v.data(), v.data(), v.size()), 1.0f, 1e-5);
}

TEST(TensorOpsTest, SoftmaxSumsToOneAndOrders) {
  float x[] = {1.0f, 2.0f, 3.0f};
  SoftmaxInPlace(x, 3);
  EXPECT_NEAR(x[0] + x[1] + x[2], 1.0f, 1e-6);
  EXPECT_LT(x[0], x[1]);
  EXPECT_LT(x[1], x[2]);
}

TEST(TensorOpsTest, SoftmaxStableForLargeInputs) {
  float x[] = {1000.0f, 1000.0f};
  SoftmaxInPlace(x, 2);
  EXPECT_NEAR(x[0], 0.5f, 1e-6);
  EXPECT_NEAR(x[1], 0.5f, 1e-6);
}

TEST(TensorOpsTest, SoftmaxMaskedEntryGoesToZero) {
  float x[] = {0.0f, -1e9f, 1.0f};
  SoftmaxInPlace(x, 3);
  EXPECT_NEAR(x[1], 0.0f, 1e-12);
  EXPECT_NEAR(x[0] + x[2], 1.0f, 1e-6);
}

TEST(TensorOpsTest, GemvMatchesManual) {
  Tensor a = Tensor::FromMatrix(2, 3, {1, 2, 3, 4, 5, 6});
  const float x[] = {1, 0, -1};
  float y[2];
  Gemv(a, x, y);
  EXPECT_FLOAT_EQ(y[0], -2.0f);
  EXPECT_FLOAT_EQ(y[1], -2.0f);
}

// Naive reference for GEMM correctness.
Tensor NaiveGemm(const Tensor& a, bool ta, const Tensor& b, bool tb,
                 float alpha) {
  const size_t m = ta ? a.cols() : a.rows();
  const size_t k = ta ? a.rows() : a.cols();
  const size_t n = tb ? b.rows() : b.cols();
  Tensor c({m, n});
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) {
        const float av = ta ? a.at(kk, i) : a.at(i, kk);
        const float bv = tb ? b.at(j, kk) : b.at(kk, j);
        acc += av * bv;
      }
      c.at(i, j) = alpha * acc;
    }
  }
  return c;
}

class GemmParamTest
    : public testing::TestWithParam<std::tuple<bool, bool, int, int, int>> {};

TEST_P(GemmParamTest, MatchesNaiveReference) {
  const auto [ta, tb, m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n + (ta ? 1000 : 0) + (tb ? 2000 : 0));
  auto rand_mat = [&](size_t r, size_t c) {
    Tensor t({r, c});
    for (size_t i = 0; i < t.size(); ++i) t[i] = rng.Normal();
    return t;
  };
  Tensor a = ta ? rand_mat(k, m) : rand_mat(m, k);
  Tensor b = tb ? rand_mat(n, k) : rand_mat(k, n);
  Tensor c({static_cast<size_t>(m), static_cast<size_t>(n)});
  Gemm(a, ta, b, tb, 1.5f, 0.0f, &c);
  Tensor ref = NaiveGemm(a, ta, b, tb, 1.5f);
  EXPECT_TRUE(c.AllClose(ref, 1e-3f))
      << "ta=" << ta << " tb=" << tb << " m=" << m << " k=" << k
      << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposesAndShapes, GemmParamTest,
    testing::Combine(testing::Bool(), testing::Bool(),
                     testing::Values(1, 3, 7), testing::Values(1, 4, 9),
                     testing::Values(1, 5, 8)));

TEST(TensorOpsTest, GemmBetaAccumulates) {
  Tensor a = Tensor::FromMatrix(2, 2, {1, 0, 0, 1});
  Tensor b = Tensor::FromMatrix(2, 2, {1, 2, 3, 4});
  Tensor c = Tensor::Full({2, 2}, 10.0f);
  Gemm(a, false, b, false, 1.0f, 1.0f, &c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 14.0f);
}

TEST(TensorOpsTest, GemmBetaScales) {
  Tensor a = Tensor::FromMatrix(1, 1, {0});
  Tensor b = Tensor::FromMatrix(1, 1, {0});
  Tensor c = Tensor::Full({1, 1}, 8.0f);
  Gemm(a, false, b, false, 1.0f, 0.5f, &c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 4.0f);
}

}  // namespace
}  // namespace sccf
