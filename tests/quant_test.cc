// Codec properties of the SQ8 scalar quantizer (src/quant/sq8.h):
// deterministic encode, bounded reconstruction error, exact handling of
// the degenerate rows (constant, zero, single-element), saturation at
// the +/-127 code bounds, and Sq8Store's append/set/remove-swap
// bookkeeping including the dim+8-bytes-per-row accounting the memory
// stats build on.

#include "quant/sq8.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace sccf::quant {
namespace {

std::vector<float> RandomRow(Rng& rng, size_t n, float scale = 1.0f) {
  std::vector<float> v(n);
  for (auto& x : v) x = scale * (2.0f * rng.UniformFloat() - 1.0f);
  return v;
}

TEST(StorageTest, ParseAndName) {
  Storage s = Storage::kSq8;
  EXPECT_TRUE(ParseStorage("fp32", &s));
  EXPECT_EQ(s, Storage::kFp32);
  EXPECT_TRUE(ParseStorage("sq8", &s));
  EXPECT_EQ(s, Storage::kSq8);
  EXPECT_TRUE(ParseStorage("SQ8", &s));  // case-insensitive
  EXPECT_EQ(s, Storage::kSq8);
  EXPECT_FALSE(ParseStorage("int8", &s));
  EXPECT_FALSE(ParseStorage("", &s));
  EXPECT_STREQ(StorageName(Storage::kFp32), "fp32");
  EXPECT_STREQ(StorageName(Storage::kSq8), "sq8");
}

TEST(Sq8CodecTest, RoundTripErrorIsBoundedByHalfStep) {
  Rng rng(20210419);
  for (size_t n : {1u, 2u, 15u, 16u, 17u, 64u, 257u}) {
    for (float mag : {0.01f, 1.0f, 100.0f}) {
      const std::vector<float> row = RandomRow(rng, n, mag);
      std::vector<int8_t> codes(n);
      const Sq8Params p = Sq8Encode(row.data(), n, codes.data());
      std::vector<float> decoded(n);
      Sq8Decode(codes.data(), n, p, decoded.data());
      // Max quantization error is half a step; scale IS the step size.
      const float bound = 0.5f * p.scale + 1e-6f * mag;
      for (size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(decoded[i], row[i], bound) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(Sq8CodecTest, EncodeIsDeterministic) {
  Rng rng(7);
  const size_t n = 96;
  const std::vector<float> row = RandomRow(rng, n);
  std::vector<int8_t> a(n), b(n);
  const Sq8Params pa = Sq8Encode(row.data(), n, a.data());
  const Sq8Params pb = Sq8Encode(row.data(), n, b.data());
  EXPECT_EQ(pa.scale, pb.scale);
  EXPECT_EQ(pa.offset, pb.offset);
  EXPECT_EQ(a, b);
}

TEST(Sq8CodecTest, ExtremesSaturateExactlyAt127) {
  // min and max of the row must map exactly to -127 / +127 (no overflow
  // past the symmetric bound, no wasted range).
  std::vector<float> row = {-3.0f, -1.0f, 0.0f, 2.0f, 5.0f};
  std::vector<int8_t> codes(row.size());
  const Sq8Params p = Sq8Encode(row.data(), row.size(), codes.data());
  EXPECT_EQ(codes.front(), -127);  // row min
  EXPECT_EQ(codes.back(), 127);    // row max
  for (int8_t c : codes) {
    EXPECT_GE(c, -127);
    EXPECT_LE(c, 127);
  }
  // Decode maps the extremes back exactly: offset +/- 127*scale = hi/lo.
  std::vector<float> decoded(row.size());
  Sq8Decode(codes.data(), row.size(), p, decoded.data());
  EXPECT_NEAR(decoded.front(), -3.0f, 1e-5f);
  EXPECT_NEAR(decoded.back(), 5.0f, 1e-5f);
}

TEST(Sq8CodecTest, ConstantRowHasZeroScaleAndIsLossless) {
  for (float c : {0.0f, -2.5f, 7.0f}) {
    std::vector<float> row(33, c);
    std::vector<int8_t> codes(row.size());
    const Sq8Params p = Sq8Encode(row.data(), row.size(), codes.data());
    EXPECT_EQ(p.scale, 0.0f);
    EXPECT_EQ(p.offset, c);
    for (int8_t code : codes) EXPECT_EQ(code, 0);
    std::vector<float> decoded(row.size());
    Sq8Decode(codes.data(), row.size(), p, decoded.data());
    for (float d : decoded) EXPECT_EQ(d, c);  // bit-exact
  }
}

TEST(Sq8StoreTest, AppendSetRemoveSwapAndByteAccounting) {
  Rng rng(99);
  const size_t dim = 32;
  Sq8Store store(dim);
  EXPECT_TRUE(store.empty());

  std::vector<std::vector<float>> rows;
  for (int i = 0; i < 5; ++i) {
    rows.push_back(RandomRow(rng, dim));
    EXPECT_EQ(store.Append(rows.back().data()), static_cast<size_t>(i));
  }
  EXPECT_EQ(store.size(), 5u);
  // dim code bytes + 2 floats of params per row.
  EXPECT_EQ(store.code_bytes(), 5 * (dim + 2 * sizeof(float)));

  // Set re-encodes in place.
  rows[2] = RandomRow(rng, dim);
  store.Set(2, rows[2].data());

  // Every slot decodes to (a quantization of) its row.
  for (size_t s = 0; s < store.size(); ++s) {
    std::vector<float> decoded(dim);
    store.DecodeRow(s, decoded.data());
    const Sq8Params p = store.params(s);
    for (size_t i = 0; i < dim; ++i) {
      ASSERT_NEAR(decoded[i], rows[s][i], 0.5f * p.scale + 1e-6f);
    }
  }

  // RemoveSwap(1): last row (4) moves into slot 1.
  const Sq8Params last_params = store.params(4);
  std::vector<int8_t> last_codes(store.row(4), store.row(4) + dim);
  store.RemoveSwap(1);
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.params(1).scale, last_params.scale);
  EXPECT_EQ(store.params(1).offset, last_params.offset);
  for (size_t i = 0; i < dim; ++i) {
    ASSERT_EQ(store.row(1)[i], last_codes[i]);
  }

  // AppendEncoded restores verbatim (the deserialize path).
  Sq8Store copy(dim);
  for (size_t s = 0; s < store.size(); ++s) {
    copy.AppendEncoded(store.row(s), store.params(s));
  }
  for (size_t s = 0; s < store.size(); ++s) {
    for (size_t i = 0; i < dim; ++i) {
      ASSERT_EQ(copy.row(s)[i], store.row(s)[i]);
    }
  }

  store.clear();
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.code_bytes(), 0u);
}

// The headline claim of the storage mode: per-row bytes drop >= 3x vs
// fp32 for every realistic embedding dim (dim 32 is the server default).
TEST(Sq8StoreTest, PerRowBytesAtLeast3xSmallerThanFp32) {
  for (size_t dim : {32u, 64u, 128u, 256u}) {
    const size_t fp32_bytes = dim * sizeof(float);
    const size_t sq8_bytes = dim + 2 * sizeof(float);
    EXPECT_GE(fp32_bytes, 3 * sq8_bytes) << "dim=" << dim;
  }
}

}  // namespace
}  // namespace sccf::quant
