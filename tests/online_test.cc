#include <gtest/gtest.h>

#include <numeric>

#include "core/candidates.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "online/ab_test.h"
#include "online/interest_drift.h"
#include "util/logging.h"
#include "util/random.h"

namespace sccf::online {
namespace {

constexpr int64_t kDay = 86400;

// ---------------------------------------------------- interest drift

TEST(InterestDriftTest, HandComputedDistribution) {
  // One user, categories: item0 -> cat0, item1 -> cat1, item2 -> cat2.
  // Day 10 ("today"): clicks cat0 and cat1 and cat2.
  // cat0 first clicked day 7 (delta 3), cat1 never before, cat2 on day 10
  // only.
  std::vector<data::Interaction> inter = {
      {0, 100, 7 * kDay},       // cat0, day 7
      {0, 100, 8 * kDay},       // cat0 again day 8 (first = day 7)
      {0, 100, 10 * kDay},      // cat0 today
      {0, 101, 10 * kDay + 1},  // cat1 today only
      {0, 102, 10 * kDay + 2},  // cat2 today only
  };
  auto ds = data::Dataset::FromInteractions("drift", std::move(inter));
  ASSERT_TRUE(ds.ok());
  // Compact item ids follow first appearance: 100->0, 101->1, 102->2.
  ds->set_item_categories({0, 1, 2});

  auto dist = CategoryRecencyDistribution(*ds, 14);
  ASSERT_EQ(dist.size(), 15u);
  EXPECT_NEAR(dist[0], 2.0 / 3.0, 1e-9);  // cat1, cat2 new today
  EXPECT_NEAR(dist[3], 1.0 / 3.0, 1e-9);  // cat0 first seen 3 days ago
  for (size_t d = 1; d < 15; ++d) {
    if (d != 3) {
      EXPECT_EQ(dist[d], 0.0);
    }
  }
}

TEST(InterestDriftTest, DistributionSumsToOne) {
  data::SyntheticConfig cfg;
  cfg.num_users = 150;
  cfg.num_items = 300;
  cfg.num_clusters = 30;
  cfg.clusters_per_category = 2;
  cfg.days = 30;
  cfg.interest_drift = 0.3;
  cfg.min_actions = 20;
  cfg.max_actions = 60;
  data::SyntheticGenerator gen(cfg);
  auto ds = gen.Generate();
  ASSERT_TRUE(ds.ok());
  auto dist = CategoryRecencyDistribution(*ds, 14);
  const double total = std::accumulate(dist.begin(), dist.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(InterestDriftTest, DriftProducesNewCategories) {
  // With drifting interests a substantial share of "today's" categories
  // must be new — the paper's Fig.-1 observation (~50% on Taobao).
  data::SyntheticConfig cfg;
  cfg.num_users = 200;
  cfg.num_items = 600;
  cfg.num_clusters = 60;
  cfg.clusters_per_category = 1;  // category == cluster: max granularity
  cfg.days = 40;
  cfg.interest_drift = 0.4;
  cfg.num_secondary_interests = 3;
  cfg.primary_affinity = 0.4;
  cfg.min_actions = 25;
  cfg.max_actions = 70;
  data::SyntheticGenerator gen(cfg);
  auto ds = gen.Generate();
  ASSERT_TRUE(ds.ok());
  auto dist = CategoryRecencyDistribution(*ds, 14);
  EXPECT_GT(dist[0], 0.25);
  // And the tail decays: day-1 recency outweighs day-14.
  EXPECT_GT(dist[1], dist[14]);
}

TEST(InterestDriftTest, RequiresCategories) {
  std::vector<data::Interaction> inter = {{0, 0, 0}, {0, 1, kDay}};
  auto ds = data::Dataset::FromInteractions("nocat", std::move(inter));
  ASSERT_TRUE(ds.ok());
  EXPECT_DEATH(CategoryRecencyDistribution(*ds, 14), "category");
}

// ----------------------------------------------------------- A/B test

class AbTestFixture : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig cfg;
    cfg.name = "ab-test";
    cfg.num_users = 100;
    cfg.num_items = 200;
    cfg.num_clusters = 10;
    cfg.min_actions = 10;
    cfg.max_actions = 30;
    cfg.seed = 55;
    gen_ = new data::SyntheticGenerator(cfg);
    auto ds = gen_->Generate();
    SCCF_CHECK(ds.ok());
    dataset_ = new data::Dataset(std::move(ds).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete gen_;
    dataset_ = nullptr;
    gen_ = nullptr;
  }

  static data::SyntheticGenerator* gen_;
  static data::Dataset* dataset_;
};

data::SyntheticGenerator* AbTestFixture::gen_ = nullptr;
data::Dataset* AbTestFixture::dataset_ = nullptr;

// Random-candidates generator: ignores the user entirely.
core::CandidateList RandomCandidates(size_t num_items, uint64_t seed,
                                     size_t n) {
  Rng rng(seed);
  core::CandidateList out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back({static_cast<int>(rng.Uniform(num_items)),
                   1.0f - static_cast<float>(i) * 0.001f});
  }
  return out;
}

TEST_F(AbTestFixture, ClickProbabilityPrefersPrimaryCluster) {
  AbTestHarness harness(*dataset_, *gen_, {});
  // Find, for user 0, an item in the primary cluster and one in no
  // related cluster.
  const int orig_user = dataset_->original_user_ids()[0];
  const int primary = gen_->user_primary_cluster()[orig_user];
  int in_primary = -1, outside = -1;
  for (size_t i = 0; i < dataset_->num_items(); ++i) {
    const int orig = dataset_->original_item_ids()[i];
    if (gen_->item_cluster()[orig] == primary && in_primary < 0) {
      in_primary = static_cast<int>(i);
    }
  }
  // An item outside primary and outside the recent history clusters: use
  // empty history so only primary matters.
  for (size_t i = 0; i < dataset_->num_items(); ++i) {
    const int orig = dataset_->original_item_ids()[i];
    if (gen_->item_cluster()[orig] != primary) {
      outside = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(in_primary, 0);
  ASSERT_GE(outside, 0);
  const std::vector<int> empty_history;
  EXPECT_GT(harness.ClickProbability(0, empty_history, in_primary),
            harness.ClickProbability(0, empty_history, outside));
}

TEST_F(AbTestFixture, SuccessorBoostRaisesProbability) {
  AbTestHarness harness(*dataset_, *gen_, {});
  // History ending in item x; successor(x) gets boosted.
  int x = dataset_->sequence(0).back();
  const int orig_x = dataset_->original_item_ids()[x];
  const int succ_orig = gen_->successor()[orig_x];
  int succ = -1;
  for (size_t i = 0; i < dataset_->num_items(); ++i) {
    if (dataset_->original_item_ids()[i] == succ_orig) {
      succ = static_cast<int>(i);
    }
  }
  if (succ < 0) GTEST_SKIP() << "successor not in compacted corpus";
  std::vector<int> history = {x};
  // Compare against the same item's probability when the chain is broken.
  std::vector<int> other_history = {succ};  // succ(succ) != succ normally
  const double with_boost = harness.ClickProbability(0, history, succ);
  const double without = harness.ClickProbability(0, other_history, succ);
  EXPECT_GE(with_boost, without);
}

TEST_F(AbTestFixture, OracleBeatsRandomGenerator) {
  AbTestConfig cfg;
  cfg.days = 3;
  cfg.candidate_size = 30;
  cfg.slate_size = 8;
  AbTestHarness harness(*dataset_, *gen_, cfg);

  // Oracle: propose items from the user's primary cluster (the harness's
  // own ground-truth preference).
  auto oracle = [&](int user, std::span<const int> /*history*/,
                    size_t n) -> core::CandidateList {
    const int orig_user = dataset_->original_user_ids()[user];
    const int primary = gen_->user_primary_cluster()[orig_user];
    core::CandidateList out;
    for (size_t i = 0; i < dataset_->num_items() && out.size() < n; ++i) {
      const int orig = dataset_->original_item_ids()[i];
      if (gen_->item_cluster()[orig] == primary) {
        out.push_back({static_cast<int>(i), 1.0f});
      }
    }
    return out;
  };
  auto random_gen = [&](int user, std::span<const int>,
                        size_t n) -> core::CandidateList {
    return RandomCandidates(dataset_->num_items(), 1000 + user, n);
  };
  auto ranker = [](int, std::span<const int>,
                   const core::CandidateList& cands,
                   size_t slate) -> std::vector<int> {
    std::vector<int> out;
    for (size_t i = 0; i < cands.size() && out.size() < slate; ++i) {
      out.push_back(cands[i].id);
    }
    return out;
  };

  // Bucket A random, bucket B oracle -> strong positive lift.
  auto result = harness.Run(random_gen, oracle, ranker);
  EXPECT_GT(result.impressions_a, 0u);
  EXPECT_GT(result.impressions_b, 0u);
  EXPECT_GT(result.ClickLift(), 0.5);
}

TEST_F(AbTestFixture, DeterministicForSeed) {
  AbTestConfig cfg;
  cfg.days = 2;
  cfg.candidate_size = 20;
  cfg.slate_size = 5;
  auto gen_fn = [&](int user, std::span<const int>,
                    size_t n) -> core::CandidateList {
    return RandomCandidates(dataset_->num_items(), 7 + user, n);
  };
  auto ranker = [](int, std::span<const int>,
                   const core::CandidateList& cands,
                   size_t slate) -> std::vector<int> {
    std::vector<int> out;
    for (size_t i = 0; i < cands.size() && out.size() < slate; ++i) {
      out.push_back(cands[i].id);
    }
    return out;
  };
  AbTestHarness h1(*dataset_, *gen_, cfg);
  AbTestHarness h2(*dataset_, *gen_, cfg);
  auto r1 = h1.Run(gen_fn, gen_fn, ranker);
  auto r2 = h2.Run(gen_fn, gen_fn, ranker);
  EXPECT_EQ(r1.clicks_a, r2.clicks_a);
  EXPECT_EQ(r1.clicks_b, r2.clicks_b);
  EXPECT_EQ(r1.trades_a, r2.trades_a);
}

TEST_F(AbTestFixture, LiftComputation) {
  AbTestResult r;
  r.clicks_a = 100;
  r.clicks_b = 103;
  r.trades_a = 50;
  r.trades_b = 49;
  EXPECT_NEAR(r.ClickLift(), 0.03, 1e-9);
  EXPECT_NEAR(r.TradeLift(), -0.02, 1e-9);
  AbTestResult zero;
  EXPECT_EQ(zero.ClickLift(), 0.0);
}

}  // namespace
}  // namespace sccf::online
