#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "nn/graph.h"
#include "nn/layers.h"
#include "nn/parameter.h"
#include "nn/transformer.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace sccf::nn {
namespace {

Tensor RandomTensor(std::vector<size_t> shape, Rng& rng, float scale = 1.0f) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i) t[i] = rng.Normal() * scale;
  return t;
}

// Verifies analytic gradients of `build` (fresh graph per call, reading the
// current parameter values and returning the scalar loss) against central
// finite differences, for every entry of every parameter.
void ExpectGradientsMatch(const std::vector<Parameter*>& params,
                          const std::function<Var(Graph&)>& build,
                          float rtol = 3e-2f, float atol = 3e-3f) {
  // Analytic pass.
  {
    Graph g(/*training=*/false);
    Var loss = build(g);
    ASSERT_EQ(g.value(loss).size(), 1u) << "loss must be scalar";
    g.Backward(loss);
  }
  std::vector<Tensor> analytic;
  for (Parameter* p : params) {
    analytic.push_back(p->grad);
    p->grad.Zero();
    p->dense_touched = false;
    p->touched_rows.clear();
  }

  auto forward = [&]() -> double {
    Graph g(/*training=*/false);
    Var loss = build(g);
    return g.value(loss).scalar();
  };

  const float eps = 1e-2f;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Parameter* p = params[pi];
    for (size_t i = 0; i < p->value.size(); ++i) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const double lp = forward();
      p->value[i] = orig - eps;
      const double lm = forward();
      p->value[i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double ana = analytic[pi][i];
      const double tol =
          atol + rtol * std::max(std::fabs(numeric), std::fabs(ana));
      EXPECT_NEAR(ana, numeric, tol)
          << "param " << p->name << " entry " << i;
    }
  }
  // Clean up accumulated gradients from the analytic pass above.
  for (Parameter* p : params) {
    p->grad.Zero();
    p->dense_touched = false;
    p->touched_rows.clear();
  }
}

// ------------------------------------------------------- forward values

TEST(GraphForwardTest, InputHoldsValue) {
  Graph g;
  Var x = g.Input(Tensor::FromVector({1, 2, 3}));
  EXPECT_EQ(g.value(x).size(), 3u);
  EXPECT_EQ(g.value(x)[1], 2.0f);
}

TEST(GraphForwardTest, MatMulValues) {
  Graph g;
  Var a = g.Input(Tensor::FromMatrix(2, 2, {1, 2, 3, 4}));
  Var b = g.Input(Tensor::FromMatrix(2, 2, {5, 6, 7, 8}));
  Var c = g.MatMul(a, b);
  EXPECT_FLOAT_EQ(g.value(c).at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(g.value(c).at(1, 1), 50.0f);
}

TEST(GraphForwardTest, MatMulTransposeShapes) {
  Graph g;
  Var a = g.Input(Tensor::Zeros({3, 2}));
  Var b = g.Input(Tensor::Zeros({3, 4}));
  Var c = g.MatMul(a, b, /*trans_a=*/true, /*trans_b=*/false);
  EXPECT_EQ(g.value(c).rows(), 2u);
  EXPECT_EQ(g.value(c).cols(), 4u);
}

TEST(GraphForwardTest, AddBroadcastsRowVector) {
  Graph g;
  Var x = g.Input(Tensor::FromMatrix(2, 2, {1, 2, 3, 4}));
  Var b = g.Input(Tensor::FromMatrix(1, 2, {10, 20}));
  Var y = g.Add(x, b);
  EXPECT_FLOAT_EQ(g.value(y).at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(g.value(y).at(1, 1), 24.0f);
  // Broadcast also allowed on the left operand.
  Var y2 = g.Add(b, x);
  EXPECT_FLOAT_EQ(g.value(y2).at(1, 0), 13.0f);
}

TEST(GraphForwardTest, SubBroadcast) {
  Graph g;
  Var x = g.Input(Tensor::FromMatrix(2, 2, {1, 2, 3, 4}));
  Var b = g.Input(Tensor::FromMatrix(1, 2, {1, 1}));
  Var y = g.Sub(x, b);
  EXPECT_FLOAT_EQ(g.value(y).at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(g.value(y).at(1, 1), 3.0f);
}

TEST(GraphForwardTest, ActivationValues) {
  Graph g;
  Var x = g.Input(Tensor::FromVector({-1.0f, 0.0f, 2.0f}));
  const Tensor& r = g.value(g.Relu(x));
  EXPECT_FLOAT_EQ(r[0], 0.0f);
  EXPECT_FLOAT_EQ(r[2], 2.0f);
  const Tensor& s = g.value(g.Sigmoid(x));
  EXPECT_NEAR(s[1], 0.5f, 1e-6);
  const Tensor& t = g.value(g.Tanh(x));
  EXPECT_NEAR(t[2], std::tanh(2.0f), 1e-6);
}

TEST(GraphForwardTest, SoftmaxRowsSumToOne) {
  Graph g;
  Var x = g.Input(Tensor::FromMatrix(2, 3, {1, 2, 3, 0, 0, 0}));
  const Tensor& y = g.value(g.SoftmaxRows(x));
  EXPECT_NEAR(y.at(0, 0) + y.at(0, 1) + y.at(0, 2), 1.0f, 1e-6);
  EXPECT_NEAR(y.at(1, 0), 1.0f / 3.0f, 1e-6);
}

TEST(GraphForwardTest, SoftmaxWithCausalMask) {
  Graph g;
  Var x = g.Input(Tensor::Zeros({3, 3}));
  Tensor mask = CausalMask(3);
  const Tensor& y = g.value(g.SoftmaxRows(x, &mask));
  // Row 0 can only attend to position 0.
  EXPECT_NEAR(y.at(0, 0), 1.0f, 1e-6);
  EXPECT_NEAR(y.at(0, 1), 0.0f, 1e-9);
  EXPECT_NEAR(y.at(0, 2), 0.0f, 1e-9);
  // Row 1 attends to 0 and 1 equally.
  EXPECT_NEAR(y.at(1, 0), 0.5f, 1e-6);
  EXPECT_NEAR(y.at(2, 2), 1.0f / 3.0f, 1e-6);
}

TEST(GraphForwardTest, LayerNormNormalizesRows) {
  Graph g;
  Var x = g.Input(Tensor::FromMatrix(1, 4, {1, 2, 3, 4}));
  Var gamma = g.Input(Tensor::Full({1, 4}, 1.0f));
  Var beta = g.Input(Tensor::Zeros({1, 4}));
  const Tensor& y = g.value(g.LayerNorm(x, gamma, beta));
  float mean = 0.0f, var = 0.0f;
  for (size_t i = 0; i < 4; ++i) mean += y[i];
  mean /= 4;
  for (size_t i = 0; i < 4; ++i) var += (y[i] - mean) * (y[i] - mean);
  var /= 4;
  EXPECT_NEAR(mean, 0.0f, 1e-5);
  EXPECT_NEAR(var, 1.0f, 1e-3);
}

TEST(GraphForwardTest, GatherPicksRows) {
  Parameter table("t", Tensor::FromMatrix(3, 2, {1, 2, 3, 4, 5, 6}));
  Graph g;
  Var x = g.Gather(&table, {2, 0, 2});
  EXPECT_EQ(g.value(x).rows(), 3u);
  EXPECT_FLOAT_EQ(g.value(x).at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.value(x).at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(g.value(x).at(2, 1), 6.0f);
}

TEST(GraphForwardTest, ConcatAndSlice) {
  Graph g;
  Var a = g.Input(Tensor::FromMatrix(2, 1, {1, 2}));
  Var b = g.Input(Tensor::FromMatrix(2, 2, {3, 4, 5, 6}));
  Var c = g.ConcatCols({a, b});
  EXPECT_EQ(g.value(c).cols(), 3u);
  EXPECT_FLOAT_EQ(g.value(c).at(1, 2), 6.0f);
  Var s = g.SliceCols(c, 1, 3);
  EXPECT_TRUE(g.value(s).AllClose(g.value(b)));
  Var r = g.SliceRows(c, 1, 2);
  EXPECT_EQ(g.value(r).rows(), 1u);
  EXPECT_FLOAT_EQ(g.value(r).at(0, 0), 2.0f);
}

TEST(GraphForwardTest, Reductions) {
  Graph g;
  Var x = g.Input(Tensor::FromMatrix(2, 2, {1, 2, 3, 4}));
  EXPECT_FLOAT_EQ(g.value(g.SumAll(x)).scalar(), 10.0f);
  EXPECT_FLOAT_EQ(g.value(g.MeanAll(x)).scalar(), 2.5f);
  const Tensor& sr = g.value(g.SumRows(x));
  EXPECT_EQ(sr.rows(), 1u);
  EXPECT_FLOAT_EQ(sr.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(sr.at(0, 1), 6.0f);
}

TEST(GraphForwardTest, RowsDot) {
  Graph g;
  Var a = g.Input(Tensor::FromMatrix(2, 2, {1, 2, 3, 4}));
  Var b = g.Input(Tensor::FromMatrix(2, 2, {5, 6, 7, 8}));
  const Tensor& y = g.value(g.RowsDot(a, b));
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_FLOAT_EQ(y[0], 17.0f);
  EXPECT_FLOAT_EQ(y[1], 53.0f);
}

TEST(GraphForwardTest, BceMatchesComposedReference) {
  Graph g;
  Tensor logits_t = Tensor::FromVector({0.5f, -1.2f, 3.0f});
  Tensor labels = Tensor::FromVector({1.0f, 0.0f, 1.0f});
  Var logits = g.Input(logits_t);
  const float loss = g.value(g.BceWithLogits(logits, labels)).scalar();
  double ref = 0.0;
  for (size_t i = 0; i < 3; ++i) {
    const double p = 1.0 / (1.0 + std::exp(-logits_t[i]));
    ref += labels[i] > 0.5 ? -std::log(p) : -std::log(1.0 - p);
  }
  EXPECT_NEAR(loss, ref / 3.0, 1e-5);
}

TEST(GraphForwardTest, BprLossValue) {
  Graph g;
  Var pos = g.Input(Tensor::FromVector({2.0f}));
  Var neg = g.Input(Tensor::FromVector({0.0f}));
  const float loss = g.value(g.BprLoss(pos, neg)).scalar();
  EXPECT_NEAR(loss, std::log1p(std::exp(-2.0)), 1e-6);
}

TEST(GraphForwardTest, DropoutIdentityWhenNotTraining) {
  Graph g(/*training=*/false);
  Tensor x = Tensor::Full({4, 4}, 2.0f);
  Var v = g.Input(x);
  Var d = g.Dropout(v, 0.5f);
  EXPECT_TRUE(g.value(d).AllClose(x));
}

TEST(GraphForwardTest, DropoutMasksAndRescalesInTraining) {
  Rng rng(3);
  Graph g(/*training=*/true, &rng);
  Var v = g.Input(Tensor::Full({100, 10}, 1.0f));
  Var d = g.Dropout(v, 0.5f);
  const Tensor& y = g.value(d);
  size_t zeros = 0;
  for (size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // 1 / (1 - 0.5)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.5, 0.05);
}

// ------------------------------------------------------ gradient checks

TEST(GraphGradTest, MatMulAllTransposeCombos) {
  Rng rng(7);
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      Parameter a("a", RandomTensor(ta ? std::vector<size_t>{4, 2}
                                       : std::vector<size_t>{2, 4},
                                    rng));
      Parameter b("b", RandomTensor(tb ? std::vector<size_t>{3, 4}
                                       : std::vector<size_t>{4, 3},
                                    rng));
      const Tensor w = RandomTensor({2, 3}, rng);
      ExpectGradientsMatch({&a, &b}, [&](Graph& g) {
        Var c = g.MatMul(g.Param(&a), g.Param(&b), ta, tb);
        return g.SumAll(g.Mul(c, g.Input(w)));
      });
    }
  }
}

TEST(GraphGradTest, AddSubMulScale) {
  Rng rng(9);
  Parameter a("a", RandomTensor({3, 4}, rng));
  Parameter b("b", RandomTensor({3, 4}, rng));
  const Tensor w = RandomTensor({3, 4}, rng);
  ExpectGradientsMatch({&a, &b}, [&](Graph& g) {
    Var x = g.Add(g.Param(&a), g.Param(&b));
    Var y = g.Sub(x, g.Param(&b));
    Var z = g.Mul(y, g.Param(&a));
    return g.SumAll(g.Mul(g.Scale(z, 0.7f), g.Input(w)));
  });
}

TEST(GraphGradTest, BroadcastAddGrad) {
  Rng rng(11);
  Parameter big("big", RandomTensor({4, 3}, rng));
  Parameter small("small", RandomTensor({1, 3}, rng));
  const Tensor w = RandomTensor({4, 3}, rng);
  ExpectGradientsMatch({&big, &small}, [&](Graph& g) {
    return g.SumAll(
        g.Mul(g.Add(g.Param(&big), g.Param(&small)), g.Input(w)));
  });
}

TEST(GraphGradTest, BroadcastSubGrad) {
  Rng rng(13);
  Parameter big("big", RandomTensor({4, 3}, rng));
  Parameter small("small", RandomTensor({1, 3}, rng));
  const Tensor w = RandomTensor({4, 3}, rng);
  ExpectGradientsMatch({&big, &small}, [&](Graph& g) {
    return g.SumAll(
        g.Mul(g.Sub(g.Param(&big), g.Param(&small)), g.Input(w)));
  });
}

TEST(GraphGradTest, Activations) {
  Rng rng(15);
  // Keep values away from ReLU's kink for stable finite differences.
  Parameter a("a", RandomTensor({3, 3}, rng));
  for (size_t i = 0; i < a.value.size(); ++i) {
    if (std::fabs(a.value[i]) < 0.1f) a.value[i] = 0.3f;
  }
  const Tensor w = RandomTensor({3, 3}, rng);
  ExpectGradientsMatch({&a}, [&](Graph& g) {
    Var x = g.Relu(g.Param(&a));
    x = g.Sigmoid(x);
    x = g.Tanh(x);
    return g.SumAll(g.Mul(x, g.Input(w)));
  });
}

TEST(GraphGradTest, SoftmaxRowsGrad) {
  Rng rng(17);
  Parameter a("a", RandomTensor({3, 5}, rng));
  const Tensor w = RandomTensor({3, 5}, rng);
  ExpectGradientsMatch({&a}, [&](Graph& g) {
    return g.SumAll(g.Mul(g.SoftmaxRows(g.Param(&a)), g.Input(w)));
  });
}

TEST(GraphGradTest, SoftmaxMaskedGrad) {
  Rng rng(19);
  Parameter a("a", RandomTensor({4, 4}, rng));
  const Tensor mask = CausalMask(4);
  const Tensor w = RandomTensor({4, 4}, rng);
  ExpectGradientsMatch({&a}, [&](Graph& g) {
    return g.SumAll(g.Mul(g.SoftmaxRows(g.Param(&a), &mask), g.Input(w)));
  });
}

TEST(GraphGradTest, LayerNormGrad) {
  Rng rng(21);
  Parameter x("x", RandomTensor({3, 6}, rng));
  Parameter gamma("gamma", RandomTensor({1, 6}, rng, 0.5f));
  Parameter beta("beta", RandomTensor({1, 6}, rng, 0.5f));
  const Tensor w = RandomTensor({3, 6}, rng);
  ExpectGradientsMatch(
      {&x, &gamma, &beta},
      [&](Graph& g) {
        return g.SumAll(g.Mul(
            g.LayerNorm(g.Param(&x), g.Param(&gamma), g.Param(&beta)),
            g.Input(w)));
      },
      /*rtol=*/5e-2f, /*atol=*/5e-3f);
}

TEST(GraphGradTest, GatherScattersWithDuplicates) {
  Rng rng(23);
  Parameter table("table", RandomTensor({5, 3}, rng));
  table.row_sparse = true;
  const Tensor w = RandomTensor({4, 3}, rng);
  const std::vector<int> ids = {1, 3, 1, 0};  // duplicate id 1
  ExpectGradientsMatch({&table}, [&](Graph& g) {
    return g.SumAll(g.Mul(g.Gather(&table, ids), g.Input(w)));
  });
}

TEST(GraphGradTest, GatherMarksTouchedRows) {
  Rng rng(24);
  Parameter table("table", RandomTensor({5, 3}, rng));
  table.row_sparse = true;
  Graph g;
  Var x = g.Gather(&table, {2, 4});
  g.Backward(g.SumAll(x));
  std::vector<size_t> rows = table.touched_rows;
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, (std::vector<size_t>{2, 4}));
  // Untouched rows keep zero gradient.
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(table.grad.at(0, c), 0.0f);
    EXPECT_EQ(table.grad.at(2, c), 1.0f);
  }
}

TEST(GraphGradTest, ConcatSliceGrad) {
  Rng rng(25);
  Parameter a("a", RandomTensor({2, 2}, rng));
  Parameter b("b", RandomTensor({2, 3}, rng));
  const Tensor w = RandomTensor({2, 4}, rng);
  ExpectGradientsMatch({&a, &b}, [&](Graph& g) {
    Var c = g.ConcatCols({g.Param(&a), g.Param(&b)});
    Var s = g.SliceCols(c, 1, 5);
    return g.SumAll(g.Mul(s, g.Input(w)));
  });
}

TEST(GraphGradTest, SliceRowsGrad) {
  Rng rng(26);
  Parameter a("a", RandomTensor({4, 3}, rng));
  const Tensor w = RandomTensor({2, 3}, rng);
  ExpectGradientsMatch({&a}, [&](Graph& g) {
    return g.SumAll(g.Mul(g.SliceRows(g.Param(&a), 1, 3), g.Input(w)));
  });
}

TEST(GraphGradTest, ReductionGrads) {
  Rng rng(27);
  Parameter a("a", RandomTensor({3, 4}, rng));
  const Tensor w = RandomTensor({1, 4}, rng);
  ExpectGradientsMatch({&a}, [&](Graph& g) {
    Var sr = g.SumRows(g.Param(&a));
    return g.MeanAll(g.Mul(sr, g.Input(w)));
  });
}

TEST(GraphGradTest, RowsDotGrad) {
  Rng rng(29);
  Parameter a("a", RandomTensor({3, 4}, rng));
  Parameter b("b", RandomTensor({3, 4}, rng));
  const Tensor w = RandomTensor({3, 1}, rng);
  ExpectGradientsMatch({&a, &b}, [&](Graph& g) {
    return g.SumAll(
        g.Mul(g.RowsDot(g.Param(&a), g.Param(&b)), g.Input(w)));
  });
}

TEST(GraphGradTest, BceWithLogitsGrad) {
  Rng rng(31);
  Parameter a("a", RandomTensor({5, 1}, rng));
  Tensor labels = Tensor::Zeros({5, 1});
  labels[0] = 1.0f;
  labels[3] = 1.0f;
  ExpectGradientsMatch({&a}, [&](Graph& g) {
    return g.BceWithLogits(g.Param(&a), labels);
  });
}

TEST(GraphGradTest, BprLossGrad) {
  Rng rng(33);
  Parameter pos("pos", RandomTensor({4, 1}, rng));
  Parameter neg("neg", RandomTensor({4, 1}, rng));
  ExpectGradientsMatch({&pos, &neg}, [&](Graph& g) {
    return g.BprLoss(g.Param(&pos), g.Param(&neg));
  });
}

TEST(GraphGradTest, LinearLayerGrad) {
  Rng rng(35);
  Linear lin("lin", 3, 2, rng, /*init_stddev=*/0.5f);
  const Tensor x = RandomTensor({4, 3}, rng);
  const Tensor w = RandomTensor({4, 2}, rng);
  std::vector<Parameter*> params = lin.Parameters();
  ExpectGradientsMatch(params, [&](Graph& g) {
    return g.SumAll(g.Mul(lin.Apply(g, g.Input(x)), g.Input(w)));
  });
}

TEST(GraphGradTest, MlpGrad) {
  Rng rng(37);
  Mlp mlp("mlp", {4, 6, 1}, rng);
  std::vector<Parameter*> params = mlp.Parameters();
  // Push the hidden layer's pre-activations well above zero so finite
  // differences never cross the ReLU kink (where the true gradient is
  // discontinuous and central differences are meaningless).
  for (size_t i = 0; i < params[1]->value.size(); ++i) {
    params[1]->value[i] = 2.0f;  // fc0 bias
  }
  const Tensor x = RandomTensor({3, 4}, rng);
  ExpectGradientsMatch(
      params,
      [&](Graph& g) { return g.SumAll(mlp.Apply(g, g.Input(x))); },
      /*rtol=*/5e-2f, /*atol=*/5e-3f);
}

TEST(GraphGradTest, TransformerBlockGrad) {
  Rng rng(39);
  TransformerBlock block("blk", 4, 2, /*dropout_rate=*/0.0f, rng);
  // Use a larger init so gradients are well above finite-difference noise.
  for (Parameter* p : block.Parameters()) {
    if (p->name.find("ln") == std::string::npos) {
      for (size_t i = 0; i < p->value.size(); ++i) {
        p->value[i] = rng.Normal() * 0.3f;
      }
    }
  }
  const Tensor x = RandomTensor({3, 4}, rng, 0.5f);
  const Tensor mask = CausalMask(3);
  const Tensor w = RandomTensor({3, 4}, rng);
  std::vector<Parameter*> params = block.Parameters();
  ExpectGradientsMatch(
      params,
      [&](Graph& g) {
        return g.SumAll(
            g.Mul(block.Apply(g, g.Input(x), mask), g.Input(w)));
      },
      /*rtol=*/8e-2f, /*atol=*/8e-3f);
}

// --------------------------------------------------------- housekeeping

TEST(GraphTest, ParamGradAccumulatesAcrossGraphs) {
  Rng rng(41);
  Parameter a("a", RandomTensor({2, 2}, rng));
  for (int pass = 0; pass < 2; ++pass) {
    Graph g;
    g.Backward(g.SumAll(g.Param(&a)));
  }
  for (size_t i = 0; i < a.grad.size(); ++i) {
    EXPECT_FLOAT_EQ(a.grad[i], 2.0f);
  }
}

TEST(GraphTest, NoGradThroughInputs) {
  Graph g;
  Var x = g.Input(Tensor::FromVector({1, 2}));
  Parameter a("a", Tensor::FromVector({3, 4}));
  Var y = g.Add(x, g.Param(&a));
  g.Backward(g.SumAll(y));
  EXPECT_FLOAT_EQ(a.grad[0], 1.0f);  // param got its gradient
}

TEST(GraphTest, DropoutGradMatchesMask) {
  Rng rng(43);
  Parameter a("a", Tensor::Full({10, 10}, 1.0f));
  Graph g(/*training=*/true, &rng);
  Var d = g.Dropout(g.Param(&a), 0.3f);
  const Tensor y = g.value(d);
  g.Backward(g.SumAll(d));
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_FLOAT_EQ(a.grad[i], y[i]);  // grad == mask*scale == output here
  }
}

TEST(GraphTest, CausalMaskShape) {
  const Tensor m = CausalMask(4);
  EXPECT_EQ(m.rows(), 4u);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      if (c > r) {
        EXPECT_LT(m.at(r, c), -1e8f);
      } else {
        EXPECT_EQ(m.at(r, c), 0.0f);
      }
    }
  }
}

}  // namespace
}  // namespace sccf::nn
