#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "models/recommender.h"
#include "util/logging.h"

namespace sccf::eval {
namespace {

// ------------------------------------------------------------- metrics

TEST(MetricsTest, HitRateFormula) {
  EXPECT_EQ(HitRate(1, 10), 1.0);
  EXPECT_EQ(HitRate(10, 10), 1.0);
  EXPECT_EQ(HitRate(11, 10), 0.0);
  EXPECT_EQ(HitRate(0, 10), 0.0);  // rank 0 = unevaluated sentinel
}

TEST(MetricsTest, NdcgFormula) {
  EXPECT_DOUBLE_EQ(Ndcg(1, 10), 1.0);
  EXPECT_DOUBLE_EQ(Ndcg(2, 10), 1.0 / std::log2(3.0));
  EXPECT_DOUBLE_EQ(Ndcg(3, 10), 0.5);  // log2(4) = 2
  EXPECT_EQ(Ndcg(11, 10), 0.0);
}

TEST(MetricsTest, NdcgDecreasesWithRank) {
  for (size_t r = 1; r < 50; ++r) {
    EXPECT_GT(Ndcg(r, 100), Ndcg(r + 1, 100));
  }
}

TEST(MetricsTest, HrAtLeastNdcg) {
  for (size_t r = 1; r <= 30; ++r) {
    EXPECT_GE(HitRate(r, 20), Ndcg(r, 20));
  }
}

TEST(MetricAccumulatorTest, AveragesOverUsers) {
  MetricAccumulator acc({2, 5});
  acc.AddRank(1);  // hits both cutoffs
  acc.AddRank(3);  // hits only @5
  acc.AddRank(9);  // misses both
  EXPECT_EQ(acc.num_users(), 3u);
  EXPECT_NEAR(acc.hr(0), 1.0 / 3, 1e-12);
  EXPECT_NEAR(acc.hr(1), 2.0 / 3, 1e-12);
  EXPECT_NEAR(acc.ndcg(0), 1.0 / 3, 1e-12);
  EXPECT_NEAR(acc.ndcg(1), (1.0 + 0.5) / 3, 1e-12);
}

TEST(MetricAccumulatorTest, MergeEqualsSequential) {
  MetricAccumulator a({10}), b({10}), both({10});
  for (size_t r : {1u, 4u, 12u}) {
    a.AddRank(r);
    both.AddRank(r);
  }
  for (size_t r : {2u, 20u}) {
    b.AddRank(r);
    both.AddRank(r);
  }
  a.Merge(b);
  EXPECT_EQ(a.num_users(), both.num_users());
  EXPECT_DOUBLE_EQ(a.hr(0), both.hr(0));
  EXPECT_DOUBLE_EQ(a.ndcg(0), both.ndcg(0));
}

// ------------------------------------------------------------ evaluator

// Deterministic model: score(item) = -item, so item 0 always ranks first.
class FixedOrderModel : public models::Recommender {
 public:
  explicit FixedOrderModel(size_t num_items) : num_items_(num_items) {}
  std::string name() const override { return "FixedOrder"; }
  Status Fit(const data::LeaveOneOutSplit&) override { return Status::OK(); }
  void ScoreAll(size_t, std::span<const int>,
                std::vector<float>* scores) const override {
    scores->resize(num_items_);
    for (size_t i = 0; i < num_items_; ++i) {
      (*scores)[i] = -static_cast<float>(i);
    }
  }

 private:
  size_t num_items_;
};

data::Dataset MakeSequentialDataset(int num_users, int len) {
  std::vector<data::Interaction> inter;
  int64_t t = 0;
  for (int u = 0; u < num_users; ++u) {
    for (int i = 0; i < len; ++i) {
      // User u's sequence: u, u+1, ..., u+len-1 (mod pool).
      inter.push_back({u, (u + i) % (num_users + len), ++t});
    }
  }
  auto ds = data::Dataset::FromInteractions("eval", std::move(inter));
  SCCF_CHECK(ds.ok());
  return std::move(ds).value();
}

TEST(EvaluatorTest, RankMatchesKnownOrder) {
  // One user with items 0..4; test item is 4 (compact id order = first
  // appearance order).
  std::vector<data::Interaction> inter;
  for (int i = 0; i < 5; ++i) inter.push_back({0, i * 7, i});
  auto ds = data::Dataset::FromInteractions("one", std::move(inter));
  ASSERT_TRUE(ds.ok());
  data::LeaveOneOutSplit split(*ds);
  FixedOrderModel model(ds->num_items());

  EvalOptions opts;
  opts.cutoffs = {1, 2};
  opts.keep_ranks = true;
  auto result = Evaluate(model, split, opts);
  ASSERT_TRUE(result.ok());
  // History (items 0..3) masked; only item 4 remains with the best score
  // among unmasked -> rank 1.
  EXPECT_EQ(result->ranks[0], 1u);
  EXPECT_EQ(result->HrAt(1), 1.0);
}

TEST(EvaluatorTest, WithoutHistoryExclusionRankDrops) {
  std::vector<data::Interaction> inter;
  for (int i = 0; i < 5; ++i) inter.push_back({0, i, i});
  auto ds = data::Dataset::FromInteractions("one", std::move(inter));
  ASSERT_TRUE(ds.ok());
  data::LeaveOneOutSplit split(*ds);
  FixedOrderModel model(ds->num_items());

  EvalOptions opts;
  opts.cutoffs = {1, 5};
  opts.exclude_history = false;
  opts.keep_ranks = true;
  auto result = Evaluate(model, split, opts);
  ASSERT_TRUE(result.ok());
  // Items 0..3 (all in history) outscore item 4 -> rank 5.
  EXPECT_EQ(result->ranks[0], 5u);
  EXPECT_EQ(result->HrAt(1), 0.0);
  EXPECT_EQ(result->HrAt(5), 1.0);
}

TEST(EvaluatorTest, ValidationModeUsesValidItem) {
  std::vector<data::Interaction> inter;
  for (int i = 0; i < 5; ++i) inter.push_back({0, i, i});
  auto ds = data::Dataset::FromInteractions("one", std::move(inter));
  ASSERT_TRUE(ds.ok());
  data::LeaveOneOutSplit split(*ds);
  FixedOrderModel model(ds->num_items());

  EvalOptions opts;
  opts.cutoffs = {2};
  opts.on_validation = true;
  opts.keep_ranks = true;
  auto result = Evaluate(model, split, opts);
  ASSERT_TRUE(result.ok());
  // History = train prefix {0,1,2}; valid item = 3; unmasked items {3,4};
  // item 3 scores above item 4 -> rank 1.
  EXPECT_EQ(result->ranks[0], 1u);
}

TEST(EvaluatorTest, ParallelMatchesSerial) {
  auto ds = MakeSequentialDataset(40, 8);
  data::LeaveOneOutSplit split(ds);
  FixedOrderModel model(ds.num_items());
  EvalOptions serial;
  serial.parallel = false;
  EvalOptions parallel;
  parallel.parallel = true;
  auto rs = Evaluate(model, split, serial);
  auto rp = Evaluate(model, split, parallel);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rs->num_users, rp->num_users);
  for (size_t i = 0; i < rs->hr.size(); ++i) {
    EXPECT_DOUBLE_EQ(rs->hr[i], rp->hr[i]);
    EXPECT_DOUBLE_EQ(rs->ndcg[i], rp->ndcg[i]);
  }
}

TEST(EvaluatorTest, EmptyCutoffsRejected) {
  auto ds = MakeSequentialDataset(5, 6);
  data::LeaveOneOutSplit split(ds);
  FixedOrderModel model(ds.num_items());
  EvalOptions opts;
  opts.cutoffs = {};
  EXPECT_FALSE(Evaluate(model, split, opts).ok());
}

TEST(EvaluatorTest, CountsOnlyEvaluableUsers) {
  std::vector<data::Interaction> inter = {{0, 1, 0}, {0, 2, 1}};  // too short
  for (int i = 0; i < 6; ++i) inter.push_back({1, i + 10, i + 10});
  auto ds = data::Dataset::FromInteractions("mix", std::move(inter));
  ASSERT_TRUE(ds.ok());
  data::LeaveOneOutSplit split(*ds);
  FixedOrderModel model(ds->num_items());
  auto result = Evaluate(model, split);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_users, 1u);
}

TEST(EvalResultTest, MissingCutoffReturnsZero) {
  EvalResult r;
  r.cutoffs = {20};
  r.hr = {0.5};
  r.ndcg = {0.25};
  EXPECT_EQ(r.HrAt(20), 0.5);
  EXPECT_EQ(r.HrAt(50), 0.0);
  EXPECT_EQ(r.NdcgAt(20), 0.25);
}

}  // namespace
}  // namespace sccf::eval
