// End-to-end crash recovery: a child process ingests against a
// persistent engine and dies by SIGKILL mid-stream — no destructors, no
// flushes — then the parent recovers from the directory the corpse left
// behind and demands *bit-identical* user-facing state against a twin
// engine that never crashed (histories, vote lists, neighborhoods,
// recommendation scores, across every index backend). The suite also
// pins the failure-policy half of the contract: torn journal tails are
// cleanly discarded (and only genuine tails — an intact record beyond
// the damage proves mid-file corruption), while corruption anywhere
// else (older generations, mid-file in the newest one, the snapshot)
// fails Bootstrap with a clean Status — never a crash, never silently
// wrong state. A failed append seals its journal generation; the Save
// that rotates it out deletes it, which is also pinned here.
//
// Forking rules (see tests/testing/subprocess.h): Engine::Bootstrap
// uses the global thread pool, whose workers do not survive a fork, so
// every engine is bootstrapped in the parent; children only ingest
// (single-threaded with identify off) and die.

#include <gtest/gtest.h>
#include <signal.h>

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/split.h"
#include "data/synthetic.h"
#include "models/fism.h"
#include "online/engine.h"
#include "persist/fs.h"
#include "persist/journal.h"
#include "persist/recovery.h"
#include "testing/subprocess.h"
#include "testing/temp_dir.h"

namespace sccf::online {
namespace {

using core::IndexKind;
using core::RealTimeService;
using sccf::testing::ExitedCleanly;
using sccf::testing::KilledBySignal;
using sccf::testing::RunInChild;
using sccf::testing::SelfKill;
using sccf::testing::TempDir;

class RecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig cfg;
    cfg.name = "recovery-test";
    cfg.num_users = 80;
    cfg.num_items = 120;
    cfg.num_clusters = 8;
    cfg.min_actions = 8;
    cfg.max_actions = 18;
    cfg.seed = 71;
    data::SyntheticGenerator gen(cfg);
    auto ds = gen.Generate();
    SCCF_CHECK(ds.ok());
    dataset_ = new data::Dataset(std::move(ds).value());
    split_ = new data::LeaveOneOutSplit(*dataset_);
    models::Fism::Options fopts;
    fopts.dim = 16;
    fopts.epochs = 0;  // untrained: deterministic weights, instant Fit
    fism_ = new models::Fism(fopts);
    SCCF_CHECK(fism_->Fit(*split_).ok());
  }
  static void TearDownTestSuite() {
    delete fism_;
    delete split_;
    delete dataset_;
    fism_ = nullptr;
    split_ = nullptr;
    dataset_ = nullptr;
  }

  static Engine::Options MakeOptions(IndexKind kind, size_t threshold,
                                     const std::string& recover_dir) {
    Engine::Options opts;
    opts.beta = 10;
    opts.num_shards = 4;
    opts.index_kind = kind;
    opts.compaction_threshold = threshold;
    opts.recover_dir = recover_dir;
    return opts;
  }

  /// Deterministic interleaved event stream: 20 warm users plus two
  /// cold-start ones, chronological per user.
  static std::vector<Engine::Event> EventLog() {
    std::vector<Engine::Event> events;
    const int num_items = static_cast<int>(dataset_->num_items());
    for (int step = 0; step < 8; ++step) {
      for (int u = 0; u < 20; ++u) {
        events.push_back({u, (u * 11 + step * 7) % num_items, step});
      }
      events.push_back({9000, (step * 13 + 1) % num_items, step});
      events.push_back({9001, (step * 17 + 2) % num_items, step});
    }
    return events;
  }

  /// Ingests events[lo, hi) in `batch` sized chunks, identify off (the
  /// fan-out search never mutates state and keeps children off the
  /// thread pool for sure).
  static void IngestRange(Engine& engine,
                          const std::vector<Engine::Event>& events,
                          size_t lo, size_t hi, size_t batch) {
    for (size_t i = lo; i < hi; i += batch) {
      Engine::IngestRequest req;
      req.identify = false;
      const size_t end = std::min(hi, i + batch);
      req.events.assign(events.begin() + i, events.begin() + end);
      const auto response = engine.Ingest(req);
      SCCF_CHECK(response.ok()) << response.status().ToString();
    }
  }

  /// The users every equivalence check probes: warm, busiest, and the
  /// two cold-start users created mid-stream.
  static std::vector<int> ProbeUsers() { return {0, 1, 5, 19, 9000, 9001}; }

  /// Bit-identical user-facing state: histories, vote lists, Eq. 11
  /// neighborhoods, and Eq. 12 recommendation lists with exact float
  /// equality — the recovery contract is "as if the crash never
  /// happened", not "approximately".
  static void ExpectSameState(const RealTimeService& a,
                              const RealTimeService& b,
                              const std::vector<int>& users) {
    ASSERT_EQ(a.num_users(), b.num_users());
    for (int user : users) {
      auto h_a = a.History(user);
      auto h_b = b.History(user);
      ASSERT_TRUE(h_a.ok()) << "user " << user;
      ASSERT_TRUE(h_b.ok()) << "user " << user;
      EXPECT_EQ(*h_a, *h_b) << "history diverged for user " << user;

      auto v_a = a.VoteItems(user);
      auto v_b = b.VoteItems(user);
      ASSERT_EQ(v_a.ok(), v_b.ok()) << "user " << user;
      if (v_a.ok()) {
        EXPECT_EQ(*v_a, *v_b) << "votes diverged user " << user;
      }

      auto n_a = a.Neighbors(user);
      auto n_b = b.Neighbors(user);
      ASSERT_TRUE(n_a.ok()) << "user " << user;
      ASSERT_TRUE(n_b.ok()) << "user " << user;
      ASSERT_EQ(n_a->size(), n_b->size()) << "user " << user;
      for (size_t i = 0; i < n_a->size(); ++i) {
        EXPECT_EQ((*n_a)[i].id, (*n_b)[i].id)
            << "user " << user << " rank " << i;
        EXPECT_EQ((*n_a)[i].score, (*n_b)[i].score)
            << "user " << user << " rank " << i;
      }

      auto r_a = a.RecommendUserBased(user, 10);
      auto r_b = b.RecommendUserBased(user, 10);
      ASSERT_TRUE(r_a.ok()) << "user " << user;
      ASSERT_TRUE(r_b.ok()) << "user " << user;
      ASSERT_EQ(r_a->size(), r_b->size()) << "user " << user;
      for (size_t i = 0; i < r_a->size(); ++i) {
        EXPECT_EQ((*r_a)[i].id, (*r_b)[i].id)
            << "user " << user << " rank " << i;
        EXPECT_EQ((*r_a)[i].score, (*r_b)[i].score)
            << "user " << user << " rank " << i;
      }
    }
  }

  static data::Dataset* dataset_;
  static data::LeaveOneOutSplit* split_;
  static models::Fism* fism_;
};

data::Dataset* RecoveryTest::dataset_ = nullptr;
data::LeaveOneOutSplit* RecoveryTest::split_ = nullptr;
models::Fism* RecoveryTest::fism_ = nullptr;

// ------------------------------------------------- crash equivalence

TEST_F(RecoveryTest, SigkillMidIngestRecoversBitIdentical) {
  // Every index backend, two batch shapes. Brute force is bit-exact
  // under any compaction threshold, so it runs with staged upserts in
  // flight at the kill; HNSW/IVF run write-through (threshold 1), where
  // drain timing — part of their internal state — is fixed by the event
  // sequence alone.
  struct Config {
    IndexKind kind;
    size_t threshold;
    size_t batch;
  };
  const Config configs[] = {
      {IndexKind::kBruteForce, 3, 1}, {IndexKind::kBruteForce, 3, 7},
      {IndexKind::kIvfFlat, 1, 1},    {IndexKind::kIvfFlat, 1, 7},
      {IndexKind::kHnsw, 1, 1},       {IndexKind::kHnsw, 1, 7},
  };
  const std::vector<Engine::Event> events = EventLog();

  for (const Config& cfg : configs) {
    SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(cfg.kind)) +
                 " batch=" + std::to_string(cfg.batch));
    TempDir dir;
    // Kill point: roughly mid-stream, on a batch boundary so the parent
    // can reproduce exactly what the child committed.
    const size_t kill = (events.size() / 2 / cfg.batch) * cfg.batch;

    {
      auto crash = std::make_unique<Engine>(
          *fism_, MakeOptions(cfg.kind, cfg.threshold, dir.path()));
      ASSERT_TRUE(crash->BootstrapFromSplit(*split_).ok());
      const int status = RunInChild([&] {
        IngestRange(*crash, events, 0, kill, cfg.batch);
        SelfKill();
      });
      ASSERT_TRUE(KilledBySignal(status, SIGKILL));
      // The parent's copy of the engine never saw the child's ingest
      // (copy-on-write address spaces); it is destroyed here untouched.
    }

    Engine recovered(*fism_,
                     MakeOptions(cfg.kind, cfg.threshold, dir.path()));
    ASSERT_TRUE(recovered.BootstrapFromSplit(*split_).ok());
    Engine witness(*fism_, MakeOptions(cfg.kind, cfg.threshold, ""));
    ASSERT_TRUE(witness.BootstrapFromSplit(*split_).ok());
    IngestRange(witness, events, 0, kill, cfg.batch);
    ExpectSameState(recovered.service(), witness.service(), ProbeUsers());

    // Recovery must also *compose*: both engines absorb the rest of the
    // stream and must still agree — this is what pins serialized index
    // internals (HNSW RNG state, IVF centroids) rather than just the
    // visible maps.
    IngestRange(recovered, events, kill, events.size(), cfg.batch);
    IngestRange(witness, events, kill, events.size(), cfg.batch);
    ExpectSameState(recovered.service(), witness.service(), ProbeUsers());
  }
}

TEST_F(RecoveryTest, SaveMidStreamThenCrashRecoversSnapshotPlusTail) {
  TempDir dir;
  const std::vector<Engine::Event> events = EventLog();
  const size_t half = (events.size() / 2 / 5) * 5;

  {
    auto crash = std::make_unique<Engine>(
        *fism_, MakeOptions(IndexKind::kBruteForce, 3, dir.path()));
    ASSERT_TRUE(crash->BootstrapFromSplit(*split_).ok());
    const int status = RunInChild([&] {
      IngestRange(*crash, events, 0, half, 5);
      SCCF_CHECK(crash->Save().ok());
      IngestRange(*crash, events, half, events.size(), 5);
      SelfKill();
    });
    ASSERT_TRUE(KilledBySignal(status, SIGKILL));
  }

  // The child's Save ran to completion, so the directory holds a
  // snapshot plus the rotated-to generation with the post-save tail.
  EXPECT_TRUE(persist::PathExists(dir.file("snapshot")));
  EXPECT_TRUE(persist::PathExists(dir.file("journal-000002")));

  Engine recovered(*fism_,
                   MakeOptions(IndexKind::kBruteForce, 3, dir.path()));
  ASSERT_TRUE(recovered.BootstrapFromSplit(*split_).ok());
  Engine witness(*fism_, MakeOptions(IndexKind::kBruteForce, 3, ""));
  ASSERT_TRUE(witness.BootstrapFromSplit(*split_).ok());
  IngestRange(witness, events, 0, events.size(), 5);
  ExpectSameState(recovered.service(), witness.service(), ProbeUsers());
}

// -------------------------------------------- lifecycle + durability

TEST_F(RecoveryTest, FreshDirIsPlainBootstrapPlusJournaling) {
  TempDir dir;
  Engine engine(*fism_,
                MakeOptions(IndexKind::kBruteForce, 1, dir.file("data")));
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());
  EXPECT_TRUE(engine.persistence_enabled());
  EXPECT_EQ(engine.last_save_unix_s(), -1);  // never saved, not epoch 0

  Engine witness(*fism_, MakeOptions(IndexKind::kBruteForce, 1, ""));
  ASSERT_TRUE(witness.BootstrapFromSplit(*split_).ok());
  EXPECT_FALSE(witness.persistence_enabled());
  ExpectSameState(engine.service(), witness.service(), {0, 1, 5, 19});

  // SAVE works once persistence is configured — and only then.
  EXPECT_TRUE(engine.Save().ok());
  EXPECT_GT(engine.last_save_unix_s(), 0);
  EXPECT_TRUE(persist::PathExists(dir.file("data/snapshot")));
  EXPECT_EQ(witness.Save().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RecoveryTest, CleanRestartReplaysJournal) {
  // No crash, no Save: destruction closes the journal cleanly and the
  // next Bootstrap replays it in full.
  TempDir dir;
  const std::vector<Engine::Event> events = EventLog();
  {
    Engine first(*fism_, MakeOptions(IndexKind::kHnsw, 1, dir.path()));
    ASSERT_TRUE(first.BootstrapFromSplit(*split_).ok());
    IngestRange(first, events, 0, events.size(), 4);
  }
  Engine second(*fism_, MakeOptions(IndexKind::kHnsw, 1, dir.path()));
  ASSERT_TRUE(second.BootstrapFromSplit(*split_).ok());
  Engine witness(*fism_, MakeOptions(IndexKind::kHnsw, 1, ""));
  ASSERT_TRUE(witness.BootstrapFromSplit(*split_).ok());
  IngestRange(witness, events, 0, events.size(), 4);
  ExpectSameState(second.service(), witness.service(), ProbeUsers());
}

TEST_F(RecoveryTest, SaveRotatesAndGarbageCollectsGenerations) {
  TempDir dir;
  const std::vector<Engine::Event> events = EventLog();
  Engine engine(*fism_, MakeOptions(IndexKind::kBruteForce, 1, dir.path()));
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());

  IngestRange(engine, events, 0, 40, 4);
  ASSERT_TRUE(engine.Save().ok());  // gen 1 retained, gen 2 opened
  IngestRange(engine, events, 40, 80, 4);
  ASSERT_TRUE(engine.Save().ok());  // gen 1 deleted, gen 3 opened
  IngestRange(engine, events, 80, 120, 4);

  EXPECT_FALSE(persist::PathExists(dir.file("journal-000001")));
  EXPECT_TRUE(persist::PathExists(dir.file("journal-000002")));
  EXPECT_TRUE(persist::PathExists(dir.file("journal-000003")));
  EXPECT_TRUE(persist::PathExists(dir.file("snapshot")));

  Engine recovered(*fism_,
                   MakeOptions(IndexKind::kBruteForce, 1, dir.path()));
  ASSERT_TRUE(recovered.BootstrapFromSplit(*split_).ok());
  Engine witness(*fism_, MakeOptions(IndexKind::kBruteForce, 1, ""));
  ASSERT_TRUE(witness.BootstrapFromSplit(*split_).ok());
  IngestRange(witness, events, 0, 120, 4);
  ExpectSameState(recovered.service(), witness.service(), ProbeUsers());
}

// ------------------------------------------------- failure semantics

TEST_F(RecoveryTest, TornJournalTailIsDiscardedCleanly) {
  TempDir dir;
  const std::vector<Engine::Event> events = EventLog();
  // Past the first step's cold-start events so users 9000/9001 exist.
  const size_t n = 30;
  {
    Engine engine(*fism_,
                  MakeOptions(IndexKind::kBruteForce, 1, dir.path()));
    ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());
    // Batch size 1: one journal record per event, so truncating the
    // last record removes exactly the last event from history.
    IngestRange(engine, events, 0, n, 1);
  }
  const std::string journal = dir.file("journal-000001");
  auto bytes = persist::ReadFileToString(journal);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      persist::WriteFileAtomic(
          journal, std::string_view(bytes->data(), bytes->size() - 5), false)
          .ok());

  Engine recovered(*fism_,
                   MakeOptions(IndexKind::kBruteForce, 1, dir.path()));
  ASSERT_TRUE(recovered.BootstrapFromSplit(*split_).ok());
  Engine witness(*fism_, MakeOptions(IndexKind::kBruteForce, 1, ""));
  ASSERT_TRUE(witness.BootstrapFromSplit(*split_).ok());
  IngestRange(witness, events, 0, n - 1, 1);  // the torn event is gone
  ExpectSameState(recovered.service(), witness.service(),
                  {0, 1, 5, 19, 9000, 9001});
}

TEST_F(RecoveryTest, TrailingGarbageAfterValidRecordsIsDiscarded) {
  TempDir dir;
  const std::vector<Engine::Event> events = EventLog();
  // Past the first step's cold-start events so users 9000/9001 exist.
  const size_t n = 30;
  {
    Engine engine(*fism_,
                  MakeOptions(IndexKind::kBruteForce, 1, dir.path()));
    ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());
    IngestRange(engine, events, 0, n, 1);
  }
  const std::string journal = dir.file("journal-000001");
  auto bytes = persist::ReadFileToString(journal);
  ASSERT_TRUE(bytes.ok());
  *bytes += std::string(37, '\xee');  // a torn half-written record
  ASSERT_TRUE(persist::WriteFileAtomic(journal, *bytes, false).ok());

  Engine recovered(*fism_,
                   MakeOptions(IndexKind::kBruteForce, 1, dir.path()));
  ASSERT_TRUE(recovered.BootstrapFromSplit(*split_).ok());
  Engine witness(*fism_, MakeOptions(IndexKind::kBruteForce, 1, ""));
  ASSERT_TRUE(witness.BootstrapFromSplit(*split_).ok());
  IngestRange(witness, events, 0, n, 1);  // every intact record replays
  ExpectSameState(recovered.service(), witness.service(), ProbeUsers());
}

TEST_F(RecoveryTest, MidFileCorruptionInNewestGenerationFailsBootstrap) {
  // The torn-tail allowance covers only the FINAL record of the newest
  // generation: a flipped bit mid-file leaves intact, acknowledged
  // records beyond the damage, and recovery must refuse to start
  // rather than silently truncate them away.
  TempDir dir;
  const std::vector<Engine::Event> events = EventLog();
  const size_t n = 30;
  {
    Engine engine(*fism_,
                  MakeOptions(IndexKind::kBruteForce, 1, dir.path()));
    ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());
    IngestRange(engine, events, 0, n, 1);
  }
  const std::string journal = dir.file("journal-000001");
  auto bytes = persist::ReadFileToString(journal);
  ASSERT_TRUE(bytes.ok());
  const size_t at = bytes->size() / 3;  // ~record 10 of 30
  (*bytes)[at] = static_cast<char>((*bytes)[at] ^ 0xff);
  ASSERT_TRUE(persist::WriteFileAtomic(journal, *bytes, false).ok());

  Engine recovered(*fism_,
                   MakeOptions(IndexKind::kBruteForce, 1, dir.path()));
  const Status booted = recovered.BootstrapFromSplit(*split_);
  EXPECT_EQ(booted.code(), StatusCode::kIoError) << booted.ToString();
}

TEST_F(RecoveryTest, SealedGenerationIsDeletedBySaveAndIngestResumes) {
  // A failed append seals its journal generation (journal.h): ingest
  // refuses until a Save rotates it — and that Save must DELETE the
  // sealed file rather than retain it like a healthy current
  // generation, because its damaged tail may hold a fully-written
  // record the service never acknowledged, whose seq the first
  // post-rotation record reuses; replayed, the stale record would win
  // and the acknowledged one would be silently skipped.
  TempDir dir;
  const std::vector<Engine::Event> events = EventLog();
  Engine engine(*fism_, MakeOptions(IndexKind::kBruteForce, 1, ""));
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());
  auto manager = persist::PersistenceManager::Open(dir.path(), false);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  persist::PersistenceManager& mgr = **manager;
  ASSERT_TRUE(mgr.Recover(&engine.service()).ok());
  engine.service().set_ingest_sink(&mgr);

  IngestRange(engine, events, 0, 20, 4);

  // Disk error strikes: the generation seals; ingest is refused with
  // FailedPrecondition and the batch leaves no trace in memory.
  mgr.journal_for_testing()->PoisonForTesting();
  const size_t users_before = engine.service().num_users();
  Engine::IngestRequest refused_batch;
  refused_batch.identify = false;
  refused_batch.events = {events[20]};  // a cold-start user
  const auto refused = engine.Ingest(refused_batch);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition)
      << refused.status().ToString();
  EXPECT_EQ(engine.service().num_users(), users_before);

  // SAVE is the operator remedy: sealed gen 1 deleted (not retained),
  // fresh gen 2 opened, ingest resumes.
  ASSERT_TRUE(mgr.Save(engine.service()).ok());
  EXPECT_FALSE(persist::PathExists(dir.file("journal-000001")));
  EXPECT_TRUE(persist::PathExists(dir.file("journal-000002")));
  IngestRange(engine, events, 20, 40, 4);
  engine.service().set_ingest_sink(nullptr);

  // Recovery reproduces exactly the acknowledged events.
  Engine recovered(*fism_,
                   MakeOptions(IndexKind::kBruteForce, 1, dir.path()));
  ASSERT_TRUE(recovered.BootstrapFromSplit(*split_).ok());
  Engine witness(*fism_, MakeOptions(IndexKind::kBruteForce, 1, ""));
  ASSERT_TRUE(witness.BootstrapFromSplit(*split_).ok());
  IngestRange(witness, events, 0, 40, 4);
  ExpectSameState(recovered.service(), witness.service(), ProbeUsers());
}

TEST_F(RecoveryTest, CorruptionInOlderGenerationFailsBootstrap) {
  // A torn tail is only legitimate in the NEWEST generation — an older
  // one was rotated out by a completed Save and must be intact.
  TempDir dir;
  const std::vector<Engine::Event> events = EventLog();
  {
    Engine engine(*fism_,
                  MakeOptions(IndexKind::kBruteForce, 1, dir.path()));
    ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());
    IngestRange(engine, events, 0, 30, 3);
    ASSERT_TRUE(engine.Save().ok());  // gen 1 retained, gen 2 opened
    IngestRange(engine, events, 30, 60, 3);
  }
  const std::string older = dir.file("journal-000001");
  auto bytes = persist::ReadFileToString(older);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[bytes->size() / 2] =
      static_cast<char>((*bytes)[bytes->size() / 2] ^ 0xff);
  ASSERT_TRUE(persist::WriteFileAtomic(older, *bytes, false).ok());

  Engine recovered(*fism_,
                   MakeOptions(IndexKind::kBruteForce, 1, dir.path()));
  const Status booted = recovered.BootstrapFromSplit(*split_);
  EXPECT_EQ(booted.code(), StatusCode::kIoError) << booted.ToString();
}

TEST_F(RecoveryTest, CorruptSnapshotFailsBootstrapCleanly) {
  TempDir dir;
  const std::vector<Engine::Event> events = EventLog();
  {
    Engine engine(*fism_,
                  MakeOptions(IndexKind::kBruteForce, 1, dir.path()));
    ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());
    IngestRange(engine, events, 0, 40, 4);
    ASSERT_TRUE(engine.Save().ok());
  }
  const std::string snapshot = dir.file("snapshot");
  auto bytes = persist::ReadFileToString(snapshot);
  ASSERT_TRUE(bytes.ok());

  // Bit flip mid-file: some section's CRC breaks.
  std::string flipped = *bytes;
  flipped[flipped.size() / 2] =
      static_cast<char>(flipped[flipped.size() / 2] ^ 0xff);
  ASSERT_TRUE(persist::WriteFileAtomic(snapshot, flipped, false).ok());
  {
    Engine e(*fism_, MakeOptions(IndexKind::kBruteForce, 1, dir.path()));
    EXPECT_FALSE(e.BootstrapFromSplit(*split_).ok());
  }

  // Truncation: the end marker is missing.
  ASSERT_TRUE(persist::WriteFileAtomic(
                  snapshot,
                  std::string_view(bytes->data(), bytes->size() / 2), false)
                  .ok());
  {
    Engine e(*fism_, MakeOptions(IndexKind::kBruteForce, 1, dir.path()));
    EXPECT_FALSE(e.BootstrapFromSplit(*split_).ok());
  }
}

TEST_F(RecoveryTest, StaleTempFilesAreIgnored) {
  // A crash during snapshot write legitimately leaves a snapshot.tmp;
  // recovery must ignore it (the rename never committed, so the
  // previous state — here, none — is the truth).
  TempDir dir;
  ASSERT_TRUE(
      persist::WriteFileAtomic(dir.file("snapshot.tmp"), "garbage", false)
          .ok());
  Engine engine(*fism_, MakeOptions(IndexKind::kBruteForce, 1, dir.path()));
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());
  Engine witness(*fism_, MakeOptions(IndexKind::kBruteForce, 1, ""));
  ASSERT_TRUE(witness.BootstrapFromSplit(*split_).ok());
  ExpectSameState(engine.service(), witness.service(), {0, 1, 5, 19});
}

TEST_F(RecoveryTest, JournalSequenceGapIsIoError) {
  // Service-level seq discipline: replay skips already-covered records
  // and rejects gaps (a deleted or reordered record is corruption, not
  // a tail).
  core::RealTimeService service(
      *fism_, MakeOptions(IndexKind::kBruteForce, 1, ""));
  ASSERT_TRUE(service.BootstrapFromSplit(*split_).ok());
  const std::vector<Engine::Event> events = {{0, 1, 0}};
  const size_t shard = service.ShardOf(0);

  ASSERT_TRUE(service
                  .ApplyJournalRecord(
                      shard, 1, std::span<const Engine::Event>(events))
                  .ok());
  EXPECT_EQ(service.ShardJournalSeq(shard), 1u);
  // Re-applying seq 1 is an idempotent skip (snapshot overlap).
  ASSERT_TRUE(service
                  .ApplyJournalRecord(
                      shard, 1, std::span<const Engine::Event>(events))
                  .ok());
  EXPECT_EQ(service.ShardJournalSeq(shard), 1u);
  // Seq 3 with seq 2 missing is a gap: IoError, state untouched.
  EXPECT_EQ(service
                .ApplyJournalRecord(
                    shard, 3, std::span<const Engine::Event>(events))
                .code(),
            StatusCode::kIoError);
  EXPECT_EQ(service.ShardJournalSeq(shard), 1u);
}

TEST_F(RecoveryTest, ChildThatRunsToCompletionExitsCleanly) {
  // Sanity-pin the harness itself: a child that does NOT SelfKill exits
  // 0, so the SIGKILL assertions in the crash tests are meaningful.
  const int status = RunInChild([] {});
  EXPECT_TRUE(ExitedCleanly(status));
  EXPECT_FALSE(KilledBySignal(status, SIGKILL));
}

}  // namespace
}  // namespace sccf::online
