// Concurrency stress for the sharded RealTimeService: N producer threads
// hammer OnInteraction (and batched Engine::Ingest with write-buffered
// compaction) concurrently, then the full service state is checked for
// equivalence against a serial replay of the same interactions. Runs
// under ASan in the asan preset and under TSan via scripts/ci.sh (tsan
// preset), where the per-shard shared_mutex discipline — including the
// buffer-merging query path racing staged ingest — is what is actually
// on trial.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/realtime.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "models/fism.h"
#include "online/engine.h"

namespace sccf::core {
namespace {

constexpr int kThreads = 4;
constexpr int kStepsPerUser = 10;

class RealTimeShardStressTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig cfg;
    cfg.name = "shard-stress";
    cfg.num_users = 80;
    cfg.num_items = 120;
    cfg.num_clusters = 6;
    cfg.min_actions = 8;
    cfg.max_actions = 24;
    cfg.seed = 47;
    data::SyntheticGenerator gen(cfg);
    auto ds = gen.Generate();
    SCCF_CHECK(ds.ok());
    dataset_ = new data::Dataset(std::move(ds).value());
    split_ = new data::LeaveOneOutSplit(*dataset_);

    models::Fism::Options fopts;
    fopts.dim = 16;
    fopts.epochs = 3;  // enough training that user embeddings are distinct
    fism_ = new models::Fism(fopts);
    SCCF_CHECK(fism_->Fit(*split_).ok());
  }
  static void TearDownTestSuite() {
    delete fism_;
    delete split_;
    delete dataset_;
    fism_ = nullptr;
    split_ = nullptr;
    dataset_ = nullptr;
  }

  static RealTimeService::Options ShardedOptions(IndexKind kind) {
    RealTimeService::Options opts;
    opts.beta = 10;
    opts.num_shards = 8;  // explicit: hosts with 1 hw thread still shard
    opts.index_kind = kind;
    opts.ivf.nlist = 4;
    opts.ivf.nprobe = 4;
    opts.hnsw.ef_search = 256;
    return opts;
  }

  /// Thread t owns existing users {u : u % kThreads == t} plus one cold
  /// user, so every user's interaction sequence is deterministic even
  /// under concurrent execution (threads never share a user).
  static std::vector<std::pair<int, int>> PlanForThread(int t) {
    std::vector<std::pair<int, int>> plan;
    const int num_items = static_cast<int>(dataset_->num_items());
    std::vector<int> users;
    for (int u = t; u < static_cast<int>(split_->num_users());
         u += kThreads) {
      users.push_back(u);
    }
    users.push_back(2000 + t);  // cold start
    for (int step = 0; step < kStepsPerUser; ++step) {
      for (int u : users) {
        plan.push_back({u, (u * 7 + step * 13) % num_items});
      }
    }
    return plan;
  }

  static data::Dataset* dataset_;
  static data::LeaveOneOutSplit* split_;
  static models::Fism* fism_;
};

data::Dataset* RealTimeShardStressTest::dataset_ = nullptr;
data::LeaveOneOutSplit* RealTimeShardStressTest::split_ = nullptr;
models::Fism* RealTimeShardStressTest::fism_ = nullptr;

TEST_F(RealTimeShardStressTest, ConcurrentIngestMatchesSerialReplay) {
  RealTimeService concurrent(*fism_, ShardedOptions(IndexKind::kBruteForce));
  ASSERT_TRUE(concurrent.BootstrapFromSplit(*split_).ok());

  std::vector<std::vector<std::pair<int, int>>> plans;
  for (int t = 0; t < kThreads; ++t) plans.push_back(PlanForThread(t));

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (const auto& [user, item] : plans[t]) {
        auto timing = concurrent.OnInteraction(user, item);
        if (!timing.ok()) failures.fetch_add(1);
        // Interleave reads with the writes so the fan-out/read-lock path
        // runs concurrently with other shards' ingest.
        if (user % 3 == 0) {
          auto nbrs = concurrent.Neighbors(user);
          if (!nbrs.ok() || nbrs->empty()) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_EQ(failures.load(), 0);

  // Serial replay: same interactions, one thread. Cross-thread order is
  // irrelevant to final state — each user's history (and therefore final
  // embedding and vote set) depends only on that user's own sequence,
  // which the disjoint per-thread user sets keep deterministic.
  RealTimeService serial(*fism_, ShardedOptions(IndexKind::kBruteForce));
  ASSERT_TRUE(serial.BootstrapFromSplit(*split_).ok());
  for (const auto& plan : plans) {
    for (const auto& [user, item] : plan) {
      ASSERT_TRUE(serial.OnInteraction(user, item).ok());
    }
  }

  // Full-state equivalence: user population, every history, every
  // neighborhood (exact backend => identical up to float-equal scores),
  // and the recommendation lists they induce.
  ASSERT_EQ(concurrent.num_users(), serial.num_users());
  std::vector<int> all_users;
  for (int u = 0; u < static_cast<int>(split_->num_users()); ++u) {
    all_users.push_back(u);
  }
  for (int t = 0; t < kThreads; ++t) all_users.push_back(2000 + t);

  for (int user : all_users) {
    auto h_conc = concurrent.History(user);
    auto h_ser = serial.History(user);
    ASSERT_TRUE(h_conc.ok()) << "user " << user;
    ASSERT_TRUE(h_ser.ok()) << "user " << user;
    EXPECT_EQ(*h_conc, *h_ser) << "history diverged for user " << user;

    auto n_conc = concurrent.Neighbors(user);
    auto n_ser = serial.Neighbors(user);
    ASSERT_TRUE(n_conc.ok()) << "user " << user;
    ASSERT_TRUE(n_ser.ok()) << "user " << user;
    ASSERT_EQ(n_conc->size(), n_ser->size()) << "user " << user;
    for (size_t i = 0; i < n_conc->size(); ++i) {
      EXPECT_EQ((*n_conc)[i].id, (*n_ser)[i].id)
          << "user " << user << " rank " << i;
      EXPECT_FLOAT_EQ((*n_conc)[i].score, (*n_ser)[i].score);
    }

    auto r_conc = concurrent.RecommendUserBased(user, 10);
    auto r_ser = serial.RecommendUserBased(user, 10);
    ASSERT_TRUE(r_conc.ok()) << "user " << user;
    ASSERT_TRUE(r_ser.ok()) << "user " << user;
    ASSERT_EQ(r_conc->size(), r_ser->size()) << "user " << user;
    for (size_t i = 0; i < r_conc->size(); ++i) {
      EXPECT_EQ((*r_conc)[i].id, (*r_ser)[i].id)
          << "user " << user << " rank " << i;
    }
  }
}

// Concurrent *batched* producers through the Engine facade: each thread
// packs its per-user-disjoint plan into IngestRequest batches routed
// through the per-shard write buffer (compaction_threshold > 1), with
// neighborhood reads racing the staged state. After a final Compact, the
// full state must match a serial per-event OnInteraction replay — the
// batched write path, the buffer, and the buffer-merging query path all
// under concurrency (the TSan run exercises the staged rows racing
// readers).
TEST_F(RealTimeShardStressTest, ConcurrentBatchedIngestMatchesSerialReplay) {
  online::Engine::Options opts = ShardedOptions(IndexKind::kBruteForce);
  opts.compaction_threshold = 16;
  online::Engine engine(*fism_, opts);
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());

  std::vector<std::vector<std::pair<int, int>>> plans;
  for (int t = 0; t < kThreads; ++t) plans.push_back(PlanForThread(t));

  constexpr size_t kBatchSize = 13;  // deliberately not a threshold divisor
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      online::Engine::IngestRequest req;
      for (size_t i = 0; i < plans[t].size(); ++i) {
        const auto& [user, item] = plans[t][i];
        req.events.push_back({user, item, static_cast<int64_t>(i)});
        if (req.events.size() == kBatchSize || i + 1 == plans[t].size()) {
          auto resp = engine.Ingest(req);
          if (!resp.ok() || resp->num_events != req.events.size()) {
            failures.fetch_add(1);
          }
          req.events.clear();
          // Interleave reads so the buffer-merging fan-out races other
          // threads' staged ingest.
          auto nbrs = engine.Neighbors({user, std::nullopt});
          if (!nbrs.ok() || nbrs->neighbors.empty()) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_TRUE(engine.Compact().ok());
  ASSERT_EQ(engine.pending_upserts(), 0u);

  RealTimeService serial(*fism_, ShardedOptions(IndexKind::kBruteForce));
  ASSERT_TRUE(serial.BootstrapFromSplit(*split_).ok());
  for (const auto& plan : plans) {
    for (const auto& [user, item] : plan) {
      ASSERT_TRUE(serial.OnInteraction(user, item).ok());
    }
  }

  ASSERT_EQ(engine.num_users(), serial.num_users());
  std::vector<int> all_users;
  for (int u = 0; u < static_cast<int>(split_->num_users()); ++u) {
    all_users.push_back(u);
  }
  for (int t = 0; t < kThreads; ++t) all_users.push_back(2000 + t);

  for (int user : all_users) {
    auto h_conc = engine.History({user});
    auto h_ser = serial.History(user);
    ASSERT_TRUE(h_conc.ok()) << "user " << user;
    ASSERT_TRUE(h_ser.ok()) << "user " << user;
    EXPECT_EQ(h_conc->items, *h_ser) << "history diverged for user " << user;

    auto n_conc = engine.Neighbors({user, std::nullopt});
    auto n_ser = serial.Neighbors(user);
    ASSERT_TRUE(n_conc.ok()) << "user " << user;
    ASSERT_TRUE(n_ser.ok()) << "user " << user;
    ASSERT_EQ(n_conc->neighbors.size(), n_ser->size()) << "user " << user;
    for (size_t i = 0; i < n_ser->size(); ++i) {
      EXPECT_EQ(n_conc->neighbors[i].id, (*n_ser)[i].id)
          << "user " << user << " rank " << i;
      EXPECT_FLOAT_EQ(n_conc->neighbors[i].score, (*n_ser)[i].score);
    }

    auto r_conc = engine.Recommend({user, 10, {}});
    auto r_ser = serial.RecommendUserBased(user, 10);
    ASSERT_TRUE(r_conc.ok()) << "user " << user;
    ASSERT_TRUE(r_ser.ok()) << "user " << user;
    ASSERT_EQ(r_conc->candidates.size(), r_ser->size()) << "user " << user;
    for (size_t i = 0; i < r_ser->size(); ++i) {
      EXPECT_EQ(r_conc->candidates[i].id, (*r_ser)[i].id)
          << "user " << user << " rank " << i;
    }
  }
}

// Cold-shard wall-clock compaction: rows staged behind an unreachable
// count threshold must reach the backend index with NO further ingest
// and NO queries — only the background compaction thread touches the
// shards. This is the liveness property the count-only policy lacked
// (scripts/ci.sh smoke-gates this test in release too). Under TSan the
// sweep's lock-free age probe racing pending_upserts() readers is what
// is on trial.
TEST_F(RealTimeShardStressTest, ColdShardBackgroundCompactionDrains) {
  online::Engine::Options opts = ShardedOptions(IndexKind::kBruteForce);
  opts.compaction_threshold = 1000000;  // count trigger never fires
  opts.compaction_interval_ms = 25;
  opts.background_compaction = true;
  online::Engine engine(*fism_, opts);
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());
  ASSERT_TRUE(engine.background_compaction_running());

  // One batch touching several shards, then hands off the machine: the
  // shards go cold immediately.
  online::Engine::IngestRequest req;
  req.identify = false;
  const int num_items = static_cast<int>(dataset_->num_items());
  for (int u = 0; u < 24; ++u) {
    req.events.push_back({u, (u * 5 + 3) % num_items, 0});
  }
  ASSERT_TRUE(engine.Ingest(req).ok());
  // The batch may legitimately observe 0 staged if the sweep fired
  // between shard releases, but normally rows are staged here.

  // Liveness: poll pending_upserts() (read locks only) until the sweep
  // drains every shard. Bound generously for loaded CI machines; the
  // expected time is ~1.5 intervals (sweep cadence = interval / 2).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (engine.pending_upserts() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(engine.pending_upserts(), 0u)
      << "staged rows still pending after 10s — background compaction "
         "never drained the cold shards";

  // The drained state serves correctly (staged cold rows reached the
  // index, not the void).
  auto nbrs = engine.Neighbors({0, std::nullopt});
  ASSERT_TRUE(nbrs.ok());
  EXPECT_FALSE(nbrs->neighbors.empty());
}

// Shutdown (and restart) of the background compaction thread racing
// live batched ingest: StopBackgroundCompaction must join cleanly while
// producers hold/contend shard locks, and the final state must still be
// exactly the serial replay. TSan checks the join/notify edges and the
// sweep's drains racing the producers' staged writes.
TEST_F(RealTimeShardStressTest, BackgroundCompactionShutdownDuringIngest) {
  online::Engine::Options opts = ShardedOptions(IndexKind::kBruteForce);
  opts.compaction_threshold = 16;
  opts.compaction_interval_ms = 1;  // sweep constantly
  opts.background_compaction = true;
  online::Engine engine(*fism_, opts);
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());

  std::vector<std::vector<std::pair<int, int>>> plans;
  for (int t = 0; t < kThreads; ++t) plans.push_back(PlanForThread(t));

  constexpr size_t kBatchSize = 13;
  std::atomic<int> failures{0};
  std::atomic<bool> ingest_started{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      online::Engine::IngestRequest req;
      for (size_t i = 0; i < plans[t].size(); ++i) {
        const auto& [user, item] = plans[t][i];
        req.events.push_back({user, item, static_cast<int64_t>(i)});
        if (req.events.size() == kBatchSize || i + 1 == plans[t].size()) {
          auto resp = engine.Ingest(req);
          if (!resp.ok()) failures.fetch_add(1);
          req.events.clear();
          ingest_started.store(true, std::memory_order_release);
          auto nbrs = engine.Neighbors({user, std::nullopt});
          if (!nbrs.ok() || nbrs->neighbors.empty()) failures.fetch_add(1);
        }
      }
    });
  }

  // Stop mid-ingest (after at least one batch landed), restart, stop
  // again — the full lifecycle under producer pressure.
  while (!ingest_started.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  engine.StopBackgroundCompaction();
  EXPECT_FALSE(engine.background_compaction_running());
  ASSERT_TRUE(engine.StartBackgroundCompaction().ok());
  engine.StopBackgroundCompaction();

  for (auto& w : workers) w.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_TRUE(engine.Compact().ok());
  ASSERT_EQ(engine.pending_upserts(), 0u);

  RealTimeService serial(*fism_, ShardedOptions(IndexKind::kBruteForce));
  ASSERT_TRUE(serial.BootstrapFromSplit(*split_).ok());
  for (const auto& plan : plans) {
    for (const auto& [user, item] : plan) {
      ASSERT_TRUE(serial.OnInteraction(user, item).ok());
    }
  }
  ASSERT_EQ(engine.num_users(), serial.num_users());
  for (int u = 0; u < static_cast<int>(split_->num_users()); u += 7) {
    auto h_conc = engine.History({u});
    auto h_ser = serial.History(u);
    ASSERT_TRUE(h_conc.ok() && h_ser.ok()) << "user " << u;
    EXPECT_EQ(h_conc->items, *h_ser) << "history diverged for user " << u;
    auto n_conc = engine.Neighbors({u, std::nullopt});
    auto n_ser = serial.Neighbors(u);
    ASSERT_TRUE(n_conc.ok() && n_ser.ok()) << "user " << u;
    ASSERT_EQ(n_conc->neighbors.size(), n_ser->size()) << "user " << u;
    for (size_t i = 0; i < n_ser->size(); ++i) {
      EXPECT_EQ(n_conc->neighbors[i].id, (*n_ser)[i].id)
          << "user " << u << " rank " << i;
      EXPECT_FLOAT_EQ(n_conc->neighbors[i].score, (*n_ser)[i].score);
    }
  }
}

// Delete-heavy HNSW churn through the Engine facade, pinned under TSan:
// every update to an existing user tombstones its graph node and
// reinserts, so repeated update rounds drive the tombstone count toward
// the rebuild trigger while concurrent Compact() calls and stats
// readers race the writers under the per-shard lock-ordering contract.
// The invariant on trial: after any operation, a shard's HNSW graph
// either has fewer than the rebuild-floor nodes or strictly fewer dead
// nodes than max_tombstone_ratio of the graph — bounded residency, not
// unbounded tombstone accumulation.
TEST_F(RealTimeShardStressTest, HnswTombstonesBoundedUnderConcurrentChurn) {
  constexpr size_t kRebuildFloor = 64;  // HnswIndex kRebuildMinNodes
  online::Engine::Options opts = ShardedOptions(IndexKind::kHnsw);
  opts.storage = quant::Storage::kSq8;  // int8 scan path races too
  opts.compaction_threshold = 8;        // staged rows drain mid-churn
  ASSERT_GT(opts.hnsw.max_tombstone_ratio, 0.0);
  const double ratio = opts.hnsw.max_tombstone_ratio;

  online::Engine engine(*fism_, opts);
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());

  constexpr int kRounds = 3;  // 3x the per-user plan => heavy tombstoning
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};

  // A stats reader races the writers: ShardStatsSnapshot takes one
  // shared lock per shard, and the bound must hold at every sample, not
  // just after quiescence.
  std::thread auditor([&] {
    while (!done.load(std::memory_order_relaxed)) {
      for (const auto& s : engine.ShardStats()) {
        const double nodes =
            static_cast<double>(s.index_rows + s.tombstones);
        if (s.tombstones >= kRebuildFloor &&
            static_cast<double>(s.tombstones) >= ratio * nodes) {
          failures.fetch_add(1);
        }
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& [user, item] : PlanForThread(t)) {
          online::Engine::IngestRequest req;
          req.events.push_back({user, item, round});
          auto resp = engine.Ingest(req);
          if (!resp.ok()) failures.fetch_add(1);
          if (user % 7 == 0 && !engine.Compact().ok()) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  done.store(true, std::memory_order_relaxed);
  auditor.join();
  ASSERT_EQ(failures.load(), 0);

  ASSERT_TRUE(engine.Compact().ok());
  ASSERT_EQ(engine.pending_upserts(), 0u);

  // Post-quiescence: the bound holds per shard, the totals surface
  // through Stats(), and the graphs actually churned (some shard saw
  // enough updates that tombstones existed at some point — final counts
  // may be zero right after a rebuild, so assert the bound, not a
  // nonzero floor).
  size_t total_rows = 0;
  for (const auto& s : engine.ShardStats()) {
    total_rows += s.index_rows;
    const double nodes = static_cast<double>(s.index_rows + s.tombstones);
    EXPECT_TRUE(s.tombstones < kRebuildFloor ||
                static_cast<double>(s.tombstones) < ratio * nodes)
        << "shard tombstones=" << s.tombstones << " nodes=" << nodes;
    EXPECT_EQ(s.embedding_bytes, 0u);  // sq8: codes only
    if (s.index_rows > 0) EXPECT_GT(s.code_bytes, 0u);
  }
  EXPECT_EQ(total_rows, split_->num_users() + kThreads);
  EXPECT_EQ(engine.Stats().tombstones,
            [&] {
              size_t t = 0;
              for (const auto& s : engine.ShardStats()) t += s.tombstones;
              return t;
            }());
}

// ANN backends cannot promise serial-replay equivalence (graph/bucket
// state depends on insertion order), but their read paths must survive
// concurrent ingest without races or crashes — this is the test the TSan
// run leans on for HNSW/IVF coverage.
class RealTimeShardStressBackendTest
    : public RealTimeShardStressTest,
      public testing::WithParamInterface<IndexKind> {};

TEST_P(RealTimeShardStressBackendTest, ConcurrentIngestAndQuerySmoke) {
  RealTimeService svc(*fism_, ShardedOptions(GetParam()));
  ASSERT_TRUE(svc.BootstrapFromSplit(*split_).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (const auto& [user, item] : PlanForThread(t)) {
        if (!svc.OnInteraction(user, item).ok()) failures.fetch_add(1);
        auto nbrs = svc.Neighbors(user);
        if (!nbrs.ok() || nbrs->empty()) failures.fetch_add(1);
        if (user % 5 == 0 && !svc.RecommendUserBased(user, 5).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(svc.num_users(), split_->num_users() + kThreads);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, RealTimeShardStressBackendTest,
                         testing::Values(IndexKind::kBruteForce,
                                         IndexKind::kHnsw,
                                         IndexKind::kIvfFlat),
                         [](const auto& info) {
                           switch (info.param) {
                             case IndexKind::kBruteForce: return "BruteForce";
                             case IndexKind::kHnsw: return "Hnsw";
                             case IndexKind::kIvfFlat: return "IvfFlat";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace sccf::core
