// Property tests swept across every index backend, metric, and a range of
// dimensions: the invariants any VectorIndex implementation must satisfy,
// regardless of its internal structure.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "index/brute_force_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_flat_index.h"
#include "index/vector_index.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace sccf::index {
namespace {

enum class Backend { kBruteForce, kIvfFlat, kHnsw };

std::string BackendName(Backend b) {
  switch (b) {
    case Backend::kBruteForce:
      return "BruteForce";
    case Backend::kIvfFlat:
      return "IvfFlat";
    case Backend::kHnsw:
      return "Hnsw";
  }
  return "?";
}

using Param = std::tuple<Backend, Metric, size_t>;  // backend, metric, dim

class IndexPropertyTest : public testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const auto [backend, metric, dim] = GetParam();
    backend_ = backend;
    metric_ = metric;
    dim_ = dim;
    rng_ = std::make_unique<Rng>(dim * 31 + static_cast<int>(metric) * 7 +
                                 static_cast<int>(backend));
  }

  // Builds an index over `n` random vectors (ids 0..n-1) and remembers
  // the corpus.
  std::unique_ptr<VectorIndex> BuildCorpus(size_t n) {
    corpus_.assign(n * dim_, 0.0f);
    for (auto& v : corpus_) v = rng_->Normal();
    auto idx = MakeEmpty();
    if (backend_ == Backend::kIvfFlat) {
      auto* ivf = static_cast<IvfFlatIndex*>(idx.get());
      SCCF_CHECK(ivf->Train(corpus_, n).ok());
    }
    for (size_t i = 0; i < n; ++i) {
      SCCF_CHECK(idx->Add(static_cast<int>(i), corpus_.data() + i * dim_)
                     .ok());
    }
    return idx;
  }

  std::unique_ptr<VectorIndex> MakeEmpty() {
    switch (backend_) {
      case Backend::kBruteForce:
        return std::make_unique<BruteForceIndex>(dim_, metric_);
      case Backend::kIvfFlat: {
        IvfFlatIndex::Options opts;
        opts.nlist = 8;
        opts.nprobe = 8;  // exhaustive probing => exact at this scale
        return std::make_unique<IvfFlatIndex>(dim_, metric_, opts);
      }
      case Backend::kHnsw: {
        HnswIndex::Options opts;
        opts.ef_search = 128;
        return std::make_unique<HnswIndex>(dim_, metric_, opts);
      }
    }
    return nullptr;
  }

  std::vector<float> RandomQuery() {
    std::vector<float> q(dim_);
    for (auto& v : q) v = rng_->Normal();
    return q;
  }

  Backend backend_;
  Metric metric_;
  size_t dim_ = 0;
  std::unique_ptr<Rng> rng_;
  std::vector<float> corpus_;
};

TEST_P(IndexPropertyTest, SizeTracksDistinctIds) {
  auto idx = BuildCorpus(50);
  EXPECT_EQ(idx->size(), 50u);
  // Re-adding an existing id must not grow the logical size.
  auto q = RandomQuery();
  ASSERT_TRUE(idx->Add(7, q.data()).ok());
  EXPECT_EQ(idx->size(), 50u);
}

TEST_P(IndexPropertyTest, ResultsSortedAndUnique) {
  auto idx = BuildCorpus(120);
  for (int trial = 0; trial < 5; ++trial) {
    auto q = RandomQuery();
    auto r = idx->Search(q.data(), 20);
    ASSERT_TRUE(r.ok());
    ASSERT_LE(r->size(), 20u);
    std::set<int> seen;
    for (size_t i = 0; i < r->size(); ++i) {
      EXPECT_TRUE(seen.insert((*r)[i].id).second) << "duplicate id";
      if (i > 0) {
        EXPECT_GE((*r)[i - 1].score, (*r)[i].score);
      }
      EXPECT_GE((*r)[i].id, 0);
      EXPECT_LT((*r)[i].id, 120);
    }
  }
}

TEST_P(IndexPropertyTest, KLargerThanCorpusReturnsEverything) {
  auto idx = BuildCorpus(15);
  auto q = RandomQuery();
  auto r = idx->Search(q.data(), 100);
  ASSERT_TRUE(r.ok());
  // HNSW may miss entries only if the graph is disconnected, which cannot
  // happen at this size with default M; all backends must return all 15.
  EXPECT_EQ(r->size(), 15u);
}

TEST_P(IndexPropertyTest, ExcludeIdNeverReturned) {
  auto idx = BuildCorpus(60);
  for (int excluded : {0, 13, 59}) {
    auto q = std::vector<float>(corpus_.begin() + excluded * dim_,
                                corpus_.begin() + (excluded + 1) * dim_);
    auto r = idx->Search(q.data(), 10, excluded);
    ASSERT_TRUE(r.ok());
    for (const auto& nb : *r) EXPECT_NE(nb.id, excluded);
  }
}

TEST_P(IndexPropertyTest, SelfIsTopHitWithoutExclusion) {
  auto idx = BuildCorpus(80);
  // Querying with an indexed vector must return that id first (cosine and
  // IP both maximise at the vector itself for random gaussian corpora
  // where self-similarity dominates; guaranteed for cosine).
  if (metric_ != Metric::kCosine) GTEST_SKIP() << "cosine-only property";
  for (int probe : {3, 41, 77}) {
    const float* v = corpus_.data() + probe * dim_;
    auto r = idx->Search(v, 1);
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(r->empty());
    EXPECT_EQ((*r)[0].id, probe);
    EXPECT_NEAR((*r)[0].score, 1.0f, 1e-4);
  }
}

TEST_P(IndexPropertyTest, StreamingUpdateIsVisibleImmediately) {
  auto idx = BuildCorpus(40);
  // Point id 5 at a fresh random direction; querying that direction must
  // surface id 5 at rank 1 under cosine.
  if (metric_ != Metric::kCosine) GTEST_SKIP() << "cosine-only property";
  auto fresh = RandomQuery();
  ASSERT_TRUE(idx->Add(5, fresh.data()).ok());
  auto r = idx->Search(fresh.data(), 1);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty());
  EXPECT_EQ((*r)[0].id, 5);
}

TEST_P(IndexPropertyTest, AgreesWithBruteForceTopOne) {
  auto idx = BuildCorpus(200);
  BruteForceIndex exact(dim_, metric_);
  for (size_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        exact.Add(static_cast<int>(i), corpus_.data() + i * dim_).ok());
  }
  size_t agree = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    auto q = RandomQuery();
    auto got = idx->Search(q.data(), 1);
    auto truth = exact.Search(q.data(), 1);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(truth.ok());
    ASSERT_FALSE(got->empty());
    agree += (*got)[0].id == (*truth)[0].id;
  }
  // Exact backends must always agree; ANN backends nearly always at this
  // scale and beam width.
  if (backend_ == Backend::kBruteForce) {
    EXPECT_EQ(agree, static_cast<size_t>(trials));
  } else {
    EXPECT_GE(agree, static_cast<size_t>(trials) - 2);
  }
}

std::string ParamName(const testing::TestParamInfo<Param>& info) {
  const Backend backend = std::get<0>(info.param);
  const Metric metric = std::get<1>(info.param);
  const size_t dim = std::get<2>(info.param);
  return BackendName(backend) +
         (metric == Metric::kCosine ? "_Cosine_d" : "_Ip_d") +
         std::to_string(dim);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, IndexPropertyTest,
    testing::Combine(testing::Values(Backend::kBruteForce,
                                     Backend::kIvfFlat, Backend::kHnsw),
                     testing::Values(Metric::kCosine,
                                     Metric::kInnerProduct),
                     testing::Values<size_t>(4, 16, 48)),
    ParamName);

}  // namespace
}  // namespace sccf::index
