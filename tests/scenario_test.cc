// The scenario workload factory: bit-identical determinism from a spec
// (including across param insertion orders), per-generator distribution
// properties, spec validation errors, and the hot-shard generator's
// end-to-end agreement with the serving layer's shard hash.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "models/fism.h"
#include "online/engine.h"
#include "scenario/scenario.h"
#include "util/random.h"
#include "util/status.h"

namespace sccf::scenario {
namespace {

void ExpectDatasetsIdentical(const data::Dataset& a, const data::Dataset& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_items(), b.num_items());
  ASSERT_EQ(a.num_actions(), b.num_actions());
  EXPECT_EQ(a.original_user_ids(), b.original_user_ids());
  EXPECT_EQ(a.original_item_ids(), b.original_item_ids());
  for (size_t u = 0; u < a.num_users(); ++u) {
    ASSERT_EQ(a.sequence(u), b.sequence(u)) << "user " << u;
    ASSERT_EQ(a.timestamps(u), b.timestamps(u)) << "user " << u;
  }
}

ScenarioSpec SmallSpec(const std::string& generator, uint64_t seed = 11) {
  ScenarioSpec spec;
  spec.generator = generator;
  spec.num_users = 80;
  spec.num_items = 160;
  spec.events_per_user = 40;
  spec.seed = seed;
  return spec;
}

data::Dataset MustLoad(ScenarioSource& source) {
  auto ds = source.Load();
  SCCF_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

std::unique_ptr<ScenarioSource> MustMake(const ScenarioSpec& spec) {
  auto source = MakeScenario(spec);
  SCCF_CHECK(source.ok()) << source.status().ToString();
  return std::move(source).value();
}

const char* const kSyntheticGenerators[] = {"bursty", "drift", "flash_sale",
                                            "hot_shard", "power_law"};

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(ScenarioDeterminismTest, IdenticalSpecsYieldBitIdenticalCorpora) {
  for (const char* generator : kSyntheticGenerators) {
    SCOPED_TRACE(generator);
    auto a = MustMake(SmallSpec(generator));
    auto b = MustMake(SmallSpec(generator));
    data::Dataset da = MustLoad(*a);
    data::Dataset db = MustLoad(*b);
    ExpectDatasetsIdentical(da, db);
    EXPECT_EQ(a->report().ToString(), b->report().ToString());
  }
}

TEST(ScenarioDeterminismTest, ParamInsertionOrderDoesNotMatter) {
  // Same params, inserted in opposite orders: the unordered_map ends up
  // with different internal layouts, and the corpus must not care.
  ScenarioSpec forward = SmallSpec("flash_sale");
  forward.params["sale_items"] = "6";
  forward.params["sale_intensity"] = "0.9";
  forward.params["sale_start"] = "0.5";
  forward.params["clusters"] = "4";

  ScenarioSpec reversed = SmallSpec("flash_sale");
  reversed.params["clusters"] = "4";
  reversed.params["sale_start"] = "0.5";
  reversed.params["sale_intensity"] = "0.9";
  reversed.params["sale_items"] = "6";

  data::Dataset da = MustLoad(*MustMake(forward));
  data::Dataset db = MustLoad(*MustMake(reversed));
  ExpectDatasetsIdentical(da, db);
}

TEST(ScenarioDeterminismTest, SeedChangesTheCorpus) {
  for (const char* generator : kSyntheticGenerators) {
    SCOPED_TRACE(generator);
    data::Dataset da = MustLoad(*MustMake(SmallSpec(generator, 11)));
    data::Dataset db = MustLoad(*MustMake(SmallSpec(generator, 12)));
    bool any_diff = da.num_users() != db.num_users() ||
                    da.num_items() != db.num_items();
    for (size_t u = 0; !any_diff && u < da.num_users(); ++u) {
      any_diff = da.sequence(u) != db.sequence(u);
    }
    EXPECT_TRUE(any_diff);
  }
}

TEST(ScenarioDeterminismTest, EveryGeneratorKeepsSpecDimensions) {
  for (const char* generator : kSyntheticGenerators) {
    SCOPED_TRACE(generator);
    ScenarioSpec spec = SmallSpec(generator);
    auto source = MustMake(spec);
    data::Dataset ds = MustLoad(*source);
    EXPECT_EQ(ds.num_users(), spec.num_users);
    EXPECT_EQ(ds.num_actions(), spec.num_users * spec.events_per_user);
    EXPECT_LE(ds.num_items(), spec.num_items);
    EXPECT_EQ(source->report().num_events, ds.num_actions());
  }
}

// The latent-iteration-order audit the determinism work asked for: the
// pre-existing synthetic generator (data/synthetic.cc) only uses unordered
// containers for membership tests, never iteration — two runs of the same
// config must already be bit-identical. This pins that.
TEST(ScenarioDeterminismTest, LegacySyntheticGeneratorIsDeterministic) {
  data::SyntheticConfig cfg;
  cfg.num_users = 100;
  cfg.num_items = 150;
  cfg.seed = 77;
  data::SyntheticGenerator g1(cfg);
  data::SyntheticGenerator g2(cfg);
  auto d1 = g1.Generate();
  auto d2 = g2.Generate();
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  ExpectDatasetsIdentical(*d1, *d2);
  EXPECT_EQ(g1.item_cluster(), g2.item_cluster());
  EXPECT_EQ(g1.user_primary_cluster(), g2.user_primary_cluster());
}

// ---------------------------------------------------------------------------
// Distribution properties per generator
// ---------------------------------------------------------------------------

TEST(ScenarioPropertyTest, DriftRampsFromStartToTargetCluster) {
  auto source = MustMake(SmallSpec("drift"));
  MustLoad(*source);
  const ScenarioReport& r = source->report();
  const double target_first = r.Metric("target_share_first_half");
  const double target_second = r.Metric("target_share_second_half");
  const double start_first = r.Metric("start_share_first_half");
  const double start_second = r.Metric("start_share_second_half");
  // The ramp is linear in sequence position, so the second half must be
  // dominated by target-cluster traffic and the first by start-cluster.
  EXPECT_GT(target_second, target_first + 0.2);
  EXPECT_GT(start_first, start_second + 0.2);
  EXPECT_GT(start_first, 0.5);
  EXPECT_GT(target_second, 0.5);
}

TEST(ScenarioPropertyTest, FlashSaleSpikeConfinedToWindow) {
  ScenarioSpec spec = SmallSpec("flash_sale");
  spec.params["sale_intensity"] = "0.85";
  auto source = MustMake(spec);
  data::Dataset ds = MustLoad(*source);
  const ScenarioReport& r = source->report();
  EXPECT_GT(r.Metric("sale_share_in_window"), 0.6);
  EXPECT_LT(r.Metric("sale_share_outside"), 0.2);
  // The window bounds the report names must match the spec fractions.
  const double total = static_cast<double>(ds.num_actions());
  EXPECT_NEAR(r.Metric("window_begin_ts"), total * 0.45, 1.0);
  EXPECT_NEAR(r.Metric("window_end_ts"), total * 0.55, 1.0);
}

TEST(ScenarioPropertyTest, PowerLawConcentratesTailMass) {
  ScenarioSpec mild = SmallSpec("power_law");
  mild.params["item_exponent"] = "1.1";
  auto mild_source = MustMake(mild);
  MustLoad(*mild_source);
  const double mild_share =
      mild_source->report().Metric("item_top_decile_share");
  // Uniform traffic would put 0.1 of the mass on the top decile; Zipf
  // s=1.1 over 160 items concentrates well past half of it.
  EXPECT_GT(mild_share, 0.4);
  EXPECT_LT(mild_share, 0.95);
  EXPECT_GT(mild_source->report().Metric("user_top_decile_share"), 0.15);

  ScenarioSpec heavy = SmallSpec("power_law");
  heavy.params["item_exponent"] = "1.5";
  auto heavy_source = MustMake(heavy);
  MustLoad(*heavy_source);
  EXPECT_GT(heavy_source->report().Metric("item_top_decile_share"),
            mild_share);
}

TEST(ScenarioPropertyTest, BurstySessionsOccupyConsecutiveTimestamps) {
  auto source = MustMake(SmallSpec("bursty"));
  MustLoad(*source);
  const ScenarioReport& r = source->report();
  // Round-robin traffic has zero unit gaps (the next event of a user is
  // num_users ticks away); sessions make most per-user gaps exactly 1.
  EXPECT_GT(r.Metric("unit_gap_share"), 0.5);
  EXPECT_GT(r.Metric("mean_session_len"), 2.0);
  EXPECT_LT(r.Metric("mean_session_len"), 20.0);
  EXPECT_GT(r.Metric("locality_share"), 0.6);
}

TEST(ScenarioPropertyTest, HotShardIdsCollideUnderServingHash) {
  ScenarioSpec spec = SmallSpec("hot_shard");
  spec.params["shards"] = "8";
  spec.params["hot_shards"] = "1";
  auto source = MustMake(spec);
  data::Dataset ds = MustLoad(*source);
  EXPECT_EQ(source->report().Metric("max_shard_share"), 1.0);
  // Every ORIGINAL user id must land on a hot shard under the exact
  // SplitMix64 map the serving layer shards with.
  for (int id : ds.original_user_ids()) {
    EXPECT_EQ(SplitMix64(static_cast<uint64_t>(
                  static_cast<uint32_t>(id))) % 8,
              0u)
        << "user id " << id;
  }
}

// End-to-end: bootstrap a sharded Engine with the generated corpus keyed
// by original ids and confirm the serving layer itself concentrates every
// user onto one shard — the adversarial property survives the whole path.
TEST(ScenarioPropertyTest, HotShardCorpusConcentratesLiveEngineShards) {
  ScenarioSpec spec = SmallSpec("hot_shard");
  spec.num_users = 40;
  spec.events_per_user = 20;
  spec.params["shards"] = "8";
  spec.params["hot_shards"] = "1";
  auto source = MustMake(spec);
  data::Dataset ds = MustLoad(*source);

  data::LeaveOneOutSplit split(ds);
  models::Fism::Options fopts;
  fopts.dim = 8;
  fopts.epochs = 0;  // untrained weights suffice to exercise sharding
  models::Fism fism(fopts);
  ASSERT_TRUE(fism.Fit(split).ok());

  online::Engine::Options opts;
  opts.num_shards = 8;
  opts.beta = 5;
  online::Engine engine(fism, opts);
  std::vector<online::Engine::UserState> states(ds.num_users());
  for (size_t u = 0; u < ds.num_users(); ++u) {
    states[u].user = ds.original_user_ids()[u];
    states[u].history = ds.sequence(u);
  }
  ASSERT_TRUE(engine.Bootstrap(states).ok());

  const auto shard_stats = engine.ShardStats();
  ASSERT_EQ(shard_stats.size(), 8u);
  size_t occupied = 0;
  for (const auto& s : shard_stats) occupied += s.users > 0;
  EXPECT_EQ(occupied, 1u);
  for (size_t u = 0; u < ds.num_users(); ++u) {
    EXPECT_EQ(engine.service().ShardOf(ds.original_user_ids()[u]), 0u);
  }
}

// ---------------------------------------------------------------------------
// Spec validation
// ---------------------------------------------------------------------------

TEST(ScenarioValidationTest, UnknownGeneratorIsInvalidArgument) {
  ScenarioSpec spec = SmallSpec("no_such_generator");
  auto source = MakeScenario(spec);
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kInvalidArgument);
  // The error names the known generators so specs are discoverable.
  EXPECT_NE(source.status().message().find("power_law"), std::string::npos);
}

TEST(ScenarioValidationTest, UnknownParamIsInvalidArgument) {
  ScenarioSpec spec = SmallSpec("drift");
  spec.params["typo_knob"] = "3";
  spec.params["another_typo"] = "4";
  auto source = MakeScenario(spec);
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kInvalidArgument);
  // Offending keys are listed sorted, independent of map order.
  const std::string& msg = source.status().message();
  EXPECT_NE(msg.find("another_typo, typo_knob"), std::string::npos) << msg;
}

TEST(ScenarioValidationTest, MalformedParamValueIsInvalidArgument) {
  ScenarioSpec spec = SmallSpec("drift");
  spec.params["noise"] = "lots";
  auto source = MustMake(spec);  // keys are fine, value fails at Load
  auto ds = source->Load();
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScenarioValidationTest, OutOfRangeParamValueIsInvalidArgument) {
  struct Case {
    const char* generator;
    const char* key;
    const char* value;
  };
  const Case cases[] = {
      {"drift", "noise", "1.5"},
      {"flash_sale", "sale_start", "0.95"},  // + default len overflows 1
      {"flash_sale", "sale_items", "0"},
      {"power_law", "item_exponent", "-1"},
      {"bursty", "session_len", "0.5"},
      {"hot_shard", "hot_shards", "9"},
      {"hot_shard", "shards", "0"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string(c.generator) + "." + c.key + "=" + c.value);
    ScenarioSpec spec = SmallSpec(c.generator);
    spec.params[c.key] = c.value;
    auto source = MustMake(spec);
    auto ds = source->Load();
    ASSERT_FALSE(ds.ok());
    EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ScenarioValidationTest, ZeroDimensionsAreInvalidArgument) {
  ScenarioSpec spec = SmallSpec("bursty");
  spec.num_users = 0;
  auto source = MakeScenario(spec);
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScenarioValidationTest, FileSourceRequiresPathParam) {
  ScenarioSpec spec;
  spec.generator = "ml1m";
  auto source = MakeScenario(spec);
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScenarioValidationTest, AbsentCorpusFileIsNotFound) {
  ScenarioSpec spec;
  spec.generator = "ml1m";
  spec.params["path"] = "/nonexistent/ml-1m/ratings.dat";
  auto source = MustMake(spec);
  auto ds = source->Load();
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kNotFound);
}

TEST(ScenarioValidationTest, ListedGeneratorsAreSortedAndComplete) {
  const std::vector<std::string> names = ListScenarioGenerators();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  const std::vector<std::string> expected = {
      "amazon", "bursty",    "drift", "flash_sale",
      "hot_shard", "ml1m", "ml20m", "power_law"};
  EXPECT_EQ(names, expected);
}

}  // namespace
}  // namespace sccf::scenario
