#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/candidates.h"
#include "core/integrating.h"
#include "core/sccf.h"
#include "core/user_based.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/fism.h"

namespace sccf::core {
namespace {

// ----------------------------------------------------------- candidates

TEST(CandidatesTest, TopNFromScores) {
  std::vector<float> scores = {0.1f, 0.9f, -1e30f, 0.5f, 0.9f};
  auto top = TopNFromScores(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 1);  // ties broken by ascending id
  EXPECT_EQ(top[1].id, 4);
  EXPECT_EQ(top[2].id, 3);
}

TEST(CandidatesTest, TopNRespectsFloor) {
  std::vector<float> scores = {0.0f, 0.2f, 0.0f};
  auto top = TopNFromScores(scores, 3, /*floor=*/0.0f);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 1);
}

TEST(CandidatesTest, MomentsOverItems) {
  std::vector<float> scores = {1.0f, 2.0f, 3.0f, 100.0f};
  auto m = MomentsOver(scores, {0, 1, 2});
  EXPECT_FLOAT_EQ(m.mean, 2.0f);
  EXPECT_NEAR(m.stddev, std::sqrt(2.0f / 3.0f), 1e-5);
}

TEST(CandidatesTest, MomentsZeroStdReportsOne) {
  std::vector<float> scores = {5.0f, 5.0f};
  auto m = MomentsOver(scores, {0, 1});
  EXPECT_FLOAT_EQ(m.mean, 5.0f);
  EXPECT_FLOAT_EQ(m.stddev, 1.0f);
  auto empty = MomentsOver(scores, {});
  EXPECT_FLOAT_EQ(empty.stddev, 1.0f);
}

// ----------------------------------------------- shared trained fixture

class CoreTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig cfg;
    cfg.name = "core-test";
    cfg.num_users = 150;
    cfg.num_items = 180;
    cfg.num_clusters = 12;
    cfg.min_actions = 12;
    cfg.max_actions = 40;
    cfg.seed = 77;
    data::SyntheticGenerator gen(cfg);
    auto ds = gen.Generate();
    SCCF_CHECK(ds.ok());
    dataset_ = new data::Dataset(std::move(ds).value());
    split_ = new data::LeaveOneOutSplit(*dataset_);

    models::Fism::Options fopts;
    fopts.dim = 16;
    fopts.epochs = 8;
    fism_ = new models::Fism(fopts);
    SCCF_CHECK(fism_->Fit(*split_).ok());
  }
  static void TearDownTestSuite() {
    delete fism_;
    delete split_;
    delete dataset_;
    fism_ = nullptr;
    split_ = nullptr;
    dataset_ = nullptr;
  }

  static data::Dataset* dataset_;
  static data::LeaveOneOutSplit* split_;
  static models::Fism* fism_;
};

data::Dataset* CoreTest::dataset_ = nullptr;
data::LeaveOneOutSplit* CoreTest::split_ = nullptr;
models::Fism* CoreTest::fism_ = nullptr;

// ---------------------------------------------------- UserBasedComponent

TEST_F(CoreTest, UserBasedRequiresFittedBase) {
  models::Fism unfitted;
  UserBasedComponent uu(unfitted, {});
  EXPECT_EQ(uu.Fit(*split_).code(), StatusCode::kFailedPrecondition);
}

TEST_F(CoreTest, NeighborsExcludeSelf) {
  UserBasedComponent::Options opts;
  opts.beta = 10;
  UserBasedComponent uu(*fism_, opts);
  ASSERT_TRUE(uu.Fit(*split_).ok());
  std::vector<float> emb(fism_->embedding_dim(), 0.0f);
  fism_->InferUserEmbedding(split_->TrainSequence(5), emb.data());
  auto nbrs = uu.Neighbors(emb.data(), 10, /*exclude_user=*/5);
  ASSERT_EQ(nbrs.size(), 10u);
  for (const auto& nb : nbrs) EXPECT_NE(nb.id, 5);
  // Neighbors sorted by descending similarity.
  for (size_t i = 1; i < nbrs.size(); ++i) {
    EXPECT_GE(nbrs[i - 1].score, nbrs[i].score);
  }
}

TEST_F(CoreTest, UserBasedScoresExcludeOwnHistory) {
  UserBasedComponent uu(*fism_, {});
  ASSERT_TRUE(uu.Fit(*split_).ok());
  const auto history = split_->TrainSequence(3);
  std::vector<float> scores;
  uu.ScoreAll(3, history, &scores);
  for (int item : history) EXPECT_EQ(scores[item], 0.0f);
  size_t positive = 0;
  for (float s : scores) positive += s > 0.0f;
  EXPECT_GT(positive, 0u);
}

TEST_F(CoreTest, UserBasedScoresAreNeighborVoteSums) {
  UserBasedComponent::Options opts;
  opts.beta = 5;
  UserBasedComponent uu(*fism_, opts);
  ASSERT_TRUE(uu.Fit(*split_).ok());
  const size_t u = 7;
  const auto history = split_->TrainSequence(u);
  std::vector<float> scores;
  uu.ScoreAll(u, history, &scores);

  // Recompute Eq. 12 by hand.
  std::vector<float> emb(fism_->embedding_dim(), 0.0f);
  const size_t take = std::min<size_t>(history.size(), 15);
  fism_->InferUserEmbedding(history.subspan(history.size() - take, take),
                            emb.data());
  auto nbrs = uu.Neighbors(emb.data(), 5, static_cast<int>(u));
  std::vector<float> expected(dataset_->num_items(), 0.0f);
  for (const auto& nb : nbrs) {
    for (int item : uu.vote_items(nb.id)) expected[item] += nb.score;
  }
  for (int item : history) expected[item] = 0.0f;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(scores[i], expected[i], 1e-4) << "item " << i;
  }
}

TEST_F(CoreTest, UpdateUserChangesNeighborhood) {
  UserBasedComponent::Options opts;
  opts.beta = 10;
  UserBasedComponent uu(*fism_, opts);
  ASSERT_TRUE(uu.Fit(*split_).ok());

  // Re-point user 0 at user 50's history; user 50 must enter the
  // neighborhood.
  const auto target = split_->TrainSequence(50);
  std::vector<int> adopted(target.begin(), target.end());
  ASSERT_TRUE(uu.UpdateUser(0, adopted).ok());
  std::vector<float> emb(fism_->embedding_dim(), 0.0f);
  fism_->InferUserEmbedding(adopted, emb.data());
  auto nbrs = uu.Neighbors(emb.data(), 3, /*exclude_user=*/50);
  ASSERT_FALSE(nbrs.empty());
  EXPECT_EQ(nbrs[0].id, 0);  // updated user now sits on 50's embedding
}

TEST_F(CoreTest, IndexBackendsAgreeOnTopNeighbor) {
  for (IndexKind kind :
       {IndexKind::kBruteForce, IndexKind::kIvfFlat, IndexKind::kHnsw}) {
    UserBasedComponent::Options opts;
    opts.beta = 20;
    opts.index_kind = kind;
    opts.ivf.nlist = 8;
    opts.ivf.nprobe = 8;  // exhaustive => exact
    UserBasedComponent uu(*fism_, opts);
    ASSERT_TRUE(uu.Fit(*split_).ok());
    std::vector<float> scores;
    uu.ScoreAll(2, split_->TrainSequence(2), &scores);
    size_t positive = 0;
    for (float s : scores) positive += s > 0.0f;
    EXPECT_GT(positive, 0u) << "index kind " << static_cast<int>(kind);
  }
}

// --------------------------------------------------------- IntegratingMlp

IntegratingMlp::UserBatch MakeBatch(Rng& rng, size_t c, size_t dim,
                                    int positive) {
  IntegratingMlp::UserBatch b;
  b.features = Tensor::Zeros({c, dim});
  for (size_t i = 0; i < b.features.size(); ++i) {
    b.features[i] = rng.Normal();
  }
  // Plant a signal: the positive row's last feature is large.
  for (size_t r = 0; r < c; ++r) {
    b.features.at(r, dim - 1) = r == static_cast<size_t>(positive) ? 2.0f
                                                                   : -2.0f;
  }
  b.positive_row = positive;
  return b;
}

TEST(IntegratingMlpTest, LearnsPlantedSignal) {
  Rng rng(5);
  const size_t dim = 6;
  IntegratingMlp::Options opts;
  opts.hidden = {8};
  opts.max_epochs = 30;
  IntegratingMlp mlp(dim, opts);
  std::vector<IntegratingMlp::UserBatch> batches;
  for (int i = 0; i < 40; ++i) {
    batches.push_back(MakeBatch(rng, 10, dim, i % 10));
  }
  ASSERT_TRUE(mlp.Train(batches).ok());
  EXPECT_TRUE(mlp.trained());

  // On a fresh batch the positive row must get the top score.
  auto test = MakeBatch(rng, 10, dim, 4);
  std::vector<float> out;
  mlp.Predict(test.features, &out);
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(std::max_element(out.begin(), out.end()) - out.begin(), 4);
}

TEST(IntegratingMlpTest, RejectsEmptyAndMalformed) {
  IntegratingMlp mlp(4, {});
  EXPECT_EQ(mlp.Train({}).code(), StatusCode::kFailedPrecondition);

  Rng rng(7);
  auto bad_dim = MakeBatch(rng, 3, 5, 0);  // wrong feature dim
  EXPECT_EQ(mlp.Train({bad_dim}).code(), StatusCode::kInvalidArgument);

  auto bad_row = MakeBatch(rng, 3, 4, 0);
  bad_row.positive_row = 7;
  EXPECT_EQ(mlp.Train({bad_row}).code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------------ Sccf

TEST_F(CoreTest, SccfRequiresFittedBase) {
  models::Fism unfitted;
  Sccf sccf(unfitted, {});
  EXPECT_EQ(sccf.Fit(*split_).code(), StatusCode::kFailedPrecondition);
}

TEST_F(CoreTest, SccfEndToEndImprovesOverBase) {
  Sccf::Options opts;
  opts.num_candidates = 50;
  opts.user_based.beta = 30;
  opts.merger.max_epochs = 20;
  Sccf sccf(*fism_, opts);
  ASSERT_TRUE(sccf.Fit(*split_).ok());
  EXPECT_EQ(sccf.name(), "FISM-SCCF");

  eval::EvalOptions eopts;
  eopts.cutoffs = {20, 50};
  auto base = eval::Evaluate(*fism_, *split_, eopts);
  auto merged = eval::Evaluate(sccf, *split_, eopts);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(merged.ok());
  // The paper's central claim at test scale: SCCF >= its UI base (allow a
  // tiny tolerance for the stochastic merger).
  EXPECT_GE(merged->NdcgAt(50), base->NdcgAt(50) * 0.95);
  EXPECT_GT(merged->NdcgAt(50), 0.0);
}

TEST_F(CoreTest, SccfScoresOnlyCandidateUnion) {
  Sccf::Options opts;
  opts.num_candidates = 20;
  opts.merger.max_epochs = 5;
  Sccf sccf(*fism_, opts);
  ASSERT_TRUE(sccf.Fit(*split_).ok());
  std::vector<float> scores;
  const auto history = split_->TrainPlusValidSequence(4);
  sccf.ScoreAll(4, history, &scores);
  size_t scored = 0;
  for (float s : scores) scored += s > -1e29f;
  EXPECT_GT(scored, 0u);
  EXPECT_LE(scored, 40u);  // at most |C_UI| + |C_UU|
}

TEST_F(CoreTest, SccfCandidateListsHaveExpectedSizes) {
  Sccf::Options opts;
  opts.num_candidates = 25;
  opts.merger.max_epochs = 5;
  Sccf sccf(*fism_, opts);
  ASSERT_TRUE(sccf.Fit(*split_).ok());
  auto lists = sccf.CandidateListsFor(6, split_->TrainPlusValidSequence(6));
  EXPECT_EQ(lists.ui.size(), 25u);
  EXPECT_LE(lists.uu.size(), 25u);
  // Both lists sorted descending.
  for (size_t i = 1; i < lists.ui.size(); ++i) {
    EXPECT_GE(lists.ui[i - 1].score, lists.ui[i].score);
  }
}

TEST_F(CoreTest, SccfScoreSumFusionAblation) {
  Sccf::Options opts;
  opts.num_candidates = 50;
  opts.score_sum_fusion = true;  // no merger training required
  Sccf sccf(*fism_, opts);
  ASSERT_TRUE(sccf.Fit(*split_).ok());
  eval::EvalOptions eopts;
  eopts.cutoffs = {50};
  auto r = eval::Evaluate(sccf, *split_, eopts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->NdcgAt(50), 0.0);
}

}  // namespace
}  // namespace sccf::core
