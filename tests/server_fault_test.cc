// Syscall fault injection against the serving and persistence stack,
// driven through sccf::sys (util/syscall_shim.h). Each test swaps table
// entries for faults that are unreachable from a well-behaved kernel:
//
//  * EINTR storms on the reactor's socket loop — replies stay
//    bit-identical to direct dispatch, no connection drops.
//  * Pathological short writes — multi-KB replies delivered in 7-byte
//    slices, still byte-exact.
//  * EMFILE on accept — the listen fd backs off instead of busy-spinning
//    the level-triggered loop (pinned via Stats::loop_wakeups), and the
//    parked client is served once descriptors free up.
//  * ENOSPC mid-snapshot — SAVE fails cleanly, the previous snapshot
//    stays bit-identical on disk, recovery still works, and the next
//    SAVE (space back) succeeds.
//  * A wedged fsync during BGSAVE — other connections keep being served
//    while the save is provably still running, and a concurrent second
//    BGSAVE is refused with -BUSY.
//
// Overrides are installed before Server::Start / the Save call and the
// injected functions are self-contained (atomics + pass-through to
// RealSyscalls), per the shim's threading contract.

#include "util/syscall_shim.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "models/fism.h"
#include "online/engine.h"
#include "persist/fs.h"
#include "server/dispatch.h"
#include "server/protocol.h"
#include "server/server.h"
#include "testing/temp_dir.h"
#include "util/logging.h"

namespace sccf::server {
namespace {

// ------------------------------------------------- injected syscalls
//
// Plain functions + file-scope atomics (the table holds bare function
// pointers, so no captures). Every injector passes through to
// sys::RealSyscalls() when its fault condition doesn't hold.

/// What the fd points at, via /proc/self/fd (Linux-only, like the
/// reactor itself). Empty when unreadable.
std::string FdPath(int fd) {
  char link[64];
  std::snprintf(link, sizeof(link), "/proc/self/fd/%d", fd);
  char buf[512];
  const ssize_t n = ::readlink(link, buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  return std::string(buf, static_cast<size_t>(n));
}

bool FdPathEndsWith(int fd, std::string_view suffix) {
  const std::string path = FdPath(fd);
  return path.size() >= suffix.size() &&
         std::string_view(path).substr(path.size() - suffix.size()) == suffix;
}

std::atomic<uint64_t> g_eintr_calls{0};

/// Every other read/write call fails with EINTR before touching the fd.
ssize_t EintrStormRead(int fd, void* buf, size_t count) {
  if (g_eintr_calls.fetch_add(1, std::memory_order_relaxed) % 2 == 0) {
    errno = EINTR;
    return -1;
  }
  return sys::RealSyscalls().read(fd, buf, count);
}
ssize_t EintrStormWrite(int fd, const void* buf, size_t count) {
  if (g_eintr_calls.fetch_add(1, std::memory_order_relaxed) % 2 == 0) {
    errno = EINTR;
    return -1;
  }
  return sys::RealSyscalls().write(fd, buf, count);
}

/// Writes at most 7 bytes per call — a multi-KB reply takes hundreds of
/// calls, every partial-progress branch in the flush loop exercised.
ssize_t ShortWrite(int fd, const void* buf, size_t count) {
  return sys::RealSyscalls().write(fd, buf, count < 7 ? count : 7);
}

std::atomic<int> g_accept_emfile_budget{0};

/// The next `g_accept_emfile_budget` accepts fail with EMFILE (the
/// process is out of descriptors); afterwards accepts are real again.
int EmfileAccept4(int sockfd, struct sockaddr* addr, socklen_t* addrlen,
                  int flags) {
  if (g_accept_emfile_budget.fetch_sub(1, std::memory_order_relaxed) > 0) {
    errno = EMFILE;
    return -1;
  }
  return sys::RealSyscalls().accept4(sockfd, addr, addrlen, flags);
}

/// The disk is full — but only for snapshot temp files, so journal
/// appends from concurrent ingest stay healthy.
ssize_t EnospcSnapshotWrite(int fd, const void* buf, size_t count) {
  if (FdPathEndsWith(fd, "snapshot.tmp")) {
    errno = ENOSPC;
    return -1;
  }
  return sys::RealSyscalls().write(fd, buf, count);
}

std::atomic<int> g_slow_fsync_ms{0};

/// fsync of snapshot files wedges for g_slow_fsync_ms — long enough
/// that "the reactor kept serving meanwhile" is provable, not timing
/// luck.
int SlowSnapshotFsync(int fd) {
  const int ms = g_slow_fsync_ms.load(std::memory_order_relaxed);
  if (ms > 0 && FdPathEndsWith(fd, "snapshot.tmp")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
  return sys::RealSyscalls().fsync(fd);
}

// ------------------------------------------------------------ fixture

class ServerFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig cfg;
    cfg.name = "server-fault-test";
    cfg.num_users = 100;
    cfg.num_items = 140;
    cfg.num_clusters = 7;
    cfg.min_actions = 10;
    cfg.max_actions = 25;
    cfg.seed = 71;
    data::SyntheticGenerator gen(cfg);
    auto ds = gen.Generate();
    SCCF_CHECK(ds.ok());
    dataset_ = new data::Dataset(std::move(ds).value());
    split_ = new data::LeaveOneOutSplit(*dataset_);

    models::Fism::Options fopts;
    fopts.dim = 16;
    fopts.epochs = 2;
    fism_ = new models::Fism(fopts);
    SCCF_CHECK(fism_->Fit(*split_).ok());
  }
  static void TearDownTestSuite() {
    delete fism_;
    delete split_;
    delete dataset_;
    fism_ = nullptr;
    split_ = nullptr;
    dataset_ = nullptr;
  }

  static std::unique_ptr<online::Engine> MakeEngine(
      const std::string& recover_dir = "") {
    online::Engine::Options opts;
    opts.beta = 10;
    opts.num_shards = 4;
    opts.recover_dir = recover_dir;
    auto engine = std::make_unique<online::Engine>(*fism_, opts);
    SCCF_CHECK(engine->BootstrapFromSplit(*split_).ok());
    return engine;
  }

  static data::Dataset* dataset_;
  static data::LeaveOneOutSplit* split_;
  static models::Fism* fism_;
};

data::Dataset* ServerFaultTest::dataset_ = nullptr;
data::LeaveOneOutSplit* ServerFaultTest::split_ = nullptr;
models::Fism* ServerFaultTest::fism_ = nullptr;

std::string Dispatch(online::Engine& engine, const Command& cmd) {
  std::string out;
  Execute(engine, cmd, &out);
  return out;
}

/// Minimal blocking loopback client (same shape as server_test's).
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    SCCF_CHECK(fd_ >= 0);
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t w = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
      ASSERT_GT(w, 0) << "send failed: " << std::strerror(errno);
      sent += static_cast<size_t>(w);
    }
  }

  std::string ReadReply() {
    std::string reply;
    while (true) {
      switch (parser_.Next(&reply)) {
        case ReplyParser::Result::kReply:
          return reply;
        case ReplyParser::Result::kError:
          ADD_FAILURE() << "reply stream desynchronized";
          return "";
        case ReplyParser::Result::kNeedMore:
          break;
      }
      char buf[4096];
      const ssize_t r = ::read(fd_, buf, sizeof(buf));
      if (r <= 0) return "";  // EOF or timeout
      parser_.Feed(std::string_view(buf, static_cast<size_t>(r)));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  ReplyParser parser_;
};

/// The command mix the storm tests replay against a twin engine.
const std::vector<Command>& Script() {
  static const std::vector<Command>* script = new std::vector<Command>{
      {"PING", {}},
      {"INGEST", {"0", "5", "100", "1", "9", "100", "0", "7", "101"}},
      {"RECOMMEND", {"0", "10"}},
      {"RECOMMEND", {"1", "5", "BETA", "8"}},
      {"NEIGHBORS", {"0"}},
      {"HISTORY", {"0"}},
      {"HISTORY", {"424242"}},                   // NotFound
      {"RECOMMEND", {"0", "10", "BETA", "-5"}},  // InvalidArgument
  };
  return *script;
}

std::string InlineFrame(const Command& cmd) {
  std::string frame = cmd.name;
  for (const std::string& arg : cmd.args) frame += " " + arg;
  frame += "\r\n";
  return frame;
}

// -------------------------------------------------------- EINTR storm

TEST_F(ServerFaultTest, EintrStormRepliesBitIdentical) {
  sys::ScopedSyscallOverride guard;
  guard.table().read = EintrStormRead;
  guard.table().write = EintrStormWrite;

  auto served = MakeEngine();
  auto twin = MakeEngine();
  ServerOptions opts;
  opts.port = 0;
  Server server(*served, opts);
  ASSERT_TRUE(server.Start().ok());

  Client client(server.port());
  ASSERT_TRUE(client.connected());

  // One-at-a-time, then the same mix pipelined in a single write.
  for (const Command& cmd : Script()) {
    client.Send(InlineFrame(cmd));
    EXPECT_EQ(client.ReadReply(), Dispatch(*twin, cmd)) << cmd.name;
  }
  std::string pipeline;
  std::vector<std::string> expected;
  for (const Command& cmd : Script()) {
    pipeline += InlineFrame(cmd);
    expected.push_back(Dispatch(*twin, cmd));
  }
  client.Send(pipeline);
  for (size_t i = 0; i < Script().size(); ++i) {
    EXPECT_EQ(client.ReadReply(), expected[i]) << Script()[i].name;
  }

  server.Shutdown();
  server.Wait();
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.protocol_errors, 0u);
  // The storm actually fired (each socket op averaged two calls).
  EXPECT_GT(g_eintr_calls.load(), Script().size() * 2);
}

// -------------------------------------------------------- short writes

TEST_F(ServerFaultTest, ShortWritesDeliverFullReplies) {
  sys::ScopedSyscallOverride guard;
  guard.table().write = ShortWrite;

  auto served = MakeEngine();
  auto twin = MakeEngine();
  ServerOptions opts;
  opts.port = 0;
  Server server(*served, opts);
  ASSERT_TRUE(server.Start().ok());

  Client client(server.port());
  ASSERT_TRUE(client.connected());
  // RECOMMEND's multi-KB array reply arrives in 7-byte slices; framing
  // and content must survive unchanged.
  for (const Command& cmd : Script()) {
    client.Send(InlineFrame(cmd));
    EXPECT_EQ(client.ReadReply(), Dispatch(*twin, cmd)) << cmd.name;
  }

  server.Shutdown();
  server.Wait();
}

// ------------------------------------------------------ EMFILE backoff

TEST_F(ServerFaultTest, EmfileAcceptBacksOffWithoutBusySpin) {
  g_accept_emfile_budget.store(2, std::memory_order_relaxed);
  sys::ScopedSyscallOverride guard;
  guard.table().accept4 = EmfileAccept4;

  auto engine = MakeEngine();
  ServerOptions opts;
  opts.port = 0;
  Server server(*engine, opts);
  ASSERT_TRUE(server.Start().ok());

  // The TCP handshake completes in the listen backlog regardless of the
  // EMFILE storm; the request waits there until a descriptor frees up.
  const auto t0 = std::chrono::steady_clock::now();
  Client client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send("PING\r\n");
  EXPECT_EQ(client.ReadReply(), "+PONG\r\n");
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  // Two EMFILE hits -> two ~100ms backoff cycles before the accept
  // lands. And the whole episode must be a handful of wakeups — a
  // level-triggered loop that kept the hot listen fd registered would
  // burn tens of thousands in those 200ms.
  EXPECT_GE(elapsed, std::chrono::milliseconds(150));
  const Server::Stats stats = server.stats();
  EXPECT_LE(stats.loop_wakeups, 50u);
  EXPECT_EQ(stats.connections_accepted, 1u);

  server.Shutdown();
  server.Wait();
}

// ------------------------------------------------------ ENOSPC in SAVE

TEST_F(ServerFaultTest, EnospcMidSaveLeavesPreviousSnapshotIntact) {
  sccf::testing::TempDir dir;
  const std::string data_dir = dir.file("data");
  auto engine = MakeEngine(data_dir);

  // Snapshot v1.
  ASSERT_EQ(
      Dispatch(*engine, {"INGEST", {"0", "5", "100", "1", "9", "101"}})
          .rfind("*3\r\n", 0),
      0u);
  ASSERT_TRUE(engine->Save().ok());
  auto v1 = persist::ReadFileToString(data_dir + "/snapshot");
  ASSERT_TRUE(v1.ok());

  // More (journaled) ingest, then the disk fills mid-snapshot.
  ASSERT_EQ(
      Dispatch(*engine, {"INGEST", {"2", "11", "102", "0", "3", "103"}})
          .rfind("*3\r\n", 0),
      0u);
  {
    sys::ScopedSyscallOverride guard;
    guard.table().write = EnospcSnapshotWrite;
    const Status st = engine->Save();
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kIoError) << st.ToString();
  }

  // The failed save left no debris: previous snapshot bit-identical,
  // no orphaned temp file.
  auto after = persist::ReadFileToString(data_dir + "/snapshot");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*v1, *after);
  EXPECT_FALSE(persist::PathExists(data_dir + "/snapshot.tmp"));

  // Recovery from v1 + journal reproduces the live engine exactly —
  // nothing ingested after v1 was lost to the failed save.
  auto recovered = MakeEngine(data_dir);
  const std::vector<Command> probes = {
      {"HISTORY", {"0"}},      {"HISTORY", {"1"}},  {"HISTORY", {"2"}},
      {"NEIGHBORS", {"0"}},    {"RECOMMEND", {"0", "10"}},
      {"RECOMMEND", {"2", "5"}},
  };
  for (const Command& probe : probes) {
    EXPECT_EQ(Dispatch(*recovered, probe), Dispatch(*engine, probe))
        << probe.name << " " << (probe.args.empty() ? "" : probe.args[0]);
  }

  // Space back: the next save succeeds and advances the snapshot.
  ASSERT_TRUE(engine->Save().ok());
  auto v2 = persist::ReadFileToString(data_dir + "/snapshot");
  ASSERT_TRUE(v2.ok());
  EXPECT_NE(*v1, *v2);
}

// --------------------------------------------------- wedged-fsync BGSAVE

TEST_F(ServerFaultTest, WedgedFsyncBgSaveKeepsServingAndSecondGetsBusy) {
  g_slow_fsync_ms.store(1000, std::memory_order_relaxed);
  sys::ScopedSyscallOverride guard;
  guard.table().fsync = SlowSnapshotFsync;

  sccf::testing::TempDir dir;
  auto engine = MakeEngine(dir.file("data"));
  ServerOptions opts;
  opts.port = 0;
  Server server(*engine, opts);
  ASSERT_TRUE(server.Start().ok());

  Client saver(server.port());
  Client other(server.port());
  ASSERT_TRUE(saver.connected());
  ASSERT_TRUE(other.connected());

  // BGSAVE wedges in fsync for a full second on the helper thread. The
  // reactor keeps answering: the PONG lands while the save is provably
  // still running — not "the save happened to be fast".
  saver.Send("BGSAVE\r\n");
  other.Send("PING\r\n");
  EXPECT_EQ(other.ReadReply(), "+PONG\r\n");
  EXPECT_TRUE(engine->save_in_progress());

  // Single flight: a concurrent second BGSAVE is refused immediately.
  other.Send("BGSAVE\r\n");
  EXPECT_EQ(other.ReadReply(), "-BUSY save already in progress\r\n");
  EXPECT_TRUE(engine->save_in_progress());

  // The wedged save still completes and delivers its deferred reply.
  EXPECT_EQ(saver.ReadReply(), "+OK\r\n");
  other.Send("LASTSAVE\r\n");
  EXPECT_NE(other.ReadReply(), ":-1\r\n");

  server.Shutdown();
  server.Wait();
  g_slow_fsync_ms.store(0, std::memory_order_relaxed);
}

}  // namespace
}  // namespace sccf::server
