#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace sccf {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  SCCF_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(4, &out).ok());
  EXPECT_EQ(out, 2);
  Status st = UseHalf(3, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(RngTest, UniformFloatInRange) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.UniformFloat();
    ASSERT_GE(f, 0.0f);
    ASSERT_LT(f, 1.0f);
    sum += f;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, TruncatedNormalWithinTwoSigma) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.TruncatedNormal(1.0f, 0.5f);
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 2.0f);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalMatchesWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, SampleWithoutReplacementDistinctSorted) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    auto s = rng.SampleWithoutReplacement(40, 12);
    ASSERT_EQ(s.size(), 12u);
    std::set<uint64_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 12u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    for (auto v : s) EXPECT_LT(v, 40u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(21);
  auto s = rng.SampleWithoutReplacement(8, 8);
  ASSERT_EQ(s.size(), 8u);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(s[i], i);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ----------------------------------------------------------- string_util

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, JoinBasic) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StringUtilTest, FormatFloat) {
  EXPECT_EQ(FormatFloat(0.12345, 4), "0.1235");
  EXPECT_EQ(FormatFloat(2.0, 1), "2.0");
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64("-5", &v));
  EXPECT_EQ(v, -5);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("1.5", &v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ParallelFor(5, 5, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, NestedSubmitFromWorkerCompletesBeforeWait) {
  ThreadPool pool(2);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &outer, &inner] {
      // Submitting from inside a running task must enqueue (not deadlock),
      // and Wait() must cover the nested task too: in_flight_ is bumped
      // before the outer task finishes.
      pool.Submit([&inner] { inner.fetch_add(1); });
      outer.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 8);
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  std::atomic<int> visited{0};
  EXPECT_THROW(
      ParallelFor(0, 64,
                  [&](size_t i) {
                    visited.fetch_add(1);
                    if (i == 13) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The throwing block stops at the exception; everything before it (and
  // every other queued block) still ran. How much of the range that is
  // depends on the pool's block split, but iterations 0..13 are always in
  // or before the throwing block.
  EXPECT_GE(visited.load(), 14);
  EXPECT_LE(visited.load(), 64);
}

TEST(ParallelForBlockedTest, ExceptionPropagatesToCaller) {
  EXPECT_THROW(ParallelForBlocked(0, 128,
                                  [](size_t lo, size_t) {
                                    if (lo == 0) {
                                      throw std::runtime_error("first block");
                                    }
                                  }),
               std::runtime_error);
}

TEST(ParallelForTest, PoolIsReusableAfterException) {
  try {
    ParallelFor(0, 32, [](size_t) { throw std::runtime_error("boom"); });
    FAIL() << "must throw";
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  ParallelFor(0, 100, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelForBlockedTest, EmptyRangeIsNoop) {
  ParallelForBlocked(7, 7,
                     [](size_t, size_t) { FAIL() << "must not be called"; });
  ParallelForBlocked(9, 3,
                     [](size_t, size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForBlockedTest, BlocksPartitionRange) {
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> blocks;
  ParallelForBlocked(0, 103, [&](size_t lo, size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    blocks.push_back({lo, hi});
  });
  std::sort(blocks.begin(), blocks.end());
  size_t expected = 0;
  for (auto [lo, hi] : blocks) {
    EXPECT_EQ(lo, expected);
    EXPECT_LT(lo, hi);
    expected = hi;
  }
  EXPECT_EQ(expected, 103u);
}

// ------------------------------------------------------------- Stopwatch

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  double e1 = sw.ElapsedSeconds();
  EXPECT_GE(e1, 0.0);
  double e2 = sw.ElapsedSeconds();
  EXPECT_GE(e2, e1);
}

TEST(LatencyStatsTest, Aggregates) {
  LatencyStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_EQ(st.mean(), 0.0);
  st.Add(2.0);
  st.Add(4.0);
  st.Add(6.0);
  EXPECT_EQ(st.count(), 3u);
  EXPECT_DOUBLE_EQ(st.mean(), 4.0);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 6.0);
}

// ---------------------------------------------------------- TablePrinter

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter t({"Method", "HR@20"});
  t.AddRow({"Pop", "0.0596"});
  t.AddRow("SASRec", {0.3447}, 4);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("Method"), std::string::npos);
  EXPECT_NE(s.find("0.3447"), std::string::npos);
  EXPECT_NE(s.find("+"), std::string::npos);
}

TEST(TablePrinterTest, WritesCsv) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  const std::string path = testing::TempDir() + "/sccf_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {0};
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  EXPECT_EQ(std::string(buf), "a,b\n");
  std::fclose(f);
}

}  // namespace
}  // namespace sccf
