// Parity and dispatch tests for the runtime-dispatched SIMD kernels
// (src/simd). Every variant the build+CPU supports must match the scalar
// reference within 1e-5 across odd/even/remainder lengths (int8 kernels:
// within 2e-7 of the products' L1 mass — see ExpectWithinI8), the
// zero-norm cosine guard must hold for every variant, and the SCCF_SIMD
// override must actually steer dispatch.

#include "simd/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "util/random.h"

namespace sccf::simd {
namespace {

std::vector<Variant> SupportedVariants() {
  std::vector<Variant> out;
  for (Variant v : {Variant::kScalar, Variant::kAvx2, Variant::kAvx512}) {
    if (VariantSupported(v)) out.push_back(v);
  }
  return out;
}

std::vector<float> RandomVector(Rng& rng, size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = 2.0f * rng.UniformFloat() - 1.0f;
  return v;
}

// |got - want| <= 1e-5, relaxed to relative 1e-5 for magnitudes above 1
// (a length-257 dot product legitimately accumulates ~1e-5 of
// reassociation noise in float32).
void ExpectWithin(float got, float want, const char* what, size_t n,
                  Variant v) {
  const float tol = 1e-5f * std::max(1.0f, std::fabs(want));
  EXPECT_NEAR(got, want, tol) << what << " n=" << n << " variant="
                              << VariantName(v);
}

// Restores the pre-test dispatch state however a test mutates it.
class SimdKernelsTest : public testing::Test {
 protected:
  void SetUp() override { before_ = ActiveVariant(); }
  void TearDown() override {
    unsetenv("SCCF_SIMD");
    ASSERT_TRUE(ForceVariant(before_).ok());
  }
  Variant before_;
};

TEST_F(SimdKernelsTest, ScalarIsAlwaysSupported) {
  EXPECT_TRUE(VariantSupported(Variant::kScalar));
  EXPECT_TRUE(ForceVariant(Variant::kScalar).ok());
  EXPECT_EQ(ActiveVariant(), Variant::kScalar);
}

// Lengths 1..257 cover: sub-width vectors, every remainder class of the
// 8/16/32-wide loops, and the 256->257 boundary that exercises both the
// unrolled body and a 1-element tail.
TEST_F(SimdKernelsTest, AllVariantsMatchScalarReference) {
  Rng rng(2024);
  for (size_t n = 1; n <= 257; ++n) {
    const std::vector<float> a = RandomVector(rng, n);
    const std::vector<float> b = RandomVector(rng, n);

    ASSERT_TRUE(ForceVariant(Variant::kScalar).ok());
    const float dot_ref = Dot(a.data(), b.data(), n);
    const float l2_ref = SquaredL2(a.data(), b.data(), n);
    const float cos_ref = Cosine(a.data(), b.data(), n);
    const float norm_ref = Norm(a.data(), n);
    std::vector<float> axpy_ref = b;
    Axpy(0.75f, a.data(), axpy_ref.data(), n);

    for (Variant v : SupportedVariants()) {
      if (v == Variant::kScalar) continue;
      ASSERT_TRUE(ForceVariant(v).ok());
      ExpectWithin(Dot(a.data(), b.data(), n), dot_ref, "Dot", n, v);
      ExpectWithin(SquaredL2(a.data(), b.data(), n), l2_ref, "SquaredL2",
                   n, v);
      ExpectWithin(Cosine(a.data(), b.data(), n), cos_ref, "Cosine", n, v);
      ExpectWithin(Norm(a.data(), n), norm_ref, "Norm", n, v);
      std::vector<float> y = b;
      Axpy(0.75f, a.data(), y.data(), n);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(y[i], axpy_ref[i], 1e-5f)
            << "Axpy n=" << n << " i=" << i << " " << VariantName(v);
      }
    }
  }
}

TEST_F(SimdKernelsTest, DotBatchMatchesPerRowDot) {
  Rng rng(7);
  // 37 rows: exercises the 4-row blocking plus a 1-row tail.
  const size_t count = 37;
  for (size_t dim : {1u, 3u, 16u, 64u, 100u, 128u, 257u}) {
    const std::vector<float> q = RandomVector(rng, dim);
    const std::vector<float> base = RandomVector(rng, count * dim);
    for (Variant v : SupportedVariants()) {
      ASSERT_TRUE(ForceVariant(v).ok());
      std::vector<float> out(count, 0.0f);
      DotBatch(q.data(), base.data(), count, dim, out.data());
      for (size_t r = 0; r < count; ++r) {
        const float want = Dot(q.data(), base.data() + r * dim, dim);
        ExpectWithin(out[r], want, "DotBatch", dim, v);
      }
    }
  }
}

TEST_F(SimdKernelsTest, TopKDotMatchesOfferLoopAndHandlesTies) {
  Rng rng(11);
  const size_t count = 300, dim = 24, k = 10;
  std::vector<float> base = RandomVector(rng, count * dim);
  // Force exact score ties: rows 50 and 51 identical, rows 100/101/102
  // identical.
  std::copy_n(base.begin() + 50 * dim, dim, base.begin() + 51 * dim);
  std::copy_n(base.begin() + 100 * dim, dim, base.begin() + 101 * dim);
  std::copy_n(base.begin() + 100 * dim, dim, base.begin() + 102 * dim);
  const std::vector<float> q = RandomVector(rng, dim);

  for (Variant v : SupportedVariants()) {
    ASSERT_TRUE(ForceVariant(v).ok());
    for (ptrdiff_t exclude : {-1, 50, 299}) {
      // Reference: the same variant's scores through a plain offer loop
      // with TopKAccumulator-identical semantics.
      std::vector<float> scores(count);
      DotBatch(q.data(), base.data(), count, dim, scores.data());
      std::vector<std::pair<int, float>> want;
      for (size_t r = 0; r < count; ++r) {
        if (static_cast<ptrdiff_t>(r) == exclude) continue;
        want.emplace_back(static_cast<int>(r), scores[r]);
      }
      std::stable_sort(want.begin(), want.end(),
                       [](const auto& a, const auto& b) {
                         if (a.second != b.second) return a.second > b.second;
                         return a.first < b.first;
                       });
      want.resize(std::min(want.size(), k));

      std::vector<std::pair<int, float>> got;
      TopKDot(q.data(), base.data(), count, dim, k, exclude, &got);
      ASSERT_EQ(got.size(), want.size())
          << VariantName(v) << " exclude=" << exclude;
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].first, want[i].first)
            << VariantName(v) << " exclude=" << exclude << " rank=" << i;
        EXPECT_EQ(got[i].second, want[i].second)
            << VariantName(v) << " exclude=" << exclude << " rank=" << i;
      }
    }
  }
}

TEST_F(SimdKernelsTest, ScatterAddConstantMatchesScalarLoop) {
  Rng rng(13);
  const size_t size = 500;
  for (size_t n : {1u, 15u, 16u, 17u, 48u, 100u}) {
    // Unique indices (the documented precondition): a shuffled id range.
    std::vector<int> ids(size);
    for (size_t i = 0; i < size; ++i) ids[i] = static_cast<int>(i);
    rng.Shuffle(ids);
    ids.resize(n);

    std::vector<float> want(size, 0.5f);
    for (int id : ids) want[id] += 1.25f;

    for (Variant v : SupportedVariants()) {
      ASSERT_TRUE(ForceVariant(v).ok());
      std::vector<float> dst(size, 0.5f);
      ScatterAddConstant(dst.data(), ids.data(), n, 1.25f);
      for (size_t i = 0; i < size; ++i) {
        ASSERT_EQ(dst[i], want[i])
            << "ScatterAdd n=" << n << " i=" << i << " " << VariantName(v);
      }
    }
  }
}

// The zero-norm policy has exactly one definition (the satellite fix):
// every variant must agree that zero vectors produce 0 cosine and that
// normalization leaves/writes zeros instead of NaN.
TEST_F(SimdKernelsTest, ZeroNormGuardIsCentralized) {
  const std::vector<float> zeros(33, 0.0f);
  std::vector<float> x(33, 0.0f);
  for (size_t i = 0; i < x.size(); ++i) x[i] = 0.1f * (i + 1);

  for (Variant v : SupportedVariants()) {
    ASSERT_TRUE(ForceVariant(v).ok());
    EXPECT_EQ(Cosine(zeros.data(), x.data(), x.size()), 0.0f);
    EXPECT_EQ(Cosine(x.data(), zeros.data(), x.size()), 0.0f);
    EXPECT_EQ(Cosine(zeros.data(), zeros.data(), x.size()), 0.0f);

    std::vector<float> out(x.size(), 42.0f);
    NormalizeCopy(zeros.data(), out.data(), x.size());
    for (float o : out) EXPECT_EQ(o, 0.0f) << VariantName(v);

    std::vector<float> z = zeros;
    NormalizeInPlace(z.data(), z.size());
    for (float o : z) EXPECT_EQ(o, 0.0f) << VariantName(v);

    std::vector<float> unit = x;
    NormalizeInPlace(unit.data(), unit.size());
    EXPECT_NEAR(Norm(unit.data(), unit.size()), 1.0f, 1e-5f)
        << VariantName(v);
  }
}

std::vector<int8_t> RandomCodes(Rng& rng, size_t n) {
  std::vector<int8_t> c(n);
  for (auto& x : c) {
    x = static_cast<int8_t>(
        static_cast<int>(rng.UniformFloat() * 254.0f) - 127);
  }
  return c;
}

// Int8 dots accumulate terms up to 127x larger than the unit-range f32
// parity vectors, and random-code sums cancel heavily, so a tolerance
// relative to the (small) result would demand more precision than fp32
// summation has. Budget reassociation noise against the L1 mass of the
// products instead: measured cross-variant deviation is ~3e-8 * l1, so
// 2e-7 * l1 keeps ~10x margin while staying far below one quantization
// step of any realistic row.
void ExpectWithinI8(float got, float want, const float* q, const int8_t* c,
                    size_t n, const char* what, Variant v) {
  double l1 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    l1 += std::fabs(static_cast<double>(q[i]) * static_cast<double>(c[i]));
  }
  const float tol = std::max(1e-5f, static_cast<float>(2e-7 * l1));
  EXPECT_NEAR(got, want, tol) << what << " n=" << n << " variant="
                              << VariantName(v);
}

// Same length sweep as the fp32 parity test: 1..257 covers sub-width
// vectors, every remainder class of the 8/16/32-wide int8 loops, and the
// 256->257 boundary.
TEST_F(SimdKernelsTest, Int8VariantsMatchScalarReference) {
  Rng rng(4048);
  for (size_t n = 1; n <= 257; ++n) {
    const std::vector<float> q = RandomVector(rng, n);
    const std::vector<int8_t> c = RandomCodes(rng, n);

    ASSERT_TRUE(ForceVariant(Variant::kScalar).ok());
    const float ref = DotI8(q.data(), c.data(), n);

    for (Variant v : SupportedVariants()) {
      if (v == Variant::kScalar) continue;
      ASSERT_TRUE(ForceVariant(v).ok());
      ExpectWithinI8(DotI8(q.data(), c.data(), n), ref, q.data(), c.data(),
                     n, "DotI8", v);
    }
  }
}

// Extreme codes (every element +/-127): the widening path must not wrap
// or saturate anywhere up to the 257-length boundary.
TEST_F(SimdKernelsTest, Int8SaturatedCodesMatchScalar) {
  Rng rng(4049);
  for (size_t n : {1u, 7u, 8u, 31u, 32u, 33u, 127u, 256u, 257u}) {
    const std::vector<float> q = RandomVector(rng, n);
    std::vector<int8_t> c(n);
    for (size_t i = 0; i < n; ++i) c[i] = (i % 2 == 0) ? 127 : -127;

    ASSERT_TRUE(ForceVariant(Variant::kScalar).ok());
    const float ref = DotI8(q.data(), c.data(), n);
    // The scalar reference itself must agree with a double-precision sum.
    double want = 0.0;
    for (size_t i = 0; i < n; ++i) {
      want += static_cast<double>(q[i]) * static_cast<double>(c[i]);
    }
    ExpectWithinI8(ref, static_cast<float>(want), q.data(), c.data(), n,
                   "DotI8-ref", Variant::kScalar);

    for (Variant v : SupportedVariants()) {
      if (v == Variant::kScalar) continue;
      ASSERT_TRUE(ForceVariant(v).ok());
      ExpectWithinI8(DotI8(q.data(), c.data(), n), ref, q.data(), c.data(),
                     n, "DotI8-sat", v);
    }
  }
}

TEST_F(SimdKernelsTest, DotBatchI8MatchesPerRowDot) {
  Rng rng(4050);
  const size_t count = 37;  // 4-row blocking plus a 1-row tail
  for (size_t dim : {1u, 3u, 16u, 64u, 100u, 128u, 257u}) {
    const std::vector<float> q = RandomVector(rng, dim);
    const std::vector<int8_t> base = RandomCodes(rng, count * dim);
    for (Variant v : SupportedVariants()) {
      ASSERT_TRUE(ForceVariant(v).ok());
      std::vector<float> out(count, 0.0f);
      DotBatchI8(q.data(), base.data(), count, dim, out.data());
      for (size_t r = 0; r < count; ++r) {
        const float want = DotI8(q.data(), base.data() + r * dim, dim);
        ExpectWithinI8(out[r], want, q.data(), base.data() + r * dim, dim,
                       "DotBatchI8", v);
      }
    }
  }
}

// CosineI8's zero-norm policy matches the fp32 one: a zero query or a
// zero-norm row (all-zero codes with scale 0 — what Sq8Encode emits for
// a constant-zero row) scores exactly 0 on every variant. A per-row
// scale of 0 with nonzero offset (constant row) must still score via the
// offset term.
TEST_F(SimdKernelsTest, CosineI8ZeroNormAndZeroScaleRows) {
  const size_t n = 33;
  std::vector<float> q(n);
  for (size_t i = 0; i < n; ++i) q[i] = 0.1f * (i + 1);
  const std::vector<float> zeros(n, 0.0f);
  const std::vector<int8_t> zero_codes(n, 0);
  float qsum = 0.0f;
  for (float x : q) qsum += x;

  for (Variant v : SupportedVariants()) {
    ASSERT_TRUE(ForceVariant(v).ok());
    // Zero-norm row: scale 0, offset 0.
    EXPECT_EQ(CosineI8(q.data(), zero_codes.data(), n, 0.0f, 0.0f, qsum),
              0.0f)
        << VariantName(v);
    // Zero query against any row.
    EXPECT_EQ(CosineI8(zeros.data(), zero_codes.data(), n, 0.5f, 0.25f,
                       0.0f),
              0.0f)
        << VariantName(v);
    // Constant row c=0.7: scale 0, offset 0.7. cosine(q, const-vector)
    // = qsum * 0.7 / (||q|| * 0.7 * sqrt(n)).
    const float got =
        CosineI8(q.data(), zero_codes.data(), n, 0.0f, 0.7f, qsum);
    const float want =
        qsum * 0.7f /
        (Norm(q.data(), n) * 0.7f * std::sqrt(static_cast<float>(n)));
    EXPECT_NEAR(got, want, 1e-5f) << VariantName(v);
  }
}

TEST_F(SimdKernelsTest, TopKDotI8MatchesOfferLoopAndHandlesTies) {
  Rng rng(4051);
  const size_t count = 300, dim = 24, k = 10;
  std::vector<int8_t> base = RandomCodes(rng, count * dim);
  std::vector<float> scales(count), offsets(count);
  for (size_t r = 0; r < count; ++r) {
    scales[r] = 0.001f + 0.01f * rng.UniformFloat();
    offsets[r] = 0.5f * rng.UniformFloat() - 0.25f;
  }
  // Force exact score ties: identical codes AND params.
  std::copy_n(base.begin() + 50 * dim, dim, base.begin() + 51 * dim);
  scales[51] = scales[50];
  offsets[51] = offsets[50];
  std::copy_n(base.begin() + 100 * dim, dim, base.begin() + 101 * dim);
  scales[101] = scales[100];
  offsets[101] = offsets[100];
  const std::vector<float> q = RandomVector(rng, dim);
  float qsum = 0.0f;
  for (float x : q) qsum += x;

  for (Variant v : SupportedVariants()) {
    ASSERT_TRUE(ForceVariant(v).ok());
    for (ptrdiff_t exclude : {-1, 50, 299}) {
      std::vector<float> raw(count);
      DotBatchI8(q.data(), base.data(), count, dim, raw.data());
      std::vector<std::pair<int, float>> want;
      for (size_t r = 0; r < count; ++r) {
        if (static_cast<ptrdiff_t>(r) == exclude) continue;
        want.emplace_back(static_cast<int>(r),
                          scales[r] * raw[r] + offsets[r] * qsum);
      }
      std::stable_sort(want.begin(), want.end(),
                       [](const auto& a, const auto& b) {
                         if (a.second != b.second) return a.second > b.second;
                         return a.first < b.first;
                       });
      want.resize(std::min(want.size(), k));

      std::vector<std::pair<int, float>> got;
      TopKDotI8(q.data(), base.data(), count, dim, scales.data(),
                offsets.data(), qsum, k, exclude, &got);
      ASSERT_EQ(got.size(), want.size())
          << VariantName(v) << " exclude=" << exclude;
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].first, want[i].first)
            << VariantName(v) << " exclude=" << exclude << " rank=" << i;
        EXPECT_EQ(got[i].second, want[i].second)
            << VariantName(v) << " exclude=" << exclude << " rank=" << i;
      }
    }
  }
}

TEST_F(SimdKernelsTest, EnvOverrideForcesEachSupportedVariant) {
  for (Variant v : SupportedVariants()) {
    ASSERT_EQ(setenv("SCCF_SIMD", VariantName(v), 1), 0);
    ResetVariantFromEnv();
    EXPECT_EQ(ActiveVariant(), v) << "SCCF_SIMD=" << VariantName(v);
  }
}

TEST_F(SimdKernelsTest, EnvOverrideFallsBackOnBadValues) {
  // Auto-dispatch baseline: no override set.
  unsetenv("SCCF_SIMD");
  ResetVariantFromEnv();
  const Variant best = ActiveVariant();

  ASSERT_EQ(setenv("SCCF_SIMD", "sse9000", 1), 0);
  ResetVariantFromEnv();
  EXPECT_EQ(ActiveVariant(), best) << "unknown value must fall back";

  ASSERT_EQ(setenv("SCCF_SIMD", "", 1), 0);
  ResetVariantFromEnv();
  EXPECT_EQ(ActiveVariant(), best) << "empty value must fall back";
}

TEST_F(SimdKernelsTest, ForceVariantRejectsUnsupported) {
  for (Variant v : {Variant::kAvx2, Variant::kAvx512}) {
    if (VariantSupported(v)) continue;
    const Status s = ForceVariant(v);
    EXPECT_FALSE(s.ok()) << VariantName(v);
    EXPECT_EQ(ActiveVariant(), before_) << "failed force must not switch";
  }
}

}  // namespace
}  // namespace sccf::simd
