#include <gtest/gtest.h>

#include <algorithm>

#include "core/realtime.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "models/fism.h"

namespace sccf::core {
namespace {

class RealTimeTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig cfg;
    cfg.name = "rt-test";
    cfg.num_users = 120;
    cfg.num_items = 160;
    cfg.num_clusters = 8;
    cfg.min_actions = 10;
    cfg.max_actions = 30;
    cfg.seed = 31;
    data::SyntheticGenerator gen(cfg);
    auto ds = gen.Generate();
    SCCF_CHECK(ds.ok());
    dataset_ = new data::Dataset(std::move(ds).value());
    split_ = new data::LeaveOneOutSplit(*dataset_);

    models::Fism::Options fopts;
    fopts.dim = 16;
    fopts.epochs = 6;
    fism_ = new models::Fism(fopts);
    SCCF_CHECK(fism_->Fit(*split_).ok());
  }
  static void TearDownTestSuite() {
    delete fism_;
    delete split_;
    delete dataset_;
    fism_ = nullptr;
    split_ = nullptr;
    dataset_ = nullptr;
  }

  static data::Dataset* dataset_;
  static data::LeaveOneOutSplit* split_;
  static models::Fism* fism_;
};

data::Dataset* RealTimeTest::dataset_ = nullptr;
data::LeaveOneOutSplit* RealTimeTest::split_ = nullptr;
models::Fism* RealTimeTest::fism_ = nullptr;

TEST_F(RealTimeTest, RequiresBootstrap) {
  RealTimeService svc(*fism_, {});
  EXPECT_EQ(svc.OnInteraction(0, 1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(svc.Neighbors(0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RealTimeTest, BootstrapOnlyOnce) {
  RealTimeService svc(*fism_, {});
  ASSERT_TRUE(svc.BootstrapFromSplit(*split_).ok());
  EXPECT_EQ(svc.Bootstrap({}).code(), StatusCode::kFailedPrecondition);
}

TEST_F(RealTimeTest, OnInteractionReportsTimingsAndGrowsHistory) {
  RealTimeService svc(*fism_, {});
  ASSERT_TRUE(svc.BootstrapFromSplit(*split_).ok());
  const size_t before = svc.History(3)->size();
  auto timing = svc.OnInteraction(3, 42);
  ASSERT_TRUE(timing.ok());
  EXPECT_GE(timing->infer_ms, 0.0);
  EXPECT_GE(timing->identify_ms, 0.0);
  EXPECT_GT(timing->total_ms(), 0.0);
  EXPECT_EQ(svc.History(3)->size(), before + 1);
  EXPECT_EQ(svc.History(3)->back(), 42);
}

TEST_F(RealTimeTest, RejectsUnknownItem) {
  RealTimeService svc(*fism_, {});
  ASSERT_TRUE(svc.BootstrapFromSplit(*split_).ok());
  EXPECT_EQ(svc.OnInteraction(0, -1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      svc.OnInteraction(0, static_cast<int>(dataset_->num_items()) + 5)
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST_F(RealTimeTest, ColdStartUserCreatedOnFly) {
  RealTimeService svc(*fism_, {});
  ASSERT_TRUE(svc.BootstrapFromSplit(*split_).ok());
  const int new_user = 100000;
  ASSERT_TRUE(svc.OnInteraction(new_user, 7).ok());
  ASSERT_TRUE(svc.OnInteraction(new_user, 8).ok());
  EXPECT_EQ(svc.History(new_user)->size(), 2u);
  auto nbrs = svc.Neighbors(new_user);
  ASSERT_TRUE(nbrs.ok());
  EXPECT_FALSE(nbrs->empty());
}

TEST_F(RealTimeTest, NeighborhoodAdaptsToAdoptedTaste) {
  RealTimeService svc(*fism_, {});
  ASSERT_TRUE(svc.BootstrapFromSplit(*split_).ok());
  // Feed user 0 the full recent history of user 70; with a window of 15
  // the inferred embedding converges to user 70's, so 70 must appear in
  // the fresh neighborhood.
  const auto target = split_->TrainSequence(70);
  const size_t take = std::min<size_t>(target.size(), 15);
  for (size_t i = target.size() - take; i < target.size(); ++i) {
    ASSERT_TRUE(svc.OnInteraction(0, target[i]).ok());
  }
  auto nbrs = svc.Neighbors(0);
  ASSERT_TRUE(nbrs.ok());
  bool found = false;
  for (const auto& nb : *nbrs) found = found || nb.id == 70;
  EXPECT_TRUE(found);
}

TEST_F(RealTimeTest, RecommendUserBasedExcludesOwnHistory) {
  RealTimeService svc(*fism_, {});
  ASSERT_TRUE(svc.BootstrapFromSplit(*split_).ok());
  auto recs = svc.RecommendUserBased(5, 20);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  const std::vector<int> history = svc.History(5).value();
  for (const auto& rec : *recs) {
    EXPECT_EQ(std::count(history.begin(), history.end(), rec.id), 0)
        << "item " << rec.id << " is in user 5's history";
  }
  // Sorted descending by vote score.
  for (size_t i = 1; i < recs->size(); ++i) {
    EXPECT_GE((*recs)[i - 1].score, (*recs)[i].score);
  }
}

TEST_F(RealTimeTest, HistoryIsStatusOrSnapshot) {
  RealTimeService svc(*fism_, {});
  // Before Bootstrap there is no shard state to read.
  EXPECT_EQ(svc.History(0).status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(svc.BootstrapFromSplit(*split_).ok());
  EXPECT_EQ(svc.History(999999).status().code(), StatusCode::kNotFound);
  // The returned history is a snapshot copy: mutating the service after
  // the call must not affect it (the old API returned a reference into
  // the map, which rehash or concurrent ingest would invalidate).
  auto snapshot = svc.History(3);
  ASSERT_TRUE(snapshot.ok());
  const std::vector<int> before = *snapshot;
  ASSERT_TRUE(svc.OnInteraction(3, 42).ok());
  EXPECT_EQ(*snapshot, before);
  EXPECT_EQ(svc.History(3)->size(), before.size() + 1);
}

// Pins the sharded refactor to the pre-sharding behavior: with the exact
// brute-force backend, a hash-partitioned service (any shard count) must
// produce byte-identical neighborhoods and recommendations to the
// single-shard service, whose code path is the pre-refactor one. Covers
// both the bootstrap state and the state after streaming updates.
TEST_F(RealTimeTest, ShardedMatchesSingleShardExactly) {
  RealTimeService::Options single_opts;
  single_opts.beta = 10;
  single_opts.num_shards = 1;
  RealTimeService::Options sharded_opts = single_opts;
  sharded_opts.num_shards = 7;

  RealTimeService single(*fism_, single_opts);
  RealTimeService sharded(*fism_, sharded_opts);
  ASSERT_TRUE(single.BootstrapFromSplit(*split_).ok());
  ASSERT_TRUE(sharded.BootstrapFromSplit(*split_).ok());
  ASSERT_EQ(single.num_shards(), 1u);
  ASSERT_EQ(sharded.num_shards(), 7u);
  EXPECT_EQ(single.num_users(), sharded.num_users());

  const auto expect_equal_views = [&](int user) {
    auto n1 = single.Neighbors(user);
    auto n7 = sharded.Neighbors(user);
    ASSERT_TRUE(n1.ok());
    ASSERT_TRUE(n7.ok());
    ASSERT_EQ(n1->size(), n7->size()) << "user " << user;
    for (size_t i = 0; i < n1->size(); ++i) {
      EXPECT_EQ((*n1)[i].id, (*n7)[i].id) << "user " << user << " rank " << i;
      EXPECT_FLOAT_EQ((*n1)[i].score, (*n7)[i].score);
    }
    auto r1 = single.RecommendUserBased(user, 20);
    auto r7 = sharded.RecommendUserBased(user, 20);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r7.ok());
    ASSERT_EQ(r1->size(), r7->size()) << "user " << user;
    for (size_t i = 0; i < r1->size(); ++i) {
      EXPECT_EQ((*r1)[i].id, (*r7)[i].id) << "user " << user << " rank " << i;
      EXPECT_FLOAT_EQ((*r1)[i].score, (*r7)[i].score);
    }
  };

  for (int user = 0; user < 25; ++user) expect_equal_views(user);

  // Stream the same interactions (incl. a cold-start user) through both.
  const std::vector<std::pair<int, int>> stream = {
      {0, 7}, {1, 8}, {70, 9}, {3000, 11}, {3000, 12}, {5, 13}, {0, 14}};
  for (const auto& [user, item] : stream) {
    ASSERT_TRUE(single.OnInteraction(user, item).ok());
    ASSERT_TRUE(sharded.OnInteraction(user, item).ok());
  }
  for (int user : {0, 1, 5, 70, 3000}) expect_equal_views(user);
}

TEST_F(RealTimeTest, UnknownUserNeighborsIsNotFound) {
  RealTimeService svc(*fism_, {});
  ASSERT_TRUE(svc.BootstrapFromSplit(*split_).ok());
  EXPECT_EQ(svc.Neighbors(999999).status().code(), StatusCode::kNotFound);
}

TEST_F(RealTimeTest, WorksWithHnswBackend) {
  RealTimeService::Options opts;
  opts.index_kind = IndexKind::kHnsw;
  RealTimeService svc(*fism_, opts);
  ASSERT_TRUE(svc.BootstrapFromSplit(*split_).ok());
  ASSERT_TRUE(svc.OnInteraction(1, 3).ok());
  auto nbrs = svc.Neighbors(1);
  ASSERT_TRUE(nbrs.ok());
  EXPECT_FALSE(nbrs->empty());
}

TEST_F(RealTimeTest, WorksWithIvfBackend) {
  RealTimeService::Options opts;
  opts.index_kind = IndexKind::kIvfFlat;
  opts.ivf.nlist = 8;
  opts.ivf.nprobe = 4;
  RealTimeService svc(*fism_, opts);
  ASSERT_TRUE(svc.BootstrapFromSplit(*split_).ok());
  ASSERT_TRUE(svc.OnInteraction(1, 3).ok());
  auto nbrs = svc.Neighbors(1);
  ASSERT_TRUE(nbrs.ok());
  EXPECT_FALSE(nbrs->empty());
}

// Streaming-vs-batch equivalence (deterministic): feeding a cold-start
// user through OnInteraction must create state, refresh the index, and
// land in exactly the neighborhood a from-scratch Bootstrap of the same
// histories produces. IVF probes every list and HNSW gets a generous beam
// so both backends are exhaustive at this scale; any divergence between
// the incremental and batch paths is then a real bug, not ANN noise.
TEST_F(RealTimeTest, ColdStartMatchesFromScratchBootstrap) {
  constexpr int kColdUser = 500;
  constexpr size_t kBeta = 10;
  const std::vector<int> cold_history = {7, 8, 9, 42, 43};

  const auto options_for = [](IndexKind kind) {
    RealTimeService::Options opts;
    opts.beta = kBeta;
    opts.index_kind = kind;
    opts.ivf.nlist = 4;
    opts.ivf.nprobe = 4;  // scan every list: exhaustive
    opts.hnsw.ef_search = 256;
    return opts;
  };

  std::vector<int> top1_per_backend;
  for (IndexKind kind :
       {IndexKind::kBruteForce, IndexKind::kHnsw, IndexKind::kIvfFlat}) {
    // Incremental: bootstrap the corpus, then stream the cold user in.
    RealTimeService streamed(*fism_, options_for(kind));
    ASSERT_TRUE(streamed.BootstrapFromSplit(*split_).ok());
    const size_t users_before = streamed.num_users();
    for (int item : cold_history) {
      ASSERT_TRUE(streamed.OnInteraction(kColdUser, item).ok());
    }
    EXPECT_EQ(streamed.num_users(), users_before + 1);
    EXPECT_EQ(streamed.History(kColdUser)->size(), cold_history.size());

    // Batch: one Bootstrap over the identical final histories.
    std::vector<RealTimeService::UserState> states(split_->num_users());
    for (size_t u = 0; u < split_->num_users(); ++u) {
      states[u].user = static_cast<int>(u);
      const auto h = split_->TrainSequence(u);
      states[u].history.assign(h.begin(), h.end());
    }
    states.push_back({kColdUser, cold_history});
    RealTimeService batch(*fism_, options_for(kind));
    ASSERT_TRUE(batch.Bootstrap(states).ok());

    auto streamed_nbrs = streamed.Neighbors(kColdUser);
    auto batch_nbrs = batch.Neighbors(kColdUser);
    ASSERT_TRUE(streamed_nbrs.ok());
    ASSERT_TRUE(batch_nbrs.ok());
    ASSERT_EQ(streamed_nbrs->size(), batch_nbrs->size());
    for (size_t i = 0; i < streamed_nbrs->size(); ++i) {
      EXPECT_EQ((*streamed_nbrs)[i].id, (*batch_nbrs)[i].id)
          << "backend " << static_cast<int>(kind) << " rank " << i;
      EXPECT_FLOAT_EQ((*streamed_nbrs)[i].score, (*batch_nbrs)[i].score);
    }
    ASSERT_FALSE(streamed_nbrs->empty());
    top1_per_backend.push_back((*streamed_nbrs)[0].id);
  }

  // Brute force vs HNSW vs IVF agree on the nearest neighbor.
  ASSERT_EQ(top1_per_backend.size(), 3u);
  EXPECT_EQ(top1_per_backend[0], top1_per_backend[1]);
  EXPECT_EQ(top1_per_backend[0], top1_per_backend[2]);
}

}  // namespace
}  // namespace sccf::core
