#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/bpr_mf.h"
#include "models/fism.h"
#include "models/item_knn.h"
#include "models/pop.h"
#include "models/sasrec.h"
#include "models/user_knn.h"
#include "tensor/tensor.h"

namespace sccf::models {
namespace {

// Small clustered dataset shared by the model tests. Built once because
// training even tiny models is the slow part.
class ModelsTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig cfg;
    cfg.name = "models-test";
    cfg.num_users = 120;
    cfg.num_items = 150;
    cfg.num_clusters = 10;
    cfg.min_actions = 10;
    cfg.max_actions = 40;
    cfg.sequential_strength = 0.5;
    cfg.seed = 42;
    data::SyntheticGenerator gen(cfg);
    auto ds = gen.Generate();
    SCCF_CHECK(ds.ok());
    dataset_ = new data::Dataset(std::move(ds).value());
    split_ = new data::LeaveOneOutSplit(*dataset_);
  }
  static void TearDownTestSuite() {
    delete split_;
    delete dataset_;
    split_ = nullptr;
    dataset_ = nullptr;
  }

  static data::Dataset* dataset_;
  static data::LeaveOneOutSplit* split_;
};

data::Dataset* ModelsTest::dataset_ = nullptr;
data::LeaveOneOutSplit* ModelsTest::split_ = nullptr;

double NdcgAt50(const Recommender& model,
                const data::LeaveOneOutSplit& split) {
  eval::EvalOptions opts;
  opts.cutoffs = {50};
  auto r = eval::Evaluate(model, split, opts);
  SCCF_CHECK(r.ok());
  return r->ndcg[0];
}

// ------------------------------------------------------------------ Pop

TEST_F(ModelsTest, PopScoresAreTrainCounts) {
  PopRecommender pop;
  ASSERT_TRUE(pop.Fit(*split_).ok());
  std::vector<float> scores;
  pop.ScoreAll(0, split_->TrainSequence(0), &scores);
  ASSERT_EQ(scores.size(), dataset_->num_items());
  // Recount from the split directly.
  std::vector<float> expected(dataset_->num_items(), 0.0f);
  for (size_t u = 0; u < split_->num_users(); ++u) {
    for (int i : split_->TrainSequence(u)) expected[i] += 1.0f;
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_EQ(scores[i], expected[i]);
  }
}

TEST_F(ModelsTest, PopIsUserIndependent) {
  PopRecommender pop;
  ASSERT_TRUE(pop.Fit(*split_).ok());
  std::vector<float> s1, s2;
  pop.ScoreAll(0, split_->TrainSequence(0), &s1);
  pop.ScoreAll(1, split_->TrainSequence(1), &s2);
  EXPECT_EQ(s1, s2);
}

// -------------------------------------------------------------- ItemKNN

TEST(ItemKnnUnitTest, SimilarityFromKnownCooccurrence) {
  // Users: {0,1}, {0,1}, {0,2} -> co(0,1)=2, freq0=3, freq1=2 => 2/sqrt(6).
  std::vector<data::Interaction> inter = {
      {0, 0, 0}, {0, 1, 1}, {1, 0, 2}, {1, 1, 3}, {2, 0, 4}, {2, 2, 5},
  };
  // Pad users so the split keeps everything in train (sequences of 2 are
  // not evaluable, so the full sequence is training data).
  auto ds = data::Dataset::FromInteractions("knn", std::move(inter));
  ASSERT_TRUE(ds.ok());
  data::LeaveOneOutSplit split(*ds);
  ItemKnn knn;
  ASSERT_TRUE(knn.Fit(split).ok());
  EXPECT_NEAR(knn.Similarity(0, 1), 2.0 / std::sqrt(6.0), 1e-5);
  EXPECT_NEAR(knn.Similarity(1, 0), knn.Similarity(0, 1), 1e-6);
  EXPECT_NEAR(knn.Similarity(0, 2), 1.0 / std::sqrt(3.0), 1e-5);
  EXPECT_EQ(knn.Similarity(1, 2), 0.0f);
}

TEST_F(ModelsTest, ItemKnnBeatsPop) {
  PopRecommender pop;
  ASSERT_TRUE(pop.Fit(*split_).ok());
  ItemKnn knn;
  ASSERT_TRUE(knn.Fit(*split_).ok());
  EXPECT_GT(NdcgAt50(knn, *split_), NdcgAt50(pop, *split_));
}

TEST_F(ModelsTest, ItemKnnTopKPruningKeepsBestNeighbors) {
  ItemKnn full;
  ASSERT_TRUE(full.Fit(*split_).ok());
  ItemKnn pruned({.top_k = 10});
  ASSERT_TRUE(pruned.Fit(*split_).ok());
  // Pruned similarity is either equal to full or zero (pruned away).
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      const float fp = pruned.Similarity(i, j);
      if (fp != 0.0f) {
        EXPECT_NEAR(fp, full.Similarity(i, j), 1e-6);
      }
    }
  }
}

// -------------------------------------------------------------- UserKNN

TEST(UserKnnUnitTest, NeighborsByOverlap) {
  // u0: {0,1,2,3,4,5}(+2 held out), u1 shares u0's prefix, u2 disjoint.
  std::vector<data::Interaction> inter;
  int64_t t = 0;
  for (int i = 0; i < 8; ++i) inter.push_back({0, i, ++t});
  for (int i = 0; i < 8; ++i) inter.push_back({1, i, ++t});
  for (int i = 20; i < 28; ++i) inter.push_back({2, i, ++t});
  auto ds = data::Dataset::FromInteractions("uknn", std::move(inter));
  ASSERT_TRUE(ds.ok());
  data::LeaveOneOutSplit split(*ds);
  UserKnn knn({.num_neighbors = 2});
  ASSERT_TRUE(knn.Fit(split).ok());
  auto nbrs =
      knn.IdentifyNeighbors(split.TrainSequence(0), /*exclude_user=*/0);
  ASSERT_FALSE(nbrs.empty());
  EXPECT_EQ(nbrs[0].id, 1);  // full overlap beats disjoint
  for (const auto& nb : nbrs) EXPECT_NE(nb.id, 0);
}

TEST_F(ModelsTest, UserKnnStrategiesAgree) {
  // The Eq. 13 sparse-intersection scan and the inverted-index
  // optimisation must return identical neighborhoods.
  UserKnn knn({.num_neighbors = 20});
  ASSERT_TRUE(knn.Fit(*split_).ok());
  for (size_t u : {0u, 5u, 17u}) {
    auto naive = knn.IdentifyNeighbors(
        split_->TrainSequence(u), static_cast<int>(u),
        UserKnn::Strategy::kSparseIntersection);
    auto inverted = knn.IdentifyNeighbors(
        split_->TrainSequence(u), static_cast<int>(u),
        UserKnn::Strategy::kInvertedIndex);
    ASSERT_EQ(naive.size(), inverted.size());
    for (size_t i = 0; i < naive.size(); ++i) {
      EXPECT_EQ(naive[i].id, inverted[i].id);
      EXPECT_NEAR(naive[i].score, inverted[i].score, 1e-6);
    }
  }
}

TEST_F(ModelsTest, UserKnnBeatsPop) {
  PopRecommender pop;
  ASSERT_TRUE(pop.Fit(*split_).ok());
  UserKnn knn({.num_neighbors = 30});
  ASSERT_TRUE(knn.Fit(*split_).ok());
  EXPECT_GT(NdcgAt50(knn, *split_), NdcgAt50(pop, *split_));
}

TEST_F(ModelsTest, UserKnnScoresOnlyNeighborItems) {
  UserKnn knn({.num_neighbors = 5});
  ASSERT_TRUE(knn.Fit(*split_).ok());
  std::vector<float> scores;
  knn.ScoreAll(0, split_->TrainSequence(0), &scores);
  size_t nonzero = 0;
  for (float s : scores) nonzero += s > 0.0f;
  EXPECT_GT(nonzero, 0u);
  EXPECT_LT(nonzero, dataset_->num_items());
}

// --------------------------------------------------------------- BPR-MF

TEST_F(ModelsTest, BprMfBeatsPop) {
  PopRecommender pop;
  ASSERT_TRUE(pop.Fit(*split_).ok());
  BprMf::Options opts;
  opts.dim = 16;
  opts.epochs = 15;
  BprMf bpr(opts);
  ASSERT_TRUE(bpr.Fit(*split_).ok());
  EXPECT_GT(NdcgAt50(bpr, *split_), NdcgAt50(pop, *split_));
}

TEST_F(ModelsTest, BprMfFactorsHaveExpectedShapes) {
  BprMf::Options opts;
  opts.dim = 8;
  opts.epochs = 1;
  BprMf bpr(opts);
  ASSERT_TRUE(bpr.Fit(*split_).ok());
  EXPECT_EQ(bpr.user_factors().rows(), dataset_->num_users());
  EXPECT_EQ(bpr.user_factors().cols(), 8u);
  EXPECT_EQ(bpr.item_factors().rows(), dataset_->num_items());
}

// ----------------------------------------------------------------- FISM

TEST(FismUnitTest, InferenceIsAlphaPooling) {
  // Fit on a minimal corpus just to initialise the table, then verify the
  // pooling formula against a manual computation.
  std::vector<data::Interaction> inter;
  int64_t t = 0;
  for (int u = 0; u < 10; ++u) {
    for (int i = 0; i < 6; ++i) inter.push_back({u, (u + i) % 12, ++t});
  }
  auto ds = data::Dataset::FromInteractions("fism", std::move(inter));
  ASSERT_TRUE(ds.ok());
  data::LeaveOneOutSplit split(*ds);
  Fism::Options opts;
  opts.dim = 4;
  opts.alpha = 0.5f;
  opts.epochs = 1;
  Fism fism(opts);
  ASSERT_TRUE(fism.Fit(split).ok());

  const std::vector<int> history = {0, 3, 3, 5};  // duplicate 3 deduped
  std::vector<float> mu(4, 0.0f);
  fism.InferUserEmbedding(history, mu.data());
  const float c = 1.0f / std::sqrt(3.0f);
  for (size_t f = 0; f < 4; ++f) {
    const float expected = c * (fism.ItemEmbedding(0)[f] +
                                fism.ItemEmbedding(3)[f] +
                                fism.ItemEmbedding(5)[f]);
    EXPECT_NEAR(mu[f], expected, 1e-5);
  }
}

TEST(FismUnitTest, EmptyHistoryGivesZeroEmbedding) {
  std::vector<data::Interaction> inter;
  int64_t t = 0;
  for (int u = 0; u < 6; ++u) {
    for (int i = 0; i < 5; ++i) inter.push_back({u, i, ++t});
  }
  auto ds = data::Dataset::FromInteractions("fism0", std::move(inter));
  ASSERT_TRUE(ds.ok());
  data::LeaveOneOutSplit split(*ds);
  Fism::Options opts;
  opts.dim = 4;
  opts.epochs = 1;
  Fism fism(opts);
  ASSERT_TRUE(fism.Fit(split).ok());
  std::vector<float> mu(4, 1.0f);
  fism.InferUserEmbedding({}, mu.data());
  for (float v : mu) EXPECT_EQ(v, 0.0f);
}

TEST_F(ModelsTest, FismTrainsAndBeatsPop) {
  PopRecommender pop;
  ASSERT_TRUE(pop.Fit(*split_).ok());
  Fism::Options opts;
  opts.dim = 16;
  opts.epochs = 8;
  Fism fism(opts);
  ASSERT_TRUE(fism.Fit(*split_).ok());
  EXPECT_GT(fism.last_epoch_loss(), 0.0f);
  EXPECT_LT(fism.last_epoch_loss(), 0.6f);  // well below ln2 at init
  EXPECT_GT(NdcgAt50(fism, *split_), NdcgAt50(pop, *split_));
}

// --------------------------------------------------------------- SASRec

TEST_F(ModelsTest, SasRecTrainsAndBeatsPop) {
  PopRecommender pop;
  ASSERT_TRUE(pop.Fit(*split_).ok());
  SasRec::Options opts;
  opts.dim = 16;
  opts.max_len = 20;
  opts.num_blocks = 1;
  opts.epochs = 6;
  opts.dropout = 0.1f;
  SasRec sasrec(opts);
  ASSERT_TRUE(sasrec.Fit(*split_).ok());
  EXPECT_LT(sasrec.last_epoch_loss(), 0.65f);
  EXPECT_GT(NdcgAt50(sasrec, *split_), NdcgAt50(pop, *split_));
}

TEST_F(ModelsTest, SasRecEmbeddingDependsOnOrder) {
  SasRec::Options opts;
  opts.dim = 8;
  opts.max_len = 10;
  opts.num_blocks = 1;
  opts.epochs = 2;
  SasRec sasrec(opts);
  ASSERT_TRUE(sasrec.Fit(*split_).ok());
  const std::vector<int> fwd = {1, 2, 3, 4, 5};
  const std::vector<int> rev = {5, 4, 3, 2, 1};
  std::vector<float> a(8), b(8);
  sasrec.InferUserEmbedding(fwd, a.data());
  sasrec.InferUserEmbedding(rev, b.data());
  float diff = 0.0f;
  for (size_t i = 0; i < 8; ++i) diff += std::fabs(a[i] - b[i]);
  EXPECT_GT(diff, 1e-4f);  // sequential model: order matters
}

TEST_F(ModelsTest, SasRecCausality) {
  // The user embedding (last position's state) must not change when items
  // *beyond* the window are altered, and must not depend on "future"
  // items because there are none after the last position. Verify the
  // related invariant directly: the hidden state at position t is
  // unchanged by edits at positions > t.
  SasRec::Options opts;
  opts.dim = 8;
  opts.max_len = 10;
  opts.num_blocks = 2;
  opts.epochs = 1;
  SasRec sasrec(opts);
  ASSERT_TRUE(sasrec.Fit(*split_).ok());

  const std::vector<int> h1 = {1, 2, 3, 4};
  const std::vector<int> h2 = {1, 2, 3, 9};  // differs only at the end
  // Prefix embeddings (inferred from the shared prefix) must agree.
  std::vector<float> p1(8), p2(8);
  sasrec.InferUserEmbedding(std::span<const int>(h1.data(), 3), p1.data());
  sasrec.InferUserEmbedding(std::span<const int>(h2.data(), 3), p2.data());
  for (size_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(p1[i], p2[i]);
  // Full embeddings must differ (the last item matters).
  std::vector<float> f1(8), f2(8);
  sasrec.InferUserEmbedding(h1, f1.data());
  sasrec.InferUserEmbedding(h2, f2.data());
  float diff = 0.0f;
  for (size_t i = 0; i < 8; ++i) diff += std::fabs(f1[i] - f2[i]);
  EXPECT_GT(diff, 1e-5f);
}

TEST_F(ModelsTest, SasRecTruncatesToMaxLen) {
  SasRec::Options opts;
  opts.dim = 8;
  opts.max_len = 5;
  opts.num_blocks = 1;
  opts.epochs = 1;
  SasRec sasrec(opts);
  ASSERT_TRUE(sasrec.Fit(*split_).ok());
  // A long history and its last-5 suffix must produce identical
  // embeddings (Eq. 3 truncation).
  std::vector<int> long_h = {9, 8, 7, 1, 2, 3, 4, 5};
  std::vector<int> suffix = {1, 2, 3, 4, 5};
  std::vector<float> a(8), b(8);
  sasrec.InferUserEmbedding(long_h, a.data());
  sasrec.InferUserEmbedding(suffix, b.data());
  for (size_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

// ----------------------------------------------- inductive UI interface

TEST_F(ModelsTest, ScoreAllIsDotProductOfEmbeddings) {
  Fism::Options opts;
  opts.dim = 8;
  opts.epochs = 1;
  Fism fism(opts);
  ASSERT_TRUE(fism.Fit(*split_).ok());
  const auto history = split_->TrainSequence(3);
  std::vector<float> scores;
  fism.ScoreAll(3, history, &scores);
  std::vector<float> mu(8, 0.0f);
  fism.InferUserEmbedding(history, mu.data());
  for (int i : {0, 5, 17}) {
    EXPECT_NEAR(scores[i],
                tensor_ops::Dot(mu.data(), fism.ItemEmbedding(i), 8), 1e-4);
  }
}

}  // namespace
}  // namespace sccf::models
