// The persistence layer's correctness story, bottom-up: coding/CRC
// primitives, index-blob round trips (including RNG-state continuation
// equivalence), journal framing with torn-tail semantics, snapshot
// framing, and the nn checkpoint hardening — with fault injection
// (bit flips, truncations, adversarial lengths) at every layer. The
// pinned property throughout: corrupt input yields a clean Status error
// and leaves the target object bit-identical; it never crashes, hangs,
// or silently commits partial state. End-to-end crash recovery lives in
// recovery_test.cc.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "data/split.h"
#include "data/synthetic.h"
#include "index/brute_force_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_flat_index.h"
#include "models/fism.h"
#include "nn/parameter.h"
#include "nn/serialize.h"
#include "persist/fs.h"
#include "persist/journal.h"
#include "persist/snapshot.h"
#include "testing/temp_dir.h"
#include "util/coding.h"
#include "util/random.h"

namespace sccf::persist {
namespace {

using core::RealTimeService;
using sccf::testing::TempDir;
using Event = RealTimeService::Event;

void WriteBytes(const std::string& path, std::string_view bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  SCCF_CHECK(f.good()) << path;
}

// ------------------------------------------------------------- coding

TEST(CodingTest, FixedWidthRoundTrip) {
  std::string buf;
  PutU8(&buf, 0xab);
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefull);
  PutI32(&buf, -7);
  PutI64(&buf, -1234567890123ll);
  PutF32(&buf, 3.25f);
  PutLengthPrefixed(&buf, "hello");

  ByteReader r(buf);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  int64_t i64 = 0;
  float f = 0.0f;
  std::string_view s;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadFixed32(&u32).ok());
  ASSERT_TRUE(r.ReadFixed64(&u64).ok());
  ASSERT_TRUE(r.ReadI32(&i32).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadF32(&f).ok());
  ASSERT_TRUE(r.ReadLengthPrefixed(&s).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(i32, -7);
  EXPECT_EQ(i64, -1234567890123ll);
  EXPECT_EQ(f, 3.25f);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(CodingTest, ReaderShortBufferErrorsWithoutAdvancing) {
  const std::string buf = "abc";
  ByteReader r(buf);
  uint32_t v = 0;
  EXPECT_FALSE(r.ReadFixed32(&v).ok());
  EXPECT_EQ(r.position(), 0u);  // failed read leaves the cursor usable
  uint8_t b = 0;
  EXPECT_TRUE(r.ReadU8(&b).ok());
  EXPECT_EQ(b, 'a');
}

TEST(CodingTest, AdversarialLengthsAreCleanErrorsNotAllocations) {
  // A length prefix claiming 2^60 bytes in a 12-byte buffer must be
  // rejected before any allocation happens.
  std::string buf;
  PutFixed64(&buf, uint64_t{1} << 60);
  buf += "puny";
  ByteReader r(buf);
  std::string_view s;
  EXPECT_FALSE(r.ReadLengthPrefixed(&s).ok());

  ByteReader r2(buf);
  std::vector<float> floats;
  EXPECT_FALSE(r2.ReadFloats(size_t{1} << 60, &floats).ok());
  EXPECT_TRUE(floats.empty());
}

TEST(CodingTest, Crc32MatchesKnownVectorsAndExtends) {
  // The IEEE 802.3 check value: crc32("123456789") == 0xcbf43926.
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32Extend(Crc32("1234"), "56789"), Crc32("123456789"));
}

// ------------------------------------------------------------ journal

std::vector<JournalRecord> TwoRecords() {
  std::vector<JournalRecord> recs(2);
  recs[0].shard = 1;
  recs[0].seq = 5;
  recs[0].events = {{10, 20, 100}, {11, 21, 101}};
  recs[1].shard = 0;
  recs[1].seq = 9;
  recs[1].events = {{3, 7, -50}};
  return recs;
}

std::string EncodeAll(const std::vector<JournalRecord>& recs) {
  std::string bytes;
  for (const JournalRecord& r : recs) {
    bytes += EncodeJournalRecord(
        r.shard, r.seq, std::span<const Event>(r.events));
  }
  return bytes;
}

void ExpectRecordsEqual(const std::vector<JournalRecord>& got,
                        const std::vector<JournalRecord>& want,
                        size_t want_count) {
  ASSERT_EQ(got.size(), want_count);
  for (size_t i = 0; i < want_count; ++i) {
    EXPECT_EQ(got[i].shard, want[i].shard) << "record " << i;
    EXPECT_EQ(got[i].seq, want[i].seq) << "record " << i;
    ASSERT_EQ(got[i].events.size(), want[i].events.size()) << "record " << i;
    for (size_t e = 0; e < want[i].events.size(); ++e) {
      EXPECT_EQ(got[i].events[e].user, want[i].events[e].user);
      EXPECT_EQ(got[i].events[e].item, want[i].events[e].item);
      EXPECT_EQ(got[i].events[e].ts, want[i].events[e].ts);
    }
  }
}

TEST(JournalTest, EncodeDecodeRoundTrip) {
  const auto recs = TwoRecords();
  const std::string bytes = EncodeAll(recs);
  std::vector<JournalRecord> out;
  size_t valid = 0;
  ASSERT_TRUE(
      DecodeJournal(bytes, /*allow_torn_tail=*/false, &out, &valid).ok());
  EXPECT_EQ(valid, bytes.size());
  ExpectRecordsEqual(out, recs, 2);
}

TEST(JournalTest, TruncationSweepTornVsStrict) {
  const auto recs = TwoRecords();
  const size_t len1 =
      EncodeJournalRecord(recs[0].shard, recs[0].seq,
                          std::span<const Event>(recs[0].events))
          .size();
  const std::string bytes = EncodeAll(recs);

  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    const std::string_view prefix(bytes.data(), cut);
    std::vector<JournalRecord> out;
    size_t valid = 0;
    // Torn mode: every truncation point is a clean stop, yielding
    // exactly the records that fit entirely before the cut.
    const Status torn = DecodeJournal(prefix, true, &out, &valid);
    ASSERT_TRUE(torn.ok()) << "cut=" << cut << ": " << torn.ToString();
    const size_t expect =
        cut >= bytes.size() ? 2 : (cut >= len1 ? 1 : 0);
    ExpectRecordsEqual(out, recs, expect);
    EXPECT_LE(valid, cut);

    // Strict mode: only exact record boundaries are acceptable.
    std::vector<JournalRecord> out2;
    size_t valid2 = 0;
    const Status strict = DecodeJournal(prefix, false, &out2, &valid2);
    const bool boundary =
        cut == 0 || cut == len1 || cut == bytes.size();
    EXPECT_EQ(strict.ok(), boundary) << "cut=" << cut;
    if (!strict.ok()) {
      EXPECT_EQ(strict.code(), StatusCode::kIoError) << "cut=" << cut;
    }
  }
}

TEST(JournalTest, BitFlipSweepTearsOnlyAtTheTail) {
  const auto recs = TwoRecords();
  const size_t len1 =
      EncodeJournalRecord(recs[0].shard, recs[0].seq,
                          std::span<const Event>(recs[0].events))
          .size();
  const std::string bytes = EncodeAll(recs);

  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xff);

    // Torn mode: a flip in the LAST record is indistinguishable from a
    // torn append and ends history cleanly after record 1. A flip in
    // record 1 leaves an intact record 2 beyond the damage — that can
    // never be a tear, so it must fail loudly instead of silently
    // truncating acknowledged history. (CRC-32 detects any burst error
    // shorter than 32 bits, so a single flipped byte is always caught.)
    std::vector<JournalRecord> out;
    size_t valid = 0;
    const Status torn = DecodeJournal(mutated, true, &out, &valid);
    if (i < len1) {
      EXPECT_EQ(torn.code(), StatusCode::kIoError) << "flip@" << i;
    } else {
      ASSERT_TRUE(torn.ok()) << "flip@" << i << ": " << torn.ToString();
      ASSERT_EQ(out.size(), 1u) << "flip@" << i;
      ExpectRecordsEqual({out[0]}, recs, 1);
    }

    // Strict mode: every flip must surface as an error.
    std::vector<JournalRecord> out2;
    size_t valid2 = 0;
    EXPECT_FALSE(DecodeJournal(mutated, false, &out2, &valid2).ok())
        << "flip@" << i;
  }
}

TEST(JournalTest, ZeroFilledTailIsATornTailNotMidFileCorruption) {
  // Some filesystems (delayed allocation + power loss) leave a
  // zero-filled region where the torn append would be. An 8-byte zero
  // header decodes as len=0 crc=0, and Crc32("")==0 — the forward scan
  // must not mistake that for an intact record and fail recovery.
  const auto recs = TwoRecords();
  const std::string bytes = EncodeAll(recs) + std::string(4096, '\0');

  std::vector<JournalRecord> out;
  size_t valid = 0;
  const Status torn = DecodeJournal(bytes, true, &out, &valid);
  ASSERT_TRUE(torn.ok()) << torn.ToString();
  ExpectRecordsEqual(out, recs, 2);
  EXPECT_EQ(valid, bytes.size() - 4096);

  std::vector<JournalRecord> out2;
  size_t valid2 = 0;
  EXPECT_FALSE(DecodeJournal(bytes, false, &out2, &valid2).ok());
}

TEST(JournalTest, IntactRecordBeyondDamageFailsEvenInTornMode) {
  // Surgical version of the bit-flip sweep's property: damage in
  // record 1 of 3 (torn mode) is reported as corruption because
  // records 2 and 3 are intact past it — truncating there would drop
  // two acknowledged records, not a torn append.
  auto recs = TwoRecords();
  recs.push_back(recs[0]);
  recs[2].seq = 11;
  const std::string r1 = EncodeJournalRecord(
      recs[0].shard, recs[0].seq, std::span<const Event>(recs[0].events));
  const std::string bytes = EncodeAll(recs);

  std::string mid = bytes;
  mid[r1.size() / 2] = static_cast<char>(mid[r1.size() / 2] ^ 0x01);
  std::vector<JournalRecord> out;
  size_t valid = 0;
  EXPECT_EQ(DecodeJournal(mid, true, &out, &valid).code(),
            StatusCode::kIoError);
}

TEST(JournalTest, StructuralErrorInsideValidCrcIsAlwaysIoError) {
  // A record whose payload checksums correctly but whose event count
  // disagrees with the payload length is corruption that cannot be a
  // torn tail — both modes must reject it.
  std::string payload;
  PutFixed32(&payload, 0);                   // shard
  PutFixed64(&payload, 1);                   // seq
  PutFixed32(&payload, 5);                   // claims 5 events...
  PutI32(&payload, 1);                       // ...carries half of one
  std::string bytes;
  PutFixed32(&bytes, static_cast<uint32_t>(payload.size()));
  PutFixed32(&bytes, Crc32(payload));
  bytes += payload;

  for (bool torn : {true, false}) {
    std::vector<JournalRecord> out;
    size_t valid = 0;
    const Status s = DecodeJournal(bytes, torn, &out, &valid);
    EXPECT_EQ(s.code(), StatusCode::kIoError) << "torn=" << torn;
    EXPECT_TRUE(out.empty());
  }
}

TEST(JournalTest, FileNameRoundTrip) {
  EXPECT_EQ(JournalFileName(7), "journal-000007");
  uint64_t gen = 0;
  EXPECT_TRUE(ParseJournalFileName("journal-000007", &gen));
  EXPECT_EQ(gen, 7u);
  EXPECT_TRUE(ParseJournalFileName(JournalFileName(1234567), &gen));
  EXPECT_EQ(gen, 1234567u);
  EXPECT_FALSE(ParseJournalFileName("journal-", &gen));
  EXPECT_FALSE(ParseJournalFileName("journal-12x", &gen));
  EXPECT_FALSE(ParseJournalFileName("snapshot", &gen));
  EXPECT_FALSE(ParseJournalFileName("journal-000007.tmp", &gen));

  // Overflowing numeric parts must be rejected, not wrapped: a wrapped
  // generation could mis-order replay and misclassify which file gets
  // torn-tail tolerance.
  EXPECT_TRUE(
      ParseJournalFileName("journal-18446744073709551615", &gen));  // 2^64-1
  EXPECT_EQ(gen, UINT64_MAX);
  EXPECT_FALSE(
      ParseJournalFileName("journal-18446744073709551616", &gen));  // 2^64
  EXPECT_FALSE(ParseJournalFileName("journal-99999999999999999999", &gen));
  EXPECT_FALSE(
      ParseJournalFileName("journal-00018446744073709551616", &gen));
}

TEST(JournalTest, FailedAppendSealsTheWriter) {
  // /dev/full accepts the open but fails every write with ENOSPC — the
  // same shape as a disk-full episode in production.
  if (::access("/dev/full", W_OK) != 0) {
    GTEST_SKIP() << "/dev/full not available";
  }
  auto writer = JournalWriter::Open("/dev/full", /*fsync_each=*/false);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  const auto recs = TwoRecords();

  const Status first = (*writer)->Append(
      recs[0].shard, recs[0].seq, std::span<const Event>(recs[0].events));
  EXPECT_EQ(first.code(), StatusCode::kIoError) << first.ToString();
  EXPECT_TRUE((*writer)->failed());

  // Sealed: the damaged generation must never accept another record,
  // or replay could order it against the failed one.
  const Status second = (*writer)->Append(
      recs[1].shard, recs[1].seq, std::span<const Event>(recs[1].events));
  EXPECT_EQ(second.code(), StatusCode::kFailedPrecondition)
      << second.ToString();
}

TEST(JournalTest, PoisonForTestingMatchesRealSealBehavior) {
  TempDir dir;
  const std::string path = dir.file("journal-000001");
  auto recs = TwoRecords();
  auto writer = JournalWriter::Open(path, /*fsync_each=*/false);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)
                  ->Append(recs[0].shard, recs[0].seq,
                           std::span<const Event>(recs[0].events))
                  .ok());
  (*writer)->PoisonForTesting();
  EXPECT_TRUE((*writer)->failed());
  EXPECT_EQ((*writer)
                ->Append(recs[1].shard, recs[1].seq,
                         std::span<const Event>(recs[1].events))
                .code(),
            StatusCode::kFailedPrecondition);
  // The record accepted before the seal is still intact on disk.
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::vector<JournalRecord> out;
  size_t valid = 0;
  ASSERT_TRUE(DecodeJournal(*bytes, false, &out, &valid).ok());
  ExpectRecordsEqual(out, recs, 1);
}

TEST(JournalTest, WriterAppendsReadableRecordsAcrossReopen) {
  TempDir dir;
  const std::string path = dir.file("journal-000001");
  auto recs = TwoRecords();
  {
    auto writer = JournalWriter::Open(path, /*fsync_each=*/false);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE((*writer)
                    ->Append(recs[0].shard, recs[0].seq,
                             std::span<const Event>(recs[0].events))
                    .ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  {
    // Reopen appends; it must not truncate what is already there.
    auto writer = JournalWriter::Open(path, /*fsync_each=*/true);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)
                    ->Append(recs[1].shard, recs[1].seq,
                             std::span<const Event>(recs[1].events))
                    .ok());
  }
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::vector<JournalRecord> out;
  size_t valid = 0;
  ASSERT_TRUE(DecodeJournal(*bytes, false, &out, &valid).ok());
  ExpectRecordsEqual(out, recs, 2);
}

// ----------------------------------------------------------------- fs

TEST(FsTest, WriteFileAtomicRoundTripAndReplace) {
  TempDir dir;
  const std::string path = dir.file("blob");
  ASSERT_TRUE(WriteFileAtomic(path, "first version", false).ok());
  auto got = ReadFileToString(path);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "first version");

  ASSERT_TRUE(WriteFileAtomic(path, "second version", true).ok());
  got = ReadFileToString(path);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "second version");
  EXPECT_FALSE(PathExists(path + ".tmp"));  // no droppings on success
}

TEST(FsTest, WriteFileAtomicFailureLeavesOldFileIntact) {
  TempDir dir;
  const std::string path = dir.file("blob");
  ASSERT_TRUE(WriteFileAtomic(path, "precious", false).ok());
  // Occupy the temp path with a directory: the new write cannot even
  // open its temp file, and must leave the old contents untouched.
  ASSERT_TRUE(EnsureDir(path + ".tmp").ok());
  const Status failed = WriteFileAtomic(path, "clobber", false);
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  auto got = ReadFileToString(path);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "precious");
  ::rmdir((path + ".tmp").c_str());
}

TEST(FsTest, DirHelpers) {
  TempDir dir;
  const std::string sub = dir.file("sub");
  ASSERT_TRUE(EnsureDir(sub).ok());
  ASSERT_TRUE(EnsureDir(sub).ok());  // idempotent
  EXPECT_TRUE(PathExists(sub));
  EXPECT_FALSE(PathExists(dir.file("nope")));

  ASSERT_TRUE(WriteFileAtomic(sub + "/a", "x", false).ok());
  ASSERT_TRUE(WriteFileAtomic(sub + "/b", "y", false).ok());
  auto names = ListDirFiles(sub);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);  // regular files only, no . / ..

  ASSERT_TRUE(RemoveFileIfExists(sub + "/a").ok());
  ASSERT_TRUE(RemoveFileIfExists(sub + "/a").ok());  // missing is OK
  names = ListDirFiles(sub);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 1u);
  EXPECT_FALSE(ReadFileToString(sub + "/a").ok());
}

// ------------------------------------------------- index serialization

std::vector<float> MakeVec(size_t dim, uint64_t seed) {
  Rng rng(seed * 977 + 13);
  std::vector<float> v(dim);
  for (size_t i = 0; i < dim; ++i) v[i] = rng.UniformFloat() * 2.0f - 1.0f;
  return v;
}

void ExpectSameSearch(const index::VectorIndex& a,
                      const index::VectorIndex& b, size_t dim, size_t k) {
  for (uint64_t q = 0; q < 5; ++q) {
    const std::vector<float> query = MakeVec(dim, 9000 + q);
    auto ra = a.Search(query.data(), k);
    auto rb = b.Search(query.data(), k);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    ASSERT_EQ(ra->size(), rb->size()) << "query " << q;
    for (size_t i = 0; i < ra->size(); ++i) {
      EXPECT_EQ((*ra)[i].id, (*rb)[i].id) << "query " << q << " rank " << i;
      EXPECT_EQ((*ra)[i].score, (*rb)[i].score);  // bit-exact, not approx
    }
  }
}

TEST(IndexSerializeTest, BruteForceRoundTripSlotAndNonSlotIds) {
  constexpr size_t kDim = 8;
  for (const bool slot_ids : {true, false}) {
    index::BruteForceIndex a(kDim, index::Metric::kCosine);
    for (int i = 0; i < 30; ++i) {
      const int id = slot_ids ? i : i * 7 + 3;
      ASSERT_TRUE(a.Add(id, MakeVec(kDim, i).data()).ok());
    }
    std::string blob;
    a.SerializeTo(&blob);
    index::BruteForceIndex b(kDim, index::Metric::kCosine);
    ASSERT_TRUE(b.DeserializeFrom(blob).ok());
    EXPECT_EQ(b.size(), a.size());
    ExpectSameSearch(a, b, kDim, 10);
  }
}

TEST(IndexSerializeTest, HnswRoundTripContinuesIdentically) {
  constexpr size_t kDim = 8;
  index::HnswIndex::Options opts;
  opts.m = 6;
  opts.ef_construction = 30;
  opts.ef_search = 30;
  index::HnswIndex a(kDim, index::Metric::kCosine, opts);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(a.Add(i, MakeVec(kDim, i).data()).ok());
  }
  // Overwrite a few ids so the blob carries tombstoned graph nodes.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(a.Add(i, MakeVec(kDim, 100 + i).data()).ok());
  }
  std::string blob;
  a.SerializeTo(&blob);
  index::HnswIndex b(kDim, index::Metric::kCosine, opts);
  ASSERT_TRUE(b.DeserializeFrom(blob).ok());
  EXPECT_EQ(b.size(), a.size());
  EXPECT_EQ(b.num_graph_nodes(), a.num_graph_nodes());
  ExpectSameSearch(a, b, kDim, 10);

  // The critical persistence property: a restored index must evolve
  // bit-identically — that requires the serialized RNG state, since
  // future level draws shape the graph.
  for (int i = 40; i < 60; ++i) {
    const std::vector<float> v = MakeVec(kDim, i);
    ASSERT_TRUE(a.Add(i, v.data()).ok());
    ASSERT_TRUE(b.Add(i, v.data()).ok());
  }
  EXPECT_EQ(b.num_graph_nodes(), a.num_graph_nodes());
  ExpectSameSearch(a, b, kDim, 10);
}

TEST(IndexSerializeTest, IvfRoundTripContinuesIdentically) {
  constexpr size_t kDim = 8;
  index::IvfFlatIndex::Options opts;
  opts.nlist = 8;
  opts.nprobe = 3;
  index::IvfFlatIndex a(kDim, index::Metric::kCosine, opts);
  std::vector<float> train;
  for (int i = 0; i < 32; ++i) {
    const std::vector<float> v = MakeVec(kDim, 500 + i);
    train.insert(train.end(), v.begin(), v.end());
  }
  ASSERT_TRUE(a.Train(train, 32).ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(a.Add(i, MakeVec(kDim, i).data()).ok());
  }
  std::string blob;
  a.SerializeTo(&blob);

  // The restoring index is constructed with a *different* nlist: the
  // blob's trained geometry is authoritative (a bootstrap-clamped nlist
  // cannot be re-derived by the restoring process).
  index::IvfFlatIndex::Options other = opts;
  other.nlist = 64;
  index::IvfFlatIndex b(kDim, index::Metric::kCosine, other);
  ASSERT_TRUE(b.DeserializeFrom(blob).ok());
  EXPECT_TRUE(b.trained());
  EXPECT_EQ(b.size(), a.size());
  ExpectSameSearch(a, b, kDim, 10);

  for (int i = 20; i < 50; ++i) {  // reassignments + fresh ids
    const std::vector<float> v = MakeVec(kDim, 2000 + i);
    ASSERT_TRUE(a.Add(i, v.data()).ok());
    ASSERT_TRUE(b.Add(i, v.data()).ok());
  }
  ExpectSameSearch(a, b, kDim, 10);
}

TEST(IndexSerializeTest, UntrainedIvfRoundTrips) {
  index::IvfFlatIndex::Options opts;
  opts.nlist = 8;
  index::IvfFlatIndex a(4, index::Metric::kCosine, opts);
  std::string blob;
  a.SerializeTo(&blob);
  index::IvfFlatIndex b(4, index::Metric::kCosine, opts);
  ASSERT_TRUE(b.DeserializeFrom(blob).ok());
  EXPECT_FALSE(b.trained());
  EXPECT_EQ(b.size(), 0u);
}

TEST(IndexSerializeTest, TruncationSweepRejectsEveryPrefix) {
  constexpr size_t kDim = 4;
  // One blob per backend, swept in full: every strict prefix must be a
  // clean error that leaves the (pre-populated) target untouched.
  std::vector<std::string> blobs;
  {
    index::BruteForceIndex bf(kDim, index::Metric::kCosine);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(bf.Add(i, MakeVec(kDim, i).data()).ok());
    }
    blobs.emplace_back();
    bf.SerializeTo(&blobs.back());
  }
  {
    index::HnswIndex::Options opts;
    opts.m = 4;
    index::HnswIndex h(kDim, index::Metric::kCosine, opts);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(h.Add(i, MakeVec(kDim, i).data()).ok());
    }
    blobs.emplace_back();
    h.SerializeTo(&blobs.back());
  }
  {
    index::IvfFlatIndex::Options opts;
    opts.nlist = 2;
    index::IvfFlatIndex ivf(kDim, index::Metric::kCosine, opts);
    std::vector<float> train;
    for (int i = 0; i < 8; ++i) {
      const std::vector<float> v = MakeVec(kDim, i);
      train.insert(train.end(), v.begin(), v.end());
    }
    ASSERT_TRUE(ivf.Train(train, 8).ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(ivf.Add(i, MakeVec(kDim, i).data()).ok());
    }
    blobs.emplace_back();
    ivf.SerializeTo(&blobs.back());
  }

  for (const std::string& blob : blobs) {
    // Deserialize every strict prefix into a target that already holds
    // different data; the target must come through unscathed.
    index::BruteForceIndex bf_target(kDim, index::Metric::kCosine);
    index::HnswIndex hnsw_target(kDim, index::Metric::kCosine, {});
    index::IvfFlatIndex ivf_target(kDim, index::Metric::kCosine, {});
    ASSERT_TRUE(bf_target.Add(77, MakeVec(kDim, 77).data()).ok());
    ASSERT_TRUE(hnsw_target.Add(77, MakeVec(kDim, 77).data()).ok());
    index::VectorIndex* targets[] = {&bf_target, &hnsw_target, &ivf_target};
    for (size_t cut = 0; cut < blob.size(); ++cut) {
      const std::string_view prefix(blob.data(), cut);
      for (index::VectorIndex* target : targets) {
        const size_t size_before = target->size();
        EXPECT_FALSE(target->DeserializeFrom(prefix).ok())
            << "cut=" << cut;
        EXPECT_EQ(target->size(), size_before) << "cut=" << cut;
      }
    }
    // Wrong-backend blobs at full length are also rejected cleanly
    // (tag mismatch), except into the matching backend.
    int accepted = 0;
    for (index::VectorIndex* target : targets) {
      if (target->DeserializeFrom(blob).ok()) ++accepted;
    }
    EXPECT_EQ(accepted, 1);
  }
}

// --------------------------------------------- snapshot framing + CRC

class SnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig cfg;
    cfg.name = "persist-test";
    cfg.num_users = 60;
    cfg.num_items = 90;
    cfg.num_clusters = 6;
    cfg.min_actions = 8;
    cfg.max_actions = 16;
    cfg.seed = 91;
    data::SyntheticGenerator gen(cfg);
    auto ds = gen.Generate();
    SCCF_CHECK(ds.ok());
    dataset_ = new data::Dataset(std::move(ds).value());
    split_ = new data::LeaveOneOutSplit(*dataset_);
    models::Fism::Options fopts;
    fopts.dim = 8;
    fopts.epochs = 0;  // untrained: deterministic weights, instant Fit
    fism_ = new models::Fism(fopts);
    SCCF_CHECK(fism_->Fit(*split_).ok());
  }
  static void TearDownTestSuite() {
    delete fism_;
    delete split_;
    delete dataset_;
    fism_ = nullptr;
    split_ = nullptr;
    dataset_ = nullptr;
  }

  static RealTimeService::Options BaseOptions() {
    RealTimeService::Options opts;
    opts.beta = 8;
    opts.num_shards = 3;
    return opts;
  }

  /// A bootstrapped service with a few ingested batches on top, so
  /// histories, vote lists, staged upserts, and journal seqs are all
  /// non-trivial.
  static std::unique_ptr<RealTimeService> MakeService(
      const RealTimeService::Options& opts, bool ingest = true) {
    auto service = std::make_unique<RealTimeService>(*fism_, opts);
    SCCF_CHECK(service->BootstrapFromSplit(*split_).ok());
    if (ingest) {
      const int num_items = static_cast<int>(dataset_->num_items());
      for (int step = 0; step < 4; ++step) {
        std::vector<Event> batch;
        for (int u = 0; u < 12; ++u) {
          batch.push_back({u, (u * 13 + step * 5) % num_items, step});
        }
        batch.push_back({7001, (step * 3 + 1) % num_items, step});
        SCCF_CHECK(service
                       ->OnInteractionBatch(
                           std::span<const Event>(batch), false)
                       .ok());
      }
    }
    return service;
  }

  /// User-facing state equality over a sample of users (histories,
  /// votes, neighborhoods, recommendations) — the same bar the engine
  /// equivalence tests use.
  static void ExpectSameState(const RealTimeService& a,
                              const RealTimeService& b) {
    ASSERT_EQ(a.num_users(), b.num_users());
    for (int user : {0, 1, 5, 11, 40, 7001}) {
      auto h_a = a.History(user);
      auto h_b = b.History(user);
      ASSERT_EQ(h_a.ok(), h_b.ok()) << "user " << user;
      if (h_a.ok()) {
        EXPECT_EQ(*h_a, *h_b) << "user " << user;
      }
      auto n_a = a.Neighbors(user);
      auto n_b = b.Neighbors(user);
      ASSERT_TRUE(n_a.ok()) << "user " << user;
      ASSERT_TRUE(n_b.ok()) << "user " << user;
      ASSERT_EQ(n_a->size(), n_b->size()) << "user " << user;
      for (size_t i = 0; i < n_a->size(); ++i) {
        EXPECT_EQ((*n_a)[i].id, (*n_b)[i].id) << "user " << user;
        EXPECT_EQ((*n_a)[i].score, (*n_b)[i].score) << "user " << user;
      }
      auto r_a = a.RecommendUserBased(user, 10);
      auto r_b = b.RecommendUserBased(user, 10);
      ASSERT_TRUE(r_a.ok()) << "user " << user;
      ASSERT_TRUE(r_b.ok()) << "user " << user;
      ASSERT_EQ(r_a->size(), r_b->size()) << "user " << user;
      for (size_t i = 0; i < r_a->size(); ++i) {
        EXPECT_EQ((*r_a)[i].id, (*r_b)[i].id) << "user " << user;
        EXPECT_EQ((*r_a)[i].score, (*r_b)[i].score) << "user " << user;
      }
    }
  }

  static data::Dataset* dataset_;
  static data::LeaveOneOutSplit* split_;
  static models::Fism* fism_;
};

data::Dataset* SnapshotTest::dataset_ = nullptr;
data::LeaveOneOutSplit* SnapshotTest::split_ = nullptr;
models::Fism* SnapshotTest::fism_ = nullptr;

TEST_F(SnapshotTest, EncodeDecodeRoundTrip) {
  auto service = MakeService(BaseOptions());
  auto bytes = EncodeSnapshot(*service);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  SnapshotMeta meta;
  std::vector<std::string_view> shards;
  ASSERT_TRUE(DecodeSnapshot(*bytes, &meta, &shards).ok());
  EXPECT_EQ(meta.num_shards, 3u);
  EXPECT_EQ(meta.dim, 8u);
  EXPECT_EQ(shards.size(), 3u);
}

TEST_F(SnapshotTest, RestoreReproducesFullState) {
  // Staged upserts included: threshold 4 leaves undrained rows in the
  // write buffers, which the snapshot must carry.
  auto opts = BaseOptions();
  opts.compaction_threshold = 4;
  auto source = MakeService(opts);
  auto bytes = EncodeSnapshot(*source);
  ASSERT_TRUE(bytes.ok());

  auto target = MakeService(opts, /*ingest=*/false);
  SnapshotMeta meta;
  std::vector<std::string_view> shards;
  ASSERT_TRUE(DecodeSnapshot(*bytes, &meta, &shards).ok());
  for (size_t s = 0; s < shards.size(); ++s) {
    ASSERT_TRUE(target->RestoreShard(s, shards[s]).ok()) << "shard " << s;
  }
  ExpectSameState(*source, *target);
  for (size_t s = 0; s < shards.size(); ++s) {
    EXPECT_EQ(target->ShardJournalSeq(s), source->ShardJournalSeq(s));
  }
}

TEST_F(SnapshotTest, WriteLoadFileRoundTrip) {
  TempDir dir;
  auto source = MakeService(BaseOptions());
  const std::string path = dir.file("snapshot");
  ASSERT_TRUE(WriteSnapshotFile(*source, path).ok());
  auto target = MakeService(BaseOptions(), /*ingest=*/false);
  ASSERT_TRUE(LoadSnapshotFile(path, target.get()).ok());
  ExpectSameState(*source, *target);
}

TEST_F(SnapshotTest, LoadValidatesMetaAgainstService) {
  TempDir dir;
  auto source = MakeService(BaseOptions());
  const std::string path = dir.file("snapshot");
  ASSERT_TRUE(WriteSnapshotFile(*source, path).ok());

  auto wrong_shards = BaseOptions();
  wrong_shards.num_shards = 2;
  auto t1 = MakeService(wrong_shards, false);
  EXPECT_EQ(LoadSnapshotFile(path, t1.get()).code(),
            StatusCode::kInvalidArgument);

  auto wrong_index = BaseOptions();
  wrong_index.index_kind = core::IndexKind::kHnsw;
  auto t2 = MakeService(wrong_index, false);
  EXPECT_EQ(LoadSnapshotFile(path, t2.get()).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, BitFlipAndTruncationSweepFailCleanly) {
 // The sweep runs for both storage modes: the sq8 snapshot carries the
 // quantized index sections (storage byte, codes, scale/offset params)
 // that fp32 blobs never exercise.
 for (auto storage : {quant::Storage::kFp32, quant::Storage::kSq8}) {
  SCOPED_TRACE(quant::StorageName(storage));
  auto opts = BaseOptions();
  opts.storage = storage;
  auto service = MakeService(opts);
  auto encoded = EncodeSnapshot(*service);
  ASSERT_TRUE(encoded.ok());
  const std::string& bytes = *encoded;
  ASSERT_GT(bytes.size(), 64u);

  // Every byte of the header region plus a stride across the body:
  // magic, version, every section's tag/len/crc, and payload bytes all
  // get hit. Every flip must be a clean decode error (all content is
  // CRC-covered; CRC-32 catches any single-byte burst).
  std::vector<size_t> positions;
  for (size_t i = 0; i < 64; ++i) positions.push_back(i);
  const size_t stride = std::max<size_t>(1, bytes.size() / 256);
  for (size_t i = 64; i < bytes.size(); i += stride) positions.push_back(i);
  positions.push_back(bytes.size() - 1);

  SnapshotMeta meta;
  std::vector<std::string_view> shards;
  for (size_t pos : positions) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0xff);
    EXPECT_FALSE(DecodeSnapshot(mutated, &meta, &shards).ok())
        << "flip@" << pos;
  }

  // Truncations: the end marker ('E' section) is how a complete file
  // proves itself, so every strict prefix must be rejected.
  for (size_t pos : positions) {
    EXPECT_FALSE(
        DecodeSnapshot(std::string_view(bytes.data(), pos), &meta, &shards)
            .ok())
        << "cut@" << pos;
  }

  // And end-to-end: a corrupted snapshot file fails to load with a
  // clean error, leaving the target service alive and serving.
  TempDir dir;
  const std::string path = dir.file("snapshot");
  std::string mutated = bytes;
  mutated[bytes.size() / 2] =
      static_cast<char>(mutated[bytes.size() / 2] ^ 0xff);
  WriteBytes(path, mutated);
  auto target = MakeService(opts, false);
  EXPECT_FALSE(LoadSnapshotFile(path, target.get()).ok());
  EXPECT_TRUE(target->Neighbors(0).ok());  // still serving
 }
}

TEST_F(SnapshotTest, RestoreRejectsCorruptShardPayloadUnchanged) {
  auto source = MakeService(BaseOptions());
  auto bytes = EncodeSnapshot(*source);
  ASSERT_TRUE(bytes.ok());
  SnapshotMeta meta;
  std::vector<std::string_view> shards;
  ASSERT_TRUE(DecodeSnapshot(*bytes, &meta, &shards).ok());

  auto target = MakeService(BaseOptions());
  auto before = target->History(0);
  ASSERT_TRUE(before.ok());
  // Truncated shard payload: RestoreShard validates everything before
  // committing, so the shard must be untouched.
  const std::string_view payload = shards[target->ShardOf(0)];
  for (const size_t cut : {payload.size() / 3, payload.size() - 1}) {
    EXPECT_FALSE(
        target->RestoreShard(target->ShardOf(0),
                             std::string_view(payload.data(), cut))
            .ok());
    auto after = target->History(0);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*after, *before);
  }
}

// ------------------------------------------------------- sq8 storage

/// Extracts the length-prefixed index blob from an ExportShard payload
/// (after the journal seq and the two int-list maps).
std::string_view ShardIndexBlob(std::string_view payload) {
  ByteReader r(payload);
  uint64_t seq = 0;
  SCCF_CHECK(r.ReadFixed64(&seq).ok());
  for (int m = 0; m < 2; ++m) {
    uint64_t count = 0;
    SCCF_CHECK(r.ReadFixed64(&count).ok());
    for (uint64_t e = 0; e < count; ++e) {
      int32_t v = 0;
      SCCF_CHECK(r.ReadI32(&v).ok());
      uint64_t len = 0;
      SCCF_CHECK(r.ReadFixed64(&len).ok());
      for (uint64_t i = 0; i < len; ++i) SCCF_CHECK(r.ReadI32(&v).ok());
    }
  }
  std::string_view blob;
  SCCF_CHECK(r.ReadLengthPrefixed(&blob).ok());
  return blob;
}

TEST_F(SnapshotTest, Sq8SnapshotRecoversBitIdenticalShardBlobs) {
  auto opts = BaseOptions();
  opts.storage = quant::Storage::kSq8;
  auto source = MakeService(opts);
  auto encoded = EncodeSnapshot(*source);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();

  SnapshotMeta meta;
  std::vector<std::string_view> shards;
  ASSERT_TRUE(DecodeSnapshot(*encoded, &meta, &shards).ok());
  EXPECT_EQ(meta.storage, static_cast<uint32_t>(quant::Storage::kSq8));

  auto target = MakeService(opts, /*ingest=*/false);
  for (size_t s = 0; s < shards.size(); ++s) {
    ASSERT_TRUE(target->RestoreShard(s, shards[s]).ok()) << "shard " << s;
  }
  ExpectSameState(*source, *target);

  // The quantized blobs — int8 codes plus per-row scale/offset — survive
  // the snapshot byte-for-byte: a restored shard re-exports the
  // identical index blob because codes are stored verbatim, never
  // re-encoded from decoded floats.
  for (size_t s = 0; s < shards.size(); ++s) {
    std::string src_payload, dst_payload;
    ASSERT_TRUE(source->ExportShard(s, &src_payload).ok());
    ASSERT_TRUE(target->ExportShard(s, &dst_payload).ok());
    EXPECT_EQ(ShardIndexBlob(src_payload), ShardIndexBlob(dst_payload))
        << "shard " << s;
  }
}

TEST_F(SnapshotTest, LoadRejectsStorageModeMismatch) {
  TempDir dir;
  auto sq8_opts = BaseOptions();
  sq8_opts.storage = quant::Storage::kSq8;
  auto source = MakeService(sq8_opts);
  const std::string path = dir.file("snapshot");
  ASSERT_TRUE(WriteSnapshotFile(*source, path).ok());

  // An fp32 service must refuse an sq8 snapshot outright (and stay
  // alive) rather than feed quantized blobs into float row storage.
  auto target = MakeService(BaseOptions(), /*ingest=*/false);
  const Status st = LoadSnapshotFile(path, target.get());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("storage"), std::string::npos)
      << st.ToString();
  EXPECT_TRUE(target->Neighbors(0).ok());  // still serving
}

// ------------------------------------ nn checkpoint hardening (pins)

std::string ValidCheckpointBytes() {
  // magic | version | count=1 | name_len=1 'a' | rank=2 | 2x2 | 4 floats
  std::string b;
  b.append("SCCFCKPT", 8);
  PutFixed32(&b, 1);
  PutFixed32(&b, 1);
  PutFixed32(&b, 1);
  b += 'a';
  PutFixed32(&b, 2);
  PutFixed64(&b, 2);
  PutFixed64(&b, 2);
  for (float f : {1.0f, 2.0f, 3.0f, 4.0f}) PutF32(&b, f);
  return b;
}

TEST(CheckpointFaultTest, HandCraftedCheckpointLoads) {
  TempDir dir;
  const std::string path = dir.file("ckpt");
  WriteBytes(path, ValidCheckpointBytes());
  nn::Parameter p("a", Tensor::Zeros({2, 2}));
  ASSERT_TRUE(nn::LoadParameters(path, {&p}).ok());
  EXPECT_EQ(p.value.data()[0], 1.0f);
  EXPECT_EQ(p.value.data()[3], 4.0f);
}

TEST(CheckpointFaultTest, FaultMatrix) {
  TempDir dir;
  const std::string path = dir.file("ckpt");
  const std::string valid = ValidCheckpointBytes();
  nn::Parameter p("a", Tensor::Zeros({2, 2}));

  struct Case {
    const char* name;
    std::string bytes;
    StatusCode code;
  };
  std::vector<Case> cases;

  {  // bad magic
    std::string b = valid;
    b[0] = 'X';
    cases.push_back({"bad magic", b, StatusCode::kInvalidArgument});
  }
  {  // unsupported version
    std::string b = valid;
    b[8] = 2;
    cases.push_back({"version", b, StatusCode::kInvalidArgument});
  }
  {  // name_len beyond the 4096 cap
    std::string b = valid.substr(0, 16);
    PutFixed32(&b, 5000);
    b += valid.substr(20);
    cases.push_back({"name_len cap", b, StatusCode::kIoError});
  }
  {  // rank beyond the cap of 2
    std::string b = valid.substr(0, 21);
    PutFixed32(&b, 3);
    b += valid.substr(25);
    cases.push_back({"rank cap", b, StatusCode::kIoError});
  }
  {  // dims whose product wraps size_t: 2^40 x 2^40 "fits" mod 2^64
    std::string b = valid.substr(0, 25);
    PutFixed64(&b, uint64_t{1} << 40);
    PutFixed64(&b, uint64_t{1} << 40);
    cases.push_back({"dim overflow", b, StatusCode::kIoError});
  }
  {  // truncated float payload
    cases.push_back({"truncated payload", valid.substr(0, valid.size() - 6),
                     StatusCode::kIoError});
  }
  {  // the same parameter twice
    std::string b = valid;
    b += valid.substr(16);                    // second copy of record 'a'
    std::string fixed = b.substr(0, 12);
    PutFixed32(&fixed, 2);                    // count = 2
    fixed += b.substr(16);
    cases.push_back({"duplicate record", fixed,
                     StatusCode::kInvalidArgument});
  }

  for (const Case& c : cases) {
    WriteBytes(path, c.bytes);
    // Seed the target with sentinels; a rejected checkpoint must leave
    // them bit-identical (the all-or-nothing staging pin).
    for (size_t i = 0; i < 4; ++i) p.value.data()[i] = -9.0f;
    const Status s = nn::LoadParameters(path, {&p});
    EXPECT_EQ(s.code(), c.code) << c.name << ": " << s.ToString();
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(p.value.data()[i], -9.0f) << c.name << " mutated target";
    }
  }
}

TEST(CheckpointFaultTest, FailedMultiParamLoadLeavesAllTargetsUntouched) {
  // Two-parameter checkpoint where the SECOND record mismatches: before
  // the staging fix, the first parameter was already overwritten by the
  // time the error surfaced.
  TempDir dir;
  const std::string path = dir.file("ckpt");
  Rng rng(11);
  nn::Parameter a("a", Tensor::TruncatedNormal({2, 2}, 0.5f, rng));
  nn::Parameter b("b", Tensor::TruncatedNormal({1, 3}, 0.5f, rng));
  ASSERT_TRUE(nn::SaveParameters(path, {&a, &b}).ok());

  nn::Parameter a2("a", Tensor::Full({2, 2}, 7.0f));
  nn::Parameter b2("b", Tensor::Full({1, 4}, 7.0f));  // shape mismatch
  EXPECT_EQ(nn::LoadParameters(path, {&a2, &b2}).code(),
            StatusCode::kInvalidArgument);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a2.value.data()[i], 7.0f) << "a2 partially committed";
  }
}

TEST(CheckpointFaultTest, CountMismatchRejectedWithoutCommit) {
  // File carries one parameter, target expects two: all-or-nothing.
  TempDir dir;
  const std::string path = dir.file("ckpt");
  WriteBytes(path, ValidCheckpointBytes());
  nn::Parameter a("a", Tensor::Full({2, 2}, 7.0f));
  nn::Parameter b("b", Tensor::Full({1, 3}, 7.0f));
  EXPECT_EQ(nn::LoadParameters(path, {&a, &b}).code(),
            StatusCode::kInvalidArgument);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(a.value.data()[i], 7.0f);
}

TEST(CheckpointFaultTest, AtomicSaveFailureKeepsOldCheckpoint) {
  TempDir dir;
  const std::string path = dir.file("ckpt");
  Rng rng(13);
  nn::Parameter a("a", Tensor::TruncatedNormal({2, 2}, 0.5f, rng));
  ASSERT_TRUE(nn::SaveParameters(path, {&a}).ok());
  EXPECT_FALSE(PathExists(path + ".tmp"));  // clean commit, no droppings

  // Sabotage the temp path: the new save must fail cleanly and the old
  // checkpoint must remain loadable, bit-identical.
  ASSERT_TRUE(EnsureDir(path + ".tmp").ok());
  nn::Parameter changed("a", Tensor::Full({2, 2}, 5.0f));
  EXPECT_EQ(nn::SaveParameters(path, {&changed}).code(),
            StatusCode::kIoError);
  nn::Parameter restored("a", Tensor::Zeros({2, 2}));
  ASSERT_TRUE(nn::LoadParameters(path, {&restored}).ok());
  EXPECT_TRUE(restored.value.AllClose(a.value, 0.0f));
  ::rmdir((path + ".tmp").c_str());
}

}  // namespace
}  // namespace sccf::persist
