#include <gtest/gtest.h>

#include "core/sccf.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/fism.h"
#include "scenario/scenario.h"

namespace sccf::core {
namespace {

// End-to-end regression tripwire: SCCF over FISM on a fixed seeded
// synthetic corpus must reproduce the recorded Recall@10 / NDCG@10 within
// a tolerance band. Any future optimization PR that silently changes
// similarity, normalization, candidate generation, or merger training
// lands outside the band and fails here.
//
// Golden values recorded from the first green build (g++ 12, Release).
// The band is deliberately loose enough to absorb FP reassociation across
// compilers/flags but tight enough to catch algorithmic drift.
constexpr double kGoldenRecallAt10 = 0.2350;
constexpr double kGoldenNdcgAt10 = 0.1259;
constexpr double kTolerance = 0.03;

class SccfGoldenTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig cfg;
    cfg.name = "golden";
    cfg.num_users = 200;
    cfg.num_items = 220;
    cfg.num_clusters = 12;
    cfg.min_actions = 12;
    cfg.max_actions = 40;
    cfg.seed = 20210419;  // arbitrary, fixed
    data::SyntheticGenerator gen(cfg);
    auto ds = gen.Generate();
    SCCF_CHECK(ds.ok());
    dataset_ = new data::Dataset(std::move(ds).value());
    split_ = new data::LeaveOneOutSplit(*dataset_);

    models::Fism::Options fopts;
    fopts.dim = 16;
    fopts.epochs = 8;
    fism_ = new models::Fism(fopts);
    SCCF_CHECK(fism_->Fit(*split_).ok());

    Sccf::Options sopts;
    sopts.num_candidates = 50;
    sccf_ = new Sccf(*fism_, sopts);
    SCCF_CHECK(sccf_->Fit(*split_).ok());
  }
  static void TearDownTestSuite() {
    delete sccf_;
    delete fism_;
    delete split_;
    delete dataset_;
    sccf_ = nullptr;
    fism_ = nullptr;
    split_ = nullptr;
    dataset_ = nullptr;
  }

  static eval::EvalResult EvaluateAt10(const models::Recommender& model) {
    eval::EvalOptions eopts;
    eopts.cutoffs = {10};
    auto result = eval::Evaluate(model, *split_, eopts);
    SCCF_CHECK(result.ok()) << result.status().ToString();
    return *std::move(result);
  }

  static data::Dataset* dataset_;
  static data::LeaveOneOutSplit* split_;
  static models::Fism* fism_;
  static Sccf* sccf_;
};

data::Dataset* SccfGoldenTest::dataset_ = nullptr;
data::LeaveOneOutSplit* SccfGoldenTest::split_ = nullptr;
models::Fism* SccfGoldenTest::fism_ = nullptr;
Sccf* SccfGoldenTest::sccf_ = nullptr;

TEST_F(SccfGoldenTest, RecallAndNdcgWithinGoldenBand) {
  const eval::EvalResult result = EvaluateAt10(*sccf_);
  EXPECT_EQ(result.num_users, dataset_->num_users());
  EXPECT_NEAR(result.HrAt(10), kGoldenRecallAt10, kTolerance)
      << "Recall@10 drifted out of the golden band";
  EXPECT_NEAR(result.NdcgAt(10), kGoldenNdcgAt10, kTolerance)
      << "NDCG@10 drifted out of the golden band";
}

TEST_F(SccfGoldenTest, ImprovesOverBaseModel) {
  // The paper's headline claim in miniature: fusing the user-based local
  // view with the UI global view must not lose to the UI model alone.
  const eval::EvalResult base = EvaluateAt10(*fism_);
  const eval::EvalResult merged = EvaluateAt10(*sccf_);
  EXPECT_GE(merged.NdcgAt(10), base.NdcgAt(10) * 0.95);
  EXPECT_GT(merged.HrAt(10), 0.0);
}

// SQ8 tripwire, separate from the fp32 band: quantizing the user-user
// index to int8 codes may move individual similarities by up to half a
// quantization step, but ranking metrics on the golden corpus must stay
// within a documented distance of the fp32 run. The band (0.02 absolute
// on Recall@10 / NDCG@10) was recorded alongside the fp32 goldens; a
// codec or kernel change that degrades ranking shows up here before it
// shows up in production dashboards.
constexpr double kSq8VsFp32Band = 0.02;

TEST_F(SccfGoldenTest, Sq8RecallWithinDocumentedBandOfFp32) {
  Sccf::Options sopts;
  sopts.num_candidates = 50;
  sopts.user_based.storage = quant::Storage::kSq8;
  Sccf sq8(*fism_, sopts);
  ASSERT_TRUE(sq8.Fit(*split_).ok());

  const eval::EvalResult fp32_result = EvaluateAt10(*sccf_);
  const eval::EvalResult sq8_result = EvaluateAt10(sq8);
  EXPECT_NEAR(sq8_result.HrAt(10), fp32_result.HrAt(10), kSq8VsFp32Band)
      << "SQ8 Recall@10 drifted out of the documented band vs fp32";
  EXPECT_NEAR(sq8_result.NdcgAt(10), fp32_result.NdcgAt(10), kSq8VsFp32Band)
      << "SQ8 NDCG@10 drifted out of the documented band vs fp32";
  // And the absolute tripwire: sq8 must also sit inside the (looser)
  // fp32 golden band, so both modes are pinned to the recorded numbers.
  EXPECT_NEAR(sq8_result.HrAt(10), kGoldenRecallAt10, kTolerance);
  EXPECT_NEAR(sq8_result.NdcgAt(10), kGoldenNdcgAt10, kTolerance);
}

TEST_F(SccfGoldenTest, EvaluationIsDeterministic) {
  // Parallel evaluation must not perturb metrics: rank-by-counting is
  // order-independent, so serial and parallel paths agree exactly.
  eval::EvalOptions serial;
  serial.cutoffs = {10};
  serial.parallel = false;
  auto serial_result = eval::Evaluate(*sccf_, *split_, serial);
  ASSERT_TRUE(serial_result.ok());
  const eval::EvalResult parallel_result = EvaluateAt10(*sccf_);
  EXPECT_DOUBLE_EQ(serial_result->HrAt(10), parallel_result.HrAt(10));
  EXPECT_DOUBLE_EQ(serial_result->NdcgAt(10), parallel_result.NdcgAt(10));
}

// ----------------------------------------------- per-scenario goldens

// Each workload regime from the scenario factory is its own algorithmic
// tripwire: SCCF over FISM on a small seeded spec of every generator must
// reproduce the recorded Recall@10 / NDCG@10, fp32 within the golden band
// and sq8 within the documented quantization band of its own fp32 run.
// A change that only degrades, say, drifting or heavy-tailed corpora now
// fails here even if the original golden corpus stays green.
struct ScenarioGolden {
  const char* generator;
  double recall10;
  double ndcg10;
};

// Goldens recorded from the first green build of the scenario factory
// (g++ 12, Release). Same tolerance philosophy as the corpus above.
constexpr ScenarioGolden kScenarioGoldens[] = {
    {"bursty", 0.1600, 0.0755},
    {"drift", 0.3267, 0.1393},
    {"flash_sale", 0.0667, 0.0279},
    {"hot_shard", 0.1333, 0.0808},
    {"power_law", 0.2467, 0.1627},
};

TEST(ScenarioGoldenTest, PerScenarioBandsFp32AndSq8) {
  for (const ScenarioGolden& golden : kScenarioGoldens) {
    SCOPED_TRACE(golden.generator);
    scenario::ScenarioSpec spec;
    spec.generator = golden.generator;
    spec.num_users = 150;
    spec.num_items = 200;
    spec.events_per_user = 30;
    spec.seed = 20210419;  // same fixed seed as the golden corpus
    auto source = scenario::MakeScenario(spec);
    ASSERT_TRUE(source.ok()) << source.status().ToString();
    auto ds = (*source)->Load();
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    data::LeaveOneOutSplit split(*ds);

    models::Fism::Options fopts;
    fopts.dim = 16;
    fopts.epochs = 6;
    models::Fism fism(fopts);
    ASSERT_TRUE(fism.Fit(split).ok());

    Sccf::Options sopts;
    sopts.num_candidates = 50;
    Sccf fp32(fism, sopts);
    ASSERT_TRUE(fp32.Fit(split).ok());
    eval::EvalOptions eopts;
    eopts.cutoffs = {10};
    auto fp32_result = eval::Evaluate(fp32, split, eopts);
    ASSERT_TRUE(fp32_result.ok());

    EXPECT_NEAR(fp32_result->HrAt(10), golden.recall10, kTolerance)
        << golden.generator << " Recall@10 drifted out of its golden band";
    EXPECT_NEAR(fp32_result->NdcgAt(10), golden.ndcg10, kTolerance)
        << golden.generator << " NDCG@10 drifted out of its golden band";

    sopts.user_based.storage = quant::Storage::kSq8;
    Sccf sq8(fism, sopts);
    ASSERT_TRUE(sq8.Fit(split).ok());
    auto sq8_result = eval::Evaluate(sq8, split, eopts);
    ASSERT_TRUE(sq8_result.ok());
    EXPECT_NEAR(sq8_result->HrAt(10), fp32_result->HrAt(10), kSq8VsFp32Band)
        << golden.generator << " SQ8 Recall@10 outside the fp32 band";
    EXPECT_NEAR(sq8_result->NdcgAt(10), fp32_result->NdcgAt(10),
                kSq8VsFp32Band)
        << golden.generator << " SQ8 NDCG@10 outside the fp32 band";
  }
}

}  // namespace
}  // namespace sccf::core
