// The Engine serving facade: typed request/response validation, the
// batch-of-1 == OnInteraction pin, batched-vs-sequential state
// equivalence through the write buffer + compaction, and pre-compaction
// query freshness (staged upserts merged into searches).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "data/split.h"
#include "data/synthetic.h"
#include "models/fism.h"
#include "online/engine.h"
#include "util/stopwatch.h"

namespace sccf::online {
namespace {

using core::IndexKind;
using core::RealTimeService;

class EngineTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig cfg;
    cfg.name = "engine-test";
    cfg.num_users = 120;
    cfg.num_items = 160;
    cfg.num_clusters = 8;
    cfg.min_actions = 10;
    cfg.max_actions = 30;
    cfg.seed = 53;
    data::SyntheticGenerator gen(cfg);
    auto ds = gen.Generate();
    SCCF_CHECK(ds.ok());
    dataset_ = new data::Dataset(std::move(ds).value());
    split_ = new data::LeaveOneOutSplit(*dataset_);

    models::Fism::Options fopts;
    fopts.dim = 16;
    fopts.epochs = 5;
    fism_ = new models::Fism(fopts);
    SCCF_CHECK(fism_->Fit(*split_).ok());
  }
  static void TearDownTestSuite() {
    delete fism_;
    delete split_;
    delete dataset_;
    fism_ = nullptr;
    split_ = nullptr;
    dataset_ = nullptr;
  }

  static Engine::Options BaseOptions() {
    Engine::Options opts;
    opts.beta = 10;
    opts.num_shards = 4;
    return opts;
  }

  /// A deterministic multi-user event log with interleaved users and two
  /// cold-start users (5000, 5001), shuffled with a fixed seed so batch
  /// grouping has to untangle real interleaving.
  static std::vector<Engine::Event> ShuffledEventLog() {
    std::vector<Engine::Event> events;
    const int num_items = static_cast<int>(dataset_->num_items());
    for (int step = 0; step < 6; ++step) {
      for (int u = 0; u < 30; ++u) {
        events.push_back({u, (u * 11 + step * 7) % num_items, step});
      }
      events.push_back({5000, (step * 13 + 1) % num_items, step});
      events.push_back({5001, (step * 17 + 2) % num_items, step});
    }
    // Shuffle whole steps? No — shuffle events while preserving each
    // user's chronological order: stable-partition by a seeded key on
    // (user, step) would be complex; instead interleave users randomly
    // within each step (order across steps per user stays sorted).
    std::mt19937 rng(1234);
    size_t step_len = 32;  // 30 users + 2 cold per step
    for (size_t lo = 0; lo + step_len <= events.size(); lo += step_len) {
      std::shuffle(events.begin() + lo, events.begin() + lo + step_len, rng);
    }
    return events;
  }

  /// Asserts both services expose identical user-facing state for
  /// `users`: histories, vote lists, neighborhoods, recommendations.
  static void ExpectSameState(const RealTimeService& a,
                              const RealTimeService& b,
                              const std::vector<int>& users) {
    ASSERT_EQ(a.num_users(), b.num_users());
    for (int user : users) {
      auto h_a = a.History(user);
      auto h_b = b.History(user);
      ASSERT_TRUE(h_a.ok()) << "user " << user;
      ASSERT_TRUE(h_b.ok()) << "user " << user;
      EXPECT_EQ(*h_a, *h_b) << "history diverged for user " << user;

      auto v_a = a.VoteItems(user);
      auto v_b = b.VoteItems(user);
      ASSERT_EQ(v_a.ok(), v_b.ok()) << "user " << user;
      if (v_a.ok()) {
        EXPECT_EQ(*v_a, *v_b) << "votes diverged user " << user;
      }

      auto n_a = a.Neighbors(user);
      auto n_b = b.Neighbors(user);
      ASSERT_TRUE(n_a.ok()) << "user " << user;
      ASSERT_TRUE(n_b.ok()) << "user " << user;
      ASSERT_EQ(n_a->size(), n_b->size()) << "user " << user;
      for (size_t i = 0; i < n_a->size(); ++i) {
        EXPECT_EQ((*n_a)[i].id, (*n_b)[i].id)
            << "user " << user << " rank " << i;
        EXPECT_FLOAT_EQ((*n_a)[i].score, (*n_b)[i].score);
      }

      auto r_a = a.RecommendUserBased(user, 10);
      auto r_b = b.RecommendUserBased(user, 10);
      ASSERT_TRUE(r_a.ok()) << "user " << user;
      ASSERT_TRUE(r_b.ok()) << "user " << user;
      ASSERT_EQ(r_a->size(), r_b->size()) << "user " << user;
      for (size_t i = 0; i < r_a->size(); ++i) {
        EXPECT_EQ((*r_a)[i].id, (*r_b)[i].id)
            << "user " << user << " rank " << i;
        EXPECT_FLOAT_EQ((*r_a)[i].score, (*r_b)[i].score);
      }
    }
  }

  static data::Dataset* dataset_;
  static data::LeaveOneOutSplit* split_;
  static models::Fism* fism_;
};

data::Dataset* EngineTest::dataset_ = nullptr;
data::LeaveOneOutSplit* EngineTest::split_ = nullptr;
models::Fism* EngineTest::fism_ = nullptr;

// ---------------------------------------------------------- validation

TEST_F(EngineTest, ServingBeforeBootstrapIsFailedPrecondition) {
  Engine engine(*fism_, BaseOptions());
  EXPECT_EQ(engine.Ingest({{{0, 1, 0}}, true}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.Recommend({0, 5, {}}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.Neighbors({0, std::nullopt}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.History({0}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.Compact().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EngineTest, RecommendValidatesRequest) {
  Engine engine(*fism_, BaseOptions());
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());
  // n = 0 must be rejected, not silently produce an empty list.
  EXPECT_EQ(engine.Recommend({5, 0, {}}).status().code(),
            StatusCode::kInvalidArgument);
  // n < 0 must be InvalidArgument too — the field is signed precisely so
  // a parsed "-7" is rejected instead of wrapping into a huge count.
  EXPECT_EQ(engine.Recommend({5, -7, {}}).status().code(),
            StatusCode::kInvalidArgument);
  // An explicit zero beta is a degenerate neighborhood, also rejected.
  Engine::RecommendOptions zero_beta;
  zero_beta.beta_override = 0;
  EXPECT_EQ(engine.Recommend({5, 10, zero_beta}).status().code(),
            StatusCode::kInvalidArgument);
  // Negative overrides are non-positive: same rejection, same message
  // ("must be positive") — previously only == 0 was caught and -3 flowed
  // into scoring as a wrapped unsigned beta.
  Engine::RecommendOptions negative_beta;
  negative_beta.beta_override = -3;
  EXPECT_EQ(engine.Recommend({5, 10, negative_beta}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Recommend({-3, 10, {}}).status().code(),
            StatusCode::kInvalidArgument);
  // Huge-but-positive counts are rejected too: a near-2^62 n would
  // otherwise reach the top-k accumulator as an absurd reserve() and
  // take the serving thread down with std::length_error.
  EXPECT_EQ(engine.Recommend({5, int64_t{1} << 62, {}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      engine.Recommend({5, Engine::kMaxRequestLimit + 1, {}}).status().code(),
      StatusCode::kInvalidArgument);
  Engine::RecommendOptions huge_beta;
  huge_beta.beta_override = int64_t{1} << 62;
  EXPECT_EQ(engine.Recommend({5, 10, huge_beta}).status().code(),
            StatusCode::kInvalidArgument);
  // A valid request against the same state succeeds.
  auto ok = engine.Recommend({5, 10, {}});
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(ok->candidates.empty());
}

TEST_F(EngineTest, NeighborsValidatesRequestAndOverridesBeta) {
  Engine engine(*fism_, BaseOptions());
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());
  EXPECT_EQ(engine.Neighbors({5, 0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Neighbors({5, -4}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Neighbors({5, Engine::kMaxRequestLimit + 1})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Neighbors({-1, std::nullopt}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Neighbors({999999, std::nullopt}).status().code(),
            StatusCode::kNotFound);
  auto three = engine.Neighbors({5, 3});
  ASSERT_TRUE(three.ok());
  EXPECT_EQ(three->neighbors.size(), 3u);
  auto def = engine.Neighbors({5, std::nullopt});
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->neighbors.size(), BaseOptions().beta);
}

TEST_F(EngineTest, ServiceLevelQueryValidation) {
  // The satellite contract holds below the facade too.
  RealTimeService service(*fism_, BaseOptions());
  ASSERT_TRUE(service.BootstrapFromSplit(*split_).ok());
  EXPECT_EQ(service.RecommendUserBased(5, 0).status().code(),
            StatusCode::kInvalidArgument);
  // Options.beta == 0 is caught at Bootstrap.
  Engine::Options zero_beta = BaseOptions();
  zero_beta.beta = 0;
  RealTimeService degenerate(*fism_, zero_beta);
  EXPECT_EQ(degenerate.BootstrapFromSplit(*split_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, IngestValidatesWholeBatchBeforeMutating) {
  Engine engine(*fism_, BaseOptions());
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());
  const auto before = engine.History({3});
  ASSERT_TRUE(before.ok());
  // Batch with a valid event first and an invalid one later: rejected
  // atomically — the valid prefix must not be applied.
  Engine::IngestRequest bad;
  bad.events = {{3, 7, 0},
                {3, static_cast<int>(dataset_->num_items()) + 9, 1}};
  EXPECT_EQ(engine.Ingest(bad).status().code(),
            StatusCode::kInvalidArgument);
  Engine::IngestRequest negative_user;
  negative_user.events = {{-4, 7, 0}};
  EXPECT_EQ(engine.Ingest(negative_user).status().code(),
            StatusCode::kInvalidArgument);
  Engine::IngestRequest negative_item;
  negative_item.events = {{3, -2, 0}};
  EXPECT_EQ(engine.Ingest(negative_item).status().code(),
            StatusCode::kInvalidArgument);
  // Negative timestamps are rejected atomically too, even when a valid
  // event precedes them in the batch (no partial state may leak).
  Engine::IngestRequest negative_ts;
  negative_ts.events = {{3, 7, 0}, {3, 8, -12}};
  EXPECT_EQ(engine.Ingest(negative_ts).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.History({3})->items, before->items);
  // Empty batches are a no-op OK.
  auto empty = engine.Ingest({});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_events, 0u);
}

TEST_F(EngineTest, ExcludeSeenToggle) {
  Engine engine(*fism_, BaseOptions());
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());
  const std::vector<int> history = engine.History({5})->items;
  Engine::RecommendOptions keep_seen;
  keep_seen.exclude_seen = false;
  auto with_seen = engine.Recommend({5, 50, keep_seen});
  auto without_seen = engine.Recommend({5, 50, {}});
  ASSERT_TRUE(with_seen.ok());
  ASSERT_TRUE(without_seen.ok());
  auto in_history = [&](int item) {
    return std::count(history.begin(), history.end(), item) > 0;
  };
  size_t seen_hits = 0;
  for (const auto& c : with_seen->candidates) seen_hits += in_history(c.id);
  EXPECT_GT(seen_hits, 0u) << "exclude_seen=false should surface history";
  for (const auto& c : without_seen->candidates) {
    EXPECT_FALSE(in_history(c.id)) << "item " << c.id;
  }
}

// ----------------------------------------------- batch-of-1 equivalence

// The single-event OnInteraction path is a thin batch-of-1 delegate;
// this pins it bit-identical to a service driven by per-event typed
// Ingest requests, across bootstrap users and cold starts.
TEST_F(EngineTest, SingleEventBatchMatchesOnInteraction) {
  Engine engine(*fism_, BaseOptions());
  RealTimeService direct(*fism_, BaseOptions());
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());
  ASSERT_TRUE(direct.BootstrapFromSplit(*split_).ok());

  const std::vector<std::pair<int, int>> stream = {
      {0, 7}, {1, 8}, {70, 9}, {3000, 11}, {3000, 12}, {5, 13}, {0, 14}};
  for (const auto& [user, item] : stream) {
    auto timing = direct.OnInteraction(user, item);
    ASSERT_TRUE(timing.ok());
    auto resp = engine.Ingest({{{user, item, 0}}, true});
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->timings.size(), 1u);
    EXPECT_EQ(resp->num_events, 1u);
    EXPECT_EQ(resp->users_touched, 1u);
  }
  ExpectSameState(engine.service(), direct, {0, 1, 5, 70, 3000});
}

// ------------------------------------- batched-vs-sequential equivalence

// A shuffled multi-user event log ingested in batches through the write
// buffer (compaction deferred, then forced) must reproduce the exact
// post-state of per-event OnInteraction replay — histories, vote lists,
// neighborhoods, and recommendations, cold-start users included. Brute
// force is exact, so any divergence is a real bug.
TEST_F(EngineTest, BatchedIngestWithCompactionMatchesSequentialReplay) {
  for (size_t batch_size : {size_t{3}, size_t{17}, size_t{64}}) {
    Engine::Options opts = BaseOptions();
    opts.compaction_threshold = 16;  // defer refreshes across batches
    Engine batched(*fism_, opts);
    RealTimeService sequential(*fism_, BaseOptions());
    ASSERT_TRUE(batched.BootstrapFromSplit(*split_).ok());
    ASSERT_TRUE(sequential.BootstrapFromSplit(*split_).ok());

    const std::vector<Engine::Event> events = ShuffledEventLog();
    for (size_t lo = 0; lo < events.size(); lo += batch_size) {
      Engine::IngestRequest req;
      req.events.assign(events.begin() + lo,
                        events.begin() +
                            std::min(events.size(), lo + batch_size));
      req.identify = false;
      ASSERT_TRUE(batched.Ingest(req).ok());
    }
    for (const Engine::Event& e : events) {
      ASSERT_TRUE(sequential.OnInteraction(e.user, e.item).ok());
    }
    ASSERT_TRUE(batched.Compact().ok());
    EXPECT_EQ(batched.pending_upserts(), 0u);

    std::vector<int> users;
    for (int u = 0; u < 30; ++u) users.push_back(u);
    users.push_back(5000);
    users.push_back(5001);
    users.push_back(40);  // untouched bootstrap user must match too
    ExpectSameState(batched.service(), sequential, users);
  }
}

// ------------------------------------------ pre-compaction freshness

// Queries must merge the write buffer: a cold-start user ingested with a
// huge compaction threshold (never flushed) is immediately visible in
// neighborhoods, and compaction must not change any result.
TEST_F(EngineTest, StagedUpsertsAreQueryFreshBeforeCompaction) {
  Engine::Options opts = BaseOptions();
  opts.compaction_threshold = 1000000;  // nothing flushes on its own
  Engine engine(*fism_, opts);
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());

  const int cold = 7777;
  const std::vector<int> cold_history = {7, 8, 9, 42, 43};
  Engine::IngestRequest req;
  for (size_t i = 0; i < cold_history.size(); ++i) {
    req.events.push_back({cold, cold_history[i], static_cast<int64_t>(i)});
  }
  auto resp = engine.Ingest(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->cold_start_users, 1u);
  EXPECT_GT(resp->pending_upserts, 0u);
  EXPECT_GT(engine.pending_upserts(), 0u);

  // The staged cold user is searchable (buffer merged into the search)…
  auto nbrs = engine.Neighbors({cold, std::nullopt});
  ASSERT_TRUE(nbrs.ok());
  EXPECT_FALSE(nbrs->neighbors.empty());
  // …and appears in another user's neighborhood search (all-shard
  // fan-out hits the buffer of the cold user's shard): the cold user's
  // own exact query from the same history is its nearest vector, so
  // search for a user with the same history must return it first.
  const int twin = 7778;
  Engine::IngestRequest twin_req;
  for (size_t i = 0; i < cold_history.size(); ++i) {
    twin_req.events.push_back(
        {twin, cold_history[i], static_cast<int64_t>(i)});
  }
  ASSERT_TRUE(engine.Ingest(twin_req).ok());
  auto twin_nbrs = engine.Neighbors({twin, std::nullopt});
  ASSERT_TRUE(twin_nbrs.ok());
  ASSERT_FALSE(twin_nbrs->neighbors.empty());
  EXPECT_EQ(twin_nbrs->neighbors[0].id, cold)
      << "identical staged user must be the nearest neighbor";

  // Results are identical before and after compaction (brute force).
  auto before = engine.Neighbors({cold, std::nullopt});
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(engine.Compact().ok());
  EXPECT_EQ(engine.pending_upserts(), 0u);
  auto after = engine.Neighbors({cold, std::nullopt});
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->neighbors.size(), after->neighbors.size());
  for (size_t i = 0; i < before->neighbors.size(); ++i) {
    EXPECT_EQ(before->neighbors[i].id, after->neighbors[i].id);
    EXPECT_FLOAT_EQ(before->neighbors[i].score, after->neighbors[i].score);
  }
}

// Staged updates to an *existing* user shadow the stale indexed row: the
// neighborhood must reflect the staged (fresh) embedding, not the
// pre-batch one.
TEST_F(EngineTest, StagedUpdateShadowsStaleIndexedRow) {
  Engine::Options opts = BaseOptions();
  opts.compaction_threshold = 1000000;
  Engine buffered(*fism_, opts);
  RealTimeService through(*fism_, BaseOptions());  // write-through twin
  ASSERT_TRUE(buffered.BootstrapFromSplit(*split_).ok());
  ASSERT_TRUE(through.BootstrapFromSplit(*split_).ok());

  // Drift user 0 hard toward user 70's taste in both services.
  const auto target = split_->TrainSequence(70);
  const size_t take = std::min<size_t>(target.size(), 15);
  Engine::IngestRequest req;
  for (size_t i = target.size() - take; i < target.size(); ++i) {
    req.events.push_back({0, target[i], static_cast<int64_t>(i)});
    ASSERT_TRUE(through.OnInteraction(0, target[i]).ok());
  }
  ASSERT_TRUE(buffered.Ingest(req).ok());
  EXPECT_GT(buffered.pending_upserts(), 0u);

  auto staged = buffered.Neighbors({0, std::nullopt});
  auto fresh = through.Neighbors(0);
  ASSERT_TRUE(staged.ok());
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(staged->neighbors.size(), fresh->size());
  for (size_t i = 0; i < fresh->size(); ++i) {
    EXPECT_EQ(staged->neighbors[i].id, (*fresh)[i].id) << "rank " << i;
  }
}

// ------------------------------------------- wall-clock compaction

// The age policy on the query path: rows staged behind an unreachable
// count threshold must drain once they are older than
// compaction_interval_ms and any query touches their shard — without
// changing the query's results (drains are bit-exact for brute force).
TEST_F(EngineTest, ColdShardAgeFlushOnQueryPath) {
  Engine::Options opts = BaseOptions();
  opts.compaction_threshold = 1000000;  // count trigger never fires
  opts.compaction_interval_ms = 150;
  Engine engine(*fism_, opts);
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());

  Stopwatch since_ingest;
  Engine::IngestRequest req;
  req.identify = false;  // pure ingest: no query may drain early
  for (int u = 0; u < 10; ++u) {
    req.events.push_back({u, (u * 3 + 1) % 100, 0});
  }
  ASSERT_TRUE(engine.Ingest(req).ok());
  // Nothing drains without a serving call (no background thread), so
  // this holds no matter how slowly the machine got here.
  ASSERT_GT(engine.pending_upserts(), 0u);

  // Query before the interval elapses: staged rows must survive (the
  // whole point of buffering) and still be merged into the results.
  auto fresh = engine.Neighbors({0, std::nullopt});
  ASSERT_TRUE(fresh.ok());
  if (since_ingest.ElapsedMillis() < opts.compaction_interval_ms) {
    // Only assert survival when the query provably ran pre-interval — a
    // loaded CI host can stall us past it, making the query itself the
    // (correct) age flush.
    EXPECT_GT(engine.pending_upserts(), 0u);
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  auto aged = engine.Neighbors({0, std::nullopt});
  ASSERT_TRUE(aged.ok());
  // The fan-out visited every shard, so every overdue buffer drained.
  EXPECT_EQ(engine.pending_upserts(), 0u);
  // Bit-exact across the drain: same neighborhood before and after.
  ASSERT_EQ(fresh->neighbors.size(), aged->neighbors.size());
  for (size_t i = 0; i < fresh->neighbors.size(); ++i) {
    EXPECT_EQ(fresh->neighbors[i].id, aged->neighbors[i].id) << "rank " << i;
    EXPECT_FLOAT_EQ(fresh->neighbors[i].score, aged->neighbors[i].score);
  }
}

// The age policy on the ingest path: a shard whose oldest staged row has
// aged past the interval drains on the next write that touches it, even
// though the count threshold is still far away.
TEST_F(EngineTest, AgedBufferDrainsOnNextIngest) {
  Engine::Options opts = BaseOptions();
  opts.num_shards = 1;  // one shard so both ingests hit the same buffer
  opts.compaction_threshold = 1000000;
  opts.compaction_interval_ms = 150;
  Engine engine(*fism_, opts);
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());

  ASSERT_TRUE(engine.Ingest({{{1, 5, 0}}, false}).ok());
  ASSERT_EQ(engine.pending_upserts(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  ASSERT_TRUE(engine.Ingest({{{2, 6, 1}}, false}).ok());
  EXPECT_EQ(engine.pending_upserts(), 0u);
}

// Background compaction enabled end to end: a stream batched through
// the buffer with the thread racing drains underneath must land on the
// exact state of a write-through per-event replay (brute force), and
// stopping the thread must be clean (Engine lifecycle).
TEST_F(EngineTest, BackgroundCompactionIsBitExact) {
  Engine::Options opts = BaseOptions();
  opts.compaction_threshold = 16;
  opts.compaction_interval_ms = 1;  // aggressive: drains race the batches
  opts.background_compaction = true;
  Engine engine(*fism_, opts);
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());
  EXPECT_TRUE(engine.background_compaction_running());

  RealTimeService sequential(*fism_, BaseOptions());
  ASSERT_TRUE(sequential.BootstrapFromSplit(*split_).ok());

  const std::vector<Engine::Event> events = ShuffledEventLog();
  for (size_t lo = 0; lo < events.size(); lo += 17) {
    Engine::IngestRequest req;
    req.events.assign(events.begin() + lo,
                      events.begin() + std::min(events.size(), lo + 17));
    req.identify = false;
    ASSERT_TRUE(engine.Ingest(req).ok());
  }
  for (const Engine::Event& e : events) {
    ASSERT_TRUE(sequential.OnInteraction(e.user, e.item).ok());
  }

  engine.StopBackgroundCompaction();
  EXPECT_FALSE(engine.background_compaction_running());
  ASSERT_TRUE(engine.Compact().ok());  // whatever the thread left staged
  EXPECT_EQ(engine.pending_upserts(), 0u);

  std::vector<int> users;
  for (int u = 0; u < 30; ++u) users.push_back(u);
  users.push_back(5000);
  users.push_back(5001);
  ExpectSameState(engine.service(), sequential, users);

  // Restart is part of the lifecycle contract (both directions no-op
  // when redundant).
  ASSERT_TRUE(engine.StartBackgroundCompaction().ok());
  ASSERT_TRUE(engine.StartBackgroundCompaction().ok());
  EXPECT_TRUE(engine.background_compaction_running());
  engine.StopBackgroundCompaction();
  engine.StopBackgroundCompaction();
  EXPECT_FALSE(engine.background_compaction_running());
}

TEST_F(EngineTest, CompactionOptionValidation) {
  Engine::Options negative = BaseOptions();
  negative.compaction_interval_ms = -5;
  Engine engine(*fism_, negative);
  EXPECT_EQ(engine.BootstrapFromSplit(*split_).code(),
            StatusCode::kInvalidArgument);
  // Background compaction before Bootstrap is FailedPrecondition.
  Engine cold(*fism_, BaseOptions());
  EXPECT_EQ(cold.StartBackgroundCompaction().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(cold.background_compaction_running());
}

// ---------------------------------------------------- response totals

TEST_F(EngineTest, IngestResponseAggregatesAreConsistent) {
  Engine engine(*fism_, BaseOptions());
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());
  Engine::IngestRequest req;
  // Two users, three events each -> 6 events, 2 touched, coalesced work.
  for (int step = 0; step < 3; ++step) {
    req.events.push_back({11, 20 + step, step});
    req.events.push_back({12, 30 + step, step});
  }
  auto resp = engine.Ingest(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->num_events, 6u);
  EXPECT_EQ(resp->users_touched, 2u);
  EXPECT_EQ(resp->cold_start_users, 0u);
  EXPECT_EQ(resp->timings.size(), 6u);
  double infer_sum = 0.0, identify_sum = 0.0;
  for (const auto& t : resp->timings) {
    infer_sum += t.infer_ms;
    identify_sum += t.identify_ms;
  }
  EXPECT_DOUBLE_EQ(resp->infer_ms, infer_sum);
  EXPECT_DOUBLE_EQ(resp->identify_ms, identify_sum);
  EXPECT_GE(resp->wall_ms, 0.0);
  // Histories absorbed every event even though work was coalesced.
  EXPECT_EQ(engine.History({11})->items.size(),
            split_->TrainSequence(11).size() + 3);
}

// ------------------------------------------------------- sq8 storage

// An SQ8 engine serves end to end and the memory accounting matches the
// codec arithmetic exactly: code_bytes == rows * (dim + 8), zero fp32
// embedding bytes, while an fp32 twin reports rows * 4 * dim and zero
// code bytes. (The >=3x reduction pin lives in index_test at dim 32;
// this fixture's dim-16 model would only give 2.67x.)
TEST_F(EngineTest, Sq8EngineServesAndAccountsMemory) {
  Engine::Options sq8_opts = BaseOptions();
  sq8_opts.storage = quant::Storage::kSq8;
  Engine sq8(*fism_, sq8_opts);
  ASSERT_TRUE(sq8.BootstrapFromSplit(*split_).ok());

  Engine fp32(*fism_, BaseOptions());
  ASSERT_TRUE(fp32.BootstrapFromSplit(*split_).ok());

  auto resp = sq8.Ingest({ShuffledEventLog()});
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(sq8.Compact().ok());

  // Serving paths all work on int8 codes.
  auto nbrs = sq8.Neighbors({3, std::nullopt});
  ASSERT_TRUE(nbrs.ok());
  EXPECT_FALSE(nbrs->neighbors.empty());
  auto recs = sq8.Recommend({3, 10, {}});
  ASSERT_TRUE(recs.ok());
  EXPECT_FALSE(recs->candidates.empty());

  const size_t dim = fism_->embedding_dim();
  size_t rows = 0;
  for (const auto& s : sq8.ShardStats()) rows += s.index_rows;
  EXPECT_GT(rows, 0u);

  const Engine::StatsSnapshot stats = sq8.Stats();
  EXPECT_EQ(stats.embedding_bytes, 0u);
  EXPECT_EQ(stats.code_bytes, rows * (dim + 2 * sizeof(float)));

  const Engine::StatsSnapshot base = fp32.Stats();
  size_t base_rows = 0;
  for (const auto& s : fp32.ShardStats()) base_rows += s.index_rows;
  EXPECT_EQ(base.code_bytes, 0u);
  EXPECT_EQ(base.embedding_bytes, base_rows * dim * sizeof(float));
}

// Staged SQ8 rows (write buffer, scored by the single-row int8 kernel)
// must agree with the compacted index (batch int8 kernels) on ids; the
// batch kernels reassociate the accumulation differently, so scores get
// the same 1e-5 tolerance the fp32 staged tests use.
TEST_F(EngineTest, Sq8StagedMatchesCompacted) {
  Engine::Options opts = BaseOptions();
  opts.storage = quant::Storage::kSq8;
  opts.compaction_threshold = 1 << 20;  // keep everything staged
  Engine engine(*fism_, opts);
  ASSERT_TRUE(engine.BootstrapFromSplit(*split_).ok());

  auto resp = engine.Ingest({ShuffledEventLog()});
  ASSERT_TRUE(resp.ok());
  EXPECT_GT(engine.pending_upserts(), 0u);

  const std::vector<int> probes = {0, 3, 11, 29, 5000, 5001};
  std::vector<std::vector<index::Neighbor>> staged;
  for (int user : probes) {
    auto n = engine.Neighbors({user, std::nullopt});
    ASSERT_TRUE(n.ok()) << "user " << user;
    staged.push_back(n->neighbors);
  }

  ASSERT_TRUE(engine.Compact().ok());
  EXPECT_EQ(engine.pending_upserts(), 0u);

  for (size_t p = 0; p < probes.size(); ++p) {
    auto n = engine.Neighbors({probes[p], std::nullopt});
    ASSERT_TRUE(n.ok()) << "user " << probes[p];
    ASSERT_EQ(n->neighbors.size(), staged[p].size()) << "user " << probes[p];
    for (size_t i = 0; i < staged[p].size(); ++i) {
      EXPECT_EQ(n->neighbors[i].id, staged[p][i].id)
          << "user " << probes[p] << " rank " << i;
      EXPECT_NEAR(n->neighbors[i].score, staged[p][i].score, 1e-5f)
          << "user " << probes[p] << " rank " << i;
    }
  }
}

}  // namespace
}  // namespace sccf::online
