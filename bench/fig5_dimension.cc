// Regenerates paper Figure 5: HR@50 and NDCG@50 as the hidden dimension
// sweeps {16, 32, 64, 128}, for FISM / FISM-UU / FISM-SCCF and SASRec /
// SASRec-UU / SASRec-SCCF.
//
// Expected shape: quality grows then saturates (sometimes dips) with
// dimension, and each SCCF variant stays above its UI base at every
// dimension — the paper's consistency claim.
//
// CPU budget: the default run sweeps the dense (ML-1M) and sparse (Games)
// regimes; SCCF_BENCH_FULL=1 adds the remaining two datasets.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/sccf.h"
#include "core/user_based.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace sccf;

constexpr size_t kDims[] = {16, 32, 64, 128};

void SweepBase(const std::string& dataset_name, const std::string& base_name,
               const models::InductiveUiModel& base,
               const data::LeaveOneOutSplit& split, TablePrinter* table,
               size_t dim) {
  const eval::EvalResult ui = bench::EvalModel(base, split);

  core::UserBasedComponent::Options uu_opts;
  uu_opts.beta = 100;
  uu_opts.include_validation = true;
  core::UserBasedComponent uu(base, uu_opts);
  SCCF_CHECK(uu.Fit(split).ok());
  const eval::EvalResult uu_res = bench::EvalModel(uu, split);

  core::Sccf::Options sccf_opts;
  sccf_opts.num_candidates = 100;
  sccf_opts.merger.max_epochs = 15;
  sccf_opts.merger.patience = 2;
  core::Sccf sccf(base, sccf_opts);
  SCCF_CHECK(sccf.Fit(split).ok());
  const eval::EvalResult sccf_res = bench::EvalModel(sccf, split);

  for (const auto& [variant, res] :
       {std::pair<std::string, const eval::EvalResult*>{base_name, &ui},
        {base_name + "-UU", &uu_res},
        {base_name + "-SCCF", &sccf_res}}) {
    table->AddRow({dataset_name, variant, "d=" + std::to_string(dim),
                   FormatFloat(res->HrAt(50), 4),
                   FormatFloat(res->NdcgAt(50), 4)});
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 5 — hidden dimensionality vs HR@50 / NDCG@50",
      "d in {16,32,64,128} for FISM/SASRec x {UI, UU, SCCF}");

  std::vector<bench::BenchDataset> presets = {
      {"SynML-1M", data::SynMl1mConfig(bench::BenchScale() * 0.6)},
      {"SynGames", data::SynGamesConfig(bench::BenchScale() * 0.6)},
  };
  if (bench::FullMode()) {
    presets.push_back(
        {"SynML-20M", data::SynMl20mConfig(bench::BenchScale() * 0.6)});
    presets.push_back(
        {"SynBeauty", data::SynBeautyConfig(bench::BenchScale() * 0.6)});
  }

  TablePrinter table({"Dataset", "Method", "Dim", "HR@50", "NDCG@50"});
  for (const auto& preset : presets) {
    data::Dataset dataset = bench::BuildDataset(preset.config);
    data::LeaveOneOutSplit split(dataset);
    for (size_t dim : kDims) {
      Stopwatch clock;
      std::printf("[%s d=%zu: training FISM + SASRec ...]\n",
                  preset.name.c_str(), dim);
      std::fflush(stdout);

      models::Fism::Options fopts = bench::FismOptions(dim);
      fopts.epochs = 8;
      models::Fism fism(fopts);
      SCCF_CHECK(fism.Fit(split).ok());
      SweepBase(preset.name, "FISM", fism, split, &table, dim);

      models::SasRec::Options sopts = bench::SasRecOptions(dataset, dim);
      sopts.epochs = 6;
      models::SasRec sasrec(sopts);
      SCCF_CHECK(sasrec.Fit(split).ok());
      SweepBase(preset.name, "SASRec", sasrec, split, &table, dim);

      std::printf("[%s d=%zu done in %.1fs]\n", preset.name.c_str(), dim,
                  clock.ElapsedSeconds());
      std::fflush(stdout);
    }
  }
  table.Print();
  if (!bench::FullMode()) {
    std::printf(
        "\nNote: default run covers the dense and sparse regimes; set "
        "SCCF_BENCH_FULL=1 for all four datasets.\n");
  }
  return 0;
}
