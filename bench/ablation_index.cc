// Ablation (DESIGN.md §4): exact vs approximate neighbor identification.
//
// Compares the three index backends of the user-based component —
// brute-force (exact), IVF-Flat, HNSW — on identify latency and on the
// downstream NDCG@50 of the UU candidate list, quantifying the
// recall-for-latency trade the paper's Faiss deployment makes implicitly.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/user_based.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {
using namespace sccf;
}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation — neighbor-identification index backends",
      "brute-force vs IVF-Flat vs HNSW: identify latency and UU quality");

  data::Dataset dataset = bench::BuildDataset(
      data::SynMl1mConfig(bench::FullMode() ? 4.0 : 2.0));
  data::LeaveOneOutSplit split(dataset);

  std::printf("[training FISM on %zu users ...]\n", dataset.num_users());
  std::fflush(stdout);
  models::Fism fism(bench::FismOptions());
  SCCF_CHECK(fism.Fit(split).ok());

  TablePrinter table(
      {"Backend", "Identify ms (mean)", "NDCG@50 (UU)", "HR@50 (UU)"});
  const struct {
    const char* name;
    core::IndexKind kind;
  } kBackends[] = {
      {"BruteForce (exact)", core::IndexKind::kBruteForce},
      {"IVF-Flat (nprobe=8/64)", core::IndexKind::kIvfFlat},
      {"HNSW (ef=64)", core::IndexKind::kHnsw},
  };

  for (const auto& backend : kBackends) {
    core::UserBasedComponent::Options opts;
    opts.beta = 100;
    opts.index_kind = backend.kind;
    opts.include_validation = true;
    opts.ivf.nlist = 64;
    opts.ivf.nprobe = 8;
    core::UserBasedComponent uu(fism, opts);
    SCCF_CHECK(uu.Fit(split).ok());

    // Identify latency over sampled users.
    LatencyStats identify;
    std::vector<float> emb(fism.embedding_dim());
    for (size_t u = 0; u < split.num_users() && identify.count() < 300;
         u += 3) {
      const auto history = split.TrainPlusValidSequence(u);
      if (history.empty()) continue;
      fism.InferUserEmbedding(history, emb.data());
      Stopwatch clock;
      auto nbrs = uu.Neighbors(emb.data(), 100, static_cast<int>(u));
      identify.Add(clock.ElapsedMillis());
      SCCF_CHECK(!nbrs.empty());
    }

    const eval::EvalResult res = bench::EvalModel(uu, split);
    table.AddRow({backend.name, FormatFloat(identify.mean(), 3),
                  FormatFloat(res.NdcgAt(50), 4),
                  FormatFloat(res.HrAt(50), 4)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: ANN backends trade a small quality loss (their "
      "recall miss) for lower identify latency; the gap widens with corpus "
      "size.\n");
  return 0;
}
