// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// experiment harness: GEMM, dot products, top-k selection, ANN search,
// and the inductive inference paths (FISM pooling, SASRec forward) whose
// latency Table III depends on.

#include <benchmark/benchmark.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "index/brute_force_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_flat_index.h"
#include "models/fism.h"
#include "models/sasrec.h"
#include "nn/graph.h"
#include "nn/transformer.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace {

using namespace sccf;

void BM_Gemm(benchmark::State& state) {
  const size_t n = state.range(0);
  Rng rng(3);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c({n, n});
  for (size_t i = 0; i < a.size(); ++i) a[i] = rng.Normal();
  for (size_t i = 0; i < b.size(); ++i) b[i] = rng.Normal();
  for (auto _ : state) {
    tensor_ops::Gemm(a, false, b, false, 1.0f, 0.0f, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_Dot(benchmark::State& state) {
  const size_t n = state.range(0);
  Rng rng(5);
  std::vector<float> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Normal();
    b[i] = rng.Normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor_ops::Dot(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Dot)->Arg(64)->Arg(1024);

void BM_TopK(benchmark::State& state) {
  const size_t n = 100000;
  Rng rng(7);
  std::vector<float> scores(n);
  for (auto& s : scores) s = rng.Normal();
  for (auto _ : state) {
    index::TopKAccumulator acc(100);
    for (size_t i = 0; i < n; ++i) acc.Offer(static_cast<int>(i), scores[i]);
    benchmark::DoNotOptimize(acc.Take());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TopK);

template <typename IndexT>
std::unique_ptr<IndexT> BuildIndex(size_t n, size_t d,
                                   const std::vector<float>& corpus);

template <>
std::unique_ptr<index::BruteForceIndex> BuildIndex(
    size_t n, size_t d, const std::vector<float>& corpus) {
  auto idx =
      std::make_unique<index::BruteForceIndex>(d, index::Metric::kCosine);
  for (size_t i = 0; i < n; ++i) {
    SCCF_CHECK(idx->Add(static_cast<int>(i), corpus.data() + i * d).ok());
  }
  return idx;
}

template <>
std::unique_ptr<index::HnswIndex> BuildIndex(
    size_t n, size_t d, const std::vector<float>& corpus) {
  auto idx = std::make_unique<index::HnswIndex>(
      d, index::Metric::kCosine, index::HnswIndex::Options{});
  for (size_t i = 0; i < n; ++i) {
    SCCF_CHECK(idx->Add(static_cast<int>(i), corpus.data() + i * d).ok());
  }
  return idx;
}

template <typename IndexT>
void BM_IndexSearch(benchmark::State& state) {
  const size_t n = state.range(0);
  const size_t d = 32;
  Rng rng(9);
  std::vector<float> corpus(n * d);
  for (auto& v : corpus) v = rng.Normal();
  auto idx = BuildIndex<IndexT>(n, d, corpus);
  std::vector<float> q(d);
  for (auto& v : q) v = rng.Normal();
  for (auto _ : state) {
    auto r = idx->Search(q.data(), 100);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK_TEMPLATE(BM_IndexSearch, index::BruteForceIndex)
    ->Arg(2000)
    ->Arg(20000);
BENCHMARK_TEMPLATE(BM_IndexSearch, index::HnswIndex)->Arg(2000)->Arg(20000);

// The Table-III inference path: FISM pooling vs SASRec transformer.
struct InferenceFixture {
  InferenceFixture() {
    data::SyntheticConfig cfg;
    cfg.num_users = 200;
    cfg.num_items = 500;
    cfg.num_clusters = 20;
    cfg.min_actions = 20;
    cfg.max_actions = 60;
    data::SyntheticGenerator gen(cfg);
    auto ds = gen.Generate();
    SCCF_CHECK(ds.ok());
    dataset = std::make_unique<data::Dataset>(std::move(ds).value());
    split = std::make_unique<data::LeaveOneOutSplit>(*dataset);

    models::Fism::Options fopts;
    fopts.dim = 64;
    fopts.epochs = 0;  // weights only; latency is training-independent
    fism = std::make_unique<models::Fism>(fopts);
    SCCF_CHECK(fism->Fit(*split).ok());

    models::SasRec::Options sopts;
    sopts.dim = 64;
    sopts.max_len = 50;
    sopts.epochs = 0;
    sasrec = std::make_unique<models::SasRec>(sopts);
    SCCF_CHECK(sasrec->Fit(*split).ok());
  }
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<data::LeaveOneOutSplit> split;
  std::unique_ptr<models::Fism> fism;
  std::unique_ptr<models::SasRec> sasrec;
};

InferenceFixture& Fixture() {
  static InferenceFixture* f = new InferenceFixture();
  return *f;
}

void BM_FismInference(benchmark::State& state) {
  auto& f = Fixture();
  const auto history = f.split->TrainSequence(0);
  std::vector<float> out(64);
  for (auto _ : state) {
    f.fism->InferUserEmbedding(history, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FismInference);

void BM_SasRecInference(benchmark::State& state) {
  auto& f = Fixture();
  const auto history = f.split->TrainSequence(0);
  std::vector<float> out(64);
  for (auto _ : state) {
    f.sasrec->InferUserEmbedding(history, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SasRecInference);

}  // namespace

BENCHMARK_MAIN();
