// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// experiment harness: the runtime-dispatched SIMD similarity kernels
// (every supported variant side by side), GEMM, dot products, top-k
// selection, ANN search, and the inductive inference paths (FISM pooling,
// SASRec forward) whose latency Table III depends on.
//
// Two modes:
//   ./micro_kernels [gbench flags]      google-benchmark console run
//   ./micro_kernels --simd_json=PATH    self-timed SIMD kernel report,
//                                       written as JSON (BENCH_simd.json);
//                                       see docs/PERFORMANCE.md

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "data/split.h"
#include "data/synthetic.h"
#include "index/brute_force_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_flat_index.h"
#include "models/fism.h"
#include "models/sasrec.h"
#include "nn/graph.h"
#include "nn/transformer.h"
#include "simd/kernels.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace {

using namespace sccf;

void BM_Gemm(benchmark::State& state) {
  const size_t n = state.range(0);
  Rng rng(3);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c({n, n});
  for (size_t i = 0; i < a.size(); ++i) a[i] = rng.Normal();
  for (size_t i = 0; i < b.size(); ++i) b[i] = rng.Normal();
  for (auto _ : state) {
    tensor_ops::Gemm(a, false, b, false, 1.0f, 0.0f, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_Dot(benchmark::State& state) {
  const size_t n = state.range(0);
  Rng rng(5);
  std::vector<float> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Normal();
    b[i] = rng.Normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor_ops::Dot(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Dot)->Arg(64)->Arg(1024);

void BM_TopK(benchmark::State& state) {
  const size_t n = 100000;
  Rng rng(7);
  std::vector<float> scores(n);
  for (auto& s : scores) s = rng.Normal();
  for (auto _ : state) {
    index::TopKAccumulator acc(100);
    for (size_t i = 0; i < n; ++i) acc.Offer(static_cast<int>(i), scores[i]);
    benchmark::DoNotOptimize(acc.Take());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TopK);

template <typename IndexT>
std::unique_ptr<IndexT> BuildIndex(size_t n, size_t d,
                                   const std::vector<float>& corpus);

template <>
std::unique_ptr<index::BruteForceIndex> BuildIndex(
    size_t n, size_t d, const std::vector<float>& corpus) {
  auto idx =
      std::make_unique<index::BruteForceIndex>(d, index::Metric::kCosine);
  for (size_t i = 0; i < n; ++i) {
    SCCF_CHECK(idx->Add(static_cast<int>(i), corpus.data() + i * d).ok());
  }
  return idx;
}

template <>
std::unique_ptr<index::HnswIndex> BuildIndex(
    size_t n, size_t d, const std::vector<float>& corpus) {
  auto idx = std::make_unique<index::HnswIndex>(
      d, index::Metric::kCosine, index::HnswIndex::Options{});
  for (size_t i = 0; i < n; ++i) {
    SCCF_CHECK(idx->Add(static_cast<int>(i), corpus.data() + i * d).ok());
  }
  return idx;
}

template <typename IndexT>
void BM_IndexSearch(benchmark::State& state) {
  const size_t n = state.range(0);
  const size_t d = 32;
  Rng rng(9);
  std::vector<float> corpus(n * d);
  for (auto& v : corpus) v = rng.Normal();
  auto idx = BuildIndex<IndexT>(n, d, corpus);
  std::vector<float> q(d);
  for (auto& v : q) v = rng.Normal();
  for (auto _ : state) {
    auto r = idx->Search(q.data(), 100);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK_TEMPLATE(BM_IndexSearch, index::BruteForceIndex)
    ->Arg(2000)
    ->Arg(20000);
BENCHMARK_TEMPLATE(BM_IndexSearch, index::HnswIndex)->Arg(2000)->Arg(20000);

// The Table-III inference path: FISM pooling vs SASRec transformer.
struct InferenceFixture {
  InferenceFixture() {
    data::SyntheticConfig cfg;
    cfg.num_users = 200;
    cfg.num_items = 500;
    cfg.num_clusters = 20;
    cfg.min_actions = 20;
    cfg.max_actions = 60;
    data::SyntheticGenerator gen(cfg);
    auto ds = gen.Generate();
    SCCF_CHECK(ds.ok());
    dataset = std::make_unique<data::Dataset>(std::move(ds).value());
    split = std::make_unique<data::LeaveOneOutSplit>(*dataset);

    models::Fism::Options fopts;
    fopts.dim = 64;
    fopts.epochs = 0;  // weights only; latency is training-independent
    fism = std::make_unique<models::Fism>(fopts);
    SCCF_CHECK(fism->Fit(*split).ok());

    models::SasRec::Options sopts;
    sopts.dim = 64;
    sopts.max_len = 50;
    sopts.epochs = 0;
    sasrec = std::make_unique<models::SasRec>(sopts);
    SCCF_CHECK(sasrec->Fit(*split).ok());
  }
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<data::LeaveOneOutSplit> split;
  std::unique_ptr<models::Fism> fism;
  std::unique_ptr<models::SasRec> sasrec;
};

InferenceFixture& Fixture() {
  static InferenceFixture* f = new InferenceFixture();
  return *f;
}

void BM_FismInference(benchmark::State& state) {
  auto& f = Fixture();
  const auto history = f.split->TrainSequence(0);
  std::vector<float> out(64);
  for (auto _ : state) {
    f.fism->InferUserEmbedding(history, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FismInference);

void BM_SasRecInference(benchmark::State& state) {
  auto& f = Fixture();
  const auto history = f.split->TrainSequence(0);
  std::vector<float> out(64);
  for (auto _ : state) {
    f.sasrec->InferUserEmbedding(history, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SasRecInference);

// ---------------------------------------------------------------------------
// SIMD kernel suite: every supported variant side by side at the embedding
// dims SCCF actually serves (16..256). Registered dynamically because the
// variant set depends on the build + CPU.

constexpr size_t kSimdDims[] = {16, 64, 128, 256};
constexpr size_t kBatchRows = 1024;

std::vector<simd::Variant> SupportedVariants() {
  std::vector<simd::Variant> out;
  for (simd::Variant v : {simd::Variant::kScalar, simd::Variant::kAvx2,
                          simd::Variant::kAvx512}) {
    if (simd::VariantSupported(v)) out.push_back(v);
  }
  return out;
}

void RegisterSimdBenchmarks() {
  for (simd::Variant v : SupportedVariants()) {
    for (size_t dim : kSimdDims) {
      const std::string suffix =
          std::string(simd::VariantName(v)) + "/" + std::to_string(dim);
      benchmark::RegisterBenchmark(
          ("BM_SimdDot/" + suffix).c_str(),
          [v, dim](benchmark::State& state) {
            SCCF_CHECK(simd::ForceVariant(v).ok());
            Rng rng(17);
            std::vector<float> a(dim), b(dim);
            for (size_t i = 0; i < dim; ++i) {
              a[i] = rng.Normal();
              b[i] = rng.Normal();
            }
            for (auto _ : state) {
              benchmark::DoNotOptimize(simd::Dot(a.data(), b.data(), dim));
            }
            state.SetItemsProcessed(state.iterations() * dim);
          });
      benchmark::RegisterBenchmark(
          ("BM_SimdCosine/" + suffix).c_str(),
          [v, dim](benchmark::State& state) {
            SCCF_CHECK(simd::ForceVariant(v).ok());
            Rng rng(19);
            std::vector<float> a(dim), b(dim);
            for (size_t i = 0; i < dim; ++i) {
              a[i] = rng.Normal();
              b[i] = rng.Normal();
            }
            for (auto _ : state) {
              benchmark::DoNotOptimize(
                  simd::Cosine(a.data(), b.data(), dim));
            }
            state.SetItemsProcessed(state.iterations() * dim);
          });
      benchmark::RegisterBenchmark(
          ("BM_SimdSquaredL2/" + suffix).c_str(),
          [v, dim](benchmark::State& state) {
            SCCF_CHECK(simd::ForceVariant(v).ok());
            Rng rng(23);
            std::vector<float> a(dim), b(dim);
            for (size_t i = 0; i < dim; ++i) {
              a[i] = rng.Normal();
              b[i] = rng.Normal();
            }
            for (auto _ : state) {
              benchmark::DoNotOptimize(
                  simd::SquaredL2(a.data(), b.data(), dim));
            }
            state.SetItemsProcessed(state.iterations() * dim);
          });
      benchmark::RegisterBenchmark(
          ("BM_SimdI8Dot/" + suffix).c_str(),
          [v, dim](benchmark::State& state) {
            SCCF_CHECK(simd::ForceVariant(v).ok());
            Rng rng(37);
            std::vector<float> q(dim);
            std::vector<int8_t> c(dim);
            for (size_t i = 0; i < dim; ++i) {
              q[i] = rng.Normal();
              c[i] = static_cast<int8_t>(rng.UniformInt(-127, 127));
            }
            for (auto _ : state) {
              benchmark::DoNotOptimize(simd::DotI8(q.data(), c.data(), dim));
            }
            state.SetItemsProcessed(state.iterations() * dim);
          });
      benchmark::RegisterBenchmark(
          ("BM_SimdI8DotBatch/" + suffix).c_str(),
          [v, dim](benchmark::State& state) {
            SCCF_CHECK(simd::ForceVariant(v).ok());
            Rng rng(41);
            std::vector<float> q(dim);
            std::vector<int8_t> base(kBatchRows * dim);
            std::vector<float> out(kBatchRows);
            for (auto& x : q) x = rng.Normal();
            for (auto& x : base) {
              x = static_cast<int8_t>(rng.UniformInt(-127, 127));
            }
            for (auto _ : state) {
              simd::DotBatchI8(q.data(), base.data(), kBatchRows, dim,
                               out.data());
              benchmark::DoNotOptimize(out.data());
            }
            state.SetItemsProcessed(state.iterations() * kBatchRows * dim);
          });
      benchmark::RegisterBenchmark(
          ("BM_SimdDotBatch/" + suffix).c_str(),
          [v, dim](benchmark::State& state) {
            SCCF_CHECK(simd::ForceVariant(v).ok());
            Rng rng(29);
            std::vector<float> q(dim);
            std::vector<float> base(kBatchRows * dim);
            std::vector<float> out(kBatchRows);
            for (auto& x : q) x = rng.Normal();
            for (auto& x : base) x = rng.Normal();
            for (auto _ : state) {
              simd::DotBatch(q.data(), base.data(), kBatchRows, dim,
                             out.data());
              benchmark::DoNotOptimize(out.data());
            }
            state.SetItemsProcessed(state.iterations() * kBatchRows * dim);
          });
    }
  }
}

// ---------------------------------------------------------------------------
// --simd_json self-timed report (no google-benchmark involvement, so the
// output schema is ours and stable): ns/call for every supported variant,
// kernel, and dim, plus the active (env-resolved) variant for CI gating.

template <typename F>
double MeasureNsPerCall(F&& fn) {
  using Clock = std::chrono::steady_clock;
  auto elapsed_ns = [](Clock::time_point t0) {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
  };
  // Grow the iteration count until one rep runs >= 10 ms, then report the
  // fastest of three reps at that count.
  size_t iters = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (size_t i = 0; i < iters; ++i) fn();
    if (elapsed_ns(t0) >= 1e7) break;
    iters *= 4;
  }
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    for (size_t i = 0; i < iters; ++i) fn();
    best = std::min(best, elapsed_ns(t0) / static_cast<double>(iters));
  }
  return best;
}

struct SimdResult {
  const char* kernel;
  const char* variant;
  size_t dim;
  size_t rows;  // 1 for single-pair kernels
  double ns_per_call;
};

int WriteSimdJson(const char* path) {
  const simd::Variant active = simd::ActiveVariant();  // env-resolved
  std::vector<SimdResult> results;
  Rng rng(31);
  for (simd::Variant v : SupportedVariants()) {
    SCCF_CHECK(simd::ForceVariant(v).ok());
    for (size_t dim : kSimdDims) {
      std::vector<float> a(dim), b(dim);
      for (size_t i = 0; i < dim; ++i) {
        a[i] = rng.Normal();
        b[i] = rng.Normal();
      }
      std::vector<float> base(kBatchRows * dim);
      std::vector<float> out(kBatchRows);
      for (auto& x : base) x = rng.Normal();

      results.push_back({"dot", simd::VariantName(v), dim, 1,
                         MeasureNsPerCall([&] {
                           benchmark::DoNotOptimize(
                               simd::Dot(a.data(), b.data(), dim));
                         })});
      results.push_back({"cosine", simd::VariantName(v), dim, 1,
                         MeasureNsPerCall([&] {
                           benchmark::DoNotOptimize(
                               simd::Cosine(a.data(), b.data(), dim));
                         })});
      results.push_back({"squared_l2", simd::VariantName(v), dim, 1,
                         MeasureNsPerCall([&] {
                           benchmark::DoNotOptimize(
                               simd::SquaredL2(a.data(), b.data(), dim));
                         })});
      results.push_back({"dot_batch", simd::VariantName(v), dim,
                         kBatchRows, MeasureNsPerCall([&] {
                           simd::DotBatch(a.data(), base.data(), kBatchRows,
                                          dim, out.data());
                           benchmark::DoNotOptimize(out.data());
                         })});

      std::vector<int8_t> codes(dim);
      std::vector<int8_t> code_base(kBatchRows * dim);
      for (auto& x : codes) x = static_cast<int8_t>(rng.UniformInt(-127, 127));
      for (auto& x : code_base) {
        x = static_cast<int8_t>(rng.UniformInt(-127, 127));
      }
      results.push_back({"dot_i8", simd::VariantName(v), dim, 1,
                         MeasureNsPerCall([&] {
                           benchmark::DoNotOptimize(
                               simd::DotI8(a.data(), codes.data(), dim));
                         })});
      results.push_back({"dot_batch_i8", simd::VariantName(v), dim,
                         kBatchRows, MeasureNsPerCall([&] {
                           simd::DotBatchI8(a.data(), code_base.data(),
                                            kBatchRows, dim, out.data());
                           benchmark::DoNotOptimize(out.data());
                         })});
    }
  }
  SCCF_CHECK(simd::ForceVariant(active).ok());

  double active_dot128 = 0.0;
  double active_dot_i8_128 = 0.0;
  for (const SimdResult& r : results) {
    if (std::strcmp(r.variant, simd::VariantName(active)) != 0 ||
        r.dim != 128) {
      continue;
    }
    if (std::strcmp(r.kernel, "dot") == 0) active_dot128 = r.ns_per_call;
    if (std::strcmp(r.kernel, "dot_i8") == 0) {
      active_dot_i8_128 = r.ns_per_call;
    }
  }

  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"simd_kernels\",\n");
  std::fprintf(f, "  \"generated_by\": \"bench/micro_kernels --simd_json\",\n");
  std::fprintf(f, "  \"batch_rows\": %zu,\n", kBatchRows);
  std::fprintf(f, "  \"cpu\": {\"avx2\": %s, \"avx512\": %s},\n",
               simd::VariantSupported(simd::Variant::kAvx2) ? "true"
                                                            : "false",
               simd::VariantSupported(simd::Variant::kAvx512) ? "true"
                                                              : "false");
  std::fprintf(f, "  \"active_variant\": \"%s\",\n",
               simd::VariantName(active));
  std::fprintf(f, "  \"active_dot_dim128_ns\": %.3f,\n", active_dot128);
  std::fprintf(f, "  \"active_dot_i8_dim128_ns\": %.3f,\n",
               active_dot_i8_128);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const SimdResult& r = results[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"variant\": \"%s\", \"dim\": "
                 "%zu, \"rows\": %zu, \"ns_per_call\": %.3f}%s\n",
                 r.kernel, r.variant, r.dim, r.rows, r.ns_per_call,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (active variant: %s)\n", path,
              simd::VariantName(active));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--simd_json=", 12) == 0) {
      return WriteSimdJson(argv[i] + 12);
    }
  }
  RegisterSimdBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
