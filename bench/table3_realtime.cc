// Regenerates paper Table III: per-interaction latency of the SCCF
// user-based component vs transductive UserKNN in the streaming setting.
//
// Protocol (Sec. IV-D): when a user interacts with a new item, measure
//   - inferring time: recomputing the user representation (0 for UserKNN,
//     one inductive forward pass for SCCF),
//   - identifying time: finding the beta most similar users (a scan over
//     every user's high-dimensional interaction set for UserKNN, a
//     vector-index search in d dimensions for SCCF),
// averaged over users. We report the paper's baseline formulation
// (sparse-intersection scan, Eq. 13) and additionally the inverted-index
// optimisation of UserKNN, which is the strongest transductive contender.
//
// Expected shape: SCCF pays a small constant inference cost; its identify
// time stays nearly flat as the corpus grows while both UserKNN variants
// scale with interaction volume (the paper's ML-1M -> Videos jump).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/realtime.h"
#include "models/user_knn.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace sccf;

struct Latencies {
  double knn_naive_ms = 0.0;     // Eq. 13 sparse-intersection scan
  double knn_inverted_ms = 0.0;  // inverted-index optimisation
  double sccf_infer_ms = 0.0;
  double sccf_identify_ms = 0.0;  // index update + neighbor search
};

Latencies MeasureDataset(const data::SyntheticConfig& config) {
  data::Dataset dataset = bench::BuildDataset(config);
  data::LeaveOneOutSplit split(dataset);
  std::printf("[%s: %zu users, %zu items, %zu actions]\n",
              config.name.c_str(), dataset.num_users(), dataset.num_items(),
              dataset.num_actions());
  std::fflush(stdout);

  // Latency does not depend on model quality; untrained weights exercise
  // exactly the same inference code path as converged ones.
  models::SasRec::Options sas_opts = bench::SasRecOptions(dataset);
  sas_opts.epochs = 0;
  models::SasRec sasrec(sas_opts);
  SCCF_CHECK(sasrec.Fit(split).ok());

  models::UserKnn user_knn({.num_neighbors = 100});
  SCCF_CHECK(user_knn.Fit(split).ok());

  core::RealTimeService::Options rt_opts;
  rt_opts.beta = 100;
  rt_opts.index_kind = core::IndexKind::kHnsw;
  core::RealTimeService service(sasrec, rt_opts);
  SCCF_CHECK(service.BootstrapFromSplit(split).ok());

  LatencyStats knn_naive, knn_inverted, infer, identify;
  size_t measured = 0;
  const size_t stride =
      std::max<size_t>(1, split.num_users() / 300);  // ~300 samples
  for (size_t u = 0; u < split.num_users() && measured < 300; u += stride) {
    if (!split.evaluable(u)) continue;
    const int new_item = split.ValidItem(u);

    std::span<const int> train = split.TrainSequence(u);
    std::vector<int> history(train.begin(), train.end());
    history.push_back(new_item);
    {
      Stopwatch clock;
      auto nbrs = user_knn.IdentifyNeighbors(
          history, static_cast<int>(u),
          models::UserKnn::Strategy::kSparseIntersection);
      knn_naive.Add(clock.ElapsedMillis());
      SCCF_CHECK(!nbrs.empty());
    }
    {
      Stopwatch clock;
      auto nbrs = user_knn.IdentifyNeighbors(
          history, static_cast<int>(u),
          models::UserKnn::Strategy::kInvertedIndex);
      knn_inverted.Add(clock.ElapsedMillis());
      SCCF_CHECK(!nbrs.empty());
    }

    auto timing = service.OnInteraction(static_cast<int>(u), new_item);
    SCCF_CHECK(timing.ok()) << timing.status().ToString();
    infer.Add(timing->infer_ms);
    identify.Add(timing->index_ms + timing->identify_ms);
    ++measured;
  }

  return {knn_naive.mean(), knn_inverted.mean(), infer.mean(),
          identify.mean()};
}

void PrintDataset(const std::string& name, const Latencies& lat) {
  TablePrinter table(
      {name, "UserKNN (Eq.13)", "UserKNN (inverted)", "SCCF"});
  table.AddRow({"Inferring time (ms)", "0.000", "0.000",
                FormatFloat(lat.sccf_infer_ms, 3)});
  table.AddRow({"Identifying time (ms)", FormatFloat(lat.knn_naive_ms, 3),
                FormatFloat(lat.knn_inverted_ms, 3),
                FormatFloat(lat.sccf_identify_ms, 3)});
  table.AddRow({"Total time (ms)", FormatFloat(lat.knn_naive_ms, 3),
                FormatFloat(lat.knn_inverted_ms, 3),
                FormatFloat(lat.sccf_infer_ms + lat.sccf_identify_ms, 3)});
  table.Print();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table III — real-time latency: UserKNN vs SCCF user-based component",
      "per-new-interaction latency, averaged over users (paper: ML-1M "
      "6.83ms vs 2.38ms; Videos 51.95ms vs 1.54ms)");

  // Small corpus (the paper's ML-1M role).
  PrintDataset("SynML-1M", MeasureDataset(data::SynMl1mConfig()));

  // Larger corpus (the paper's Videos role): many more users and longer
  // interaction volume, so the transductive scan grows while the ANN
  // search stays nearly flat.
  data::SyntheticConfig big = data::SynMl1mConfig(bench::FullMode() ? 16.0
                                                                    : 8.0);
  big.name = "SynVideos";
  big.num_items = 3000;
  big.num_clusters = 150;
  big.min_actions = 15;
  big.max_actions = 90;
  big.seed = 21;
  PrintDataset(big.name, MeasureDataset(big));

  std::printf(
      "\nExpected shape: SCCF total well below the Eq. 13 scan, and its "
      "identify time nearly flat in corpus size while both UserKNN "
      "variants grow with interaction volume.\n");
  return 0;
}
