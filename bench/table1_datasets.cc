// Regenerates paper Table I: dataset statistics after preprocessing.
//
// The original corpora (ML-1M/20M, Amazon Games/Beauty) are replaced by
// synthetic datasets in the same regimes (see DESIGN.md substitutions);
// the 5-core preprocessing of Sec. IV-A1 is applied identically.

#include <cstdio>

#include "bench/bench_util.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace sccf;
  bench::PrintHeader("Table I — dataset statistics (after preprocessing)",
                     "#users, #items, #actions, avg.length, density per "
                     "synthetic regime dataset");

  TablePrinter table(
      {"Dataset", "#users", "#items", "#actions", "avg.length", "density"});
  for (const auto& preset : bench::TableOneDatasets()) {
    data::SyntheticGenerator gen(preset.config);
    auto raw = gen.Generate();
    SCCF_CHECK(raw.ok());
    // Re-apply the paper's 5-core filter on the flattened interactions.
    std::vector<data::Interaction> inter;
    for (size_t u = 0; u < raw->num_users(); ++u) {
      const auto& seq = raw->sequence(u);
      const auto& ts = raw->timestamps(u);
      for (size_t i = 0; i < seq.size(); ++i) {
        inter.push_back({static_cast<int>(u), seq[i], ts[i]});
      }
    }
    inter = data::KCoreFilter(std::move(inter), 5,
                              data::CoreFilterMode::kPaper);
    auto ds = data::Dataset::FromInteractions(preset.name, std::move(inter));
    SCCF_CHECK(ds.ok());
    const data::DatasetStats st = ds->Stats();
    table.AddRow({preset.name, std::to_string(st.num_users),
                  std::to_string(st.num_items),
                  std::to_string(st.num_actions),
                  FormatFloat(st.avg_length, 1),
                  FormatFloat(st.density * 100.0, 2) + "%"});
  }
  table.Print();
  std::printf(
      "\nPaper reference (Table I): ML-1M 6040/3416/1.0M/163.5/4.79%%, "
      "ML-20M 138493/26744/20M/144.4/0.54%%, Games 29341/23464/0.3M/9.1/"
      "0.04%%, Beauty 40226/54542/0.4M/8.8/0.02%%.\n"
      "Expected shape: two dense long-history regimes, two sparse "
      "short-history regimes.\n");
  return 0;
}
