#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace sccf::bench {

double BenchScale() {
  static const double scale = [] {
    const char* env = std::getenv("SCCF_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    double v = 1.0;
    if (!ParseDouble(env, &v) || v <= 0.0) {
      SCCF_LOG_WARNING << "ignoring invalid SCCF_BENCH_SCALE='" << env << "'";
      return 1.0;
    }
    return v;
  }();
  return scale;
}

bool FullMode() {
  const char* env = std::getenv("SCCF_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

std::vector<BenchDataset> TableOneDatasets() {
  const double s = BenchScale();
  return {
      {"SynML-1M", data::SynMl1mConfig(s)},
      {"SynML-20M", data::SynMl20mConfig(s)},
      {"SynGames", data::SynGamesConfig(s)},
      {"SynBeauty", data::SynBeautyConfig(s)},
  };
}

data::Dataset BuildDataset(const data::SyntheticConfig& config) {
  data::SyntheticGenerator gen(config);
  auto ds = gen.Generate();
  SCCF_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

models::Fism::Options FismOptions(size_t dim) {
  models::Fism::Options opts;
  opts.dim = dim;
  opts.alpha = 0.5f;  // Sec. IV-A4
  opts.epochs = 18;
  opts.num_negatives = 4;
  opts.learning_rate = 0.001f;
  return opts;
}

models::SasRec::Options SasRecOptions(const data::Dataset& dataset,
                                      size_t dim) {
  models::SasRec::Options opts;
  opts.dim = dim;
  opts.num_blocks = 2;  // paper: 2 layers, 1 head
  opts.num_heads = 1;
  opts.epochs = 8;
  // The paper uses L=200 (MovieLens) / 50 (Amazon); scaled to CPU budget
  // by the same dense-vs-sparse split.
  const double avg_len = dataset.Stats().avg_length;
  opts.max_len = avg_len > 30 ? 50 : 25;
  opts.dropout = avg_len > 30 ? 0.2f : 0.5f;
  return opts;
}

eval::EvalResult EvalModel(const models::Recommender& model,
                           const data::LeaveOneOutSplit& split) {
  eval::EvalOptions opts;
  opts.cutoffs = {20, 50, 100};
  auto r = eval::Evaluate(model, split, opts);
  SCCF_CHECK(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

void PrintHeader(const std::string& artifact, const std::string& detail) {
  std::printf("\n=== %s ===\n%s\n(bench scale %.2f%s)\n\n", artifact.c_str(),
              detail.c_str(), BenchScale(), FullMode() ? ", full mode" : "");
  std::fflush(stdout);
}

std::string FormatImprovement(double ours, double base) {
  if (base <= 0.0) return "n/a";
  const double pct = (ours - base) / base * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", pct);
  return buf;
}

}  // namespace sccf::bench
