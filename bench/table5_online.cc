// Regenerates paper Table V: the online A/B bucket test.
//
// Setup mirrors Sec. IV-F on the simulated serving loop: users are split
// into two buckets differing only in candidate generation. Bucket A uses
// the pure inductive UI model (the paper's Covington-style deep baseline);
// bucket B plugs in SCCF. Both feed the same fixed downstream ranker and
// slate size; the ground-truth behaviour model decides clicks and trades;
// clicked items enter the live history, so real-time adaptation compounds.
//
// Expected shape: positive click and trade lift for the SCCF bucket
// (paper: +2.5% clicks, +2.3% trades).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/sccf.h"
#include "data/synthetic.h"
#include "models/item_knn.h"
#include "online/ab_test.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {
using namespace sccf;
constexpr float kMasked = -1e30f;
}  // namespace

int main() {
  bench::PrintHeader(
      "Table V — simulated online A/B test (one week)",
      "bucket A: UI-only candidate generation; bucket B: SCCF; shared "
      "downstream ranker; lifts on #clicks and #trades");

  data::SyntheticConfig cfg = data::SynMl1mConfig(bench::BenchScale());
  cfg.name = "SynTaobao";
  cfg.interest_drift = 0.35;  // the drifting-interest regime of Fig. 1
  data::SyntheticGenerator world(cfg);
  auto ds = world.Generate();
  SCCF_CHECK(ds.ok());
  data::Dataset dataset = std::move(ds).value();
  data::LeaveOneOutSplit split(dataset);

  std::printf("[training the candidate generators ...]\n");
  std::fflush(stdout);
  models::Fism fism(bench::FismOptions());
  SCCF_CHECK(fism.Fit(split).ok());

  core::Sccf::Options sccf_opts;
  sccf_opts.num_candidates = 30;
  sccf_opts.user_based.beta = 100;
  core::Sccf sccf(fism, sccf_opts);
  SCCF_CHECK(sccf.Fit(split).ok());

  // The fixed downstream ranker is a *different* model from the candidate
  // generators (as in production, where the ranking stage is its own
  // system): item-item collaborative filtering over the live history.
  models::ItemKnn downstream_ranker;
  SCCF_CHECK(downstream_ranker.Fit(split).ok());

  // Bucket A: UI-only top-N candidates from the live history.
  online::CandidateGenerator bucket_a =
      [&](int user, std::span<const int> history,
          size_t n) -> core::CandidateList {
    std::vector<float> scores;
    fism.ScoreAll(user, history, &scores);
    for (int item : history) scores[item] = kMasked;
    return core::TopNFromScores(scores, n);
  };

  // Bucket B: SCCF's merged candidate union from the same live history.
  online::CandidateGenerator bucket_b =
      [&](int user, std::span<const int> history,
          size_t n) -> core::CandidateList {
    std::vector<float> scores;
    sccf.ScoreAll(user, history, &scores);
    core::CandidateList out = core::TopNFromScores(scores, n);
    if (out.empty()) return bucket_a(user, history, n);  // cold fallback
    return out;
  };

  // Shared downstream ranker: identical for both buckets (the paper keeps
  // all downstream modules unchanged); only the candidate sets differ.
  online::SlateRanker ranker =
      [&](int user, std::span<const int> history,
          const core::CandidateList& candidates,
          size_t slate) -> std::vector<int> {
    std::vector<float> scores;
    downstream_ranker.ScoreAll(user, history, &scores);
    index::TopKAccumulator acc(slate);
    for (const auto& c : candidates) acc.Offer(c.id, scores[c.id]);
    std::vector<int> out;
    for (const auto& nb : acc.Take()) out.push_back(nb.id);
    return out;
  };

  online::AbTestConfig ab_cfg;
  ab_cfg.days = 7;
  ab_cfg.sessions_per_day = 2;
  ab_cfg.candidate_size = 30;  // scaled stand-in for the paper's 500
  ab_cfg.slate_size = 10;
  ab_cfg.recent_cluster_weight = 5.0;
  ab_cfg.successor_boost = 4.0;
  ab_cfg.trade_given_click = 0.25;
  online::AbTestHarness harness(dataset, world, ab_cfg);

  std::printf("[serving %zu days x %zu users ...]\n", ab_cfg.days,
              dataset.num_users());
  std::fflush(stdout);
  const online::AbTestResult result = harness.Run(bucket_a, bucket_b, ranker);

  TablePrinter table({"Metric", "Bucket A (UI)", "Bucket B (SCCF)", "Lift"});
  table.AddRow({"#Impressions", std::to_string(result.impressions_a),
                std::to_string(result.impressions_b), "-"});
  table.AddRow({"#Clicks", std::to_string(result.clicks_a),
                std::to_string(result.clicks_b),
                FormatFloat(result.ClickLift() * 100.0, 2) + "%"});
  table.AddRow({"#Trades", std::to_string(result.trades_a),
                std::to_string(result.trades_b),
                FormatFloat(result.TradeLift() * 100.0, 2) + "%"});
  table.Print();
  std::printf(
      "\nPaper reference (Table V): #Clicks +2.5%%, #Trades +2.3%%.\n");
  return 0;
}
