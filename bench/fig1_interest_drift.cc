// Regenerates paper Figure 1: the average distribution of "days before
// today a category clicked today was first clicked" over a two-week
// window, computed on a drifting-interest clickstream.
//
// Expected shape: a dominant bar at day 0 (brand-new categories, ~50% on
// Taobao) followed by a decaying tail over days 1..14 — the motivation
// for real-time neighborhood identification.

#include <cstdio>

#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "online/interest_drift.h"
#include "util/string_util.h"

int main() {
  using namespace sccf;
  bench::PrintHeader(
      "Figure 1 — user interest drift (category recency distribution)",
      "proportion of today's categories first clicked x days before "
      "today; x = 0 means not clicked in the last two weeks");

  data::SyntheticConfig cfg;
  cfg.name = "SynTaobao-drift";
  cfg.num_users = static_cast<size_t>(2000 * bench::BenchScale());
  cfg.num_items = 1200;
  cfg.num_clusters = 120;
  cfg.clusters_per_category = 1;  // category granularity == interest unit
  cfg.num_secondary_interests = 3;
  cfg.primary_affinity = 0.35;
  cfg.interest_drift = 0.45;
  cfg.days = 45;
  cfg.min_actions = 30;
  cfg.max_actions = 90;
  cfg.seed = 99;
  data::SyntheticGenerator gen(cfg);
  auto ds = gen.Generate();
  SCCF_CHECK(ds.ok());

  const std::vector<double> dist =
      online::CategoryRecencyDistribution(*ds, /*window_days=*/14);

  std::printf("days-before-today  proportion\n");
  for (size_t d = 0; d < dist.size(); ++d) {
    const int bar = static_cast<int>(dist[d] * 120);
    std::printf("%17zu  %6s  %s\n", d, FormatFloat(dist[d], 4).c_str(),
                std::string(bar, '#').c_str());
  }
  std::printf(
      "\nPaper reference (Fig. 1): ~50%% of today's categories are new "
      "(x = 0), with a decaying tail over the previous 14 days.\n");
  return 0;
}
