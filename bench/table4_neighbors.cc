// Regenerates paper Table IV: effect of the neighborhood size beta on
// NDCG@50 for the UI / UU / SCCF variants of FISM and SASRec.
//
// Expected shape: the UI rows are flat (beta-independent); UU and SCCF
// have a broad optimum around beta = 100 with mild degradation at 200
// (noisy neighbors), and SCCF > UI for every beta.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/sccf.h"
#include "core/user_based.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace sccf;

constexpr size_t kBetas[] = {50, 100, 200};

double NdcgAt50(const models::Recommender& model,
                const data::LeaveOneOutSplit& split) {
  return bench::EvalModel(model, split).NdcgAt(50);
}

void SweepBase(const std::string& base_name,
               const models::InductiveUiModel& base,
               const data::LeaveOneOutSplit& split, TablePrinter* table,
               const std::string& dataset_name) {
  const double ui = NdcgAt50(base, split);
  for (size_t beta : kBetas) {
    core::UserBasedComponent::Options uu_opts;
    uu_opts.beta = beta;
    uu_opts.include_validation = true;
    core::UserBasedComponent uu(base, uu_opts);
    SCCF_CHECK(uu.Fit(split).ok());
    const double uu_score = NdcgAt50(uu, split);

    core::Sccf::Options sccf_opts;
    sccf_opts.num_candidates = 100;
    sccf_opts.user_based.beta = beta;
    sccf_opts.merger.max_epochs = 15;
    sccf_opts.merger.patience = 2;
    core::Sccf sccf(base, sccf_opts);
    SCCF_CHECK(sccf.Fit(split).ok());
    const double sccf_score = NdcgAt50(sccf, split);

    table->AddRow({dataset_name, base_name, "beta=" + std::to_string(beta),
                   FormatFloat(ui, 4), FormatFloat(uu_score, 4),
                   FormatFloat(sccf_score, 4)});
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table IV — neighborhood size beta vs NDCG@50",
      "beta in {50,100,200} for FISM/SASRec x {UI, UU, SCCF}; UI is "
      "beta-independent by construction");

  TablePrinter table(
      {"Dataset", "Base", "Neighbors", "UI", "UU", "SCCF"});
  for (const auto& preset : bench::TableOneDatasets()) {
    data::Dataset dataset = bench::BuildDataset(preset.config);
    data::LeaveOneOutSplit split(dataset);
    std::printf("[training bases on %s ...]\n", preset.name.c_str());
    std::fflush(stdout);

    models::Fism fism(bench::FismOptions());
    SCCF_CHECK(fism.Fit(split).ok());
    SweepBase("FISM", fism, split, &table, preset.name);

    models::SasRec sasrec(bench::SasRecOptions(dataset));
    SCCF_CHECK(sasrec.Fit(split).ok());
    SweepBase("SASRec", sasrec, split, &table, preset.name);
  }
  table.Print();
  return 0;
}
