// Ablation (DESIGN.md §4): the recent-item windows of the user-based
// component. The paper fixes both to 15 ("we leverage the recent 15 items
// to infer user embeddings ... recommend each user's latest 15 items");
// this sweep shows why: short windows track drifting interests (Fig. 1)
// while long windows dilute them.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/user_based.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {
using namespace sccf;
}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation — recent-item window of the user-based component",
      "infer/vote window in {5, 15, 50, all}; NDCG@50 and HR@50 of the UU "
      "candidate stream");

  data::SyntheticConfig cfg = data::SynMl1mConfig(bench::BenchScale());
  cfg.interest_drift = 0.35;  // drifting regime where recency matters
  data::Dataset dataset = bench::BuildDataset(cfg);
  data::LeaveOneOutSplit split(dataset);

  std::printf("[training FISM ...]\n");
  std::fflush(stdout);
  models::Fism fism(bench::FismOptions());
  SCCF_CHECK(fism.Fit(split).ok());

  TablePrinter table({"Window", "NDCG@50 (UU)", "HR@50 (UU)"});
  const size_t kWindows[] = {2, 5, 15, 50, 0};  // 0 = full history
  for (size_t w : kWindows) {
    core::UserBasedComponent::Options opts;
    opts.beta = 100;
    opts.infer_window = w;
    opts.vote_window = w;
    opts.include_validation = true;
    core::UserBasedComponent uu(fism, opts);
    SCCF_CHECK(uu.Fit(split).ok());
    const eval::EvalResult res = bench::EvalModel(uu, split);
    table.AddRow({w == 0 ? "all" : std::to_string(w),
                  FormatFloat(res.NdcgAt(50), 4),
                  FormatFloat(res.HrAt(50), 4)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: small recent windows decisively beat long/"
      "unbounded ones under interest drift — the recency motivation for "
      "the paper's 15-item windows. Where the short end bends (2 vs 5 vs "
      "15) depends on drift intensity and history length.\n");
  return 0;
}
