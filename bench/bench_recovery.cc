// Cost model of the crash-safety layer (src/persist): what the ingest
// path pays for write-ahead journaling, what SAVE costs, and how fast a
// restart gets back to serving. Four phases, one corpus:
//
//   1. ingest    — the same single-stream batch ingest run three ways:
//                  persistence off (baseline), journaled (the default
//                  durability mode: one O_APPEND write per touched shard
//                  per batch), and journaled + fsync-per-record (the
//                  machine-crash mode). Reported as updates/sec so the
//                  journal's overhead is a ratio, not an absolute.
//   2. save      — Engine::Save() wall time and the snapshot size it
//                  writes (all shards, CRC-framed, atomic rename).
//   3. recover   — Bootstrap wall time for three restart shapes: plain
//                  (no persistence), snapshot + journal tail (the
//                  post-SAVE restart), and journal-only replay (never
//                  saved — the worst case the snapshot exists to avoid).
//   4. verify    — the recovered engine answers one Neighbors probe per
//                  shard, so the timings above cannot quietly measure a
//                  broken restore.
//
// Self-timed, no Google Benchmark dependency. Flags:
//   --interactions=N      stream length (default 10000)
//   --users=N --items=N   corpus size (default 2000 x 1500)
//   --dim=N               embedding dim (default 32)
//   --shards=N            0 = hardware concurrency (the service default)
//   --batch=N             events per IngestRequest (default 32)
//   --compaction=N        write-buffer flush threshold (default 32)
//   --json=PATH           machine-readable report (BENCH_recovery.json)
//   --quick               small workload for CI smoke
//
// Methodology: untrained FISM (inference cost identical to a converged
// model), one deterministic bursty stream shared by every phase, fresh
// mkdtemp directories per persistent engine so runs never read each
// other's state. The journal-only replay phase re-ingests through the
// normal batch path (replay IS ingest), so its time is bounded below by
// phase 1's journaled ingest time for the same prefix — the delta is
// pure decode + CRC.

#include <ftw.h>
#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "models/fism.h"
#include "online/engine.h"
#include "persist/fs.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace {

using namespace sccf;

struct Config {
  size_t interactions = 10000;
  size_t users = 2000;
  size_t items = 1500;
  size_t dim = 32;
  size_t shards = 0;  // 0 = hardware concurrency
  size_t batch = 32;
  size_t compaction = 32;
  std::string json_path;
};

struct Results {
  double baseline_ups = 0.0;       // persistence off
  double journal_ups = 0.0;        // recover_dir set, fsync off
  double journal_fsync_ups = 0.0;  // recover_dir set, fsync on
  double save_ms = 0.0;
  size_t snapshot_bytes = 0;
  size_t journal_bytes = 0;  // full-stream journal, fsync-off engine
  double bootstrap_plain_ms = 0.0;
  double recover_snapshot_tail_ms = 0.0;  // snapshot + 25% journal tail
  double recover_replay_only_ms = 0.0;    // no snapshot, full journal
};

/// Scratch directory that cleans up after itself (mkdtemp + nftw).
class ScratchDir {
 public:
  ScratchDir() {
    char tmpl[] = "/tmp/sccf_bench_XXXXXX";
    SCCF_CHECK(::mkdtemp(tmpl) != nullptr) << "mkdtemp failed";
    path_ = tmpl;
  }
  ~ScratchDir() {
    ::nftw(
        path_.c_str(),
        [](const char* p, const struct stat*, int, struct FTW*) {
          return ::remove(p);
        },
        16, FTW_DEPTH | FTW_PHYS);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// The bursty deterministic stream every phase shares (same generator as
/// bench_realtime_throughput, run length 4).
std::vector<online::Engine::Event> MakeStream(const Config& cfg) {
  std::vector<online::Engine::Event> stream(cfg.interactions);
  for (size_t i = 0; i < cfg.interactions; ++i) {
    const size_t run = i / 4;
    stream[i] = {static_cast<int>((run * 2654435761u) % cfg.users),
                 static_cast<int>((i * 40503u) % cfg.items),
                 static_cast<int64_t>(i)};
  }
  return stream;
}

online::Engine::Options MakeOptions(const Config& cfg,
                                    const std::string& recover_dir,
                                    bool journal_fsync) {
  online::Engine::Options opts;
  opts.beta = 100;
  opts.num_shards = cfg.shards;
  opts.compaction_threshold = cfg.compaction;
  opts.index_kind = core::IndexKind::kBruteForce;
  opts.recover_dir = recover_dir;
  opts.journal_fsync = journal_fsync;
  return opts;
}

/// Ingests stream[lo, hi) in cfg.batch chunks; returns wall seconds.
double IngestRange(online::Engine& engine,
                   const std::vector<online::Engine::Event>& stream,
                   size_t lo, size_t hi, size_t batch) {
  online::Engine::IngestRequest req;
  req.identify = false;
  req.events.reserve(batch);
  Stopwatch wall;
  for (size_t i = lo; i < hi; i += batch) {
    const size_t end = std::min(hi, i + batch);
    req.events.assign(stream.begin() + i, stream.begin() + end);
    const auto resp = engine.Ingest(req);
    SCCF_CHECK(resp.ok()) << resp.status().ToString();
  }
  return wall.ElapsedSeconds();
}

size_t DirBytes(const std::string& dir, const char* prefix) {
  auto files = persist::ListDirFiles(dir);
  SCCF_CHECK(files.ok()) << files.status().ToString();
  size_t total = 0;
  for (const std::string& name : *files) {
    if (name.rfind(prefix, 0) != 0) continue;
    auto bytes = persist::ReadFileToString(dir + "/" + name);
    SCCF_CHECK(bytes.ok()) << bytes.status().ToString();
    total += bytes->size();
  }
  return total;
}

/// One Neighbors probe per shard-ish stripe of the user space: recovery
/// timings only count if the recovered engine actually serves.
void ProbeRecovered(online::Engine& engine, const Config& cfg) {
  for (size_t i = 0; i < 8; ++i) {
    const int user = static_cast<int>((i * 2654435761u) % cfg.users);
    const auto nbrs = engine.Neighbors({user, std::nullopt});
    SCCF_CHECK(nbrs.ok()) << nbrs.status().ToString();
    SCCF_CHECK(!nbrs->neighbors.empty()) << "recovered engine is empty";
  }
}

void WriteJson(const Config& cfg, const Results& r) {
  std::FILE* f = std::fopen(cfg.json_path.c_str(), "w");
  SCCF_CHECK(f != nullptr) << "cannot open " << cfg.json_path;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_recovery\",\n");
  std::fprintf(f, "  \"host\": { \"hardware_concurrency\": %u },\n",
               std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"config\": { \"interactions\": %zu, \"users\": %zu, "
               "\"items\": %zu, \"dim\": %zu, \"shards\": %zu, "
               "\"batch\": %zu, \"compaction_threshold\": %zu, "
               "\"index\": \"brute_force\" },\n",
               cfg.interactions, cfg.users, cfg.items, cfg.dim, cfg.shards,
               cfg.batch, cfg.compaction);
  std::fprintf(f,
               "  \"ingest\": { \"baseline_updates_per_sec\": %.1f, "
               "\"journal_updates_per_sec\": %.1f, "
               "\"journal_fsync_updates_per_sec\": %.1f, "
               "\"journal_overhead_pct\": %.2f },\n",
               r.baseline_ups, r.journal_ups, r.journal_fsync_ups,
               r.baseline_ups > 0.0
                   ? 100.0 * (1.0 - r.journal_ups / r.baseline_ups)
                   : 0.0);
  std::fprintf(f,
               "  \"save\": { \"save_ms\": %.2f, \"snapshot_bytes\": %zu, "
               "\"journal_bytes_full_stream\": %zu },\n",
               r.save_ms, r.snapshot_bytes, r.journal_bytes);
  std::fprintf(f,
               "  \"recover\": { \"bootstrap_plain_ms\": %.2f, "
               "\"snapshot_plus_tail_ms\": %.2f, "
               "\"journal_replay_only_ms\": %.2f }\n",
               r.bootstrap_plain_ms, r.recover_snapshot_tail_ms,
               r.recover_replay_only_ms);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", cfg.json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    int64_t v = 0;
    if (arg.rfind("--interactions=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--interactions="), &v) && v > 0);
      cfg.interactions = static_cast<size_t>(v);
    } else if (arg.rfind("--users=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--users="), &v) && v > 0);
      cfg.users = static_cast<size_t>(v);
    } else if (arg.rfind("--items=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--items="), &v) && v > 0);
      cfg.items = static_cast<size_t>(v);
    } else if (arg.rfind("--dim=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--dim="), &v) && v > 0);
      cfg.dim = static_cast<size_t>(v);
    } else if (arg.rfind("--shards=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--shards="), &v) && v >= 0);
      cfg.shards = static_cast<size_t>(v);
    } else if (arg.rfind("--batch=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--batch="), &v) && v >= 1);
      cfg.batch = static_cast<size_t>(v);
    } else if (arg.rfind("--compaction=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--compaction="), &v) && v >= 0);
      cfg.compaction = static_cast<size_t>(v);
    } else if (arg.rfind("--json=", 0) == 0) {
      cfg.json_path = val("--json=");
    } else if (arg == "--quick") {
      cfg.interactions = 2000;
      cfg.users = 600;
      cfg.items = 800;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  bench::PrintHeader(
      "Crash-safety cost model — journal, SAVE, recovery",
      "journaled vs plain ingest, Save() latency/size, restart-to-serving "
      "time for snapshot+tail vs full journal replay");
  std::printf("corpus %zu users x %zu items, dim %zu, %zu interactions, "
              "batch %zu\n\n",
              cfg.users, cfg.items, cfg.dim, cfg.interactions, cfg.batch);

  data::SyntheticConfig dcfg;
  dcfg.name = "bench-recovery";
  dcfg.num_users = cfg.users;
  dcfg.num_items = cfg.items;
  dcfg.num_clusters = 16;
  dcfg.seed = 17;
  const data::Dataset dataset = bench::BuildDataset(dcfg);
  const data::LeaveOneOutSplit split(dataset);
  models::Fism::Options fopts = bench::FismOptions(cfg.dim);
  fopts.epochs = 0;  // untrained: same inference cost, instant Fit
  models::Fism model(fopts);
  SCCF_CHECK(model.Fit(split).ok());
  const std::vector<online::Engine::Event> stream = MakeStream(cfg);

  Results r;

  // ---- Phase 1: ingest three ways -----------------------------------
  {
    online::Engine engine(model, MakeOptions(cfg, "", false));
    SCCF_CHECK(engine.BootstrapFromSplit(split).ok());
    const double s = IngestRange(engine, stream, 0, stream.size(), cfg.batch);
    r.baseline_ups = static_cast<double>(stream.size()) / s;
  }
  ScratchDir journal_dir;  // outlives its engine: phase 3 replays it
  {
    online::Engine engine(model,
                          MakeOptions(cfg, journal_dir.path(), false));
    SCCF_CHECK(engine.BootstrapFromSplit(split).ok());
    const double s = IngestRange(engine, stream, 0, stream.size(), cfg.batch);
    r.journal_ups = static_cast<double>(stream.size()) / s;
    r.journal_bytes = DirBytes(journal_dir.path(), "journal-");
  }
  {
    ScratchDir dir;
    online::Engine engine(model, MakeOptions(cfg, dir.path(), true));
    SCCF_CHECK(engine.BootstrapFromSplit(split).ok());
    const double s = IngestRange(engine, stream, 0, stream.size(), cfg.batch);
    r.journal_fsync_ups = static_cast<double>(stream.size()) / s;
  }
  std::printf("ingest updates/sec: baseline %.0f | journal %.0f (%.1f%% "
              "overhead) | journal+fsync %.0f\n",
              r.baseline_ups, r.journal_ups,
              100.0 * (1.0 - r.journal_ups / r.baseline_ups),
              r.journal_fsync_ups);

  // ---- Phase 2 + 3: save, then the three restart shapes -------------
  ScratchDir save_dir;
  {
    online::Engine engine(model, MakeOptions(cfg, save_dir.path(), false));
    SCCF_CHECK(engine.BootstrapFromSplit(split).ok());
    const size_t tail_from = stream.size() - stream.size() / 4;
    IngestRange(engine, stream, 0, tail_from, cfg.batch);
    Stopwatch save_clock;
    SCCF_CHECK(engine.Save().ok());
    r.save_ms = save_clock.ElapsedMillis();
    IngestRange(engine, stream, tail_from, stream.size(), cfg.batch);
    auto snap = persist::ReadFileToString(save_dir.path() + "/snapshot");
    SCCF_CHECK(snap.ok());
    r.snapshot_bytes = snap->size();
  }
  {
    online::Engine engine(model, MakeOptions(cfg, "", false));
    Stopwatch clock;
    SCCF_CHECK(engine.BootstrapFromSplit(split).ok());
    r.bootstrap_plain_ms = clock.ElapsedMillis();
  }
  {
    online::Engine engine(model, MakeOptions(cfg, save_dir.path(), false));
    Stopwatch clock;
    SCCF_CHECK(engine.BootstrapFromSplit(split).ok());
    r.recover_snapshot_tail_ms = clock.ElapsedMillis();
    ProbeRecovered(engine, cfg);
  }
  {
    online::Engine engine(model,
                          MakeOptions(cfg, journal_dir.path(), false));
    Stopwatch clock;
    SCCF_CHECK(engine.BootstrapFromSplit(split).ok());
    r.recover_replay_only_ms = clock.ElapsedMillis();
    ProbeRecovered(engine, cfg);
  }
  std::printf("save: %.1f ms, snapshot %zu bytes, full-stream journal %zu "
              "bytes\n",
              r.save_ms, r.snapshot_bytes, r.journal_bytes);
  std::printf("restart-to-serving: plain %.1f ms | snapshot+25%%-tail "
              "%.1f ms | full journal replay %.1f ms\n",
              r.bootstrap_plain_ms, r.recover_snapshot_tail_ms,
              r.recover_replay_only_ms);

  if (!cfg.json_path.empty()) WriteJson(cfg, r);
  return 0;
}
