// Ingest throughput of the batch-first serving Engine: T producer
// threads stream interactions through Engine::Ingest in batches of B
// events; we report updates/sec plus p50/p99 per-request latency at each
// (threads, batch_size) sweep point. This is the scaling companion to
// table3_realtime (single-stream per-event latency): the sharded
// service's claim is that ingest scales with cores because a batch takes
// only its touched shards' write locks, and the batch-first claim is
// that grouped events amortize locks, re-inference, and index refreshes
// (one per touched *user*, staged through the per-shard write buffer).
//
// Self-timed, no Google Benchmark dependency. Flags:
//   --threads=1,2,4,8     thread counts to sweep
//   --batch_sizes=1,32    events per IngestRequest to sweep
//   --interactions=N      interactions per sweep point (default 10000)
//   --users=N --items=N   corpus size (default 2000 x 1500)
//   --dim=N               embedding dim (default 32)
//   --shards=N            0 = hardware concurrency (the service default)
//   --compaction=N        write-buffer flush threshold (default 32)
//   --compaction_interval=0,20,100
//                         wall-clock compaction intervals (ms) to sweep;
//                         0 = count-threshold-only (the PR 4 behavior)
//   --background          enable the background compaction thread at
//                         every sweep point (default off: deterministic
//                         staged counts for the query-phase numbers)
//   --run_length=N        consecutive events per user in the stream
//                         (default 4 — e-commerce sessions are bursty;
//                         1 = adversarial all-distinct worst case)
//   --storage=fp32,sq8    embedding storage modes to sweep. Sweeping
//                         both turns on the memory-vs-recall-vs-latency
//                         comparison: each sq8 point reports index
//                         memory bytes and Recall@10 of its neighbor
//                         lists against the fp32 run at the same sweep
//                         point (identical deterministic ingest stream)
//   --scenario=a,b,...    opt-in workload-regime dimension (off by
//                         default; the classic sweep above is
//                         unchanged). Each name is a src/scenario
//                         synthetic generator (bursty, drift,
//                         flash_sale, hot_shard, power_law); its seeded
//                         corpus replaces the uniform round-robin
//                         stream. Per scenario: a COLD engine (empty
//                         bootstrap, every user is a cold start) absorbs
//                         the full log in global timestamp order —
//                         chunked per thread, keyed by the corpus's
//                         ORIGINAL user ids so hot_shard's adversarial
//                         id set actually collides under the serving
//                         shard hash — swept over --threads at the
//                         largest --batch_sizes entry; then one batched
//                         streaming eval (reveal_window=32) reports
//                         prequential throughput and live NDCG@20
//   --json=PATH           machine-readable report (BENCH_engine.json)
//   --quick               small workload for CI smoke
//
// Methodology notes (also in docs/PERFORMANCE.md): the model is an
// untrained FISM — inference cost is identical to a converged model and
// latency does not depend on weight values. Users are drawn round-robin
// in runs of --run_length from the full population so every shard sees
// traffic and batches contain realistic per-user bursts (a batch
// coalesces a user's burst into ONE re-inference + refresh + identify).
// Each thread owns a contiguous chunk of one pre-generated stream.
// Wall-clock spans from a common start signal to the last thread
// finishing; updates/sec = interactions / wall. Latencies are
// per-IngestRequest (request-level serving latency), merged across
// threads for the percentiles.
//
// Query-side buffer-scan cost: after the ingest phase (before Compact)
// each sweep point runs a fixed block of Neighbors queries against
// whatever is still staged and reports the mean latency plus the staged
// row count it saw, then Compacts and re-runs the same block — the
// staged-vs-compacted delta is the per-query price of the write buffer
// at that (threshold, interval) operating point. With an interval > 0
// the first query touching an overdue shard pays its drain (the
// query-path age policy is part of what is measured).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "models/fism.h"
#include "online/engine.h"
#include "online/streaming_eval.h"
#include "quant/sq8.h"
#include "scenario/scenario.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace sccf;

struct Config {
  std::vector<int> threads = {1, 2, 4, 8};
  std::vector<size_t> batch_sizes = {1, 32};
  std::vector<int64_t> intervals = {0};  // --compaction_interval sweep (ms)
  size_t interactions = 10000;
  size_t users = 2000;
  size_t items = 1500;
  size_t dim = 32;
  size_t shards = 0;  // 0 = hardware concurrency
  size_t compaction = 32;
  bool background = false;
  size_t run_length = 4;
  std::vector<quant::Storage> storages = {quant::Storage::kFp32};
  std::vector<std::string> scenarios;  // empty = classic sweep only
  std::string json_path;
};

struct SweepPoint {
  int threads = 0;
  size_t batch_size = 0;
  int64_t interval_ms = 0;
  double updates_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  size_t staged_rows = 0;            // pending upserts entering the query phase
  double query_staged_mean_ms = 0.0;    // Neighbors mean, buffers staged
  double query_compacted_mean_ms = 0.0;  // Neighbors mean, after Compact
  quant::Storage storage = quant::Storage::kFp32;
  size_t memory_bytes = 0;  // index row storage after Compact (fp32 + codes)
  // Mean top-10 neighbor overlap vs the fp32 run at the same sweep
  // point; 1.0 for fp32 itself, 0.0 when fp32 was not swept.
  double recall_at10_vs_fp32 = 1.0;
};

/// Post-compaction neighbor ids (top 10) for a fixed probe block, used
/// to score sq8 rankings against the fp32 reference.
constexpr size_t kRecallProbes = 64;
constexpr size_t kRecallTopK = 10;

std::vector<std::vector<int>> ProbeNeighborIds(online::Engine& engine,
                                               size_t users) {
  std::vector<std::vector<int>> out;
  out.reserve(kRecallProbes);
  for (size_t i = 0; i < kRecallProbes; ++i) {
    const int user = static_cast<int>((i * 2654435761u) % users);
    auto nbrs = engine.Neighbors({user, kRecallTopK});
    SCCF_CHECK(nbrs.ok()) << "recall probe failed for user " << user;
    std::vector<int> ids;
    ids.reserve(nbrs->neighbors.size());
    for (const auto& n : nbrs->neighbors) ids.push_back(n.id);
    out.push_back(std::move(ids));
  }
  return out;
}

double MeanOverlap(const std::vector<std::vector<int>>& ref,
                   const std::vector<std::vector<int>>& got) {
  SCCF_CHECK(ref.size() == got.size());
  double sum = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < ref.size(); ++i) {
    if (ref[i].empty()) continue;
    size_t hits = 0;
    for (int id : got[i]) {
      if (std::find(ref[i].begin(), ref[i].end(), id) != ref[i].end()) {
        ++hits;
      }
    }
    sum += static_cast<double>(hits) / static_cast<double>(ref[i].size());
    ++counted;
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 0.0;
}

/// Fixed query block for the buffer-scan-cost phase: kQueryProbes
/// Neighbors calls round-robin over the bootstrap population.
constexpr size_t kQueryProbes = 256;

double MeanNeighborsMs(online::Engine& engine, size_t users) {
  Stopwatch clock;
  for (size_t i = 0; i < kQueryProbes; ++i) {
    const int user = static_cast<int>((i * 2654435761u) % users);
    auto nbrs = engine.Neighbors({user, std::nullopt});
    SCCF_CHECK(nbrs.ok()) << "query probe failed for user " << user;
  }
  return clock.ElapsedMillis() / static_cast<double>(kQueryProbes);
}

double Percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const size_t idx = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ms.size() - 1)));
  return sorted_ms[idx];
}

SweepPoint RunSweepPoint(const models::Fism& model,
                         const data::LeaveOneOutSplit& split,
                         const Config& cfg, int num_threads,
                         size_t batch_size, int64_t interval_ms,
                         quant::Storage storage,
                         std::vector<std::vector<int>>* probe_neighbors) {
  online::Engine::Options opts;
  opts.beta = 100;
  opts.num_shards = cfg.shards;
  opts.compaction_threshold = cfg.compaction;
  opts.compaction_interval_ms = interval_ms;
  opts.background_compaction = cfg.background;
  opts.index_kind = core::IndexKind::kBruteForce;
  opts.storage = storage;
  online::Engine engine(model, opts);
  SCCF_CHECK(engine.BootstrapFromSplit(split).ok());

  // One pre-generated stream, chunked contiguously per thread. Users
  // arrive in runs of cfg.run_length (bursty sessions).
  std::vector<online::Engine::Event> stream(cfg.interactions);
  for (size_t i = 0; i < cfg.interactions; ++i) {
    const size_t run = i / cfg.run_length;
    stream[i] = {static_cast<int>((run * 2654435761u) % cfg.users),
                 static_cast<int>((i * 40503u) % cfg.items),
                 static_cast<int64_t>(i)};
  }

  std::vector<std::vector<double>> latencies(num_threads);
  std::atomic<bool> start{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  const size_t chunk = (cfg.interactions + num_threads - 1) / num_threads;
  for (int t = 0; t < num_threads; ++t) {
    const size_t lo = t * chunk;
    const size_t hi = std::min(cfg.interactions, lo + chunk);
    latencies[t].reserve(hi > lo ? (hi - lo) / batch_size + 1 : 0);
    workers.emplace_back([&, t, lo, hi] {
      while (!start.load(std::memory_order_acquire)) {
      }
      online::Engine::IngestRequest req;
      req.events.reserve(batch_size);
      for (size_t i = lo; i < hi; i += batch_size) {
        const size_t end = std::min(hi, i + batch_size);
        req.events.assign(stream.begin() + i, stream.begin() + end);
        Stopwatch clock;
        auto resp = engine.Ingest(req);
        latencies[t].push_back(clock.ElapsedMillis());
        if (!resp.ok()) failures.fetch_add(1);
      }
    });
  }

  Stopwatch wall;
  start.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double wall_s = wall.ElapsedSeconds();
  SCCF_CHECK(failures.load() == 0) << failures.load() << " failed batches";

  SweepPoint point;
  point.threads = num_threads;
  point.batch_size = batch_size;
  point.interval_ms = interval_ms;

  // Query phase: staged first (whatever the ingest run left in the
  // buffers — with background compaction or an elapsed interval this can
  // legitimately be 0), then compacted, same probe block both times.
  point.storage = storage;
  point.staged_rows = engine.pending_upserts();
  point.query_staged_mean_ms = MeanNeighborsMs(engine, cfg.users);
  SCCF_CHECK(engine.Compact().ok());
  point.query_compacted_mean_ms = MeanNeighborsMs(engine, cfg.users);
  const online::Engine::StatsSnapshot stats = engine.Stats();
  point.memory_bytes = stats.embedding_bytes + stats.code_bytes;
  *probe_neighbors = ProbeNeighborIds(engine, cfg.users);

  std::vector<double> all;
  for (auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());

  point.updates_per_sec =
      wall_s > 0.0 ? static_cast<double>(cfg.interactions) / wall_s : 0.0;
  point.p50_ms = Percentile(all, 0.50);
  point.p99_ms = Percentile(all, 0.99);
  double sum = 0.0;
  for (double ms : all) sum += ms;
  point.mean_ms = all.empty() ? 0.0 : sum / static_cast<double>(all.size());
  return point;
}

// ------------------------------------------------- scenario dimension

/// One ingest run of a scenario corpus through a cold engine, plus the
/// per-scenario batched streaming-eval summary (filled once per
/// scenario, on its first swept thread count).
struct ScenarioPoint {
  std::string scenario;
  int threads = 0;
  size_t batch_size = 0;
  size_t events = 0;
  double updates_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// Largest shard's share of resident users after the run — 1/shards
  /// for a well-spread corpus, ~1.0 under hot_shard's adversarial ids.
  double max_shard_share = 0.0;
  size_t shards_occupied = 0;
};

struct ScenarioEvalPoint {
  std::string scenario;
  size_t reveal_window = 0;
  double events_per_sec = 0.0;
  size_t predictions = 0;
  double live_ndcg_at20 = 0.0;
};

/// The scenario corpus's interaction log in global timestamp order
/// (generators stamp ts = global event index, so the merge is exact),
/// keyed by ORIGINAL user ids: hot_shard's adversarial property lives in
/// the pre-compaction ids, and the serving hash must see them.
std::vector<online::Engine::Event> ScenarioStream(
    const data::Dataset& dataset) {
  std::vector<online::Engine::Event> stream;
  stream.reserve(dataset.num_actions());
  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const int original = dataset.original_user_ids()[u];
    const auto& seq = dataset.sequence(u);
    const auto& ts = dataset.timestamps(u);
    for (size_t j = 0; j < seq.size(); ++j) {
      stream.push_back({original, seq[j], ts[j]});
    }
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const online::Engine::Event& a,
                      const online::Engine::Event& b) { return a.ts < b.ts; });
  return stream;
}

data::Dataset LoadScenarioCorpus(const std::string& name, const Config& cfg,
                                 size_t spec_users, size_t spec_items) {
  scenario::ScenarioSpec spec;
  spec.generator = name;
  spec.name = "rt-scenario-" + name;
  spec.num_users = spec_users;
  spec.num_items = spec_items;
  // Floor of 6: the streaming eval below skips users shorter than
  // 2 * tail_events, and an all-skipped corpus would report 0 events/s.
  spec.events_per_user =
      std::max<size_t>(6, cfg.interactions / std::max<size_t>(1, spec_users));
  spec.seed = 97;
  if (name == "hot_shard") {
    // The generator mines ids that collide under the serving hash for a
    // given shard count; align it with the engine actually being driven
    // so max_shard_share measures the real pile-up.
    const size_t engine_shards =
        cfg.shards > 0 ? cfg.shards : std::thread::hardware_concurrency();
    spec.params["shards"] = std::to_string(std::max<size_t>(1, engine_shards));
  }
  auto source = scenario::MakeScenario(spec);
  SCCF_CHECK(source.ok()) << source.status().ToString();
  auto ds = (*source)->Load();
  SCCF_CHECK(ds.ok()) << ds.status().ToString();
  return *std::move(ds);
}

/// Cold-engine ingest: empty bootstrap (every user in the stream is a
/// cold start), then the full log in global ts order, chunked
/// contiguously per thread — each chunk stays internally chronological,
/// which is all IngestRequest demands per user.
ScenarioPoint RunScenarioIngest(const std::string& name,
                                const models::Fism& model,
                                const data::Dataset& dataset,
                                const Config& cfg, int num_threads,
                                size_t batch_size) {
  online::Engine::Options opts;
  opts.beta = 100;
  opts.num_shards = cfg.shards;
  opts.compaction_threshold = cfg.compaction;
  opts.background_compaction = cfg.background;
  opts.index_kind = core::IndexKind::kBruteForce;
  online::Engine engine(model, opts);
  SCCF_CHECK(engine.Bootstrap({}).ok());

  const std::vector<online::Engine::Event> stream = ScenarioStream(dataset);
  const size_t total = stream.size();
  std::vector<std::vector<double>> latencies(num_threads);
  std::atomic<bool> start{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  const size_t chunk = (total + num_threads - 1) / num_threads;
  for (int t = 0; t < num_threads; ++t) {
    const size_t lo = std::min(total, t * chunk);
    const size_t hi = std::min(total, lo + chunk);
    latencies[t].reserve(hi > lo ? (hi - lo) / batch_size + 1 : 0);
    workers.emplace_back([&, t, lo, hi] {
      while (!start.load(std::memory_order_acquire)) {
      }
      online::Engine::IngestRequest req;
      req.events.reserve(batch_size);
      for (size_t i = lo; i < hi; i += batch_size) {
        const size_t end = std::min(hi, i + batch_size);
        req.events.assign(stream.begin() + i, stream.begin() + end);
        Stopwatch clock;
        auto resp = engine.Ingest(req);
        latencies[t].push_back(clock.ElapsedMillis());
        if (!resp.ok()) failures.fetch_add(1);
      }
    });
  }
  Stopwatch wall;
  start.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double wall_s = wall.ElapsedSeconds();
  SCCF_CHECK(failures.load() == 0)
      << failures.load() << " failed batches in scenario " << name;

  ScenarioPoint point;
  point.scenario = name;
  point.threads = num_threads;
  point.batch_size = batch_size;
  point.events = total;
  point.updates_per_sec =
      wall_s > 0.0 ? static_cast<double>(total) / wall_s : 0.0;
  size_t max_users = 0, total_users = 0;
  for (const auto& s : engine.ShardStats()) {
    max_users = std::max(max_users, s.users);
    total_users += s.users;
    point.shards_occupied += s.users > 0;
  }
  point.max_shard_share =
      total_users > 0
          ? static_cast<double>(max_users) / static_cast<double>(total_users)
          : 0.0;

  std::vector<double> all;
  for (auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  point.p50_ms = Percentile(all, 0.50);
  point.p99_ms = Percentile(all, 0.99);
  return point;
}

/// Batched prequential eval over the scenario corpus: predict 32 ahead,
/// reveal 32 in one Ingest (docs/PERFORMANCE.md, batched-reveal
/// methodology). Untrained model, same as the ingest runs.
ScenarioEvalPoint RunScenarioEval(const std::string& name,
                                  const models::Fism& model,
                                  const data::Dataset& dataset,
                                  const Config& cfg) {
  online::StreamingEvalOptions eopts;
  eopts.tail_events = 2;  // scenario corpora can be as short as 6/user
  eopts.cutoffs = {20};
  eopts.reveal_window = 32;
  eopts.compaction_threshold = cfg.compaction;
  auto result = online::EvaluateStreamingUserBased(model, dataset, eopts);
  SCCF_CHECK(result.ok()) << result.status().ToString();
  ScenarioEvalPoint point;
  point.scenario = name;
  point.reveal_window = eopts.reveal_window;
  point.events_per_sec = result->events_per_sec;
  point.predictions = result->num_predictions;
  point.live_ndcg_at20 = result->LiveNdcgAt(20);
  return point;
}

void WriteJson(const Config& cfg, const std::vector<SweepPoint>& points,
               const std::vector<ScenarioPoint>& scenario_points,
               const std::vector<ScenarioEvalPoint>& scenario_evals,
               double speedup_4t, size_t b_max, size_t b_min,
               double speedup_batch) {
  std::string storages_json;
  for (quant::Storage st : cfg.storages) {
    if (!storages_json.empty()) storages_json += ", ";
    storages_json += '"';
    storages_json += quant::StorageName(st);
    storages_json += '"';
  }
  std::FILE* f = std::fopen(cfg.json_path.c_str(), "w");
  SCCF_CHECK(f != nullptr) << "cannot open " << cfg.json_path;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_realtime_throughput\",\n");
  std::fprintf(f, "  \"host\": { \"hardware_concurrency\": %u },\n",
               std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"config\": { \"interactions\": %zu, \"users\": %zu, "
               "\"items\": %zu, \"dim\": %zu, \"shards\": %zu, "
               "\"compaction_threshold\": %zu, \"background\": %s, "
               "\"query_probes\": %zu, \"run_length\": %zu, "
               "\"index\": \"brute_force\", \"beta\": 100, "
               "\"storages\": [%s], \"recall_probes\": %zu },\n",
               cfg.interactions, cfg.users, cfg.items, cfg.dim, cfg.shards,
               cfg.compaction, cfg.background ? "true" : "false",
               kQueryProbes, cfg.run_length, storages_json.c_str(),
               kRecallProbes);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    // scripts/ci.sh greps the "threads"/"batch_size"/"updates_per_sec"
    // prefix of each row; new fields must stay appended after it.
    std::fprintf(
        f,
        "    { \"threads\": %d, \"batch_size\": %zu, "
        "\"updates_per_sec\": %.1f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"mean_ms\": %.4f, \"interval_ms\": %lld, \"staged_rows\": %zu, "
        "\"query_staged_mean_ms\": %.4f, "
        "\"query_compacted_mean_ms\": %.4f, \"storage\": \"%s\", "
        "\"memory_bytes\": %zu, \"recall_at10_vs_fp32\": %.4f }%s\n",
        p.threads, p.batch_size, p.updates_per_sec, p.p50_ms, p.p99_ms,
        p.mean_ms, static_cast<long long>(p.interval_ms), p.staged_rows,
        p.query_staged_mean_ms, p.query_compacted_mean_ms,
        quant::StorageName(p.storage), p.memory_bytes,
        p.recall_at10_vs_fp32, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (!scenario_points.empty()) {
    // Field order differs from the classic rows on purpose: "events"
    // sits between batch_size and updates_per_sec so the scripts/ci.sh
    // rt_ups() prefix grep over the classic rows can never match a
    // scenario row.
    std::fprintf(f, "  \"scenario_results\": [\n");
    for (size_t i = 0; i < scenario_points.size(); ++i) {
      const ScenarioPoint& p = scenario_points[i];
      std::fprintf(
          f,
          "    { \"scenario\": \"%s\", \"threads\": %d, "
          "\"batch_size\": %zu, \"events\": %zu, "
          "\"updates_per_sec\": %.1f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
          "\"max_shard_share\": %.4f, \"shards_occupied\": %zu }%s\n",
          p.scenario.c_str(), p.threads, p.batch_size, p.events,
          p.updates_per_sec, p.p50_ms, p.p99_ms, p.max_shard_share,
          p.shards_occupied, i + 1 < scenario_points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"scenario_eval\": [\n");
    for (size_t i = 0; i < scenario_evals.size(); ++i) {
      const ScenarioEvalPoint& p = scenario_evals[i];
      std::fprintf(
          f,
          "    { \"scenario\": \"%s\", \"reveal_window\": %zu, "
          "\"eval_events_per_sec\": %.1f, \"predictions\": %zu, "
          "\"live_ndcg_at20\": %.4f }%s\n",
          p.scenario.c_str(), p.reveal_window, p.events_per_sec,
          p.predictions, p.live_ndcg_at20,
          i + 1 < scenario_evals.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
  }
  std::fprintf(f, "  \"speedup_4t_vs_1t\": %.3f,\n", speedup_4t);
  std::fprintf(f,
               "  \"batch_speedup\": { \"max\": %zu, \"min\": %zu, "
               "\"updates_per_sec_ratio\": %.3f }\n",
               b_max, b_min, speedup_batch);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", cfg.json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--threads=", 0) == 0) {
      cfg.threads.clear();
      for (const std::string& part : Split(val("--threads="), ',')) {
        int64_t t = 0;
        SCCF_CHECK(ParseInt64(part, &t) && t >= 1) << "bad --threads";
        cfg.threads.push_back(static_cast<int>(t));
      }
    } else if (arg.rfind("--batch_sizes=", 0) == 0) {
      cfg.batch_sizes.clear();
      for (const std::string& part : Split(val("--batch_sizes="), ',')) {
        int64_t b = 0;
        SCCF_CHECK(ParseInt64(part, &b) && b >= 1) << "bad --batch_sizes";
        cfg.batch_sizes.push_back(static_cast<size_t>(b));
      }
    } else if (arg.rfind("--interactions=", 0) == 0) {
      int64_t v = 0;
      SCCF_CHECK(ParseInt64(val("--interactions="), &v) && v > 0);
      cfg.interactions = static_cast<size_t>(v);
    } else if (arg.rfind("--users=", 0) == 0) {
      int64_t v = 0;
      SCCF_CHECK(ParseInt64(val("--users="), &v) && v > 0);
      cfg.users = static_cast<size_t>(v);
    } else if (arg.rfind("--items=", 0) == 0) {
      int64_t v = 0;
      SCCF_CHECK(ParseInt64(val("--items="), &v) && v > 0);
      cfg.items = static_cast<size_t>(v);
    } else if (arg.rfind("--dim=", 0) == 0) {
      int64_t v = 0;
      SCCF_CHECK(ParseInt64(val("--dim="), &v) && v > 0);
      cfg.dim = static_cast<size_t>(v);
    } else if (arg.rfind("--shards=", 0) == 0) {
      int64_t v = 0;
      SCCF_CHECK(ParseInt64(val("--shards="), &v) && v >= 0);
      cfg.shards = static_cast<size_t>(v);
    } else if (arg.rfind("--compaction=", 0) == 0) {
      int64_t v = 0;
      SCCF_CHECK(ParseInt64(val("--compaction="), &v) && v >= 0);
      cfg.compaction = static_cast<size_t>(v);
    } else if (arg.rfind("--compaction_interval=", 0) == 0) {
      cfg.intervals.clear();
      for (const std::string& part :
           Split(val("--compaction_interval="), ',')) {
        int64_t ms = 0;
        SCCF_CHECK(ParseInt64(part, &ms) && ms >= 0)
            << "bad --compaction_interval";
        cfg.intervals.push_back(ms);
      }
    } else if (arg == "--background") {
      cfg.background = true;
    } else if (arg.rfind("--run_length=", 0) == 0) {
      int64_t v = 0;
      SCCF_CHECK(ParseInt64(val("--run_length="), &v) && v >= 1);
      cfg.run_length = static_cast<size_t>(v);
    } else if (arg.rfind("--storage=", 0) == 0) {
      cfg.storages.clear();
      for (const std::string& part : Split(val("--storage="), ',')) {
        quant::Storage st = quant::Storage::kFp32;
        SCCF_CHECK(quant::ParseStorage(part, &st))
            << "bad --storage (expected fp32 or sq8)";
        cfg.storages.push_back(st);
      }
    } else if (arg.rfind("--scenario=", 0) == 0) {
      cfg.scenarios = Split(val("--scenario="), ',');
      for (const std::string& s : cfg.scenarios) {
        SCCF_CHECK(!s.empty()) << "bad --scenario (empty name)";
      }
    } else if (arg.rfind("--json=", 0) == 0) {
      cfg.json_path = val("--json=");
    } else if (arg == "--quick") {
      cfg.interactions = 2000;
      cfg.users = 600;
      cfg.items = 800;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  bench::PrintHeader(
      "Real-time ingest throughput — batch-first Engine",
      "T producer threads x Engine::Ingest batches of B events; "
      "updates/sec and p50/p99 request latency per sweep point");
  std::printf(
      "host hardware_concurrency=%u  corpus %zu users x %zu items, dim "
      "%zu, shards=%zu (0 = hw), compaction=%zu, background=%s, "
      "run_length=%zu\n\n",
      std::thread::hardware_concurrency(), cfg.users, cfg.items, cfg.dim,
      cfg.shards, cfg.compaction, cfg.background ? "on" : "off",
      cfg.run_length);

  // Scenario specs use the pre-filter flag dimensions; the classic-sweep
  // corpus below overwrites cfg.users/items with its post-filter sizes.
  const size_t spec_users = cfg.users;
  const size_t spec_items = cfg.items;

  data::SyntheticConfig syn;
  syn.name = "rt-throughput";
  syn.num_users = cfg.users;
  syn.num_items = cfg.items;
  syn.num_clusters = 20;
  syn.min_actions = 10;
  syn.max_actions = 30;
  syn.seed = 97;
  data::Dataset dataset = bench::BuildDataset(syn);
  data::LeaveOneOutSplit split(dataset);
  // BuildDataset 5-core-filters, so the live corpus can be smaller than
  // the flags; the stream must draw from the post-filter id spaces.
  cfg.users = split.num_users();
  cfg.items = dataset.num_items();

  // Untrained FISM: identical inference cost to a converged model.
  models::Fism::Options fopts;
  fopts.dim = cfg.dim;
  fopts.epochs = 0;
  models::Fism fism(fopts);
  SCCF_CHECK(fism.Fit(split).ok());

  std::vector<SweepPoint> points;
  TablePrinter table({"storage", "threads", "batch", "intvl(ms)",
                      "updates/sec", "p50 (ms)", "p99 (ms)", "staged",
                      "q-staged(ms)", "q-compact(ms)", "mem(KB)",
                      "rec@10"});
  for (int t : cfg.threads) {
    for (size_t b : cfg.batch_sizes) {
      for (int64_t interval : cfg.intervals) {
        // Storage innermost: the fp32 run at this point (when swept)
        // becomes the recall reference for its sq8 twin — identical
        // deterministic ingest stream, so the neighbor lists are
        // directly comparable.
        std::vector<std::vector<int>> fp32_ref;
        for (quant::Storage storage : cfg.storages) {
          std::vector<std::vector<int>> probes;
          SweepPoint p = RunSweepPoint(fism, split, cfg, t, b, interval,
                                       storage, &probes);
          if (storage == quant::Storage::kFp32) {
            fp32_ref = probes;
            p.recall_at10_vs_fp32 = 1.0;
          } else if (!fp32_ref.empty()) {
            p.recall_at10_vs_fp32 = MeanOverlap(fp32_ref, probes);
          } else {
            p.recall_at10_vs_fp32 = 0.0;  // no fp32 reference swept
          }
          points.push_back(p);
          table.AddRow({quant::StorageName(p.storage),
                        std::to_string(p.threads),
                        std::to_string(p.batch_size),
                        std::to_string(p.interval_ms),
                        FormatFloat(p.updates_per_sec, 1),
                        FormatFloat(p.p50_ms, 4), FormatFloat(p.p99_ms, 4),
                        std::to_string(p.staged_rows),
                        FormatFloat(p.query_staged_mean_ms, 4),
                        FormatFloat(p.query_compacted_mean_ms, 4),
                        std::to_string(p.memory_bytes / 1024),
                        FormatFloat(p.recall_at10_vs_fp32, 3)});
        }
      }
    }
  }
  table.Print();

  // Scaling headlines, derived from what was actually swept: threads at
  // the smallest batch size (4 vs 1 thread when both ran), and the
  // largest vs smallest batch size at the lowest thread count.
  const size_t b_min =
      *std::min_element(cfg.batch_sizes.begin(), cfg.batch_sizes.end());
  const size_t b_max =
      *std::max_element(cfg.batch_sizes.begin(), cfg.batch_sizes.end());
  const int t_min = *std::min_element(cfg.threads.begin(),
                                      cfg.threads.end());
  double ups_1t = 0.0, ups_4t = 0.0, ups_bmin = 0.0, ups_bmax = 0.0;
  for (const SweepPoint& p : points) {
    // Headlines come from the first swept interval (0 unless overridden)
    // and the first swept storage, so neither extra dimension skews the
    // thread/batch ratios.
    if (p.interval_ms != cfg.intervals.front()) continue;
    if (p.storage != cfg.storages.front()) continue;
    if (p.batch_size == b_min && p.threads == 1) ups_1t = p.updates_per_sec;
    if (p.batch_size == b_min && p.threads == 4) ups_4t = p.updates_per_sec;
    if (p.threads == t_min && p.batch_size == b_min) {
      ups_bmin = p.updates_per_sec;
    }
    if (p.threads == t_min && p.batch_size == b_max) {
      ups_bmax = p.updates_per_sec;
    }
  }
  const double speedup_4t = ups_1t > 0.0 ? ups_4t / ups_1t : 0.0;
  const double speedup_batch =
      b_max > b_min && ups_bmin > 0.0 ? ups_bmax / ups_bmin : 0.0;
  if (ups_1t > 0.0 && ups_4t > 0.0) {
    std::printf("\nspeedup 4 threads vs 1 (batch %zu): %.2fx (host has %u "
                "hardware threads)\n",
                b_min, speedup_4t, std::thread::hardware_concurrency());
  }
  if (speedup_batch > 0.0) {
    std::printf("speedup batch %zu vs %zu (%d thread%s): %.2fx\n", b_max,
                b_min, t_min, t_min == 1 ? "" : "s", speedup_batch);
  }

  // Scenario dimension (opt-in): cold-engine ingest of each workload
  // regime at the largest swept batch size, then one batched streaming
  // eval per scenario.
  std::vector<ScenarioPoint> scenario_points;
  std::vector<ScenarioEvalPoint> scenario_evals;
  if (!cfg.scenarios.empty()) {
    TablePrinter stable({"scenario", "threads", "batch", "events",
                         "updates/sec", "p50 (ms)", "p99 (ms)", "max-shard",
                         "occupied"});
    TablePrinter etable(
        {"scenario", "window", "events/sec", "preds", "live ndcg@20"});
    for (const std::string& name : cfg.scenarios) {
      const data::Dataset corpus =
          LoadScenarioCorpus(name, cfg, spec_users, spec_items);
      data::LeaveOneOutSplit sc_split(corpus);
      models::Fism::Options sfopts;
      sfopts.dim = cfg.dim;
      sfopts.epochs = 0;
      models::Fism sc_fism(sfopts);
      SCCF_CHECK(sc_fism.Fit(sc_split).ok());
      for (int t : cfg.threads) {
        const ScenarioPoint p =
            RunScenarioIngest(name, sc_fism, corpus, cfg, t, b_max);
        scenario_points.push_back(p);
        stable.AddRow({p.scenario, std::to_string(p.threads),
                       std::to_string(p.batch_size),
                       std::to_string(p.events),
                       FormatFloat(p.updates_per_sec, 1),
                       FormatFloat(p.p50_ms, 4), FormatFloat(p.p99_ms, 4),
                       FormatFloat(p.max_shard_share, 3),
                       std::to_string(p.shards_occupied)});
      }
      const ScenarioEvalPoint e = RunScenarioEval(name, sc_fism, corpus, cfg);
      scenario_evals.push_back(e);
      etable.AddRow({e.scenario, std::to_string(e.reveal_window),
                     FormatFloat(e.events_per_sec, 1),
                     std::to_string(e.predictions),
                     FormatFloat(e.live_ndcg_at20, 4)});
    }
    std::printf(
        "\nscenario ingest — cold engine, original user ids, batch %zu:\n",
        b_max);
    stable.Print();
    std::printf("\nscenario batched streaming eval (reveal_window=32):\n");
    etable.Print();
  }

  if (!cfg.json_path.empty()) {
    WriteJson(cfg, points, scenario_points, scenario_evals, speedup_4t,
              b_max, b_min, speedup_batch);
  }
  return 0;
}
