// Ablation (DESIGN.md §4): the Eq. 15 integrating MLP vs naive fusion.
//
// Compares four ways of producing the final list from the same two
// candidate streams: UI only, UU only, z-normalised score sum (Eq. 16
// features without the learned merger), and the full SCCF MLP. Also
// toggles the per-user normalisation inside the sum fusion.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/sccf.h"
#include "core/user_based.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {
using namespace sccf;

std::vector<std::string> Row(const std::string& name,
                             const eval::EvalResult& r) {
  return {name, FormatFloat(r.HrAt(20), 4), FormatFloat(r.HrAt(50), 4),
          FormatFloat(r.NdcgAt(20), 4), FormatFloat(r.NdcgAt(50), 4)};
}
}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation — integrating-component fusion strategies",
      "UI only / UU only / z-score sum / learned MLP merger (Eq. 15-17)");

  data::Dataset dataset =
      bench::BuildDataset(data::SynMl1mConfig(bench::BenchScale()));
  data::LeaveOneOutSplit split(dataset);

  std::printf("[training FISM ...]\n");
  std::fflush(stdout);
  models::Fism fism(bench::FismOptions());
  SCCF_CHECK(fism.Fit(split).ok());

  TablePrinter table({"Fusion", "HR@20", "HR@50", "NDCG@20", "NDCG@50"});
  table.AddRow(Row("UI only (FISM)", bench::EvalModel(fism, split)));

  core::UserBasedComponent::Options uu_opts;
  uu_opts.beta = 100;
  uu_opts.include_validation = true;
  core::UserBasedComponent uu(fism, uu_opts);
  SCCF_CHECK(uu.Fit(split).ok());
  table.AddRow(Row("UU only", bench::EvalModel(uu, split)));

  core::Sccf::Options sum_opts;
  sum_opts.num_candidates = 100;
  sum_opts.score_sum_fusion = true;
  core::Sccf sum_fusion(fism, sum_opts);
  SCCF_CHECK(sum_fusion.Fit(split).ok());
  table.AddRow(Row("z-score sum (no merger)",
                   bench::EvalModel(sum_fusion, split)));

  core::Sccf::Options mlp_opts;
  mlp_opts.num_candidates = 100;
  core::Sccf mlp_fusion(fism, mlp_opts);
  SCCF_CHECK(mlp_fusion.Fit(split).ok());
  table.AddRow(Row("learned MLP merger (SCCF)",
                   bench::EvalModel(mlp_fusion, split)));

  table.Print();
  std::printf(
      "\nExpected shape: both fusions beat either stream alone; the "
      "learned merger matches or beats the hand-tuned sum, justifying "
      "Eq. 15's fine-grained feature use.\n");
  return 0;
}
