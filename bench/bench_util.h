#ifndef SCCF_BENCH_BENCH_UTIL_H_
#define SCCF_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/fism.h"
#include "models/sasrec.h"

namespace sccf::bench {

/// Global size multiplier for benchmark workloads, read once from
/// SCCF_BENCH_SCALE (default 1.0). Applied to user counts of the preset
/// datasets so the suite can be shrunk for smoke runs or grown on beefier
/// machines.
double BenchScale();

/// SCCF_BENCH_FULL=1 enables the expensive full sweeps (all four datasets
/// in Fig. 5, larger corpora in Table III).
bool FullMode();

/// The four Table-I regime datasets at the current bench scale.
struct BenchDataset {
  std::string name;
  data::SyntheticConfig config;
};
std::vector<BenchDataset> TableOneDatasets();

/// Generates, 5-core-filters (paper mode), and wraps a preset config.
data::Dataset BuildDataset(const data::SyntheticConfig& config);

/// Benchmark-wide model settings (Sec. IV-A4 scaled to CPU budgets).
models::Fism::Options FismOptions(size_t dim = 32);
models::SasRec::Options SasRecOptions(const data::Dataset& dataset,
                                      size_t dim = 32);

/// Leave-one-out test evaluation at the paper's cutoffs {20, 50, 100}.
eval::EvalResult EvalModel(const models::Recommender& model,
                           const data::LeaveOneOutSplit& split);

/// Prints a banner naming the experiment and the paper artifact it
/// regenerates.
void PrintHeader(const std::string& artifact, const std::string& detail);

/// "+12.3%" / "-4.5%" improvement formatting used by Table II.
std::string FormatImprovement(double ours, double base);

}  // namespace sccf::bench

#endif  // SCCF_BENCH_BENCH_UTIL_H_
