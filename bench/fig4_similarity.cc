// Regenerates paper Figure 4: the distribution of user-item cosine
// similarities for (a) the ground-truth next item, (b) the UI candidate
// list, and (c) the user-based (UU) candidate list, under SASRec-SCCF on
// the ML-20M-regime dataset.
//
// Expected shape (Sec. IV-C): mean cosine of UI candidates > ground truth
// > UU candidates — the UI component over-concentrates near the user while
// the user-based component reaches farther items, which is why the two
// complement each other.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/sccf.h"
#include "tensor/tensor.h"
#include "util/string_util.h"

namespace {

using namespace sccf;

struct Series {
  std::vector<double> values;
  double Mean() const {
    double s = 0.0;
    for (double v : values) s += v;
    return values.empty() ? 0.0 : s / values.size();
  }
  double Stddev() const {
    const double m = Mean();
    double s = 0.0;
    for (double v : values) s += (v - m) * (v - m);
    return values.empty() ? 0.0 : std::sqrt(s / values.size());
  }
};

void PrintHistogram(const char* name, const Series& s) {
  constexpr int kBuckets = 12;
  std::vector<int> counts(kBuckets, 0);
  for (double v : s.values) {
    int b = static_cast<int>((v + 0.6) / 1.2 * kBuckets);
    b = std::max(0, std::min(kBuckets - 1, b));
    ++counts[b];
  }
  int max_count = 1;
  for (int c : counts) max_count = std::max(max_count, c);
  std::printf("%s (mean %.4f, std %.4f)\n", name, s.Mean(), s.Stddev());
  for (int b = 0; b < kBuckets; ++b) {
    const double lo = -0.6 + 1.2 * b / kBuckets;
    std::printf("  [%+0.2f,%+0.2f)  %5d  %s\n", lo, lo + 1.2 / kBuckets,
                counts[b],
                std::string(counts[b] * 60 / max_count, '#').c_str());
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 4 — user/item cosine similarity: ground truth vs UI vs UU",
      "SASRec-SCCF on the ML-20M-regime dataset; candidate-set scores are "
      "per-user means over the list");

  data::Dataset dataset =
      bench::BuildDataset(data::SynMl20mConfig(bench::BenchScale() * 0.6));
  data::LeaveOneOutSplit split(dataset);

  std::printf("[training SASRec ...]\n");
  std::fflush(stdout);
  models::SasRec sasrec(bench::SasRecOptions(dataset));
  SCCF_CHECK(sasrec.Fit(split).ok());

  core::Sccf::Options opts;
  opts.num_candidates = 100;
  core::Sccf sccf(sasrec, opts);
  SCCF_CHECK(sccf.Fit(split).ok());

  const size_t d = sasrec.embedding_dim();
  Series ground_truth, ui_series, uu_series;
  std::vector<float> mu(d);
  for (size_t u = 0; u < split.num_users(); ++u) {
    if (!split.evaluable(u)) continue;
    const auto history = split.TrainPlusValidSequence(u);
    if (history.empty()) continue;
    sasrec.InferUserEmbedding(history, mu.data());

    ground_truth.values.push_back(tensor_ops::Cosine(
        mu.data(), sasrec.ItemEmbedding(split.TestItem(u)), d));

    const auto lists = sccf.CandidateListsFor(u, history);
    auto mean_cos = [&](const core::CandidateList& list) {
      double s = 0.0;
      for (const auto& c : list) {
        s += tensor_ops::Cosine(mu.data(), sasrec.ItemEmbedding(c.id), d);
      }
      return list.empty() ? 0.0 : s / list.size();
    };
    if (!lists.ui.empty()) ui_series.values.push_back(mean_cos(lists.ui));
    if (!lists.uu.empty()) uu_series.values.push_back(mean_cos(lists.uu));
  }

  PrintHistogram("Ground truth (user vs next item)", ground_truth);
  PrintHistogram("UI candidate list", ui_series);
  PrintHistogram("UU candidate list", uu_series);

  std::printf(
      "\nSummary: mean(UI) = %.4f  |  mean(ground truth) = %.4f  |  "
      "mean(UU) = %.4f\nExpected shape (paper Fig. 4): "
      "mean(UI) > mean(ground truth) > mean(UU).\n",
      ui_series.Mean(), ground_truth.Mean(), uu_series.Mean());
  return 0;
}
