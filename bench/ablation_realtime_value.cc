// Ablation (extends Table III): real-time updates measured in *quality*,
// not just latency.
//
// Prequential replay of every user's last events in global time order:
// before each event, the held-out item is ranked by Eq. 12 neighbor votes
// under a live-updated index vs a frozen pre-stream snapshot (what a
// periodically retrained transductive system would serve between
// retrains). The gap is the accuracy bought by the streaming refresh the
// paper deploys.

#include <cstdio>

#include "bench/bench_util.h"
#include "online/streaming_eval.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {
using namespace sccf;
}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation — quality value of real-time index updates",
      "prequential replay of each user's tail: live-updated vs frozen "
      "user index, Eq. 12 neighbor-vote ranking");

  // A sharply drifting regime (the Fig.-1 motivation) with a deep replay
  // tail, so the frozen snapshot's corpus actually goes stale: by the end
  // of the replay every neighbor's index entry is ~20 events old.
  data::SyntheticConfig cfg = data::SynMl1mConfig(bench::BenchScale());
  cfg.interest_drift = 0.5;
  cfg.num_secondary_interests = 3;
  cfg.primary_affinity = 0.45;
  data::Dataset dataset = bench::BuildDataset(cfg);
  data::LeaveOneOutSplit split(dataset);

  std::printf("[training FISM ...]\n");
  std::fflush(stdout);
  models::Fism fism(bench::FismOptions());
  SCCF_CHECK(fism.Fit(split).ok());

  online::StreamingEvalOptions opts;
  opts.tail_events = 20;
  opts.cutoffs = {20, 50};
  auto result = online::EvaluateStreamingUserBased(fism, dataset, opts);
  SCCF_CHECK(result.ok()) << result.status().ToString();

  TablePrinter table({"Regime", "HR@20", "NDCG@20", "HR@50", "NDCG@50"});
  table.AddRow({"Stale query (transductive)",
                FormatFloat(result->stale_query_hr[0], 4),
                FormatFloat(result->stale_query_ndcg[0], 4),
                FormatFloat(result->stale_query_hr[1], 4),
                FormatFloat(result->stale_query_ndcg[1], 4)});
  table.AddRow({"Frozen corpus, fresh query",
                FormatFloat(result->frozen_hr[0], 4),
                FormatFloat(result->frozen_ndcg[0], 4),
                FormatFloat(result->frozen_hr[1], 4),
                FormatFloat(result->frozen_ndcg[1], 4)});
  table.AddRow({"Live (SCCF streaming)", FormatFloat(result->live_hr[0], 4),
                FormatFloat(result->live_ndcg[0], 4),
                FormatFloat(result->live_hr[1], 4),
                FormatFloat(result->live_ndcg[1], 4)});
  table.Print();
  std::printf(
      "\n%zu prequential predictions.\n"
      "Expected shape: the stale-query regime (what a transductive "
      "user-based model serves, since it cannot re-infer users between "
      "retrains) loses clearly to both fresh-query regimes — the Fig.-1 "
      "drift argument quantified. Live vs frozen-corpus is nearly neutral "
      "on a static catalog: the freshness value concentrates on the query "
      "side, which is exactly the part SCCF's inductive inference makes "
      "cheap (Table III).\n",
      result->num_predictions);
  return 0;
}
