// Regenerates paper Table II: the main top-N comparison.
//
// Rows per dataset: HR/NDCG @ {20,50,100} for Pop, ItemKNN, UserKNN,
// BPR-MF, FISM, FISM-UU, FISM-SCCF (improvement vs FISM), SASRec,
// SASRec-UU, SASRec-SCCF (improvement vs SASRec).
//
// Expected shapes vs the paper: personalized > Pop/ItemKNN; SASRec is the
// strongest baseline; X-SCCF > X for both bases on every metric;
// FISM-UU >= FISM while SASRec-UU < SASRec.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench/bench_util.h"
#include "core/sccf.h"
#include "core/user_based.h"
#include "eval/evaluator.h"
#include "models/bpr_mf.h"
#include "models/item_knn.h"
#include "models/pop.h"
#include "models/user_knn.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace sccf;

std::vector<std::string> MetricRow(const std::string& name,
                                   const eval::EvalResult& r) {
  std::vector<std::string> row = {name};
  for (double v : r.hr) row.push_back(FormatFloat(v, 4));
  for (double v : r.ndcg) row.push_back(FormatFloat(v, 4));
  return row;
}

core::Sccf::Options SccfOptions() {
  core::Sccf::Options opts;
  opts.num_candidates = 100;
  opts.user_based.beta = 100;      // paper default
  opts.user_based.infer_window = 15;
  opts.user_based.vote_window = 15;
  return opts;
}

void RunDataset(const bench::BenchDataset& preset) {
  Stopwatch clock;
  data::Dataset dataset = bench::BuildDataset(preset.config);
  data::LeaveOneOutSplit split(dataset);
  std::printf("--- %s: %zu users, %zu items, %zu actions ---\n",
              preset.name.c_str(), dataset.num_users(), dataset.num_items(),
              dataset.num_actions());

  TablePrinter table({"Method", "HR@20", "HR@50", "HR@100", "NDCG@20",
                      "NDCG@50", "NDCG@100"});

  models::PopRecommender pop;
  SCCF_CHECK(pop.Fit(split).ok());
  table.AddRow(MetricRow("Pop", bench::EvalModel(pop, split)));

  models::ItemKnn item_knn;
  SCCF_CHECK(item_knn.Fit(split).ok());
  table.AddRow(MetricRow("ItemKNN", bench::EvalModel(item_knn, split)));

  models::UserKnn user_knn({.num_neighbors = 100});
  SCCF_CHECK(user_knn.Fit(split).ok());
  table.AddRow(MetricRow("UserKNN", bench::EvalModel(user_knn, split)));

  models::BprMf::Options bpr_opts;
  bpr_opts.dim = 32;
  bpr_opts.epochs = 20;
  models::BprMf bpr(bpr_opts);
  SCCF_CHECK(bpr.Fit(split).ok());
  table.AddRow(MetricRow("BPR-MF", bench::EvalModel(bpr, split)));

  // FISM family.
  models::Fism fism(bench::FismOptions());
  SCCF_CHECK(fism.Fit(split).ok());
  const eval::EvalResult fism_res = bench::EvalModel(fism, split);
  table.AddRow(MetricRow("FISM", fism_res));

  core::UserBasedComponent::Options uu_opts = SccfOptions().user_based;
  uu_opts.include_validation = true;  // test-time snapshot
  core::UserBasedComponent fism_uu(fism, uu_opts);
  SCCF_CHECK(fism_uu.Fit(split).ok());
  table.AddRow(MetricRow("FISM-UU", bench::EvalModel(fism_uu, split)));

  core::Sccf fism_sccf(fism, SccfOptions());
  SCCF_CHECK(fism_sccf.Fit(split).ok());
  const eval::EvalResult fism_sccf_res = bench::EvalModel(fism_sccf, split);
  table.AddRow(MetricRow("FISM-SCCF", fism_sccf_res));

  // SASRec family.
  models::SasRec sasrec(bench::SasRecOptions(dataset));
  SCCF_CHECK(sasrec.Fit(split).ok());
  const eval::EvalResult sas_res = bench::EvalModel(sasrec, split);
  table.AddRow(MetricRow("SASRec", sas_res));

  core::UserBasedComponent sas_uu(sasrec, uu_opts);
  SCCF_CHECK(sas_uu.Fit(split).ok());
  table.AddRow(MetricRow("SASRec-UU", bench::EvalModel(sas_uu, split)));

  core::Sccf sas_sccf(sasrec, SccfOptions());
  SCCF_CHECK(sas_sccf.Fit(split).ok());
  const eval::EvalResult sas_sccf_res = bench::EvalModel(sas_sccf, split);
  table.AddRow(MetricRow("SASRec-SCCF", sas_sccf_res));

  table.Print();
  std::printf(
      "FISM-SCCF vs FISM:    HR@20 %s, HR@100 %s, NDCG@20 %s, NDCG@100 %s\n",
      bench::FormatImprovement(fism_sccf_res.HrAt(20), fism_res.HrAt(20))
          .c_str(),
      bench::FormatImprovement(fism_sccf_res.HrAt(100), fism_res.HrAt(100))
          .c_str(),
      bench::FormatImprovement(fism_sccf_res.NdcgAt(20), fism_res.NdcgAt(20))
          .c_str(),
      bench::FormatImprovement(fism_sccf_res.NdcgAt(100),
                               fism_res.NdcgAt(100))
          .c_str());
  std::printf(
      "SASRec-SCCF vs SASRec: HR@20 %s, HR@100 %s, NDCG@20 %s, NDCG@100 "
      "%s\n",
      bench::FormatImprovement(sas_sccf_res.HrAt(20), sas_res.HrAt(20))
          .c_str(),
      bench::FormatImprovement(sas_sccf_res.HrAt(100), sas_res.HrAt(100))
          .c_str(),
      bench::FormatImprovement(sas_sccf_res.NdcgAt(20), sas_res.NdcgAt(20))
          .c_str(),
      bench::FormatImprovement(sas_sccf_res.NdcgAt(100), sas_res.NdcgAt(100))
          .c_str());
  std::printf("[%s done in %.1fs]\n\n", preset.name.c_str(),
              clock.ElapsedSeconds());
  std::fflush(stdout);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table II — top-N performance comparison",
      "Pop / ItemKNN / UserKNN / BPR-MF / FISM(+UU,+SCCF) / "
      "SASRec(+UU,+SCCF), HR & NDCG @ {20,50,100}, leave-one-out full "
      "ranking");
  // SCCF_BENCH_ONLY=<substring> restricts to matching datasets (dev aid).
  const char* only = std::getenv("SCCF_BENCH_ONLY");
  for (const auto& preset : bench::TableOneDatasets()) {
    if (only != nullptr &&
        preset.name.find(only) == std::string::npos) {
      continue;
    }
    RunDataset(preset);
  }
  return 0;
}
