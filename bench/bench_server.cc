// Multi-connection load client for the sccf_server daemon: N concurrent
// pingpong connections (one outstanding request each, next sent the
// moment the reply completes) driven from a single epoll loop, sweeping
// connection counts x ingest/query mixes against an already-running
// server. Reports QPS and p50/p99 request latency per sweep point.
//
// Pingpong (not deep pipelining) is the deliberate load shape: each
// request's latency includes the full server turnaround, so p50/p99 are
// honest serving latencies and QPS measures the reactor's
// connection-multiplexing overhead rather than batched parser
// throughput.
//
// Flags:
//   --host=ADDR --port=N    server address (default 127.0.0.1:7700)
//   --connections=1,64,1024 connection counts to sweep
//   --ingest_ratios=0,0.2   fraction of requests that are INGEST (each
//                           a single-event batch); the rest are queries
//                           (50% RECOMMEND, 40% NEIGHBORS, 10% HISTORY)
//   --duration=SECS         measured seconds per sweep point (default 3)
//   --users=N --items=N     live corpus bounds — use the values the
//                           server printed at startup (default 2000x1500
//                           pre-filter flags overestimate them)
//   --topn=N                RECOMMEND list length (default 10)
//   --json=PATH             machine-readable report (BENCH_server.json)
//   --quick                 1s points, connections=8 only (CI smoke)
//   --save_during_load=M,.. extra sweep dimension: at the halfway point
//                           of each measured window a dedicated control
//                           connection issues a snapshot and its reply
//                           latency is recorded. Modes: none (default),
//                           save (synchronous SAVE — stalls the
//                           reactor), bgsave (helper-thread BGSAVE).
//                           Comparing p99 across modes is the
//                           non-blocking-BGSAVE evidence; the server
//                           needs --data_dir or the save fails the run.
//   --expect_refusals       overload mode: -OVERLOADED replies and
//                           server-closed connections are counted in
//                           the `refused` column instead of failing the
//                           run (drive more connections than the
//                           server's --max_connections to exercise it)
//
// Error accounting: replies beginning '-' count as request errors and
// a nonzero total fails the run (the corpus bounds make every id
// valid, so any error is a server or protocol bug). Under
// --expect_refusals, -OVERLOADED is admission control doing its job:
// counted as refused, never as an error, and never in the latency
// distribution.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/protocol.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace sccf;

struct Config {
  std::string host = "127.0.0.1";
  uint16_t port = 7700;
  std::vector<int> connections = {1, 64, 1024};
  std::vector<double> ingest_ratios = {0.0, 0.2};
  double duration_s = 3.0;
  int users = 2000;
  int items = 1500;
  int topn = 10;
  std::string json_path;
  std::vector<std::string> save_modes = {"none"};
  bool expect_refusals = false;
};

struct SweepPoint {
  int connections = 0;
  double ingest_ratio = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t requests = 0;
  uint64_t errors = 0;
  /// -OVERLOADED replies + server-closed connections (--expect_refusals).
  uint64_t refused = 0;
  std::string save_mode = "none";
  /// Wire latency of the mid-load SAVE/BGSAVE reply; -1 when none ran.
  double save_ms = -1.0;
  std::string save_reply;  // raw reply bytes ("+OK\r\n" on success)
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const size_t idx = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ms.size() - 1)));
  return sorted_ms[idx];
}

/// One pingpong connection: owns its socket, request generator, and
/// reply scanner.
struct Conn {
  int fd = -1;
  std::mt19937 rng;
  server::ReplyParser replies;
  std::string out;        // request bytes not yet written
  size_t out_offset = 0;
  double sent_at = 0.0;   // steady seconds of the in-flight request
  int64_t next_ts = 0;
};

class LoadClient {
 public:
  LoadClient(const Config& cfg, int num_connections, double ingest_ratio,
             std::string save_mode)
      : cfg_(cfg), num_connections_(num_connections),
        ingest_ratio_(ingest_ratio), save_mode_(std::move(save_mode)) {}

  SweepPoint Run() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    SCCF_CHECK(epoll_fd_ >= 0);

    // Mid-load snapshot: a dedicated blocking control connection fires
    // SAVE/BGSAVE at the halfway mark, off-thread so the pingpong fleet
    // keeps hammering while the control reply is pending. Its reply
    // latency is the headline: synchronous SAVE holds the reactor (and
    // every in-flight request) for the full snapshot export; BGSAVE
    // returns only the deferred +OK while the export runs beside the
    // loop. Connected BEFORE the fleet so it holds a connection slot —
    // an operator's admin session predates the flood, and under
    // --expect_refusals the flood alone fills max_connections.
    std::string save_reply;
    double save_ms = -1.0;
    std::thread saver;
    if (save_mode_ != "none") {
      const int control_fd = ControlConnect();
      saver = std::thread([this, control_fd, &save_reply, &save_ms] {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(cfg_.duration_s / 2));
        RunControlSave(control_fd, &save_reply, &save_ms);
      });
    }

    conns_.resize(static_cast<size_t>(num_connections_));
    for (int i = 0; i < num_connections_; ++i) {
      Connect(i);
    }
    latencies_.reserve(1 << 16);

    // Everyone connected: fire the first request on every connection
    // and run the loop for the measured window.
    const double start = NowSeconds();
    const double deadline = start + cfg_.duration_s;
    for (Conn& conn : conns_) SendNext(conn);
    std::vector<epoll_event> events(256);
    while (true) {
      const double now = NowSeconds();
      if (now >= deadline) break;
      const int timeout_ms =
          std::max(1, static_cast<int>((deadline - now) * 1000.0));
      const int n = ::epoll_wait(epoll_fd_, events.data(),
                                 static_cast<int>(events.size()),
                                 timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        SCCF_CHECK(false) << "epoll_wait: " << std::strerror(errno);
      }
      for (int i = 0; i < n; ++i) {
        const int idx = events[i].data.u32;
        Conn& conn = conns_[static_cast<size_t>(idx)];
        if (conn.fd < 0) continue;
        if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
          Readable(conn);
        }
        if (conn.fd >= 0 && (events[i].events & EPOLLOUT) != 0) {
          Flush(conn);
        }
      }
    }
    const double elapsed = NowSeconds() - start;
    if (saver.joinable()) saver.join();

    for (Conn& conn : conns_) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    ::close(epoll_fd_);

    SweepPoint point;
    point.connections = num_connections_;
    point.ingest_ratio = ingest_ratio_;
    point.requests = static_cast<uint64_t>(latencies_.size());
    point.errors = errors_;
    point.refused = refused_;
    point.save_mode = save_mode_;
    point.save_ms = save_ms;
    point.save_reply = save_reply;
    point.qps = elapsed > 0.0
                    ? static_cast<double>(latencies_.size()) / elapsed
                    : 0.0;
    std::sort(latencies_.begin(), latencies_.end());
    point.p50_ms = Percentile(latencies_, 0.50);
    point.p99_ms = Percentile(latencies_, 0.99);
    return point;
  }

 private:
  void Connect(int idx) {
    Conn& conn = conns_[static_cast<size_t>(idx)];
    conn.rng.seed(static_cast<uint32_t>(1000003 * (idx + 1)));
    conn.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    SCCF_CHECK(conn.fd >= 0) << "socket: " << std::strerror(errno);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    SCCF_CHECK(::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) == 1);
    SCCF_CHECK(::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0)
        << "connect " << cfg_.host << ":" << cfg_.port << " (conn " << idx
        << "): " << std::strerror(errno);
    const int one = 1;
    ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Non-blocking after the (fast, loopback) blocking connect.
    SCCF_CHECK(::fcntl(conn.fd, F_SETFL, O_NONBLOCK) == 0);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = static_cast<uint32_t>(idx);
    SCCF_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.fd, &ev) == 0);
  }

  std::string NextRequest(Conn& conn) {
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::uniform_int_distribution<int> user(0, cfg_.users - 1);
    std::uniform_int_distribution<int> item(0, cfg_.items - 1);
    if (coin(conn.rng) < ingest_ratio_) {
      return "INGEST " + std::to_string(user(conn.rng)) + " " +
             std::to_string(item(conn.rng)) + " " +
             std::to_string(conn.next_ts++) + "\r\n";
    }
    const double kind = coin(conn.rng);
    if (kind < 0.5) {
      return "RECOMMEND " + std::to_string(user(conn.rng)) + " " +
             std::to_string(cfg_.topn) + "\r\n";
    }
    if (kind < 0.9) {
      return "NEIGHBORS " + std::to_string(user(conn.rng)) + "\r\n";
    }
    return "HISTORY " + std::to_string(user(conn.rng)) + "\r\n";
  }

  void SendNext(Conn& conn) {
    conn.out = NextRequest(conn);
    conn.out_offset = 0;
    conn.sent_at = NowSeconds();
    Flush(conn);
  }

  void Flush(Conn& conn) {
    bool want_out = false;
    while (conn.out_offset < conn.out.size()) {
      const ssize_t w =
          ::write(conn.fd, conn.out.data() + conn.out_offset,
                  conn.out.size() - conn.out_offset);
      if (w > 0) {
        conn.out_offset += static_cast<size_t>(w);
        continue;
      }
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        want_out = true;
        break;
      }
      if (w < 0 && errno == EINTR) continue;
      Dead(conn, "write");
      return;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0u);
    ev.data.u32 = static_cast<uint32_t>(&conn - conns_.data());
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  void Readable(Conn& conn) {
    // Drain the socket before parsing: a refused connection's last
    // batch carries the -OVERLOADED reply AND the EOF, and the reply
    // must be counted before the death is handled.
    bool closed = false;
    const char* why = "EOF";
    char buf[16384];
    while (true) {
      const ssize_t r = ::read(conn.fd, buf, sizeof(buf));
      if (r > 0) {
        conn.replies.Feed(std::string_view(buf, static_cast<size_t>(r)));
        continue;
      }
      if (r == 0) {
        closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      closed = true;
      why = "read";
      break;
    }
    std::string reply;
    while (conn.fd >= 0) {
      const server::ReplyParser::Result result = conn.replies.Next(&reply);
      if (result == server::ReplyParser::Result::kNeedMore) break;
      SCCF_CHECK(result == server::ReplyParser::Result::kReply)
          << "reply stream desynchronized";
      if (cfg_.expect_refusals && reply.rfind("-OVERLOADED", 0) == 0) {
        // Admission control at work, not a failure: the connection-cap
        // refusal closes the connection right after (the next read sees
        // EOF), the byte-budget shed leaves it serving. Refusals stay
        // out of the latency distribution — they measure the admission
        // path, not request service.
        ++refused_;
      } else {
        latencies_.push_back((NowSeconds() - conn.sent_at) * 1000.0);
        if (!reply.empty() && reply.front() == '-') ++errors_;
      }
      SendNext(conn);
    }
    if (closed && conn.fd >= 0) Dead(conn, why);
  }

  void Dead(Conn& conn, const char* why) {
    if (cfg_.expect_refusals) {
      // Server-closed connections are the expected fate of refused
      // ones; the point keeps measuring with the admitted survivors.
      (void)why;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
      ::close(conn.fd);
      conn.fd = -1;
      return;
    }
    // A dying connection mid-measurement invalidates the point.
    SCCF_CHECK(false) << "connection died (" << why
                      << "): " << std::strerror(errno);
    ::close(conn.fd);
    conn.fd = -1;
  }

  /// Opens the blocking control connection (before the load fleet, so
  /// it owns a connection slot even when the fleet overflows the cap).
  int ControlConnect() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    timeval tv{};
    tv.tv_sec = 60;  // a snapshot should never take this long
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    ::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  /// Blocking SAVE/BGSAVE over the pre-opened control connection;
  /// records the raw reply and its wire latency. Empty reply =
  /// connect/read failure.
  void RunControlSave(int fd, std::string* reply_out, double* ms_out) {
    if (fd < 0) return;
    const std::string cmd =
        save_mode_ == "save" ? "SAVE\r\n" : "BGSAVE\r\n";
    const double t0 = NowSeconds();
    size_t sent = 0;
    while (sent < cmd.size()) {
      const ssize_t w = ::write(fd, cmd.data() + sent, cmd.size() - sent);
      if (w <= 0) {
        ::close(fd);
        return;
      }
      sent += static_cast<size_t>(w);
    }
    server::ReplyParser parser;
    std::string reply;
    while (true) {
      const server::ReplyParser::Result result = parser.Next(&reply);
      if (result == server::ReplyParser::Result::kReply) break;
      if (result == server::ReplyParser::Result::kError) {
        ::close(fd);
        return;
      }
      char buf[4096];
      const ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r <= 0) {
        ::close(fd);
        return;
      }
      parser.Feed(std::string_view(buf, static_cast<size_t>(r)));
    }
    *ms_out = (NowSeconds() - t0) * 1000.0;
    *reply_out = reply;
    ::close(fd);
  }

  const Config& cfg_;
  const int num_connections_;
  const double ingest_ratio_;
  const std::string save_mode_;
  int epoll_fd_ = -1;
  std::vector<Conn> conns_;
  std::vector<double> latencies_;
  uint64_t errors_ = 0;
  uint64_t refused_ = 0;
};

void RaiseFdLimit(int needed) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  const rlim_t want = static_cast<rlim_t>(needed) + 64;
  if (lim.rlim_cur >= want) return;
  lim.rlim_cur = std::min<rlim_t>(want, lim.rlim_max);
  ::setrlimit(RLIMIT_NOFILE, &lim);
}

void WriteJson(const Config& cfg, const std::vector<SweepPoint>& points) {
  std::FILE* f = std::fopen(cfg.json_path.c_str(), "w");
  SCCF_CHECK(f != nullptr) << "cannot open " << cfg.json_path;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_server\",\n");
  std::fprintf(f, "  \"host\": { \"hardware_concurrency\": %u },\n",
               std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"config\": { \"duration_s\": %.1f, \"users\": %d, "
               "\"items\": %d, \"topn\": %d, \"protocol\": \"inline\", "
               "\"load_shape\": \"pingpong\" },\n",
               cfg.duration_s, cfg.users, cfg.items, cfg.topn);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    // scripts/ci.sh greps the "connections"/"qps" prefix of each row;
    // new fields must stay appended after it.
    std::fprintf(f,
                 "    { \"connections\": %d, \"ingest_ratio\": %.2f, "
                 "\"qps\": %.1f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"requests\": %llu, \"errors\": %llu, "
                 "\"refused\": %llu, \"save_mode\": \"%s\", "
                 "\"save_ms\": %.3f }%s\n",
                 p.connections, p.ingest_ratio, p.qps, p.p50_ms, p.p99_ms,
                 static_cast<unsigned long long>(p.requests),
                 static_cast<unsigned long long>(p.errors),
                 static_cast<unsigned long long>(p.refused),
                 p.save_mode.c_str(), p.save_ms,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", cfg.json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Refused connections close server-side mid-write; the write must
  // surface as EPIPE, not kill the bench.
  std::signal(SIGPIPE, SIG_IGN);
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    int64_t v = 0;
    if (arg.rfind("--host=", 0) == 0) {
      cfg.host = val("--host=");
    } else if (arg.rfind("--port=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--port="), &v) && v > 0 && v <= 65535)
          << "bad --port";
      cfg.port = static_cast<uint16_t>(v);
    } else if (arg.rfind("--connections=", 0) == 0) {
      cfg.connections.clear();
      for (const std::string& part : Split(val("--connections="), ',')) {
        SCCF_CHECK(ParseInt64(part, &v) && v >= 1) << "bad --connections";
        cfg.connections.push_back(static_cast<int>(v));
      }
    } else if (arg.rfind("--ingest_ratios=", 0) == 0) {
      cfg.ingest_ratios.clear();
      for (const std::string& part : Split(val("--ingest_ratios="), ',')) {
        const double r = std::stod(part);
        SCCF_CHECK(r >= 0.0 && r <= 1.0) << "bad --ingest_ratios";
        cfg.ingest_ratios.push_back(r);
      }
    } else if (arg.rfind("--duration=", 0) == 0) {
      cfg.duration_s = std::stod(val("--duration="));
      SCCF_CHECK(cfg.duration_s > 0.0) << "bad --duration";
    } else if (arg.rfind("--users=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--users="), &v) && v > 0) << "bad --users";
      cfg.users = static_cast<int>(v);
    } else if (arg.rfind("--items=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--items="), &v) && v > 0) << "bad --items";
      cfg.items = static_cast<int>(v);
    } else if (arg.rfind("--topn=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--topn="), &v) && v > 0) << "bad --topn";
      cfg.topn = static_cast<int>(v);
    } else if (arg.rfind("--json=", 0) == 0) {
      cfg.json_path = val("--json=");
    } else if (arg.rfind("--save_during_load=", 0) == 0) {
      cfg.save_modes.clear();
      for (const std::string& part : Split(val("--save_during_load="), ',')) {
        SCCF_CHECK(part == "none" || part == "save" || part == "bgsave")
            << "bad --save_during_load mode: " << part;
        cfg.save_modes.push_back(part);
      }
      SCCF_CHECK(!cfg.save_modes.empty()) << "bad --save_during_load";
    } else if (arg == "--expect_refusals") {
      cfg.expect_refusals = true;
    } else if (arg == "--quick") {
      cfg.connections = {8};
      cfg.ingest_ratios = {0.2};
      cfg.duration_s = 1.0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  bench::PrintHeader(
      "Server front-end throughput — epoll reactor",
      "N pingpong connections x ingest/query mixes against a running "
      "sccf_server; QPS and p50/p99 request latency per sweep point");
  std::printf("target %s:%u  corpus bounds %d users x %d items\n\n",
              cfg.host.c_str(), static_cast<unsigned>(cfg.port), cfg.users,
              cfg.items);

  RaiseFdLimit(*std::max_element(cfg.connections.begin(),
                                 cfg.connections.end()));

  std::vector<SweepPoint> points;
  TablePrinter table({"connections", "ingest", "save", "qps", "p50 (ms)",
                      "p99 (ms)", "requests", "errors", "refused",
                      "save (ms)"});
  for (int conns : cfg.connections) {
    for (double ratio : cfg.ingest_ratios) {
      for (const std::string& mode : cfg.save_modes) {
        LoadClient client(cfg, conns, ratio, mode);
        const SweepPoint p = client.Run();
        points.push_back(p);
        table.AddRow({std::to_string(p.connections),
                      FormatFloat(p.ingest_ratio, 2), p.save_mode,
                      FormatFloat(p.qps, 1), FormatFloat(p.p50_ms, 4),
                      FormatFloat(p.p99_ms, 4), std::to_string(p.requests),
                      std::to_string(p.errors), std::to_string(p.refused),
                      p.save_mode == "none" ? std::string("-")
                                            : FormatFloat(p.save_ms, 3)});
      }
    }
  }
  table.Print();

  uint64_t total_errors = 0;
  bool save_failed = false;
  for (const SweepPoint& p : points) {
    total_errors += p.errors;
    if (p.save_mode != "none" && p.save_reply != "+OK\r\n") {
      save_failed = true;
      std::fprintf(stderr,
                   "mid-load %s did not succeed (reply: %s) — does the "
                   "server have --data_dir?\n",
                   p.save_mode.c_str(),
                   p.save_reply.empty() ? "<none>" : p.save_reply.c_str());
    }
  }
  if (total_errors > 0) {
    std::fprintf(stderr, "%llu request errors — failing\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }
  if (save_failed) return 1;
  if (!cfg.json_path.empty()) WriteJson(cfg, points);
  return 0;
}
