#!/usr/bin/env bash
# Tier-1 verify plus a benchmark smoke test. This is exactly what CI runs;
# run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

# Markdown link check: every relative link in README.md and docs/ must
# resolve to an existing file (anchors and external URLs are skipped).
# Docs that point at moved/renamed files fail CI before anything builds.
link_fail=0
for doc in README.md docs/*.md; do
  doc_dir="$(dirname "${doc}")"
  while IFS= read -r target; do
    target="${target%%#*}"          # strip in-page anchor
    target="${target%% *}"          # strip optional "title" suffix
    [[ -z "${target}" ]] && continue
    case "${target}" in
      http://*|https://*|mailto:*) continue ;;
      /*) resolved="${target}" ;;    # repo treats absolute as fs path
      *) resolved="${doc_dir}/${target}" ;;
    esac
    if [[ ! -e "${resolved}" ]]; then
      echo "markdown link check: dead link in ${doc}: ${target}" >&2
      link_fail=1
    fi
  done < <(awk '/^[[:space:]]*```/{fence=!fence; next} !fence' "${doc}" \
             | grep -oE '\]\([^)]+\)' | sed 's/^](\(.*\))$/\1/')
done
if [[ "${link_fail}" -ne 0 ]]; then
  exit 1
fi
echo "markdown link check: OK"

# Tier-1 verify (ROADMAP.md): configure, build everything, run the
# tier1-labeled suites. Suites registered SLOW stay out of this gate;
# run them locally with `ctest --preset release -L slow`.
cmake --preset release
cmake --build --preset release -j "${JOBS}"
ctest --preset release -L tier1

# Benchmark smoke: the micro-kernel suite at minimal iteration budget,
# to catch crashes/regressions in bench-only code paths. The target is
# skipped at configure time when Google Benchmark is unavailable.
MICRO=build/release/bench/micro_kernels
if [[ -x "${MICRO}" ]]; then
  # benchmark >= 1.8 wants a "0.01s" suffix, older versions a bare double.
  # Keep the first attempt's stderr so a genuine crash is not masked by
  # the retry's flag-parse error.
  SMOKE_ERR="$(mktemp)"
  trap 'rm -f "${SMOKE_ERR}"' EXIT
  if ! "${MICRO}" --benchmark_min_time=0.01 >/dev/null 2>"${SMOKE_ERR}" &&
     ! "${MICRO}" --benchmark_min_time=0.01s >/dev/null; then
    echo "micro_kernels smoke: FAILED; first attempt stderr:" >&2
    cat "${SMOKE_ERR}" >&2
    exit 1
  fi
  echo "micro_kernels smoke: OK"

  # SIMD dispatch sanity (docs/PERFORMANCE.md): run the kernel report once
  # forced to scalar and once auto-dispatched; the dispatched dot kernel at
  # dim 128 must not be slower than the scalar one. Smoke-level only — the
  # real margin is ~3-4x — so a genuine dispatch regression (e.g. always
  # falling back to scalar-through-the-table overhead) trips it, noise
  # does not. Skipped when the CPU has no SIMD variant to dispatch to.
  SIMD_SCALAR_JSON="$(mktemp)"
  SIMD_AUTO_JSON="$(mktemp)"
  trap 'rm -f "${SMOKE_ERR}" "${SIMD_SCALAR_JSON}" "${SIMD_AUTO_JSON}"' EXIT
  SCCF_SIMD=scalar "${MICRO}" --simd_json="${SIMD_SCALAR_JSON}" >/dev/null
  # env -u: a stray exported SCCF_SIMD must not turn the "auto" run into a
  # forced one (which would silently skip the comparison below).
  env -u SCCF_SIMD "${MICRO}" --simd_json="${SIMD_AUTO_JSON}" >/dev/null
  scalar_ns="$(sed -n 's/.*"active_dot_dim128_ns": \([0-9.]*\).*/\1/p' \
    "${SIMD_SCALAR_JSON}")"
  auto_ns="$(sed -n 's/.*"active_dot_dim128_ns": \([0-9.]*\).*/\1/p' \
    "${SIMD_AUTO_JSON}")"
  auto_variant="$(sed -n 's/.*"active_variant": "\([a-z0-9]*\)".*/\1/p' \
    "${SIMD_AUTO_JSON}")"
  if [[ "${auto_variant}" == "scalar" ]]; then
    echo "simd dispatch check: SKIPPED (no SIMD variant on this CPU)"
  elif awk -v a="${auto_ns}" -v s="${scalar_ns}" 'BEGIN{exit !(a <= s)}'; then
    echo "simd dispatch check: OK (${auto_variant} dot@128 ${auto_ns}ns" \
         "<= scalar ${scalar_ns}ns)"
  else
    echo "simd dispatch check: FAILED — dispatched ${auto_variant} dot@128" \
         "(${auto_ns}ns) slower than scalar (${scalar_ns}ns)" >&2
    exit 1
  fi

  # Same gate for the int8 dot kernel the SQ8 storage mode scans with:
  # the dispatched variant must not lose to forced-scalar at dim 128.
  scalar_i8_ns="$(sed -n \
    's/.*"active_dot_i8_dim128_ns": \([0-9.]*\).*/\1/p' \
    "${SIMD_SCALAR_JSON}")"
  auto_i8_ns="$(sed -n \
    's/.*"active_dot_i8_dim128_ns": \([0-9.]*\).*/\1/p' \
    "${SIMD_AUTO_JSON}")"
  if [[ "${auto_variant}" == "scalar" ]]; then
    echo "simd i8 dispatch check: SKIPPED (no SIMD variant on this CPU)"
  elif [[ -z "${scalar_i8_ns}" || -z "${auto_i8_ns}" ]]; then
    echo "simd i8 dispatch check: FAILED — no active_dot_i8_dim128_ns in" \
         "the kernel report" >&2
    exit 1
  elif awk -v a="${auto_i8_ns}" -v s="${scalar_i8_ns}" \
         'BEGIN{exit !(a <= s)}'; then
    echo "simd i8 dispatch check: OK (${auto_variant} dot_i8@128" \
         "${auto_i8_ns}ns <= scalar ${scalar_i8_ns}ns)"
  else
    echo "simd i8 dispatch check: FAILED — dispatched ${auto_variant}" \
         "dot_i8@128 (${auto_i8_ns}ns) slower than scalar" \
         "(${scalar_i8_ns}ns)" >&2
    exit 1
  fi
else
  echo "micro_kernels smoke: SKIPPED (Google Benchmark not found)"
fi

# Realtime ingest-throughput smoke (batch-first Engine over the sharded
# RealTimeService, see docs/PERFORMANCE.md): one quick sweep over
# {1,4} threads x {1,32}-event batches. Two sanity gates, neither a
# tuned threshold:
#   * threads: 4-thread updates/sec >= 1-thread (shard locking actually
#     lets ingest run concurrently) — needs >= 4 hardware threads;
#   * batching: batch_size=32 updates/sec >= batch_size=1 at one thread
#     (grouped events amortize locks/re-inference/index refreshes, so
#     batching must never lose) — skipped on single-core hosts, where
#     timer noise on the tiny --quick workload dominates.
RT_BENCH=build/release/bench/bench_realtime_throughput
RT_JSON="$(mktemp)"
trap 'rm -f "${SMOKE_ERR:-}" "${SIMD_SCALAR_JSON:-}" \
  "${SIMD_AUTO_JSON:-}" "${RT_JSON:-}"' EXIT
"${RT_BENCH}" --quick --threads=1,4 --batch_sizes=1,32 \
  --json="${RT_JSON}" >/dev/null
rt_ups() {  # rt_ups <threads> <batch_size>
  sed -n "s/.*\"threads\": $1, \"batch_size\": $2, \"updates_per_sec\": \([0-9.]*\).*/\1/p" \
    "${RT_JSON}"
}
ups_1t="$(rt_ups 1 1)"
ups_4t="$(rt_ups 4 1)"
ups_b32="$(rt_ups 1 32)"
CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null \
         || echo 1)"
if [[ -z "${ups_1t}" || -z "${ups_4t}" || -z "${ups_b32}" ]]; then
  echo "realtime throughput smoke: FAILED (no updates/sec in report)" >&2
  exit 1
fi
if [[ "${CORES}" -lt 4 ]]; then
  echo "realtime thread gate: SKIPPED (host has < 4 cores;" \
       "1t=${ups_1t} 4t=${ups_4t} updates/sec)"
elif awk -v a="${ups_4t}" -v b="${ups_1t}" 'BEGIN{exit !(a >= b)}'; then
  echo "realtime thread gate: OK (4t ${ups_4t} >= 1t ${ups_1t}" \
       "updates/sec)"
else
  echo "realtime thread gate: FAILED — 4-thread ingest (${ups_4t}/s)" \
       "slower than 1-thread (${ups_1t}/s)" >&2
  exit 1
fi
if [[ "${CORES}" -lt 2 ]]; then
  echo "realtime batching gate: SKIPPED (single-core host;" \
       "b1=${ups_1t} b32=${ups_b32} updates/sec)"
elif awk -v a="${ups_b32}" -v b="${ups_1t}" 'BEGIN{exit !(a >= b)}'; then
  echo "realtime batching gate: OK (batch32 ${ups_b32} >= batch1" \
       "${ups_1t} updates/sec)"
else
  echo "realtime batching gate: FAILED — batched ingest (${ups_b32}/s)" \
       "slower than per-event (${ups_1t}/s)" >&2
  exit 1
fi

# Scenario smoke: the workload-generator dimension end to end
# (docs/OPERATIONS.md, "Scenario specs"). Three gates:
#   * bursty + power_law: cold-engine ingest updates/sec and batched
#     streaming-eval events/sec must both be nonzero (the scenario
#     corpora actually flow through the serving path and the
#     reveal_window=32 evaluator makes predictions);
#   * hot_shard: the adversarial all-ids-one-shard corpus must complete
#     a 4-thread run within the timeout — contention on the single hot
#     shard may serialize it, but must never stall it;
#   * the per-scenario golden bands (fp32 + sq8) in the release-built
#     golden suite must pass.
SCEN_JSON="$(mktemp)"
trap 'rm -f "${SMOKE_ERR:-}" "${SIMD_SCALAR_JSON:-}" \
  "${SIMD_AUTO_JSON:-}" "${RT_JSON:-}" "${SCEN_JSON:-}"' EXIT
"${RT_BENCH}" --quick --threads=1 --batch_sizes=32 --shards=8 \
  --scenario=bursty,power_law --json="${SCEN_JSON}" >/dev/null
scen_ingest_ups() {  # scen_ingest_ups <scenario>
  sed -n "s/.*\"scenario\": \"$1\", \"threads\": 1, .*\"updates_per_sec\": \([0-9.]*\).*/\1/p" \
    "${SCEN_JSON}"
}
scen_eval_eps() {  # scen_eval_eps <scenario>
  sed -n "s/.*\"scenario\": \"$1\", \"reveal_window\": .*\"eval_events_per_sec\": \([0-9.]*\).*/\1/p" \
    "${SCEN_JSON}"
}
for scen in bursty power_law; do
  scen_ups="$(scen_ingest_ups "${scen}")"
  scen_eps="$(scen_eval_eps "${scen}")"
  if [[ -z "${scen_ups}" ]] ||
     ! awk -v u="${scen_ups}" 'BEGIN{exit !(u > 0)}'; then
    echo "scenario smoke: FAILED — ${scen} cold-engine ingest made no" \
         "progress (updates_per_sec='${scen_ups}')" >&2
    exit 1
  fi
  if [[ -z "${scen_eps}" ]] ||
     ! awk -v e="${scen_eps}" 'BEGIN{exit !(e > 0)}'; then
    echo "scenario smoke: FAILED — ${scen} batched streaming eval made" \
         "no predictions (eval_events_per_sec='${scen_eps}')" >&2
    exit 1
  fi
done
if ! timeout 180 "${RT_BENCH}" --quick --threads=4 --batch_sizes=32 \
     --shards=8 --scenario=hot_shard >/dev/null; then
  echo "scenario smoke: FAILED — hot_shard adversarial corpus stalled" \
       "or crashed a 4-thread ingest (180s budget)" >&2
  exit 1
fi
SCEN_GOLD="$(mktemp)"
trap 'rm -f "${SMOKE_ERR:-}" "${SIMD_SCALAR_JSON:-}" \
  "${SIMD_AUTO_JSON:-}" "${RT_JSON:-}" "${SCEN_JSON:-}" \
  "${SCEN_GOLD:-}"' EXIT
if ./build/release/tests/sccf_golden_test \
     --gtest_filter='*ScenarioGoldenTest*' >"${SCEN_GOLD}" 2>&1 &&
   grep -q '\[  PASSED  \] 1 test' "${SCEN_GOLD}"; then
  echo "scenario smoke: OK (bursty/power_law flow, hot_shard completes," \
       "per-scenario golden bands hold)"
else
  echo "scenario smoke: FAILED — per-scenario golden bands did not" \
       "pass:" >&2
  tail -20 "${SCEN_GOLD}" >&2
  exit 1
fi
rm -f "${SCEN_JSON}" "${SCEN_GOLD}"

# Cold-shard compaction smoke: with background compaction on, a shard
# that receives staged upserts and then goes COLD (no ingest, no
# queries) must see pending_upserts() reach 0 within the compaction
# interval's sweep budget. The release-built stress test pins exactly
# this liveness property (the test polls with a generous deadline so a
# loaded CI host does not flake the gate).
COLD_OUT="$(mktemp)"
trap 'rm -f "${SMOKE_ERR:-}" "${SIMD_SCALAR_JSON:-}" \
  "${SIMD_AUTO_JSON:-}" "${RT_JSON:-}" "${COLD_OUT:-}"' EXIT
# The grep guards against a renamed test making the filter match
# nothing (gtest exits 0 on an empty filter match).
if ./build/release/tests/realtime_shard_stress_test \
     --gtest_filter='*ColdShardBackgroundCompactionDrains*' \
     >"${COLD_OUT}" 2>&1 &&
   grep -q '\[  PASSED  \] 1 test' "${COLD_OUT}"; then
  echo "cold-shard compaction smoke: OK"
else
  echo "cold-shard compaction smoke: FAILED — staged rows did not drain" \
       "from a cold shard (background compaction liveness):" >&2
  tail -20 "${COLD_OUT}" >&2
  exit 1
fi

# Shard stress under ThreadSanitizer: the per-shard shared_mutex
# discipline is only really exercised with race detection on. Skip
# gracefully where the toolchain has no -fsanitize=thread.
if echo 'int main(){}' | "${CXX:-c++}" -fsanitize=thread -x c++ - \
     -o /dev/null 2>/dev/null; then
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "${JOBS}" \
    --target realtime_shard_stress_test
  ./build/tsan/tests/realtime_shard_stress_test
  echo "tsan shard stress: OK"
else
  echo "tsan shard stress: SKIPPED (-fsanitize=thread unavailable)"
fi

# Server front-end smoke: start the sccf_server daemon on an ephemeral
# port, drive ~2s of mixed load at 8 pingpong connections with
# bench_server --quick, require a nonzero QPS and zero request errors,
# then SIGTERM and require a clean graceful-drain exit 0. The binaries
# are Linux-only (epoll); skip gracefully elsewhere.
SRV=build/release/sccf_server
SRV_BENCH=build/release/bench/bench_server
if [[ -x "${SRV}" && -x "${SRV_BENCH}" ]]; then
  SRV_OUT="$(mktemp)"
  SRV_JSON="$(mktemp)"
  trap 'rm -f "${SMOKE_ERR:-}" "${SIMD_SCALAR_JSON:-}" \
    "${SIMD_AUTO_JSON:-}" "${RT_JSON:-}" "${COLD_OUT:-}" \
    "${SRV_OUT:-}" "${SRV_JSON:-}"' EXIT
  "${SRV}" --port=0 --users=800 --items=600 >"${SRV_OUT}" 2>&1 &
  SRV_PID=$!
  for _ in $(seq 1 150); do
    grep -q 'listening on' "${SRV_OUT}" && break
    if ! kill -0 "${SRV_PID}" 2>/dev/null; then break; fi
    sleep 0.2
  done
  srv_port="$(sed -n 's/.*listening on .*:\([0-9]*\)$/\1/p' "${SRV_OUT}")"
  srv_users="$(sed -n 's/^corpus users=\([0-9]*\).*/\1/p' "${SRV_OUT}")"
  srv_items="$(sed -n 's/^corpus users=[0-9]* items=\([0-9]*\)$/\1/p' \
    "${SRV_OUT}")"
  if [[ -z "${srv_port}" ]]; then
    echo "server smoke: FAILED — sccf_server never started listening:" >&2
    cat "${SRV_OUT}" >&2
    exit 1
  fi
  # --quick: 8 connections, 1s point, 20% ingest. Exits nonzero on any
  # request error, so the gate below only needs the QPS floor.
  # --quick first: flags apply in order, and the 2s duration must win
  # over --quick's 1s default.
  if ! "${SRV_BENCH}" --quick --port="${srv_port}" --users="${srv_users}" \
       --items="${srv_items}" --duration=2 \
       --json="${SRV_JSON}" >/dev/null; then
    echo "server smoke: FAILED — bench_server reported errors" >&2
    kill -TERM "${SRV_PID}" 2>/dev/null || true
    exit 1
  fi
  srv_qps="$(sed -n 's/.*"connections": 8, .*"qps": \([0-9.]*\).*/\1/p' \
    "${SRV_JSON}")"
  if [[ -z "${srv_qps}" ]] ||
     ! awk -v q="${srv_qps}" 'BEGIN{exit !(q > 0)}'; then
    echo "server smoke: FAILED — no throughput (qps='${srv_qps}')" >&2
    kill -TERM "${SRV_PID}" 2>/dev/null || true
    exit 1
  fi
  kill -TERM "${SRV_PID}"
  srv_exit=0
  wait "${SRV_PID}" || srv_exit=$?
  if [[ "${srv_exit}" -ne 0 ]]; then
    echo "server smoke: FAILED — SIGTERM drain exited ${srv_exit}:" >&2
    cat "${SRV_OUT}" >&2
    exit 1
  fi
  echo "server smoke: OK (${srv_qps} qps at 8 connections, clean drain)"
else
  echo "server smoke: SKIPPED (sccf_server not built on this platform)"
fi

# SQ8 storage smoke: the quantized mode end to end against the real
# daemon. Start with --storage=sq8, ingest over the wire, then require
# STATS to report nonzero int8 code bytes and zero fp32 embedding bytes
# (the per-shard accounting actually reflects quantized storage), and a
# SHARDSTATS reply sized to the shard count. The ranking-quality
# tripwire rides along: the release-built golden suite's sq8 test pins
# Recall@10/NDCG@10 within the documented band of the fp32 run.
if [[ -x "${SRV}" ]]; then
  SQ8_OUT="$(mktemp)"
  SQ8_STATS="$(mktemp)"
  trap 'rm -f "${SMOKE_ERR:-}" "${SIMD_SCALAR_JSON:-}" \
    "${SIMD_AUTO_JSON:-}" "${RT_JSON:-}" "${COLD_OUT:-}" \
    "${SRV_OUT:-}" "${SRV_JSON:-}" "${SQ8_OUT:-}" "${SQ8_STATS:-}"' EXIT
  "${SRV}" --port=0 --users=800 --items=600 --storage=sq8 \
    >"${SQ8_OUT}" 2>&1 &
  SQ8_PID=$!
  for _ in $(seq 1 150); do
    grep -q 'listening on' "${SQ8_OUT}" && break
    if ! kill -0 "${SQ8_PID}" 2>/dev/null; then break; fi
    sleep 0.2
  done
  sq8_port="$(sed -n 's/.*listening on .*:\([0-9]*\)$/\1/p' "${SQ8_OUT}")"
  if [[ -z "${sq8_port}" ]]; then
    echo "sq8 smoke: FAILED — sccf_server --storage=sq8 never started:" >&2
    cat "${SQ8_OUT}" >&2
    exit 1
  fi
  {
    printf 'INGEST 1 10 1 1 11 2 2 12 3\r\n'
    printf 'STATS\r\n'
    printf 'SHARDSTATS\r\n'
    printf 'QUIT\r\n'
  } | {
    exec 9<>"/dev/tcp/127.0.0.1/${sq8_port}"
    cat >&9
    cat <&9
    exec 9<&- 9>&-
  } | tr -d '\r' >"${SQ8_STATS}"
  sq8_stat() {  # value following a STATS/SHARDSTATS key line
    awk -v key="$1" 'prev==key && /^:/ {sub(/^:/,""); print; exit}
                     {prev=$0}' "${SQ8_STATS}"
  }
  sq8_code_bytes="$(sq8_stat code_bytes)"
  sq8_emb_bytes="$(sq8_stat embedding_bytes)"
  sq8_shard_arrays="$(grep -c '^\*14$' "${SQ8_STATS}" || true)"
  kill -TERM "${SQ8_PID}"
  sq8_exit=0
  wait "${SQ8_PID}" || sq8_exit=$?
  if [[ -z "${sq8_code_bytes}" || "${sq8_code_bytes}" -eq 0 ]]; then
    echo "sq8 smoke: FAILED — STATS reported no int8 code bytes" \
         "(code_bytes='${sq8_code_bytes}')" >&2
    exit 1
  fi
  if [[ -z "${sq8_emb_bytes}" || "${sq8_emb_bytes}" -ne 0 ]]; then
    echo "sq8 smoke: FAILED — sq8 server holds fp32 embedding bytes" \
         "(embedding_bytes='${sq8_emb_bytes}')" >&2
    exit 1
  fi
  if [[ -z "${sq8_shard_arrays}" || "${sq8_shard_arrays}" -eq 0 ]]; then
    echo "sq8 smoke: FAILED — SHARDSTATS returned no per-shard arrays" >&2
    exit 1
  fi
  if [[ "${sq8_exit}" -ne 0 ]]; then
    echo "sq8 smoke: FAILED — SIGTERM drain exited ${sq8_exit}:" >&2
    cat "${SQ8_OUT}" >&2
    exit 1
  fi
  SQ8_GOLD="$(mktemp)"
  trap 'rm -f "${SMOKE_ERR:-}" "${SIMD_SCALAR_JSON:-}" \
    "${SIMD_AUTO_JSON:-}" "${RT_JSON:-}" "${COLD_OUT:-}" \
    "${SRV_OUT:-}" "${SRV_JSON:-}" "${SQ8_OUT:-}" "${SQ8_STATS:-}" \
    "${SQ8_GOLD:-}"' EXIT
  if ./build/release/tests/sccf_golden_test \
       --gtest_filter='*Sq8RecallWithinDocumentedBandOfFp32*' \
       >"${SQ8_GOLD}" 2>&1 &&
     grep -q '\[  PASSED  \] 1 test' "${SQ8_GOLD}"; then
    echo "sq8 smoke: OK (code_bytes=${sq8_code_bytes}," \
         "${sq8_shard_arrays} shard arrays, recall band held)"
  else
    echo "sq8 smoke: FAILED — sq8 golden recall band test did not pass:" >&2
    tail -20 "${SQ8_GOLD}" >&2
    exit 1
  fi
else
  echo "sq8 smoke: SKIPPED (sccf_server not built on this platform)"
fi

# Crash-recovery smoke: the end-to-end durability claim, against the
# real daemon. Start sccf_server with --data_dir, ingest over the wire,
# pin the byte-exact replies to a read-only command block, SIGKILL the
# server (no drain, no destructors), restart it on the same directory,
# and require the same block to produce the same bytes — bootstrap is
# seed-deterministic and the journal replays the ingest, so any
# divergence is a recovery bug. Uses bash's /dev/tcp; QUIT makes the
# server close the connection, which terminates each capture.
if [[ -x "${SRV}" ]]; then
  CR_DIR="$(mktemp -d)"
  CR_OUT="$(mktemp)"
  CR_PRE="$(mktemp)"
  CR_POST="$(mktemp)"
  trap 'rm -f "${SMOKE_ERR:-}" "${SIMD_SCALAR_JSON:-}" \
    "${SIMD_AUTO_JSON:-}" "${RT_JSON:-}" "${COLD_OUT:-}" \
    "${SRV_OUT:-}" "${SRV_JSON:-}" "${SQ8_OUT:-}" "${SQ8_STATS:-}" \
    "${SQ8_GOLD:-}" "${CR_OUT:-}" "${CR_PRE:-}" \
    "${CR_POST:-}"; rm -rf "${CR_DIR:-}"' EXIT
  start_crash_server() {
    "${SRV}" --port=0 --users=800 --items=600 --data_dir="${CR_DIR}" \
      >"${CR_OUT}" 2>&1 &
    CR_PID=$!
    for _ in $(seq 1 150); do
      grep -q 'listening on' "${CR_OUT}" && break
      if ! kill -0 "${CR_PID}" 2>/dev/null; then break; fi
      sleep 0.2
    done
    CR_PORT="$(sed -n 's/.*listening on .*:\([0-9]*\)$/\1/p' "${CR_OUT}")"
    if [[ -z "${CR_PORT}" ]]; then
      echo "crash-recovery smoke: FAILED — server never listened:" >&2
      cat "${CR_OUT}" >&2
      exit 1
    fi
  }
  crash_client() {  # reads commands on stdin, prints the reply stream
    exec 9<>"/dev/tcp/127.0.0.1/${CR_PORT}"
    cat >&9
    cat <&9
    exec 9<&- 9>&-
  }
  # The read-only block whose replies get pinned (CRLF line endings, as
  # the inline protocol expects). LASTSAVE stays out: we never SAVE, and
  # STATS stays out only for stylistic parity — staged counts replay
  # bit-identically too.
  read_block() {
    printf 'RECOMMEND 1 10\r\n'
    printf 'NEIGHBORS 1\r\n'
    printf 'HISTORY 1\r\n'
    printf 'HISTORY 9000\r\n'
    printf 'QUIT\r\n'
  }
  start_crash_server
  {
    printf 'INGEST 1 10 1 1 11 2 2 12 3 5 13 4\r\n'
    printf 'INGEST 9000 14 5 9000 15 6 1 16 7\r\n'
    printf 'QUIT\r\n'
  } | crash_client >/dev/null
  read_block | crash_client >"${CR_PRE}"
  if ! grep -q '^:' "${CR_PRE}"; then
    echo "crash-recovery smoke: FAILED — no data in pinned replies:" >&2
    cat "${CR_PRE}" >&2
    exit 1
  fi
  kill -KILL "${CR_PID}"
  wait "${CR_PID}" 2>/dev/null || true
  start_crash_server
  read_block | crash_client >"${CR_POST}"
  if ! cmp -s "${CR_PRE}" "${CR_POST}"; then
    echo "crash-recovery smoke: FAILED — post-restart replies diverge" \
         "from pre-crash replies:" >&2
    diff "${CR_PRE}" "${CR_POST}" >&2 || true
    exit 1
  fi
  kill -TERM "${CR_PID}"
  cr_exit=0
  wait "${CR_PID}" || cr_exit=$?
  if [[ "${cr_exit}" -ne 0 ]]; then
    echo "crash-recovery smoke: FAILED — restarted server's SIGTERM" \
         "drain exited ${cr_exit}:" >&2
    cat "${CR_OUT}" >&2
    exit 1
  fi
  echo "crash-recovery smoke: OK (SIGKILL + restart is byte-identical)"
else
  echo "crash-recovery smoke: SKIPPED (sccf_server not built)"
fi

# Overload smoke: the availability claim under pressure, end to end.
# Cap the daemon at 48 connections, then drive 96 pingpong connections
# (plus bench_server's control connection, which connects first and
# holds a slot like an operator session) with 20% ingest and a BGSAVE
# fired mid-flood. Required: bench exits 0 (--expect_refusals makes
# connection-cap refusals non-fatal; request errors and a failed BGSAVE
# still are), nonzero QPS from the admitted fleet, a nonzero refused
# count (the cap actually sheds instead of silently queueing), and a
# clean SIGTERM drain. Then restart on the same data dir: the snapshot
# the BGSAVE wrote mid-flood must recover (a probe must answer with
# data), i.e. saving under overload corrupts nothing.
if [[ -x "${SRV}" && -x "${SRV_BENCH}" ]]; then
  OL_DIR="$(mktemp -d)"
  OL_OUT="$(mktemp)"
  OL_JSON="$(mktemp)"
  OL_PROBE="$(mktemp)"
  trap 'rm -f "${SMOKE_ERR:-}" "${SIMD_SCALAR_JSON:-}" \
    "${SIMD_AUTO_JSON:-}" "${RT_JSON:-}" "${COLD_OUT:-}" \
    "${SRV_OUT:-}" "${SRV_JSON:-}" "${SQ8_OUT:-}" "${SQ8_STATS:-}" \
    "${SQ8_GOLD:-}" "${CR_OUT:-}" "${CR_PRE:-}" \
    "${CR_POST:-}" "${OL_OUT:-}" "${OL_JSON:-}" "${OL_PROBE:-}"; \
    rm -rf "${CR_DIR:-}" "${OL_DIR:-}"' EXIT
  start_overload_server() {
    "${SRV}" --port=0 --users=800 --items=600 --data_dir="${OL_DIR}" \
      --max_connections=48 >"${OL_OUT}" 2>&1 &
    OL_PID=$!
    for _ in $(seq 1 150); do
      grep -q 'listening on' "${OL_OUT}" && break
      if ! kill -0 "${OL_PID}" 2>/dev/null; then break; fi
      sleep 0.2
    done
    OL_PORT="$(sed -n 's/.*listening on .*:\([0-9]*\)$/\1/p' "${OL_OUT}")"
    if [[ -z "${OL_PORT}" ]]; then
      echo "overload smoke: FAILED — server never started listening:" >&2
      cat "${OL_OUT}" >&2
      exit 1
    fi
  }
  start_overload_server
  ol_users="$(sed -n 's/^corpus users=\([0-9]*\).*/\1/p' "${OL_OUT}")"
  ol_items="$(sed -n 's/^corpus users=[0-9]* items=\([0-9]*\)$/\1/p' \
    "${OL_OUT}")"
  if ! "${SRV_BENCH}" --port="${OL_PORT}" --users="${ol_users}" \
       --items="${ol_items}" --duration=2 --connections=96 \
       --ingest_ratios=0.2 --save_during_load=bgsave --expect_refusals \
       --json="${OL_JSON}" >/dev/null; then
    echo "overload smoke: FAILED — bench_server reported request" \
         "errors or a failed BGSAVE" >&2
    kill -TERM "${OL_PID}" 2>/dev/null || true
    exit 1
  fi
  ol_qps="$(sed -n 's/.*"connections": 96, .*"qps": \([0-9.]*\).*/\1/p' \
    "${OL_JSON}")"
  ol_refused="$(sed -n 's/.*"refused": \([0-9]*\).*/\1/p' "${OL_JSON}")"
  if [[ -z "${ol_qps}" ]] ||
     ! awk -v q="${ol_qps}" 'BEGIN{exit !(q > 0)}'; then
    echo "overload smoke: FAILED — admitted fleet made no progress" \
         "(qps='${ol_qps}')" >&2
    kill -TERM "${OL_PID}" 2>/dev/null || true
    exit 1
  fi
  if [[ -z "${ol_refused}" || "${ol_refused}" -eq 0 ]]; then
    echo "overload smoke: FAILED — 96 connections against a cap of 48" \
         "produced no refusals (refused='${ol_refused}')" >&2
    kill -TERM "${OL_PID}" 2>/dev/null || true
    exit 1
  fi
  kill -TERM "${OL_PID}"
  ol_exit=0
  wait "${OL_PID}" || ol_exit=$?
  if [[ "${ol_exit}" -ne 0 ]]; then
    echo "overload smoke: FAILED — SIGTERM drain under overload exited" \
         "${ol_exit}:" >&2
    cat "${OL_OUT}" >&2
    exit 1
  fi
  start_overload_server
  {
    printf 'RECOMMEND 1 10\r\n'
    printf 'QUIT\r\n'
  } | {
    exec 9<>"/dev/tcp/127.0.0.1/${OL_PORT}"
    cat >&9
    cat <&9
    exec 9<&- 9>&-
  } >"${OL_PROBE}"
  if ! grep -q '^:' "${OL_PROBE}"; then
    echo "overload smoke: FAILED — restart on the mid-flood BGSAVE" \
         "snapshot returned no data:" >&2
    cat "${OL_PROBE}" >&2
    kill -TERM "${OL_PID}" 2>/dev/null || true
    exit 1
  fi
  kill -TERM "${OL_PID}"
  ol_exit=0
  wait "${OL_PID}" || ol_exit=$?
  if [[ "${ol_exit}" -ne 0 ]]; then
    echo "overload smoke: FAILED — restarted server's SIGTERM drain" \
         "exited ${ol_exit}:" >&2
    cat "${OL_OUT}" >&2
    exit 1
  fi
  echo "overload smoke: OK (${ol_qps} qps past a 48-conn cap," \
       "${ol_refused} refused, mid-flood BGSAVE recovered)"
else
  echo "overload smoke: SKIPPED (sccf_server not built on this platform)"
fi

# Recovery suites under AddressSanitizer: the fault-injection tests feed
# corrupted bytes through every decoder, which is exactly where an
# out-of-bounds read would hide. `-L crash` is the fork/SIGKILL suite;
# persist_test (plain tier1) carries the decoder fault matrices, so it
# runs explicitly alongside. Skip gracefully where the toolchain has no
# -fsanitize=address.
if echo 'int main(){}' | "${CXX:-c++}" -fsanitize=address -x c++ - \
     -o /dev/null 2>/dev/null; then
  cmake --preset asan >/dev/null
  ASAN_TARGETS=(persist_test recovery_test)
  # The syscall fault-injection server suite (EINTR storms, short
  # writes, EMFILE, ENOSPC through the reactor) is crash-labeled so the
  # ctest below picks it up, but it is Linux-only — build it where the
  # server itself built.
  if [[ -x "${SRV}" ]]; then
    ASAN_TARGETS+=(server_fault_test)
  fi
  cmake --build --preset asan -j "${JOBS}" --target "${ASAN_TARGETS[@]}"
  ./build/asan/tests/persist_test >/dev/null
  ctest --preset asan -L crash
  echo "asan recovery gate: OK"
else
  echo "asan recovery gate: SKIPPED (-fsanitize=address unavailable)"
fi

echo "ci.sh: all green"
