#!/usr/bin/env bash
# Tier-1 verify plus a benchmark smoke test. This is exactly what CI runs;
# run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

# Tier-1 verify (ROADMAP.md): configure, build everything, run the
# tier1-labeled suites. Suites registered SLOW stay out of this gate;
# run them locally with `ctest --preset release -L slow`.
cmake --preset release
cmake --build --preset release -j "${JOBS}"
ctest --preset release -L tier1

# Benchmark smoke: the micro-kernel suite at minimal iteration budget,
# to catch crashes/regressions in bench-only code paths. The target is
# skipped at configure time when Google Benchmark is unavailable.
MICRO=build/release/bench/micro_kernels
if [[ -x "${MICRO}" ]]; then
  # benchmark >= 1.8 wants a "0.01s" suffix, older versions a bare double.
  # Keep the first attempt's stderr so a genuine crash is not masked by
  # the retry's flag-parse error.
  SMOKE_ERR="$(mktemp)"
  trap 'rm -f "${SMOKE_ERR}"' EXIT
  if ! "${MICRO}" --benchmark_min_time=0.01 >/dev/null 2>"${SMOKE_ERR}" &&
     ! "${MICRO}" --benchmark_min_time=0.01s >/dev/null; then
    echo "micro_kernels smoke: FAILED; first attempt stderr:" >&2
    cat "${SMOKE_ERR}" >&2
    exit 1
  fi
  echo "micro_kernels smoke: OK"
else
  echo "micro_kernels smoke: SKIPPED (Google Benchmark not found)"
fi

echo "ci.sh: all green"
