#include "util/coding.h"

#include <array>

namespace sccf {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  return table;
}

}  // namespace

Status ByteReader::ReadU8(uint8_t* v) {
  if (remaining() < 1) return Status::IoError("truncated input (u8)");
  *v = static_cast<uint8_t>(data_[pos_]);
  pos_ += 1;
  return Status::OK();
}

Status ByteReader::ReadFixed32(uint32_t* v) {
  if (remaining() < 4) return Status::IoError("truncated input (u32)");
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data_.data() + pos_);
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  pos_ += 4;
  return Status::OK();
}

Status ByteReader::ReadFixed64(uint64_t* v) {
  if (remaining() < 8) return Status::IoError("truncated input (u64)");
  uint32_t lo = 0, hi = 0;
  SCCF_RETURN_NOT_OK(ReadFixed32(&lo));
  SCCF_RETURN_NOT_OK(ReadFixed32(&hi));
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return Status::OK();
}

Status ByteReader::ReadI32(int32_t* v) {
  uint32_t u = 0;
  SCCF_RETURN_NOT_OK(ReadFixed32(&u));
  *v = static_cast<int32_t>(u);
  return Status::OK();
}

Status ByteReader::ReadI64(int64_t* v) {
  uint64_t u = 0;
  SCCF_RETURN_NOT_OK(ReadFixed64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status ByteReader::ReadF32(float* v) {
  uint32_t bits = 0;
  SCCF_RETURN_NOT_OK(ReadFixed32(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status ByteReader::ReadBytes(size_t n, std::string* out) {
  if (remaining() < n) return Status::IoError("truncated input (bytes)");
  out->assign(data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadView(size_t n, std::string_view* out) {
  if (remaining() < n) return Status::IoError("truncated input (view)");
  *out = data_.substr(pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadLengthPrefixed(std::string_view* out) {
  const size_t saved = pos_;
  uint64_t len = 0;
  SCCF_RETURN_NOT_OK(ReadFixed64(&len));
  if (len > remaining()) {
    pos_ = saved;
    return Status::IoError("corrupt length prefix exceeds buffer");
  }
  *out = data_.substr(pos_, static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return Status::OK();
}

Status ByteReader::ReadFloats(size_t n, std::vector<float>* out) {
  if (n > remaining() / 4) {
    return Status::IoError("truncated input (float array)");
  }
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    SCCF_RETURN_NOT_OK(ReadF32(&(*out)[i]));
  }
  return Status::OK();
}

uint32_t Crc32Extend(uint32_t crc, std::string_view data) {
  const auto& table = CrcTable();
  uint32_t c = crc ^ 0xffffffffu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(std::string_view data) { return Crc32Extend(0, data); }

}  // namespace sccf
