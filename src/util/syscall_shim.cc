#include "util/syscall_shim.h"

#include <fcntl.h>
#include <stdio.h>
#include <unistd.h>

namespace sccf::sys {

namespace {

int RealAccept4(int sockfd, struct sockaddr* addr, socklen_t* addrlen,
                int flags) {
#ifdef __linux__
  return ::accept4(sockfd, addr, addrlen, flags);
#else
  // Portable fallback (the epoll reactor is Linux-only, but the shim
  // lives in util, which builds everywhere): plain accept, then apply
  // the flags accept4 would have set atomically.
  const int fd = ::accept(sockfd, addr, addrlen);
  if (fd < 0) return fd;
#ifdef SOCK_NONBLOCK
  if ((flags & SOCK_NONBLOCK) != 0) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  }
#endif
#ifdef SOCK_CLOEXEC
  if ((flags & SOCK_CLOEXEC) != 0) {
    ::fcntl(fd, F_SETFD, ::fcntl(fd, F_GETFD, 0) | FD_CLOEXEC);
  }
#endif
  (void)flags;
  return fd;
#endif
}

constexpr SyscallTable MakeRealTable() {
  return SyscallTable{&::read, &::write, &RealAccept4, &::fsync, &::rename};
}

}  // namespace

SyscallTable& Table() {
  static SyscallTable table = MakeRealTable();
  return table;
}

const SyscallTable& RealSyscalls() {
  static const SyscallTable real = MakeRealTable();
  return real;
}

}  // namespace sccf::sys
