#ifndef SCCF_UTIL_TABLE_PRINTER_H_
#define SCCF_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace sccf {

/// Renders aligned ASCII tables for benchmark output, mirroring the row and
/// column layout of the paper's tables so measured results can be compared
/// against the published ones side by side.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimals.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 4);

  /// Renders the table with column alignment and +--+ rules.
  std::string ToString() const;

  /// Writes ToString() to stdout.
  void Print() const;

  /// Writes rows as CSV (header first) to `path`. Returns false on IO error.
  bool WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sccf

#endif  // SCCF_UTIL_TABLE_PRINTER_H_
