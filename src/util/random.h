#ifndef SCCF_UTIL_RANDOM_H_
#define SCCF_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sccf {

/// SplitMix64 finalizer over one 64-bit input. This is the fixed,
/// platform-independent integer mix the serving layer partitions users
/// across shards with (core/realtime.cc takes it modulo num_shards) and
/// the hot-shard adversarial scenario generator inverts by search
/// (scenario/generators.cc picks user ids that collide modulo the shard
/// count). Those two MUST agree bit-for-bit, so both call this one
/// definition. Also used internally to expand Rng seeds.
uint64_t SplitMix64(uint64_t x);

/// Deterministic, seedable PRNG (xoshiro256**). Used everywhere instead of
/// std::mt19937 so experiment results are reproducible across platforms and
/// standard-library versions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). Pre: bound > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi]. Pre: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform float in [0, 1).
  float UniformFloat();

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Standard normal via Box-Muller.
  float Normal();

  /// Normal(mean, stddev) resampled until within [mean - 2*stddev,
  /// mean + 2*stddev] — matches TensorFlow's truncated_normal initializer
  /// used by the paper (Sec. IV-A4).
  float TruncatedNormal(float mean, float stddev);

  /// Bernoulli(p).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Pre: weights non-empty with non-negative entries summing > 0.
  size_t Categorical(const std::vector<double>& weights);

  /// k distinct values from [0, n) in increasing order. Pre: k <= n.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Complete generator state, exposed so stateful consumers (the HNSW
  /// index) can serialize and restore their RNG bit-exactly: a recovered
  /// index must draw the same level sequence a never-restarted one would.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool have_cached_normal = false;
    float cached_normal = 0.0f;
  };
  State state() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.have_cached_normal = have_cached_normal_;
    st.cached_normal = cached_normal_;
    return st;
  }
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    have_cached_normal_ = st.have_cached_normal;
    cached_normal_ = st.cached_normal;
  }

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace sccf

#endif  // SCCF_UTIL_RANDOM_H_
