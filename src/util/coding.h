#ifndef SCCF_UTIL_CODING_H_
#define SCCF_UTIL_CODING_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sccf {

/// Little-endian binary encoding helpers shared by every on-disk format
/// (nn checkpoints, index blobs, shard snapshots, the ingest journal).
/// The writer appends to a std::string; the reader is a bounded cursor
/// over immutable bytes that returns Status instead of reading past the
/// end — corrupt or truncated input must surface as a clean error, never
/// as an out-of-bounds read (the persistence fault-injection suite pins
/// exactly that).

// ------------------------------------------------------------- writing

inline void PutU8(std::string* dst, uint8_t v) {
  dst->push_back(static_cast<char>(v));
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

inline void PutI32(std::string* dst, int32_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v));
}

inline void PutI64(std::string* dst, int64_t v) {
  PutFixed64(dst, static_cast<uint64_t>(v));
}

inline void PutF32(std::string* dst, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed32(dst, bits);
}

/// Length-prefixed byte string (u64 length + raw bytes).
inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed64(dst, s.size());
  dst->append(s.data(), s.size());
}

/// Raw float array, no length prefix (the caller frames the count).
inline void PutFloats(std::string* dst, const float* v, size_t n) {
  for (size_t i = 0; i < n; ++i) PutF32(dst, v[i]);
}

// ------------------------------------------------------------- reading

/// Bounded little-endian cursor. Every read validates the remaining
/// length first; a short buffer yields IoError and leaves the cursor
/// usable (position unchanged on failure).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  Status ReadU8(uint8_t* v);
  Status ReadFixed32(uint32_t* v);
  Status ReadFixed64(uint64_t* v);
  Status ReadI32(int32_t* v);
  Status ReadI64(int64_t* v);
  Status ReadF32(float* v);
  /// Reads `n` raw bytes into `out` (resized).
  Status ReadBytes(size_t n, std::string* out);
  /// Returns a view of `n` raw bytes without copying; the view borrows
  /// the reader's underlying buffer.
  Status ReadView(size_t n, std::string_view* out);
  /// u64 length + that many bytes. The length is validated against the
  /// remaining buffer BEFORE any allocation, so an adversarial huge
  /// length is a clean error, not an allocation bomb.
  Status ReadLengthPrefixed(std::string_view* out);
  /// Reads `n` floats into `out` (resized). Validates n * 4 bytes remain
  /// before allocating.
  Status ReadFloats(size_t n, std::vector<float>* out);

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------- crc

/// CRC-32 (IEEE 802.3 polynomial, the zlib crc32) over `data`. Software
/// table implementation — snapshot/journal sections are small relative
/// to the fsyncs around them, so portability beats hardware CRC here.
uint32_t Crc32(std::string_view data);

/// Incremental form: crc of (a ++ b) == Crc32Extend(Crc32(a), b).
uint32_t Crc32Extend(uint32_t crc, std::string_view data);

}  // namespace sccf

#endif  // SCCF_UTIL_CODING_H_
