#ifndef SCCF_UTIL_STOPWATCH_H_
#define SCCF_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstddef>

namespace sccf {

/// Monotonic wall-clock timer. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Online mean/min/max accumulator for latency samples (milliseconds).
class LatencyStats {
 public:
  void Add(double ms) {
    ++count_;
    sum_ += ms;
    if (ms < min_ || count_ == 1) min_ = ms;
    if (ms > max_ || count_ == 1) max_ = ms;
  }

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sccf

#endif  // SCCF_UTIL_STOPWATCH_H_
