#ifndef SCCF_UTIL_STRING_UTIL_H_
#define SCCF_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sccf {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Fixed-precision float formatting ("0.1234" style used in result tables).
std::string FormatFloat(double v, int precision);

/// True if `s` parses fully as the given numeric type.
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);

}  // namespace sccf

#endif  // SCCF_UTIL_STRING_UTIL_H_
