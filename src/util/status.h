#ifndef SCCF_UTIL_STATUS_H_
#define SCCF_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace sccf {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIoError = 8,
};

/// Returns a human-readable name for `code` (e.g., "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail without a value payload.
///
/// Follows the Arrow/Abseil idiom: functions that can fail return `Status`
/// (or `StatusOr<T>`), never throw. The zero-cost OK path stores no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Code: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Never both.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: enables `return value;` in StatusOr functions.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: enables `return Status::...;`.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre: ok(). Crashing on misuse is intentional (programming error).
  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sccf

/// Propagates a non-OK Status to the caller.
#define SCCF_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::sccf::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (false)

/// Assigns the value of a StatusOr expression or propagates its error.
#define SCCF_ASSIGN_OR_RETURN(lhs, expr)             \
  SCCF_ASSIGN_OR_RETURN_IMPL_(                       \
      SCCF_STATUS_CONCAT_(_status_or_, __LINE__), lhs, expr)

#define SCCF_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define SCCF_STATUS_CONCAT_(a, b) SCCF_STATUS_CONCAT_IMPL_(a, b)
#define SCCF_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // SCCF_UTIL_STATUS_H_
