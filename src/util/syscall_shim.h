#ifndef SCCF_UTIL_SYSCALL_SHIM_H_
#define SCCF_UTIL_SYSCALL_SHIM_H_

#include <sys/socket.h>
#include <sys/types.h>

#include <cstddef>

namespace sccf::sys {

/// Test-selectable indirection over the raw syscalls the serving and
/// persistence layers issue on their hot and durability paths. The
/// production default is a table of pointers to the real syscalls —
/// one indirect call, no branches, no locks — and the fault-injection
/// suites swap individual entries to drive error paths that are
/// otherwise unreachable from a test: EINTR storms on the reactor's
/// socket loop, short writes, EMFILE on accept, ENOSPC mid-snapshot,
/// a wedged fsync.
///
/// Scope: only the calls whose *failure handling* carries correctness
/// weight are routed here (read/write/accept4/fsync/rename). Setup-time
/// calls (socket, bind, epoll_ctl, open) fail loudly at startup and stay
/// direct.
///
/// Thread-safety: the table is plain function pointers. Overrides must
/// be installed while no server loop or persistence helper thread is
/// running (i.e., before Server::Start / Engine::Bootstrap, or between
/// quiesced points); the injected functions themselves are called
/// concurrently and must be thread-safe (use atomics for their
/// counters). ScopedSyscallOverride restores the previous table on
/// destruction so a failing test cannot poison the next one.
struct SyscallTable {
  ssize_t (*read)(int fd, void* buf, size_t count);
  ssize_t (*write)(int fd, const void* buf, size_t count);
  int (*accept4)(int sockfd, struct sockaddr* addr, socklen_t* addrlen,
                 int flags);
  int (*fsync)(int fd);
  int (*rename)(const char* oldpath, const char* newpath);
};

/// The live table. Production code calls through the inline wrappers
/// below; tests mutate entries (normally via ScopedSyscallOverride).
SyscallTable& Table();

/// The all-real-syscalls default (what Table() starts as).
const SyscallTable& RealSyscalls();

// Call-through wrappers, so call sites read like the syscall they wrap.
inline ssize_t Read(int fd, void* buf, size_t count) {
  return Table().read(fd, buf, count);
}
inline ssize_t Write(int fd, const void* buf, size_t count) {
  return Table().write(fd, buf, count);
}
inline int Accept4(int sockfd, struct sockaddr* addr, socklen_t* addrlen,
                   int flags) {
  return Table().accept4(sockfd, addr, addrlen, flags);
}
inline int Fsync(int fd) { return Table().fsync(fd); }
inline int Rename(const char* oldpath, const char* newpath) {
  return Table().rename(oldpath, newpath);
}

/// RAII guard for tests: snapshots the table on construction, exposes
/// the live table for mutation, restores the snapshot on destruction.
class ScopedSyscallOverride {
 public:
  ScopedSyscallOverride() : saved_(Table()) {}
  ~ScopedSyscallOverride() { Table() = saved_; }

  ScopedSyscallOverride(const ScopedSyscallOverride&) = delete;
  ScopedSyscallOverride& operator=(const ScopedSyscallOverride&) = delete;

  SyscallTable& table() { return Table(); }

 private:
  SyscallTable saved_;
};

}  // namespace sccf::sys

#endif  // SCCF_UTIL_SYSCALL_SHIM_H_
