#ifndef SCCF_UTIL_LOGGING_H_
#define SCCF_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace sccf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_ = false;
  bool fatal_ = false;
  std::ostringstream stream_;

  friend class FatalLogMessage;
};

/// Like LogMessage but aborts the process after emitting.
class FatalLogMessage : public LogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();
};

}  // namespace internal
}  // namespace sccf

#define SCCF_LOG_DEBUG \
  ::sccf::internal::LogMessage(::sccf::LogLevel::kDebug, __FILE__, __LINE__)
#define SCCF_LOG_INFO \
  ::sccf::internal::LogMessage(::sccf::LogLevel::kInfo, __FILE__, __LINE__)
#define SCCF_LOG_WARNING \
  ::sccf::internal::LogMessage(::sccf::LogLevel::kWarning, __FILE__, __LINE__)
#define SCCF_LOG_ERROR \
  ::sccf::internal::LogMessage(::sccf::LogLevel::kError, __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. For programming errors only;
/// recoverable failures must return Status instead.
#define SCCF_CHECK(cond)                                 \
  if (!(cond))                                           \
  ::sccf::internal::FatalLogMessage(__FILE__, __LINE__)  \
      << "Check failed: " #cond " "

#define SCCF_CHECK_EQ(a, b) SCCF_CHECK((a) == (b))
#define SCCF_CHECK_NE(a, b) SCCF_CHECK((a) != (b))
#define SCCF_CHECK_LT(a, b) SCCF_CHECK((a) < (b))
#define SCCF_CHECK_LE(a, b) SCCF_CHECK((a) <= (b))
#define SCCF_CHECK_GT(a, b) SCCF_CHECK((a) > (b))
#define SCCF_CHECK_GE(a, b) SCCF_CHECK((a) >= (b))

#endif  // SCCF_UTIL_LOGGING_H_
