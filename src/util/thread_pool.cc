#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

#include "util/logging.h"

namespace sccf {

ThreadPool::ThreadPool(size_t num_threads) {
  SCCF_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(
      std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn) {
  ParallelForBlocked(begin, end, [&fn](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) fn(i);
  });
}

void ParallelForBlocked(size_t begin, size_t end,
                        const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  ThreadPool& pool = ThreadPool::Global();
  const size_t n = end - begin;
  const size_t num_blocks = std::min(n, pool.num_threads());
  if (num_blocks <= 1) {
    fn(begin, end);
    return;
  }
  const size_t block = (n + num_blocks - 1) / num_blocks;
  std::mutex error_mu;
  std::exception_ptr first_error;
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t lo = begin + b * block;
    const size_t hi = std::min(end, lo + block);
    if (lo >= hi) break;
    pool.Submit([&fn, lo, hi, &error_mu, &first_error] {
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.Wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sccf
