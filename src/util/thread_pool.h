#ifndef SCCF_UTIL_THREAD_POOL_H_
#define SCCF_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sccf {

/// Fixed-size worker pool. Tasks are void() closures; Wait() blocks until
/// the queue drains. Intended for data-parallel loops (see ParallelFor),
/// not for fine-grained task graphs.
class ThreadPool {
 public:
  /// Pre: num_threads >= 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker. Safe to call from
  /// inside a running task (nested submit): the task is queued like any
  /// other and Wait() keeps blocking until it too has finished. Tasks
  /// must not throw — an escaping exception terminates the process; use
  /// ParallelFor/ParallelForBlocked for exception propagation.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide pool sized to the hardware concurrency.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  std::queue<std::function<void()>> tasks_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [begin, end) across the global pool, splitting the
/// range into contiguous blocks. Blocks until all iterations complete.
/// fn must be safe to call concurrently for distinct i. Must not be called
/// from inside a pool worker (no nesting): the caller would occupy a worker
/// slot while waiting for its own sub-tasks.
///
/// If fn throws, the throwing block stops at the exception but all other
/// queued blocks still run; the first observed exception is rethrown in
/// the caller once the range has drained (additional exceptions are
/// dropped). An empty range is a no-op.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

/// Like ParallelFor but hands each worker a [lo, hi) block, which lets the
/// callee keep per-block scratch state. Same exception semantics.
void ParallelForBlocked(size_t begin, size_t end,
                        const std::function<void(size_t, size_t)>& fn);

}  // namespace sccf

#endif  // SCCF_UTIL_THREAD_POOL_H_
