#include "util/random.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace sccf {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  // splitmix64 sequence expands the single seed into the xoshiro state.
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
    sm += 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  SCCF_CHECK_GT(bound, 0u);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SCCF_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

float Rng::UniformFloat() {
  return static_cast<float>(Next() >> 40) * 0x1.0p-24f;
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  float u1 = 0.0f;
  while (u1 <= 1e-12f) u1 = UniformFloat();
  float u2 = UniformFloat();
  float r = std::sqrt(-2.0f * std::log(u1));
  float theta = 2.0f * static_cast<float>(M_PI) * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

float Rng::TruncatedNormal(float mean, float stddev) {
  for (;;) {
    float z = Normal();
    if (std::fabs(z) <= 2.0f) return mean + stddev * z;
  }
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  SCCF_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SCCF_CHECK_GE(w, 0.0);
    total += w;
  }
  SCCF_CHECK_GT(total, 0.0);
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  SCCF_CHECK_LE(k, n);
  // Floyd's algorithm: O(k) expected time, no O(n) allocation.
  std::vector<uint64_t> out;
  out.reserve(k);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = Uniform(j + 1);
    bool found = false;
    for (uint64_t v : out) {
      if (v == t) {
        found = true;
        break;
      }
    }
    out.push_back(found ? j : t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sccf
