#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace sccf {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  SCCF_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  SCCF_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  SCCF_CHECK_EQ(values.size() + 1, header_.size());
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatFloat(v, precision));
  AddRow(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (size_t w : width) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      s += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

void TablePrinter::Print() const {
  std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

bool TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << Join(header_, ",") << "\n";
  for (const auto& row : rows_) f << Join(row, ",") << "\n";
  return static_cast<bool>(f);
}

}  // namespace sccf
