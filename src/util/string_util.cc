#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace sccf {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string FormatFloat(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* endptr = nullptr;
  *out = std::strtod(buf.c_str(), &endptr);
  return endptr == buf.c_str() + buf.size();
}

}  // namespace sccf
