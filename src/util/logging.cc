#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace sccf {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load()) {
  if (!enabled_) return;
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_ || fatal_) return;
  std::string line = stream_.str();
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

FatalLogMessage::FatalLogMessage(const char* file, int line)
    : LogMessage(LogLevel::kError, file, line) {
  fatal_ = true;
}

FatalLogMessage::~FatalLogMessage() {
  std::string line = stream_.str();
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::abort();
}

}  // namespace internal
}  // namespace sccf
