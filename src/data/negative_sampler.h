#ifndef SCCF_DATA_NEGATIVE_SAMPLER_H_
#define SCCF_DATA_NEGATIVE_SAMPLER_H_

#include <cstddef>
#include <vector>

#include "data/split.h"
#include "util/random.h"

namespace sccf::data {

/// Samples negative items for implicit-feedback training (Sec. III-B2):
/// "sample negative instances from the remaining unobserved ones". Items
/// in the user's training set are rejected and resampled.
class NegativeSampler {
 public:
  /// `popularity_smoothing` < 0 selects uniform sampling; otherwise items
  /// are drawn proportionally to count^smoothing (word2vec-style).
  NegativeSampler(const LeaveOneOutSplit& split,
                  double popularity_smoothing = -1.0);

  /// One negative for user `u` (an item outside the training set).
  int Sample(size_t u, Rng& rng) const;

  /// `n` negatives (independent draws; duplicates possible, as in the
  /// reference implementations).
  std::vector<int> SampleMany(size_t u, size_t n, Rng& rng) const;

 private:
  const LeaveOneOutSplit* split_;
  size_t num_items_ = 0;
  bool popularity_weighted_ = false;
  std::vector<double> cumulative_;  // popularity CDF when weighted
};

}  // namespace sccf::data

#endif  // SCCF_DATA_NEGATIVE_SAMPLER_H_
