#include "data/negative_sampler.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace sccf::data {

NegativeSampler::NegativeSampler(const LeaveOneOutSplit& split,
                                 double popularity_smoothing)
    : split_(&split),
      num_items_(split.dataset().num_items()),
      popularity_weighted_(popularity_smoothing >= 0.0) {
  if (popularity_weighted_) {
    const auto& counts = split.dataset().item_counts();
    cumulative_.resize(num_items_);
    double acc = 0.0;
    for (size_t i = 0; i < num_items_; ++i) {
      acc += std::pow(static_cast<double>(counts[i]) + 1.0,
                      popularity_smoothing);
      cumulative_[i] = acc;
    }
  }
}

int NegativeSampler::Sample(size_t u, Rng& rng) const {
  for (int attempt = 0; attempt < 64; ++attempt) {
    int item;
    if (popularity_weighted_) {
      const double r = rng.UniformDouble() * cumulative_.back();
      item = static_cast<int>(
          std::lower_bound(cumulative_.begin(), cumulative_.end(), r) -
          cumulative_.begin());
    } else {
      item = static_cast<int>(rng.Uniform(num_items_));
    }
    if (!split_->InTrainSet(u, item, /*include_valid=*/false)) return item;
  }
  // Pathological user covering almost the whole catalog; fall back to a
  // linear scan for any unseen item.
  for (size_t i = 0; i < num_items_; ++i) {
    if (!split_->InTrainSet(u, static_cast<int>(i),
                            /*include_valid=*/false)) {
      return static_cast<int>(i);
    }
  }
  SCCF_LOG_WARNING << "user " << u << " has interacted with every item";
  return static_cast<int>(rng.Uniform(num_items_));
}

std::vector<int> NegativeSampler::SampleMany(size_t u, size_t n,
                                             Rng& rng) const {
  std::vector<int> out(n);
  for (auto& v : out) v = Sample(u, rng);
  return out;
}

}  // namespace sccf::data
