#include "data/loaders.h"

#include <fstream>
#include <unordered_map>

#include "util/string_util.h"

namespace sccf::data {

namespace {

// Splits on "::" (ML-1M) or "," (ML-20M / Amazon).
std::vector<std::string> SplitRecord(const std::string& line) {
  if (line.find("::") != std::string::npos) {
    std::vector<std::string> out;
    size_t start = 0;
    for (;;) {
      size_t pos = line.find("::", start);
      if (pos == std::string::npos) {
        out.push_back(line.substr(start));
        break;
      }
      out.push_back(line.substr(start, pos - start));
      start = pos + 2;
    }
    return out;
  }
  return Split(line, ',');
}

StatusOr<std::vector<Interaction>> LoadRatingsFile(const std::string& path,
                                                   bool string_ids) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open " + path);

  std::unordered_map<std::string, int> user_ids;
  std::unordered_map<std::string, int> item_ids;
  auto intern = [](std::unordered_map<std::string, int>& map,
                   const std::string& key) {
    return map.emplace(key, static_cast<int>(map.size())).first->second;
  };

  std::vector<Interaction> out;
  std::string line;
  size_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    std::vector<std::string> fields = SplitRecord(std::string(stripped));
    if (fields.size() < 4) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected >=4 fields");
    }
    Interaction it;
    int64_t ts = 0;
    if (!ParseInt64(fields[3], &ts)) {
      if (lineno == 1) continue;  // header row
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": bad timestamp '" + fields[3] + "'");
    }
    it.timestamp = ts;
    if (string_ids) {
      it.user = intern(user_ids, fields[0]);
      it.item = intern(item_ids, fields[1]);
    } else {
      int64_t u = 0;
      int64_t i = 0;
      if (!ParseInt64(fields[0], &u) || !ParseInt64(fields[1], &i)) {
        if (lineno == 1) continue;  // header row
        return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                       ": bad ids");
      }
      it.user = static_cast<int>(u);
      it.item = static_cast<int>(i);
    }
    out.push_back(it);
  }
  if (out.empty()) return Status::InvalidArgument(path + ": no records");
  return out;
}

}  // namespace

StatusOr<std::vector<Interaction>> LoadMovieLens(const std::string& path) {
  return LoadRatingsFile(path, /*string_ids=*/false);
}

StatusOr<std::vector<Interaction>> LoadAmazonRatings(
    const std::string& path) {
  return LoadRatingsFile(path, /*string_ids=*/true);
}

StatusOr<Dataset> LoadAndPreprocess(const std::string& name,
                                    const std::string& path, size_t core) {
  SCCF_ASSIGN_OR_RETURN(std::vector<Interaction> raw,
                        LoadAmazonRatings(path));
  raw = KCoreFilter(std::move(raw), core, CoreFilterMode::kPaper);
  return Dataset::FromInteractions(name, std::move(raw));
}

}  // namespace sccf::data
