#ifndef SCCF_DATA_SPLIT_H_
#define SCCF_DATA_SPLIT_H_

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace sccf::data {

/// Leave-one-out protocol of Sec. IV-A2: per user, the last interaction is
/// the test item, the one before it is the validation item, everything
/// earlier is training history. Users whose sequence is too short to carve
/// out both holdouts are marked unevaluable (train on full sequence).
///
/// `include_validation_in_train` reproduces the paper's final-measurement
/// setting: "we add all validation items and users back to the training
/// set" before scoring the test items.
class LeaveOneOutSplit {
 public:
  /// Pre: dataset outlives the split.
  explicit LeaveOneOutSplit(const Dataset& dataset);

  const Dataset& dataset() const { return *dataset_; }
  size_t num_users() const { return dataset_->num_users(); }

  /// True when user `u` has a held-out validation and test item.
  bool evaluable(size_t u) const { return evaluable_[u]; }

  /// Training prefix (excludes validation and test positions).
  std::span<const int> TrainSequence(size_t u) const;

  /// Training prefix plus the validation item — the history visible when
  /// scoring the *test* item.
  std::span<const int> TrainPlusValidSequence(size_t u) const;

  /// Held-out items. Pre: evaluable(u).
  int ValidItem(size_t u) const;
  int TestItem(size_t u) const;

  /// True if `item` occurs in the training prefix of `u` (R+_u for
  /// training-time purposes). `include_valid` also counts the validation
  /// item, for test-time exclusion per Sec. III-C.
  bool InTrainSet(size_t u, int item, bool include_valid) const;

  size_t NumEvaluableUsers() const { return num_evaluable_; }

 private:
  const Dataset* dataset_;
  std::vector<bool> evaluable_;
  size_t num_evaluable_ = 0;
  // Sorted unique items of the training prefix / prefix+valid, per user,
  // for O(log) membership checks.
  std::vector<std::vector<int>> train_sets_;
  std::vector<std::vector<int>> train_valid_sets_;
};

}  // namespace sccf::data

#endif  // SCCF_DATA_SPLIT_H_
