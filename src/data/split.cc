#include "data/split.h"

#include <algorithm>

#include "util/logging.h"

namespace sccf::data {

namespace {
constexpr size_t kMinSequenceForHoldout = 3;  // >=1 train + valid + test

std::vector<int> SortedUnique(std::span<const int> items) {
  std::vector<int> s(items.begin(), items.end());
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
  return s;
}
}  // namespace

LeaveOneOutSplit::LeaveOneOutSplit(const Dataset& dataset)
    : dataset_(&dataset) {
  const size_t n = dataset.num_users();
  evaluable_.resize(n);
  train_sets_.resize(n);
  train_valid_sets_.resize(n);
  for (size_t u = 0; u < n; ++u) {
    const auto& seq = dataset.sequence(u);
    evaluable_[u] = seq.size() >= kMinSequenceForHoldout;
    if (evaluable_[u]) ++num_evaluable_;
    train_sets_[u] = SortedUnique(TrainSequence(u));
    train_valid_sets_[u] = SortedUnique(TrainPlusValidSequence(u));
  }
}

std::span<const int> LeaveOneOutSplit::TrainSequence(size_t u) const {
  const auto& seq = dataset_->sequence(u);
  if (!evaluable_[u]) return {seq.data(), seq.size()};
  return {seq.data(), seq.size() - 2};
}

std::span<const int> LeaveOneOutSplit::TrainPlusValidSequence(
    size_t u) const {
  const auto& seq = dataset_->sequence(u);
  if (!evaluable_[u]) return {seq.data(), seq.size()};
  return {seq.data(), seq.size() - 1};
}

int LeaveOneOutSplit::ValidItem(size_t u) const {
  SCCF_CHECK(evaluable_[u]);
  const auto& seq = dataset_->sequence(u);
  return seq[seq.size() - 2];
}

int LeaveOneOutSplit::TestItem(size_t u) const {
  SCCF_CHECK(evaluable_[u]);
  return dataset_->sequence(u).back();
}

bool LeaveOneOutSplit::InTrainSet(size_t u, int item,
                                  bool include_valid) const {
  const auto& s = include_valid ? train_valid_sets_[u] : train_sets_[u];
  return std::binary_search(s.begin(), s.end(), item);
}

}  // namespace sccf::data
