#include "data/dataset.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace sccf::data {

StatusOr<Dataset> Dataset::FromInteractions(
    std::string name, std::vector<Interaction> interactions) {
  if (interactions.empty()) {
    return Status::InvalidArgument("dataset '" + name + "' is empty");
  }

  std::stable_sort(interactions.begin(), interactions.end(),
                   [](const Interaction& a, const Interaction& b) {
                     if (a.user != b.user) return a.user < b.user;
                     return a.timestamp < b.timestamp;
                   });

  Dataset ds;
  ds.name_ = std::move(name);
  ds.num_actions_ = interactions.size();

  std::unordered_map<int, int> user_map;
  std::unordered_map<int, int> item_map;
  for (const Interaction& it : interactions) {
    if (user_map.emplace(it.user, static_cast<int>(user_map.size())).second) {
      ds.original_user_ids_.push_back(it.user);
    }
    if (item_map.emplace(it.item, static_cast<int>(item_map.size())).second) {
      ds.original_item_ids_.push_back(it.item);
    }
  }
  ds.num_items_ = item_map.size();
  ds.sequences_.resize(user_map.size());
  ds.timestamps_.resize(user_map.size());
  ds.item_sets_.resize(user_map.size());
  ds.item_counts_.assign(ds.num_items_, 0);

  for (const Interaction& it : interactions) {
    const int u = user_map[it.user];
    const int i = item_map[it.item];
    ds.sequences_[u].push_back(i);
    ds.timestamps_[u].push_back(it.timestamp);
    ++ds.item_counts_[i];
  }
  for (size_t u = 0; u < ds.sequences_.size(); ++u) {
    std::vector<int> s = ds.sequences_[u];
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    ds.item_sets_[u] = std::move(s);
  }
  return ds;
}

bool Dataset::UserHasItem(size_t u, int item) const {
  const auto& s = item_sets_[u];
  return std::binary_search(s.begin(), s.end(), item);
}

void Dataset::set_item_categories(std::vector<int> categories) {
  SCCF_CHECK_EQ(categories.size(), num_items_);
  int max_cat = -1;
  for (int c : categories) max_cat = std::max(max_cat, c);
  num_categories_ = static_cast<size_t>(max_cat + 1);
  item_categories_ = std::move(categories);
}

DatasetStats Dataset::Stats() const {
  DatasetStats st;
  st.num_users = num_users();
  st.num_items = num_items();
  st.num_actions = num_actions();
  st.avg_length =
      st.num_users == 0
          ? 0.0
          : static_cast<double>(st.num_actions) / st.num_users;
  st.density = st.num_users == 0 || st.num_items == 0
                   ? 0.0
                   : static_cast<double>(st.num_actions) /
                         (static_cast<double>(st.num_users) * st.num_items);
  return st;
}

namespace {

// Drops interactions of users (or items) occurring fewer than k times.
// Returns true if anything was removed.
bool FilterByCount(std::vector<Interaction>* interactions, size_t k,
                   bool by_user) {
  std::unordered_map<int, size_t> count;
  for (const Interaction& it : *interactions) {
    ++count[by_user ? it.user : it.item];
  }
  const size_t before = interactions->size();
  interactions->erase(
      std::remove_if(interactions->begin(), interactions->end(),
                     [&](const Interaction& it) {
                       return count[by_user ? it.user : it.item] < k;
                     }),
      interactions->end());
  return interactions->size() != before;
}

}  // namespace

std::vector<Interaction> KCoreFilter(std::vector<Interaction> interactions,
                                     size_t k, CoreFilterMode mode) {
  if (mode == CoreFilterMode::kPaper) {
    FilterByCount(&interactions, k, /*by_user=*/false);
    FilterByCount(&interactions, k, /*by_user=*/true);
    FilterByCount(&interactions, k, /*by_user=*/true);
    return interactions;
  }
  bool changed = true;
  while (changed) {
    changed = FilterByCount(&interactions, k, /*by_user=*/false);
    changed = FilterByCount(&interactions, k, /*by_user=*/true) || changed;
  }
  return interactions;
}

}  // namespace sccf::data
