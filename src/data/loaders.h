#ifndef SCCF_DATA_LOADERS_H_
#define SCCF_DATA_LOADERS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace sccf::data {

/// Loads MovieLens "ratings.dat" ("user::item::rating::timestamp") or the
/// ML-20M CSV variant ("userId,movieId,rating,timestamp", header allowed).
/// All ratings become implicit "1" feedback per Sec. IV-A1.
StatusOr<std::vector<Interaction>> LoadMovieLens(const std::string& path);

/// Loads Amazon per-category ratings CSV: "user,item,rating,timestamp".
/// User/item ids may be arbitrary strings; they are hashed to dense ints.
StatusOr<std::vector<Interaction>> LoadAmazonRatings(
    const std::string& path);

/// Applies the paper's preprocessing (5-core, Sec. IV-A1) and builds the
/// Dataset in one call.
StatusOr<Dataset> LoadAndPreprocess(const std::string& name,
                                    const std::string& path,
                                    size_t core = 5);

}  // namespace sccf::data

#endif  // SCCF_DATA_LOADERS_H_
