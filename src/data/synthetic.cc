#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace sccf::data {

namespace {
// Cumulative Zipf weights over `n` ranks with exponent `s`.
std::vector<double> ZipfCumulative(size_t n, double s) {
  std::vector<double> cum(n);
  double acc = 0.0;
  for (size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cum[r] = acc;
  }
  return cum;
}

size_t SampleCumulative(const std::vector<double>& cum, Rng& rng) {
  const double r = rng.UniformDouble() * cum.back();
  return std::lower_bound(cum.begin(), cum.end(), r) - cum.begin();
}
}  // namespace

SyntheticGenerator::SyntheticGenerator(SyntheticConfig config)
    : config_(std::move(config)) {
  SCCF_CHECK_GT(config_.num_users, 0u);
  SCCF_CHECK_GT(config_.num_clusters, 0u);
  SCCF_CHECK_GE(config_.num_items, config_.num_clusters);
  SCCF_CHECK_GE(config_.max_actions, config_.min_actions);
  SCCF_CHECK_GT(config_.days, 0u);
}

int SyntheticGenerator::SampleClusterItem(int cluster, Rng& rng) const {
  const auto& items = cluster_items_[cluster];
  const size_t rank = SampleCumulative(cluster_cumweights_[cluster], rng);
  return items[rank];
}

StatusOr<Dataset> SyntheticGenerator::Generate() {
  Rng rng(config_.seed);
  const size_t m = config_.num_items;
  const size_t g = config_.num_clusters;

  // --- Item world: clusters, categories, popularity, successor chains.
  item_cluster_.resize(m);
  cluster_items_.assign(g, {});
  for (size_t i = 0; i < m; ++i) {
    const int c = static_cast<int>(i % g);  // round-robin keeps sizes even
    item_cluster_[i] = c;
    cluster_items_[c].push_back(static_cast<int>(i));
  }
  // Shuffle within-cluster order so popularity rank is random per cluster.
  cluster_cumweights_.resize(g);
  for (size_t c = 0; c < g; ++c) {
    rng.Shuffle(cluster_items_[c]);
    cluster_cumweights_[c] =
        ZipfCumulative(cluster_items_[c].size(), config_.popularity_exponent);
  }

  // Successor chain: a cyclic random permutation inside each cluster.
  successor_.assign(m, 0);
  for (size_t c = 0; c < g; ++c) {
    std::vector<int> order = cluster_items_[c];
    rng.Shuffle(order);
    for (size_t i = 0; i < order.size(); ++i) {
      successor_[order[i]] = order[(i + 1) % order.size()];
    }
  }

  // Global popularity head.
  const size_t head_size = std::max<size_t>(
      1, static_cast<size_t>(m * config_.global_popular_fraction));
  global_head_.clear();
  for (uint64_t idx : rng.SampleWithoutReplacement(m, head_size)) {
    global_head_.push_back(static_cast<int>(idx));
  }
  global_cumweights_ = ZipfCumulative(head_size, 1.2);

  // --- Users.
  user_primary_.resize(config_.num_users);
  std::vector<Interaction> interactions;
  const int64_t kSecondsPerDay = 86400;

  for (size_t u = 0; u < config_.num_users; ++u) {
    const int primary = static_cast<int>(rng.Uniform(g));
    user_primary_[u] = primary;
    std::vector<int> secondary;
    for (size_t s = 0; s < config_.num_secondary_interests; ++s) {
      secondary.push_back(static_cast<int>(rng.Uniform(g)));
    }

    const double frac = std::pow(rng.UniformDouble(), config_.length_shape);
    const size_t total_actions =
        config_.min_actions +
        static_cast<size_t>(
            (config_.max_actions - config_.min_actions) * frac);

    // Spread actions over days (uniform day choice, then sort).
    std::vector<size_t> action_day(total_actions);
    for (auto& d : action_day) d = rng.Uniform(config_.days);
    std::sort(action_day.begin(), action_day.end());

    std::unordered_set<int> seen;
    int prev_item = -1;
    size_t current_day = 0;
    size_t emitted = 0;
    for (size_t a = 0; a < total_actions; ++a) {
      // Day rollover: apply interest drift once per elapsed day.
      while (current_day < action_day[a]) {
        ++current_day;
        if (!secondary.empty() && rng.Bernoulli(config_.interest_drift)) {
          secondary[rng.Uniform(secondary.size())] =
              static_cast<int>(rng.Uniform(g));
        }
      }

      int item = -1;
      for (int attempt = 0; attempt < 8; ++attempt) {
        if (rng.Bernoulli(config_.global_popular_prob)) {
          item = global_head_[SampleCumulative(global_cumweights_, rng)];
        } else if (prev_item >= 0 &&
                   rng.Bernoulli(config_.sequential_strength)) {
          item = successor_[prev_item];
        } else {
          int cluster = primary;
          if (!secondary.empty() &&
              !rng.Bernoulli(config_.primary_affinity)) {
            cluster = secondary[rng.Uniform(secondary.size())];
          }
          item = SampleClusterItem(cluster, rng);
        }
        if (!seen.count(item)) break;
        item = -1;
      }
      if (item < 0) {
        prev_item = -1;  // stuck in seen items; break the chain
        continue;
      }
      seen.insert(item);
      Interaction it;
      it.user = static_cast<int>(u);
      it.item = item;
      it.timestamp = static_cast<int64_t>(action_day[a]) * kSecondsPerDay +
                     static_cast<int64_t>(emitted);
      interactions.push_back(it);
      prev_item = item;
      ++emitted;
    }
  }

  SCCF_ASSIGN_OR_RETURN(
      Dataset ds,
      Dataset::FromInteractions(config_.name, std::move(interactions)));

  // Category labels: contiguous cluster groups. Item ids survive
  // compaction in FromInteractions only via original ids, so map back.
  std::vector<int> categories(ds.num_items());
  for (size_t compact = 0; compact < ds.num_items(); ++compact) {
    const int original = ds.original_item_ids()[compact];
    categories[compact] = item_cluster_[original] /
                          static_cast<int>(config_.clusters_per_category);
  }
  ds.set_item_categories(std::move(categories));
  return ds;
}

SyntheticConfig SynMl1mConfig(double scale) {
  SyntheticConfig c;
  c.name = "SynML-1M";
  c.num_users = static_cast<size_t>(800 * scale);
  c.num_items = 900;
  c.num_clusters = 36;
  c.min_actions = 20;
  c.max_actions = 160;
  c.length_shape = 0.8;   // many long histories (dense MovieLens regime)
  c.sequential_strength = 0.3;
  c.days = 60;
  c.seed = 11;
  return c;
}

SyntheticConfig SynMl20mConfig(double scale) {
  SyntheticConfig c;
  c.name = "SynML-20M";
  c.num_users = static_cast<size_t>(1600 * scale);
  c.num_items = 1500;
  c.num_clusters = 60;
  c.min_actions = 15;
  c.max_actions = 120;
  c.length_shape = 1.0;
  c.sequential_strength = 0.35;
  c.days = 90;
  c.seed = 12;
  return c;
}

SyntheticConfig SynGamesConfig(double scale) {
  SyntheticConfig c;
  c.name = "SynGames";
  c.num_users = static_cast<size_t>(1200 * scale);
  c.num_items = 1000;
  c.num_clusters = 50;
  c.min_actions = 6;
  c.max_actions = 30;
  c.length_shape = 2.0;   // mostly short histories (Amazon regime)
  c.sequential_strength = 0.3;
  c.days = 45;
  c.seed = 13;
  return c;
}

SyntheticConfig SynBeautyConfig(double scale) {
  SyntheticConfig c;
  c.name = "SynBeauty";
  c.num_users = static_cast<size_t>(1500 * scale);
  c.num_items = 1400;
  c.num_clusters = 70;
  c.min_actions = 6;
  c.max_actions = 24;
  c.length_shape = 2.2;
  c.sequential_strength = 0.25;
  c.days = 45;
  c.seed = 14;
  return c;
}

}  // namespace sccf::data
