#ifndef SCCF_DATA_SYNTHETIC_H_
#define SCCF_DATA_SYNTHETIC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/random.h"
#include "util/status.h"

namespace sccf::data {

/// Configuration of the synthetic e-commerce clickstream generator.
///
/// The generator plants exactly the structures the paper's argument relies
/// on, so that the relative behaviour of the methods (Table II's ordering,
/// Fig. 1's drift, Fig. 4's similarity gap) is reproducible without the
/// original proprietary/offline-unavailable corpora:
///
///  * Latent user segments ("clusters") with segment-local item popularity:
///    the beer-and-diapers effect — pairs that co-occur inside a segment
///    but not globally — which is the signal the user-based component
///    exploits (paper Sec. I).
///  * Within-segment successor chains: item transitions that sequential
///    models (SASRec) can learn but bag-of-items models (FISM) cannot.
///  * A global popularity head shared by all users (Pop/ItemKNN signal).
///  * Day-resolution timestamps with interest drift: users swap secondary
///    segments over time, producing the "~half of today's categories are
///    new" distribution of Fig. 1.
struct SyntheticConfig {
  std::string name = "synthetic";
  size_t num_users = 1000;
  size_t num_items = 800;
  size_t num_clusters = 40;
  /// Clusters per category; categories = ceil(clusters / this).
  size_t clusters_per_category = 4;

  /// Probability an action comes from the user's primary segment (vs a
  /// secondary interest).
  double primary_affinity = 0.65;
  size_t num_secondary_interests = 2;

  /// Zipf exponent of within-cluster item popularity.
  double popularity_exponent = 1.0;
  /// Fraction of items forming the globally popular head, and the
  /// probability any action draws from it.
  double global_popular_fraction = 0.05;
  double global_popular_prob = 0.12;

  /// Probability the next action continues the successor chain of the
  /// previous item (sequential signal).
  double sequential_strength = 0.45;

  /// Per-user action count: min + floor((max-min) * u^length_shape);
  /// larger shape => more short users (Amazon-like).
  size_t min_actions = 6;
  size_t max_actions = 120;
  double length_shape = 1.0;

  /// Time span in days and per-day probability that one secondary
  /// interest is replaced by a fresh cluster.
  size_t days = 30;
  double interest_drift = 0.25;

  uint64_t seed = 7;
};

/// Generates clickstreams from a SyntheticConfig and exposes the ground
/// truth (item clusters, user segments) for tests and analyses.
class SyntheticGenerator {
 public:
  explicit SyntheticGenerator(SyntheticConfig config);

  /// Produces the corpus. Deterministic for a fixed config (seed included).
  StatusOr<Dataset> Generate();

  /// Ground truth available after Generate(). All vectors are indexed by
  /// *original* (pre-compaction) ids; map through
  /// Dataset::original_item_ids()/original_user_ids() when needed.
  const std::vector<int>& item_cluster() const { return item_cluster_; }
  const std::vector<int>& user_primary_cluster() const {
    return user_primary_;
  }
  /// Within-cluster successor chain: successor()[i] is the item that
  /// follows item i in the planted sequential pattern.
  const std::vector<int>& successor() const { return successor_; }
  /// Items forming the globally popular head.
  const std::vector<int>& global_head() const { return global_head_; }
  const SyntheticConfig& config() const { return config_; }

 private:
  int SampleClusterItem(int cluster, Rng& rng) const;

  SyntheticConfig config_;
  std::vector<int> item_cluster_;
  std::vector<std::vector<int>> cluster_items_;
  std::vector<std::vector<double>> cluster_cumweights_;
  std::vector<int> successor_;      // within-cluster successor chain
  std::vector<int> global_head_;    // globally popular items
  std::vector<double> global_cumweights_;
  std::vector<int> user_primary_;
};

/// Preset configurations in the regimes of the paper's Table I datasets,
/// scaled to CPU training budgets. `scale` multiplies user counts (1.0 =
/// defaults used by the benchmark suite).
SyntheticConfig SynMl1mConfig(double scale = 1.0);
SyntheticConfig SynMl20mConfig(double scale = 1.0);
SyntheticConfig SynGamesConfig(double scale = 1.0);
SyntheticConfig SynBeautyConfig(double scale = 1.0);

}  // namespace sccf::data

#endif  // SCCF_DATA_SYNTHETIC_H_
