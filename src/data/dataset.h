#ifndef SCCF_DATA_DATASET_H_
#define SCCF_DATA_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace sccf::data {

/// One implicit-feedback event (click/purchase/rating-converted-to-1).
struct Interaction {
  int user = 0;
  int item = 0;
  int64_t timestamp = 0;
};

/// Summary statistics matching the columns of the paper's Table I.
struct DatasetStats {
  size_t num_users = 0;
  size_t num_items = 0;
  size_t num_actions = 0;
  double avg_length = 0.0;
  double density = 0.0;  // actions / (users * items)
};

/// Immutable interaction corpus with contiguous ids and per-user
/// chronological sequences — the S_u of the paper (Sec. III-A). Optionally
/// carries per-item category labels (used by the Fig.-1 interest-drift
/// analysis) and per-event timestamps.
class Dataset {
 public:
  /// Builds from raw interactions: sorts each user's events by timestamp
  /// (stable, so equal timestamps keep input order) and compacts user/item
  /// ids to [0, n) / [0, m). Duplicate (user, item) events are kept; models
  /// that need sets de-duplicate via UserItemSet.
  static StatusOr<Dataset> FromInteractions(
      std::string name, std::vector<Interaction> interactions);

  const std::string& name() const { return name_; }
  size_t num_users() const { return sequences_.size(); }
  size_t num_items() const { return num_items_; }
  size_t num_actions() const { return num_actions_; }

  /// Items user `u` interacted with, oldest first.
  const std::vector<int>& sequence(size_t u) const { return sequences_[u]; }
  /// Timestamps aligned with sequence(u).
  const std::vector<int64_t>& timestamps(size_t u) const {
    return timestamps_[u];
  }

  /// Sorted unique items of user `u` (the R+_u set).
  const std::vector<int>& user_item_set(size_t u) const {
    return item_sets_[u];
  }
  /// Membership test in R+_u via binary search.
  bool UserHasItem(size_t u, int item) const;

  /// Number of interactions that mention each item (popularity).
  const std::vector<size_t>& item_counts() const { return item_counts_; }

  /// Per-item category labels; empty when the corpus has none.
  const std::vector<int>& item_categories() const { return item_categories_; }
  void set_item_categories(std::vector<int> categories);
  size_t num_categories() const { return num_categories_; }

  DatasetStats Stats() const;

  /// Original (pre-compaction) user ids, index = compact id.
  const std::vector<int>& original_user_ids() const {
    return original_user_ids_;
  }
  const std::vector<int>& original_item_ids() const {
    return original_item_ids_;
  }

 private:
  Dataset() = default;

  std::string name_;
  size_t num_items_ = 0;
  size_t num_actions_ = 0;
  std::vector<std::vector<int>> sequences_;
  std::vector<std::vector<int64_t>> timestamps_;
  std::vector<std::vector<int>> item_sets_;
  std::vector<size_t> item_counts_;
  std::vector<int> item_categories_;
  size_t num_categories_ = 0;
  std::vector<int> original_user_ids_;
  std::vector<int> original_item_ids_;
};

/// Removes low-activity users/items. `mode` kPaper reproduces Sec. IV-A1:
/// drop items with < k actions, then drop users with < k actions, then drop
/// users with < k actions once more after the item filter shrank histories.
/// kFixpoint iterates both filters until nothing changes (strict k-core).
enum class CoreFilterMode { kPaper, kFixpoint };
std::vector<Interaction> KCoreFilter(std::vector<Interaction> interactions,
                                     size_t k, CoreFilterMode mode);

}  // namespace sccf::data

#endif  // SCCF_DATA_DATASET_H_
