#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "simd/kernels.h"

namespace sccf {

namespace {
size_t NumElements(const std::vector<size_t>& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<size_t> shape) : shape_(std::move(shape)) {
  SCCF_CHECK_LE(shape_.size(), 2u);
  data_.assign(NumElements(shape_), 0.0f);
}

Tensor Tensor::Scalar(float v) {
  Tensor t;
  t.data_[0] = v;
  return t;
}

Tensor Tensor::Zeros(std::vector<size_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Full(std::vector<size_t> shape, float v) {
  Tensor t(std::move(shape));
  t.Fill(v);
  return t;
}

Tensor Tensor::TruncatedNormal(std::vector<size_t> shape, float stddev,
                               Rng& rng) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = rng.TruncatedNormal(0.0f, stddev);
  }
  return t;
}

Tensor Tensor::FromVector(const std::vector<float>& v) {
  Tensor t({v.size()});
  std::copy(v.begin(), v.end(), t.data());
  return t;
}

Tensor Tensor::FromMatrix(size_t rows, size_t cols,
                          const std::vector<float>& v) {
  SCCF_CHECK_EQ(rows * cols, v.size());
  Tensor t({rows, cols});
  std::copy(v.begin(), v.end(), t.data());
  return t;
}

size_t Tensor::rows() const {
  if (rank() == 2) return shape_[0];
  if (rank() == 1) return 1;
  return 1;
}

size_t Tensor::cols() const {
  if (rank() == 2) return shape_[1];
  if (rank() == 1) return shape_[0];
  return 1;
}

void Tensor::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::Reshape(std::vector<size_t> shape) {
  SCCF_CHECK_LE(shape.size(), 2u);
  SCCF_CHECK_EQ(NumElements(shape), data_.size());
  shape_ = std::move(shape);
}

double Tensor::SquaredL2Norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

std::string Tensor::ShapeString() const {
  std::string s = "f32[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(shape_[i]);
  }
  s += "]";
  return s;
}

bool Tensor::AllClose(const Tensor& other, float atol) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > atol) return false;
  }
  return true;
}

namespace tensor_ops {

// The BLAS-1 primitives forward to the runtime-dispatched SIMD layer
// (src/simd/kernels.h); the scalar variant there is bit-identical to the
// loops that used to live here.

float Dot(const float* a, const float* b, size_t n) {
  return simd::Dot(a, b, n);
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  simd::Axpy(alpha, x, y, n);
}

float Norm(const float* a, size_t n) { return simd::Norm(a, n); }

float Cosine(const float* a, const float* b, size_t n) {
  return simd::Cosine(a, b, n);
}

void SoftmaxInPlace(float* x, size_t n) {
  if (n == 0) return;
  float mx = x[0];
  for (size_t i = 1; i < n; ++i) mx = std::max(mx, x[i]);
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - mx);
    sum += x[i];
  }
  const float inv = 1.0f / sum;
  for (size_t i = 0; i < n; ++i) x[i] *= inv;
}

void Gemv(const Tensor& a, const float* x, float* y) {
  SCCF_CHECK_EQ(a.rank(), 2u);
  const size_t m = a.rows();
  const size_t n = a.cols();
  for (size_t r = 0; r < m; ++r) {
    y[r] = Dot(a.data() + r * n, x, n);
  }
}

void Gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
          float alpha, float beta, Tensor* c) {
  SCCF_CHECK_EQ(a.rank(), 2u);
  SCCF_CHECK_EQ(b.rank(), 2u);
  SCCF_CHECK_EQ(c->rank(), 2u);
  const size_t m = trans_a ? a.cols() : a.rows();
  const size_t k = trans_a ? a.rows() : a.cols();
  const size_t kb = trans_b ? b.cols() : b.rows();
  const size_t n = trans_b ? b.rows() : b.cols();
  SCCF_CHECK_EQ(k, kb);
  SCCF_CHECK_EQ(c->rows(), m);
  SCCF_CHECK_EQ(c->cols(), n);

  if (beta == 0.0f) {
    c->Zero();
  } else if (beta != 1.0f) {
    float* cd = c->data();
    for (size_t i = 0; i < c->size(); ++i) cd[i] *= beta;
  }

  // i-k-j loop order keeps the inner loop streaming over contiguous rows of
  // B and C, which is the cache-friendly layout for row-major data.
  auto a_at = [&](size_t i, size_t kk) {
    return trans_a ? a.at(kk, i) : a.at(i, kk);
  };
  float* cd = c->data();
  if (!trans_b) {
    const float* bd = b.data();
    for (size_t i = 0; i < m; ++i) {
      float* crow = cd + i * n;
      for (size_t kk = 0; kk < k; ++kk) {
        const float av = alpha * a_at(i, kk);
        if (av == 0.0f) continue;
        Axpy(av, bd + kk * n, crow, n);
      }
    }
  } else {
    // B is n x k stored row-major; op(B) column j is row j of B, so use dot
    // products instead.
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (size_t kk = 0; kk < k; ++kk) {
          acc += a_at(i, kk) * b.at(j, kk);
        }
        cd[i * n + j] += alpha * acc;
      }
    }
  }
}

}  // namespace tensor_ops
}  // namespace sccf
