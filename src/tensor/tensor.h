#ifndef SCCF_TENSOR_TENSOR_H_
#define SCCF_TENSOR_TENSOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace sccf {

/// Dense row-major float32 tensor. Rank 0 (scalar), 1 (vector), or 2
/// (matrix) cover every model in this library; higher ranks are rejected.
///
/// Copyable (deep copy) and movable. Shape is immutable after construction
/// except through Reshape, which preserves the element count.
class Tensor {
 public:
  /// Rank-0 scalar initialised to 0.
  Tensor() : shape_() , data_(1, 0.0f) {}

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(std::vector<size_t> shape);

  /// Scalar tensor.
  static Tensor Scalar(float v);

  /// Zero / constant / random factories.
  static Tensor Zeros(std::vector<size_t> shape);
  static Tensor Full(std::vector<size_t> shape, float v);
  /// Entries ~ TruncatedNormal(0, stddev); the paper's initializer.
  static Tensor TruncatedNormal(std::vector<size_t> shape, float stddev,
                                Rng& rng);
  /// 1-D tensor from explicit values.
  static Tensor FromVector(const std::vector<float>& v);
  /// 2-D tensor from explicit row-major values. Pre: v.size() == r*c.
  static Tensor FromMatrix(size_t rows, size_t cols,
                           const std::vector<float>& v);

  size_t rank() const { return shape_.size(); }
  const std::vector<size_t>& shape() const { return shape_; }
  size_t size() const { return data_.size(); }

  /// Rows/cols of a matrix; a vector is treated as 1 x n for rows()/cols().
  size_t rows() const;
  size_t cols() const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Flat element access.
  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  /// 2-D element access. Pre: rank() == 2.
  float& at(size_t r, size_t c) {
    return data_[r * shape_[1] + c];
  }
  float at(size_t r, size_t c) const {
    return data_[r * shape_[1] + c];
  }

  /// Scalar value. Pre: size() == 1.
  float scalar() const {
    SCCF_CHECK_EQ(size(), 1u);
    return data_[0];
  }

  void Fill(float v);
  void Zero() { Fill(0.0f); }

  /// Changes the shape in place; the element count must be preserved.
  void Reshape(std::vector<size_t> shape);

  /// Sum of squares of all entries.
  double SquaredL2Norm() const;

  /// "f32[2, 3]"-style debug string.
  std::string ShapeString() const;

  /// True if shapes are identical and all entries differ by <= atol.
  bool AllClose(const Tensor& other, float atol = 1e-5f) const;

 private:
  std::vector<size_t> shape_;
  std::vector<float> data_;
};

namespace tensor_ops {

/// C = alpha * op(A) @ op(B) + beta * C, where op is optional transpose.
/// Shapes: op(A) is m x k, op(B) is k x n, C is m x n. Blocked kernel;
/// no external BLAS dependency.
void Gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
          float alpha, float beta, Tensor* c);

/// y = A @ x (A: m x n, x: n, y: m).
void Gemv(const Tensor& a, const float* x, float* y);

/// Dot product of two length-n float arrays. Forwards to the
/// runtime-dispatched SIMD kernels layer (simd/kernels.h), as do Axpy,
/// Norm, and Cosine below; batch-oriented callers should use
/// simd::DotBatch / simd::TopKDot directly.
float Dot(const float* a, const float* b, size_t n);

/// y += alpha * x for length-n arrays.
void Axpy(float alpha, const float* x, float* y, size_t n);

/// L2 norm of a length-n array.
float Norm(const float* a, size_t n);

/// Cosine similarity; returns 0 when either vector is all-zero.
float Cosine(const float* a, const float* b, size_t n);

/// In-place numerically stable softmax over a length-n array.
void SoftmaxInPlace(float* x, size_t n);

}  // namespace tensor_ops
}  // namespace sccf

#endif  // SCCF_TENSOR_TENSOR_H_
