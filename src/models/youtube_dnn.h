#ifndef SCCF_MODELS_YOUTUBE_DNN_H_
#define SCCF_MODELS_YOUTUBE_DNN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "models/recommender.h"
#include "nn/layers.h"
#include "nn/parameter.h"
#include "util/random.h"

namespace sccf::models {

/// A candidate-generation network in the style of Covington et al.'s
/// YouTube recommender — the "deep model" the paper deploys as its online
/// baseline (Sec. IV-F): the user's interacted-item embeddings are
/// mean-pooled and passed through a small MLP tower; the tower output is
/// the user representation, scored against item embeddings by dot
/// product. Trained with sampled-negative binary cross-entropy, batched
/// by user.
///
/// Inductive like FISM/SASRec, so it composes with SCCF as a base model.
class YouTubeDnn : public InductiveUiModel {
 public:
  struct Options {
    size_t dim = 64;
    /// Hidden widths of the tower (output width is always `dim`).
    std::vector<size_t> hidden = {64};
    size_t epochs = 15;
    size_t num_negatives = 4;
    size_t max_targets_per_user = 64;
    float learning_rate = 0.001f;
    uint64_t seed = 42;
    bool verbose = false;
  };

  YouTubeDnn() : YouTubeDnn(Options()) {}
  explicit YouTubeDnn(Options options) : options_(std::move(options)) {}

  std::string name() const override { return "YouTubeDNN"; }
  size_t embedding_dim() const override { return options_.dim; }
  size_t num_items() const override { return num_items_; }

  Status Fit(const data::LeaveOneOutSplit& split) override;

  /// Mean-pools the unique history embeddings and runs the tower.
  void InferUserEmbedding(std::span<const int> history,
                          float* out) const override;

  const float* ItemEmbedding(int item) const override;

  float last_epoch_loss() const { return last_epoch_loss_; }

  /// Trainable parameters, for checkpointing (nn::SaveParameters).
  /// Pre: Fit has been called.
  std::vector<nn::Parameter*> Parameters() {
    std::vector<nn::Parameter*> out = {item_emb_.get()};
    for (nn::Parameter* p : tower_->Parameters()) out.push_back(p);
    return out;
  }

 private:
  Options options_;
  size_t num_items_ = 0;
  std::unique_ptr<nn::Parameter> item_emb_;
  std::unique_ptr<nn::Mlp> tower_;
  float last_epoch_loss_ = 0.0f;
};

}  // namespace sccf::models

#endif  // SCCF_MODELS_YOUTUBE_DNN_H_
