#include "models/bpr_mf.h"

#include <algorithm>
#include <cmath>

#include "data/negative_sampler.h"

namespace sccf::models {

Status BprMf::Fit(const data::LeaveOneOutSplit& split) {
  const size_t n = split.num_users();
  num_items_ = split.dataset().num_items();
  const size_t d = options_.dim;
  Rng rng(options_.seed);
  user_factors_ = Tensor::TruncatedNormal({n, d}, 0.01f, rng);
  item_factors_ = Tensor::TruncatedNormal({num_items_, d}, 0.01f, rng);

  // Flattened (user, positive) pairs over training prefixes.
  std::vector<std::pair<int, int>> pairs;
  for (size_t u = 0; u < n; ++u) {
    for (int item : split.TrainSequence(u)) {
      pairs.push_back({static_cast<int>(u), item});
    }
  }
  if (pairs.empty()) return Status::FailedPrecondition("no training data");
  data::NegativeSampler sampler(split);

  const float lr = options_.learning_rate;
  const float reg = options_.l2;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(pairs);
    for (const auto& [u, pos] : pairs) {
      const int neg = sampler.Sample(u, rng);
      float* pu = user_factors_.data() + static_cast<size_t>(u) * d;
      float* qi = item_factors_.data() + static_cast<size_t>(pos) * d;
      float* qj = item_factors_.data() + static_cast<size_t>(neg) * d;
      const float x = tensor_ops::Dot(pu, qi, d) - tensor_ops::Dot(pu, qj, d);
      // d/dx of -ln sigmoid(x) is -sigmoid(-x).
      const float g = 1.0f / (1.0f + std::exp(x));
      for (size_t f = 0; f < d; ++f) {
        const float puf = pu[f];
        pu[f] += lr * (g * (qi[f] - qj[f]) - reg * puf);
        qi[f] += lr * (g * puf - reg * qi[f]);
        qj[f] += lr * (-g * puf - reg * qj[f]);
      }
    }
  }
  return Status::OK();
}

void BprMf::ScoreAll(size_t u, std::span<const int> /*history*/,
                     std::vector<float>* scores) const {
  const size_t d = options_.dim;
  scores->resize(num_items_);
  const float* pu = user_factors_.data() + u * d;
  for (size_t i = 0; i < num_items_; ++i) {
    (*scores)[i] = tensor_ops::Dot(pu, item_factors_.data() + i * d, d);
  }
}

}  // namespace sccf::models
