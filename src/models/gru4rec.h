#ifndef SCCF_MODELS_GRU4REC_H_
#define SCCF_MODELS_GRU4REC_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "models/recommender.h"
#include "nn/graph.h"
#include "nn/parameter.h"
#include "util/random.h"

namespace sccf::models {

/// GRU4Rec (Hidasi et al., "Session-based recommendations with recurrent
/// neural networks", cited by the paper's related work): a single-layer
/// GRU over the interaction sequence, with the final hidden state as the
/// user representation and homogeneous item embeddings for scoring.
/// Trained like SASRec here — next-item prediction at every position with
/// sampled-negative BCE — making it a third sequential, *inductive* base
/// for SCCF.
class Gru4Rec : public InductiveUiModel {
 public:
  struct Options {
    size_t dim = 64;
    size_t max_len = 50;
    size_t epochs = 12;
    size_t num_negatives = 1;
    float learning_rate = 0.001f;
    uint64_t seed = 42;
    bool verbose = false;
  };

  Gru4Rec() : Gru4Rec(Options()) {}
  explicit Gru4Rec(Options options) : options_(options) {}

  std::string name() const override { return "GRU4Rec"; }
  size_t embedding_dim() const override { return options_.dim; }
  size_t num_items() const override { return num_items_; }

  Status Fit(const data::LeaveOneOutSplit& split) override;

  /// Runs the GRU over the last max_len items; the final hidden state is
  /// the user embedding.
  void InferUserEmbedding(std::span<const int> history,
                          float* out) const override;

  const float* ItemEmbedding(int item) const override;

  float last_epoch_loss() const { return last_epoch_loss_; }

  /// Trainable parameters, for checkpointing (nn::SaveParameters).
  /// Pre: Fit has been called.
  std::vector<nn::Parameter*> Parameters() { return AllParameters(); }

 private:
  /// Unrolls the GRU over `input_ids`; returns the final hidden state
  /// ([1, dim]). The training loop in Fit unrolls inline instead so every
  /// position's state can feed the per-position loss.
  nn::Var Unroll(nn::Graph& g, const std::vector<int>& input_ids) const;

  std::vector<nn::Parameter*> AllParameters();

  Options options_;
  size_t num_items_ = 0;
  std::unique_ptr<nn::Parameter> item_emb_;
  // Fused gate weights: [z | r | n] stacked as separate parameters.
  std::unique_ptr<nn::Parameter> w_xz_, w_hz_, b_z_;
  std::unique_ptr<nn::Parameter> w_xr_, w_hr_, b_r_;
  std::unique_ptr<nn::Parameter> w_xn_, w_hn_, b_n_;
  float last_epoch_loss_ = 0.0f;
};

}  // namespace sccf::models

#endif  // SCCF_MODELS_GRU4REC_H_
