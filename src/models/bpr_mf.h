#ifndef SCCF_MODELS_BPR_MF_H_
#define SCCF_MODELS_BPR_MF_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "models/recommender.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace sccf::models {

/// Matrix factorisation trained with the pairwise Bayesian Personalized
/// Ranking loss (Rendle et al., UAI'09), the paper's BPR-MF baseline.
/// Transductive: a per-user-id embedding table is learned, so new
/// interactions require retraining — the limitation SCCF removes.
class BprMf : public Recommender {
 public:
  struct Options {
    size_t dim = 64;
    size_t epochs = 30;
    float learning_rate = 0.05f;
    float l2 = 0.01f;
    uint64_t seed = 42;
  };

  BprMf() : BprMf(Options()) {}
  explicit BprMf(Options options) : options_(options) {}

  std::string name() const override { return "BPR-MF"; }

  Status Fit(const data::LeaveOneOutSplit& split) override;

  void ScoreAll(size_t u, std::span<const int> history,
                std::vector<float>* scores) const override;

  const Tensor& user_factors() const { return user_factors_; }
  const Tensor& item_factors() const { return item_factors_; }

 private:
  Options options_;
  size_t num_items_ = 0;
  Tensor user_factors_;
  Tensor item_factors_;
};

}  // namespace sccf::models

#endif  // SCCF_MODELS_BPR_MF_H_
