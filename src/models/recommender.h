#ifndef SCCF_MODELS_RECOMMENDER_H_
#define SCCF_MODELS_RECOMMENDER_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "data/split.h"
#include "util/status.h"

namespace sccf::models {

/// A top-N candidate-generation model under the leave-one-out protocol.
///
/// `Fit` trains on the split's training prefixes. `ScoreAll` produces a
/// preference score for every item given a history; the evaluator passes
/// either the training prefix (validation scoring) or the prefix plus the
/// validation item (test scoring, the paper's "add validation back"
/// setting). Transductive baselines may ignore `history` and use the state
/// learned per user id during Fit.
class Recommender {
 public:
  virtual ~Recommender() = default;

  virtual std::string name() const = 0;

  virtual Status Fit(const data::LeaveOneOutSplit& split) = 0;

  /// Fills scores->at(i) with the preference of user `u` for item i.
  /// scores is resized to the item count.
  virtual void ScoreAll(size_t u, std::span<const int> history,
                        std::vector<float>* scores) const = 0;
};

/// An inductive user-item model (paper Sec. III-B): user representations
/// are *inferred* from behavior, never stored per user id, so a fresh
/// interaction updates the representation with one forward pass. This is
/// the property SCCF requires of its UI component.
class InductiveUiModel : public Recommender {
 public:
  virtual size_t embedding_dim() const = 0;

  /// Computes m_u from an arbitrary (chronological) history on the fly.
  /// `out` must hold embedding_dim() floats. This is the real-time path
  /// benchmarked as "inferring time" in Table III.
  virtual void InferUserEmbedding(std::span<const int> history,
                                  float* out) const = 0;

  /// Output embedding q_i of an item (homogeneous embeddings, Sec. III-B3).
  virtual const float* ItemEmbedding(int item) const = 0;

  /// Default UI scoring: r_ui = m_u . q_i for every item (Eq. 10).
  void ScoreAll(size_t u, std::span<const int> history,
                std::vector<float>* scores) const override;

  /// Fills out[i] = user_emb . q_i for all num_items() items. When the
  /// item embedding table is one contiguous row-major block (probed at
  /// runtime), the scan runs through the batched SIMD kernel; otherwise it
  /// falls back to per-item dispatched dots. `out` must hold num_items()
  /// floats.
  void ScoreItems(const float* user_emb, float* out) const;

  /// Number of items known to the model.
  virtual size_t num_items() const = 0;
};

}  // namespace sccf::models

#endif  // SCCF_MODELS_RECOMMENDER_H_
