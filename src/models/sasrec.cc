#include "models/sasrec.h"

#include <algorithm>
#include <cmath>

#include "data/negative_sampler.h"
#include "nn/graph.h"
#include "util/logging.h"

namespace sccf::models {

nn::Var SasRec::Encode(nn::Graph& g, const std::vector<int>& input_ids) const {
  const size_t len = input_ids.size();
  SCCF_CHECK_GT(len, 0u);
  SCCF_CHECK_LE(len, options_.max_len);

  nn::Var x = g.Gather(item_emb_.get(), input_ids);
  // Scale embeddings by sqrt(d) before adding position information, as in
  // the reference implementation.
  x = g.Scale(x, std::sqrt(static_cast<float>(options_.dim)));
  std::vector<int> positions(len);
  for (size_t i = 0; i < len; ++i) positions[i] = static_cast<int>(i);
  x = g.Add(x, g.Gather(pos_emb_.get(), positions));
  x = g.Dropout(x, options_.dropout);

  const Tensor mask = nn::CausalMask(len);
  for (const auto& block : blocks_) {
    x = block->Apply(g, x, mask);
  }
  return final_ln_->Apply(g, x);
}

std::vector<nn::Parameter*> SasRec::AllParameters() {
  std::vector<nn::Parameter*> params = {item_emb_.get(), pos_emb_.get()};
  for (auto& b : blocks_) {
    for (nn::Parameter* p : b->Parameters()) params.push_back(p);
  }
  for (nn::Parameter* p : final_ln_->Parameters()) params.push_back(p);
  return params;
}

Status SasRec::Fit(const data::LeaveOneOutSplit& split) {
  const size_t n = split.num_users();
  num_items_ = split.dataset().num_items();
  Rng rng(options_.seed);

  item_emb_ = std::make_unique<nn::Parameter>(
      "sasrec.item_emb",
      Tensor::TruncatedNormal({num_items_, options_.dim}, 0.01f, rng));
  item_emb_->row_sparse = true;
  pos_emb_ = std::make_unique<nn::Parameter>(
      "sasrec.pos_emb",
      Tensor::TruncatedNormal({options_.max_len, options_.dim}, 0.01f, rng));
  pos_emb_->row_sparse = true;
  blocks_.clear();
  for (size_t b = 0; b < options_.num_blocks; ++b) {
    blocks_.push_back(std::make_unique<nn::TransformerBlock>(
        "sasrec.block" + std::to_string(b), options_.dim, options_.num_heads,
        options_.dropout, rng));
  }
  final_ln_ = std::make_unique<nn::LayerNormParams>("sasrec.final_ln",
                                                    options_.dim);

  std::vector<nn::Parameter*> params = AllParameters();
  nn::AdamOptimizer::Options opt;
  opt.learning_rate = options_.learning_rate;
  nn::AdamOptimizer adam(opt);
  data::NegativeSampler sampler(split);

  std::vector<size_t> user_order(n);
  for (size_t u = 0; u < n; ++u) user_order[u] = u;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(user_order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t u : user_order) {
      std::span<const int> seq = split.TrainSequence(u);
      if (seq.size() < 2) continue;
      // Truncate to the last max_len + 1 events: inputs are seq[0..k-1],
      // targets the shifted-by-one suffix (Sec. III-B2).
      const size_t take = std::min(seq.size(), options_.max_len + 1);
      std::vector<int> window(seq.end() - take, seq.end());
      std::vector<int> inputs(window.begin(), window.end() - 1);
      std::vector<int> targets(window.begin() + 1, window.end());
      const size_t k = inputs.size();

      std::vector<int> negs = sampler.SampleMany(u, k * options_.num_negatives,
                                                 rng);

      nn::Graph g(/*training=*/true, &rng);
      nn::Var h = Encode(g, inputs);
      nn::Var pos_emb_rows = g.Gather(item_emb_.get(), targets);
      nn::Var logits_pos = g.RowsDot(h, pos_emb_rows);
      nn::Var loss_pos =
          g.BceWithLogits(logits_pos, Tensor::Full({k, 1}, 1.0f));

      // Each group of `num_negatives` negatives shares position t's state.
      nn::Var loss = loss_pos;
      if (options_.num_negatives == 1) {
        nn::Var neg_rows = g.Gather(item_emb_.get(), negs);
        nn::Var logits_neg = g.RowsDot(h, neg_rows);
        nn::Var loss_neg =
            g.BceWithLogits(logits_neg, Tensor::Zeros({k, 1}));
        loss = g.Add(g.Scale(loss_pos, 0.5f), g.Scale(loss_neg, 0.5f));
      } else {
        std::vector<nn::Var> neg_losses;
        for (size_t r = 0; r < options_.num_negatives; ++r) {
          std::vector<int> round(negs.begin() + r * k,
                                 negs.begin() + (r + 1) * k);
          nn::Var neg_rows = g.Gather(item_emb_.get(), round);
          nn::Var logits_neg = g.RowsDot(h, neg_rows);
          neg_losses.push_back(
              g.BceWithLogits(logits_neg, Tensor::Zeros({k, 1})));
        }
        const float wp = 1.0f / (1.0f + options_.num_negatives);
        loss = g.Scale(loss_pos, wp);
        for (nn::Var nl : neg_losses) loss = g.Add(loss, g.Scale(nl, wp));
      }

      g.Backward(loss);
      adam.Step(params);
      epoch_loss += g.value(loss).scalar();
      ++batches;
    }
    last_epoch_loss_ =
        batches == 0 ? 0.0f : static_cast<float>(epoch_loss / batches);
    if (options_.verbose) {
      SCCF_LOG_INFO << "SASRec epoch " << epoch + 1 << "/" << options_.epochs
                    << " loss=" << last_epoch_loss_;
    }
  }
  return Status::OK();
}

void SasRec::InferUserEmbedding(std::span<const int> history,
                                float* out) const {
  const size_t d = options_.dim;
  if (history.empty()) {
    std::fill(out, out + d, 0.0f);
    return;
  }
  const size_t take = std::min(history.size(), options_.max_len);
  std::vector<int> inputs(history.end() - take, history.end());
  nn::Graph g(/*training=*/false);
  nn::Var h = Encode(g, inputs);
  const Tensor& hv = g.value(h);
  const size_t last = hv.rows() - 1;
  std::copy(hv.data() + last * d, hv.data() + (last + 1) * d, out);
}

const float* SasRec::ItemEmbedding(int item) const {
  SCCF_CHECK(item_emb_ != nullptr) << "Fit must be called first";
  return item_emb_->value.data() + static_cast<size_t>(item) * options_.dim;
}

}  // namespace sccf::models
