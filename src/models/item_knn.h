#ifndef SCCF_MODELS_ITEM_KNN_H_
#define SCCF_MODELS_ITEM_KNN_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "models/recommender.h"

namespace sccf::models {

/// Memory-based item-item collaborative filtering (Sarwar et al., WWW'01),
/// the paper's ItemKNN baseline. Item similarity is the cosine of the
/// binary user-incidence vectors, precomputed once at Fit time — the
/// "stable item-item relations, pre-built offline" property the paper
/// describes (Sec. II-A). Scoring sums the similarities between a
/// candidate and every history item.
class ItemKnn : public Recommender {
 public:
  struct Options {
    /// Keep only the `top_k` most similar items per item (0 = keep all).
    size_t top_k = 0;
  };

  ItemKnn() : ItemKnn(Options()) {}
  explicit ItemKnn(Options options) : options_(options) {}

  std::string name() const override { return "ItemKNN"; }

  Status Fit(const data::LeaveOneOutSplit& split) override;

  void ScoreAll(size_t u, std::span<const int> history,
                std::vector<float>* scores) const override;

  /// sim(i, j) after Fit (0 when pruned by top_k).
  float Similarity(int i, int j) const;

 private:
  Options options_;
  size_t num_items_ = 0;
  // CSR-style top-k similarity lists (all pairs when top_k == 0).
  std::vector<std::vector<std::pair<int, float>>> neighbors_;
};

}  // namespace sccf::models

#endif  // SCCF_MODELS_ITEM_KNN_H_
