#include "models/gru4rec.h"

#include <algorithm>

#include "data/negative_sampler.h"
#include "nn/optimizer.h"
#include "util/logging.h"

namespace sccf::models {

namespace {
// ones - x, built from available primitives.
nn::Var OneMinus(nn::Graph& g, nn::Var x, size_t rows, size_t cols) {
  return g.Sub(g.Input(Tensor::Full({rows, cols}, 1.0f)), x);
}
}  // namespace

nn::Var Gru4Rec::Unroll(nn::Graph& g,
                        const std::vector<int>& input_ids) const {
  const size_t len = input_ids.size();
  const size_t d = options_.dim;
  SCCF_CHECK_GT(len, 0u);

  nn::Var x_all = g.Gather(item_emb_.get(), input_ids);  // [len, d]
  nn::Var wxz = g.Param(w_xz_.get()), whz = g.Param(w_hz_.get());
  nn::Var wxr = g.Param(w_xr_.get()), whr = g.Param(w_hr_.get());
  nn::Var wxn = g.Param(w_xn_.get()), whn = g.Param(w_hn_.get());
  nn::Var bz = g.Param(b_z_.get()), br = g.Param(b_r_.get()),
          bn = g.Param(b_n_.get());

  // Precompute the input-to-gate projections for all positions at once;
  // only the recurrent part needs the per-step loop.
  nn::Var xz_all = g.Add(g.MatMul(x_all, wxz), bz);
  nn::Var xr_all = g.Add(g.MatMul(x_all, wxr), br);
  nn::Var xn_all = g.Add(g.MatMul(x_all, wxn), bn);

  nn::Var h = g.Input(Tensor::Zeros({1, d}));
  for (size_t t = 0; t < len; ++t) {
    nn::Var xz = g.SliceRows(xz_all, t, t + 1);
    nn::Var xr = g.SliceRows(xr_all, t, t + 1);
    nn::Var xn = g.SliceRows(xn_all, t, t + 1);
    nn::Var z = g.Sigmoid(g.Add(xz, g.MatMul(h, whz)));
    nn::Var r = g.Sigmoid(g.Add(xr, g.MatMul(h, whr)));
    nn::Var n = g.Tanh(g.Add(xn, g.MatMul(g.Mul(r, h), whn)));
    // h' = (1 - z) * n + z * h
    h = g.Add(g.Mul(OneMinus(g, z, 1, d), n), g.Mul(z, h));
  }
  return h;
}

std::vector<nn::Parameter*> Gru4Rec::AllParameters() {
  return {item_emb_.get(), w_xz_.get(), w_hz_.get(), b_z_.get(),
          w_xr_.get(),     w_hr_.get(), b_r_.get(),  w_xn_.get(),
          w_hn_.get(),     b_n_.get()};
}

Status Gru4Rec::Fit(const data::LeaveOneOutSplit& split) {
  const size_t n = split.num_users();
  const size_t d = options_.dim;
  num_items_ = split.dataset().num_items();
  Rng rng(options_.seed);
  item_emb_ = std::make_unique<nn::Parameter>(
      "gru.item_emb",
      Tensor::TruncatedNormal({num_items_, d}, 0.01f, rng));
  item_emb_->row_sparse = true;
  auto make = [&](const char* name, size_t r, size_t c, float stddev) {
    return std::make_unique<nn::Parameter>(
        name, Tensor::TruncatedNormal({r, c}, stddev, rng));
  };
  w_xz_ = make("gru.Wxz", d, d, 0.08f);
  w_hz_ = make("gru.Whz", d, d, 0.08f);
  b_z_ = std::make_unique<nn::Parameter>("gru.bz", Tensor::Zeros({1, d}));
  w_xr_ = make("gru.Wxr", d, d, 0.08f);
  w_hr_ = make("gru.Whr", d, d, 0.08f);
  b_r_ = std::make_unique<nn::Parameter>("gru.br", Tensor::Zeros({1, d}));
  w_xn_ = make("gru.Wxn", d, d, 0.08f);
  w_hn_ = make("gru.Whn", d, d, 0.08f);
  b_n_ = std::make_unique<nn::Parameter>("gru.bn", Tensor::Zeros({1, d}));

  std::vector<nn::Parameter*> params = AllParameters();
  nn::AdamOptimizer adam({.learning_rate = options_.learning_rate});
  data::NegativeSampler sampler(split);

  std::vector<size_t> user_order(n);
  for (size_t u = 0; u < n; ++u) user_order[u] = u;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(user_order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t u : user_order) {
      std::span<const int> seq = split.TrainSequence(u);
      if (seq.size() < 2) continue;
      const size_t take = std::min(seq.size(), options_.max_len + 1);
      std::vector<int> window(seq.end() - take, seq.end());
      std::vector<int> inputs(window.begin(), window.end() - 1);
      std::vector<int> targets(window.begin() + 1, window.end());
      const size_t k = inputs.size();
      std::vector<int> negs =
          sampler.SampleMany(u, k * options_.num_negatives, rng);

      // Unroll inline so every position's state feeds the loss.
      nn::Graph g(/*training=*/true, &rng);
      nn::Var x_all = g.Gather(item_emb_.get(), inputs);
      nn::Var wxz = g.Param(w_xz_.get()), whz = g.Param(w_hz_.get());
      nn::Var wxr = g.Param(w_xr_.get()), whr = g.Param(w_hr_.get());
      nn::Var wxn = g.Param(w_xn_.get()), whn = g.Param(w_hn_.get());
      nn::Var xz_all = g.Add(g.MatMul(x_all, wxz), g.Param(b_z_.get()));
      nn::Var xr_all = g.Add(g.MatMul(x_all, wxr), g.Param(b_r_.get()));
      nn::Var xn_all = g.Add(g.MatMul(x_all, wxn), g.Param(b_n_.get()));

      nn::Var h = g.Input(Tensor::Zeros({1, d}));
      nn::Var pos_rows = g.Gather(item_emb_.get(), targets);
      nn::Var neg_rows = g.Gather(item_emb_.get(), negs);
      std::vector<nn::Var> pos_logits, neg_logits;
      for (size_t t = 0; t < k; ++t) {
        nn::Var z = g.Sigmoid(
            g.Add(g.SliceRows(xz_all, t, t + 1), g.MatMul(h, whz)));
        nn::Var r = g.Sigmoid(
            g.Add(g.SliceRows(xr_all, t, t + 1), g.MatMul(h, whr)));
        nn::Var cand = g.Tanh(g.Add(g.SliceRows(xn_all, t, t + 1),
                                    g.MatMul(g.Mul(r, h), whn)));
        h = g.Add(g.Mul(OneMinus(g, z, 1, d), cand), g.Mul(z, h));
        pos_logits.push_back(
            g.RowsDot(h, g.SliceRows(pos_rows, t, t + 1)));
        neg_logits.push_back(
            g.RowsDot(h, g.SliceRows(neg_rows, t, t + 1)));
      }
      // Sum the per-position scalar losses.
      nn::Var loss = g.Input(Tensor::Scalar(0.0f));
      for (size_t t = 0; t < k; ++t) {
        nn::Var lp =
            g.BceWithLogits(pos_logits[t], Tensor::Full({1, 1}, 1.0f));
        nn::Var ln = g.BceWithLogits(neg_logits[t], Tensor::Zeros({1, 1}));
        loss = g.Add(loss, g.Add(lp, ln));
      }
      loss = g.Scale(loss, 1.0f / (2.0f * k));

      g.Backward(loss);
      adam.Step(params);
      epoch_loss += g.value(loss).scalar();
      ++batches;
    }
    last_epoch_loss_ =
        batches == 0 ? 0.0f : static_cast<float>(epoch_loss / batches);
    if (options_.verbose) {
      SCCF_LOG_INFO << "GRU4Rec epoch " << epoch + 1 << "/"
                    << options_.epochs << " loss=" << last_epoch_loss_;
    }
  }
  return Status::OK();
}

void Gru4Rec::InferUserEmbedding(std::span<const int> history,
                                 float* out) const {
  const size_t d = options_.dim;
  if (history.empty()) {
    std::fill(out, out + d, 0.0f);
    return;
  }
  const size_t take = std::min(history.size(), options_.max_len);
  std::vector<int> inputs(history.end() - take, history.end());
  nn::Graph g(/*training=*/false);
  nn::Var h = Unroll(g, inputs);
  const Tensor& hv = g.value(h);
  std::copy(hv.data(), hv.data() + d, out);
}

const float* Gru4Rec::ItemEmbedding(int item) const {
  SCCF_CHECK(item_emb_ != nullptr) << "Fit must be called first";
  return item_emb_->value.data() + static_cast<size_t>(item) * options_.dim;
}

}  // namespace sccf::models
