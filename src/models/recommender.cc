#include "models/recommender.h"

#include "tensor/tensor.h"

namespace sccf::models {

void InductiveUiModel::ScoreAll(size_t /*u*/, std::span<const int> history,
                                std::vector<float>* scores) const {
  const size_t d = embedding_dim();
  const size_t m = num_items();
  std::vector<float> mu(d, 0.0f);
  InferUserEmbedding(history, mu.data());
  scores->resize(m);
  for (size_t i = 0; i < m; ++i) {
    (*scores)[i] =
        tensor_ops::Dot(mu.data(), ItemEmbedding(static_cast<int>(i)), d);
  }
}

}  // namespace sccf::models
