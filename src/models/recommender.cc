#include "models/recommender.h"

#include "simd/kernels.h"

namespace sccf::models {

void InductiveUiModel::ScoreAll(size_t /*u*/, std::span<const int> history,
                                std::vector<float>* scores) const {
  const size_t d = embedding_dim();
  std::vector<float> mu(d, 0.0f);
  InferUserEmbedding(history, mu.data());
  scores->resize(num_items());
  ScoreItems(mu.data(), scores->data());
}

void InductiveUiModel::ScoreItems(const float* user_emb, float* out) const {
  const size_t d = embedding_dim();
  const size_t m = num_items();
  if (m == 0) return;
  // Most models store item embeddings as one row-major tensor, but the
  // interface only promises per-item pointers — probe before batching.
  // The probe is m pointer compares against m length-d dot products.
  const float* base = ItemEmbedding(0);
  bool contiguous = true;
  for (size_t i = 1; i < m; ++i) {
    if (ItemEmbedding(static_cast<int>(i)) != base + i * d) {
      contiguous = false;
      break;
    }
  }
  if (contiguous) {
    simd::DotBatch(user_emb, base, m, d, out);
    return;
  }
  for (size_t i = 0; i < m; ++i) {
    out[i] = simd::Dot(user_emb, ItemEmbedding(static_cast<int>(i)), d);
  }
}

}  // namespace sccf::models
