#include "models/pop.h"

namespace sccf::models {

Status PopRecommender::Fit(const data::LeaveOneOutSplit& split) {
  popularity_.assign(split.dataset().num_items(), 0.0f);
  for (size_t u = 0; u < split.num_users(); ++u) {
    for (int item : split.TrainSequence(u)) {
      popularity_[item] += 1.0f;
    }
  }
  return Status::OK();
}

void PopRecommender::ScoreAll(size_t /*u*/, std::span<const int> /*history*/,
                              std::vector<float>* scores) const {
  *scores = popularity_;
}

}  // namespace sccf::models
