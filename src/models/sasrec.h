#ifndef SCCF_MODELS_SASREC_H_
#define SCCF_MODELS_SASREC_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "models/recommender.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/parameter.h"
#include "nn/transformer.h"
#include "util/random.h"

namespace sccf::models {

/// SASRec (Kang & McAuley, ICDM'18), the paper's deep sequential UI
/// component (Sec. III-B, Fig. 3): learnable position embeddings (Eq. 2),
/// stacked causal Transformer encoder blocks (Eq. 4-7), and the last
/// position's output as the user representation (Eq. 8). Trained by
/// next-item prediction with one sampled negative per position and binary
/// cross-entropy (Sec. III-B2).
class SasRec : public InductiveUiModel {
 public:
  struct Options {
    size_t dim = 64;
    /// Maximum sequence length L (Eq. 3 truncation).
    size_t max_len = 50;
    size_t num_blocks = 2;
    size_t num_heads = 1;
    float dropout = 0.2f;
    size_t epochs = 20;
    size_t num_negatives = 1;
    float learning_rate = 0.001f;
    uint64_t seed = 42;
    bool verbose = false;
  };

  SasRec() : SasRec(Options()) {}
  explicit SasRec(Options options) : options_(options) {}

  std::string name() const override { return "SASRec"; }
  size_t embedding_dim() const override { return options_.dim; }
  size_t num_items() const override { return num_items_; }

  Status Fit(const data::LeaveOneOutSplit& split) override;

  /// Runs the encoder over the last L history items and returns the final
  /// position's hidden state (Eq. 8). Safe to call concurrently once Fit
  /// has returned.
  void InferUserEmbedding(std::span<const int> history,
                          float* out) const override;

  const float* ItemEmbedding(int item) const override;

  float last_epoch_loss() const { return last_epoch_loss_; }

  /// Trainable parameters, for checkpointing (nn::SaveParameters).
  /// Pre: Fit has been called.
  std::vector<nn::Parameter*> Parameters() { return AllParameters(); }

 private:
  /// Builds the encoder over `input_ids` inside `g`; returns [len, dim].
  nn::Var Encode(nn::Graph& g, const std::vector<int>& input_ids) const;

  std::vector<nn::Parameter*> AllParameters();

  Options options_;
  size_t num_items_ = 0;
  std::unique_ptr<nn::Parameter> item_emb_;
  std::unique_ptr<nn::Parameter> pos_emb_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> blocks_;
  std::unique_ptr<nn::LayerNormParams> final_ln_;
  float last_epoch_loss_ = 0.0f;
};

}  // namespace sccf::models

#endif  // SCCF_MODELS_SASREC_H_
