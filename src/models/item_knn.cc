#include "models/item_knn.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace sccf::models {

Status ItemKnn::Fit(const data::LeaveOneOutSplit& split) {
  num_items_ = split.dataset().num_items();
  // Co-occurrence counting over training item sets: for every user, every
  // unordered pair of distinct history items co-occurs once.
  std::vector<size_t> item_freq(num_items_, 0);
  std::vector<std::unordered_map<int, float>> co(num_items_);
  for (size_t u = 0; u < split.num_users(); ++u) {
    std::span<const int> seq = split.TrainSequence(u);
    std::vector<int> items(seq.begin(), seq.end());
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    for (int i : items) ++item_freq[i];
    for (size_t a = 0; a < items.size(); ++a) {
      for (size_t b = a + 1; b < items.size(); ++b) {
        co[items[a]][items[b]] += 1.0f;
      }
    }
  }

  neighbors_.assign(num_items_, {});
  for (size_t i = 0; i < num_items_; ++i) {
    for (const auto& [j, cnt] : co[i]) {
      const double denom = std::sqrt(static_cast<double>(item_freq[i]) *
                                     static_cast<double>(item_freq[j]));
      if (denom == 0.0) continue;
      const float sim = static_cast<float>(cnt / denom);
      neighbors_[i].push_back({j, sim});
      neighbors_[j].push_back({static_cast<int>(i), sim});
    }
  }
  for (auto& list : neighbors_) {
    std::sort(list.begin(), list.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (options_.top_k > 0 && list.size() > options_.top_k) {
      list.resize(options_.top_k);
    }
  }
  return Status::OK();
}

float ItemKnn::Similarity(int i, int j) const {
  for (const auto& [other, sim] : neighbors_[i]) {
    if (other == j) return sim;
  }
  return 0.0f;
}

void ItemKnn::ScoreAll(size_t /*u*/, std::span<const int> history,
                       std::vector<float>* scores) const {
  scores->assign(num_items_, 0.0f);
  for (int h : history) {
    for (const auto& [j, sim] : neighbors_[h]) {
      (*scores)[j] += sim;
    }
  }
}

}  // namespace sccf::models
