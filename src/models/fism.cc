#include "models/fism.h"

#include <algorithm>
#include <cmath>

#include "data/negative_sampler.h"
#include "nn/graph.h"
#include "util/logging.h"

namespace sccf::models {

Status Fism::Fit(const data::LeaveOneOutSplit& split) {
  const size_t n = split.num_users();
  num_items_ = split.dataset().num_items();
  Rng rng(options_.seed);
  item_emb_ = std::make_unique<nn::Parameter>(
      "fism.item_emb",
      Tensor::TruncatedNormal({num_items_, options_.dim}, 0.01f, rng));
  item_emb_->row_sparse = true;

  nn::AdamOptimizer::Options opt;
  opt.learning_rate = options_.learning_rate;
  opt.weight_decay = options_.l2;
  nn::AdamOptimizer adam(opt);
  data::NegativeSampler sampler(split);
  std::vector<nn::Parameter*> params = {item_emb_.get()};

  std::vector<size_t> user_order(n);
  for (size_t u = 0; u < n; ++u) user_order[u] = u;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(user_order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t u : user_order) {
      std::span<const int> seq = split.TrainSequence(u);
      std::vector<int> ids(seq.begin(), seq.end());
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      const size_t h = ids.size();
      if (h < 2) continue;

      // Subsample positives for very long histories.
      std::vector<int> targets = ids;
      if (options_.max_targets_per_user > 0 &&
          targets.size() > options_.max_targets_per_user) {
        rng.Shuffle(targets);
        targets.resize(options_.max_targets_per_user);
      }
      const size_t np = targets.size();
      const size_t nn_count = np * options_.num_negatives;
      std::vector<int> negs = sampler.SampleMany(u, nn_count, rng);

      nn::Graph g(/*training=*/true, &rng);
      nn::Var hist = g.Gather(item_emb_.get(), ids);
      nn::Var sum = g.SumRows(hist);  // S = sum_{j in R+} p_j

      // Positives exclude the target from the pool (FISM's no-self-
      // similarity): m_t = (S - p_t) / (h-1)^alpha.
      const float c_pos =
          1.0f / std::pow(static_cast<float>(h - 1), options_.alpha);
      nn::Var tgt = g.Gather(item_emb_.get(), targets);
      nn::Var m_pos = g.Scale(g.Sub(tgt, sum), -c_pos);  // c*(S - p_t)
      nn::Var logits_pos = g.RowsDot(m_pos, tgt);

      // Negatives score against the full pool: m_u = S / h^alpha.
      const float c_neg =
          1.0f / std::pow(static_cast<float>(h), options_.alpha);
      nn::Var m_full = g.Scale(sum, c_neg);
      nn::Var neg_emb = g.Gather(item_emb_.get(), negs);
      nn::Var logits_neg = g.MatMul(neg_emb, m_full, false, true);

      nn::Var loss_pos =
          g.BceWithLogits(logits_pos, Tensor::Full({np, 1}, 1.0f));
      nn::Var loss_neg =
          g.BceWithLogits(logits_neg, Tensor::Zeros({nn_count, 1}));
      const float wp = static_cast<float>(np) / (np + nn_count);
      nn::Var loss =
          g.Add(g.Scale(loss_pos, wp), g.Scale(loss_neg, 1.0f - wp));

      g.Backward(loss);
      adam.Step(params);
      epoch_loss += g.value(loss).scalar();
      ++batches;
    }
    last_epoch_loss_ =
        batches == 0 ? 0.0f : static_cast<float>(epoch_loss / batches);
    if (options_.verbose) {
      SCCF_LOG_INFO << "FISM epoch " << epoch + 1 << "/" << options_.epochs
                    << " loss=" << last_epoch_loss_;
    }
  }
  return Status::OK();
}

void Fism::InferUserEmbedding(std::span<const int> history,
                              float* out) const {
  const size_t d = options_.dim;
  std::fill(out, out + d, 0.0f);
  std::vector<int> ids(history.begin(), history.end());
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.empty()) return;
  for (int i : ids) {
    tensor_ops::Axpy(1.0f, ItemEmbedding(i), out, d);
  }
  const float c =
      1.0f / std::pow(static_cast<float>(ids.size()), options_.alpha);
  for (size_t f = 0; f < d; ++f) out[f] *= c;
}

const float* Fism::ItemEmbedding(int item) const {
  SCCF_CHECK(item_emb_ != nullptr) << "Fit must be called first";
  return item_emb_->value.data() + static_cast<size_t>(item) * options_.dim;
}

}  // namespace sccf::models
