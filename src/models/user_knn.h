#ifndef SCCF_MODELS_USER_KNN_H_
#define SCCF_MODELS_USER_KNN_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "index/vector_index.h"
#include "models/recommender.h"

namespace sccf::models {

/// Memory-based user-user collaborative filtering, the paper's UserKNN
/// baseline (Sec. IV-A3) and the transductive foil of Table III: every
/// query computes similarities against all users' high-dimensional
/// interaction sets (via inverted lists), so identify time grows with the
/// corpus, and any new interaction changes the similarity structure.
class UserKnn : public Recommender {
 public:
  /// How user-user similarities are computed at query time.
  ///
  ///  * kSparseIntersection — the classical transductive formulation the
  ///    paper benchmarks (Sec. III-C2 / Table III): intersect the query
  ///    set with every user's sorted item set; cost grows with the total
  ///    interaction volume.
  ///  * kInvertedIndex — the standard production optimisation: walk the
  ///    item -> users inverted lists of the query's items only. Much
  ///    faster on sparse data; included so Table III can show that even
  ///    the optimised transductive scan loses to the SCCF index at scale.
  enum class Strategy { kSparseIntersection, kInvertedIndex };

  struct Options {
    /// Neighborhood size beta (Sec. III-C).
    size_t num_neighbors = 100;
    /// Strategy used by ScoreAll (IdentifyNeighbors also takes an
    /// explicit override).
    Strategy strategy = Strategy::kInvertedIndex;
  };

  UserKnn() : UserKnn(Options()) {}
  explicit UserKnn(Options options) : options_(options) {}

  std::string name() const override { return "UserKNN"; }

  Status Fit(const data::LeaveOneOutSplit& split) override;

  /// Cosine neighbors of the interaction-set `history` among all fitted
  /// users. `exclude_user` (>=0) removes the querying user. Exposed so the
  /// real-time benchmark (Table III) can time exactly this step.
  std::vector<index::Neighbor> IdentifyNeighbors(
      std::span<const int> history, int exclude_user) const {
    return IdentifyNeighbors(history, exclude_user, options_.strategy);
  }
  std::vector<index::Neighbor> IdentifyNeighbors(std::span<const int> history,
                                                 int exclude_user,
                                                 Strategy strategy) const;

  void ScoreAll(size_t u, std::span<const int> history,
                std::vector<float>* scores) const override;

 private:
  Options options_;
  size_t num_items_ = 0;
  std::vector<std::vector<int>> user_sets_;     // sorted unique train items
  std::vector<std::vector<int>> item_to_users_;  // inverted lists
};

}  // namespace sccf::models

#endif  // SCCF_MODELS_USER_KNN_H_
