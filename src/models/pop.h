#ifndef SCCF_MODELS_POP_H_
#define SCCF_MODELS_POP_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "models/recommender.h"

namespace sccf::models {

/// Non-personalised popularity baseline: every user sees items ranked by
/// training-interaction count (paper Sec. IV-A3).
class PopRecommender : public Recommender {
 public:
  std::string name() const override { return "Pop"; }

  Status Fit(const data::LeaveOneOutSplit& split) override;

  void ScoreAll(size_t u, std::span<const int> history,
                std::vector<float>* scores) const override;

 private:
  std::vector<float> popularity_;
};

}  // namespace sccf::models

#endif  // SCCF_MODELS_POP_H_
