#include "models/youtube_dnn.h"

#include <algorithm>
#include <cmath>

#include "data/negative_sampler.h"
#include "nn/graph.h"
#include "nn/optimizer.h"
#include "util/logging.h"

namespace sccf::models {

Status YouTubeDnn::Fit(const data::LeaveOneOutSplit& split) {
  const size_t n = split.num_users();
  num_items_ = split.dataset().num_items();
  Rng rng(options_.seed);
  item_emb_ = std::make_unique<nn::Parameter>(
      "ytdnn.item_emb",
      Tensor::TruncatedNormal({num_items_, options_.dim}, 0.01f, rng));
  item_emb_->row_sparse = true;

  std::vector<size_t> dims;
  dims.push_back(options_.dim);
  for (size_t h : options_.hidden) dims.push_back(h);
  dims.push_back(options_.dim);
  tower_ = std::make_unique<nn::Mlp>("ytdnn.tower", dims, rng);

  std::vector<nn::Parameter*> params = {item_emb_.get()};
  for (nn::Parameter* p : tower_->Parameters()) params.push_back(p);
  nn::AdamOptimizer adam({.learning_rate = options_.learning_rate});
  data::NegativeSampler sampler(split);

  std::vector<size_t> user_order(n);
  for (size_t u = 0; u < n; ++u) user_order[u] = u;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(user_order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t u : user_order) {
      std::span<const int> seq = split.TrainSequence(u);
      std::vector<int> ids(seq.begin(), seq.end());
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      const size_t h = ids.size();
      if (h < 2) continue;

      std::vector<int> targets = ids;
      if (options_.max_targets_per_user > 0 &&
          targets.size() > options_.max_targets_per_user) {
        rng.Shuffle(targets);
        targets.resize(options_.max_targets_per_user);
      }
      const size_t np = targets.size();
      const size_t nneg = np * options_.num_negatives;
      std::vector<int> negs = sampler.SampleMany(u, nneg, rng);

      nn::Graph g(/*training=*/true, &rng);
      nn::Var hist = g.Gather(item_emb_.get(), ids);
      nn::Var sum = g.SumRows(hist);

      // Positives: leave the target out of its own pool, then the tower.
      const float c_pos = 1.0f / static_cast<float>(h - 1);
      nn::Var tgt = g.Gather(item_emb_.get(), targets);
      nn::Var pooled_pos = g.Scale(g.Sub(tgt, sum), -c_pos);
      nn::Var user_pos = tower_->Apply(g, pooled_pos);  // [np, dim]
      nn::Var logits_pos = g.RowsDot(user_pos, tgt);

      nn::Var pooled_full = g.Scale(sum, 1.0f / static_cast<float>(h));
      nn::Var user_full = tower_->Apply(g, pooled_full);  // [1, dim]
      nn::Var neg_emb = g.Gather(item_emb_.get(), negs);
      nn::Var logits_neg = g.MatMul(neg_emb, user_full, false, true);

      nn::Var loss_pos =
          g.BceWithLogits(logits_pos, Tensor::Full({np, 1}, 1.0f));
      nn::Var loss_neg =
          g.BceWithLogits(logits_neg, Tensor::Zeros({nneg, 1}));
      const float wp = static_cast<float>(np) / (np + nneg);
      nn::Var loss =
          g.Add(g.Scale(loss_pos, wp), g.Scale(loss_neg, 1.0f - wp));

      g.Backward(loss);
      adam.Step(params);
      epoch_loss += g.value(loss).scalar();
      ++batches;
    }
    last_epoch_loss_ =
        batches == 0 ? 0.0f : static_cast<float>(epoch_loss / batches);
    if (options_.verbose) {
      SCCF_LOG_INFO << "YouTubeDNN epoch " << epoch + 1 << "/"
                    << options_.epochs << " loss=" << last_epoch_loss_;
    }
  }
  return Status::OK();
}

void YouTubeDnn::InferUserEmbedding(std::span<const int> history,
                                    float* out) const {
  const size_t d = options_.dim;
  std::fill(out, out + d, 0.0f);
  std::vector<int> ids(history.begin(), history.end());
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.empty()) return;

  Tensor pooled({1, d});
  for (int i : ids) {
    tensor_ops::Axpy(1.0f, ItemEmbedding(i), pooled.data(), d);
  }
  const float c = 1.0f / static_cast<float>(ids.size());
  for (size_t f = 0; f < d; ++f) pooled[f] *= c;

  nn::Graph g(/*training=*/false);
  nn::Var user = tower_->Apply(g, g.Input(std::move(pooled)));
  const Tensor& v = g.value(user);
  std::copy(v.data(), v.data() + d, out);
}

const float* YouTubeDnn::ItemEmbedding(int item) const {
  SCCF_CHECK(item_emb_ != nullptr) << "Fit must be called first";
  return item_emb_->value.data() + static_cast<size_t>(item) * options_.dim;
}

}  // namespace sccf::models
