#include "models/user_knn.h"

#include <algorithm>
#include <cmath>

namespace sccf::models {

Status UserKnn::Fit(const data::LeaveOneOutSplit& split) {
  const size_t n = split.num_users();
  num_items_ = split.dataset().num_items();
  user_sets_.assign(n, {});
  item_to_users_.assign(num_items_, {});
  for (size_t u = 0; u < n; ++u) {
    std::span<const int> seq = split.TrainSequence(u);
    std::vector<int> items(seq.begin(), seq.end());
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    for (int i : items) item_to_users_[i].push_back(static_cast<int>(u));
    user_sets_[u] = std::move(items);
  }
  return Status::OK();
}

namespace {
// |a ∩ b| for sorted unique vectors.
size_t SortedIntersectionSize(const std::vector<int>& a,
                              const std::vector<int>& b) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}
}  // namespace

std::vector<index::Neighbor> UserKnn::IdentifyNeighbors(
    std::span<const int> history, int exclude_user,
    Strategy strategy) const {
  std::vector<int> unique(history.begin(), history.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  index::TopKAccumulator acc(options_.num_neighbors);
  const double qn = std::sqrt(static_cast<double>(unique.size()));

  if (strategy == Strategy::kSparseIntersection) {
    // The transductive scan of Eq. 13: touch every user's full item set.
    for (size_t v = 0; v < user_sets_.size(); ++v) {
      if (static_cast<int>(v) == exclude_user) continue;
      if (user_sets_[v].empty()) continue;
      const size_t overlap = SortedIntersectionSize(unique, user_sets_[v]);
      if (overlap == 0) continue;
      const double denom =
          qn * std::sqrt(static_cast<double>(user_sets_[v].size()));
      acc.Offer(static_cast<int>(v), static_cast<float>(overlap / denom));
    }
    return acc.Take();
  }

  // Inverted-index variant: accumulate overlaps via the query items' lists.
  std::vector<float> overlap(user_sets_.size(), 0.0f);
  for (int item : unique) {
    if (item < 0 || static_cast<size_t>(item) >= num_items_) continue;
    for (int v : item_to_users_[item]) overlap[v] += 1.0f;
  }
  for (size_t v = 0; v < user_sets_.size(); ++v) {
    if (static_cast<int>(v) == exclude_user || overlap[v] == 0.0f) continue;
    if (user_sets_[v].empty()) continue;
    const double denom =
        qn * std::sqrt(static_cast<double>(user_sets_[v].size()));
    acc.Offer(static_cast<int>(v),
              static_cast<float>(overlap[v] / denom));
  }
  return acc.Take();
}

void UserKnn::ScoreAll(size_t u, std::span<const int> history,
                       std::vector<float>* scores) const {
  scores->assign(num_items_, 0.0f);
  const std::vector<index::Neighbor> neighbors =
      IdentifyNeighbors(history, static_cast<int>(u));
  // Eq. 12: candidate score = sum of neighbor similarities over neighbors
  // that interacted with the item.
  for (const index::Neighbor& nb : neighbors) {
    for (int item : user_sets_[nb.id]) {
      (*scores)[item] += nb.score;
    }
  }
}

}  // namespace sccf::models
