#ifndef SCCF_MODELS_FISM_H_
#define SCCF_MODELS_FISM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "models/recommender.h"
#include "nn/optimizer.h"
#include "nn/parameter.h"
#include "util/random.h"

namespace sccf::models {

/// FISM (Kabbur et al., KDD'13) with the paper's adaptations (Sec. III-B):
/// homogeneous item embeddings (q_i = p_i), user representation pooled
/// from the interacted-item embeddings with alpha-normalisation (Eq. 1),
/// and binary cross-entropy training with negative sampling (Eq. 9),
/// batched by user following He et al. [39].
///
/// Being history-pooled, FISM is *inductive*: a new interaction updates
/// m_u by one embedding lookup and re-pool, which is what lets SCCF use it
/// in real time.
class Fism : public InductiveUiModel {
 public:
  struct Options {
    size_t dim = 64;
    /// Pooling exponent of Eq. 1 (0.5 in the paper's experiments).
    float alpha = 0.5f;
    size_t epochs = 15;
    /// Negatives sampled per positive instance.
    size_t num_negatives = 3;
    /// Cap on positives per user per epoch (0 = all); long-history users
    /// are subsampled to keep epochs balanced.
    size_t max_targets_per_user = 64;
    float learning_rate = 0.001f;
    /// L2 weight; the paper trains FISM without regularisation and relies
    /// on early stopping.
    float l2 = 0.0f;
    uint64_t seed = 42;
    bool verbose = false;
  };

  Fism() : Fism(Options()) {}
  explicit Fism(Options options) : options_(options) {}

  std::string name() const override { return "FISM"; }
  size_t embedding_dim() const override { return options_.dim; }
  size_t num_items() const override { return num_items_; }

  Status Fit(const data::LeaveOneOutSplit& split) override;

  /// Pools the (unique) history items per Eq. 1:
  /// m_u = |H|^-alpha * sum p_j.
  void InferUserEmbedding(std::span<const int> history,
                          float* out) const override;

  const float* ItemEmbedding(int item) const override;

  /// Mean training loss of the last epoch (diagnostics/tests).
  float last_epoch_loss() const { return last_epoch_loss_; }

  /// Trainable parameters, for checkpointing (nn::SaveParameters).
  /// Pre: Fit has been called.
  std::vector<nn::Parameter*> Parameters() { return {item_emb_.get()}; }

 private:
  Options options_;
  size_t num_items_ = 0;
  std::unique_ptr<nn::Parameter> item_emb_;
  float last_epoch_loss_ = 0.0f;
};

}  // namespace sccf::models

#endif  // SCCF_MODELS_FISM_H_
