#ifndef SCCF_ONLINE_AB_TEST_H_
#define SCCF_ONLINE_AB_TEST_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/candidates.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace sccf::online {

/// Configuration of the simulated online bucket test (paper Sec. IV-F):
/// users are split into two buckets that differ only in the candidate
/// generation step; a shared downstream ranker picks the shown slate; a
/// ground-truth behaviour model decides clicks and trades.
struct AbTestConfig {
  size_t days = 7;                 ///< the paper's one-week window
  size_t sessions_per_day = 1;     ///< serving opportunities per user/day
  size_t slate_size = 10;          ///< items shown per session
  size_t candidate_size = 100;     ///< paper restricts candidates to 500

  // Ground-truth click model weights.
  double base_click_prob = 0.05;
  double trade_given_click = 0.12;
  double primary_cluster_weight = 6.0;  ///< item in user's home segment
  double recent_cluster_weight = 4.0;   ///< item in a recently-active segment
  double popular_weight = 1.5;          ///< item in the global head
  double other_weight = 0.3;
  double successor_boost = 3.0;  ///< item continues the user's last chain

  uint64_t seed = 123;
};

/// A candidate generator under test: given a user and her *current*
/// serving-time history (which grows as she clicks), produce a ranked
/// candidate list.
using CandidateGenerator = std::function<core::CandidateList(
    int user, std::span<const int> history, size_t num_candidates)>;

/// The fixed downstream ranker shared by both buckets: reorders the
/// candidate list and returns the item ids to show.
using SlateRanker = std::function<std::vector<int>(
    int user, std::span<const int> history, const core::CandidateList&,
    size_t slate_size)>;

/// Aggregate outcome of the bucket test — the quantities behind Table V.
struct AbTestResult {
  size_t impressions_a = 0, impressions_b = 0;
  size_t clicks_a = 0, clicks_b = 0;
  size_t trades_a = 0, trades_b = 0;

  double ClickLift() const {
    return clicks_a == 0 ? 0.0
                         : (static_cast<double>(clicks_b) - clicks_a) /
                               clicks_a;
  }
  double TradeLift() const {
    return trades_a == 0 ? 0.0
                         : (static_cast<double>(trades_b) - trades_a) /
                               trades_a;
  }
};

/// Serving-loop simulator over a synthetic world. Each session: the
/// bucket's generator proposes candidates, the shared ranker picks the
/// slate, the ground-truth model (which knows the user's segments, recent
/// interests, and successor chains) draws clicks/trades, and clicked items
/// are appended to the user's live history — so a generator that adapts in
/// real time compounds its advantage, the paper's central claim.
class AbTestHarness {
 public:
  /// `world` must have generated the dataset used to fit the models and
  /// must outlive the harness.
  AbTestHarness(const data::Dataset& dataset,
                const data::SyntheticGenerator& world, AbTestConfig config);

  /// Runs both buckets. Users with even compact id -> bucket A (baseline
  /// generator), odd -> bucket B (treatment).
  AbTestResult Run(const CandidateGenerator& generator_a,
                   const CandidateGenerator& generator_b,
                   const SlateRanker& ranker);

  /// Ground-truth click probability (exposed for tests).
  double ClickProbability(int user, std::span<const int> history,
                          int item) const;

 private:
  const data::Dataset* dataset_;
  const data::SyntheticGenerator* world_;
  AbTestConfig config_;
  std::vector<int> item_cluster_compact_;  // cluster per compact item id
  std::vector<int> successor_compact_;     // successor per compact item id
  std::vector<char> is_popular_head_;
};

}  // namespace sccf::online

#endif  // SCCF_ONLINE_AB_TEST_H_
