#include "online/streaming_eval.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

#include "index/brute_force_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_flat_index.h"
#include "online/engine.h"
#include "util/logging.h"

namespace sccf::online {

namespace {

std::unique_ptr<index::VectorIndex> MakeIndex(core::IndexKind kind,
                                              size_t dim) {
  switch (kind) {
    case core::IndexKind::kBruteForce:
      return std::make_unique<index::BruteForceIndex>(
          dim, index::Metric::kCosine);
    case core::IndexKind::kIvfFlat:
      return std::make_unique<index::IvfFlatIndex>(
          dim, index::Metric::kCosine, index::IvfFlatIndex::Options{});
    case core::IndexKind::kHnsw:
      return std::make_unique<index::HnswIndex>(
          dim, index::Metric::kCosine, index::HnswIndex::Options{});
  }
  return nullptr;
}

// Rank of `target` among vote scores; history masked to 0 votes.
size_t RankByVotes(const std::vector<index::Neighbor>& neighbors,
                   const std::vector<std::vector<int>>& vote_items,
                   std::span<const int> history, int target,
                   size_t num_items) {
  std::vector<float> scores(num_items, 0.0f);
  for (const auto& nb : neighbors) {
    for (int item : vote_items[nb.id]) scores[item] += nb.score;
  }
  for (int item : history) scores[item] = 0.0f;
  const float t = scores[target];
  size_t better = 0;
  for (float s : scores) better += s > t;
  return better + 1;
}

// Live-regime variant: neighbors' current vote lists come from the
// serving engine's state instead of a local snapshot.
size_t RankByVotesLive(const std::vector<index::Neighbor>& neighbors,
                       const core::RealTimeService& service,
                       std::span<const int> history, int target,
                       size_t num_items) {
  std::vector<float> scores(num_items, 0.0f);
  for (const auto& nb : neighbors) {
    auto votes = service.VoteItems(nb.id);
    if (!votes.ok()) continue;  // neighbor with no votes contributes none
    for (int item : *votes) scores[item] += nb.score;
  }
  for (int item : history) scores[item] = 0.0f;
  const float t = scores[target];
  size_t better = 0;
  for (float s : scores) better += s > t;
  return better + 1;
}

}  // namespace

double StreamingEvalResult::LiveNdcgAt(size_t k) const {
  for (size_t i = 0; i < cutoffs.size(); ++i) {
    if (cutoffs[i] == k) return live_ndcg[i];
  }
  return 0.0;
}

double StreamingEvalResult::FrozenNdcgAt(size_t k) const {
  for (size_t i = 0; i < cutoffs.size(); ++i) {
    if (cutoffs[i] == k) return frozen_ndcg[i];
  }
  return 0.0;
}

double StreamingEvalResult::StaleQueryNdcgAt(size_t k) const {
  for (size_t i = 0; i < cutoffs.size(); ++i) {
    if (cutoffs[i] == k) return stale_query_ndcg[i];
  }
  return 0.0;
}

StatusOr<StreamingEvalResult> EvaluateStreamingUserBased(
    const models::InductiveUiModel& model, const data::Dataset& dataset,
    const StreamingEvalOptions& options) {
  if (model.num_items() == 0) {
    return Status::FailedPrecondition("model must be fitted");
  }
  if (options.tail_events == 0 || options.cutoffs.empty()) {
    return Status::InvalidArgument("tail_events and cutoffs required");
  }
  if (options.reveal_window == 0) {
    return Status::InvalidArgument("reveal_window must be >= 1");
  }
  const size_t n = dataset.num_users();
  const size_t d = model.embedding_dim();
  const size_t m = dataset.num_items();

  // Bootstrap snapshot: every user's sequence minus the replayed tail.
  auto prefix_len = [&](size_t u) -> size_t {
    const size_t len = dataset.sequence(u).size();
    return len >= 2 * options.tail_events ? len - options.tail_events : len;
  };
  auto infer_tail = [&](std::span<const int> history, float* out) {
    const size_t take = options.infer_window == 0
                            ? history.size()
                            : std::min(history.size(), options.infer_window);
    model.InferUserEmbedding(
        history.subspan(history.size() - take, take), out);
  };

  // The live regime IS the deployment loop, so it runs through the
  // serving Engine: one shard (bit-identical to a single index, same
  // insertion order), per-event batched ingest, and the write-buffered
  // index refresh when compaction_threshold > 1.
  Engine::Options live_opts;
  live_opts.beta = options.beta;
  live_opts.infer_window = options.infer_window;
  live_opts.vote_window = options.vote_window;
  live_opts.num_shards = 1;
  live_opts.index_kind = options.index_kind;
  live_opts.compaction_threshold = options.compaction_threshold;
  Engine engine(model, live_opts);
  {
    std::vector<Engine::UserState> states(n);
    for (size_t u = 0; u < n; ++u) {
      states[u].user = static_cast<int>(u);
      const auto& seq = dataset.sequence(u);
      states[u].history.assign(seq.begin(), seq.begin() + prefix_len(u));
    }
    SCCF_RETURN_NOT_OK(engine.Bootstrap(states));
  }

  // The frozen/stale baselines keep an explicit pre-stream snapshot —
  // they model systems that are *not* the deployment loop, so they stay
  // on a hand-managed index + vote copy.
  std::vector<std::vector<int>> vote_items(n);
  std::vector<float> bootstrap_emb(n * d, 0.0f);
  std::vector<int> populated;  // users with a non-empty prefix
  for (size_t u = 0; u < n; ++u) {
    const auto& seq = dataset.sequence(u);
    const size_t p = prefix_len(u);
    if (p == 0) continue;
    std::span<const int> prefix(seq.data(), p);
    infer_tail(prefix, bootstrap_emb.data() + u * d);
    populated.push_back(static_cast<int>(u));
    const size_t vt = options.vote_window == 0
                          ? p
                          : std::min(p, options.vote_window);
    std::vector<int> votes(prefix.end() - vt, prefix.end());
    std::sort(votes.begin(), votes.end());
    votes.erase(std::unique(votes.begin(), votes.end()), votes.end());
    vote_items[u] = std::move(votes);
  }
  std::unique_ptr<index::VectorIndex> frozen;
  if (options.index_kind == core::IndexKind::kIvfFlat) {
    // IVF needs a trained coarse quantizer before Add; clamp nlist to
    // the snapshot population like the serving shards do.
    index::IvfFlatIndex::Options ivf_opts;
    ivf_opts.nlist =
        std::min(ivf_opts.nlist, std::max<size_t>(1, populated.size()));
    auto ivf = std::make_unique<index::IvfFlatIndex>(
        d, index::Metric::kCosine, ivf_opts);
    std::vector<float> train_set;
    train_set.reserve(populated.size() * d);
    for (int u : populated) {
      train_set.insert(train_set.end(), bootstrap_emb.begin() + u * d,
                       bootstrap_emb.begin() + (u + 1) * d);
    }
    if (populated.empty()) {
      train_set.assign(d, 0.0f);  // one-centroid quantizer on the origin
      SCCF_RETURN_NOT_OK(ivf->Train(train_set, 1));
    } else {
      SCCF_RETURN_NOT_OK(ivf->Train(train_set, populated.size()));
    }
    frozen = std::move(ivf);
  } else {
    frozen = MakeIndex(options.index_kind, d);
  }
  for (int u : populated) {
    SCCF_RETURN_NOT_OK(frozen->Add(u, bootstrap_emb.data() + u * d));
  }

  StreamingEvalResult result;
  result.cutoffs = options.cutoffs;
  result.live_hr.assign(options.cutoffs.size(), 0.0);
  result.live_ndcg.assign(options.cutoffs.size(), 0.0);
  result.frozen_hr.assign(options.cutoffs.size(), 0.0);
  result.frozen_ndcg.assign(options.cutoffs.size(), 0.0);
  result.stale_query_hr.assign(options.cutoffs.size(), 0.0);
  result.stale_query_ndcg.assign(options.cutoffs.size(), 0.0);

  // Interleave every user's tail events in global timestamp order, so a
  // prediction for user u sees the *other* users' already-revealed events
  // in the live regime — neighborhood freshness is exactly what differs.
  struct TailEvent {
    int64_t ts;
    size_t user;
    size_t pos;  // index into the user's sequence
  };
  std::vector<TailEvent> events;
  for (size_t u = 0; u < n; ++u) {
    const auto& seq = dataset.sequence(u);
    if (seq.size() < 2 * options.tail_events) continue;
    for (size_t t = prefix_len(u); t < seq.size(); ++t) {
      events.push_back({dataset.timestamps(u)[t], u, t});
    }
  }
  std::stable_sort(
      events.begin(), events.end(),
      [](const TailEvent& a, const TailEvent& b) { return a.ts < b.ts; });

  // Windowed predict-then-reveal: every event in a window is predicted
  // against the engine state left by the previous window, then the whole
  // window is revealed in one batched Ingest (one shard-lock round, one
  // re-inference per touched user). reveal_window == 1 is exactly the
  // legacy event-at-a-time loop.
  std::vector<float> emb(d);
  const auto wall_start = std::chrono::steady_clock::now();
  for (size_t begin = 0; begin < events.size();
       begin += options.reveal_window) {
    const size_t end =
        std::min(events.size(), begin + options.reveal_window);

    for (size_t i = begin; i < end; ++i) {
      const TailEvent& e = events[i];
      const auto& seq = dataset.sequence(e.user);
      const int target = seq[e.pos];
      const std::span<const int> history(seq.data(), e.pos);

      // Predict under both regimes. The query embedding is always fresh
      // (the query side is inductive either way); what differs is the
      // staleness of the indexed corpus and of the neighbors' vote lists.
      // The live neighborhood comes straight from the Engine; with
      // reveal_window == 1 its stored history for e.user is exactly
      // `history` here (staged upserts are merged into the search).
      auto live_resp =
          engine.Neighbors({static_cast<int>(e.user), std::nullopt});
      SCCF_RETURN_NOT_OK(live_resp.status());
      infer_tail(history, emb.data());
      auto frozen_nbrs = frozen->Search(emb.data(), options.beta,
                                        static_cast<int>(e.user));
      SCCF_RETURN_NOT_OK(frozen_nbrs.status());
      auto stale_nbrs = frozen->Search(bootstrap_emb.data() + e.user * d,
                                       options.beta,
                                       static_cast<int>(e.user));
      SCCF_RETURN_NOT_OK(stale_nbrs.status());

      const size_t live_rank = RankByVotesLive(
          live_resp->neighbors, engine.service(), history, target, m);
      const size_t frozen_rank =
          RankByVotes(*frozen_nbrs, vote_items, history, target, m);
      const size_t stale_rank =
          RankByVotes(*stale_nbrs, vote_items, history, target, m);
      for (size_t c = 0; c < options.cutoffs.size(); ++c) {
        const size_t k = options.cutoffs[c];
        result.live_hr[c] += live_rank <= k ? 1.0 : 0.0;
        result.frozen_hr[c] += frozen_rank <= k ? 1.0 : 0.0;
        result.stale_query_hr[c] += stale_rank <= k ? 1.0 : 0.0;
        result.live_ndcg[c] +=
            live_rank <= k ? 1.0 / std::log2(live_rank + 1.0) : 0.0;
        result.frozen_ndcg[c] +=
            frozen_rank <= k ? 1.0 / std::log2(frozen_rank + 1.0) : 0.0;
        result.stale_query_ndcg[c] +=
            stale_rank <= k ? 1.0 / std::log2(stale_rank + 1.0) : 0.0;
      }
      ++result.num_predictions;
    }

    // Reveal: the live Engine absorbs the window's interactions
    // (history, vote list, embedding re-inference, buffered index
    // refresh); the frozen regime keeps serving the stale snapshot.
    // `identify` is off — the next prediction does its own search.
    if (options.batch_reveal_ingest) {
      Engine::IngestRequest reveal;
      reveal.identify = false;
      reveal.events.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        const TailEvent& e = events[i];
        reveal.events.push_back({static_cast<int>(e.user),
                                 dataset.sequence(e.user)[e.pos], e.ts});
      }
      SCCF_RETURN_NOT_OK(engine.Ingest(reveal).status());
    } else {
      for (size_t i = begin; i < end; ++i) {
        const TailEvent& e = events[i];
        Engine::IngestRequest reveal;
        reveal.identify = false;
        reveal.events.push_back({static_cast<int>(e.user),
                                 dataset.sequence(e.user)[e.pos], e.ts});
        SCCF_RETURN_NOT_OK(engine.Ingest(reveal).status());
      }
    }
  }
  result.eval_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  result.events_per_sec =
      result.eval_wall_ms > 0.0
          ? result.num_predictions / (result.eval_wall_ms / 1000.0)
          : 0.0;

  if (result.num_predictions > 0) {
    for (size_t c = 0; c < options.cutoffs.size(); ++c) {
      result.live_hr[c] /= result.num_predictions;
      result.live_ndcg[c] /= result.num_predictions;
      result.frozen_hr[c] /= result.num_predictions;
      result.frozen_ndcg[c] /= result.num_predictions;
      result.stale_query_hr[c] /= result.num_predictions;
      result.stale_query_ndcg[c] /= result.num_predictions;
    }
  }
  return result;
}

}  // namespace sccf::online
