#include "online/engine.h"

#include <chrono>
#include <span>
#include <string>
#include <utility>

#include "util/stopwatch.h"

namespace sccf::online {

Engine::Engine(const models::InductiveUiModel& model, Options options)
    : service_(model, options) {}

Engine::~Engine() { WaitForSave(); }

Status Engine::Bootstrap(const std::vector<UserState>& users) {
  SCCF_RETURN_NOT_OK(service_.Bootstrap(users));
  if (!service_.options().recover_dir.empty()) {
    SCCF_RETURN_NOT_OK(RecoverFromDir(service_.options().recover_dir,
                                      service_.options().journal_fsync));
  }
  return Status::OK();
}

Status Engine::BootstrapFromSplit(const data::LeaveOneOutSplit& split) {
  SCCF_RETURN_NOT_OK(service_.BootstrapFromSplit(split));
  if (!service_.options().recover_dir.empty()) {
    SCCF_RETURN_NOT_OK(RecoverFromDir(service_.options().recover_dir,
                                      service_.options().journal_fsync));
  }
  return Status::OK();
}

Status Engine::RecoverFromDir(const std::string& dir, bool journal_fsync) {
  // Recovery replays through the normal ingest path, which must not race
  // the background compaction sweep: drain timing is part of HNSW/IVF
  // index state, so the sweep stays parked until replay is done.
  const bool bg = service_.background_compaction_running();
  if (bg) service_.StopBackgroundCompaction();
  SCCF_ASSIGN_OR_RETURN(persistence_,
                        persist::PersistenceManager::Open(dir, journal_fsync));
  SCCF_RETURN_NOT_OK(persistence_->Recover(&service_));
  service_.set_ingest_sink(persistence_.get());
  if (bg) SCCF_RETURN_NOT_OK(service_.StartBackgroundCompaction());
  return Status::OK();
}

Status Engine::DoSave() {
  Stopwatch save_timer;
  const Status st = persistence_->Save(service_);
  // Duration is recorded win or lose — a failed save that took 40s is
  // exactly the kind of thing STATS should surface.
  last_save_duration_ms_.store(static_cast<int64_t>(save_timer.ElapsedMillis()),
                               std::memory_order_release);
  if (st.ok()) {
    last_save_unix_s_.store(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count(),
        std::memory_order_release);
  }
  return st;
}

Status Engine::Save() {
  if (persistence_ == nullptr) {
    return Status::FailedPrecondition(
        "persistence not configured (Options::recover_dir is empty)");
  }
  bool expected = false;
  if (!save_in_progress_.compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel)) {
    return Status::AlreadyExists("save already in progress");
  }
  // A finished BgSave thread may still be un-joined (its last act was
  // releasing the flag we just took); reap it so the slot is clean.
  {
    std::lock_guard<std::mutex> lock(save_mu_);
    if (bgsave_thread_.joinable()) bgsave_thread_.join();
  }
  const Status st = DoSave();
  save_in_progress_.store(false, std::memory_order_release);
  return st;
}

Status Engine::BgSave(std::function<void(const Status&)> on_done) {
  if (persistence_ == nullptr) {
    return Status::FailedPrecondition(
        "persistence not configured (Options::recover_dir is empty)");
  }
  bool expected = false;
  if (!save_in_progress_.compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel)) {
    return Status::AlreadyExists("save already in progress");
  }
  std::lock_guard<std::mutex> lock(save_mu_);
  if (bgsave_thread_.joinable()) bgsave_thread_.join();
  bgsave_thread_ = std::thread([this, cb = std::move(on_done)] {
    const Status st = DoSave();
    // Release the flag before the callback: a callback that re-enters
    // the save paths (e.g. an event loop that immediately schedules the
    // next save) must observe the slot as free.
    save_in_progress_.store(false, std::memory_order_release);
    if (cb) cb(st);
  });
  return Status::OK();
}

void Engine::WaitForSave() {
  std::lock_guard<std::mutex> lock(save_mu_);
  if (bgsave_thread_.joinable()) bgsave_thread_.join();
}

StatusOr<Engine::IngestResponse> Engine::Ingest(const IngestRequest& request) {
  Stopwatch wall;
  SCCF_ASSIGN_OR_RETURN(
      core::RealTimeService::BatchResult result,
      service_.OnInteractionBatch(
          std::span<const Event>(request.events.data(),
                                 request.events.size()),
          request.identify));

  IngestResponse response;
  response.num_events = request.events.size();
  // The counters come from the batch itself (observed under the locks
  // it held) — no extra all-shard sweeps on the serving hot path.
  response.users_touched = result.users_touched;
  response.cold_start_users = result.cold_start_users;
  response.pending_upserts = result.pending_upserts;
  for (const UpdateTiming& t : result.timings) {
    response.infer_ms += t.infer_ms;
    response.index_ms += t.index_ms;
    response.identify_ms += t.identify_ms;
  }
  response.timings = std::move(result.timings);
  response.wall_ms = wall.ElapsedMillis();
  return response;
}

StatusOr<Engine::RecommendResponse> Engine::Recommend(
    const RecommendRequest& request) const {
  if (request.user < 0) {
    return Status::InvalidArgument("user must be non-negative");
  }
  // <= 0, not == 0: the fields are signed so untrusted callers (the
  // network protocol layer) can hand us a parsed "-5" — it must be
  // rejected here, exactly as the error text has always promised, not
  // wrapped into a huge unsigned count downstream.
  if (request.n <= 0) {
    return Status::InvalidArgument("n must be positive");
  }
  // The upper bound is as much a part of the untrusted-input contract
  // as the sign: a huge-but-valid count must not reach the top-k
  // accumulator as a near-2^62 allocation.
  if (request.n > kMaxRequestLimit) {
    return Status::InvalidArgument("n must be at most " +
                                   std::to_string(kMaxRequestLimit));
  }
  if (request.opts.beta_override.has_value() &&
      *request.opts.beta_override <= 0) {
    return Status::InvalidArgument("beta_override must be positive");
  }
  if (request.opts.beta_override.has_value() &&
      *request.opts.beta_override > kMaxRequestLimit) {
    return Status::InvalidArgument("beta_override must be at most " +
                                   std::to_string(kMaxRequestLimit));
  }
  SCCF_ASSIGN_OR_RETURN(
      core::CandidateList candidates,
      service_.RecommendUserBased(
          request.user, static_cast<size_t>(request.n),
          static_cast<size_t>(request.opts.beta_override.value_or(0)),
          request.opts.exclude_seen));
  return RecommendResponse{std::move(candidates)};
}

StatusOr<Engine::NeighborsResponse> Engine::Neighbors(
    const NeighborsRequest& request) const {
  if (request.user < 0) {
    return Status::InvalidArgument("user must be non-negative");
  }
  if (request.beta_override.has_value() && *request.beta_override <= 0) {
    return Status::InvalidArgument("beta_override must be positive");
  }
  if (request.beta_override.has_value() &&
      *request.beta_override > kMaxRequestLimit) {
    return Status::InvalidArgument("beta_override must be at most " +
                                   std::to_string(kMaxRequestLimit));
  }
  SCCF_ASSIGN_OR_RETURN(
      std::vector<index::Neighbor> neighbors,
      service_.Neighbors(
          request.user,
          static_cast<size_t>(request.beta_override.value_or(0))));
  return NeighborsResponse{std::move(neighbors)};
}

StatusOr<Engine::HistoryResponse> Engine::History(
    const HistoryRequest& request) const {
  if (request.user < 0) {
    return Status::InvalidArgument("user must be non-negative");
  }
  SCCF_ASSIGN_OR_RETURN(std::vector<int> items,
                        service_.History(request.user));
  return HistoryResponse{std::move(items)};
}

Status Engine::Compact() { return service_.Compact(); }

}  // namespace sccf::online
