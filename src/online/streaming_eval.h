#ifndef SCCF_ONLINE_STREAMING_EVAL_H_
#define SCCF_ONLINE_STREAMING_EVAL_H_

#include <cstddef>
#include <vector>

#include "core/user_based.h"
#include "data/dataset.h"
#include "models/recommender.h"
#include "util/status.h"

namespace sccf::online {

/// Prequential ("predict, then reveal") evaluation of the user-based
/// component under streaming updates.
///
/// The paper argues (Fig. 1, Sec. III-C2) that user neighborhoods must be
/// refreshed per interaction because interests drift. Table III shows the
/// refresh is *cheap*; this harness shows it is *valuable*: each user's
/// last `tail_events` interactions are replayed one at a time, and before
/// each event the held-out item is ranked by the similarity-weighted
/// neighbor votes (Eq. 12) under two regimes —
///
///   * live:        the serving Engine absorbs every revealed event
///                  (batched ingest, write-buffered index refresh when
///                  compaction_threshold > 1) and the query embedding is
///                  re-inferred per event — the SCCF deployment mode,
///                  driven through the exact production path,
///   * frozen:      fresh query embedding, but the corpus keeps the stale
///                  pre-stream snapshot (a periodically-retrained system
///                  between retrains) — isolates corpus freshness,
///   * stale query: the stale corpus queried with the user's *pre-stream*
///                  embedding — what a transductive user-based model
///                  serves, since it cannot re-infer the user at all.
///                  Isolates query-side freshness, the Fig.-1 argument.
struct StreamingEvalOptions {
  /// Events replayed from the end of each user's sequence. Users shorter
  /// than 2 * tail_events are skipped.
  size_t tail_events = 5;
  std::vector<size_t> cutoffs = {20, 50};
  size_t beta = 100;
  size_t infer_window = 15;
  size_t vote_window = 15;
  core::IndexKind index_kind = core::IndexKind::kBruteForce;
  /// Engine write-buffer flush threshold for the live regime (see
  /// core::RealTimeService::Options::compaction_threshold). 1 writes
  /// every refresh through; > 1 exercises the buffered-upsert path,
  /// measuring the recall-vs-compaction-cadence trade-off for the ANN
  /// backends (queries merge the buffer, so brute force is exact at any
  /// threshold).
  size_t compaction_threshold = 1;

  /// Batched reveal: predict this many future events against one engine
  /// snapshot, then reveal them all in a single batched Ingest (one
  /// OnInteractionBatch, one shard-lock round, one re-inference per
  /// touched user) — Table V-style evaluation at batch speed on large
  /// logs. 1 reproduces the legacy event-at-a-time loop bit-identically.
  /// Larger windows trade intra-window neighborhood freshness (a user's
  /// second event in a window is predicted without their first having
  /// been absorbed) for throughput. Must be >= 1.
  size_t reveal_window = 1;

  /// Reference switch for equivalence testing: when false, the window's
  /// reveals are applied as reveal_window single-event Ingest calls (same
  /// prediction cadence, unbatched write path) instead of one batch.
  bool batch_reveal_ingest = true;
};

struct StreamingEvalResult {
  std::vector<size_t> cutoffs;
  std::vector<double> live_hr;
  std::vector<double> live_ndcg;
  std::vector<double> frozen_hr;
  std::vector<double> frozen_ndcg;
  std::vector<double> stale_query_hr;
  std::vector<double> stale_query_ndcg;
  size_t num_predictions = 0;

  /// Wall time of the predict/reveal loop and the resulting throughput
  /// (tail events per second) — the Table V-style speed axis.
  double eval_wall_ms = 0.0;
  double events_per_sec = 0.0;

  double LiveNdcgAt(size_t k) const;
  double FrozenNdcgAt(size_t k) const;
  double StaleQueryNdcgAt(size_t k) const;
};

/// Runs the prequential comparison, driving the live regime through the
/// serving Engine (online/engine.h). `model` must be fitted on the same
/// corpus. Deterministic.
StatusOr<StreamingEvalResult> EvaluateStreamingUserBased(
    const models::InductiveUiModel& model, const data::Dataset& dataset,
    const StreamingEvalOptions& options = {});

}  // namespace sccf::online

#endif  // SCCF_ONLINE_STREAMING_EVAL_H_
