#include "online/ab_test.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace sccf::online {

AbTestHarness::AbTestHarness(const data::Dataset& dataset,
                             const data::SyntheticGenerator& world,
                             AbTestConfig config)
    : dataset_(&dataset), world_(&world), config_(config) {
  // Re-index the world's ground truth by compact item id.
  const size_t m = dataset.num_items();
  item_cluster_compact_.resize(m);
  successor_compact_.assign(m, -1);
  is_popular_head_.assign(m, 0);

  std::unordered_map<int, int> original_to_compact;
  for (size_t i = 0; i < m; ++i) {
    original_to_compact[dataset.original_item_ids()[i]] = static_cast<int>(i);
  }
  for (size_t i = 0; i < m; ++i) {
    const int original = dataset.original_item_ids()[i];
    item_cluster_compact_[i] = world.item_cluster()[original];
    const int succ_original = world.successor()[original];
    auto it = original_to_compact.find(succ_original);
    if (it != original_to_compact.end()) successor_compact_[i] = it->second;
  }
  for (int original : world.global_head()) {
    auto it = original_to_compact.find(original);
    if (it != original_to_compact.end()) is_popular_head_[it->second] = 1;
  }
}

double AbTestHarness::ClickProbability(int user,
                                       std::span<const int> history,
                                       int item) const {
  const int original_user = dataset_->original_user_ids()[user];
  const int primary = world_->user_primary_cluster()[original_user];
  const int cluster = item_cluster_compact_[item];

  // Recently active segments: clusters of the last 15 events.
  const size_t take = std::min<size_t>(history.size(), 15);
  std::unordered_set<int> recent_clusters;
  for (size_t i = history.size() - take; i < history.size(); ++i) {
    recent_clusters.insert(item_cluster_compact_[history[i]]);
  }

  double weight = config_.other_weight;
  if (cluster == primary) {
    weight = config_.primary_cluster_weight;
  } else if (recent_clusters.count(cluster) > 0) {
    weight = config_.recent_cluster_weight;
  } else if (is_popular_head_[item]) {
    weight = config_.popular_weight;
  }
  if (!history.empty() && successor_compact_[history.back()] == item) {
    weight *= config_.successor_boost;
  }
  return std::min(0.9, config_.base_click_prob * weight);
}

AbTestResult AbTestHarness::Run(const CandidateGenerator& generator_a,
                                const CandidateGenerator& generator_b,
                                const SlateRanker& ranker) {
  Rng rng(config_.seed);
  AbTestResult result;

  // Live serving histories start from the full offline sequences and grow
  // with simulated clicks.
  const size_t n = dataset_->num_users();
  std::vector<std::vector<int>> live(n);
  for (size_t u = 0; u < n; ++u) {
    live[u] = dataset_->sequence(u);
  }

  for (size_t day = 0; day < config_.days; ++day) {
    for (size_t u = 0; u < n; ++u) {
      if (live[u].empty()) continue;
      const bool bucket_b = (u % 2) == 1;
      for (size_t s = 0; s < config_.sessions_per_day; ++s) {
        const auto& gen = bucket_b ? generator_b : generator_a;
        const core::CandidateList candidates = gen(
            static_cast<int>(u), live[u], config_.candidate_size);
        if (candidates.empty()) continue;
        const std::vector<int> slate = ranker(
            static_cast<int>(u), live[u], candidates, config_.slate_size);

        for (int item : slate) {
          if (bucket_b) {
            ++result.impressions_b;
          } else {
            ++result.impressions_a;
          }
          const double p =
              ClickProbability(static_cast<int>(u), live[u], item);
          if (!rng.Bernoulli(p)) continue;
          if (bucket_b) {
            ++result.clicks_b;
          } else {
            ++result.clicks_a;
          }
          live[u].push_back(item);  // real-time feedback loop
          if (rng.Bernoulli(config_.trade_given_click)) {
            if (bucket_b) {
              ++result.trades_b;
            } else {
              ++result.trades_a;
            }
          }
        }
      }
    }
  }
  return result;
}

}  // namespace sccf::online
