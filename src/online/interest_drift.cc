#include "online/interest_drift.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace sccf::online {

namespace {
constexpr int64_t kSecondsPerDay = 86400;
}  // namespace

std::vector<double> CategoryRecencyDistribution(const data::Dataset& dataset,
                                                size_t window_days) {
  SCCF_CHECK(!dataset.item_categories().empty())
      << "dataset has no category labels";
  const auto& categories = dataset.item_categories();

  std::vector<double> total(window_days + 1, 0.0);
  size_t contributing_users = 0;

  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const auto& seq = dataset.sequence(u);
    const auto& ts = dataset.timestamps(u);
    if (seq.empty()) continue;

    const int64_t today = ts.back() / kSecondsPerDay;

    // Earliest in-window click day per category before today.
    std::unordered_map<int, int64_t> first_day_in_window;
    std::unordered_set<int> today_categories;
    for (size_t i = 0; i < seq.size(); ++i) {
      const int64_t day = ts[i] / kSecondsPerDay;
      const int cat = categories[seq[i]];
      if (day == today) {
        today_categories.insert(cat);
      } else if (day < today &&
                 today - day <= static_cast<int64_t>(window_days)) {
        auto it = first_day_in_window.find(cat);
        if (it == first_day_in_window.end() || day < it->second) {
          first_day_in_window[cat] = day;
        }
      }
    }
    if (today_categories.empty()) continue;

    std::vector<double> user_hist(window_days + 1, 0.0);
    for (int cat : today_categories) {
      auto it = first_day_in_window.find(cat);
      if (it == first_day_in_window.end()) {
        user_hist[0] += 1.0;  // new category today
      } else {
        user_hist[today - it->second] += 1.0;
      }
    }
    const double norm = static_cast<double>(today_categories.size());
    for (size_t d = 0; d <= window_days; ++d) {
      total[d] += user_hist[d] / norm;
    }
    ++contributing_users;
  }

  if (contributing_users > 0) {
    for (double& v : total) v /= contributing_users;
  }
  return total;
}

}  // namespace sccf::online
