#ifndef SCCF_ONLINE_ENGINE_H_
#define SCCF_ONLINE_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/candidates.h"
#include "core/realtime.h"
#include "data/split.h"
#include "models/recommender.h"
#include "persist/recovery.h"
#include "util/status.h"

namespace sccf::online {

/// The unified serving facade of the SCCF deployment loop (paper
/// Sec. III-C2, Table III): every interaction with the system goes
/// through one of four typed request/response pairs —
///
///   IngestRequest     -> IngestResponse      (batched write path)
///   RecommendRequest  -> RecommendResponse   (Eq. 12 candidate list)
///   NeighborsRequest  -> NeighborsResponse   (Eq. 11 neighborhood)
///   HistoryRequest    -> HistoryResponse     (user history snapshot)
///
/// The facade wraps the sharded core::RealTimeService and is the single
/// public serving entry point: examples, the streaming evaluator, and
/// the throughput benches all drive it. The batch-first ingest path is
/// where the amortization lives — a batch takes each touched shard's
/// write lock once, re-infers only each touched user's *final*
/// embedding, and (with Options::compaction_threshold > 1) defers index
/// refreshes through per-shard write buffers that queries transparently
/// merge, so results stay fresh between compactions.
///
/// Compaction policy: staged refreshes leave the buffers through any of
/// four routes, all bit-exact for the brute-force backend — the count
/// threshold (Options::compaction_threshold), the wall-clock age bound
/// (Options::compaction_interval_ms, enforced on the ingest and query
/// paths), the background compaction thread
/// (Options::background_compaction, which also drains shards nobody
/// touches), and explicit Compact().
///
/// Lifecycle: construct, Bootstrap exactly once (this starts the
/// background compaction thread when Options::background_compaction is
/// set), serve, then destroy — the destructor stops and joins the
/// thread. Stop/StartBackgroundCompaction are exposed for explicit
/// control (e.g. quiescing before a checkpoint); both are safe while
/// serving traffic is in flight but must be called from one thread at a
/// time.
///
/// Thread-safety: Bootstrap once from one thread, then any mix of
/// Ingest / Recommend / Neighbors / History / Compact calls from any
/// threads is safe (the service's per-shard lock discipline and the
/// lock-ordering contract; see core/realtime.h).
class Engine {
 public:
  /// Upper bound accepted for RecommendRequest::n and for every
  /// beta_override. Requests arrive from untrusted bytes (the network
  /// protocol layer), and a syntactically valid "RECOMMEND 1 2^62"
  /// would otherwise reach the top-k accumulator as a near-2^62
  /// reserve() — std::length_error on the serving thread. Values above
  /// the cap are InvalidArgument, exactly like non-positive ones; the
  /// cap is far beyond any useful list or neighborhood size.
  static constexpr int64_t kMaxRequestLimit = int64_t{1} << 20;

  using Options = core::RealTimeService::Options;
  using Event = core::RealTimeService::Event;
  using UpdateTiming = core::RealTimeService::UpdateTiming;
  using UserState = core::RealTimeService::UserState;

  /// A batch of interactions to absorb. Events must be chronological per
  /// user within the batch; cold-start users are created on the fly.
  struct IngestRequest {
    std::vector<Event> events;
    /// Run the post-update neighborhood identification for every touched
    /// user (the full Table III loop: infer + index + identify). Disable
    /// for pure ingest (offline replay, warm-up), which skips the
    /// all-shard fan-out search.
    bool identify = true;
  };

  /// Per-event timings plus batch totals. A user updated several times
  /// in one batch carries its (single) infer/index/identify cost on its
  /// last event; earlier events read 0 — sum over the batch for totals,
  /// which the aggregate fields below pre-compute.
  struct IngestResponse {
    std::vector<UpdateTiming> timings;  ///< one entry per request event
    size_t num_events = 0;
    size_t users_touched = 0;     ///< distinct users in the batch
    size_t cold_start_users = 0;  ///< users created by this batch
    double infer_ms = 0.0;        ///< sum of per-user inference cost
    double index_ms = 0.0;        ///< sum of index-refresh/staging cost
    double identify_ms = 0.0;     ///< sum of neighborhood-search cost
    double wall_ms = 0.0;         ///< end-to-end batch wall time
    /// Embeddings staged (not yet compacted) in the shards this batch
    /// touched, observed as the batch released each shard — 0 whenever
    /// compaction_threshold <= 1, and a point-in-time reading when the
    /// age/background compaction policies are on (a drain may land the
    /// moment the shard lock is released). For the all-shard total at
    /// any later point, use Engine::pending_upserts().
    size_t pending_upserts = 0;
  };

  struct RecommendOptions {
    /// Neighborhood size for this request; unset uses Options::beta.
    /// Signed on purpose: requests increasingly arrive from untrusted
    /// sources (the network protocol layer), and an unsigned field would
    /// silently wrap a parsed "-5" into a huge neighborhood instead of
    /// letting validation reject it. Any value <= 0 or above
    /// kMaxRequestLimit is InvalidArgument.
    std::optional<int64_t> beta_override;
    /// Mask the user's own history out of the candidate list (the
    /// paper's protocol). Disable to score already-seen items too.
    bool exclude_seen = true;
  };

  struct RecommendRequest {
    int user = -1;
    /// List length; must be in [1, kMaxRequestLimit]. Signed for the
    /// same reason as RecommendOptions::beta_override — a negative n
    /// must be rejected, not wrapped into a near-2^64 allocation
    /// request; the upper cap rejects huge-but-valid counts too.
    int64_t n = 0;
    RecommendOptions opts;
  };

  struct RecommendResponse {
    core::CandidateList candidates;  ///< descending score
  };

  struct NeighborsRequest {
    int user = -1;
    /// Neighborhood size for this request; unset uses Options::beta.
    /// Any explicit value <= 0 or above kMaxRequestLimit is
    /// InvalidArgument (signed so negatives from untrusted callers are
    /// rejectable, not wrapped).
    std::optional<int64_t> beta_override;
  };

  struct NeighborsResponse {
    std::vector<index::Neighbor> neighbors;  ///< descending similarity
  };

  struct HistoryRequest {
    int user = -1;
  };

  struct HistoryResponse {
    std::vector<int> items;  ///< chronological snapshot copy
  };

  /// `model` must be fitted and outlive the engine.
  Engine(const models::InductiveUiModel& model, Options options);

  /// Joins any in-flight background save (WaitForSave) before members
  /// are torn down.
  ~Engine();

  /// Loads initial user states / the split's training prefixes and
  /// builds the shard indexes. Exactly once, before any serving call.
  ///
  /// With Options::recover_dir set, Bootstrap additionally recovers
  /// durable state from that directory after the in-memory build: the
  /// last snapshot (if one exists) replaces each shard's state, the
  /// journal tail replays through the normal ingest path, and every
  /// subsequent ingest is write-ahead journaled there — so a process
  /// killed at any instant restarts bit-identical to one that never
  /// died. A fresh directory is created and degenerates to plain
  /// bootstrap + journaling.
  Status Bootstrap(const std::vector<UserState>& users);
  Status BootstrapFromSplit(const data::LeaveOneOutSplit& split);

  /// Absorbs a batch of interactions (see IngestRequest). The whole
  /// batch is validated first — an InvalidArgument response means no
  /// state changed. An empty batch is a no-op OK.
  StatusOr<IngestResponse> Ingest(const IngestRequest& request);

  /// Eq. 12 similarity-weighted candidate list for one user.
  StatusOr<RecommendResponse> Recommend(const RecommendRequest& request) const;

  /// Eq. 11 neighborhood of one user, freshest state (staged upserts
  /// included).
  StatusOr<NeighborsResponse> Neighbors(const NeighborsRequest& request) const;

  /// Snapshot copy of one user's history (NotFound for unknown users).
  StatusOr<HistoryResponse> History(const HistoryRequest& request) const;

  /// Flushes every shard's staged upserts into its backend index. With
  /// the interval/background policies enabled this is still useful as a
  /// synchronous "drain everything now" barrier (tests, checkpoints).
  Status Compact();

  /// Writes a full snapshot to Options::recover_dir and rotates the
  /// journal (see persist::PersistenceManager::Save) — the SAVE server
  /// command. FailedPrecondition when no recover_dir was configured.
  /// Safe while serving traffic is in flight. Saves are single-flight:
  /// if another Save/BgSave is currently running, returns AlreadyExists
  /// ("save already in progress") without touching any state.
  Status Save();

  /// Non-blocking counterpart to Save() — the BGSAVE server command.
  /// Runs the identical snapshot + journal rotation on a dedicated
  /// helper thread (the export takes one shard lock at a time, so
  /// serving traffic keeps flowing) and invokes `on_done` with the
  /// result from that thread once finished. Returns immediately:
  /// OK means the save was started, AlreadyExists means another
  /// Save/BgSave is in flight (single-flight guard), FailedPrecondition
  /// means persistence is not configured.
  ///
  /// `on_done` runs on the helper thread after the in-progress flag has
  /// been released; it must be thread-safe and must not call BgSave /
  /// Save / WaitForSave itself (it would deadlock joining its own
  /// thread). Typical use hands the status back to an event loop (e.g.
  /// enqueue + eventfd wakeup).
  Status BgSave(std::function<void(const Status&)> on_done);

  /// Blocks until any in-flight background save has finished and its
  /// thread is joined. Safe to call with none running. Call before
  /// closing resources the BgSave completion callback touches.
  void WaitForSave();

  /// True while a Save/BgSave is running — the STATS save_in_progress
  /// field.
  bool save_in_progress() const {
    return save_in_progress_.load(std::memory_order_acquire);
  }

  /// Unix seconds of the last successful Save/BgSave (-1 if none yet
  /// this process — distinguishable from a save that landed at epoch 0)
  /// — the LASTSAVE server command. Recovery does not count: it reads
  /// snapshots, it doesn't write one.
  int64_t last_save_unix_s() const {
    return last_save_unix_s_.load(std::memory_order_acquire);
  }

  /// Wall-clock duration of the most recently *completed* Save/BgSave,
  /// successful or not (-1 if none yet) — the STATS
  /// last_save_duration_ms field.
  int64_t last_save_duration_ms() const {
    return last_save_duration_ms_.load(std::memory_order_acquire);
  }

  /// True when Options::recover_dir was configured (SAVE will work).
  bool persistence_enabled() const { return persistence_ != nullptr; }

  /// Explicit background-compaction lifecycle (Bootstrap starts the
  /// thread when Options::background_compaction is set; the destructor
  /// stops it). Start is a no-op when running, Stop when not.
  Status StartBackgroundCompaction() {
    return service_.StartBackgroundCompaction();
  }
  void StopBackgroundCompaction() { service_.StopBackgroundCompaction(); }
  bool background_compaction_running() const {
    return service_.background_compaction_running();
  }

  size_t pending_upserts() const { return service_.pending_upserts(); }
  size_t num_users() const { return service_.num_users(); }

  /// Point-in-time operational counters, cheap enough to poll (one
  /// shared lock per shard for the staged count). This is what the
  /// network server's STATS command surfaces; later scale items
  /// (persistence, memory accounting) extend this snapshot rather than
  /// adding ad-hoc getters.
  struct StatsSnapshot {
    size_t num_users = 0;
    size_t num_shards = 0;
    size_t pending_upserts = 0;
    bool background_compaction = false;
    bool save_in_progress = false;
    int64_t last_save_duration_ms = -1;  ///< -1 until a save completes
    /// Memory accounting, summed over ShardStats(): fp32 row bytes held
    /// by the backend indexes, SQ8 code bytes (codes + per-row params),
    /// and resident HNSW tombstones. Exactly one of embedding_bytes /
    /// code_bytes dominates depending on Options::storage.
    size_t embedding_bytes = 0;
    size_t code_bytes = 0;
    size_t tombstones = 0;
  };
  StatsSnapshot Stats() const {
    StatsSnapshot out{service_.num_users(),
                      service_.num_shards(),
                      service_.pending_upserts(),
                      service_.background_compaction_running(),
                      save_in_progress(),
                      last_save_duration_ms()};
    for (const core::RealTimeService::ShardStats& s : ShardStats()) {
      out.embedding_bytes += s.embedding_bytes;
      out.code_bytes += s.code_bytes;
      out.tombstones += s.tombstones;
    }
    return out;
  }

  /// Per-shard occupancy/memory accounting (the SHARDSTATS server
  /// command): one entry per shard, each read under that shard's shared
  /// lock. See core::RealTimeService::ShardStatsSnapshot.
  std::vector<core::RealTimeService::ShardStats> ShardStats() const {
    return service_.ShardStatsSnapshot();
  }

  /// The wrapped service, for diagnostics (shard topology, vote lists)
  /// and tests. Serving traffic should use the typed API above.
  const core::RealTimeService& service() const { return service_; }
  core::RealTimeService& service() { return service_; }

 private:
  /// Recovery + journal attachment, run by both Bootstrap overloads
  /// after the in-memory build when Options::recover_dir is set.
  Status RecoverFromDir(const std::string& dir, bool journal_fsync);

  /// The shared save body (Save and the BgSave helper thread both run
  /// it): snapshot + rotate, then record duration and — on success —
  /// the save timestamp. Caller owns the single-flight guard.
  Status DoSave();

  core::RealTimeService service_;
  std::unique_ptr<persist::PersistenceManager> persistence_;
  std::atomic<int64_t> last_save_unix_s_{-1};
  std::atomic<int64_t> last_save_duration_ms_{-1};
  /// Single-flight guard over Save/BgSave; acquired by CAS, released by
  /// whichever thread ran DoSave (before the BgSave callback fires, so
  /// the callback observes save_in_progress() == false).
  std::atomic<bool> save_in_progress_{false};
  /// Guards bgsave_thread_ (spawn/join); never held while saving.
  std::mutex save_mu_;
  std::thread bgsave_thread_;
};

}  // namespace sccf::online

#endif  // SCCF_ONLINE_ENGINE_H_
