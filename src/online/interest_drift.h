#ifndef SCCF_ONLINE_INTEREST_DRIFT_H_
#define SCCF_ONLINE_INTEREST_DRIFT_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"

namespace sccf::online {

/// Reproduces the Fig.-1 analysis (paper Sec. I): for each user's most
/// recent active day ("today"), look at every category she clicks today
/// and find the day she *first* clicked that category within the previous
/// `window_days`. Returns a distribution over day deltas:
///
///   result[0]   = proportion of today's categories never clicked in the
///                 window (brand-new interests; ~50% on Taobao),
///   result[x]   = proportion first clicked x days before today,
///                 for x in [1, window_days].
///
/// The dataset must carry item categories and timestamps. The proportions
/// are averaged per user, then across users, matching the paper's
/// "average distribution".
std::vector<double> CategoryRecencyDistribution(const data::Dataset& dataset,
                                                size_t window_days);

}  // namespace sccf::online

#endif  // SCCF_ONLINE_INTEREST_DRIFT_H_
