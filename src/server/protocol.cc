#include "server/protocol.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <utility>

namespace sccf::server {

namespace {

constexpr std::string_view kCrlf = "\r\n";

/// Sanity caps for reply frames (client side: the load client and the
/// loopback tests). A near-INT64_MAX bulk length would wrap the
/// end-of-payload arithmetic in ReplyParser::Next past the size_t
/// range; anything this large is a desynchronized stream, not a reply
/// the server would ever produce.
constexpr int64_t kMaxReplyBulkBytes = int64_t{1} << 30;
constexpr int64_t kMaxReplyArrayElements = int64_t{1} << 24;

/// Strict non-negative integer parse over a header field (lengths,
/// counts). Rejects signs, leading zeros are fine, overflow is not.
bool ParseHeaderCount(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size() && *out >= 0;
}

std::string Uppercased(std::string_view s) {
  std::string up(s);
  std::transform(up.begin(), up.end(), up.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return up;
}

}  // namespace

// ------------------------------------------------------------- replies

void AppendSimpleString(std::string* out, std::string_view s) {
  out->push_back('+');
  out->append(s);
  out->append(kCrlf);
}

void AppendError(std::string* out, std::string_view code,
                 std::string_view message) {
  out->push_back('-');
  out->append(code);
  out->push_back(' ');
  const size_t start = out->size();
  out->append(message);
  std::replace_if(
      out->begin() + static_cast<std::ptrdiff_t>(start), out->end(),
      [](char c) { return c == '\r' || c == '\n'; }, ' ');
  out->append(kCrlf);
}

void AppendInteger(std::string* out, int64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out->push_back(':');
  out->append(buf, ptr);
  out->append(kCrlf);
}

void AppendBulkString(std::string* out, std::string_view s) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf),
                                       static_cast<int64_t>(s.size()));
  (void)ec;
  out->push_back('$');
  out->append(buf, ptr);
  out->append(kCrlf);
  out->append(s);
  out->append(kCrlf);
}

void AppendArrayHeader(std::string* out, size_t n) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf),
                                       static_cast<int64_t>(n));
  (void)ec;
  out->push_back('*');
  out->append(buf, ptr);
  out->append(kCrlf);
}

void AppendFloatBulk(std::string* out, float v) {
  char buf[48];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  AppendBulkString(out, std::string_view(buf, ptr - buf));
}

// ---------------------------------------------------- request parsing

void RequestParser::Feed(std::string_view bytes) {
  if (fatal_) return;
  buf_.append(bytes);
}

void RequestParser::Consume(size_t n) {
  pos_ += n;
  // Reclaim the consumed prefix once it dominates the buffer, so a
  // long-lived pipelining connection doesn't grow its buffer without
  // bound while staying O(1) amortized.
  if (pos_ > 4096 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

RequestParser::Result RequestParser::Fatal(std::string* error,
                                           std::string message) {
  fatal_ = true;
  buf_.clear();
  pos_ = 0;
  if (error != nullptr) *error = std::move(message);
  return Result::kFatal;
}

RequestParser::Result RequestParser::Next(Command* command,
                                          std::string* error) {
  if (fatal_) {
    if (error != nullptr) *error = "connection already in protocol error";
    return Result::kFatal;
  }
  while (true) {
    const std::string_view rest =
        std::string_view(buf_).substr(pos_);
    if (rest.empty()) return Result::kNeedMore;
    if (rest.front() == '*') return ParseMultibulk(command, error);
    // Skip bare newlines between inline commands (telnet convenience).
    if (rest.front() == '\r' || rest.front() == '\n') {
      size_t skip = 0;
      while (skip < rest.size() &&
             (rest[skip] == '\r' || rest[skip] == '\n')) {
        ++skip;
      }
      Consume(skip);
      continue;
    }
    const Result result = ParseInline(command, error);
    // A whitespace-only line comes back as kCommand with an empty name
    // (the line is consumed): keep scanning here, iteratively — a
    // recursive skip would burn one stack frame per 2-byte line, and a
    // pipelined flood of them is attacker-controlled recursion depth.
    if (result == Result::kCommand && command->name.empty()) continue;
    return result;
  }
}

RequestParser::Result RequestParser::ParseInline(Command* command,
                                                 std::string* error) {
  const std::string_view rest = std::string_view(buf_).substr(pos_);
  const size_t nl = rest.find('\n');
  if (nl == std::string_view::npos) {
    if (rest.size() > limits_.max_frame_bytes) {
      return Fatal(error, "inline request exceeds " +
                              std::to_string(limits_.max_frame_bytes) +
                              " bytes");
    }
    return Result::kNeedMore;
  }
  if (nl > limits_.max_frame_bytes) {
    return Fatal(error, "inline request exceeds " +
                            std::to_string(limits_.max_frame_bytes) +
                            " bytes");
  }
  std::string_view line = rest.substr(0, nl);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  command->name.clear();
  command->args.clear();
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i == start) break;
    const std::string_view token = line.substr(start, i - start);
    if (command->name.empty() && command->args.empty()) {
      command->name = Uppercased(token);
    } else {
      command->args.emplace_back(token);
    }
  }
  Consume(nl + 1);
  // An empty name means the line was whitespace-only; Next() skips it
  // (iteratively — never recurse back into Next from here).
  return Result::kCommand;
}

RequestParser::Result RequestParser::ParseMultibulk(Command* command,
                                                    std::string* error) {
  const std::string_view rest = std::string_view(buf_).substr(pos_);
  size_t cursor = 0;  // offset into rest

  // Reads one "<type><digits>\r\n" header at `cursor`; advances cursor
  // past it. Returns false with need_more/fatal handled by the caller
  // via the out-params.
  bool need_more = false;
  std::string fatal_reason;
  const auto read_header = [&](char type, int64_t* value) -> bool {
    if (cursor >= rest.size()) {
      need_more = true;
      return false;
    }
    if (rest[cursor] != type) {
      fatal_reason = std::string("expected '") + type +
                     "' in multibulk frame, got '" + rest[cursor] + "'";
      return false;
    }
    const size_t line_end = rest.find(kCrlf, cursor);
    if (line_end == std::string_view::npos) {
      if (rest.size() - cursor > 32) {
        fatal_reason = "unterminated multibulk header";
      } else {
        need_more = true;
      }
      return false;
    }
    if (!ParseHeaderCount(rest.substr(cursor + 1, line_end - cursor - 1),
                          value)) {
      fatal_reason = "bad count in multibulk header";
      return false;
    }
    cursor = line_end + 2;
    return true;
  };

  int64_t argc = 0;
  if (!read_header('*', &argc)) {
    if (need_more) {
      if (rest.size() > limits_.max_frame_bytes) {
        return Fatal(error, "oversized multibulk frame");
      }
      return Result::kNeedMore;
    }
    return Fatal(error, std::move(fatal_reason));
  }
  if (static_cast<size_t>(argc) > limits_.max_args) {
    return Fatal(error, "multibulk frame exceeds " +
                            std::to_string(limits_.max_args) + " elements");
  }

  std::vector<std::string> elements;
  elements.reserve(static_cast<size_t>(argc));
  for (int64_t i = 0; i < argc; ++i) {
    int64_t len = 0;
    if (!read_header('$', &len)) {
      if (need_more) {
        if (rest.size() > limits_.max_frame_bytes) {
          return Fatal(error, "oversized multibulk frame");
        }
        return Result::kNeedMore;
      }
      return Fatal(error, std::move(fatal_reason));
    }
    if (static_cast<size_t>(len) > limits_.max_frame_bytes ||
        cursor + static_cast<size_t>(len) + 2 >
            limits_.max_frame_bytes + 64) {
      return Fatal(error, "oversized bulk argument");
    }
    if (cursor + static_cast<size_t>(len) + 2 > rest.size()) {
      return Result::kNeedMore;
    }
    if (rest.substr(cursor + static_cast<size_t>(len), 2) != kCrlf) {
      return Fatal(error, "bulk argument not CRLF-terminated");
    }
    elements.emplace_back(rest.substr(cursor, static_cast<size_t>(len)));
    cursor += static_cast<size_t>(len) + 2;
  }

  Consume(cursor);
  if (elements.empty()) {
    // `*0\r\n` frames cleanly but names no command: recoverable error.
    if (error != nullptr) *error = "empty command";
    return Result::kError;
  }
  command->name = Uppercased(elements.front());
  command->args.assign(std::make_move_iterator(elements.begin() + 1),
                       std::make_move_iterator(elements.end()));
  return Result::kCommand;
}

// ------------------------------------------------------ reply parsing

void ReplyParser::Feed(std::string_view bytes) { buf_.append(bytes); }

ReplyParser::Result ReplyParser::Next(std::string* reply) {
  if (bad_) return Result::kError;
  const std::string_view rest = std::string_view(buf_).substr(pos_);
  size_t cursor = 0;
  // A reply is `frames` outstanding frames; arrays add their element
  // count. Iterative equivalent of recursive descent.
  int64_t frames = 1;
  while (frames > 0) {
    if (cursor >= rest.size()) return Result::kNeedMore;
    const char type = rest[cursor];
    const size_t line_end = rest.find("\r\n", cursor);
    if (line_end == std::string_view::npos) return Result::kNeedMore;
    const std::string_view body =
        rest.substr(cursor + 1, line_end - cursor - 1);
    switch (type) {
      case '+':
      case '-':
        cursor = line_end + 2;
        break;
      case ':': {
        int64_t v = 0;
        std::string_view digits = body;
        if (!digits.empty() && digits.front() == '-') {
          digits.remove_prefix(1);
        }
        if (!ParseHeaderCount(digits, &v)) {
          bad_ = true;
          return Result::kError;
        }
        cursor = line_end + 2;
        break;
      }
      case '$': {
        int64_t len = 0;
        if (body == "-1") {  // null bulk
          cursor = line_end + 2;
          break;
        }
        if (!ParseHeaderCount(body, &len) || len > kMaxReplyBulkBytes) {
          bad_ = true;
          return Result::kError;
        }
        const size_t end = line_end + 2 + static_cast<size_t>(len) + 2;
        if (end > rest.size()) return Result::kNeedMore;
        if (rest.substr(end - 2, 2) != "\r\n") {
          bad_ = true;
          return Result::kError;
        }
        cursor = end;
        break;
      }
      case '*': {
        int64_t count = 0;
        if (body == "-1") {  // null array
          cursor = line_end + 2;
          break;
        }
        if (!ParseHeaderCount(body, &count) ||
            count > kMaxReplyArrayElements) {
          bad_ = true;
          return Result::kError;
        }
        cursor = line_end + 2;
        frames += count;
        break;
      }
      default:
        bad_ = true;
        return Result::kError;
    }
    --frames;
  }
  if (reply != nullptr) reply->assign(rest.substr(0, cursor));
  pos_ += cursor;
  if (pos_ > 4096 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return Result::kReply;
}

}  // namespace sccf::server
