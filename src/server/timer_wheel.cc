#include "server/timer_wheel.h"

namespace sccf::server {

namespace {
constexpr size_t kKinds = 3;
}  // namespace

void TimerWheel::Arm(int fd, Kind kind, int64_t deadline_ns) {
  const size_t slot =
      static_cast<size_t>(fd) * kKinds + static_cast<size_t>(kind);
  if (slot >= live_sequence_.size()) {
    live_sequence_.resize(slot + 1, 0);
  }
  const uint64_t seq = next_sequence_++;
  live_sequence_[slot] = seq;
  heap_.push(Entry{deadline_ns, fd, kind, seq});
}

void TimerWheel::CancelAll(int fd) {
  const size_t base = static_cast<size_t>(fd) * kKinds;
  for (size_t k = 0; k < kKinds; ++k) {
    if (base + k < live_sequence_.size()) live_sequence_[base + k] = 0;
  }
}

bool TimerWheel::IsLive(const Entry& e) const {
  const size_t slot =
      static_cast<size_t>(e.fd) * kKinds + static_cast<size_t>(e.kind);
  return slot < live_sequence_.size() && live_sequence_[slot] == e.sequence;
}

int64_t TimerWheel::NextDeadlineNs() {
  while (!heap_.empty() && !IsLive(heap_.top())) heap_.pop();
  return heap_.empty() ? -1 : heap_.top().deadline_ns;
}

std::vector<TimerWheel::Expired> TimerWheel::PopExpired(int64_t now_ns) {
  std::vector<Expired> expired;
  while (!heap_.empty() && heap_.top().deadline_ns <= now_ns) {
    const Entry e = heap_.top();
    heap_.pop();
    if (!IsLive(e)) continue;
    const size_t slot =
        static_cast<size_t>(e.fd) * kKinds + static_cast<size_t>(e.kind);
    live_sequence_[slot] = 0;  // fired exactly once
    expired.push_back(Expired{e.fd, e.kind});
  }
  return expired;
}

}  // namespace sccf::server
