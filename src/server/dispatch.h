#ifndef SCCF_SERVER_DISPATCH_H_
#define SCCF_SERVER_DISPATCH_H_

#include <string>

#include "online/engine.h"
#include "server/protocol.h"

namespace sccf::server {

/// Command dispatch: executes one parsed request frame against the
/// Engine and appends exactly one RESP reply to `*out`. Pure with
/// respect to the transport — the reactor, the loopback tests, and any
/// future transport all call this, which is what makes "server replies
/// are bit-identical to direct Engine calls" a testable statement: run
/// the same Command through Execute on a twin engine and compare bytes.
///
/// The command set (case-insensitive names):
///
///   PING
///     -> +PONG
///   INGEST user item ts [user item ts ...] [NOIDENTIFY]
///     One or more (user, item, ts) triples absorbed as one
///     Engine::Ingest batch (atomic: all events validated first).
///     NOIDENTIFY skips the post-update neighborhood search.
///     -> *3  :num_events  :users_touched  :cold_start_users
///        (timings are deliberately not on the wire: they are
///        wall-clock and would break bit-identical comparison)
///   RECOMMEND user n [BETA b] [WITHSEEN]
///     Eq. 12 candidate list. BETA overrides Options::beta for this
///     request; WITHSEEN disables the exclude-seen masking.
///     -> *2k alternating  :item  $score
///   NEIGHBORS user [BETA b]
///     Eq. 11 neighborhood.
///     -> *2k alternating  :user  $similarity
///   HISTORY user
///     -> *k of  :item   (chronological)
///   STATS
///     -> *12 alternating  $name  :value   for num_users, num_shards,
///        pending_upserts, background_compaction (0/1),
///        save_in_progress (0/1), last_save_duration_ms (-1 until a
///        save completes)
///   SAVE
///     Writes a full snapshot to the configured data directory and
///     rotates the ingest journal (Engine::Save). Synchronous: +OK means
///     the snapshot is durably on disk.
///     -> +OK; -BUSY while another SAVE/BGSAVE is running;
///        -FAILEDPRECONDITION when the server runs without --data_dir
///   BGSAVE
///     Same snapshot + rotation, but off the serving thread: the epoll
///     reactor intercepts this name before dispatch, runs
///     Engine::BgSave on a helper thread, and defers the reply until
///     the completion wakeup — other connections keep being served the
///     whole time. This dispatch entry is the synchronous fallback for
///     transports without deferred-reply plumbing (the loopback test
///     harness); both paths emit the identical bytes (AppendSaveReply).
///     -> +OK on durable completion; -BUSY while another SAVE/BGSAVE is
///        running; -IOERROR if the save failed (previous snapshot
///        generation stays intact); -FAILEDPRECONDITION without
///        --data_dir
///   LASTSAVE
///     -> :unix_seconds of the last successful SAVE/BGSAVE, or :-1 if
///        none yet this process (distinguishes "never saved" from a
///        save at epoch 0)
///   QUIT
///     -> +OK, and Execute returns true (close after the reply flushes)
///
/// Errors: argument/parse problems reply `-ERR <reason>`; non-OK Engine
/// statuses reply `-<UPPERCASED CODE> <message>` (e.g. -INVALIDARGUMENT,
/// -NOTFOUND), so the Engine's validation contract — including the
/// "must be positive" knobs — is visible verbatim at the wire.
///
/// Returns true when the connection should close once the reply has
/// been flushed (QUIT). Never throws, never crashes on malformed args.
bool Execute(online::Engine& engine, const Command& command,
             std::string* out);

/// Serializes a SAVE/BGSAVE outcome: +OK on success, -BUSY for the
/// single-flight guard (Engine reports it as AlreadyExists), otherwise
/// the usual -<CODE> status error. Shared between ExecuteSave/-BgSave
/// and the reactor's deferred BGSAVE completion path so every save
/// reply is byte-identical regardless of which thread produced it.
void AppendSaveReply(std::string* out, const Status& status);

}  // namespace sccf::server

#endif  // SCCF_SERVER_DISPATCH_H_
