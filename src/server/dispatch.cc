#include "server/dispatch.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sccf::server {

namespace {

/// Strict full-string signed integer parse (what untrusted request
/// arguments go through). "-5" parses to -5 so the Engine's non-positive
/// validation actually sees the sign instead of an unsigned wraparound.
bool ParseI64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

/// int32 range check for user/item ids carried as `int` in the Engine
/// API: an id like 2^40 must be rejected at the protocol boundary, not
/// truncated into a different (valid-looking) id.
bool ParseId(std::string_view s, int* out) {
  int64_t v = 0;
  if (!ParseI64(s, &v)) return false;
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::toupper(static_cast<unsigned char>(x)) ==
                  std::toupper(static_cast<unsigned char>(y));
         });
}

void AppendStatusError(std::string* out, const Status& status) {
  std::string code(StatusCodeToString(status.code()));
  std::transform(code.begin(), code.end(), code.begin(),
                 [](unsigned char c) {
                   return static_cast<char>(std::toupper(c));
                 });
  AppendError(out, code, status.message());
}

void AppendArgError(std::string* out, std::string_view message) {
  AppendError(out, "ERR", message);
}

void ExecutePing(std::string* out) { AppendSimpleString(out, "PONG"); }

void ExecuteIngest(online::Engine& engine, const Command& cmd,
                   std::string* out) {
  size_t n = cmd.args.size();
  online::Engine::IngestRequest request;
  if (n > 0 && EqualsIgnoreCase(cmd.args[n - 1], "NOIDENTIFY")) {
    request.identify = false;
    --n;
  }
  if (n == 0 || n % 3 != 0) {
    AppendArgError(out,
                   "INGEST expects (user item ts) triples, optionally "
                   "followed by NOIDENTIFY");
    return;
  }
  request.events.reserve(n / 3);
  for (size_t i = 0; i < n; i += 3) {
    online::Engine::Event event;
    if (!ParseId(cmd.args[i], &event.user) ||
        !ParseId(cmd.args[i + 1], &event.item) ||
        !ParseI64(cmd.args[i + 2], &event.ts)) {
      AppendArgError(out, "INGEST: malformed integer in triple " +
                              std::to_string(i / 3));
      return;
    }
    request.events.push_back(event);
  }
  auto response = engine.Ingest(request);
  if (!response.ok()) {
    AppendStatusError(out, response.status());
    return;
  }
  AppendArrayHeader(out, 3);
  AppendInteger(out, static_cast<int64_t>(response->num_events));
  AppendInteger(out, static_cast<int64_t>(response->users_touched));
  AppendInteger(out, static_cast<int64_t>(response->cold_start_users));
}

void ExecuteRecommend(online::Engine& engine, const Command& cmd,
                      std::string* out) {
  if (cmd.args.size() < 2) {
    AppendArgError(out, "RECOMMEND expects: user n [BETA b] [WITHSEEN]");
    return;
  }
  online::Engine::RecommendRequest request;
  if (!ParseId(cmd.args[0], &request.user) ||
      !ParseI64(cmd.args[1], &request.n)) {
    AppendArgError(out, "RECOMMEND: user and n must be integers");
    return;
  }
  for (size_t i = 2; i < cmd.args.size(); ++i) {
    if (EqualsIgnoreCase(cmd.args[i], "BETA") && i + 1 < cmd.args.size()) {
      int64_t beta = 0;
      if (!ParseI64(cmd.args[++i], &beta)) {
        AppendArgError(out, "RECOMMEND: BETA must be an integer");
        return;
      }
      request.opts.beta_override = beta;
    } else if (EqualsIgnoreCase(cmd.args[i], "WITHSEEN")) {
      request.opts.exclude_seen = false;
    } else {
      AppendArgError(out, "RECOMMEND: unknown option '" + cmd.args[i] + "'");
      return;
    }
  }
  auto response = engine.Recommend(request);
  if (!response.ok()) {
    AppendStatusError(out, response.status());
    return;
  }
  AppendArrayHeader(out, response->candidates.size() * 2);
  for (const auto& candidate : response->candidates) {
    AppendInteger(out, candidate.id);
    AppendFloatBulk(out, candidate.score);
  }
}

void ExecuteNeighbors(online::Engine& engine, const Command& cmd,
                      std::string* out) {
  if (cmd.args.empty()) {
    AppendArgError(out, "NEIGHBORS expects: user [BETA b]");
    return;
  }
  online::Engine::NeighborsRequest request;
  if (!ParseId(cmd.args[0], &request.user)) {
    AppendArgError(out, "NEIGHBORS: user must be an integer");
    return;
  }
  if (cmd.args.size() >= 2) {
    if (cmd.args.size() != 3 || !EqualsIgnoreCase(cmd.args[1], "BETA")) {
      AppendArgError(out, "NEIGHBORS expects: user [BETA b]");
      return;
    }
    int64_t beta = 0;
    if (!ParseI64(cmd.args[2], &beta)) {
      AppendArgError(out, "NEIGHBORS: BETA must be an integer");
      return;
    }
    request.beta_override = beta;
  }
  auto response = engine.Neighbors(request);
  if (!response.ok()) {
    AppendStatusError(out, response.status());
    return;
  }
  AppendArrayHeader(out, response->neighbors.size() * 2);
  for (const auto& neighbor : response->neighbors) {
    AppendInteger(out, neighbor.id);
    AppendFloatBulk(out, neighbor.score);
  }
}

void ExecuteHistory(online::Engine& engine, const Command& cmd,
                    std::string* out) {
  if (cmd.args.size() != 1) {
    AppendArgError(out, "HISTORY expects: user");
    return;
  }
  online::Engine::HistoryRequest request;
  if (!ParseId(cmd.args[0], &request.user)) {
    AppendArgError(out, "HISTORY: user must be an integer");
    return;
  }
  auto response = engine.History(request);
  if (!response.ok()) {
    AppendStatusError(out, response.status());
    return;
  }
  AppendArrayHeader(out, response->items.size());
  for (int item : response->items) AppendInteger(out, item);
}

void ExecuteStats(online::Engine& engine, std::string* out) {
  const online::Engine::StatsSnapshot stats = engine.Stats();
  AppendArrayHeader(out, 18);
  AppendBulkString(out, "num_users");
  AppendInteger(out, static_cast<int64_t>(stats.num_users));
  AppendBulkString(out, "num_shards");
  AppendInteger(out, static_cast<int64_t>(stats.num_shards));
  AppendBulkString(out, "pending_upserts");
  AppendInteger(out, static_cast<int64_t>(stats.pending_upserts));
  AppendBulkString(out, "background_compaction");
  AppendInteger(out, stats.background_compaction ? 1 : 0);
  AppendBulkString(out, "save_in_progress");
  AppendInteger(out, stats.save_in_progress ? 1 : 0);
  AppendBulkString(out, "last_save_duration_ms");
  AppendInteger(out, stats.last_save_duration_ms);
  AppendBulkString(out, "embedding_bytes");
  AppendInteger(out, static_cast<int64_t>(stats.embedding_bytes));
  AppendBulkString(out, "code_bytes");
  AppendInteger(out, static_cast<int64_t>(stats.code_bytes));
  AppendBulkString(out, "tombstones");
  AppendInteger(out, static_cast<int64_t>(stats.tombstones));
}

void ExecuteShardStats(online::Engine& engine, std::string* out) {
  const std::vector<core::RealTimeService::ShardStats> shards =
      engine.ShardStats();
  AppendArrayHeader(out, shards.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    const core::RealTimeService::ShardStats& st = shards[s];
    AppendArrayHeader(out, 14);
    AppendBulkString(out, "shard");
    AppendInteger(out, static_cast<int64_t>(s));
    AppendBulkString(out, "users");
    AppendInteger(out, static_cast<int64_t>(st.users));
    AppendBulkString(out, "index_rows");
    AppendInteger(out, static_cast<int64_t>(st.index_rows));
    AppendBulkString(out, "embedding_bytes");
    AppendInteger(out, static_cast<int64_t>(st.embedding_bytes));
    AppendBulkString(out, "code_bytes");
    AppendInteger(out, static_cast<int64_t>(st.code_bytes));
    AppendBulkString(out, "tombstones");
    AppendInteger(out, static_cast<int64_t>(st.tombstones));
    AppendBulkString(out, "staged_rows");
    AppendInteger(out, static_cast<int64_t>(st.staged_rows));
  }
}

void ExecuteSave(online::Engine& engine, std::string* out) {
  AppendSaveReply(out, engine.Save());
}

void ExecuteBgSave(online::Engine& engine, std::string* out) {
  // Synchronous fallback for transports without deferred-reply plumbing
  // (the loopback test harness calls Execute directly). The epoll
  // reactor intercepts BGSAVE before dispatch and runs Engine::BgSave
  // with a completion wakeup instead — but both paths answer with
  // exactly the bytes AppendSaveReply produces, which is what keeps
  // "server replies are bit-identical to direct dispatch" true for
  // BGSAVE too.
  AppendSaveReply(out, engine.Save());
}

void ExecuteLastSave(online::Engine& engine, std::string* out) {
  AppendInteger(out, engine.last_save_unix_s());
}

}  // namespace

void AppendSaveReply(std::string* out, const Status& status) {
  if (status.ok()) {
    AppendSimpleString(out, "OK");
    return;
  }
  if (status.code() == StatusCode::kAlreadyExists) {
    // The single-flight guard trips as AlreadyExists inside the Engine;
    // on the wire it is the operator-facing -BUSY.
    AppendError(out, "BUSY", status.message());
    return;
  }
  AppendStatusError(out, status);
}

bool Execute(online::Engine& engine, const Command& command,
             std::string* out) {
  if (command.name == "PING") {
    ExecutePing(out);
  } else if (command.name == "INGEST") {
    ExecuteIngest(engine, command, out);
  } else if (command.name == "RECOMMEND") {
    ExecuteRecommend(engine, command, out);
  } else if (command.name == "NEIGHBORS") {
    ExecuteNeighbors(engine, command, out);
  } else if (command.name == "HISTORY") {
    ExecuteHistory(engine, command, out);
  } else if (command.name == "STATS") {
    ExecuteStats(engine, out);
  } else if (command.name == "SHARDSTATS") {
    ExecuteShardStats(engine, out);
  } else if (command.name == "SAVE") {
    ExecuteSave(engine, out);
  } else if (command.name == "BGSAVE") {
    ExecuteBgSave(engine, out);
  } else if (command.name == "LASTSAVE") {
    ExecuteLastSave(engine, out);
  } else if (command.name == "QUIT") {
    AppendSimpleString(out, "OK");
    return true;
  } else {
    AppendArgError(out, "unknown command '" + command.name + "'");
  }
  return false;
}

}  // namespace sccf::server
