// sccf_server: the SCCF serving daemon. Bootstraps an Engine over a
// synthetic corpus (deterministic for a fixed seed), optionally recovers
// ingested state from --data_dir (snapshot + journal replay, journaling
// every ingest from then on), and serves the wire protocol
// (src/server/protocol.h) until SIGTERM/SIGINT, which triggers the
// graceful drain and a clean exit 0.
//
// Flags:
//   --host=ADDR            bind address       (default 127.0.0.1)
//   --port=N               TCP port, 0 = kernel-assigned (default 7700)
//   --max_connections=N    concurrent-connection cap (default 1024)
//   --read_buffer=BYTES    per-connection request-frame cap (default 1 MiB)
//   --drain_timeout=MS     graceful-drain bound (default 5000)
//   --idle_timeout=MS      reap connections idle this long with -TIMEOUT
//                          (default 0 = off)
//   --write_stall_timeout=MS  force-close connections whose reply backlog
//                          makes no progress this long (default 0 = off)
//   --max_inflight=BYTES   global unflushed-reply budget; over it, new
//                          commands get -OVERLOADED (default 0 = off)
//   --users=N --items=N    synthetic corpus size (pre-filter; the actual
//                          post-filter sizes are printed at startup)
//   --dim=N                embedding dim (default 32)
//   --shards=N             0 = hardware concurrency (default)
//   --compaction=N         write-buffer flush threshold (default 32)
//   --compaction_interval=MS  wall-clock compaction bound (default 0)
//   --storage=MODE         index embedding storage: fp32 (default) or
//                          sq8 (int8 codes + per-row scale/offset, ~4x
//                          smaller rows; see docs/OPERATIONS.md)
//   --background           enable the background compaction thread
//   --seed=N               corpus seed (default 7)
//   --data_dir=DIR         persistence directory: recover on start
//                          (snapshot + journal replay), journal every
//                          ingest, honor SAVE/LASTSAVE (default: off,
//                          fully in-memory)
//   --journal_fsync        fsync the journal after every appended record
//                          (machine-crash durability; see
//                          docs/OPERATIONS.md for the tradeoff)
//
// Startup prints two machine-parsable lines (scripts/ci.sh and
// bench/bench_server consume them):
//   corpus users=<post-filter users> items=<post-filter items>
//   listening on <host>:<port>

#include <csignal>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>

#include "data/split.h"
#include "data/synthetic.h"
#include "models/fism.h"
#include "online/engine.h"
#include "server/server.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

using namespace sccf;

// The handlers are installed *before* the (multi-second, corpus-sized)
// bootstrap so a Ctrl-C during startup is never the default
// terminate-without-drain action: until the server exists the handler
// just records the signal, and main checks the flag right after
// Start() — a signal in the window drains immediately instead of being
// lost. Both are atomics because the handler can run on any thread at
// any instant.
std::atomic<server::Server*> g_server{nullptr};
std::atomic<bool> g_signal_pending{false};

// Shutdown() is async-signal-safe by contract (one write(2) to an
// eventfd), so this handler is too.
void HandleSignal(int /*signum*/) {
  g_signal_pending.store(true, std::memory_order_release);
  server::Server* srv = g_server.load(std::memory_order_acquire);
  if (srv != nullptr) srv->Shutdown();
}

struct Config {
  server::ServerOptions server;
  size_t users = 2000;
  size_t items = 1500;
  size_t dim = 32;
  size_t shards = 0;
  size_t compaction = 32;
  int64_t compaction_interval_ms = 0;
  quant::Storage storage = quant::Storage::kFp32;
  bool background = false;
  uint64_t seed = 7;
  std::string data_dir;
  bool journal_fsync = false;
};

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    int64_t v = 0;
    if (arg.rfind("--host=", 0) == 0) {
      cfg.server.bind_address = val("--host=");
    } else if (arg.rfind("--port=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--port="), &v) && v >= 0 && v <= 65535)
          << "bad --port";
      cfg.server.port = static_cast<uint16_t>(v);
    } else if (arg.rfind("--max_connections=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--max_connections="), &v) && v >= 1)
          << "bad --max_connections";
      cfg.server.max_connections = static_cast<int>(v);
    } else if (arg.rfind("--read_buffer=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--read_buffer="), &v) && v >= 64)
          << "bad --read_buffer";
      cfg.server.read_buffer_limit = static_cast<size_t>(v);
    } else if (arg.rfind("--drain_timeout=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--drain_timeout="), &v))
          << "bad --drain_timeout";
      cfg.server.drain_timeout_ms = v;
    } else if (arg.rfind("--idle_timeout=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--idle_timeout="), &v) && v >= 0)
          << "bad --idle_timeout";
      cfg.server.idle_timeout_ms = v;
    } else if (arg.rfind("--write_stall_timeout=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--write_stall_timeout="), &v) && v >= 0)
          << "bad --write_stall_timeout";
      cfg.server.write_stall_timeout_ms = v;
    } else if (arg.rfind("--max_inflight=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--max_inflight="), &v) && v >= 0)
          << "bad --max_inflight";
      cfg.server.max_inflight_bytes = static_cast<size_t>(v);
    } else if (arg.rfind("--users=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--users="), &v) && v > 0) << "bad --users";
      cfg.users = static_cast<size_t>(v);
    } else if (arg.rfind("--items=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--items="), &v) && v > 0) << "bad --items";
      cfg.items = static_cast<size_t>(v);
    } else if (arg.rfind("--dim=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--dim="), &v) && v > 0) << "bad --dim";
      cfg.dim = static_cast<size_t>(v);
    } else if (arg.rfind("--shards=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--shards="), &v) && v >= 0)
          << "bad --shards";
      cfg.shards = static_cast<size_t>(v);
    } else if (arg.rfind("--compaction=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--compaction="), &v) && v >= 0)
          << "bad --compaction";
      cfg.compaction = static_cast<size_t>(v);
    } else if (arg.rfind("--compaction_interval=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--compaction_interval="), &v) && v >= 0)
          << "bad --compaction_interval";
      cfg.compaction_interval_ms = v;
    } else if (arg.rfind("--storage=", 0) == 0) {
      SCCF_CHECK(quant::ParseStorage(val("--storage="), &cfg.storage))
          << "bad --storage (expected fp32 or sq8)";
    } else if (arg == "--background") {
      cfg.background = true;
    } else if (arg.rfind("--data_dir=", 0) == 0) {
      cfg.data_dir = val("--data_dir=");
      SCCF_CHECK(!cfg.data_dir.empty()) << "bad --data_dir";
    } else if (arg == "--journal_fsync") {
      cfg.journal_fsync = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      SCCF_CHECK(ParseInt64(val("--seed="), &v) && v >= 0) << "bad --seed";
      cfg.seed = static_cast<uint64_t>(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  // Install the handlers before the expensive bootstrap: SIGINT and
  // SIGTERM both mean "drain gracefully" from the very first instant,
  // including the startup window where there is no server yet.
  struct sigaction sa {};
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // writes to dead peers report EPIPE instead

  data::SyntheticConfig syn;
  syn.name = "server-corpus";
  syn.num_users = cfg.users;
  syn.num_items = cfg.items;
  syn.num_clusters = 20;
  syn.min_actions = 10;
  syn.max_actions = 30;
  syn.seed = cfg.seed;
  data::SyntheticGenerator gen(syn);
  auto dataset = gen.Generate();
  SCCF_CHECK(dataset.ok()) << dataset.status().ToString();
  data::LeaveOneOutSplit split(*dataset);

  // Untrained FISM: real inference path, deterministic weights. A
  // trained checkpoint slots in here once persistence lands.
  models::Fism::Options fopts;
  fopts.dim = cfg.dim;
  fopts.epochs = 0;
  models::Fism fism(fopts);
  SCCF_CHECK(fism.Fit(split).ok());

  online::Engine::Options eopts;
  eopts.num_shards = cfg.shards;
  eopts.compaction_threshold = cfg.compaction;
  eopts.compaction_interval_ms = cfg.compaction_interval_ms;
  eopts.background_compaction = cfg.background;
  eopts.storage = cfg.storage;
  eopts.recover_dir = cfg.data_dir;
  eopts.journal_fsync = cfg.journal_fsync;
  online::Engine engine(fism, eopts);
  // The corpus bootstrap is deterministic for a fixed seed, so recovery
  // only has to restore what ingest changed since: Bootstrap rebuilds
  // the corpus state, then (with --data_dir) loads the snapshot and
  // replays the journal tail on top.
  const Status booted = engine.BootstrapFromSplit(split);
  SCCF_CHECK(booted.ok()) << booted.ToString();

  server::Server srv(engine, cfg.server);
  const Status started = srv.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "failed to start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  g_server.store(&srv, std::memory_order_release);
  // A signal that landed between handler installation and here saw a
  // null g_server and could only set the flag — honor it now.
  if (g_signal_pending.load(std::memory_order_acquire)) srv.Shutdown();

  // Generation may compact ids; clients need the live corpus bounds.
  std::printf("corpus users=%zu items=%zu\n", split.num_users(),
              dataset->num_items());
  std::printf("listening on %s:%u\n", cfg.server.bind_address.c_str(),
              static_cast<unsigned>(srv.port()));
  std::fflush(stdout);

  srv.Wait();
  const server::Server::Stats stats = srv.stats();
  std::printf(
      "drained: accepted=%llu refused=%llu commands=%llu "
      "protocol_errors=%llu shed=%llu timed_out=%llu\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.connections_refused),
      static_cast<unsigned long long>(stats.commands_executed),
      static_cast<unsigned long long>(stats.protocol_errors),
      static_cast<unsigned long long>(stats.commands_shed),
      static_cast<unsigned long long>(stats.connections_timed_out));
  return 0;
}
