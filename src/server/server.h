#ifndef SCCF_SERVER_SERVER_H_
#define SCCF_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "online/engine.h"
#include "server/protocol.h"
#include "server/timer_wheel.h"
#include "util/status.h"

namespace sccf::server {

struct ServerOptions {
  /// IPv4 address to bind; "0.0.0.0" serves all interfaces.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 lets the kernel pick one (see Server::port(), used by
  /// the loopback tests to avoid collisions).
  uint16_t port = 7700;
  /// Concurrent-connection cap. Excess accepts are answered with a
  /// best-effort `-OVERLOADED max connections reached` and closed
  /// immediately, so a flood degrades loudly instead of starving the
  /// event loop.
  int max_connections = 1024;
  /// Per-connection cap on one request frame's encoded size (fed to the
  /// protocol parser). A client streaming an unbounded frame is cut off
  /// with a protocol error instead of growing the read buffer forever.
  size_t read_buffer_limit = 1 << 20;
  /// Per-connection cap on buffered unsent reply bytes. A consumer that
  /// pipelines heavy queries but never reads is disconnected when its
  /// backlog passes this (slow-consumer protection for the other
  /// connections sharing the loop).
  size_t write_buffer_limit = 64u << 20;
  /// Upper bound on the graceful drain: connections still unflushed
  /// this long after Shutdown() are force-closed so SIGTERM always
  /// terminates. <= 0 waits forever.
  int64_t drain_timeout_ms = 5000;
  /// Idle reaping: a connection that sends no bytes for this long is
  /// answered `-TIMEOUT idle connection` and closed, freeing its slot
  /// for the max_connections budget. 0 disables (the default — loopback
  /// tests and trusted meshes don't want surprise reaps).
  int64_t idle_timeout_ms = 0;
  /// Write-stall reaping: a connection whose reply backlog makes no
  /// forward progress for this long (peer stopped reading) is
  /// force-closed. Complements write_buffer_limit, which only catches
  /// consumers slow enough to accumulate bytes — this catches ones that
  /// are simply wedged. 0 disables.
  int64_t write_stall_timeout_ms = 0;
  /// Global admission budget: when the sum of unflushed reply bytes
  /// across all connections exceeds this, newly parsed commands are
  /// refused with `-OVERLOADED` (QUIT still honored) until the backlog
  /// drains. Sheds cheapest-first: commands are refused before any
  /// connection is dropped. 0 disables (unlimited).
  size_t max_inflight_bytes = 0;
};

/// Single-threaded epoll reactor serving the SCCF wire protocol
/// (server/protocol.h) over `online::Engine` (the engine outlives the
/// server; the server never owns it).
///
/// Threading model: Start() binds/listens, then spawns ONE loop thread
/// that does everything — level-triggered epoll over the listen socket,
/// an eventfd (shutdown wakeup), and every connection; non-blocking
/// accept/read/write; command execution inline on the loop thread.
/// There is deliberately no worker pool at this layer: the Engine is
/// already internally sharded and thread-safe, so the scaling story is
/// "run the loop, let the Engine's shards do the parallel work" — and a
/// one-thread reactor makes the reply order per connection trivially
/// the request order (pipelining correctness by construction).
///
/// Graceful drain (what SIGTERM maps to in sccf_server): Shutdown() is
/// async-signal-safe (a single eventfd write). The loop then
///   1. stops accepting (listen socket closed),
///   2. does a final read sweep per connection and half-closes reads —
///      requests already received are executed, later bytes are not,
///   3. flushes every pending reply byte, closing each connection as
///      its buffer empties (in-flight responses complete),
///   4. stops the Engine's background compaction thread and returns,
/// bounded by ServerOptions::drain_timeout_ms. Wait() joins the loop
/// thread; the destructor does Shutdown() + Wait() if still running.
///
/// Error isolation: a malformed frame answers `-ERR ...`; a fatally
/// desynchronized or oversized frame additionally closes that one
/// connection. Other connections never observe it.
///
/// Overload resilience (see docs/OPERATIONS.md "Overload &
/// availability"):
///   - BGSAVE runs on an Engine helper thread; the issuing connection's
///     reply is deferred (its later pipelined requests stay buffered,
///     preserving order) and delivered via an eventfd completion wakeup
///     while every other connection keeps being served.
///   - A lazy-cancellation timer wheel drives idle and write-stall
///     deadlines plus the accept re-arm backoff; the epoll timeout is
///     derived from the earliest live deadline, so a server with no
///     timers armed blocks indefinitely (zero idle wakeups — pinned by
///     the fault-injection suite via Stats::loop_wakeups).
///   - EMFILE/ENFILE on accept pauses the listen fd's EPOLLIN and
///     re-arms it ~100ms later instead of busy-spinning the
///     level-triggered loop.
///   - Connection read/write/accept go through sccf::sys (the syscall
///     fault-injection shim); the two eventfds stay on raw syscalls so
///     injected faults can never sever the loop's own wakeup channel.
class Server {
 public:
  Server(online::Engine& engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the loop thread. Once per Server.
  Status Start();

  /// The bound port (resolves ServerOptions::port == 0). Valid after
  /// Start() succeeds.
  uint16_t port() const { return port_; }

  /// Begins the graceful drain. Async-signal-safe (one write(2) to an
  /// eventfd) and idempotent; safe from any thread or signal handler.
  void Shutdown();

  /// Joins the loop thread (returns immediately if never started).
  void Wait();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Loop-thread counters, readable from any thread.
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_refused = 0;
    uint64_t commands_executed = 0;
    uint64_t protocol_errors = 0;
    /// Connections reaped by the idle or write-stall deadline.
    uint64_t connections_timed_out = 0;
    /// Commands refused with -OVERLOADED by the in-flight byte budget.
    uint64_t commands_shed = 0;
    /// epoll_wait returns. The fault-injection suite asserts this stays
    /// bounded under EINTR/EMFILE storms — the no-busy-spin contract.
    uint64_t loop_wakeups = 0;
    /// Current sum of unflushed reply bytes (the admission signal); the
    /// overload tests poll this to sequence deterministically.
    uint64_t inflight_bytes = 0;
  };
  Stats stats() const;

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;  // monotonic; BGSAVE completions address by id, not
                      // fd (the kernel recycles fds, ids never lie)
    RequestParser parser;
    std::string out;       // serialized replies not yet written
    size_t out_offset = 0; // flushed prefix of `out`
    bool close_after_flush = false;
    bool read_closed = false;  // EOF seen or reads half-closed by drain
    /// BGSAVE issued, completion not yet delivered: parsing is paused
    /// (later pipelined requests stay buffered — reply order preserved
    /// by construction) and the connection is exempt from idle reaping
    /// and from close-on-flush until the deferred reply lands.
    bool awaiting_bgsave = false;
    bool stall_armed = false;  // a kWriteStall wheel entry is live
    /// Lazy-refresh deadlines: the hot paths only store here; the wheel
    /// entry armed at accept/arm time re-validates against these when
    /// it fires and re-arms itself if the deadline moved.
    int64_t idle_deadline_ns = 0;
    int64_t stall_deadline_ns = 0;
    uint32_t registered_events = 0;  // epoll interest currently installed
  };

  void Loop();
  void AcceptReady();
  /// Reads until EAGAIN/EOF and executes every complete frame.
  void ConnectionReadable(Connection& conn);
  /// Writes until EAGAIN or the buffer empties; updates EPOLLOUT
  /// interest; closes when flushed and the connection is finished.
  void ConnectionWritable(Connection& conn);
  /// Drains the parser and executes every complete frame. Returns false
  /// if it closed (and thereby destroyed) `conn` — the slow-consumer
  /// cut — in which case the caller must not touch `conn` again.
  bool ExecuteParsed(Connection& conn);
  void UpdateInterest(Connection& conn);
  void CloseConnection(int fd);
  void BeginDrain();
  /// Delivers queued BGSAVE completions: appends the deferred reply,
  /// resumes the connection's paused parse, flushes.
  void HandleBgSaveDone();
  /// Fires expired wheel entries (idle reap, write-stall cut, accept
  /// re-arm), re-validating each against the connection's current
  /// deadline (lazy cancellation).
  void ProcessTimers(int64_t now_ns);
  /// epoll_wait timeout from the drain tick and the earliest live wheel
  /// deadline; -1 (block forever) when neither applies.
  int ComputeEpollTimeoutMs(int64_t now_ns);
  /// Adjusts the global unflushed-reply-byte account by the growth of
  /// `conn.out` across an append site.
  void AccountAppended(size_t before_size, size_t after_size);

  online::Engine* engine_;
  ServerOptions options_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;       // eventfd: Shutdown() -> loop wakeup
  int bgsave_done_fd_ = -1;  // eventfd: BGSAVE helper thread -> loop

  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  bool started_ = false;
  bool draining_ = false;
  bool accept_paused_ = false;  // EMFILE backoff holds EPOLLIN off listen_fd_
  int64_t drain_deadline_ns_ = 0;
  uint64_t next_connection_id_ = 1;
  /// Sum of unflushed reply bytes across all connections — the
  /// admission-control signal. Written only by the loop thread; atomic
  /// so stats() can read it from outside.
  std::atomic<size_t> inflight_bytes_{0};

  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  TimerWheel wheel_;  // loop thread only

  /// BGSAVE completions cross from the Engine helper thread to the loop
  /// thread here: push under the mutex, then one raw eventfd write.
  std::mutex bgsave_mu_;
  std::vector<std::pair<uint64_t, Status>> bgsave_results_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> refused_{0};
  std::atomic<uint64_t> commands_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> timed_out_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> wakeups_{0};
};

}  // namespace sccf::server

#endif  // SCCF_SERVER_SERVER_H_
