#ifndef SCCF_SERVER_SERVER_H_
#define SCCF_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "online/engine.h"
#include "server/protocol.h"
#include "util/status.h"

namespace sccf::server {

struct ServerOptions {
  /// IPv4 address to bind; "0.0.0.0" serves all interfaces.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 lets the kernel pick one (see Server::port(), used by
  /// the loopback tests to avoid collisions).
  uint16_t port = 7700;
  /// Concurrent-connection cap. Excess accepts are answered with a
  /// best-effort `-ERR max connections reached` and closed immediately,
  /// so a flood degrades loudly instead of starving the event loop.
  int max_connections = 1024;
  /// Per-connection cap on one request frame's encoded size (fed to the
  /// protocol parser). A client streaming an unbounded frame is cut off
  /// with a protocol error instead of growing the read buffer forever.
  size_t read_buffer_limit = 1 << 20;
  /// Per-connection cap on buffered unsent reply bytes. A consumer that
  /// pipelines heavy queries but never reads is disconnected when its
  /// backlog passes this (slow-consumer protection for the other
  /// connections sharing the loop).
  size_t write_buffer_limit = 64u << 20;
  /// Upper bound on the graceful drain: connections still unflushed
  /// this long after Shutdown() are force-closed so SIGTERM always
  /// terminates. <= 0 waits forever.
  int64_t drain_timeout_ms = 5000;
};

/// Single-threaded epoll reactor serving the SCCF wire protocol
/// (server/protocol.h) over `online::Engine` (the engine outlives the
/// server; the server never owns it).
///
/// Threading model: Start() binds/listens, then spawns ONE loop thread
/// that does everything — level-triggered epoll over the listen socket,
/// an eventfd (shutdown wakeup), and every connection; non-blocking
/// accept/read/write; command execution inline on the loop thread.
/// There is deliberately no worker pool at this layer: the Engine is
/// already internally sharded and thread-safe, so the scaling story is
/// "run the loop, let the Engine's shards do the parallel work" — and a
/// one-thread reactor makes the reply order per connection trivially
/// the request order (pipelining correctness by construction).
///
/// Graceful drain (what SIGTERM maps to in sccf_server): Shutdown() is
/// async-signal-safe (a single eventfd write). The loop then
///   1. stops accepting (listen socket closed),
///   2. does a final read sweep per connection and half-closes reads —
///      requests already received are executed, later bytes are not,
///   3. flushes every pending reply byte, closing each connection as
///      its buffer empties (in-flight responses complete),
///   4. stops the Engine's background compaction thread and returns,
/// bounded by ServerOptions::drain_timeout_ms. Wait() joins the loop
/// thread; the destructor does Shutdown() + Wait() if still running.
///
/// Error isolation: a malformed frame answers `-ERR ...`; a fatally
/// desynchronized or oversized frame additionally closes that one
/// connection. Other connections never observe it.
class Server {
 public:
  Server(online::Engine& engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the loop thread. Once per Server.
  Status Start();

  /// The bound port (resolves ServerOptions::port == 0). Valid after
  /// Start() succeeds.
  uint16_t port() const { return port_; }

  /// Begins the graceful drain. Async-signal-safe (one write(2) to an
  /// eventfd) and idempotent; safe from any thread or signal handler.
  void Shutdown();

  /// Joins the loop thread (returns immediately if never started).
  void Wait();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Loop-thread counters, readable from any thread.
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_refused = 0;
    uint64_t commands_executed = 0;
    uint64_t protocol_errors = 0;
  };
  Stats stats() const;

 private:
  struct Connection {
    int fd = -1;
    RequestParser parser;
    std::string out;       // serialized replies not yet written
    size_t out_offset = 0; // flushed prefix of `out`
    bool close_after_flush = false;
    bool read_closed = false;  // EOF seen or reads half-closed by drain
    uint32_t registered_events = 0;  // epoll interest currently installed
  };

  void Loop();
  void AcceptReady();
  /// Reads until EAGAIN/EOF and executes every complete frame.
  void ConnectionReadable(Connection& conn);
  /// Writes until EAGAIN or the buffer empties; updates EPOLLOUT
  /// interest; closes when flushed and the connection is finished.
  void ConnectionWritable(Connection& conn);
  /// Drains the parser and executes every complete frame. Returns false
  /// if it closed (and thereby destroyed) `conn` — the slow-consumer
  /// cut — in which case the caller must not touch `conn` again.
  bool ExecuteParsed(Connection& conn);
  void UpdateInterest(Connection& conn);
  void CloseConnection(int fd);
  void BeginDrain();

  online::Engine* engine_;
  ServerOptions options_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;  // eventfd: Shutdown() -> loop wakeup

  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  bool started_ = false;
  bool draining_ = false;
  int64_t drain_deadline_ns_ = 0;

  std::unordered_map<int, std::unique_ptr<Connection>> connections_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> refused_{0};
  std::atomic<uint64_t> commands_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace sccf::server

#endif  // SCCF_SERVER_SERVER_H_
