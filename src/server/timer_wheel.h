#ifndef SCCF_SERVER_TIMER_WHEEL_H_
#define SCCF_SERVER_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace sccf::server {

/// Deadline source for the single-threaded reactor: idle timeouts,
/// write-stall timeouts, and the accept re-arm backoff all live here.
///
/// Design: a min-heap of {deadline_ns, fd, kind, generation} with *lazy
/// cancellation* — nothing is ever removed from the middle. Refreshing
/// a connection's deadline (every read resets its idle timer) just
/// pushes a new entry; closing a connection invalidates its entries by
/// bumping the per-fd generation. Stale entries surface at the top of
/// the heap eventually and are discarded in PopExpired. This trades a
/// little heap memory (bounded by events since the last expiry sweep,
/// itself bounded by the timeout windows) for O(log n) arm/refresh and
/// zero bookkeeping on the reactor's hot read path.
///
/// The reactor derives its epoll_wait timeout from NextDeadlineNs():
/// block forever when no timers are armed, otherwise sleep exactly
/// until the earliest deadline — no fixed-rate ticking, so an idle
/// server with no timeouts configured makes zero spurious wakeups (a
/// property the fault-injection suite pins).
///
/// Single-threaded by construction (reactor-only); not locked.
class TimerWheel {
 public:
  enum class Kind : uint8_t {
    kIdle = 0,        ///< connection produced no bytes for idle_timeout
    kWriteStall = 1,  ///< reply backlog made no progress for stall_timeout
    kRearmAccept = 2, ///< re-enable the listen fd after EMFILE backoff
  };

  struct Expired {
    int fd = -1;
    Kind kind = Kind::kIdle;
  };

  /// Arms (or refreshes) a timer for `fd`. Multiple kinds per fd
  /// coexist; re-arming the same kind supersedes the older entry (the
  /// older one becomes stale and is discarded when it surfaces).
  void Arm(int fd, Kind kind, int64_t deadline_ns);

  /// Invalidates every armed timer for `fd`. Call when the connection
  /// closes — fds are recycled by the kernel, and a stale deadline must
  /// never fire against the slot's next tenant.
  void CancelAll(int fd);

  /// Earliest live deadline, or -1 when nothing is armed (sleep
  /// forever). Prunes stale heads as a side effect, so the value is
  /// exact, not an early stale bound.
  int64_t NextDeadlineNs();

  /// Pops every entry whose deadline is <= now and is still live.
  /// An entry superseded by a later Arm of the same (fd, kind) is
  /// skipped; the caller re-validates against the connection's actual
  /// deadline anyway (cheap belt and braces for the lazy scheme).
  std::vector<Expired> PopExpired(int64_t now_ns);

  size_t heap_size() const { return heap_.size(); }

 private:
  struct Entry {
    int64_t deadline_ns;
    int fd;
    Kind kind;
    uint64_t sequence;  ///< Arm() order; only the newest per (fd,kind) is live
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.deadline_ns > b.deadline_ns;
    }
  };

  bool IsLive(const Entry& e) const;

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  /// newest sequence per (fd, kind); keyed fd*3+kind in a flat map.
  std::vector<uint64_t> live_sequence_;  // indexed by fd*3+kind, 0 = none
  uint64_t next_sequence_ = 1;
};

}  // namespace sccf::server

#endif  // SCCF_SERVER_TIMER_WHEEL_H_
