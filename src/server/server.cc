#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "server/dispatch.h"
#include "util/logging.h"

namespace sccf::server {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

Server::Server(online::Engine& engine, ServerOptions options)
    : engine_(&engine), options_(std::move(options)) {}

Server::~Server() {
  Shutdown();
  Wait();
}

Status Server::Start() {
  if (started_) {
    return Status::FailedPrecondition("Start may be called once");
  }
  if (options_.max_connections < 1) {
    return Status::InvalidArgument("max_connections must be positive");
  }
  if (options_.read_buffer_limit == 0) {
    return Status::InvalidArgument("read_buffer_limit must be positive");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind_address " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = Errno("bind " + options_.bind_address + ":" +
                            std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 511) != 0) {
    const Status st = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    const Status st = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wakeup_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wakeup_fd_ < 0) {
    const Status st = Errno("epoll_create1/eventfd");
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = wakeup_fd_ = -1;
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  SCCF_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
  ev.data.fd = wakeup_fd_;
  SCCF_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) == 0);

  started_ = true;
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void Server::Shutdown() {
  if (wakeup_fd_ < 0) return;
  const uint64_t one = 1;
  // Async-signal-safe by design: a single write(2); EAGAIN (counter
  // saturated by an earlier Shutdown) is as good as success.
  [[maybe_unused]] const ssize_t n =
      ::write(wakeup_fd_, &one, sizeof(one));
}

void Server::Wait() {
  if (loop_thread_.joinable()) loop_thread_.join();
}

Server::Stats Server::stats() const {
  Stats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_refused = refused_.load(std::memory_order_relaxed);
  s.commands_executed = commands_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return s;
}

void Server::Loop() {
  std::vector<epoll_event> events(256);
  while (true) {
    const int timeout_ms = draining_ ? 20 : -1;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      SCCF_LOG_ERROR << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t mask = events[i].events;
      if (fd == wakeup_fd_) {
        uint64_t drained = 0;
        while (::read(wakeup_fd_, &drained, sizeof(drained)) > 0) {
        }
        if (!draining_) BeginDrain();
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection& conn = *it->second;
      if ((mask & (EPOLLERR | EPOLLHUP)) != 0 && (mask & EPOLLIN) == 0) {
        CloseConnection(fd);
        continue;
      }
      if ((mask & EPOLLIN) != 0) ConnectionReadable(conn);
      // Readable handling may have closed the connection; re-look-up.
      auto again = connections_.find(fd);
      if (again == connections_.end()) continue;
      if ((mask & EPOLLOUT) != 0) ConnectionWritable(*again->second);
    }
    if (draining_) {
      if (connections_.empty()) break;
      if (options_.drain_timeout_ms > 0 && NowNs() >= drain_deadline_ns_) {
        SCCF_LOG_WARNING << "drain timeout: force-closing "
                         << connections_.size() << " connection(s)";
        std::vector<int> fds;
        fds.reserve(connections_.size());
        for (const auto& [fd, conn] : connections_) fds.push_back(fd);
        for (int fd : fds) CloseConnection(fd);
        break;
      }
    }
  }
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (int fd : fds) CloseConnection(fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::close(epoll_fd_);
  epoll_fd_ = -1;
  // wakeup_fd_ is closed last and left readable until here so that
  // Shutdown() racing the loop exit stays a harmless write.
  ::close(wakeup_fd_);
  wakeup_fd_ = -1;
  // Drain sequence, final step: quiesce the Engine's background thread
  // so process exit after Wait() is clean (no sweeps against a world
  // that is being torn down).
  engine_->StopBackgroundCompaction();
  running_.store(false, std::memory_order_release);
}

void Server::BeginDrain() {
  draining_ = true;
  drain_deadline_ns_ =
      NowNs() + options_.drain_timeout_ms * 1'000'000;
  // 1. Stop accepting.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  ::close(listen_fd_);
  listen_fd_ = -1;
  // 2. Final read sweep per connection — everything the kernel already
  // has is executed — then half-close reads: bytes sent after this
  // point are not served. 3. happens as buffers flush (each connection
  // closes the moment its pending replies are on the wire).
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (int fd : fds) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    Connection& conn = *it->second;
    ConnectionReadable(conn);
    auto again = connections_.find(fd);
    if (again == connections_.end()) continue;
    ::shutdown(fd, SHUT_RD);
    again->second->read_closed = true;
    ConnectionWritable(*again->second);
  }
}

void Server::AcceptReady() {
  while (listen_fd_ >= 0) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        SCCF_LOG_WARNING << "accept: out of file descriptors";
        return;
      }
      // Transient per-connection errors (ECONNABORTED etc.): keep going.
      continue;
    }
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      static constexpr char kRefusal[] = "-ERR max connections reached\r\n";
      [[maybe_unused]] const ssize_t n =
          ::write(fd, kRefusal, sizeof(kRefusal) - 1);
      ::close(fd);
      refused_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    RequestParser::Limits limits;
    limits.max_frame_bytes = options_.read_buffer_limit;
    conn->parser = RequestParser(limits);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conn->registered_events = EPOLLIN;
    connections_.emplace(fd, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::ConnectionReadable(Connection& conn) {
  if (!conn.read_closed) {
    char buf[16384];
    while (true) {
      const ssize_t r = ::read(conn.fd, buf, sizeof(buf));
      if (r > 0) {
        conn.parser.Feed(std::string_view(buf, static_cast<size_t>(r)));
        continue;
      }
      if (r == 0) {
        // Peer half-closed its write side. Keep the connection until
        // every reply to what it already sent is flushed (nc-style
        // `echo ... | nc` clients depend on this).
        conn.read_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(conn.fd);
      return;
    }
  }
  // ExecuteParsed may close (and free) the connection on the
  // slow-consumer path; only touch it again if it survived.
  if (!ExecuteParsed(conn)) return;
  ConnectionWritable(conn);
}

bool Server::ExecuteParsed(Connection& conn) {
  Command command;
  std::string error;
  while (!conn.close_after_flush) {
    const RequestParser::Result result = conn.parser.Next(&command, &error);
    if (result == RequestParser::Result::kNeedMore) break;
    if (result == RequestParser::Result::kCommand) {
      if (Execute(*engine_, command, &conn.out)) {
        conn.close_after_flush = true;  // QUIT
      }
      commands_.fetch_add(1, std::memory_order_relaxed);
    } else if (result == RequestParser::Result::kError) {
      AppendError(&conn.out, "ERR", error);
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    } else {  // kFatal: reply, then drop only this connection
      AppendError(&conn.out, "ERR", error);
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      conn.close_after_flush = true;
    }
    if (conn.out.size() - conn.out_offset > options_.write_buffer_limit) {
      // Slow consumer: pipelines faster than it reads. Cut it loose
      // before its backlog eats the process.
      CloseConnection(conn.fd);
      return false;
    }
  }
  return true;
}

void Server::ConnectionWritable(Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    const ssize_t w = ::write(conn.fd, conn.out.data() + conn.out_offset,
                              conn.out.size() - conn.out_offset);
    if (w > 0) {
      conn.out_offset += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (w < 0 && errno == EINTR) continue;
    CloseConnection(conn.fd);  // EPIPE/ECONNRESET/...
    return;
  }
  if (conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
    if (conn.close_after_flush || conn.read_closed) {
      CloseConnection(conn.fd);
      return;
    }
  }
  UpdateInterest(conn);
}

void Server::UpdateInterest(Connection& conn) {
  // Once reads are closed, EOF keeps a level-triggered EPOLLIN
  // permanently hot — dropping it is what lets a connection that is
  // only flushing its tail wait quietly on EPOLLOUT instead of
  // spinning the loop until the buffer drains.
  const uint32_t want =
      (conn.read_closed ? 0u : static_cast<uint32_t>(EPOLLIN)) |
      (conn.out_offset < conn.out.size() ? static_cast<uint32_t>(EPOLLOUT)
                                         : 0u);
  if (want == conn.registered_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn.fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.registered_events = want;
  }
}

void Server::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
}

}  // namespace sccf::server
