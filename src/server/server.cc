#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "server/dispatch.h"
#include "util/logging.h"
#include "util/syscall_shim.h"

namespace sccf::server {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// How long the listen fd stays off epoll after EMFILE/ENFILE before a
/// re-arm attempt. Long enough that an fd-exhausted process is not
/// woken thousands of times a second by the level-triggered backlog,
/// short enough that recovery (something closed an fd) is near-instant
/// on a human timescale.
constexpr int64_t kAcceptRearmDelayNs = 100'000'000;  // 100ms

}  // namespace

Server::Server(online::Engine& engine, ServerOptions options)
    : engine_(&engine), options_(std::move(options)) {}

Server::~Server() {
  Shutdown();
  Wait();
}

Status Server::Start() {
  if (started_) {
    return Status::FailedPrecondition("Start may be called once");
  }
  if (options_.max_connections < 1) {
    return Status::InvalidArgument("max_connections must be positive");
  }
  if (options_.read_buffer_limit == 0) {
    return Status::InvalidArgument("read_buffer_limit must be positive");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind_address " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = Errno("bind " + options_.bind_address + ":" +
                            std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 511) != 0) {
    const Status st = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    const Status st = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wakeup_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  bgsave_done_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wakeup_fd_ < 0 || bgsave_done_fd_ < 0) {
    const Status st = Errno("epoll_create1/eventfd");
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
    if (bgsave_done_fd_ >= 0) ::close(bgsave_done_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = wakeup_fd_ = bgsave_done_fd_ = -1;
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  SCCF_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
  ev.data.fd = wakeup_fd_;
  SCCF_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) == 0);
  ev.data.fd = bgsave_done_fd_;
  SCCF_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, bgsave_done_fd_, &ev) ==
             0);

  started_ = true;
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void Server::Shutdown() {
  if (wakeup_fd_ < 0) return;
  const uint64_t one = 1;
  // Async-signal-safe by design: a single write(2); EAGAIN (counter
  // saturated by an earlier Shutdown) is as good as success. Stays a
  // raw syscall on purpose — an injected write fault must never be
  // able to sever the shutdown channel.
  [[maybe_unused]] const ssize_t n =
      ::write(wakeup_fd_, &one, sizeof(one));
}

void Server::Wait() {
  if (loop_thread_.joinable()) loop_thread_.join();
}

Server::Stats Server::stats() const {
  Stats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_refused = refused_.load(std::memory_order_relaxed);
  s.commands_executed = commands_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.connections_timed_out = timed_out_.load(std::memory_order_relaxed);
  s.commands_shed = shed_.load(std::memory_order_relaxed);
  s.loop_wakeups = wakeups_.load(std::memory_order_relaxed);
  s.inflight_bytes = inflight_bytes_.load(std::memory_order_relaxed);
  return s;
}

int Server::ComputeEpollTimeoutMs(int64_t now_ns) {
  // Block forever unless something actually needs a wakeup: the drain
  // tick or the earliest live timer deadline. No fixed-rate tick — an
  // idle server with no timeouts configured makes zero wakeups, which
  // the fault-injection suite pins via Stats::loop_wakeups.
  int timeout_ms = draining_ ? 20 : -1;
  const int64_t next = wheel_.NextDeadlineNs();
  if (next >= 0) {
    int64_t delta_ms = (next - now_ns + 999'999) / 1'000'000;
    if (delta_ms < 0) delta_ms = 0;
    if (delta_ms > std::numeric_limits<int>::max()) {
      delta_ms = std::numeric_limits<int>::max();
    }
    if (timeout_ms < 0 || delta_ms < timeout_ms) {
      timeout_ms = static_cast<int>(delta_ms);
    }
  }
  return timeout_ms;
}

void Server::Loop() {
  std::vector<epoll_event> events(256);
  while (true) {
    const int timeout_ms = ComputeEpollTimeoutMs(NowNs());
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      SCCF_LOG_ERROR << "epoll_wait: " << std::strerror(errno);
      break;
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t mask = events[i].events;
      if (fd == wakeup_fd_) {
        uint64_t drained = 0;
        while (::read(wakeup_fd_, &drained, sizeof(drained)) > 0) {
        }
        if (!draining_) BeginDrain();
        continue;
      }
      if (fd == bgsave_done_fd_) {
        uint64_t drained = 0;
        while (::read(bgsave_done_fd_, &drained, sizeof(drained)) > 0) {
        }
        HandleBgSaveDone();
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection& conn = *it->second;
      if ((mask & (EPOLLERR | EPOLLHUP)) != 0 && (mask & EPOLLIN) == 0) {
        CloseConnection(fd);
        continue;
      }
      if ((mask & EPOLLIN) != 0) ConnectionReadable(conn);
      // Readable handling may have closed the connection; re-look-up.
      auto again = connections_.find(fd);
      if (again == connections_.end()) continue;
      if ((mask & EPOLLOUT) != 0) ConnectionWritable(*again->second);
    }
    ProcessTimers(NowNs());
    if (draining_) {
      if (connections_.empty()) break;
      if (options_.drain_timeout_ms > 0 && NowNs() >= drain_deadline_ns_) {
        SCCF_LOG_WARNING << "drain timeout: force-closing "
                         << connections_.size() << " connection(s)";
        std::vector<int> fds;
        fds.reserve(connections_.size());
        for (const auto& [fd, conn] : connections_) fds.push_back(fd);
        for (int fd : fds) CloseConnection(fd);
        break;
      }
    }
  }
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (int fd : fds) CloseConnection(fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // A BGSAVE helper thread may still be running (its connection was
  // force-closed, or drain timed out under it). Its completion callback
  // writes to bgsave_done_fd_, so that fd must stay open until the
  // thread is joined — close it after WaitForSave, never before, or a
  // recycled fd number could take the write.
  engine_->WaitForSave();
  ::close(epoll_fd_);
  epoll_fd_ = -1;
  ::close(bgsave_done_fd_);
  bgsave_done_fd_ = -1;
  // wakeup_fd_ is closed last and left readable until here so that
  // Shutdown() racing the loop exit stays a harmless write.
  ::close(wakeup_fd_);
  wakeup_fd_ = -1;
  // Drain sequence, final step: quiesce the Engine's background thread
  // so process exit after Wait() is clean (no sweeps against a world
  // that is being torn down).
  engine_->StopBackgroundCompaction();
  running_.store(false, std::memory_order_release);
}

void Server::BeginDrain() {
  draining_ = true;
  drain_deadline_ns_ =
      NowNs() + options_.drain_timeout_ms * 1'000'000;
  // 1. Stop accepting.
  wheel_.CancelAll(listen_fd_);  // a pending EMFILE re-arm must not fire
  accept_paused_ = false;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  ::close(listen_fd_);
  listen_fd_ = -1;
  // 2. Final read sweep per connection — everything the kernel already
  // has is executed — then half-close reads: bytes sent after this
  // point are not served. 3. happens as buffers flush (each connection
  // closes the moment its pending replies are on the wire; one holding
  // a deferred BGSAVE reply stays until the completion lands, bounded
  // by the drain deadline).
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (int fd : fds) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    Connection& conn = *it->second;
    ConnectionReadable(conn);
    auto again = connections_.find(fd);
    if (again == connections_.end()) continue;
    ::shutdown(fd, SHUT_RD);
    again->second->read_closed = true;
    ConnectionWritable(*again->second);
  }
}

void Server::AcceptReady() {
  while (listen_fd_ >= 0 && !accept_paused_) {
    const int fd = sys::Accept4(listen_fd_, nullptr, nullptr,
                                SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of fds. The backlog is still there, so level-triggered
        // EPOLLIN would re-wake the loop at full spin until something
        // frees an fd — instead drop the listen interest and let the
        // timer wheel re-arm it shortly.
        SCCF_LOG_WARNING
            << "accept: out of file descriptors; pausing accepts";
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        accept_paused_ = true;
        wheel_.Arm(listen_fd_, TimerWheel::Kind::kRearmAccept,
                   NowNs() + kAcceptRearmDelayNs);
        return;
      }
      // Transient per-connection errors (ECONNABORTED etc.): keep going.
      continue;
    }
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      static constexpr char kRefusal[] =
          "-OVERLOADED max connections reached\r\n";
      [[maybe_unused]] const ssize_t n =
          sys::Write(fd, kRefusal, sizeof(kRefusal) - 1);
      ::close(fd);
      refused_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_connection_id_++;
    RequestParser::Limits limits;
    limits.max_frame_bytes = options_.read_buffer_limit;
    conn->parser = RequestParser(limits);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conn->registered_events = EPOLLIN;
    if (options_.idle_timeout_ms > 0) {
      conn->idle_deadline_ns =
          NowNs() + options_.idle_timeout_ms * 1'000'000;
      wheel_.Arm(fd, TimerWheel::Kind::kIdle, conn->idle_deadline_ns);
    }
    connections_.emplace(fd, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::ConnectionReadable(Connection& conn) {
  if (!conn.read_closed) {
    char buf[16384];
    while (true) {
      const ssize_t r = sys::Read(conn.fd, buf, sizeof(buf));
      if (r > 0) {
        // Hot-path idle refresh is one store; the wheel entry armed at
        // accept re-validates against this when it fires.
        if (options_.idle_timeout_ms > 0) {
          conn.idle_deadline_ns =
              NowNs() + options_.idle_timeout_ms * 1'000'000;
        }
        conn.parser.Feed(std::string_view(buf, static_cast<size_t>(r)));
        continue;
      }
      if (r == 0) {
        // Peer half-closed its write side. Keep the connection until
        // every reply to what it already sent is flushed (nc-style
        // `echo ... | nc` clients depend on this).
        conn.read_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(conn.fd);
      return;
    }
  }
  // ExecuteParsed may close (and free) the connection on the
  // slow-consumer path; only touch it again if it survived.
  if (!ExecuteParsed(conn)) return;
  ConnectionWritable(conn);
}

bool Server::ExecuteParsed(Connection& conn) {
  Command command;
  std::string error;
  // A connection holding a deferred BGSAVE reply stops parsing: its
  // later pipelined requests stay buffered until the completion lands,
  // which preserves per-connection reply order by construction.
  while (!conn.close_after_flush && !conn.awaiting_bgsave) {
    const RequestParser::Result result = conn.parser.Next(&command, &error);
    if (result == RequestParser::Result::kNeedMore) break;
    const size_t out_before = conn.out.size();
    if (result == RequestParser::Result::kCommand) {
      const bool over_budget =
          options_.max_inflight_bytes > 0 &&
          inflight_bytes_.load(std::memory_order_relaxed) >
              options_.max_inflight_bytes;
      if (over_budget && command.name != "QUIT") {
        // Admission control, cheapest-first: refuse the command (a
        // ~60-byte error the client can retry) rather than dropping
        // anyone's connection. QUIT stays honored — refusing the one
        // command that *shrinks* load would be self-defeating.
        AppendError(&conn.out, "OVERLOADED",
                    "in-flight reply bytes over budget; retry later");
        shed_.fetch_add(1, std::memory_order_relaxed);
      } else if (command.name == "BGSAVE") {
        // Intercepted ahead of dispatch: the reactor variant defers the
        // reply to the Engine helper thread's completion wakeup. The
        // callback runs on that thread — it only queues the result and
        // pokes the eventfd (raw write: injected faults must not sever
        // the completion channel).
        const uint64_t conn_id = conn.id;
        const int done_fd = bgsave_done_fd_;
        const Status st =
            engine_->BgSave([this, conn_id, done_fd](const Status& s) {
              {
                std::lock_guard<std::mutex> lock(bgsave_mu_);
                bgsave_results_.emplace_back(conn_id, s);
              }
              const uint64_t one = 1;
              [[maybe_unused]] const ssize_t n =
                  ::write(done_fd, &one, sizeof(one));
            });
        commands_.fetch_add(1, std::memory_order_relaxed);
        if (st.ok()) {
          conn.awaiting_bgsave = true;  // reply deferred to completion
        } else {
          // Refused synchronously (-BUSY single-flight, or persistence
          // not configured) — same bytes the dispatch fallback emits.
          AppendSaveReply(&conn.out, st);
        }
      } else {
        if (Execute(*engine_, command, &conn.out)) {
          conn.close_after_flush = true;  // QUIT
        }
        commands_.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (result == RequestParser::Result::kError) {
      AppendError(&conn.out, "ERR", error);
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    } else {  // kFatal: reply, then drop only this connection
      AppendError(&conn.out, "ERR", error);
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      conn.close_after_flush = true;
    }
    AccountAppended(out_before, conn.out.size());
    if (conn.out.size() - conn.out_offset > options_.write_buffer_limit) {
      // Slow consumer: pipelines faster than it reads. Cut it loose
      // before its backlog eats the process.
      CloseConnection(conn.fd);
      return false;
    }
  }
  return true;
}

void Server::HandleBgSaveDone() {
  std::vector<std::pair<uint64_t, Status>> results;
  {
    std::lock_guard<std::mutex> lock(bgsave_mu_);
    results.swap(bgsave_results_);
  }
  for (const auto& [conn_id, status] : results) {
    Connection* conn = nullptr;
    for (const auto& [fd, c] : connections_) {
      if (c->id == conn_id) {
        conn = c.get();
        break;
      }
    }
    // Closed while the save ran (timeout, reset, drain force-close):
    // the save itself still completed/failed on its own terms; only
    // the reply has nowhere to go.
    if (conn == nullptr) continue;
    conn->awaiting_bgsave = false;
    const size_t out_before = conn->out.size();
    AppendSaveReply(&conn->out, status);
    AccountAppended(out_before, conn->out.size());
    // Resume the paused pipeline, then flush reply + whatever follows.
    if (!ExecuteParsed(*conn)) continue;
    ConnectionWritable(*conn);
  }
}

void Server::ProcessTimers(int64_t now_ns) {
  for (const TimerWheel::Expired& e : wheel_.PopExpired(now_ns)) {
    if (e.kind == TimerWheel::Kind::kRearmAccept) {
      if (accept_paused_ && listen_fd_ >= 0) {
        accept_paused_ = false;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = listen_fd_;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0) {
          AcceptReady();  // the backlog waited out the backoff
        } else {
          accept_paused_ = true;
          wheel_.Arm(listen_fd_, TimerWheel::Kind::kRearmAccept,
                     now_ns + kAcceptRearmDelayNs);
        }
      }
      continue;
    }
    auto it = connections_.find(e.fd);
    if (it == connections_.end()) continue;  // closed; stale entry
    Connection& conn = *it->second;
    if (e.kind == TimerWheel::Kind::kIdle) {
      if (conn.awaiting_bgsave || conn.idle_deadline_ns > now_ns) {
        // Refreshed since arming (or exempt while a deferred BGSAVE
        // reply is pending) — lazy cancellation's second half: re-arm
        // at the real deadline instead of reaping.
        const int64_t rearm =
            conn.awaiting_bgsave
                ? now_ns + options_.idle_timeout_ms * 1'000'000
                : conn.idle_deadline_ns;
        wheel_.Arm(e.fd, TimerWheel::Kind::kIdle, rearm);
        continue;
      }
      const size_t out_before = conn.out.size();
      AppendError(&conn.out, "TIMEOUT", "idle connection");
      AccountAppended(out_before, conn.out.size());
      conn.close_after_flush = true;
      timed_out_.fetch_add(1, std::memory_order_relaxed);
      ConnectionWritable(conn);  // usually closes right here
    } else {  // kWriteStall
      conn.stall_armed = false;
      if (conn.out_offset >= conn.out.size()) continue;  // backlog drained
      if (conn.stall_deadline_ns > now_ns) {
        wheel_.Arm(e.fd, TimerWheel::Kind::kWriteStall,
                   conn.stall_deadline_ns);
        conn.stall_armed = true;
        continue;
      }
      // No forward progress for the whole window: the peer is wedged,
      // an error reply would only join the unread backlog.
      timed_out_.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(e.fd);
    }
  }
}

void Server::AccountAppended(size_t before_size, size_t after_size) {
  inflight_bytes_.fetch_add(after_size - before_size,
                            std::memory_order_relaxed);
}

void Server::ConnectionWritable(Connection& conn) {
  const size_t offset_before = conn.out_offset;
  while (conn.out_offset < conn.out.size()) {
    const ssize_t w = sys::Write(conn.fd, conn.out.data() + conn.out_offset,
                                 conn.out.size() - conn.out_offset);
    if (w > 0) {
      conn.out_offset += static_cast<size_t>(w);
      inflight_bytes_.fetch_sub(static_cast<size_t>(w),
                                std::memory_order_relaxed);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (w < 0 && errno == EINTR) continue;
    CloseConnection(conn.fd);  // EPIPE/ECONNRESET/...
    return;
  }
  const bool progressed = conn.out_offset != offset_before;
  if (conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
    if ((conn.close_after_flush || conn.read_closed) &&
        !conn.awaiting_bgsave) {
      CloseConnection(conn.fd);
      return;
    }
  }
  if (options_.write_stall_timeout_ms > 0 &&
      conn.out_offset < conn.out.size()) {
    // The stall clock measures *lack of progress*, not backlog age: any
    // written byte (or a fresh backlog) resets it.
    if (progressed || !conn.stall_armed) {
      conn.stall_deadline_ns =
          NowNs() + options_.write_stall_timeout_ms * 1'000'000;
    }
    if (!conn.stall_armed) {
      wheel_.Arm(conn.fd, TimerWheel::Kind::kWriteStall,
                 conn.stall_deadline_ns);
      conn.stall_armed = true;
    }
  }
  UpdateInterest(conn);
}

void Server::UpdateInterest(Connection& conn) {
  // Once reads are closed, EOF keeps a level-triggered EPOLLIN
  // permanently hot — dropping it is what lets a connection that is
  // only flushing its tail wait quietly on EPOLLOUT instead of
  // spinning the loop until the buffer drains.
  const uint32_t want =
      (conn.read_closed ? 0u : static_cast<uint32_t>(EPOLLIN)) |
      (conn.out_offset < conn.out.size() ? static_cast<uint32_t>(EPOLLOUT)
                                         : 0u);
  if (want == conn.registered_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn.fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.registered_events = want;
  }
}

void Server::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  inflight_bytes_.fetch_sub(it->second->out.size() - it->second->out_offset,
                            std::memory_order_relaxed);
  wheel_.CancelAll(fd);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
}

}  // namespace sccf::server
