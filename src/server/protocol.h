#ifndef SCCF_SERVER_PROTOCOL_H_
#define SCCF_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sccf::server {

/// The SCCF wire protocol: a small pipelined RESP-style text protocol
/// (Redis serialization framing) over TCP. This header is the pure
/// parsing/serialization layer — no sockets, no Engine — so it can be
/// unit-tested byte by byte and reused by the server, the load client,
/// and the integration tests.
///
/// Requests are commands with string arguments, in either framing:
///
///  * inline:     `NEIGHBORS 5 BETA 10\r\n`   (nc/telnet friendly; a
///                bare `\n` terminator is accepted too)
///  * multibulk:  `*2\r\n$7\r\nHISTORY\r\n$1\r\n5\r\n`   (binary safe;
///                what the load client speaks)
///
/// Replies use the standard RESP data types:
///
///  * simple string  `+PONG\r\n`
///  * error          `-INVALIDARGUMENT beta_override must be positive\r\n`
///                   (first token is the upper-cased StatusCode, or ERR
///                   for protocol-level errors)
///  * integer        `:42\r\n`
///  * bulk string    `$5\r\nhello\r\n`
///  * array          `*2\r\n:7\r\n$8\r\n0.514706\r\n`
///
/// The command set and reply shapes live in dispatch.h; this file only
/// knows about frames.

/// One parsed request frame. `name` is upper-cased (commands are
/// case-insensitive); `args` keep their original bytes.
struct Command {
  std::string name;
  std::vector<std::string> args;
};

// ------------------------------------------------------------- replies

void AppendSimpleString(std::string* out, std::string_view s);
/// `-<code> <message>\r\n`. CR/LF inside `message` are replaced with
/// spaces (an embedded newline would desynchronize the stream).
void AppendError(std::string* out, std::string_view code,
                 std::string_view message);
void AppendInteger(std::string* out, int64_t v);
void AppendBulkString(std::string* out, std::string_view s);
void AppendArrayHeader(std::string* out, size_t n);
/// Shortest round-trip decimal form of `v` (std::to_chars), as a bulk
/// string — deterministic across runs, which is what lets the
/// integration tests compare server replies bit-for-bit against
/// locally serialized Engine responses.
void AppendFloatBulk(std::string* out, float v);

// ---------------------------------------------------- request parsing

/// Incremental request parser: feed raw bytes as they arrive from the
/// socket, then drain complete frames with Next(). Handles pipelining
/// (many frames per Feed) and fragmentation (one frame across many
/// Feeds) by construction.
///
/// Error discipline mirrors the reactor's needs:
///  * kError   — the frame was malformed but the stream is still framed
///               (e.g. an empty `*0` command): reply with an error and
///               keep parsing.
///  * kFatal   — framing is lost or a limit was exceeded (garbage where
///               a type byte should be, oversized frame): reply with an
///               error and close *this* connection. Other connections
///               are unaffected; the parser refuses to produce further
///               frames.
class RequestParser {
 public:
  struct Limits {
    /// Cap on one frame's total encoded size (inline line or multibulk
    /// including headers). Exceeding it is kFatal — a client streaming
    /// an unbounded frame must not grow the connection buffer forever.
    size_t max_frame_bytes = 1 << 20;
    /// Cap on elements per multibulk frame.
    size_t max_args = 1024;
  };

  enum class Result { kCommand, kNeedMore, kError, kFatal };

  RequestParser() = default;
  explicit RequestParser(Limits limits) : limits_(limits) {}

  /// Appends raw bytes to the internal buffer. No-op after a kFatal.
  void Feed(std::string_view bytes);

  /// Extracts the next complete frame. On kCommand fills `*command`; on
  /// kError/kFatal fills `*error` with a human-readable reason. Empty
  /// inline lines are skipped silently (telnet convenience, as in
  /// Redis). After kFatal every subsequent call returns kFatal.
  Result Next(Command* command, std::string* error);

  /// Bytes currently buffered but not yet consumed by Next().
  size_t buffered_bytes() const { return buf_.size() - pos_; }

  bool fatal() const { return fatal_; }

 private:
  Result ParseInline(Command* command, std::string* error);
  Result ParseMultibulk(Command* command, std::string* error);
  Result Fatal(std::string* error, std::string message);
  void Consume(size_t n);

  Limits limits_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  bool fatal_ = false;
};

// ------------------------------------------------------ reply parsing

/// Incremental reply-frame scanner for clients (the load client, the
/// loopback tests): detects where one complete reply ends without
/// interpreting it, handling nested arrays and pipelined replies, and
/// hands back the raw bytes so callers can compare or decode them.
class ReplyParser {
 public:
  enum class Result { kReply, kNeedMore, kError };

  void Feed(std::string_view bytes);

  /// On kReply, `*reply` receives the raw bytes of exactly one complete
  /// reply (e.g. a whole array including all elements). kError means
  /// the byte stream is not valid RESP; the parser is then stuck.
  Result Next(std::string* reply);

  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
  bool bad_ = false;
};

}  // namespace sccf::server

#endif  // SCCF_SERVER_PROTOCOL_H_
