#ifndef SCCF_EVAL_METRICS_H_
#define SCCF_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace sccf::eval {

/// HR@k contribution of one user (Sec. IV-A2): 1 if the ground-truth item
/// ranked within the top k, else 0. `rank` is 1-based.
double HitRate(size_t rank, size_t k);

/// NDCG@k contribution of one user: 1 / log2(rank + 1) within the top k,
/// else 0 (the paper's single-relevant-item form).
double Ndcg(size_t rank, size_t k);

/// MRR@k contribution: 1 / rank within the top k, else 0. Not reported in
/// the paper but standard in candidate-generation evaluations.
double Mrr(size_t rank, size_t k);

/// Accumulates HR/NDCG over users for a fixed set of cutoffs.
class MetricAccumulator {
 public:
  explicit MetricAccumulator(std::vector<size_t> cutoffs);

  /// Adds one user's 1-based rank of the ground-truth item.
  void AddRank(size_t rank);

  /// Merges another accumulator (parallel evaluation).
  void Merge(const MetricAccumulator& other);

  const std::vector<size_t>& cutoffs() const { return cutoffs_; }
  size_t num_users() const { return num_users_; }

  /// Mean HR@cutoffs[i] over added users.
  double hr(size_t i) const;
  double ndcg(size_t i) const;

 private:
  std::vector<size_t> cutoffs_;
  std::vector<double> hr_sum_;
  std::vector<double> ndcg_sum_;
  size_t num_users_ = 0;
};

/// List-quality diagnostics for a set of recommendation lists (beyond
/// accuracy): how much of the catalog the system ever shows, and how
/// popularity-skewed the shown items are. Useful when comparing the UI
/// and UU candidate streams — the user-based list typically covers more
/// of the long tail (the paper's "local information" argument).
struct ListQuality {
  /// Fraction of the catalog appearing in at least one list.
  double catalog_coverage = 0.0;
  /// Mean over lists of the mean item popularity (training interaction
  /// count) — lower means deeper into the long tail.
  double mean_popularity = 0.0;
  /// Shannon entropy (nats) of the item-exposure distribution; higher
  /// means exposure is spread over more items.
  double exposure_entropy = 0.0;
};

/// Computes ListQuality over per-user top-N lists. `item_counts` is the
/// training popularity of each item; `num_items` the catalog size.
ListQuality AnalyzeLists(const std::vector<std::vector<int>>& lists,
                         const std::vector<size_t>& item_counts,
                         size_t num_items);

}  // namespace sccf::eval

#endif  // SCCF_EVAL_METRICS_H_
