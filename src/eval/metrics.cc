#include "eval/metrics.h"

#include <cmath>

#include "util/logging.h"

namespace sccf::eval {

double HitRate(size_t rank, size_t k) {
  return rank > 0 && rank <= k ? 1.0 : 0.0;
}

double Ndcg(size_t rank, size_t k) {
  if (rank == 0 || rank > k) return 0.0;
  return 1.0 / std::log2(static_cast<double>(rank) + 1.0);
}

MetricAccumulator::MetricAccumulator(std::vector<size_t> cutoffs)
    : cutoffs_(std::move(cutoffs)),
      hr_sum_(cutoffs_.size(), 0.0),
      ndcg_sum_(cutoffs_.size(), 0.0) {
  SCCF_CHECK(!cutoffs_.empty());
}

void MetricAccumulator::AddRank(size_t rank) {
  for (size_t i = 0; i < cutoffs_.size(); ++i) {
    hr_sum_[i] += HitRate(rank, cutoffs_[i]);
    ndcg_sum_[i] += Ndcg(rank, cutoffs_[i]);
  }
  ++num_users_;
}

void MetricAccumulator::Merge(const MetricAccumulator& other) {
  SCCF_CHECK(cutoffs_ == other.cutoffs_);
  for (size_t i = 0; i < cutoffs_.size(); ++i) {
    hr_sum_[i] += other.hr_sum_[i];
    ndcg_sum_[i] += other.ndcg_sum_[i];
  }
  num_users_ += other.num_users_;
}

double MetricAccumulator::hr(size_t i) const {
  return num_users_ == 0 ? 0.0 : hr_sum_[i] / num_users_;
}

double MetricAccumulator::ndcg(size_t i) const {
  return num_users_ == 0 ? 0.0 : ndcg_sum_[i] / num_users_;
}

double Mrr(size_t rank, size_t k) {
  if (rank == 0 || rank > k) return 0.0;
  return 1.0 / static_cast<double>(rank);
}

ListQuality AnalyzeLists(const std::vector<std::vector<int>>& lists,
                         const std::vector<size_t>& item_counts,
                         size_t num_items) {
  ListQuality q;
  if (lists.empty() || num_items == 0) return q;

  std::vector<size_t> exposure(num_items, 0);
  double pop_sum = 0.0;
  size_t non_empty = 0;
  size_t total_exposures = 0;
  for (const auto& list : lists) {
    if (list.empty()) continue;
    ++non_empty;
    double list_pop = 0.0;
    for (int item : list) {
      SCCF_CHECK_GE(item, 0);
      SCCF_CHECK_LT(static_cast<size_t>(item), num_items);
      ++exposure[item];
      ++total_exposures;
      list_pop += static_cast<double>(item_counts[item]);
    }
    pop_sum += list_pop / list.size();
  }
  if (non_empty == 0 || total_exposures == 0) return q;

  size_t covered = 0;
  double entropy = 0.0;
  for (size_t i = 0; i < num_items; ++i) {
    if (exposure[i] == 0) continue;
    ++covered;
    const double p =
        static_cast<double>(exposure[i]) / total_exposures;
    entropy -= p * std::log(p);
  }
  q.catalog_coverage = static_cast<double>(covered) / num_items;
  q.mean_popularity = pop_sum / non_empty;
  q.exposure_entropy = entropy;
  return q;
}

}  // namespace sccf::eval
