#ifndef SCCF_EVAL_EVALUATOR_H_
#define SCCF_EVAL_EVALUATOR_H_

#include <cstddef>
#include <vector>

#include "data/split.h"
#include "eval/metrics.h"
#include "models/recommender.h"
#include "util/status.h"

namespace sccf::eval {

struct EvalOptions {
  std::vector<size_t> cutoffs = {20, 50, 100};
  /// Score the validation item with training-prefix history instead of the
  /// test item with prefix+validation history.
  bool on_validation = false;
  /// Rank over items outside the user's history (the paper never
  /// recommends R+_u again, Sec. III-C).
  bool exclude_history = true;
  /// Evaluate across the thread pool.
  bool parallel = true;
  /// Record each user's 1-based rank (0 = not evaluated / not hit).
  bool keep_ranks = false;
};

struct EvalResult {
  std::vector<size_t> cutoffs;
  std::vector<double> hr;
  std::vector<double> ndcg;
  size_t num_users = 0;
  std::vector<size_t> ranks;  // when keep_ranks

  /// Value of hr/ndcg at a cutoff; 0 if the cutoff was not evaluated.
  double HrAt(size_t k) const;
  double NdcgAt(size_t k) const;
};

/// Full-item-set leave-one-out evaluation (Sec. IV-A2): for each evaluable
/// user, scores every item, masks the user's history, and ranks the held-
/// out item by counting strictly-better scores.
StatusOr<EvalResult> Evaluate(const models::Recommender& model,
                              const data::LeaveOneOutSplit& split,
                              const EvalOptions& options = {});

}  // namespace sccf::eval

#endif  // SCCF_EVAL_EVALUATOR_H_
