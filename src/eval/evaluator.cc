#include "eval/evaluator.h"

#include <algorithm>
#include <mutex>

#include "util/thread_pool.h"

namespace sccf::eval {

namespace {
constexpr float kMaskedScore = -1e30f;

size_t RankOfTarget(const std::vector<float>& scores, int target) {
  const float t = scores[target];
  size_t better = 0;
  for (float s : scores) {
    if (s > t) ++better;
  }
  return better + 1;
}
}  // namespace

double EvalResult::HrAt(size_t k) const {
  for (size_t i = 0; i < cutoffs.size(); ++i) {
    if (cutoffs[i] == k) return hr[i];
  }
  return 0.0;
}

double EvalResult::NdcgAt(size_t k) const {
  for (size_t i = 0; i < cutoffs.size(); ++i) {
    if (cutoffs[i] == k) return ndcg[i];
  }
  return 0.0;
}

StatusOr<EvalResult> Evaluate(const models::Recommender& model,
                              const data::LeaveOneOutSplit& split,
                              const EvalOptions& options) {
  if (options.cutoffs.empty()) {
    return Status::InvalidArgument("cutoffs must be non-empty");
  }
  const size_t n = split.num_users();
  std::vector<size_t> ranks;
  if (options.keep_ranks) ranks.assign(n, 0);

  std::mutex mu;
  MetricAccumulator total(options.cutoffs);

  auto eval_block = [&](size_t lo, size_t hi) {
    MetricAccumulator local(options.cutoffs);
    std::vector<float> scores;
    for (size_t u = lo; u < hi; ++u) {
      if (!split.evaluable(u)) continue;
      const std::span<const int> history = options.on_validation
                                               ? split.TrainSequence(u)
                                               : split.TrainPlusValidSequence(u);
      const int target =
          options.on_validation ? split.ValidItem(u) : split.TestItem(u);
      model.ScoreAll(u, history, &scores);
      if (options.exclude_history) {
        for (int item : history) scores[item] = kMaskedScore;
      }
      const size_t rank = RankOfTarget(scores, target);
      local.AddRank(rank);
      if (options.keep_ranks) ranks[u] = rank;
    }
    std::lock_guard<std::mutex> lock(mu);
    total.Merge(local);
  };

  if (options.parallel) {
    ParallelForBlocked(0, n, eval_block);
  } else {
    eval_block(0, n);
  }

  EvalResult result;
  result.cutoffs = options.cutoffs;
  result.num_users = total.num_users();
  for (size_t i = 0; i < options.cutoffs.size(); ++i) {
    result.hr.push_back(total.hr(i));
    result.ndcg.push_back(total.ndcg(i));
  }
  result.ranks = std::move(ranks);
  return result;
}

}  // namespace sccf::eval
