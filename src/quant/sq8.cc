#include "quant/sq8.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace sccf::quant {

const char* StorageName(Storage s) {
  switch (s) {
    case Storage::kFp32:
      return "fp32";
    case Storage::kSq8:
      return "sq8";
  }
  return "unknown";
}

bool ParseStorage(const std::string& s, Storage* out) {
  std::string lower(s);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "fp32") {
    *out = Storage::kFp32;
    return true;
  }
  if (lower == "sq8") {
    *out = Storage::kSq8;
    return true;
  }
  return false;
}

Sq8Params Sq8Encode(const float* in, size_t n, int8_t* codes) {
  if (n == 0) return {0.0f, 0.0f};
  float lo = in[0], hi = in[0];
  for (size_t i = 1; i < n; ++i) {
    lo = std::min(lo, in[i]);
    hi = std::max(hi, in[i]);
  }
  if (hi == lo) {
    // Constant row (covers all-zero): scale 0 means every decoded value
    // is exactly `offset`, so the roundtrip is lossless.
    for (size_t i = 0; i < n; ++i) codes[i] = 0;
    return {0.0f, lo};
  }
  const float scale = (hi - lo) / 254.0f;
  const float offset = (hi + lo) * 0.5f;
  const float inv = 1.0f / scale;
  for (size_t i = 0; i < n; ++i) {
    // lround (half away from zero) is deterministic across platforms,
    // unlike rint under varying FP environments.
    long code = std::lround((in[i] - offset) * inv);
    code = std::clamp(code, -127l, 127l);
    codes[i] = static_cast<int8_t>(code);
  }
  return {scale, offset};
}

void Sq8Decode(const int8_t* codes, size_t n, Sq8Params params, float* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = params.scale * static_cast<float>(codes[i]) + params.offset;
  }
}

size_t Sq8Store::Append(const float* row) {
  const size_t slot = scales_.size();
  codes_.resize(codes_.size() + dim_);
  const Sq8Params p = Sq8Encode(row, dim_, codes_.data() + slot * dim_);
  scales_.push_back(p.scale);
  offsets_.push_back(p.offset);
  return slot;
}

void Sq8Store::Set(size_t slot, const float* row) {
  const Sq8Params p = Sq8Encode(row, dim_, codes_.data() + slot * dim_);
  scales_[slot] = p.scale;
  offsets_[slot] = p.offset;
}

void Sq8Store::AppendEncoded(const int8_t* codes, Sq8Params params) {
  codes_.insert(codes_.end(), codes, codes + dim_);
  scales_.push_back(params.scale);
  offsets_.push_back(params.offset);
}

void Sq8Store::RemoveSwap(size_t slot) {
  const size_t last = scales_.size() - 1;
  if (slot != last) {
    std::copy(codes_.begin() + last * dim_, codes_.begin() + (last + 1) * dim_,
              codes_.begin() + slot * dim_);
    scales_[slot] = scales_[last];
    offsets_[slot] = offsets_[last];
  }
  codes_.resize(last * dim_);
  scales_.pop_back();
  offsets_.pop_back();
}

void Sq8Store::DecodeRow(size_t slot, float* out) const {
  Sq8Decode(codes_.data() + slot * dim_, dim_, params(slot), out);
}

}  // namespace sccf::quant
