#ifndef SCCF_QUANT_SQ8_H_
#define SCCF_QUANT_SQ8_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// SQ8 scalar quantization: each embedding row is stored as dim int8
/// codes plus a per-row affine map value = scale * code + offset.
///
/// Encoding is min-max symmetric around the row midpoint:
///   lo = min(row), hi = max(row)
///   scale  = (hi - lo) / 254        (codes span [-127, 127])
///   offset = (hi + lo) / 2
///   code_i = round((v_i - offset) / scale), clamped to [-127, 127]
/// A constant row (hi == lo, including all-zero rows) encodes as
/// scale = 0, offset = lo, codes all 0 — and decodes exactly.
///
/// Properties the rest of the system relies on:
///  - Deterministic: the same fp32 row always yields the same codes and
///    params, so journal replay and snapshot recovery re-encode staged
///    rows bit-identically.
///  - Self-contained rows: codes + (scale, offset) serialize as-is, so
///    snapshot roundtrips are trivially bit-exact.
///  - Memory: dim + 8 bytes per row vs 4 * dim fp32 (3.76x at dim 128).
///
/// Scoring against codes never materializes decoded floats; see the
/// DotI8/CosineI8/TopKDotI8 kernels in simd/kernels.h.
namespace sccf::quant {

/// Which representation an index backend holds rows in. Lives here (not
/// in index/) so core/ and server/ can name it without pulling in the
/// backend headers.
enum class Storage : int { kFp32 = 0, kSq8 = 1 };

/// "fp32" or "sq8".
const char* StorageName(Storage s);

/// Parses "fp32" / "sq8" (case-insensitive). Returns false on anything
/// else.
bool ParseStorage(const std::string& s, Storage* out);

struct Sq8Params {
  float scale = 0.0f;
  float offset = 0.0f;
};

/// Encodes n floats into codes[0..n); returns the row's affine params.
Sq8Params Sq8Encode(const float* in, size_t n, int8_t* codes);

/// Decodes n codes back to floats: out[i] = scale * codes[i] + offset.
void Sq8Decode(const int8_t* codes, size_t n, Sq8Params params, float* out);

/// Dense slot-major store of SQ8 rows: one contiguous code matrix plus
/// parallel per-row scale/offset arrays, laid out so TopKDotI8 can scan
/// it directly. Mirrors the std::vector<float> row matrix the fp32
/// backends use — append, overwrite, swap-remove — with the quantization
/// step folded into the writes.
class Sq8Store {
 public:
  explicit Sq8Store(size_t dim) : dim_(dim) {}

  size_t dim() const { return dim_; }
  size_t size() const { return scales_.size(); }
  bool empty() const { return scales_.empty(); }

  /// Encodes `row` (dim floats) into a new slot; returns its index.
  size_t Append(const float* row);

  /// Re-encodes `row` into an existing slot.
  void Set(size_t slot, const float* row);

  /// Appends a pre-encoded row (snapshot restore path).
  void AppendEncoded(const int8_t* codes, Sq8Params params);

  /// Removes `slot` by moving the last row into it (no-op move when slot
  /// is already last). The caller owns fixing up any slot maps.
  void RemoveSwap(size_t slot);

  /// out[i] = scale * code[i] + offset for the row at `slot`.
  void DecodeRow(size_t slot, float* out) const;

  const int8_t* row(size_t slot) const { return codes_.data() + slot * dim_; }
  Sq8Params params(size_t slot) const {
    return {scales_[slot], offsets_[slot]};
  }

  /// Raw views for scan kernels and serialization.
  const int8_t* codes_data() const { return codes_.data(); }
  const float* scales_data() const { return scales_.data(); }
  const float* offsets_data() const { return offsets_.data(); }

  /// Bytes held by codes + per-row params (the quantized footprint).
  size_t code_bytes() const {
    return codes_.size() * sizeof(int8_t) +
           (scales_.size() + offsets_.size()) * sizeof(float);
  }

  void clear() {
    codes_.clear();
    scales_.clear();
    offsets_.clear();
  }

 private:
  size_t dim_;
  std::vector<int8_t> codes_;  // size() * dim_, row-major
  std::vector<float> scales_;
  std::vector<float> offsets_;
};

}  // namespace sccf::quant

#endif  // SCCF_QUANT_SQ8_H_
