#ifndef SCCF_INDEX_HNSW_INDEX_H_
#define SCCF_INDEX_HNSW_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/vector_index.h"
#include "util/random.h"

namespace sccf::index {

/// Hierarchical Navigable Small World graph (Malkov & Yashunin) over
/// inner-product / cosine similarity. Sub-linear query time makes it the
/// "identify neighbors in real time" workhorse of the SCCF user-based
/// component at catalog scale (paper Table III).
///
/// Streaming semantics: Add() with an existing id tombstones the old node
/// (it keeps routing but is filtered from results) and inserts a fresh
/// node; Remove() tombstones outright. Tombstones are *bounded*: once
/// dead nodes exceed Options::max_tombstone_ratio of the graph (and the
/// graph is past a small floor), the whole graph is rebuilt from the live
/// nodes — levels redrawn from the member Rng, stored rows moved, not
/// re-encoded — so memory and scan cost cannot grow without bound under
/// churn. The rebuild is deterministic given the Rng state, which is
/// serialized, so recovered-vs-twin bit-exactness survives rebuilds.
///
/// Storage: fp32 rows, or SQ8 codes (+ per-node scale/offset) when
/// constructed with quant::Storage::kSq8. In sq8 mode every similarity —
/// construction beams included — is computed against the decoded row via
/// the affine int8 dot, and inserts search with the *decoded* new row so
/// construction space equals query space.
///
/// Thread-safety: concurrent Search calls are safe (the visited set and
/// both beam heaps are locals); Add, Remove, and set_ef_search require
/// exclusive access — Add rewires neighbor lists, grows nodes_, consumes
/// the member Rng, and may rebuild. See the contract in vector_index.h.
class HnswIndex : public VectorIndex {
 public:
  struct Options {
    size_t m = 16;                ///< max neighbors per node above level 0
    size_t ef_construction = 100; ///< beam width during insertion
    size_t ef_search = 64;        ///< beam width during queries
    uint64_t seed = 42;
    /// Rebuild the graph from live nodes when tombstoned nodes exceed
    /// this fraction of all resident nodes (checked after every Add and
    /// Remove, once the graph has at least 64 nodes). <= 0 disables
    /// rebuilds (tombstones then grow without bound — pre-quant
    /// behavior, kept reachable for comparison benchmarks).
    double max_tombstone_ratio = 0.25;
  };

  HnswIndex(size_t dim, Metric metric, Options options,
            quant::Storage storage = quant::Storage::kFp32);

  Status Add(int id, const float* vec) override;
  Status Remove(int id) override;
  StatusOr<std::vector<Neighbor>> Search(const float* query, size_t k,
                                         int exclude_id = -1) const override;

  size_t size() const override { return live_.size(); }
  size_t dim() const override { return dim_; }
  Metric metric() const override { return metric_; }
  quant::Storage storage() const override { return storage_; }
  IndexMemoryStats memory_stats() const override;

  void set_ef_search(size_t ef) { options_.ef_search = ef; }

  void SerializeTo(std::string* out) const override;
  Status DeserializeFrom(std::string_view in) override;

  /// Internal nodes including tombstones (diagnostics).
  size_t num_graph_nodes() const { return nodes_.size(); }

 private:
  struct GraphNode {
    int external_id = -1;
    bool deleted = false;
    int level = 0;
    std::vector<float> vec;                    // fp32: normalised if cosine
    std::vector<int8_t> codes;                 // sq8: dim codes
    quant::Sq8Params qp;                       // sq8: per-row affine params
    std::vector<std::vector<int>> neighbors;   // per level
  };

  /// Similarity of an fp32 query against node `n`'s stored row. `qsum`
  /// (sum of q) is only read in sq8 mode, where the score is the affine
  /// int8 dot against the node's codes.
  float NodeSim(const float* q, float qsum, int n) const;
  /// Node n's row as fp32 into `out` (decode in sq8 mode) plus its
  /// element sum; used when a stored node becomes the query side
  /// (pruning, rebuilds).
  float DecodeNode(int n, std::vector<float>* out) const;
  int RandomLevel();
  /// Greedy single-entry descent at `level`, maximising similarity.
  int GreedyClosest(const float* q, float qsum, int entry, int level) const;
  /// Beam search at `level`; returns up to `ef` candidates sorted by
  /// descending similarity.
  std::vector<Neighbor> SearchLayer(const float* q, float qsum, int entry,
                                    size_t ef, int level) const;
  /// Keeps the `max_m` most similar neighbors of node `n` at `level`.
  void PruneNeighbors(int n, int level, size_t max_m);
  /// Draws a level for `node`, appends it to the graph, registers it
  /// live, and wires its beam-searched edges. The representation (vec or
  /// codes) must already be populated.
  void InsertNode(GraphNode&& node);
  /// Rebuilds the graph from live nodes (internal-id order) when the
  /// tombstone ratio bound is exceeded.
  void MaybeRebuild();

  size_t dim_ = 0;
  Metric metric_;
  Options options_;
  quant::Storage storage_ = quant::Storage::kFp32;
  Rng rng_;
  std::vector<GraphNode> nodes_;
  std::unordered_map<int, int> live_;  // external id -> internal node
  int entry_point_ = -1;
  int max_level_ = -1;
};

}  // namespace sccf::index

#endif  // SCCF_INDEX_HNSW_INDEX_H_
