#ifndef SCCF_INDEX_HNSW_INDEX_H_
#define SCCF_INDEX_HNSW_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/vector_index.h"
#include "util/random.h"

namespace sccf::index {

/// Hierarchical Navigable Small World graph (Malkov & Yashunin) over
/// inner-product / cosine similarity. Sub-linear query time makes it the
/// "identify neighbors in real time" workhorse of the SCCF user-based
/// component at catalog scale (paper Table III).
///
/// Streaming semantics: Add() with an existing id tombstones the old node
/// (it keeps routing but is filtered from results) and inserts a fresh
/// node, so recall does not decay under user-embedding updates.
///
/// Thread-safety: concurrent Search calls are safe (the visited set and
/// both beam heaps are locals); Add and set_ef_search require exclusive
/// access — Add rewires neighbor lists, grows nodes_, and consumes the
/// member Rng. See the contract in vector_index.h.
class HnswIndex : public VectorIndex {
 public:
  struct Options {
    size_t m = 16;                ///< max neighbors per node above level 0
    size_t ef_construction = 100; ///< beam width during insertion
    size_t ef_search = 64;        ///< beam width during queries
    uint64_t seed = 42;
  };

  HnswIndex(size_t dim, Metric metric, Options options);

  Status Add(int id, const float* vec) override;
  StatusOr<std::vector<Neighbor>> Search(const float* query, size_t k,
                                         int exclude_id = -1) const override;

  size_t size() const override { return live_.size(); }
  size_t dim() const override { return dim_; }
  Metric metric() const override { return metric_; }

  void set_ef_search(size_t ef) { options_.ef_search = ef; }

  void SerializeTo(std::string* out) const override;
  Status DeserializeFrom(std::string_view in) override;

  /// Internal nodes including tombstones (diagnostics).
  size_t num_graph_nodes() const { return nodes_.size(); }

 private:
  struct GraphNode {
    int external_id = -1;
    bool deleted = false;
    int level = 0;
    std::vector<float> vec;                    // normalised when cosine
    std::vector<std::vector<int>> neighbors;   // per level
  };

  float Similarity(const float* a, const float* b) const;
  int RandomLevel();
  /// Greedy single-entry descent at `level`, maximising similarity.
  int GreedyClosest(const float* q, int entry, int level) const;
  /// Beam search at `level`; returns up to `ef` candidates sorted by
  /// descending similarity.
  std::vector<Neighbor> SearchLayer(const float* q, int entry, size_t ef,
                                    int level) const;
  /// Keeps the `max_m` most similar neighbors of node `n` at `level`.
  void PruneNeighbors(int n, int level, size_t max_m);

  size_t dim_ = 0;
  Metric metric_;
  Options options_;
  Rng rng_;
  std::vector<GraphNode> nodes_;
  std::unordered_map<int, int> live_;  // external id -> internal node
  int entry_point_ = -1;
  int max_level_ = -1;
};

}  // namespace sccf::index

#endif  // SCCF_INDEX_HNSW_INDEX_H_
