#include "index/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "simd/kernels.h"
#include "util/logging.h"

namespace sccf::index {

HnswIndex::HnswIndex(size_t dim, Metric metric, Options options)
    : dim_(dim), metric_(metric), options_(options), rng_(options.seed) {
  SCCF_CHECK_GT(options_.m, 1u);
}

float HnswIndex::Similarity(const float* a, const float* b) const {
  return simd::Dot(a, b, dim_);
}

int HnswIndex::RandomLevel() {
  const double ml = 1.0 / std::log(static_cast<double>(options_.m));
  double u = rng_.UniformDouble();
  if (u < 1e-12) u = 1e-12;
  return static_cast<int>(-std::log(u) * ml);
}

int HnswIndex::GreedyClosest(const float* q, int entry, int level) const {
  int cur = entry;
  float cur_sim = Similarity(q, nodes_[cur].vec.data());
  bool improved = true;
  while (improved) {
    improved = false;
    for (int nb : nodes_[cur].neighbors[level]) {
      const float s = Similarity(q, nodes_[nb].vec.data());
      if (s > cur_sim) {
        cur_sim = s;
        cur = nb;
        improved = true;
      }
    }
  }
  return cur;
}

std::vector<Neighbor> HnswIndex::SearchLayer(const float* q, int entry,
                                             size_t ef, int level) const {
  // Classic dual-heap beam search; `visited` via epoch-free bool vector.
  std::vector<char> visited(nodes_.size(), 0);
  auto cmp_best = [](const Neighbor& a, const Neighbor& b) {
    return a.score < b.score;  // max-heap on similarity
  };
  auto cmp_worst = [](const Neighbor& a, const Neighbor& b) {
    return a.score > b.score;  // min-heap on similarity
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(cmp_best)>
      candidates(cmp_best);
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(cmp_worst)>
      results(cmp_worst);

  const float entry_sim = Similarity(q, nodes_[entry].vec.data());
  candidates.push({entry, entry_sim});
  results.push({entry, entry_sim});
  visited[entry] = 1;

  while (!candidates.empty()) {
    const Neighbor c = candidates.top();
    candidates.pop();
    if (results.size() >= ef && c.score < results.top().score) break;
    for (int nb : nodes_[c.id].neighbors[level]) {
      if (visited[nb]) continue;
      visited[nb] = 1;
      const float s = Similarity(q, nodes_[nb].vec.data());
      if (results.size() < ef || s > results.top().score) {
        candidates.push({nb, s});
        results.push({nb, s});
        if (results.size() > ef) results.pop();
      }
    }
  }

  std::vector<Neighbor> out;
  out.reserve(results.size());
  while (!results.empty()) {
    out.push_back(results.top());
    results.pop();
  }
  std::reverse(out.begin(), out.end());  // descending similarity
  return out;
}

void HnswIndex::PruneNeighbors(int n, int level, size_t max_m) {
  auto& nbs = nodes_[n].neighbors[level];
  if (nbs.size() <= max_m) return;
  std::vector<Neighbor> scored;
  scored.reserve(nbs.size());
  for (int nb : nbs) {
    scored.push_back(
        {nb, Similarity(nodes_[n].vec.data(), nodes_[nb].vec.data())});
  }
  std::partial_sort(scored.begin(), scored.begin() + max_m, scored.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.score > b.score;
                    });
  nbs.clear();
  for (size_t i = 0; i < max_m; ++i) nbs.push_back(scored[i].id);
}

Status HnswIndex::Add(int id, const float* vec) {
  if (id < 0) return Status::InvalidArgument("id must be non-negative");

  auto it = live_.find(id);
  if (it != live_.end()) {
    // Tombstone the previous version; it keeps routing edges.
    nodes_[it->second].deleted = true;
    live_.erase(it);
  }

  GraphNode node;
  node.external_id = id;
  node.level = RandomLevel();
  node.vec.assign(vec, vec + dim_);
  if (metric_ == Metric::kCosine) {
    simd::NormalizeInPlace(node.vec.data(), dim_);
  }
  node.neighbors.resize(node.level + 1);

  const int internal = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  live_[id] = internal;

  if (entry_point_ < 0) {
    entry_point_ = internal;
    max_level_ = nodes_[internal].level;
    return Status::OK();
  }

  const float* q = nodes_[internal].vec.data();
  int cur = entry_point_;
  // Descend through levels above the new node's level greedily.
  for (int level = max_level_; level > nodes_[internal].level; --level) {
    cur = GreedyClosest(q, cur, level);
  }
  // Connect at each level from min(level, max_level_) down to 0.
  for (int level = std::min(nodes_[internal].level, max_level_); level >= 0;
       --level) {
    std::vector<Neighbor> cands =
        SearchLayer(q, cur, options_.ef_construction, level);
    const size_t max_m = level == 0 ? options_.m * 2 : options_.m;
    size_t linked = 0;
    for (const Neighbor& c : cands) {
      if (c.id == internal) continue;
      if (linked >= max_m) break;
      nodes_[internal].neighbors[level].push_back(c.id);
      nodes_[c.id].neighbors[level].push_back(internal);
      PruneNeighbors(c.id, level, max_m);
      ++linked;
    }
    if (!cands.empty()) cur = cands.front().id;
  }

  if (nodes_[internal].level > max_level_) {
    max_level_ = nodes_[internal].level;
    entry_point_ = internal;
  }
  return Status::OK();
}

StatusOr<std::vector<Neighbor>> HnswIndex::Search(const float* query,
                                                  size_t k,
                                                  int exclude_id) const {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (entry_point_ < 0) return std::vector<Neighbor>{};

  std::vector<float> qbuf(query, query + dim_);
  if (metric_ == Metric::kCosine) simd::NormalizeInPlace(qbuf.data(), dim_);
  const float* q = qbuf.data();

  int cur = entry_point_;
  for (int level = max_level_; level > 0; --level) {
    cur = GreedyClosest(q, cur, level);
  }
  const size_t ef = std::max(options_.ef_search, k);
  std::vector<Neighbor> raw = SearchLayer(q, cur, ef + k, 0);

  // Filter tombstones and duplicate external ids (an id can appear once
  // live and multiple times tombstoned after updates).
  TopKAccumulator acc(k);
  for (const Neighbor& nb : raw) {
    const GraphNode& node = nodes_[nb.id];
    if (node.deleted) continue;
    if (node.external_id == exclude_id) continue;
    acc.Offer(node.external_id, nb.score);
  }
  return acc.Take();
}

}  // namespace sccf::index
