#include "index/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "simd/kernels.h"
#include "util/coding.h"
#include "util/logging.h"

namespace sccf::index {

namespace {

/// Graphs below this size never rebuild: the tombstone overhead is noise
/// and tiny test graphs keep their exact historical structure.
constexpr size_t kRebuildMinNodes = 64;

float Sum(const float* v, size_t n) {
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) s += v[i];
  return s;
}

}  // namespace

HnswIndex::HnswIndex(size_t dim, Metric metric, Options options,
                     quant::Storage storage)
    : dim_(dim),
      metric_(metric),
      options_(options),
      storage_(storage),
      rng_(options.seed) {
  SCCF_CHECK_GT(options_.m, 1u);
}

float HnswIndex::NodeSim(const float* q, float qsum, int n) const {
  const GraphNode& node = nodes_[n];
  if (storage_ == quant::Storage::kSq8) {
    return node.qp.scale * simd::DotI8(q, node.codes.data(), dim_) +
           node.qp.offset * qsum;
  }
  return simd::Dot(q, node.vec.data(), dim_);
}

float HnswIndex::DecodeNode(int n, std::vector<float>* out) const {
  const GraphNode& node = nodes_[n];
  out->resize(dim_);
  if (storage_ == quant::Storage::kSq8) {
    quant::Sq8Decode(node.codes.data(), dim_, node.qp, out->data());
  } else {
    std::copy(node.vec.begin(), node.vec.end(), out->begin());
  }
  return Sum(out->data(), dim_);
}

int HnswIndex::RandomLevel() {
  const double ml = 1.0 / std::log(static_cast<double>(options_.m));
  double u = rng_.UniformDouble();
  if (u < 1e-12) u = 1e-12;
  return static_cast<int>(-std::log(u) * ml);
}

int HnswIndex::GreedyClosest(const float* q, float qsum, int entry,
                             int level) const {
  int cur = entry;
  float cur_sim = NodeSim(q, qsum, cur);
  bool improved = true;
  while (improved) {
    improved = false;
    for (int nb : nodes_[cur].neighbors[level]) {
      const float s = NodeSim(q, qsum, nb);
      if (s > cur_sim) {
        cur_sim = s;
        cur = nb;
        improved = true;
      }
    }
  }
  return cur;
}

std::vector<Neighbor> HnswIndex::SearchLayer(const float* q, float qsum,
                                             int entry, size_t ef,
                                             int level) const {
  // Classic dual-heap beam search; `visited` via epoch-free bool vector.
  std::vector<char> visited(nodes_.size(), 0);
  auto cmp_best = [](const Neighbor& a, const Neighbor& b) {
    return a.score < b.score;  // max-heap on similarity
  };
  auto cmp_worst = [](const Neighbor& a, const Neighbor& b) {
    return a.score > b.score;  // min-heap on similarity
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(cmp_best)>
      candidates(cmp_best);
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(cmp_worst)>
      results(cmp_worst);

  const float entry_sim = NodeSim(q, qsum, entry);
  candidates.push({entry, entry_sim});
  results.push({entry, entry_sim});
  visited[entry] = 1;

  while (!candidates.empty()) {
    const Neighbor c = candidates.top();
    candidates.pop();
    if (results.size() >= ef && c.score < results.top().score) break;
    for (int nb : nodes_[c.id].neighbors[level]) {
      if (visited[nb]) continue;
      visited[nb] = 1;
      const float s = NodeSim(q, qsum, nb);
      if (results.size() < ef || s > results.top().score) {
        candidates.push({nb, s});
        results.push({nb, s});
        if (results.size() > ef) results.pop();
      }
    }
  }

  std::vector<Neighbor> out;
  out.reserve(results.size());
  while (!results.empty()) {
    out.push_back(results.top());
    results.pop();
  }
  std::reverse(out.begin(), out.end());  // descending similarity
  return out;
}

void HnswIndex::PruneNeighbors(int n, int level, size_t max_m) {
  auto& nbs = nodes_[n].neighbors[level];
  if (nbs.size() <= max_m) return;
  // The pivot node becomes the query side: in sq8 mode decode it once and
  // score its neighbors through the same affine kernel as every other
  // similarity; fp32 uses the stored row in place.
  std::vector<float> scratch;
  const float* pivot;
  float pivot_sum = 0.0f;
  if (storage_ == quant::Storage::kSq8) {
    pivot_sum = DecodeNode(n, &scratch);
    pivot = scratch.data();
  } else {
    pivot = nodes_[n].vec.data();
  }
  std::vector<Neighbor> scored;
  scored.reserve(nbs.size());
  for (int nb : nbs) {
    scored.push_back({nb, NodeSim(pivot, pivot_sum, nb)});
  }
  std::partial_sort(scored.begin(), scored.begin() + max_m, scored.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.score > b.score;
                    });
  nbs.clear();
  for (size_t i = 0; i < max_m; ++i) nbs.push_back(scored[i].id);
}

void HnswIndex::InsertNode(GraphNode&& node) {
  node.level = RandomLevel();
  node.neighbors.assign(static_cast<size_t>(node.level) + 1, {});

  const int internal = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  live_[nodes_[internal].external_id] = internal;

  if (entry_point_ < 0) {
    entry_point_ = internal;
    max_level_ = nodes_[internal].level;
    return;
  }

  // The new node's row as the insertion query. In sq8 mode this is the
  // DECODED row, so the beams that place its edges run in the same space
  // later queries will score it in; fp32 queries with the stored row.
  std::vector<float> qbuf;
  const float* q;
  float qsum = 0.0f;
  if (storage_ == quant::Storage::kSq8) {
    qsum = DecodeNode(internal, &qbuf);
    q = qbuf.data();
  } else {
    q = nodes_[internal].vec.data();
  }

  int cur = entry_point_;
  // Descend through levels above the new node's level greedily.
  for (int level = max_level_; level > nodes_[internal].level; --level) {
    cur = GreedyClosest(q, qsum, cur, level);
  }
  // Connect at each level from min(level, max_level_) down to 0.
  for (int level = std::min(nodes_[internal].level, max_level_); level >= 0;
       --level) {
    std::vector<Neighbor> cands =
        SearchLayer(q, qsum, cur, options_.ef_construction, level);
    const size_t max_m = level == 0 ? options_.m * 2 : options_.m;
    size_t linked = 0;
    for (const Neighbor& c : cands) {
      if (c.id == internal) continue;
      if (linked >= max_m) break;
      nodes_[internal].neighbors[level].push_back(c.id);
      nodes_[c.id].neighbors[level].push_back(internal);
      PruneNeighbors(c.id, level, max_m);
      ++linked;
    }
    if (!cands.empty()) cur = cands.front().id;
  }

  if (nodes_[internal].level > max_level_) {
    max_level_ = nodes_[internal].level;
    entry_point_ = internal;
  }
}

void HnswIndex::MaybeRebuild() {
  if (options_.max_tombstone_ratio <= 0.0) return;
  if (nodes_.size() < kRebuildMinNodes) return;
  const size_t tombstones = nodes_.size() - live_.size();
  if (static_cast<double>(tombstones) <
      options_.max_tombstone_ratio * static_cast<double>(nodes_.size())) {
    return;
  }
  // Rebuild from live nodes in internal-id order (== insertion order, so
  // the rebuilt graph is deterministic). Rows move; levels are redrawn
  // from the member Rng, whose state is serialized — a recovered index
  // rebuilds identically to its uninterrupted twin.
  std::vector<GraphNode> old = std::move(nodes_);
  nodes_.clear();
  nodes_.reserve(live_.size());
  live_.clear();
  entry_point_ = -1;
  max_level_ = -1;
  for (GraphNode& node : old) {
    if (node.deleted) continue;
    node.neighbors.clear();
    InsertNode(std::move(node));
  }
}

Status HnswIndex::Add(int id, const float* vec) {
  if (id < 0) return Status::InvalidArgument("id must be non-negative");

  auto it = live_.find(id);
  if (it != live_.end()) {
    // Tombstone the previous version; it keeps routing edges.
    nodes_[it->second].deleted = true;
    live_.erase(it);
  }

  GraphNode node;
  node.external_id = id;
  if (storage_ == quant::Storage::kSq8) {
    std::vector<float> row(vec, vec + dim_);
    if (metric_ == Metric::kCosine) {
      simd::NormalizeInPlace(row.data(), dim_);
    }
    node.codes.resize(dim_);
    node.qp = quant::Sq8Encode(row.data(), dim_, node.codes.data());
  } else {
    node.vec.assign(vec, vec + dim_);
    if (metric_ == Metric::kCosine) {
      simd::NormalizeInPlace(node.vec.data(), dim_);
    }
  }
  InsertNode(std::move(node));
  MaybeRebuild();
  return Status::OK();
}

Status HnswIndex::Remove(int id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    return Status::NotFound("id not in index: " + std::to_string(id));
  }
  nodes_[it->second].deleted = true;
  live_.erase(it);
  MaybeRebuild();
  return Status::OK();
}

IndexMemoryStats HnswIndex::memory_stats() const {
  IndexMemoryStats stats;
  stats.tombstones = nodes_.size() - live_.size();
  if (storage_ == quant::Storage::kSq8) {
    // dim codes + scale + offset per resident node (tombstones included —
    // they occupy RAM until a rebuild evicts them).
    stats.code_bytes =
        nodes_.size() * (dim_ * sizeof(int8_t) + 2 * sizeof(float));
  } else {
    stats.embedding_bytes = nodes_.size() * dim_ * sizeof(float);
  }
  return stats;
}

StatusOr<std::vector<Neighbor>> HnswIndex::Search(const float* query,
                                                  size_t k,
                                                  int exclude_id) const {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (entry_point_ < 0) return std::vector<Neighbor>{};

  std::vector<float> qbuf(query, query + dim_);
  if (metric_ == Metric::kCosine) simd::NormalizeInPlace(qbuf.data(), dim_);
  const float* q = qbuf.data();
  const float qsum =
      storage_ == quant::Storage::kSq8 ? Sum(q, dim_) : 0.0f;

  int cur = entry_point_;
  for (int level = max_level_; level > 0; --level) {
    cur = GreedyClosest(q, qsum, cur, level);
  }
  const size_t ef = std::max(options_.ef_search, k);
  std::vector<Neighbor> raw = SearchLayer(q, qsum, cur, ef + k, 0);

  // Filter tombstones and duplicate external ids (an id can appear once
  // live and multiple times tombstoned after updates).
  TopKAccumulator acc(k);
  for (const Neighbor& nb : raw) {
    const GraphNode& node = nodes_[nb.id];
    if (node.deleted) continue;
    if (node.external_id == exclude_id) continue;
    acc.Offer(node.external_id, nb.score);
  }
  return acc.Take();
}

// Payload layout:
//   u8 tag 'H' | u8 storage | u64 dim | i32 entry_point | i32 max_level
//   u64 rng.s[0..3] | u8 have_cached_normal | f32 cached_normal
//   u64 node_count
//   per node: i32 external_id | u8 deleted | i32 level
//             fp32: f32 vec x dim
//             sq8:  i8 code x dim | f32 scale | f32 offset
//             per level 0..level: u64 n | i32 neighbor x n
// The graph is persisted whole — tombstones, exact neighbor lists, entry
// point, and the RNG — because a rebuilt-from-vectors graph would draw a
// different level sequence and diverge from an uninterrupted run on the
// very next Add. live_ is derived (non-deleted nodes), not stored. SQ8
// codes and params are verbatim bytes, so restore never re-quantizes.
void HnswIndex::SerializeTo(std::string* out) const {
  PutU8(out, 'H');
  PutU8(out, static_cast<uint8_t>(storage_));
  PutFixed64(out, static_cast<uint64_t>(dim_));
  PutI32(out, entry_point_);
  PutI32(out, max_level_);
  const Rng::State rng = rng_.state();
  for (int i = 0; i < 4; ++i) PutFixed64(out, rng.s[i]);
  PutU8(out, rng.have_cached_normal ? 1 : 0);
  PutF32(out, rng.cached_normal);
  PutFixed64(out, static_cast<uint64_t>(nodes_.size()));
  for (const GraphNode& node : nodes_) {
    PutI32(out, node.external_id);
    PutU8(out, node.deleted ? 1 : 0);
    PutI32(out, node.level);
    if (storage_ == quant::Storage::kSq8) {
      out->append(reinterpret_cast<const char*>(node.codes.data()),
                  node.codes.size());
      PutF32(out, node.qp.scale);
      PutF32(out, node.qp.offset);
    } else {
      PutFloats(out, node.vec.data(), node.vec.size());
    }
    for (const std::vector<int>& nbs : node.neighbors) {
      PutFixed64(out, static_cast<uint64_t>(nbs.size()));
      for (int nb : nbs) PutI32(out, nb);
    }
  }
}

Status HnswIndex::DeserializeFrom(std::string_view in) {
  ByteReader reader(in);
  uint8_t tag = 0;
  SCCF_RETURN_NOT_OK(reader.ReadU8(&tag));
  if (tag != 'H') return Status::InvalidArgument("not an HNSW index blob");
  uint8_t storage = 0;
  SCCF_RETURN_NOT_OK(reader.ReadU8(&storage));
  if (storage != static_cast<uint8_t>(storage_)) {
    return Status::InvalidArgument("index blob storage mode mismatch");
  }
  uint64_t dim = 0;
  SCCF_RETURN_NOT_OK(reader.ReadFixed64(&dim));
  if (dim != dim_) {
    return Status::InvalidArgument("index blob dim mismatch");
  }
  int32_t entry_point = 0, max_level = 0;
  SCCF_RETURN_NOT_OK(reader.ReadI32(&entry_point));
  SCCF_RETURN_NOT_OK(reader.ReadI32(&max_level));
  Rng::State rng;
  for (int i = 0; i < 4; ++i) {
    SCCF_RETURN_NOT_OK(reader.ReadFixed64(&rng.s[i]));
  }
  uint8_t have_cached = 0;
  SCCF_RETURN_NOT_OK(reader.ReadU8(&have_cached));
  rng.have_cached_normal = have_cached != 0;
  SCCF_RETURN_NOT_OK(reader.ReadF32(&rng.cached_normal));

  uint64_t node_count = 0;
  SCCF_RETURN_NOT_OK(reader.ReadFixed64(&node_count));
  // Each node costs at least 13 header bytes; cheap bound against an
  // adversarial count before reserving anything.
  if (node_count > reader.remaining() / 13) {
    return Status::IoError("truncated index blob (node count)");
  }
  const int n = static_cast<int>(node_count);
  if ((entry_point < 0) != (node_count == 0) || entry_point >= n) {
    return Status::InvalidArgument("index blob entry point out of range");
  }

  std::vector<GraphNode> nodes;
  std::unordered_map<int, int> live;
  nodes.reserve(static_cast<size_t>(node_count));
  for (int i = 0; i < n; ++i) {
    GraphNode node;
    uint8_t deleted = 0;
    SCCF_RETURN_NOT_OK(reader.ReadI32(&node.external_id));
    SCCF_RETURN_NOT_OK(reader.ReadU8(&deleted));
    node.deleted = deleted != 0;
    SCCF_RETURN_NOT_OK(reader.ReadI32(&node.level));
    if (node.external_id < 0 || node.level < 0 || node.level > max_level) {
      return Status::InvalidArgument("index blob node header out of range");
    }
    if (storage_ == quant::Storage::kSq8) {
      std::string_view raw;
      SCCF_RETURN_NOT_OK(reader.ReadView(dim_, &raw));
      node.codes.assign(reinterpret_cast<const int8_t*>(raw.data()),
                        reinterpret_cast<const int8_t*>(raw.data()) + dim_);
      SCCF_RETURN_NOT_OK(reader.ReadF32(&node.qp.scale));
      SCCF_RETURN_NOT_OK(reader.ReadF32(&node.qp.offset));
    } else {
      SCCF_RETURN_NOT_OK(reader.ReadFloats(dim_, &node.vec));
    }
    node.neighbors.resize(static_cast<size_t>(node.level) + 1);
    for (std::vector<int>& nbs : node.neighbors) {
      uint64_t len = 0;
      SCCF_RETURN_NOT_OK(reader.ReadFixed64(&len));
      if (len > reader.remaining() / 4) {
        return Status::IoError("truncated index blob (neighbor list)");
      }
      nbs.reserve(static_cast<size_t>(len));
      for (uint64_t j = 0; j < len; ++j) {
        int32_t nb = 0;
        SCCF_RETURN_NOT_OK(reader.ReadI32(&nb));
        if (nb < 0 || nb >= n) {
          return Status::InvalidArgument("index blob neighbor out of range");
        }
        nbs.push_back(nb);
      }
    }
    if (!node.deleted && !live.emplace(node.external_id, i).second) {
      return Status::InvalidArgument("duplicate live id in index blob");
    }
    nodes.push_back(std::move(node));
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes in index blob");
  }

  entry_point_ = entry_point;
  max_level_ = max_level;
  rng_.set_state(rng);
  nodes_ = std::move(nodes);
  live_ = std::move(live);
  return Status::OK();
}

}  // namespace sccf::index
