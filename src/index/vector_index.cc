#include "index/vector_index.h"

#include <algorithm>

#include "simd/kernels.h"

namespace sccf::index {

namespace {
struct MinHeapCmp {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;  // among equal scores, evict the larger id first
  }
};
}  // namespace

void TopKAccumulator::Offer(int id, float score) {
  if (k_ == 0) return;
  if (heap_.size() < k_) {
    heap_.push_back({id, score});
    std::push_heap(heap_.begin(), heap_.end(), MinHeapCmp());
    return;
  }
  if (!WouldAccept(score)) return;
  std::pop_heap(heap_.begin(), heap_.end(), MinHeapCmp());
  heap_.back() = {id, score};
  std::push_heap(heap_.begin(), heap_.end(), MinHeapCmp());
}

std::vector<Neighbor> TopKAccumulator::Take() {
  std::vector<Neighbor> out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  return out;
}

void UpsertBuffer::Put(int id, const float* vec) {
  auto it = pos_.find(id);
  size_t row;
  bool fresh = false;
  if (it != pos_.end()) {
    row = it->second;
  } else {
    row = ids_.size();
    fresh = true;
    ids_.push_back(id);
    data_.resize(data_.size() + dim_);
    inv_norms_.push_back(0.0f);
    pos_[id] = row;
  }
  std::copy(vec, vec + dim_, data_.data() + row * dim_);
  if (metric_ == Metric::kCosine) {
    const float norm = simd::Norm(vec, dim_);
    inv_norms_[row] = norm > 0.0f ? 1.0f / norm : 0.0f;
  }
  if (storage_ == quant::Storage::kSq8) {
    // Encode exactly what the backend's Add will store, so staged and
    // post-drain scores coincide bit-for-bit.
    const float* enc = vec;
    std::vector<float> normed;
    if (metric_ == Metric::kCosine) {
      normed.resize(dim_);
      simd::NormalizeCopy(vec, normed.data(), dim_);
      enc = normed.data();
    }
    if (fresh) {
      codes_.Append(enc);
    } else {
      codes_.Set(row, enc);
    }
  }
}

void UpsertBuffer::OfferTo(const float* query, int exclude_id,
                           TopKAccumulator* acc) const {
  if (ids_.empty()) return;
  std::vector<float> qnorm;
  const float* q = query;
  if (metric_ == Metric::kCosine) {
    qnorm.resize(dim_);
    simd::NormalizeCopy(query, qnorm.data(), dim_);
    q = qnorm.data();
  }
  if (storage_ == quant::Storage::kSq8) {
    // Score the staged codes with the same affine int8 dot the backend
    // uses, so the merged score equals the future indexed score exactly.
    // Cosine needs no inv-norm factor here: the codes already encode the
    // normalised row.
    float qsum = 0.0f;
    for (size_t i = 0; i < dim_; ++i) qsum += q[i];
    for (size_t row = 0; row < ids_.size(); ++row) {
      if (ids_[row] == exclude_id) continue;
      const quant::Sq8Params p = codes_.params(row);
      const float score =
          p.scale * simd::DotI8(q, codes_.row(row), dim_) + p.offset * qsum;
      acc->Offer(ids_[row], score);
    }
    return;
  }
  for (size_t row = 0; row < ids_.size(); ++row) {
    if (ids_[row] == exclude_id) continue;
    float score = simd::Dot(q, data_.data() + row * dim_, dim_);
    if (metric_ == Metric::kCosine) score *= inv_norms_[row];
    acc->Offer(ids_[row], score);
  }
}

Status UpsertBuffer::DrainTo(VectorIndex* index) {
  Status first_error;
  for (size_t row = 0; row < ids_.size(); ++row) {
    Status st = index->Add(ids_[row], data_.data() + row * dim_);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  ids_.clear();
  data_.clear();
  inv_norms_.clear();
  codes_.clear();
  pos_.clear();
  return first_error;
}

}  // namespace sccf::index
