#include "index/vector_index.h"

#include <algorithm>

namespace sccf::index {

namespace {
struct MinHeapCmp {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;  // among equal scores, evict the larger id first
  }
};
}  // namespace

void TopKAccumulator::Offer(int id, float score) {
  if (k_ == 0) return;
  if (heap_.size() < k_) {
    heap_.push_back({id, score});
    std::push_heap(heap_.begin(), heap_.end(), MinHeapCmp());
    return;
  }
  if (!WouldAccept(score)) return;
  std::pop_heap(heap_.begin(), heap_.end(), MinHeapCmp());
  heap_.back() = {id, score};
  std::push_heap(heap_.begin(), heap_.end(), MinHeapCmp());
}

std::vector<Neighbor> TopKAccumulator::Take() {
  std::vector<Neighbor> out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  return out;
}

}  // namespace sccf::index
