#include "index/brute_force_index.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <utility>

#include "simd/kernels.h"
#include "util/coding.h"
#include "util/thread_pool.h"

namespace sccf::index {

namespace {

float Sum(const float* v, size_t n) {
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) s += v[i];
  return s;
}

}  // namespace

BruteForceIndex::BruteForceIndex(size_t dim, Metric metric, bool parallel,
                                 quant::Storage storage)
    : dim_(dim),
      metric_(metric),
      parallel_(parallel),
      storage_(storage),
      codes_(dim) {}

Status BruteForceIndex::Add(int id, const float* vec) {
  if (id < 0) return Status::InvalidArgument("id must be non-negative");
  auto it = slot_.find(id);
  size_t s;
  bool fresh = false;
  if (it != slot_.end()) {
    s = it->second;
  } else {
    s = ids_.size();
    fresh = true;
    if (id != static_cast<int>(s)) ids_are_slots_ = false;
    ids_.push_back(id);
    if (storage_ == quant::Storage::kFp32) {
      data_.resize(data_.size() + dim_);
    }
    slot_[id] = s;
  }
  if (storage_ == quant::Storage::kSq8) {
    // Quantize the row the same way the fp32 path stores it: normalised
    // first when the metric is cosine, so inner product on decoded rows
    // equals cosine.
    const float* src = vec;
    std::vector<float> normed;
    if (metric_ == Metric::kCosine) {
      normed.resize(dim_);
      simd::NormalizeCopy(vec, normed.data(), dim_);
      src = normed.data();
    }
    if (fresh) {
      codes_.Append(src);
    } else {
      codes_.Set(s, src);
    }
    return Status::OK();
  }
  float* dst = data_.data() + s * dim_;
  if (metric_ == Metric::kCosine) {
    simd::NormalizeCopy(vec, dst, dim_);
  } else {
    std::copy(vec, vec + dim_, dst);
  }
  return Status::OK();
}

Status BruteForceIndex::Remove(int id) {
  auto it = slot_.find(id);
  if (it == slot_.end()) {
    return Status::NotFound("id not in index: " + std::to_string(id));
  }
  const size_t s = it->second;
  const size_t last = ids_.size() - 1;
  if (s != last) {
    // Swap the last row into the vacated slot. The moved id almost never
    // equals its new slot, so the ids==slots fast path is conservatively
    // dropped.
    ids_[s] = ids_[last];
    slot_[ids_[s]] = s;
    if (storage_ == quant::Storage::kFp32) {
      std::copy(data_.begin() + last * dim_, data_.begin() + (last + 1) * dim_,
                data_.begin() + s * dim_);
    }
    ids_are_slots_ = false;
  }
  if (storage_ == quant::Storage::kSq8) {
    codes_.RemoveSwap(s);
  } else {
    data_.resize(last * dim_);
  }
  ids_.pop_back();
  slot_.erase(it);
  return Status::OK();
}

IndexMemoryStats BruteForceIndex::memory_stats() const {
  IndexMemoryStats stats;
  if (storage_ == quant::Storage::kSq8) {
    stats.code_bytes = codes_.code_bytes();
  } else {
    stats.embedding_bytes = data_.size() * sizeof(float);
  }
  return stats;
}

StatusOr<std::vector<Neighbor>> BruteForceIndex::Search(
    const float* query, size_t k, int exclude_id) const {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  std::vector<float> qnorm;
  const float* q = query;
  if (metric_ == Metric::kCosine) {
    qnorm.resize(dim_);
    simd::NormalizeCopy(query, qnorm.data(), dim_);
    q = qnorm.data();
  }
  const float qsum = storage_ == quant::Storage::kSq8 ? Sum(q, dim_) : 0.0f;

  const size_t n = ids_.size();

  // Fast path: ids equal slots (the common case — SCCF inserts users
  // 0..n-1 in order), so TopKDot's row-order tie handling matches
  // TopKAccumulator's id-order tie handling exactly and the whole scan
  // stays inside the batched kernel.
  if (!parallel_ || n < 4096) {
    if (ids_are_slots_) {
      ptrdiff_t exclude_row = -1;
      if (exclude_id >= 0) {
        auto it = slot_.find(exclude_id);
        if (it != slot_.end()) exclude_row = it->second;
      }
      std::vector<std::pair<int, float>> top;
      if (storage_ == quant::Storage::kSq8) {
        simd::TopKDotI8(q, codes_.codes_data(), n, dim_,
                        codes_.scales_data(), codes_.offsets_data(), qsum, k,
                        exclude_row, &top);
      } else {
        simd::TopKDot(q, data_.data(), n, dim_, k, exclude_row, &top);
      }
      std::vector<Neighbor> out;
      out.reserve(top.size());
      for (const auto& [row, score] : top) out.push_back({row, score});
      return out;
    }
    TopKAccumulator acc(k);
    ScanRange(q, qsum, 0, n, exclude_id, &acc);
    return acc.Take();
  }

  std::mutex mu;
  TopKAccumulator merged(k);
  ParallelForBlocked(0, n, [&](size_t lo, size_t hi) {
    TopKAccumulator local(k);
    ScanRange(q, qsum, lo, hi, exclude_id, &local);
    std::vector<Neighbor> part = local.Take();
    std::lock_guard<std::mutex> lock(mu);
    for (const Neighbor& nb : part) merged.Offer(nb.id, nb.score);
  });
  return merged.Take();
}

void BruteForceIndex::ScanRange(const float* q, float qsum, size_t lo,
                                size_t hi, int exclude_id,
                                TopKAccumulator* acc) const {
  // Score a block of rows at a time through the batched kernel, then offer
  // sequentially — identical offer order (and therefore identical tie
  // handling) to the old one-dot-per-row loop.
  constexpr size_t kBlock = 256;
  float scores[kBlock];
  for (size_t s = lo; s < hi; s += kBlock) {
    const size_t len = std::min(kBlock, hi - s);
    if (storage_ == quant::Storage::kSq8) {
      simd::DotBatchI8(q, codes_.codes_data() + s * dim_, len, dim_, scores);
      const float* scales = codes_.scales_data();
      const float* offsets = codes_.offsets_data();
      for (size_t j = 0; j < len; ++j) {
        scores[j] = scales[s + j] * scores[j] + offsets[s + j] * qsum;
      }
    } else {
      simd::DotBatch(q, data_.data() + s * dim_, len, dim_, scores);
    }
    for (size_t j = 0; j < len; ++j) {
      if (ids_[s + j] == exclude_id) continue;
      acc->Offer(ids_[s + j], scores[j]);
    }
  }
}

// Payload layout (inside the persist layer's checksummed framing):
//   u8 tag 'B' | u8 storage | u8 ids_are_slots | u64 dim | u64 count
//   i32 id x count
//   fp32: f32 row x (count * dim)
//   sq8:  i8 code x (count * dim) | f32 scale x count | f32 offset x count
// Rows are stored exactly as held in memory (already normalised when the
// metric is cosine; codes and params verbatim in sq8 mode), so restore is
// a memcpy, not a re-normalisation or re-quantization — that is what
// makes recovery bit-exact.
void BruteForceIndex::SerializeTo(std::string* out) const {
  PutU8(out, 'B');
  PutU8(out, static_cast<uint8_t>(storage_));
  PutU8(out, ids_are_slots_ ? 1 : 0);
  PutFixed64(out, static_cast<uint64_t>(dim_));
  PutFixed64(out, static_cast<uint64_t>(ids_.size()));
  for (int id : ids_) PutI32(out, id);
  if (storage_ == quant::Storage::kSq8) {
    out->append(reinterpret_cast<const char*>(codes_.codes_data()),
                ids_.size() * dim_);
    PutFloats(out, codes_.scales_data(), ids_.size());
    PutFloats(out, codes_.offsets_data(), ids_.size());
  } else {
    PutFloats(out, data_.data(), data_.size());
  }
}

Status BruteForceIndex::DeserializeFrom(std::string_view in) {
  ByteReader reader(in);
  uint8_t tag = 0, storage = 0, ids_are_slots = 0;
  uint64_t dim = 0, count = 0;
  SCCF_RETURN_NOT_OK(reader.ReadU8(&tag));
  if (tag != 'B') {
    return Status::InvalidArgument("not a brute-force index blob");
  }
  SCCF_RETURN_NOT_OK(reader.ReadU8(&storage));
  if (storage != static_cast<uint8_t>(storage_)) {
    return Status::InvalidArgument("index blob storage mode mismatch");
  }
  SCCF_RETURN_NOT_OK(reader.ReadU8(&ids_are_slots));
  SCCF_RETURN_NOT_OK(reader.ReadFixed64(&dim));
  if (dim != dim_) {
    return Status::InvalidArgument("index blob dim mismatch");
  }
  SCCF_RETURN_NOT_OK(reader.ReadFixed64(&count));

  std::vector<int> ids;
  std::unordered_map<int, size_t> slot;
  if (count > reader.remaining() / 4) {
    return Status::IoError("truncated index blob (ids)");
  }
  ids.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    int32_t id = 0;
    SCCF_RETURN_NOT_OK(reader.ReadI32(&id));
    if (id < 0) return Status::InvalidArgument("negative id in index blob");
    if (!slot.emplace(id, static_cast<size_t>(i)).second) {
      return Status::InvalidArgument("duplicate id in index blob");
    }
    ids.push_back(id);
  }
  std::vector<float> data;
  quant::Sq8Store codes(dim_);
  if (storage_ == quant::Storage::kSq8) {
    std::string_view raw;
    SCCF_RETURN_NOT_OK(
        reader.ReadView(static_cast<size_t>(count) * dim_, &raw));
    std::vector<float> scales, offsets;
    SCCF_RETURN_NOT_OK(reader.ReadFloats(static_cast<size_t>(count), &scales));
    SCCF_RETURN_NOT_OK(
        reader.ReadFloats(static_cast<size_t>(count), &offsets));
    const int8_t* code_rows = reinterpret_cast<const int8_t*>(raw.data());
    for (uint64_t i = 0; i < count; ++i) {
      codes.AppendEncoded(code_rows + i * dim_, {scales[i], offsets[i]});
    }
  } else {
    SCCF_RETURN_NOT_OK(
        reader.ReadFloats(static_cast<size_t>(count) * dim_, &data));
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes in index blob");
  }

  ids_are_slots_ = ids_are_slots != 0;
  ids_ = std::move(ids);
  slot_ = std::move(slot);
  data_ = std::move(data);
  codes_ = std::move(codes);
  return Status::OK();
}

}  // namespace sccf::index
