#include "index/brute_force_index.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace sccf::index {

namespace {
void NormalizeCopy(const float* in, float* out, size_t d) {
  const float norm = tensor_ops::Norm(in, d);
  const float inv = norm > 0.0f ? 1.0f / norm : 0.0f;
  for (size_t i = 0; i < d; ++i) out[i] = in[i] * inv;
}
}  // namespace

BruteForceIndex::BruteForceIndex(size_t dim, Metric metric, bool parallel)
    : dim_(dim), metric_(metric), parallel_(parallel) {}

Status BruteForceIndex::Add(int id, const float* vec) {
  if (id < 0) return Status::InvalidArgument("id must be non-negative");
  auto it = slot_.find(id);
  size_t s;
  if (it != slot_.end()) {
    s = it->second;
  } else {
    s = ids_.size();
    ids_.push_back(id);
    data_.resize(data_.size() + dim_);
    slot_[id] = s;
  }
  float* dst = data_.data() + s * dim_;
  if (metric_ == Metric::kCosine) {
    NormalizeCopy(vec, dst, dim_);
  } else {
    std::copy(vec, vec + dim_, dst);
  }
  return Status::OK();
}

StatusOr<std::vector<Neighbor>> BruteForceIndex::Search(
    const float* query, size_t k, int exclude_id) const {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  std::vector<float> qnorm;
  const float* q = query;
  if (metric_ == Metric::kCosine) {
    qnorm.resize(dim_);
    NormalizeCopy(query, qnorm.data(), dim_);
    q = qnorm.data();
  }

  const size_t n = ids_.size();
  auto scan = [&](size_t lo, size_t hi, TopKAccumulator* acc) {
    for (size_t s = lo; s < hi; ++s) {
      if (ids_[s] == exclude_id) continue;
      const float score = tensor_ops::Dot(q, data_.data() + s * dim_, dim_);
      acc->Offer(ids_[s], score);
    }
  };

  if (!parallel_ || n < 4096) {
    TopKAccumulator acc(k);
    scan(0, n, &acc);
    return acc.Take();
  }

  std::mutex mu;
  TopKAccumulator merged(k);
  ParallelForBlocked(0, n, [&](size_t lo, size_t hi) {
    TopKAccumulator local(k);
    scan(lo, hi, &local);
    std::vector<Neighbor> part = local.Take();
    std::lock_guard<std::mutex> lock(mu);
    for (const Neighbor& nb : part) merged.Offer(nb.id, nb.score);
  });
  return merged.Take();
}

}  // namespace sccf::index
