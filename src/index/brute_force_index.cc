#include "index/brute_force_index.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <utility>

#include "simd/kernels.h"
#include "util/coding.h"
#include "util/thread_pool.h"

namespace sccf::index {

BruteForceIndex::BruteForceIndex(size_t dim, Metric metric, bool parallel)
    : dim_(dim), metric_(metric), parallel_(parallel) {}

Status BruteForceIndex::Add(int id, const float* vec) {
  if (id < 0) return Status::InvalidArgument("id must be non-negative");
  auto it = slot_.find(id);
  size_t s;
  if (it != slot_.end()) {
    s = it->second;
  } else {
    s = ids_.size();
    if (id != static_cast<int>(s)) ids_are_slots_ = false;
    ids_.push_back(id);
    data_.resize(data_.size() + dim_);
    slot_[id] = s;
  }
  float* dst = data_.data() + s * dim_;
  if (metric_ == Metric::kCosine) {
    simd::NormalizeCopy(vec, dst, dim_);
  } else {
    std::copy(vec, vec + dim_, dst);
  }
  return Status::OK();
}

StatusOr<std::vector<Neighbor>> BruteForceIndex::Search(
    const float* query, size_t k, int exclude_id) const {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  std::vector<float> qnorm;
  const float* q = query;
  if (metric_ == Metric::kCosine) {
    qnorm.resize(dim_);
    simd::NormalizeCopy(query, qnorm.data(), dim_);
    q = qnorm.data();
  }

  const size_t n = ids_.size();

  // Fast path: ids equal slots (the common case — SCCF inserts users
  // 0..n-1 in order), so TopKDot's row-order tie handling matches
  // TopKAccumulator's id-order tie handling exactly and the whole scan
  // stays inside the batched kernel.
  if (!parallel_ || n < 4096) {
    if (ids_are_slots_) {
      ptrdiff_t exclude_row = -1;
      if (exclude_id >= 0) {
        auto it = slot_.find(exclude_id);
        if (it != slot_.end()) exclude_row = it->second;
      }
      std::vector<std::pair<int, float>> top;
      simd::TopKDot(q, data_.data(), n, dim_, k, exclude_row, &top);
      std::vector<Neighbor> out;
      out.reserve(top.size());
      for (const auto& [row, score] : top) out.push_back({row, score});
      return out;
    }
    TopKAccumulator acc(k);
    ScanRange(q, 0, n, exclude_id, &acc);
    return acc.Take();
  }

  std::mutex mu;
  TopKAccumulator merged(k);
  ParallelForBlocked(0, n, [&](size_t lo, size_t hi) {
    TopKAccumulator local(k);
    ScanRange(q, lo, hi, exclude_id, &local);
    std::vector<Neighbor> part = local.Take();
    std::lock_guard<std::mutex> lock(mu);
    for (const Neighbor& nb : part) merged.Offer(nb.id, nb.score);
  });
  return merged.Take();
}

void BruteForceIndex::ScanRange(const float* q, size_t lo, size_t hi,
                                int exclude_id, TopKAccumulator* acc) const {
  // Score a block of rows at a time through the batched kernel, then offer
  // sequentially — identical offer order (and therefore identical tie
  // handling) to the old one-dot-per-row loop.
  constexpr size_t kBlock = 256;
  float scores[kBlock];
  for (size_t s = lo; s < hi; s += kBlock) {
    const size_t len = std::min(kBlock, hi - s);
    simd::DotBatch(q, data_.data() + s * dim_, len, dim_, scores);
    for (size_t j = 0; j < len; ++j) {
      if (ids_[s + j] == exclude_id) continue;
      acc->Offer(ids_[s + j], scores[j]);
    }
  }
}

// Payload layout (inside the persist layer's checksummed framing):
//   u8 tag 'B' | u8 ids_are_slots | u64 dim | u64 count
//   i32 id x count | f32 row x (count * dim)
// Rows are stored exactly as held in memory (already normalised when the
// metric is cosine), so restore is a memcpy, not a re-normalisation —
// that is what makes recovery bit-exact.
void BruteForceIndex::SerializeTo(std::string* out) const {
  PutU8(out, 'B');
  PutU8(out, ids_are_slots_ ? 1 : 0);
  PutFixed64(out, static_cast<uint64_t>(dim_));
  PutFixed64(out, static_cast<uint64_t>(ids_.size()));
  for (int id : ids_) PutI32(out, id);
  PutFloats(out, data_.data(), data_.size());
}

Status BruteForceIndex::DeserializeFrom(std::string_view in) {
  ByteReader reader(in);
  uint8_t tag = 0, ids_are_slots = 0;
  uint64_t dim = 0, count = 0;
  SCCF_RETURN_NOT_OK(reader.ReadU8(&tag));
  if (tag != 'B') {
    return Status::InvalidArgument("not a brute-force index blob");
  }
  SCCF_RETURN_NOT_OK(reader.ReadU8(&ids_are_slots));
  SCCF_RETURN_NOT_OK(reader.ReadFixed64(&dim));
  if (dim != dim_) {
    return Status::InvalidArgument("index blob dim mismatch");
  }
  SCCF_RETURN_NOT_OK(reader.ReadFixed64(&count));

  std::vector<int> ids;
  std::unordered_map<int, size_t> slot;
  if (count > reader.remaining() / 4) {
    return Status::IoError("truncated index blob (ids)");
  }
  ids.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    int32_t id = 0;
    SCCF_RETURN_NOT_OK(reader.ReadI32(&id));
    if (id < 0) return Status::InvalidArgument("negative id in index blob");
    if (!slot.emplace(id, static_cast<size_t>(i)).second) {
      return Status::InvalidArgument("duplicate id in index blob");
    }
    ids.push_back(id);
  }
  std::vector<float> data;
  SCCF_RETURN_NOT_OK(
      reader.ReadFloats(static_cast<size_t>(count) * dim_, &data));
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes in index blob");
  }

  ids_are_slots_ = ids_are_slots != 0;
  ids_ = std::move(ids);
  slot_ = std::move(slot);
  data_ = std::move(data);
  return Status::OK();
}

}  // namespace sccf::index
