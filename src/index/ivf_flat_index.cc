#include "index/ivf_flat_index.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "simd/kernels.h"
#include "util/coding.h"
#include "util/logging.h"

namespace sccf::index {

IvfFlatIndex::IvfFlatIndex(size_t dim, Metric metric, Options options,
                           quant::Storage storage)
    : dim_(dim), metric_(metric), options_(options), storage_(storage) {
  SCCF_CHECK_GT(options_.nlist, 0u);
  SCCF_CHECK_GT(options_.nprobe, 0u);
}

Status IvfFlatIndex::Train(const std::vector<float>& vectors, size_t n) {
  if (vectors.size() != n * dim_) {
    return Status::InvalidArgument("training data size mismatch");
  }
  if (n < options_.nlist) {
    return Status::InvalidArgument(
        "need at least nlist training vectors, got " + std::to_string(n));
  }
  // Work on a normalised copy for cosine so centroids live in query space.
  std::vector<float> train = vectors;
  if (metric_ == Metric::kCosine) {
    for (size_t i = 0; i < n; ++i) {
      simd::NormalizeInPlace(&train[i * dim_], dim_);
    }
  }

  // k-means++ style seeding (random distinct picks) then Lloyd iterations.
  Rng rng(options_.seed);
  const size_t nlist = options_.nlist;
  centroids_.assign(nlist * dim_, 0.0f);
  std::vector<uint64_t> seeds = rng.SampleWithoutReplacement(n, nlist);
  for (size_t c = 0; c < nlist; ++c) {
    std::copy(&train[seeds[c] * dim_], &train[(seeds[c] + 1) * dim_],
              &centroids_[c * dim_]);
  }

  std::vector<size_t> assign(n, 0);
  std::vector<size_t> count(nlist, 0);
  for (size_t iter = 0; iter < options_.kmeans_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      size_t best = NearestCentroid(&train[i * dim_]);
      if (best != assign[i]) {
        assign[i] = best;
        changed = true;
      }
    }
    std::fill(count.begin(), count.end(), 0u);
    std::vector<float> sums(nlist * dim_, 0.0f);
    for (size_t i = 0; i < n; ++i) {
      ++count[assign[i]];
      simd::Axpy(1.0f, &train[i * dim_], &sums[assign[i] * dim_], dim_);
    }
    for (size_t c = 0; c < nlist; ++c) {
      if (count[c] == 0) {
        // Re-seed an empty cluster with a random vector to keep all lists
        // usable.
        const size_t pick = rng.Uniform(n);
        std::copy(&train[pick * dim_], &train[(pick + 1) * dim_],
                  &centroids_[c * dim_]);
        continue;
      }
      const float inv = 1.0f / count[c];
      for (size_t j = 0; j < dim_; ++j) {
        centroids_[c * dim_ + j] = sums[c * dim_ + j] * inv;
      }
    }
    if (!changed && iter > 0) break;
  }

  lists_.assign(nlist, {});
  assignment_.clear();
  trained_ = true;
  return Status::OK();
}

size_t IvfFlatIndex::NearestCentroid(const float* vec) const {
  size_t best = 0;
  float best_d = simd::SquaredL2(vec, &centroids_[0], dim_);
  for (size_t c = 1; c < options_.nlist; ++c) {
    const float d = simd::SquaredL2(vec, &centroids_[c * dim_], dim_);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

Status IvfFlatIndex::Add(int id, const float* vec) {
  if (!trained_) {
    return Status::FailedPrecondition("IvfFlatIndex::Train must run first");
  }
  if (id < 0) return Status::InvalidArgument("id must be non-negative");

  std::vector<float> v(vec, vec + dim_);
  if (metric_ == Metric::kCosine) simd::NormalizeInPlace(v.data(), dim_);

  Posting posting;
  posting.id = id;
  if (storage_ == quant::Storage::kSq8) {
    // Quantize first, then bucket by the DECODED row, so the posting
    // lives in the centroid list closest to the vector queries actually
    // score — assignment and search stay in the same space.
    posting.codes.resize(dim_);
    posting.qp = quant::Sq8Encode(v.data(), dim_, posting.codes.data());
    quant::Sq8Decode(posting.codes.data(), dim_, posting.qp, v.data());
  }

  auto it = assignment_.find(id);
  if (it != assignment_.end()) {
    // Streaming update: remove from the old bucket (swap-with-back).
    auto [list, pos] = it->second;
    auto& postings = lists_[list];
    if (pos != postings.size() - 1) {
      postings[pos] = std::move(postings.back());
      assignment_[postings[pos].id] = {list, pos};
    }
    postings.pop_back();
    assignment_.erase(it);
  }

  const size_t list = NearestCentroid(v.data());
  if (storage_ != quant::Storage::kSq8) posting.vec = std::move(v);
  lists_[list].push_back(std::move(posting));
  assignment_[id] = {list, lists_[list].size() - 1};
  return Status::OK();
}

Status IvfFlatIndex::Remove(int id) {
  auto it = assignment_.find(id);
  if (it == assignment_.end()) {
    return Status::NotFound("id not in index: " + std::to_string(id));
  }
  // True delete: same swap-with-back the streaming-update path uses.
  auto [list, pos] = it->second;
  auto& postings = lists_[list];
  if (pos != postings.size() - 1) {
    postings[pos] = std::move(postings.back());
    assignment_[postings[pos].id] = {list, pos};
  }
  postings.pop_back();
  assignment_.erase(it);
  return Status::OK();
}

IndexMemoryStats IvfFlatIndex::memory_stats() const {
  IndexMemoryStats stats;
  stats.embedding_bytes = centroids_.size() * sizeof(float);
  const size_t rows = assignment_.size();
  if (storage_ == quant::Storage::kSq8) {
    stats.code_bytes = rows * (dim_ * sizeof(int8_t) + 2 * sizeof(float));
  } else {
    stats.embedding_bytes += rows * dim_ * sizeof(float);
  }
  return stats;
}

StatusOr<std::vector<Neighbor>> IvfFlatIndex::Search(const float* query,
                                                     size_t k,
                                                     int exclude_id) const {
  if (!trained_) {
    return Status::FailedPrecondition("IvfFlatIndex::Train must run first");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");

  std::vector<float> qbuf(query, query + dim_);
  if (metric_ == Metric::kCosine) simd::NormalizeInPlace(qbuf.data(), dim_);
  const float* q = qbuf.data();

  // Rank centroids by distance and scan the nprobe closest lists.
  const size_t nlist = options_.nlist;
  std::vector<std::pair<float, size_t>> order(nlist);
  for (size_t c = 0; c < nlist; ++c) {
    order[c] = {simd::SquaredL2(q, &centroids_[c * dim_], dim_), c};
  }
  const size_t nprobe = std::min(options_.nprobe, nlist);
  std::partial_sort(order.begin(), order.begin() + nprobe, order.end());

  float qsum = 0.0f;
  if (storage_ == quant::Storage::kSq8) {
    for (size_t i = 0; i < dim_; ++i) qsum += q[i];
  }

  TopKAccumulator acc(k);
  for (size_t p = 0; p < nprobe; ++p) {
    for (const Posting& posting : lists_[order[p].second]) {
      if (posting.id == exclude_id) continue;
      if (storage_ == quant::Storage::kSq8) {
        const float raw = simd::DotI8(q, posting.codes.data(), dim_);
        acc.Offer(posting.id,
                  posting.qp.scale * raw + posting.qp.offset * qsum);
      } else {
        acc.Offer(posting.id, simd::Dot(q, posting.vec.data(), dim_));
      }
    }
  }
  return acc.Take();
}

// Payload layout:
//   u8 tag 'I' | u8 storage | u64 dim | u8 trained | u64 nlist
//   f32 centroid x (nlist * dim)
//   per list: u64 count | per posting:
//     fp32: i32 id | f32 vec x dim
//     sq8:  i32 id | i8 code x dim | f32 scale | f32 offset
// Centroids are persisted rather than re-trained: Train() re-seeds empty
// clusters from its own RNG, so a re-run could place centroids (and thus
// postings) differently from the serialized run. assignment_ is derived
// from lists_ and not stored. SQ8 codes/params are verbatim bytes —
// restore never re-quantizes.
void IvfFlatIndex::SerializeTo(std::string* out) const {
  PutU8(out, 'I');
  PutU8(out, static_cast<uint8_t>(storage_));
  PutFixed64(out, static_cast<uint64_t>(dim_));
  PutU8(out, trained_ ? 1 : 0);
  PutFixed64(out, static_cast<uint64_t>(lists_.size()));
  PutFloats(out, centroids_.data(), centroids_.size());
  for (const std::vector<Posting>& postings : lists_) {
    PutFixed64(out, static_cast<uint64_t>(postings.size()));
    for (const Posting& posting : postings) {
      PutI32(out, posting.id);
      if (storage_ == quant::Storage::kSq8) {
        out->append(reinterpret_cast<const char*>(posting.codes.data()),
                    posting.codes.size());
        PutF32(out, posting.qp.scale);
        PutF32(out, posting.qp.offset);
      } else {
        PutFloats(out, posting.vec.data(), posting.vec.size());
      }
    }
  }
}

Status IvfFlatIndex::DeserializeFrom(std::string_view in) {
  ByteReader reader(in);
  uint8_t tag = 0, storage = 0, trained = 0;
  uint64_t dim = 0, nlist = 0;
  SCCF_RETURN_NOT_OK(reader.ReadU8(&tag));
  if (tag != 'I') return Status::InvalidArgument("not an IVF index blob");
  SCCF_RETURN_NOT_OK(reader.ReadU8(&storage));
  if (storage != static_cast<uint8_t>(storage_)) {
    return Status::InvalidArgument("index blob storage mode mismatch");
  }
  SCCF_RETURN_NOT_OK(reader.ReadFixed64(&dim));
  if (dim != dim_) {
    return Status::InvalidArgument("index blob dim mismatch");
  }
  SCCF_RETURN_NOT_OK(reader.ReadU8(&trained));
  SCCF_RETURN_NOT_OK(reader.ReadFixed64(&nlist));
  // The serializing index's nlist was clamped to its *bootstrap*
  // population (see core::RealTimeService::MakeShardIndex), which a
  // restoring index constructed later cannot re-derive — so the blob's
  // nlist is authoritative and options_.nlist is adopted from it below.
  // Bound it only against the buffer so an adversarial count cannot
  // drive the centroid read into a huge allocation.
  if (trained != 0 &&
      (nlist == 0 || (dim_ != 0 && nlist > in.size() / (4 * dim_) + 1))) {
    return Status::InvalidArgument("index blob nlist out of range");
  }
  if (trained == 0 && nlist != 0) {
    return Status::InvalidArgument("untrained index blob with lists");
  }

  std::vector<float> centroids;
  SCCF_RETURN_NOT_OK(
      reader.ReadFloats(static_cast<size_t>(nlist) * dim_, &centroids));
  std::vector<std::vector<Posting>> lists(static_cast<size_t>(nlist));
  std::unordered_map<int, std::pair<size_t, size_t>> assignment;
  for (size_t list = 0; list < lists.size(); ++list) {
    uint64_t count = 0;
    SCCF_RETURN_NOT_OK(reader.ReadFixed64(&count));
    // Each posting costs at least 4 + dim bytes (sq8) or 4 + 4 * dim
    // (fp32); bound with the smaller.
    if (count > reader.remaining() / (4 + dim_)) {
      return Status::IoError("truncated index blob (posting list)");
    }
    lists[list].reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      Posting posting;
      SCCF_RETURN_NOT_OK(reader.ReadI32(&posting.id));
      if (posting.id < 0) {
        return Status::InvalidArgument("negative id in index blob");
      }
      if (storage_ == quant::Storage::kSq8) {
        std::string_view raw;
        SCCF_RETURN_NOT_OK(reader.ReadView(dim_, &raw));
        posting.codes.assign(
            reinterpret_cast<const int8_t*>(raw.data()),
            reinterpret_cast<const int8_t*>(raw.data()) + dim_);
        SCCF_RETURN_NOT_OK(reader.ReadF32(&posting.qp.scale));
        SCCF_RETURN_NOT_OK(reader.ReadF32(&posting.qp.offset));
      } else {
        SCCF_RETURN_NOT_OK(reader.ReadFloats(dim_, &posting.vec));
      }
      if (!assignment
               .emplace(posting.id,
                        std::make_pair(list, static_cast<size_t>(i)))
               .second) {
        return Status::InvalidArgument("duplicate id in index blob");
      }
      lists[list].push_back(std::move(posting));
    }
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes in index blob");
  }

  trained_ = trained != 0;
  if (trained_) options_.nlist = static_cast<size_t>(nlist);
  centroids_ = std::move(centroids);
  lists_ = std::move(lists);
  assignment_ = std::move(assignment);
  return Status::OK();
}

}  // namespace sccf::index
