#ifndef SCCF_INDEX_VECTOR_INDEX_H_
#define SCCF_INDEX_VECTOR_INDEX_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "quant/sq8.h"
#include "util/status.h"

namespace sccf::index {

/// Similarity metric for vector search. Cosine is implemented by storing
/// L2-normalised copies, after which inner product equals cosine.
enum class Metric { kInnerProduct, kCosine };

/// One search hit: external id plus similarity score (higher is better).
struct Neighbor {
  int id = -1;
  float score = 0.0f;
};

/// Bytes and structural debt a backend currently holds, split by
/// representation so operators can see what a storage-mode switch buys.
/// embedding_bytes counts fp32 row storage (including IVF centroids and
/// HNSW tombstoned nodes — they occupy RAM until a rebuild). code_bytes
/// counts SQ8 codes plus their per-row scale/offset params. tombstones is
/// the count of dead-but-resident entries (only HNSW accrues them).
struct IndexMemoryStats {
  size_t embedding_bytes = 0;
  size_t code_bytes = 0;
  size_t tombstones = 0;
};

/// Dynamic nearest-neighbor index over float vectors, the substrate the
/// SCCF user-based component queries to identify each user's neighborhood
/// in real time (paper Sec. III-C; the role Faiss plays in the original
/// system). `Add` with an existing id replaces the stored vector, which is
/// the streaming-update path used when a user's embedding is re-inferred
/// after a new interaction.
///
/// Concurrency contract (audited for all three backends — BruteForce,
/// HNSW, IVF-Flat): implementations are NOT internally synchronized.
///
///  - Concurrent const calls (`Search`, `size`, `dim`, `metric`) are
///    safe with each other: every backend keeps its query scratch
///    (normalised query copies, visited sets, accumulators) in locals,
///    with no `mutable` members.
///  - Mutations — `Add`, `IvfFlatIndex::Train`, and the non-const tuning
///    setters (`HnswIndex::set_ef_search`, `IvfFlatIndex::set_nprobe`) —
///    require exclusive access: no other call, const or not, may run
///    concurrently with them. HNSW's `Add` additionally draws from the
///    index's own Rng, so even "independent" inserts must be serialized.
///  - Callers own the synchronization. The sharded
///    `core::RealTimeService` wraps each shard's index in a
///    `std::shared_mutex` (shared for Search, exclusive for Add), which
///    is the intended usage pattern.
///  - `BruteForceIndex` built with `parallel = true` fans `Search` out on
///    the global `ThreadPool`; never call that from inside a pool worker
///    (`ParallelFor` nesting is forbidden, see util/thread_pool.h).
///
/// Buffered-upsert contract: because `Add` with an existing id replaces
/// the stored vector, a caller may defer a burst of upserts in a side
/// buffer and apply only each id's *final* vector at a compaction point —
/// the index state after the deferred `Add`s is identical to applying
/// every intermediate `Add`, minus the per-call structural churn (HNSW
/// tombstone + reinsert, IVF posting reassignment, brute-force row
/// rewrites). Queries issued between compactions must merge the buffer's
/// contents with `Search` results themselves (staged ids shadow their
/// stale indexed entry; staged-but-never-indexed ids are cold-start
/// inserts). When a compaction point fires is the *caller's* policy, not
/// this contract's: `core::RealTimeService` applies the discipline per
/// shard and drains on any of a count threshold
/// (`Options::compaction_threshold`), a wall-clock age bound
/// (`Options::compaction_interval_ms`, checked on its ingest and query
/// paths), a background compaction sweep
/// (`Options::background_compaction`), or an explicit `Compact()` — all
/// equivalent by this contract, because a drain applies the same final
/// vectors regardless of what triggered it. `UpsertBuffer` below
/// implements exactly this staging discipline.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Inserts or replaces the vector for `id`. Pre: id >= 0.
  virtual Status Add(int id, const float* vec) = 0;

  /// Removes `id` from the index; NotFound when absent. Removal is a
  /// *true* delete for brute-force and IVF (the row is gone). HNSW
  /// tombstones the node to preserve graph routing, then rebuilds the
  /// whole graph once tombstones exceed Options::max_tombstone_ratio —
  /// so resident dead nodes are bounded, not monotone. Requires
  /// exclusive access like Add.
  virtual Status Remove(int id) = 0;

  /// Top-k ids by similarity to `query`, descending. `exclude_id` (if >= 0)
  /// is never returned — the paper excludes the user herself from N_u.
  /// Returns fewer than k results when the index is smaller.
  virtual StatusOr<std::vector<Neighbor>> Search(const float* query,
                                                 size_t k,
                                                 int exclude_id = -1) const = 0;

  virtual size_t size() const = 0;
  virtual size_t dim() const = 0;
  virtual Metric metric() const = 0;

  /// Which representation rows are held in (fixed at construction).
  virtual quant::Storage storage() const = 0;

  /// Current resident footprint; safe concurrently with Search (reads
  /// container sizes only). See IndexMemoryStats.
  virtual IndexMemoryStats memory_stats() const = 0;

  /// Appends the backend's complete internal state to `*out` — stored
  /// rows, graph topology including tombstones, centroids, and any
  /// internal RNG — so that DeserializeFrom on a freshly constructed
  /// index with identical options reproduces it *bit-exactly*: every
  /// subsequent Add and Search behaves as if the index had never been
  /// serialized. The persistence layer owns outer framing and checksums;
  /// this payload still self-describes enough (backend tag, dim) to
  /// reject a blob from the wrong backend or geometry.
  virtual void SerializeTo(std::string* out) const = 0;

  /// Restores state written by SerializeTo into this index. The index
  /// must have been constructed with the same backend, dim, metric, and
  /// options as the serializing one. Structure is validated before any
  /// member is mutated: on error the index is unchanged.
  virtual Status DeserializeFrom(std::string_view in) = 0;
};

/// Bounded accumulator of the k highest-scoring candidates.
class TopKAccumulator {
 public:
  explicit TopKAccumulator(size_t k) : k_(k) { heap_.reserve(k + 1); }

  /// Offers a candidate; kept only if it beats the current k-th best.
  void Offer(int id, float score);

  /// True if a candidate with `score` would be accepted right now.
  bool WouldAccept(float score) const {
    return heap_.size() < k_ || score > heap_.front().score;
  }

  /// Extracts results sorted by descending score (ties: ascending id).
  /// The accumulator is emptied.
  std::vector<Neighbor> Take();

  size_t size() const { return heap_.size(); }

 private:
  size_t k_ = 0;
  // Min-heap on score so the root is the current worst kept candidate.
  std::vector<Neighbor> heap_;
};

/// Insertion-ordered staging area for deferred index upserts — the write
/// half of the buffered-upsert contract documented on VectorIndex. Callers
/// stage (id, vector) pairs with Put (re-staging an id overwrites its row
/// in place, so only the final vector survives to the flush), answer
/// queries by combining OfferTo with the backend's Search results, and
/// flush with DrainTo at their compaction point.
///
/// Vectors are stored raw: DrainTo hands the backend exactly the bytes a
/// direct Add would have received, so a drain is bit-identical to having
/// called Add with each id's final vector. Cosine scoring in OfferTo
/// normalises on the fly instead (score = <q/|q|, v> / |v|, zero norms
/// score 0), matching the backends' normalised-copy semantics to within
/// rounding.
///
/// In sq8 mode the buffer additionally quantizes each staged row exactly
/// as the backend's Add will (normalise-then-encode for cosine), and
/// OfferTo scores the *codes* with the affine int8 dot — so a staged
/// row's merged score is bit-identical to its post-drain indexed score,
/// and queries never observe a drain. DrainTo still hands the backend
/// the raw fp32 row (encoding is deterministic, so the backend derives
/// the same codes), which keeps shard snapshots of staged rows in plain
/// fp32 regardless of storage mode.
///
/// Not internally synchronized — same contract as VectorIndex; the owner
/// guards it with the same lock as the index it stages for.
class UpsertBuffer {
 public:
  UpsertBuffer(size_t dim, Metric metric,
               quant::Storage storage = quant::Storage::kFp32)
      : dim_(dim), metric_(metric), storage_(storage), codes_(dim) {}

  /// Stages a copy of `vec` (dim floats) for `id`. Pre: id >= 0.
  void Put(int id, const float* vec);

  /// True if `id` has a staged (not yet drained) vector. A staged id's
  /// indexed entry, if any, is stale and must be shadowed at query time.
  bool contains(int id) const { return pos_.find(id) != pos_.end(); }

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  size_t dim() const { return dim_; }
  Metric metric() const { return metric_; }
  quant::Storage storage() const { return storage_; }
  /// Staged ids in first-Put order (diagnostics / tests / snapshots).
  const std::vector<int>& ids() const { return ids_; }

  /// Raw staged row for ids()[i] — exactly the dim() floats a future
  /// DrainTo would hand the backend. Exposed so shard snapshots can
  /// persist staged-but-undrained upserts verbatim.
  const float* row(size_t i) const { return data_.data() + i * dim_; }

  /// Scores every staged vector against `query` under the buffer's metric
  /// and offers (id, score) to `acc`, skipping `exclude_id`. Together with
  /// offering the backend's Search hits (minus ids `contains` shadows)
  /// into the same accumulator, this yields the fresh merged top-k.
  void OfferTo(const float* query, int exclude_id,
               TopKAccumulator* acc) const;

  /// Flushes staged vectors into `index` via Add in first-Put order (so
  /// downstream slot / graph-insertion order is deterministic) and clears
  /// the buffer. Returns the first Add error, if any; the buffer is
  /// cleared regardless (staged ids are validated by the caller up front,
  /// so a failed Add is a programming error, not recoverable input).
  Status DrainTo(VectorIndex* index);

 private:
  size_t dim_ = 0;
  Metric metric_;
  quant::Storage storage_ = quant::Storage::kFp32;
  std::vector<int> ids_;                   // row -> external id
  std::vector<float> data_;                // ids_.size() x dim_, raw rows
  std::vector<float> inv_norms_;           // 1/|row| (0 for zero rows)
  quant::Sq8Store codes_;                  // sq8 mode: backend-identical codes
  std::unordered_map<int, size_t> pos_;    // external id -> row
};

}  // namespace sccf::index

#endif  // SCCF_INDEX_VECTOR_INDEX_H_
