#ifndef SCCF_INDEX_VECTOR_INDEX_H_
#define SCCF_INDEX_VECTOR_INDEX_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace sccf::index {

/// Similarity metric for vector search. Cosine is implemented by storing
/// L2-normalised copies, after which inner product equals cosine.
enum class Metric { kInnerProduct, kCosine };

/// One search hit: external id plus similarity score (higher is better).
struct Neighbor {
  int id = -1;
  float score = 0.0f;
};

/// Dynamic nearest-neighbor index over float vectors, the substrate the
/// SCCF user-based component queries to identify each user's neighborhood
/// in real time (paper Sec. III-C; the role Faiss plays in the original
/// system). `Add` with an existing id replaces the stored vector, which is
/// the streaming-update path used when a user's embedding is re-inferred
/// after a new interaction.
///
/// Concurrency contract (audited for all three backends — BruteForce,
/// HNSW, IVF-Flat): implementations are NOT internally synchronized.
///
///  - Concurrent const calls (`Search`, `size`, `dim`, `metric`) are
///    safe with each other: every backend keeps its query scratch
///    (normalised query copies, visited sets, accumulators) in locals,
///    with no `mutable` members.
///  - Mutations — `Add`, `IvfFlatIndex::Train`, and the non-const tuning
///    setters (`HnswIndex::set_ef_search`, `IvfFlatIndex::set_nprobe`) —
///    require exclusive access: no other call, const or not, may run
///    concurrently with them. HNSW's `Add` additionally draws from the
///    index's own Rng, so even "independent" inserts must be serialized.
///  - Callers own the synchronization. The sharded
///    `core::RealTimeService` wraps each shard's index in a
///    `std::shared_mutex` (shared for Search, exclusive for Add), which
///    is the intended usage pattern.
///  - `BruteForceIndex` built with `parallel = true` fans `Search` out on
///    the global `ThreadPool`; never call that from inside a pool worker
///    (`ParallelFor` nesting is forbidden, see util/thread_pool.h).
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Inserts or replaces the vector for `id`. Pre: id >= 0.
  virtual Status Add(int id, const float* vec) = 0;

  /// Top-k ids by similarity to `query`, descending. `exclude_id` (if >= 0)
  /// is never returned — the paper excludes the user herself from N_u.
  /// Returns fewer than k results when the index is smaller.
  virtual StatusOr<std::vector<Neighbor>> Search(const float* query,
                                                 size_t k,
                                                 int exclude_id = -1) const = 0;

  virtual size_t size() const = 0;
  virtual size_t dim() const = 0;
  virtual Metric metric() const = 0;
};

/// Bounded accumulator of the k highest-scoring candidates.
class TopKAccumulator {
 public:
  explicit TopKAccumulator(size_t k) : k_(k) { heap_.reserve(k + 1); }

  /// Offers a candidate; kept only if it beats the current k-th best.
  void Offer(int id, float score);

  /// True if a candidate with `score` would be accepted right now.
  bool WouldAccept(float score) const {
    return heap_.size() < k_ || score > heap_.front().score;
  }

  /// Extracts results sorted by descending score (ties: ascending id).
  /// The accumulator is emptied.
  std::vector<Neighbor> Take();

  size_t size() const { return heap_.size(); }

 private:
  size_t k_ = 0;
  // Min-heap on score so the root is the current worst kept candidate.
  std::vector<Neighbor> heap_;
};

}  // namespace sccf::index

#endif  // SCCF_INDEX_VECTOR_INDEX_H_
