#ifndef SCCF_INDEX_IVF_FLAT_INDEX_H_
#define SCCF_INDEX_IVF_FLAT_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/vector_index.h"
#include "util/random.h"

namespace sccf::index {

/// Inverted-file index with flat (uncompressed) storage, the classic
/// Faiss IVF-Flat design: vectors are bucketed by their nearest k-means
/// centroid; a query scans only the `nprobe` closest buckets.
///
/// Usage: construct, call Train() once with a representative sample, then
/// Add/Search freely. Adding before Train() returns FailedPrecondition.
/// Re-adding an id reassigns it to the (possibly different) current bucket,
/// which is the streaming-user-update path.
///
/// Thread-safety: concurrent Search calls are safe after Train (query
/// scratch is local); Train, Add, and set_nprobe require exclusive access
/// — Add swap-removes postings and rewrites assignment_ entries that a
/// concurrent scan could be reading. See the contract in vector_index.h.
class IvfFlatIndex : public VectorIndex {
 public:
  struct Options {
    size_t nlist = 64;   ///< number of coarse centroids
    size_t nprobe = 8;   ///< buckets scanned per query
    size_t kmeans_iters = 10;
    uint64_t seed = 42;
  };

  IvfFlatIndex(size_t dim, Metric metric, Options options,
               quant::Storage storage = quant::Storage::kFp32);

  /// Learns the coarse quantizer from `vectors` (n x dim, row-major).
  /// Pre: n >= nlist. Centroids are always fp32, whatever the posting
  /// storage mode — they are nlist rows, not the memory problem.
  Status Train(const std::vector<float>& vectors, size_t n);

  bool trained() const { return trained_; }

  Status Add(int id, const float* vec) override;
  Status Remove(int id) override;
  StatusOr<std::vector<Neighbor>> Search(const float* query, size_t k,
                                         int exclude_id = -1) const override;

  size_t size() const override { return assignment_.size(); }
  size_t dim() const override { return dim_; }
  Metric metric() const override { return metric_; }
  quant::Storage storage() const override { return storage_; }
  IndexMemoryStats memory_stats() const override;

  void set_nprobe(size_t nprobe) { options_.nprobe = nprobe; }

  void SerializeTo(std::string* out) const override;
  Status DeserializeFrom(std::string_view in) override;

 private:
  struct Posting {
    int id = -1;
    std::vector<float> vec;      // fp32 mode: normalised when cosine
    std::vector<int8_t> codes;   // sq8 mode: dim codes
    quant::Sq8Params qp;         // sq8 mode: per-row affine params
  };

  size_t NearestCentroid(const float* vec) const;

  size_t dim_ = 0;
  Metric metric_;
  Options options_;
  quant::Storage storage_ = quant::Storage::kFp32;
  bool trained_ = false;
  std::vector<float> centroids_;              // nlist x dim
  std::vector<std::vector<Posting>> lists_;   // per-centroid postings
  // id -> (list, position) for O(1) streaming reassignment.
  std::unordered_map<int, std::pair<size_t, size_t>> assignment_;
};

}  // namespace sccf::index

#endif  // SCCF_INDEX_IVF_FLAT_INDEX_H_
