#ifndef SCCF_INDEX_BRUTE_FORCE_INDEX_H_
#define SCCF_INDEX_BRUTE_FORCE_INDEX_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "index/vector_index.h"

namespace sccf::index {

/// Exact top-k search by exhaustive scan. O(n * d) per query, optionally
/// parallelised across blocks of the corpus. Serves as the ground truth
/// for ANN recall tests and as the paper's exact-Faiss stand-in at the
/// corpus sizes used in the offline experiments.
///
/// Thread-safety: concurrent Search calls are safe (query scratch is
/// local); Add requires exclusive access (it may grow/rehash data_, ids_,
/// and slot_, invalidating a concurrent scan). See the contract in
/// vector_index.h. With `parallel = true`, Search uses the global
/// ThreadPool and must not be called from a pool worker.
class BruteForceIndex : public VectorIndex {
 public:
  BruteForceIndex(size_t dim, Metric metric, bool parallel = false,
                  quant::Storage storage = quant::Storage::kFp32);

  Status Add(int id, const float* vec) override;
  Status Remove(int id) override;
  StatusOr<std::vector<Neighbor>> Search(const float* query, size_t k,
                                         int exclude_id = -1) const override;

  size_t size() const override { return ids_.size(); }
  size_t dim() const override { return dim_; }
  Metric metric() const override { return metric_; }
  quant::Storage storage() const override { return storage_; }
  IndexMemoryStats memory_stats() const override;

  void SerializeTo(std::string* out) const override;
  Status DeserializeFrom(std::string_view in) override;

 private:
  /// Scores rows [lo, hi) against q via the batched dot kernel (fp32 or
  /// int8 affine, per storage mode) and offers them to the accumulator in
  /// slot order, skipping exclude_id. `qsum` is sum(q), used only in sq8
  /// mode.
  void ScanRange(const float* q, float qsum, size_t lo, size_t hi,
                 int exclude_id, TopKAccumulator* acc) const;

  size_t dim_ = 0;
  Metric metric_;
  bool parallel_ = false;
  quant::Storage storage_ = quant::Storage::kFp32;
  bool ids_are_slots_ = true;            // every id equals its slot so far
  std::vector<float> data_;              // fp32: slot-major, normalised if
                                         // cosine; unused in sq8 mode
  quant::Sq8Store codes_;                // sq8: slot-major codes + params
  std::vector<int> ids_;                 // slot -> external id
  std::unordered_map<int, size_t> slot_;  // external id -> slot
};

}  // namespace sccf::index

#endif  // SCCF_INDEX_BRUTE_FORCE_INDEX_H_
