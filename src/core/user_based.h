#ifndef SCCF_CORE_USER_BASED_H_
#define SCCF_CORE_USER_BASED_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "index/brute_force_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_flat_index.h"
#include "index/vector_index.h"
#include "models/recommender.h"

namespace sccf::core {

/// Which ANN backend identifies the user neighborhood.
enum class IndexKind { kBruteForce, kIvfFlat, kHnsw };

/// The SCCF user-based component (paper Sec. III-C).
///
/// It owns no trainable parameters: user representations are inferred by
/// the inductive UI model from each user's recent items (the paper infers
/// from the latest 15), stored in a vector index, and a user's
/// neighborhood N_u is the top-beta most cosine-similar users (Eq. 11).
/// Candidates are the neighbors' recent items, weighted by similarity
/// (Eq. 12), excluding the querying user's own history.
class UserBasedComponent : public models::Recommender {
 public:
  struct Options {
    /// Neighborhood size beta (Sec. III-C, Table IV sweeps {50,100,200}).
    size_t beta = 100;
    /// Recent items used to infer the query user embedding (15 in paper).
    size_t infer_window = 15;
    /// Recent items each neighbor contributes as votes (15 in paper).
    size_t vote_window = 15;
    IndexKind index_kind = IndexKind::kBruteForce;
    index::Metric metric = index::Metric::kCosine;
    /// Embedding storage inside the index: fp32 rows or SQ8 codes
    /// (int8 + per-row scale/offset, scored via the int8 kernels).
    quant::Storage storage = quant::Storage::kFp32;
    /// Build the user snapshot from prefix+validation histories (test-time
    /// protocol) instead of training prefixes.
    bool include_validation = false;
    index::IvfFlatIndex::Options ivf;
    index::HnswIndex::Options hnsw;
  };

  /// `base` must outlive this component and be fitted before Fit is
  /// called here.
  UserBasedComponent(const models::InductiveUiModel& base, Options options);

  std::string name() const override { return base_->name() + "-UU"; }

  /// Infers every user's embedding, builds the index, and snapshots each
  /// user's recent vote items.
  Status Fit(const data::LeaveOneOutSplit& split) override;

  /// Eq. 11 neighborhood of an arbitrary query embedding.
  std::vector<index::Neighbor> Neighbors(const float* query_embedding,
                                         size_t beta,
                                         int exclude_user) const;

  /// Eq. 12 scores: fresh query embedding from `history`'s tail, neighbor
  /// lookup, similarity-weighted votes over neighbors' recent items.
  void ScoreAll(size_t u, std::span<const int> history,
                std::vector<float>* scores) const override;

  /// Re-infers user `u` from `history` and updates the index and vote
  /// snapshot — the streaming path of the real-time service.
  Status UpdateUser(int u, std::span<const int> history);

  const index::VectorIndex& index() const { return *index_; }
  const models::InductiveUiModel& base() const { return *base_; }
  const Options& options() const { return options_; }
  size_t num_items() const { return num_items_; }

  /// Items user `v` contributes votes for (diagnostics).
  const std::vector<int>& vote_items(size_t v) const {
    return vote_items_[v];
  }

 private:
  std::unique_ptr<index::VectorIndex> MakeIndex(size_t n) const;
  void InferWindowEmbedding(std::span<const int> history, float* out) const;

  const models::InductiveUiModel* base_;
  Options options_;
  size_t num_items_ = 0;
  std::unique_ptr<index::VectorIndex> index_;
  std::vector<std::vector<int>> vote_items_;
};

}  // namespace sccf::core

#endif  // SCCF_CORE_USER_BASED_H_
