#include "core/user_based.h"

#include <algorithm>

#include "simd/kernels.h"
#include "util/logging.h"

namespace sccf::core {

UserBasedComponent::UserBasedComponent(const models::InductiveUiModel& base,
                                       Options options)
    : base_(&base), options_(options) {
  SCCF_CHECK_GT(options_.beta, 0u);
}

std::unique_ptr<index::VectorIndex> UserBasedComponent::MakeIndex(
    size_t /*n*/) const {
  const size_t d = base_->embedding_dim();
  switch (options_.index_kind) {
    case IndexKind::kBruteForce:
      return std::make_unique<index::BruteForceIndex>(
          d, options_.metric, /*parallel=*/false, options_.storage);
    case IndexKind::kIvfFlat:
      return std::make_unique<index::IvfFlatIndex>(d, options_.metric,
                                                   options_.ivf,
                                                   options_.storage);
    case IndexKind::kHnsw:
      return std::make_unique<index::HnswIndex>(d, options_.metric,
                                                options_.hnsw,
                                                options_.storage);
  }
  return nullptr;
}

void UserBasedComponent::InferWindowEmbedding(std::span<const int> history,
                                              float* out) const {
  const size_t take = options_.infer_window == 0
                          ? history.size()
                          : std::min(history.size(), options_.infer_window);
  base_->InferUserEmbedding(history.subspan(history.size() - take, take),
                            out);
}

Status UserBasedComponent::Fit(const data::LeaveOneOutSplit& split) {
  if (base_->num_items() == 0) {
    return Status::FailedPrecondition(
        "UI base model must be fitted before the user-based component");
  }
  const size_t n = split.num_users();
  const size_t d = base_->embedding_dim();
  num_items_ = split.dataset().num_items();
  index_ = MakeIndex(n);
  vote_items_.assign(n, {});

  // Infer all user embeddings (parallel-safe: base inference is const).
  std::vector<float> embeddings(n * d, 0.0f);
  for (size_t u = 0; u < n; ++u) {
    const std::span<const int> history =
        options_.include_validation ? split.TrainPlusValidSequence(u)
                                    : split.TrainSequence(u);
    if (history.empty()) continue;
    InferWindowEmbedding(history, embeddings.data() + u * d);

    const size_t vt = options_.vote_window == 0
                          ? history.size()
                          : std::min(history.size(), options_.vote_window);
    std::vector<int> votes(history.end() - vt, history.end());
    std::sort(votes.begin(), votes.end());
    votes.erase(std::unique(votes.begin(), votes.end()), votes.end());
    vote_items_[u] = std::move(votes);
  }

  // IVF needs a training pass over the corpus before inserts.
  if (options_.index_kind == IndexKind::kIvfFlat) {
    auto* ivf = static_cast<index::IvfFlatIndex*>(index_.get());
    SCCF_RETURN_NOT_OK(ivf->Train(embeddings, n));
  }
  for (size_t u = 0; u < n; ++u) {
    SCCF_RETURN_NOT_OK(
        index_->Add(static_cast<int>(u), embeddings.data() + u * d));
  }
  return Status::OK();
}

std::vector<index::Neighbor> UserBasedComponent::Neighbors(
    const float* query_embedding, size_t beta, int exclude_user) const {
  SCCF_CHECK(index_ != nullptr) << "Fit must be called first";
  auto result = index_->Search(query_embedding, beta, exclude_user);
  SCCF_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

void UserBasedComponent::ScoreAll(size_t u, std::span<const int> history,
                                  std::vector<float>* scores) const {
  scores->assign(num_items_, 0.0f);
  if (history.empty()) return;

  std::vector<float> query(base_->embedding_dim(), 0.0f);
  InferWindowEmbedding(history, query.data());
  const std::vector<index::Neighbor> neighborhood =
      Neighbors(query.data(), options_.beta, static_cast<int>(u));

  // Eq. 12: r^UU_ui = sum_{v in N_u} delta_vi * sim(u, v). Each
  // neighbor's vote list is sorted+unique (built in Fit/UpdateUser), which
  // is exactly the precondition simd::ScatterAddConstant needs.
  for (const index::Neighbor& nb : neighborhood) {
    const std::vector<int>& votes = vote_items_[nb.id];
    simd::ScatterAddConstant(scores->data(), votes.data(), votes.size(),
                             nb.score);
  }
  // Never recommend the user's own history (Sec. III-C).
  for (int item : history) (*scores)[item] = 0.0f;
}

Status UserBasedComponent::UpdateUser(int u, std::span<const int> history) {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("Fit must be called first");
  }
  if (u < 0) return Status::InvalidArgument("user id must be >= 0");
  const size_t d = base_->embedding_dim();
  std::vector<float> emb(d, 0.0f);
  InferWindowEmbedding(history, emb.data());
  SCCF_RETURN_NOT_OK(index_->Add(u, emb.data()));

  if (static_cast<size_t>(u) >= vote_items_.size()) {
    vote_items_.resize(u + 1);
  }
  const size_t vt = options_.vote_window == 0
                        ? history.size()
                        : std::min(history.size(), options_.vote_window);
  std::vector<int> votes(history.end() - vt, history.end());
  std::sort(votes.begin(), votes.end());
  votes.erase(std::unique(votes.begin(), votes.end()), votes.end());
  vote_items_[u] = std::move(votes);
  return Status::OK();
}

}  // namespace sccf::core
