#include "core/candidates.h"

#include <cmath>

namespace sccf::core {

CandidateList TopNFromScores(const std::vector<float>& scores, size_t n,
                             float floor) {
  index::TopKAccumulator acc(n);
  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] <= floor) continue;
    acc.Offer(static_cast<int>(i), scores[i]);
  }
  return acc.Take();
}

ScoreMoments MomentsOver(const std::vector<float>& scores,
                         const std::vector<int>& items) {
  ScoreMoments m;
  if (items.empty()) return m;
  double sum = 0.0;
  for (int i : items) sum += scores[i];
  m.mean = static_cast<float>(sum / items.size());
  double var = 0.0;
  for (int i : items) {
    const double t = scores[i] - m.mean;
    var += t * t;
  }
  var /= items.size();
  m.stddev = var > 1e-12 ? static_cast<float>(std::sqrt(var)) : 1.0f;
  return m;
}

}  // namespace sccf::core
