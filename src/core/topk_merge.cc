#include "core/topk_merge.h"

#include <algorithm>

namespace sccf::core {

void SortNeighborsDescending(std::vector<index::Neighbor>* neighbors) {
  std::sort(neighbors->begin(), neighbors->end(), NeighborBefore);
}

std::vector<index::Neighbor> MergeTopK(
    std::vector<std::vector<index::Neighbor>> lists, size_t k) {
  std::vector<index::Neighbor> out;
  if (k == 0) return out;

  // Cursor per non-empty list; a binary heap on the cursors' current
  // heads keeps the merge O(total * log(#lists)).
  struct Cursor {
    const std::vector<index::Neighbor>* list = nullptr;
    size_t pos = 0;
  };
  std::vector<Cursor> heap;
  heap.reserve(lists.size());
  size_t total = 0;
  for (const auto& list : lists) {
    if (!list.empty()) heap.push_back({&list, 0});
    total += list.size();
  }
  // std::push_heap keeps the *largest* element (by cmp) at front; we want
  // the best head there, so "less" means "worse head".
  const auto worse_head = [](const Cursor& a, const Cursor& b) {
    return NeighborBefore((*b.list)[b.pos], (*a.list)[a.pos]);
  };
  std::make_heap(heap.begin(), heap.end(), worse_head);

  out.reserve(std::min(k, total));
  while (!heap.empty() && out.size() < k) {
    std::pop_heap(heap.begin(), heap.end(), worse_head);
    Cursor& top = heap.back();
    out.push_back((*top.list)[top.pos]);
    if (++top.pos < top.list->size()) {
      std::push_heap(heap.begin(), heap.end(), worse_head);
    } else {
      heap.pop_back();
    }
  }
  return out;
}

}  // namespace sccf::core
