#ifndef SCCF_CORE_TOPK_MERGE_H_
#define SCCF_CORE_TOPK_MERGE_H_

#include <cstddef>
#include <vector>

#include "index/vector_index.h"

namespace sccf::core {

/// The one neighbor ordering used by every top-k producer in core:
/// descending score, ties broken by ascending id. Matches the orders
/// emitted by index::TopKAccumulator::Take and simd::TopKDot, so lists
/// from any backend can be merged without re-sorting.
inline bool NeighborBefore(const index::Neighbor& a,
                           const index::Neighbor& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// Sorts `neighbors` by NeighborBefore (descending score, id tiebreak).
void SortNeighborsDescending(std::vector<index::Neighbor>* neighbors);

/// K-way merge of per-source top-k lists into one global top-k.
///
/// Each input list must already be sorted by NeighborBefore (which every
/// VectorIndex::Search result is). Ids must be disjoint across lists —
/// the sharded RealTimeService guarantees this because users are
/// hash-partitioned. The result is the k globally best neighbors sorted
/// by NeighborBefore — what a single exact index over the union returns,
/// with one caveat: on *exactly* equal scores at the k boundary this
/// merge keeps the lower id, while a single index's TopKAccumulator
/// keeps whichever was offered first (insertion order). Both are valid
/// top-k sets; they coincide whenever insertion order is ascending-id
/// (the Bootstrap path) or boundary scores are distinct.
/// Returns fewer than k when the lists run out.
std::vector<index::Neighbor> MergeTopK(
    std::vector<std::vector<index::Neighbor>> lists, size_t k);

}  // namespace sccf::core

#endif  // SCCF_CORE_TOPK_MERGE_H_
