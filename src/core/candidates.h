#ifndef SCCF_CORE_CANDIDATES_H_
#define SCCF_CORE_CANDIDATES_H_

#include <cstddef>
#include <vector>

#include "index/vector_index.h"

namespace sccf::core {

/// A ranked candidate list (C^u_UI / C^u_UU of Eq. 14): item ids with
/// their raw preference scores, descending.
using CandidateList = std::vector<index::Neighbor>;

/// Extracts the top-n scoring items from a dense score array, skipping
/// entries at or below `floor` (used to mask history items).
CandidateList TopNFromScores(const std::vector<float>& scores, size_t n,
                             float floor = -1e29f);

/// Mean and standard deviation of the scores that `items` have in the
/// dense array `scores` — the per-user normalisation of Eq. 16. A zero
/// std is reported as 1 to keep the z-score defined.
struct ScoreMoments {
  float mean = 0.0f;
  float stddev = 1.0f;
};
ScoreMoments MomentsOver(const std::vector<float>& scores,
                         const std::vector<int>& items);

}  // namespace sccf::core

#endif  // SCCF_CORE_CANDIDATES_H_
