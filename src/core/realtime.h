#ifndef SCCF_CORE_REALTIME_H_
#define SCCF_CORE_REALTIME_H_

#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "core/candidates.h"
#include "core/user_based.h"
#include "data/split.h"
#include "models/recommender.h"
#include "util/status.h"

namespace sccf::core {

/// The streaming serving loop of the SCCF user-based component
/// (paper Sec. III-C2 and Table III): when a user interacts with a new
/// item, the service re-infers her representation with one forward pass of
/// the inductive UI model, refreshes the vector index, and can immediately
/// identify the new neighborhood — no retraining, unlike transductive
/// user-based baselines.
///
/// Scale-out design: users are hash-partitioned across `num_shards`
/// shards. Each shard owns its own VectorIndex, history/vote maps, and a
/// std::shared_mutex, so concurrent OnInteraction calls for users in
/// different shards never contend. Queries (Neighbors /
/// RecommendUserBased) fan a per-shard top-k search out under shared
/// (read) locks — one shard at a time, never holding two locks — and
/// merge the per-shard lists with the k-way merger in core/topk_merge.h.
///
/// Thread-safety contract:
///  - Bootstrap must be called exactly once and must complete (its return
///    establishes the happens-before edge) before any concurrent use.
///  - After that, any mix of OnInteraction / Neighbors /
///    RecommendUserBased / History / num_users calls from any threads is
///    safe. Per-user interaction order is serialized by the user's shard
///    lock; cross-shard reads see each shard's latest committed state
///    (per-query snapshot, not a global one).
///  - With num_shards = 1 the service reproduces the pre-sharding
///    single-index implementation bit-identically (pinned by
///    RealTimeTest.ShardedMatchesSingleShardExactly).
class RealTimeService {
 public:
  struct Options {
    size_t beta = 100;
    /// Recent items used to infer the query embedding (15 in the paper).
    size_t infer_window = 15;
    /// Recent items each user contributes as votes (15 in the paper).
    size_t vote_window = 15;
    /// User partitions, each with its own index and lock. 0 resolves to
    /// std::thread::hardware_concurrency() at Bootstrap; 1 reproduces the
    /// pre-sharding single-index service exactly.
    size_t num_shards = 0;
    IndexKind index_kind = IndexKind::kBruteForce;
    index::Metric metric = index::Metric::kCosine;
    /// Per-shard IVF options. nlist is clamped to the shard's bootstrap
    /// population (hash partitioning makes shard sizes data-dependent, so
    /// a fixed nlist could exceed a small shard); empty shards train a
    /// one-centroid quantizer so cold-start users can still be added.
    index::IvfFlatIndex::Options ivf;
    index::HnswIndex::Options hnsw;
  };

  /// One user's state snapshot to load at startup.
  struct UserState {
    int user = -1;
    std::vector<int> history;  // chronological
  };

  /// Per-interaction latency breakdown reported by OnInteraction — the
  /// columns of Table III.
  struct UpdateTiming {
    double infer_ms = 0.0;     // user-representation inference
    double index_ms = 0.0;     // vector-index refresh
    double identify_ms = 0.0;  // neighborhood search (all-shard fan-out)
    double total_ms() const { return infer_ms + index_ms + identify_ms; }
  };

  /// `model` must be fitted and outlive the service. Its const inference
  /// methods are called concurrently from every serving thread.
  RealTimeService(const models::InductiveUiModel& model, Options options);

  /// Loads initial user states and builds the per-shard indexes in
  /// parallel on ThreadPool::Global() (training each shard's coarse
  /// quantizer first for IVF). Must be called exactly once, from one
  /// thread, before any concurrent use; must not be called from inside a
  /// pool worker (it uses ParallelFor).
  Status Bootstrap(const std::vector<UserState>& users);

  /// Convenience: bootstrap from every user's training-prefix history.
  Status BootstrapFromSplit(const data::LeaveOneOutSplit& split);

  /// Ingests one interaction: appends to the user's history, re-infers the
  /// embedding, updates the shard index (all under the shard's write
  /// lock), and identifies the fresh neighborhood via the all-shard
  /// fan-out. Unknown users are created on the fly (cold start).
  /// Thread-safe; concurrent callers on different shards run in parallel.
  StatusOr<UpdateTiming> OnInteraction(int user, int item);

  /// Current neighborhood of `user` (Eq. 11): per-shard top-beta searches
  /// merged into the global top-beta. Thread-safe (read locks only).
  StatusOr<std::vector<index::Neighbor>> Neighbors(int user) const;

  /// Eq. 12 user-based candidate list from the current snapshot.
  /// Thread-safe (read locks only).
  StatusOr<CandidateList> RecommendUserBased(int user, size_t n) const;

  /// Snapshot copy of the user's history. NotFound for unknown users,
  /// FailedPrecondition before Bootstrap. (Returning by value is the
  /// point: a reference into shard state would dangle on rehash and race
  /// with concurrent ingest.)
  StatusOr<std::vector<int>> History(int user) const;

  size_t num_users() const;

  /// Shard topology (0 shards before Bootstrap).
  size_t num_shards() const { return shards_.size(); }
  /// Which shard owns `user` — a fixed hash partition, stable across
  /// platforms and process runs. Pre: Bootstrap has run.
  size_t ShardOf(int user) const;
  /// Per-shard user counts (diagnostics / examples).
  std::vector<size_t> ShardSizes() const;

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unique_ptr<index::VectorIndex> index;
    std::unordered_map<int, std::vector<int>> histories;
    std::unordered_map<int, std::vector<int>> vote_items;
  };

  void InferWindowEmbedding(const std::vector<int>& history,
                            float* out) const;
  std::vector<int> VoteItems(const std::vector<int>& history) const;
  std::unique_ptr<index::VectorIndex> MakeShardIndex(
      size_t shard_population) const;
  /// Builds one shard's maps and index from its bootstrap users. Runs on
  /// the global pool; touches only `shard` (no locking needed before the
  /// service is published).
  Status BuildShard(Shard* shard,
                    const std::vector<const UserState*>& users) const;
  /// Per-shard top-k fan-out (shared lock per shard, one at a time) +
  /// k-way merge. `exclude_user` only matches in its own shard.
  StatusOr<std::vector<index::Neighbor>> SearchAllShards(
      const float* query, size_t k, int exclude_user) const;

  const models::InductiveUiModel* model_;
  Options options_;
  bool bootstrapped_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sccf::core

#endif  // SCCF_CORE_REALTIME_H_
