#ifndef SCCF_CORE_REALTIME_H_
#define SCCF_CORE_REALTIME_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/candidates.h"
#include "core/user_based.h"
#include "data/split.h"
#include "models/recommender.h"
#include "util/status.h"

namespace sccf::core {

/// The streaming serving loop of the SCCF user-based component
/// (paper Sec. III-C2 and Table III): when a user interacts with a new
/// item, the service re-infers her representation with one forward pass of
/// the inductive UI model, refreshes the vector index, and can immediately
/// identify the new neighborhood — no retraining, unlike transductive
/// user-based baselines.
class RealTimeService {
 public:
  struct Options {
    size_t beta = 100;
    /// Recent items used to infer the query embedding (15 in the paper).
    size_t infer_window = 15;
    /// Recent items each user contributes as votes (15 in the paper).
    size_t vote_window = 15;
    IndexKind index_kind = IndexKind::kBruteForce;
    index::Metric metric = index::Metric::kCosine;
    index::IvfFlatIndex::Options ivf;
    index::HnswIndex::Options hnsw;
  };

  /// One user's state snapshot to load at startup.
  struct UserState {
    int user = -1;
    std::vector<int> history;  // chronological
  };

  /// Per-interaction latency breakdown reported by OnInteraction — the
  /// columns of Table III.
  struct UpdateTiming {
    double infer_ms = 0.0;     // user-representation inference
    double index_ms = 0.0;     // vector-index refresh
    double identify_ms = 0.0;  // neighborhood search
    double total_ms() const { return infer_ms + index_ms + identify_ms; }
  };

  /// `model` must be fitted and outlive the service.
  RealTimeService(const models::InductiveUiModel& model, Options options);

  /// Loads initial user states and builds the index (training the coarse
  /// quantizer first for IVF). Must be called exactly once.
  Status Bootstrap(const std::vector<UserState>& users);

  /// Convenience: bootstrap from every user's training-prefix history.
  Status BootstrapFromSplit(const data::LeaveOneOutSplit& split);

  /// Ingests one interaction: appends to the user's history, re-infers the
  /// embedding, updates the index, and identifies the fresh neighborhood.
  /// Unknown users are created on the fly (cold start).
  StatusOr<UpdateTiming> OnInteraction(int user, int item);

  /// Current neighborhood of `user` (Eq. 11).
  StatusOr<std::vector<index::Neighbor>> Neighbors(int user) const;

  /// Eq. 12 user-based candidate list from the current snapshot.
  StatusOr<CandidateList> RecommendUserBased(int user, size_t n) const;

  const std::vector<int>& History(int user) const;
  size_t num_users() const { return histories_.size(); }

 private:
  void InferWindowEmbedding(const std::vector<int>& history,
                            float* out) const;
  std::vector<int> VoteItems(const std::vector<int>& history) const;

  const models::InductiveUiModel* model_;
  Options options_;
  bool bootstrapped_ = false;
  std::unique_ptr<index::VectorIndex> index_;
  std::unordered_map<int, std::vector<int>> histories_;
  std::unordered_map<int, std::vector<int>> vote_items_;
};

}  // namespace sccf::core

#endif  // SCCF_CORE_REALTIME_H_
