#ifndef SCCF_CORE_REALTIME_H_
#define SCCF_CORE_REALTIME_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/candidates.h"
#include "core/user_based.h"
#include "data/split.h"
#include "models/recommender.h"
#include "util/status.h"

namespace sccf::core {

class IngestSink;

/// The streaming serving loop of the SCCF user-based component
/// (paper Sec. III-C2 and Table III): when a user interacts with a new
/// item, the service re-infers her representation with one forward pass of
/// the inductive UI model, refreshes the vector index, and can immediately
/// identify the new neighborhood — no retraining, unlike transductive
/// user-based baselines.
///
/// Scale-out design: users are hash-partitioned across `num_shards`
/// shards. Each shard owns its own VectorIndex, history/vote maps, and a
/// std::shared_mutex, so concurrent OnInteraction calls for users in
/// different shards never contend. Queries (Neighbors /
/// RecommendUserBased) fan a per-shard top-k search out under shared
/// (read) locks — one shard at a time, never holding two locks — and
/// merge the per-shard lists with the k-way merger in core/topk_merge.h.
///
/// Thread-safety contract:
///  - Bootstrap must be called exactly once and must complete (its return
///    establishes the happens-before edge) before any concurrent use.
///  - After that, any mix of OnInteraction / Neighbors /
///    RecommendUserBased / History / num_users calls from any threads is
///    safe. Per-user interaction order is serialized by the user's shard
///    lock; cross-shard reads see each shard's latest committed state
///    (per-query snapshot, not a global one).
///  - With num_shards = 1 the service reproduces the pre-sharding
///    single-index implementation bit-identically (pinned by
///    RealTimeTest.ShardedMatchesSingleShardExactly).
///
/// Lock-ordering contract (holds with the background compaction thread
/// and concurrent OnInteractionBatch callers):
///  - Every thread — ingest, query, Compact, and the background sweep —
///    holds AT MOST ONE shard lock at any moment, so there is no
///    shard-lock ordering to violate and no deadlock by construction.
///  - The background thread's control mutex (`bg_mu_`, guarding stop
///    flag + condition variable) is never held while a shard lock is
///    held: the sweep releases it before touching any shard, and
///    re-acquires it only after the last shard lock is released.
///  - Start/StopBackgroundCompaction and the destructor take `bg_mu_`
///    (and Stop joins the thread) while holding no shard lock; they must
///    be called from one thread at a time, like Bootstrap.
///  - Buffer drains triggered by age (write path, query path, background
///    sweep) all run under the owning shard's exclusive lock through the
///    same UpsertBuffer::DrainTo path as Compact(), so any interleaving
///    of them with concurrent ingest/queries is bit-exact for the
///    brute-force backend (pinned by
///    EngineTest.BackgroundCompactionIsBitExact and the TSan stress
///    suite).
class RealTimeService {
 public:
  struct Options {
    size_t beta = 100;
    /// Recent items used to infer the query embedding (15 in the paper).
    size_t infer_window = 15;
    /// Recent items each user contributes as votes (15 in the paper).
    size_t vote_window = 15;
    /// User partitions, each with its own index and lock. 0 resolves to
    /// std::thread::hardware_concurrency() at Bootstrap; 1 reproduces the
    /// pre-sharding single-index service exactly.
    size_t num_shards = 0;
    /// Index-refresh batching (the buffered-upsert contract in
    /// index/vector_index.h): re-inferred embeddings are staged in a
    /// per-shard write buffer and flushed to the backend index only once
    /// the buffer holds this many users — so a hot user re-updated k
    /// times between flushes costs one Add (one HNSW tombstone/reinsert,
    /// one IVF reassignment) instead of k. Queries merge the buffer with
    /// index results, so freshness is unaffected; the trade-off is a
    /// linear scan of <= compaction_threshold staged rows per shard per
    /// query. <= 1 writes through on every update (the pre-buffering
    /// behavior, bit-identical to it). The count threshold is one of
    /// several compaction triggers — see compaction_interval_ms and
    /// background_compaction below for the wall-clock ones.
    size_t compaction_threshold = 1;
    /// Wall-clock bound on how long a staged embedding may sit in a
    /// shard's write buffer (milliseconds; 0 disables the age policy).
    /// When > 0, any write or query touching a shard whose oldest staged
    /// row is older than this drains that shard's buffer first — the
    /// write path drains under the write lock it already holds, the
    /// query path try-locks the write lock before searching (and on
    /// contention serves the merged staged view, leaving the drain to
    /// whoever holds the lock, the next toucher, or the background
    /// sweep — no reader herd on the exclusive lock). Draining
    /// is the same bit-exact path Compact() uses, so results are
    /// unaffected; the policy only bounds the query-side buffer scan and
    /// the age of deferred index churn. A shard nobody writes to or
    /// queries still holds its rows — enable background_compaction to
    /// bound that case too.
    int64_t compaction_interval_ms = 0;
    /// Owns a background compaction thread: started when Bootstrap
    /// returns, stopped by StopBackgroundCompaction() or the destructor.
    /// The thread sweeps the shards on a cadence (compaction_interval_ms
    /// / 2, clamped to [1ms, interval]; 10ms when the interval is 0),
    /// takes a shard's write lock only when its buffer is non-empty and
    /// overdue (any non-empty buffer when the interval is 0), and drains
    /// via the bit-exact Compact() path — so a cold shard's staged rows
    /// reach the backend index within ~1.5 intervals without any further
    /// ingest or queries. See the lock-ordering contract on the class.
    bool background_compaction = false;
    IndexKind index_kind = IndexKind::kBruteForce;
    index::Metric metric = index::Metric::kCosine;
    /// Embedding storage mode for every shard index and write buffer.
    /// kSq8 stores rows as int8 codes + per-row scale/offset (dim + 8
    /// bytes instead of 4*dim), scored directly on the codes via the int8
    /// SIMD kernels. Snapshots embed the mode; restore validates it.
    quant::Storage storage = quant::Storage::kFp32;
    /// Per-shard IVF options. nlist is clamped to the shard's bootstrap
    /// population (hash partitioning makes shard sizes data-dependent, so
    /// a fixed nlist could exceed a small shard); empty shards train a
    /// one-centroid quantizer so cold-start users can still be added.
    index::IvfFlatIndex::Options ivf;
    index::HnswIndex::Options hnsw;
    /// Durability knobs, carried here because Engine::Options aliases
    /// this struct; the service itself never reads them — the online
    /// engine hands them to the persist layer (which sits ABOVE core in
    /// the DAG). Non-empty `recover_dir` makes Engine::Bootstrap recover
    /// from that directory (snapshot + journal tail, created if absent)
    /// and journal every subsequent ingest into it.
    std::string recover_dir;
    /// fsync the journal after every appended record. Off, a SIGKILL'd
    /// *process* loses nothing (the kernel already has the bytes) but a
    /// machine crash can lose the un-synced tail; on, every ingest batch
    /// pays a disk flush per touched shard. See docs/OPERATIONS.md.
    bool journal_fsync = false;
  };

  /// One user's state snapshot to load at startup.
  struct UserState {
    int user = -1;
    std::vector<int> history;  // chronological
  };

  /// One interaction in an ingest batch. `ts` is carried for callers that
  /// batch by wall-clock window (the service itself orders events by
  /// batch position, which the caller must keep chronological per user).
  /// All three fields must be non-negative — OnInteractionBatch rejects
  /// the whole batch atomically (no partial state) otherwise, so negative
  /// ids from untrusted sources can never reach the shard hash.
  struct Event {
    int user = -1;
    int item = -1;
    int64_t ts = 0;
  };

  /// Per-interaction latency breakdown reported by OnInteraction — the
  /// columns of Table III.
  struct UpdateTiming {
    double infer_ms = 0.0;     // user-representation inference
    double index_ms = 0.0;     // vector-index refresh
    double identify_ms = 0.0;  // neighborhood search (all-shard fan-out)
    double total_ms() const { return infer_ms + index_ms + identify_ms; }
  };

  /// `model` must be fitted and outlive the service. Its const inference
  /// methods are called concurrently from every serving thread.
  RealTimeService(const models::InductiveUiModel& model, Options options);

  /// Stops the background compaction thread (if running). Callers must
  /// ensure no other thread is still inside a serving call, per the
  /// usual destruction rules.
  ~RealTimeService();

  RealTimeService(const RealTimeService&) = delete;
  RealTimeService& operator=(const RealTimeService&) = delete;

  /// Loads initial user states and builds the per-shard indexes in
  /// parallel on ThreadPool::Global() (training each shard's coarse
  /// quantizer first for IVF). Must be called exactly once, from one
  /// thread, before any concurrent use; must not be called from inside a
  /// pool worker (it uses ParallelFor).
  Status Bootstrap(const std::vector<UserState>& users);

  /// Convenience: bootstrap from every user's training-prefix history.
  Status BootstrapFromSplit(const data::LeaveOneOutSplit& split);

  /// Ingests one interaction: appends to the user's history, re-infers the
  /// embedding, refreshes the shard index (all under the shard's write
  /// lock), and identifies the fresh neighborhood via the all-shard
  /// fan-out. Unknown users are created on the fly (cold start).
  /// Thread-safe; concurrent callers on different shards run in parallel.
  /// Implemented as OnInteractionBatch over a single event — pinned
  /// bit-identical to the historical per-event path by
  /// EngineTest.SingleEventBatchMatchesOnInteraction.
  StatusOr<UpdateTiming> OnInteraction(int user, int item);

  /// What one ingest batch did, observed under the locks the batch
  /// already held (so callers don't re-sweep shards for bookkeeping).
  struct BatchResult {
    /// One entry per event; a user updated several times in the batch
    /// carries the infer/index/identify cost on its *last* event
    /// (earlier ones read 0).
    std::vector<UpdateTiming> timings;
    size_t users_touched = 0;     ///< distinct users in the batch
    size_t cold_start_users = 0;  ///< users created by the batch
    /// Upserts still staged in the shards this batch touched, after
    /// the batch (always 0 when compaction_threshold <= 1).
    size_t pending_upserts = 0;
  };

  /// Batched ingest, the amortized write path: events are grouped by
  /// shard, each shard's write lock is taken once per batch, histories
  /// and vote lists absorb every event, and only each touched user's
  /// *final* embedding is re-inferred and pushed toward the index —
  /// staged through the shard's write buffer when
  /// Options::compaction_threshold > 1. With `identify` false the
  /// post-update neighborhood search is skipped (pure ingest, e.g.
  /// offline replay).
  ///
  /// The whole batch is validated before any mutation, so an
  /// InvalidArgument return means no state changed. (With an IngestSink
  /// attached, an IoError from the sink aborts the failing shard group
  /// before it mutates anything, but shard groups the batch already
  /// committed stay applied — journal and memory never disagree, the
  /// batch is just cut short.) Events must be
  /// chronological per user within the batch. Thread-safe; concurrent
  /// batches contend only on the shards they touch, one at a time (no
  /// deadlock: at most one lock is held at any moment).
  StatusOr<BatchResult> OnInteractionBatch(std::span<const Event> events,
                                           bool identify = true);

  /// Flushes every shard's write buffer into its backend index (one
  /// shard write lock at a time). After Compact, pending_upserts() == 0
  /// and query results are bit-identical to a write-through service that
  /// applied each user's final embedding. Thread-safe; safe to call
  /// concurrently with the background compaction thread (both drain
  /// under the shard's exclusive lock).
  Status Compact();

  /// Starts the background compaction thread (see
  /// Options::background_compaction — Bootstrap calls this when that
  /// flag is set). FailedPrecondition before Bootstrap; OK and a no-op
  /// if the thread is already running. Call from one thread at a time.
  Status StartBackgroundCompaction();

  /// Stops and joins the background compaction thread; no-op if it is
  /// not running. Safe to call concurrently with serving traffic (it
  /// touches no shard lock while joining); call from one thread at a
  /// time. The destructor calls this.
  void StopBackgroundCompaction();

  /// True while the background compaction thread is running.
  bool background_compaction_running() const;

  /// Total embeddings currently staged across all shard write buffers.
  size_t pending_upserts() const;

  /// Current neighborhood of `user` (Eq. 11): per-shard top-beta searches
  /// (each merging the shard's staged upserts) merged into the global
  /// top-beta. `beta` 0 uses Options::beta; an effective beta of 0 is
  /// InvalidArgument. Thread-safe (read locks only).
  StatusOr<std::vector<index::Neighbor>> Neighbors(int user,
                                                   size_t beta = 0) const;

  /// Eq. 12 user-based candidate list from the current snapshot.
  /// `n` must be positive (InvalidArgument otherwise); `beta` 0 uses
  /// Options::beta. With `exclude_seen` false the user's own history is
  /// not masked out of the list. Thread-safe (read locks only).
  StatusOr<CandidateList> RecommendUserBased(int user, size_t n,
                                             size_t beta = 0,
                                             bool exclude_seen = true) const;

  /// Snapshot copy of the items user `user` currently contributes as
  /// votes (the vote_window tail of their history, deduplicated).
  /// NotFound for users with no votes yet. Thread-safe.
  StatusOr<std::vector<int>> VoteItems(int user) const;

  /// Snapshot copy of the user's history. NotFound for unknown users,
  /// FailedPrecondition before Bootstrap. (Returning by value is the
  /// point: a reference into shard state would dangle on rehash and race
  /// with concurrent ingest.)
  StatusOr<std::vector<int>> History(int user) const;

  size_t num_users() const;

  // ---------------------------------------------------------- persistence
  // The hooks the persist layer builds on. The service stays ignorant of
  // files and formats: it write-ahead-logs through an abstract IngestSink,
  // serializes/restores one shard's state as opaque bytes, and replays
  // journal records. src/persist owns framing, checksums, and recovery
  // orchestration (DAG: core <- persist, never the reverse).

  /// Attaches (nullptr detaches) the write-ahead ingest sink. Every
  /// subsequent ingest appends each shard group to the sink — under that
  /// shard's exclusive lock, BEFORE any mutation — tagged with the
  /// shard's next sequence number. Must be called while no concurrent
  /// ingest runs (same external-sync rule as Bootstrap); the sink must
  /// outlive its attachment.
  void set_ingest_sink(IngestSink* sink) { sink_ = sink; }

  /// Appends shard `s`'s complete serialized state to `*out` — histories,
  /// vote lists, the backend index blob (bit-exact, see
  /// VectorIndex::SerializeTo), staged-but-undrained upserts, and the
  /// shard's journal sequence number — all read under one shared-lock
  /// hold, so the payload is a consistent point-in-time cut: it reflects
  /// exactly the ingest batches with seq <= the embedded sequence number.
  /// Takes only that one shard lock (per the lock-ordering contract), so
  /// serving traffic on other shards is unaffected.
  Status ExportShard(size_t s, std::string* out) const;

  /// Replaces shard `s`'s state with an ExportShard payload (produced by
  /// a service with identical Options and shard count). Validates the
  /// whole payload before committing — on error the shard is unchanged.
  /// Pre: Bootstrap has run; no concurrent use (recovery-time only).
  Status RestoreShard(size_t s, std::string_view payload);

  /// Replays one journaled ingest record against shard `s`. Records with
  /// seq <= the shard's current sequence number are skipped (already
  /// covered by the restored snapshot); the next expected record must
  /// carry exactly seq+1 (a gap means journal corruption -> IoError).
  /// Applies the same mutations OnInteractionBatch's per-shard pass
  /// applies — histories, vote lists, embedding refresh, index staging —
  /// without re-journaling and without the identify fan-out (identify
  /// never mutates state), so a snapshot + replayed tail is bit-identical
  /// to the uninterrupted run. Pre: Bootstrap has run; no concurrent use.
  Status ApplyJournalRecord(size_t s, uint64_t seq,
                            std::span<const Event> events);

  /// Shard `s`'s journal sequence number: the seq of the last ingest
  /// batch group applied to it (0 if none since Bootstrap/restore).
  uint64_t ShardJournalSeq(size_t s) const;

  /// The options the service was constructed with (the persist layer
  /// stamps index kind / metric into snapshot metadata from here).
  const Options& options() const { return options_; }
  /// The model's embedding dimension (the width of every indexed row).
  size_t embedding_dim() const { return model_->embedding_dim(); }

  /// Per-shard memory/occupancy accounting, read under one shared lock
  /// per shard (see ShardStatsSnapshot).
  struct ShardStats {
    size_t users = 0;            ///< users resident in the shard
    size_t index_rows = 0;       ///< live rows in the backend index
    size_t embedding_bytes = 0;  ///< fp32 row storage held by the index
    size_t code_bytes = 0;       ///< SQ8 codes + per-row params
    size_t tombstones = 0;       ///< dead HNSW nodes still resident
    size_t staged_rows = 0;      ///< upserts awaiting compaction
  };

  /// One ShardStats per shard, each read under that shard's shared lock
  /// (one lock at a time, per the lock-ordering contract) — a per-shard
  /// consistent cut, not a global one. Thread-safe after Bootstrap.
  std::vector<ShardStats> ShardStatsSnapshot() const;

  /// Shard topology (0 shards before Bootstrap).
  size_t num_shards() const { return shards_.size(); }
  /// Which shard owns `user` — a fixed hash partition, stable across
  /// platforms and process runs. Pre: Bootstrap has run.
  size_t ShardOf(int user) const;
  /// Per-shard user counts (diagnostics / examples).
  std::vector<size_t> ShardSizes() const;

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unique_ptr<index::VectorIndex> index;
    /// Staged upserts awaiting compaction (see Options::
    /// compaction_threshold); guarded by `mu` like the index it shadows.
    std::unique_ptr<index::UpsertBuffer> pending;
    /// steady_clock nanoseconds when the *oldest* currently-staged row
    /// entered `pending`; 0 when the buffer is empty. Written only under
    /// an exclusive hold of `mu` (stage-into-empty sets it, every drain
    /// clears it); read lock-free by the query path and the background
    /// sweep to decide whether taking the write lock is worth it, so it
    /// is atomic (a stale read only defers or wastes one drain attempt).
    mutable std::atomic<int64_t> staged_since_ns{0};
    std::unordered_map<int, std::vector<int>> histories;
    std::unordered_map<int, std::vector<int>> vote_items;
    /// Monotonic per-shard ingest sequence number, guarded by `mu`.
    /// Incremented once per applied batch group (after a successful sink
    /// append, when a sink is attached); snapshots embed it and journal
    /// replay filters on it.
    uint64_t journal_seq = 0;
  };

  void InferWindowEmbedding(const std::vector<int>& history,
                            float* out) const;
  std::vector<int> VoteItems(const std::vector<int>& history) const;
  std::unique_ptr<index::VectorIndex> MakeShardIndex(
      size_t shard_population) const;
  /// Builds one shard's maps and index from its bootstrap users. Runs on
  /// the global pool; touches only `shard` (no locking needed before the
  /// service is published).
  Status BuildShard(Shard* shard,
                    const std::vector<const UserState*>& users) const;
  /// One touched user's refresh, under `shard`'s already-held write
  /// lock: re-infers the final embedding (into `emb`, d floats), stages
  /// or applies the index update per compaction_threshold, snapshots
  /// the vote list, and records infer/index timings.
  Status RefreshTouchedUser(Shard& shard, int user, float* emb,
                            UpdateTiming* timing);
  /// One shard's top-k under its shared lock: backend Search results
  /// (staged ids shadowed) merged with the shard's write buffer.
  StatusOr<std::vector<index::Neighbor>> SearchShard(const Shard& shard,
                                                     const float* query,
                                                     size_t k,
                                                     int exclude_user) const;
  /// Per-shard top-k fan-out (shared lock per shard, one at a time) +
  /// k-way merge. `exclude_user` only matches in its own shard.
  StatusOr<std::vector<index::Neighbor>> SearchAllShards(
      const float* query, size_t k, int exclude_user) const;
  /// Drains `shard.pending` into its index and clears the age stamp.
  /// Pre: `shard.mu` is held exclusively by the caller. Const because
  /// the age policy must be able to compact from logically-const query
  /// paths (the drain is a physical, result-preserving mutation).
  Status DrainShardLocked(const Shard& shard) const;
  /// True if the shard has staged rows older than the compaction
  /// interval (always false when the interval is 0). Lock-free; reads
  /// the clock only after the interval/empty early-outs, so disabled or
  /// clean shards cost no clock_gettime on the hot paths.
  bool ShardOverdue(const Shard& shard) const;
  /// The background sweep body: wait-on-cv-with-timeout loop around
  /// SweepShardsOnce until StopBackgroundCompaction flips bg_stop_.
  void BackgroundCompactionLoop();
  /// One background pass over every shard: drain the non-empty buffers
  /// that are overdue (any non-empty buffer when the interval is 0),
  /// one shard write lock at a time, never while holding bg_mu_.
  void SweepShardsOnce() const;

  /// Journals one shard group's events before applying them (see
  /// set_ingest_sink). Called with `shard.mu` held exclusively; bumps
  /// `shard.journal_seq` only after the sink accepts the record, so a
  /// failed append leaves both the shard and the sequence untouched.
  Status JournalShardGroupLocked(size_t shard_idx, Shard& shard,
                                 std::span<const Event> events);

  const models::InductiveUiModel* model_;
  Options options_;
  bool bootstrapped_ = false;
  IngestSink* sink_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Background compaction thread state. `bg_mu_` guards `bg_stop_` and
  /// pairs with `bg_cv_` for the sweep cadence; it is never held while a
  /// shard lock is held (see the lock-ordering contract above).
  std::thread bg_thread_;
  mutable std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;
  std::atomic<bool> bg_running_{false};
};

/// Write-ahead sink for ingest events — the seam between the service and
/// the persistence journal. OnInteractionBatch calls Append once per
/// (batch, shard) group, under that shard's exclusive lock and BEFORE any
/// mutation, with the shard's next sequence number; an Append error
/// aborts the group with no state change, so the journal can never lag
/// the in-memory state. Implementations must tolerate concurrent Append
/// calls for different shards (the service holds at most one shard lock,
/// so a sink-internal mutex nests strictly inside shard locks) and must
/// never call back into the service.
class IngestSink {
 public:
  virtual ~IngestSink() = default;
  virtual Status Append(size_t shard, uint64_t seq,
                        std::span<const RealTimeService::Event> events) = 0;
};

}  // namespace sccf::core

#endif  // SCCF_CORE_REALTIME_H_
